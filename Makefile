GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: static checks plus race-enabled tests on
# the concurrency-sensitive packages.
check:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -race ./internal/core/... ./internal/obs/...

bench:
	$(GO) test -bench=. -benchtime=200ms -run=^$$ .

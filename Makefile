GO ?= go

.PHONY: build test check bench linearize

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: static checks, race-enabled tests on the
# concurrency-sensitive packages, and the short-mode linearizability
# matrix (every supported structure x technique x source combination).
# The ./internal/obs/... wildcard covers the telemetry pipeline too:
# obs itself plus obs/promparse, obs/series and obs/trace.
check:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -race ./internal/core/... ./internal/obs/... ./internal/epoch/... ./internal/pool/... ./internal/dcss/... ./internal/linearize/... ./internal/tsc/... ./internal/wal/...
	$(GO) test -race -short -run TestLinearizability .
	$(GO) test -race -short -run 'TestCrashMatrix|TestCrashDuringRecovery|TestDurable|TestRecoverRefusesCorruptInterior|TestDrainRacesSnapshotFlush|TestCheckpointOnPlainMapErrors' .
	$(GO) test -race -short -run 'TestTimeTravel|TestCheckpointAt' .

# linearize runs the full-load linearizability matrix under the race
# detector. Reproduce a failure with:
#   go test -race -run 'TestLinearizability/<subtest>' . -linearize.seed=<seed>
linearize:
	$(GO) test -race -v -run TestLinearizability .

bench:
	$(GO) test -bench=. -benchtime=200ms -run=^$$ .

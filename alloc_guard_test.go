package tscds_test

import (
	"runtime/debug"
	"testing"

	"tscds"
)

// TestPooledUpdatePathAllocFree pins the tentpole's core claim: with
// Config.Alloc = AllocPool, a steady-state insert+delete churn on the
// EBR skip list performs ZERO heap allocations per operation — nodes
// come from the epoch-fed free lists, limbo wrappers from the manager's
// wrapper pool, and the label machinery is allocation-free. Any new
// allocation on the update path (a closure, a boxed value, a forgotten
// pooled constructor) fails this test.
func TestPooledUpdatePathAllocFree(t *testing.T) {
	m, err := tscds.New(tscds.SkipList, tscds.EBRRQ, tscds.Config{
		Source:     tscds.Logical,
		MaxThreads: 4,
		Alloc:      tscds.AllocPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()

	// GC off for the measurement: a collection mid-run would not change
	// the alloc count but could steal sync.Pool contents and force
	// refill misses.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Warm up: churn enough keys that the free lists are primed and the
	// prune cadence (retire -> limbo -> recycle) reaches steady state.
	for i := uint64(1); i <= 2000; i++ {
		m.Insert(th, i, i)
	}
	for i := uint64(1); i <= 2000; i++ {
		m.Delete(th, i)
	}
	m.Drain()

	key := uint64(5000)
	n := testing.AllocsPerRun(2000, func() {
		m.Insert(th, key, 1)
		m.Delete(th, key)
		key++
	})
	if n != 0 {
		t.Fatalf("pooled insert+delete pair allocates %.2f objects, want 0", n)
	}
}

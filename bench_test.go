// Native benchmarks regenerating the paper's tables and figures on this
// host, one benchmark family per figure. Shapes at low core counts are
// muted relative to the paper's 192-thread machine; cmd/reproduce runs
// the full simulated sweeps alongside these (see EXPERIMENTS.md).
//
// Keys span 100k (prefilled to half) rather than the paper's 1M so the
// per-subbenchmark setup stays small; cmd/rqbench uses the full range.
package tscds

import (
	"fmt"
	"math/rand"
	"testing"

	"tscds/internal/bench"
	"tscds/internal/bundle"
	"tscds/internal/core"
	"tscds/internal/ebrrq"
	"tscds/internal/vcas"
)

const benchKeyRange = 100_000

var (
	benchSources = []SourceKind{Logical, TSC}

	fig2Workloads = []bench.Workload{
		bench.PaperWorkload(0, 10, 90), bench.PaperWorkload(2, 10, 88),
		bench.PaperWorkload(10, 10, 80), bench.PaperWorkload(20, 10, 70),
		bench.PaperWorkload(0, 20, 80), bench.PaperWorkload(2, 20, 78),
		bench.PaperWorkload(10, 20, 70), bench.PaperWorkload(20, 20, 60),
		bench.PaperWorkload(50, 10, 40), bench.PaperWorkload(100, 0, 0),
	}
	fig3Workloads = []bench.Workload{
		bench.PaperWorkload(0, 10, 90), bench.PaperWorkload(2, 10, 88),
		bench.PaperWorkload(10, 10, 80), bench.PaperWorkload(20, 10, 70),
		bench.PaperWorkload(50, 10, 40), bench.PaperWorkload(90, 10, 0),
	}
	fig4Workloads = []bench.Workload{
		bench.PaperWorkload(2, 10, 88), bench.PaperWorkload(10, 10, 80),
		bench.PaperWorkload(20, 10, 70), bench.PaperWorkload(50, 10, 40),
		bench.PaperWorkload(90, 10, 0), bench.PaperWorkload(100, 0, 0),
	}
	fig5Workloads = []bench.Workload{
		bench.PaperWorkload(10, 10, 80), bench.PaperWorkload(50, 10, 40),
		bench.PaperWorkload(90, 10, 0),
	}
)

// benchMap drives one (structure, technique, source, workload) arm.
func benchMap(b *testing.B, s Structure, t Technique, src SourceKind, wl bench.Workload) {
	m, err := New(s, t, Config{Source: src, MaxThreads: 256})
	if err != nil {
		b.Fatal(err)
	}
	setup, err := m.RegisterThread()
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range bench.PrefillKeys(benchKeyRange) {
		m.Insert(setup, k, k)
	}
	setup.Release()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		th, err := m.RegisterThread()
		if err != nil {
			b.Error(err)
			return
		}
		defer th.Release()
		r := uint64(0x9E3779B97F4A7C15)
		var zipf *rand.Zipf
		if wl.ZipfS > 0 {
			zipf = rand.NewZipf(rand.New(rand.NewSource(1)), wl.ZipfS, 1, benchKeyRange-1)
		}
		buf := make([]KV, 0, 128)
		for pb.Next() {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			op := int(r % 100)
			key := (r >> 8) % benchKeyRange
			if zipf != nil {
				key = zipf.Uint64()
			}
			switch {
			case op < wl.U:
				if r&(1<<63) != 0 {
					m.Insert(th, key, key)
				} else {
					m.Delete(th, key)
				}
			case op < wl.U+wl.RQ:
				buf = m.RangeQuery(th, key, key+wl.RQLen-1, buf[:0])
			default:
				m.Contains(th, key)
			}
		}
	})
}

func benchName(wl bench.Workload, src SourceKind) string {
	return fmt.Sprintf("%s/%s", wl.Label(), src)
}

// BenchmarkFig1Timestamp reproduces Figure 1: acquiring a timestamp from
// each source, bare (top panel) and with interleaved local work (bottom
// panel).
func BenchmarkFig1Timestamp(b *testing.B) {
	kinds := []SourceKind{Logical, TSC, core.TSCCPUID, core.TSCUnfenced, core.TSCRaw}
	for _, panel := range []string{"top", "bottom"} {
		for _, k := range kinds {
			b.Run(fmt.Sprintf("%s/%s", panel, k), func(b *testing.B) {
				src := NewTimestampSource(k)
				work := panel == "bottom"
				b.RunParallel(func(pb *testing.PB) {
					sink := uint64(0)
					for pb.Next() {
						sink += src.Advance()
						if work {
							for i := 0; i < 100; i++ {
								sink = sink*2862933555777941757 + 3037000493
							}
						}
					}
					_ = sink
				})
			})
		}
	}
}

// BenchmarkFig2VCASBST reproduces Figure 2: vCAS on the lock-free BST.
func BenchmarkFig2VCASBST(b *testing.B) {
	for _, wl := range fig2Workloads {
		for _, src := range benchSources {
			b.Run(benchName(wl, src), func(b *testing.B) {
				benchMap(b, BST, VCAS, src, wl)
			})
		}
	}
}

// BenchmarkFig3CitrusVCAS and BenchmarkFig3CitrusBundle reproduce
// Figure 3: the Citrus tree under both fine-grained-labeling techniques.
func BenchmarkFig3CitrusVCAS(b *testing.B) {
	for _, wl := range fig3Workloads {
		for _, src := range benchSources {
			b.Run(benchName(wl, src), func(b *testing.B) {
				benchMap(b, Citrus, VCAS, src, wl)
			})
		}
	}
}

func BenchmarkFig3CitrusBundle(b *testing.B) {
	for _, wl := range fig3Workloads {
		for _, src := range benchSources {
			b.Run(benchName(wl, src), func(b *testing.B) {
				benchMap(b, Citrus, Bundle, src, wl)
			})
		}
	}
}

// BenchmarkFig4CitrusEBRRQ reproduces Figure 4: EBR-RQ on the Citrus
// tree, where the retained readers-writer lock caps any TSC gain.
func BenchmarkFig4CitrusEBRRQ(b *testing.B) {
	for _, wl := range fig4Workloads {
		for _, src := range benchSources {
			b.Run(benchName(wl, src), func(b *testing.B) {
				benchMap(b, Citrus, EBRRQ, src, wl)
			})
		}
	}
}

// BenchmarkFig5SkipListBundle reproduces Figure 5: bundling on the lazy
// skip list (gain only in update-heavy mixes).
func BenchmarkFig5SkipListBundle(b *testing.B) {
	for _, wl := range fig5Workloads {
		for _, src := range benchSources {
			b.Run(benchName(wl, src), func(b *testing.B) {
				benchMap(b, SkipList, Bundle, src, wl)
			})
		}
	}
}

// BenchmarkLazyList reproduces the paper's omitted negative result: the
// lazy list's O(n) traversal hides the timestamp entirely. Uses a small
// key range to keep the quadratic setup affordable.
func BenchmarkLazyList(b *testing.B) {
	wl := bench.Workload{U: 10, RQ: 10, C: 80, KeyRange: 2000, RQLen: 100}
	for _, tech := range []Technique{VCAS, Bundle} {
		for _, src := range benchSources {
			b.Run(fmt.Sprintf("%s/%s", tech, src), func(b *testing.B) {
				m, err := New(LazyList, tech, Config{Source: src, MaxThreads: 256})
				if err != nil {
					b.Fatal(err)
				}
				setup, _ := m.RegisterThread()
				for k := uint64(0); k < wl.KeyRange; k += 2 {
					m.Insert(setup, k, k)
				}
				setup.Release()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					th, _ := m.RegisterThread()
					defer th.Release()
					r := uint64(0xABCDEF12345)
					buf := make([]KV, 0, 128)
					for pb.Next() {
						r ^= r << 13
						r ^= r >> 7
						r ^= r << 17
						op := int(r % 100)
						key := (r >> 8) % wl.KeyRange
						switch {
						case op < wl.U:
							if r&(1<<63) != 0 {
								m.Insert(th, key, key)
							} else {
								m.Delete(th, key)
							}
						case op < wl.U+wl.RQ:
							buf = m.RangeQuery(th, key, key+wl.RQLen-1, buf[:0])
						default:
							m.Contains(th, key)
						}
					}
				})
			})
		}
	}
}

// BenchmarkAblationLabeling isolates the paper's §IV claim: timestamp
// labeling granularity decides how much TSC helps. Three labeling
// disciplines perform the same abstract task — acquire a timestamp and
// attach it to an object — under each source.
func BenchmarkAblationLabeling(b *testing.B) {
	for _, src := range benchSources {
		kind := core.Kind(src)
		// Coarse: EBR-RQ's (read, label) under a global RW lock.
		b.Run(fmt.Sprintf("coarse-rwlock/%s", src), func(b *testing.B) {
			p := ebrrq.NewLockBased(core.New(kind))
			b.RunParallel(func(pb *testing.PB) {
				var l ebrrq.Label
				for pb.Next() {
					l.Init()
					p.Label(&l)
				}
			})
		})
		// Medium: bundling's prepare/advance/finalize inside the op's
		// own lock scope (simulated by a local critical section).
		b.Run(fmt.Sprintf("medium-bundle/%s", src), func(b *testing.B) {
			s := core.New(kind)
			bd := bundle.New(&struct{}{})
			var mu chan struct{} = make(chan struct{}, 1)
			mu <- struct{}{}
			b.RunParallel(func(pb *testing.PB) {
				target := &struct{}{}
				for pb.Next() {
					<-mu
					e := bd.Prepare(target)
					bd.Finalize(e, s.Advance())
					if bd.Len() > 64 {
						bd.Truncate(core.Pending)
					}
					mu <- struct{}{}
				}
			})
		})
		// Fine: vCAS's helping label — no atomicity between read and
		// label at all.
		b.Run(fmt.Sprintf("fine-vcas/%s", src), func(b *testing.B) {
			s := core.New(kind)
			o := vcas.New(uint64(0))
			b.RunParallel(func(pb *testing.PB) {
				i := uint64(0)
				for pb.Next() {
					o.CompareAndSwap(s, o.Read(s), i)
					if i%64 == 0 {
						o.Truncate(core.Pending)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkExtensionBSTEBRRQ covers the EBR-RQ-on-lock-free-BST pairing
// (the structure class the original EBR-RQ paper targets). The lock-free
// labeling variant exists only with a logical source — the paper's
// incompatibility result — so the sweep pairs lock-based logical/TSC
// with lock-free logical.
func BenchmarkExtensionBSTEBRRQ(b *testing.B) {
	wl := bench.PaperWorkload(10, 10, 80)
	arms := []struct {
		name string
		t    Technique
		src  SourceKind
	}{
		{"lock/Logical", EBRRQ, Logical},
		{"lock/RDTSCP", EBRRQ, TSC},
		{"lockfree/Logical", EBRRQLockFree, Logical},
	}
	for _, a := range arms {
		b.Run(a.name, func(b *testing.B) {
			benchMap(b, BST, a.t, a.src, wl)
		})
	}
}

// BenchmarkAblationVersionGC quantifies version-chain truncation: the
// same vCAS churn with and without history reclamation. Without GC the
// chains grow with every write, demonstrating why the min-active-RQ
// registry matters for a versioned structure's memory behaviour.
func BenchmarkAblationVersionGC(b *testing.B) {
	for _, gc := range []bool{true, false} {
		name := "with-gc"
		if !gc {
			name = "no-gc"
		}
		b.Run(name, func(b *testing.B) {
			src := core.New(core.TSC)
			o := vcas.New(uint64(0))
			for i := 0; i < b.N; i++ {
				o.Write(src, uint64(i))
				if gc && i%64 == 0 {
					o.Truncate(core.Pending)
				}
			}
			b.ReportMetric(float64(o.ChainLen()), "chain-len")
		})
	}
}

// BenchmarkAblationStrictAdvance measures the Jiffy-style tie-avoidance
// loop (§III-A): strictly-increasing timestamps versus plain reads. On
// hardware with cycle-granularity TSC the strict loop almost never
// spins, which is exactly the paper's argument for why ties are a
// non-issue in practice.
func BenchmarkAblationStrictAdvance(b *testing.B) {
	for _, kind := range []SourceKind{Logical, TSC} {
		src := NewTimestampSource(kind)
		b.Run(fmt.Sprintf("plain/%v", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src.Advance()
			}
		})
		b.Run(fmt.Sprintf("strict/%v", kind), func(b *testing.B) {
			prev := src.Advance()
			for i := 0; i < b.N; i++ {
				prev = core.AdvanceStrict(src, prev)
			}
		})
	}
}

// BenchmarkAblationOrdo measures the ORDO-style uncertainty wrapper
// (related work §V): the overhead is one addition, making skew-tolerant
// ordering essentially free relative to the underlying read.
func BenchmarkAblationOrdo(b *testing.B) {
	inner := core.New(core.TSC)
	for _, delta := range []uint64{0, 1000, 1_000_000} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			src := core.NewOrdo(inner, delta)
			for i := 0; i < b.N; i++ {
				src.Advance()
			}
		})
	}
}

// BenchmarkZipfContention contrasts the paper's uniform keys with a
// Zipfian hot-key workload on the vCAS BST (extension): skew moves the
// bottleneck from the timestamp to the structure's hot paths.
func BenchmarkZipfContention(b *testing.B) {
	for _, zipfS := range []float64{0, 1.5} {
		for _, src := range benchSources {
			name := fmt.Sprintf("uniform/%s", src)
			if zipfS > 0 {
				name = fmt.Sprintf("zipf%.1f/%s", zipfS, src)
			}
			b.Run(name, func(b *testing.B) {
				wl := bench.PaperWorkload(20, 10, 70)
				wl.ZipfS = zipfS
				benchMap(b, BST, VCAS, src, wl)
			})
		}
	}
}

// BenchmarkOmittedSkipList reproduces the combinations the paper built
// but left out of its figures — skip list with vCAS and with EBR-RQ —
// where no TSC gain was observed.
func BenchmarkOmittedSkipList(b *testing.B) {
	wl := bench.PaperWorkload(10, 10, 80)
	for _, tech := range []Technique{VCAS, EBRRQ} {
		for _, src := range benchSources {
			b.Run(fmt.Sprintf("%s/%s", tech, src), func(b *testing.B) {
				benchMap(b, SkipList, tech, src, wl)
			})
		}
	}
}

// BenchmarkJiffy measures the §III-A store: single-key puts, multi-key
// atomic batches, and snapshot range reads, per source. The reported
// tie-retry metric shows the strict-increase wait loop's real frequency
// (the paper: "never used in practice" on cycle-resolution TSC).
func BenchmarkJiffy(b *testing.B) {
	for _, kind := range []SourceKind{Logical, TSC} {
		for _, mode := range []string{"put", "batch4", "snapshot-range"} {
			b.Run(fmt.Sprintf("%s/%v", mode, kind)+"", func(b *testing.B) {
				st, reg := NewBatchStore(Config{Source: kind, MaxThreads: 64})
				setup, _ := reg.Register()
				for k := uint64(1); k <= 4096; k++ {
					st.Put(setup, k, k)
				}
				setup.Release()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					th, _ := reg.Register()
					defer th.Release()
					r := uint64(0xBEEF)
					buf := make([]KV, 0, 128)
					ops := make([]BatchOp, 4)
					for pb.Next() {
						r ^= r << 13
						r ^= r >> 7
						r ^= r << 17
						k := r%4096 + 1
						switch mode {
						case "put":
							st.Put(th, k, r)
						case "batch4":
							for i := range ops {
								ops[i] = BatchOp{Key: (k+uint64(i)*7)%4096 + 1, Val: r}
							}
							st.Apply(th, ops)
						default:
							sn := st.Snapshot(th)
							buf = sn.Range(k, k+100, buf[:0])
							sn.Close()
						}
					}
				})
				b.ReportMetric(float64(st.TieRetries()), "tie-retries")
			})
		}
	}
}

// BenchmarkAblationBSTFlavor contrasts the two lock-free external BSTs
// under vCAS: descriptor-based EFRB versus edge-marked Natarajan-Mittal.
// The paper's headline result is flavor-independent — both remove the
// camera fetch-and-add the same way — but the structures' own overheads
// differ.
func BenchmarkAblationBSTFlavor(b *testing.B) {
	wl := bench.PaperWorkload(20, 10, 70)
	for _, s := range []Structure{BST, NMBST} {
		for _, src := range benchSources {
			b.Run(fmt.Sprintf("%v/%s", s, src), func(b *testing.B) {
				benchMap(b, s, VCAS, src, wl)
			})
		}
	}
}

// BenchmarkAblationRQLength varies the range query span around the
// paper's fixed 100 keys: longer queries amortize the timestamp
// acquisition over more collection work, shrinking the TSC advantage —
// the same mechanism that makes the lazy list a no-gain case.
func BenchmarkAblationRQLength(b *testing.B) {
	for _, rqLen := range []uint64{10, 100, 1000} {
		for _, src := range benchSources {
			b.Run(fmt.Sprintf("len%d/%s", rqLen, src), func(b *testing.B) {
				wl := bench.PaperWorkload(10, 20, 70)
				wl.RQLen = rqLen
				benchMap(b, BST, VCAS, src, wl)
			})
		}
	}
}

// Command reproduce runs the full experiment suite: every figure of the
// paper on the simulated paper machine (4x24x2 Xeon), plus native
// spot-checks on this host, and prints the paper-vs-reproduction
// comparison that EXPERIMENTS.md records.
//
//	reproduce              # simulated figures + native spot checks
//	reproduce -skip-native # simulation only (fast, deterministic)
//	reproduce -full        # include the large Figure 2/3 sim sweeps
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"tscds"
	"tscds/internal/bench"
	"tscds/internal/obs"
	"tscds/internal/obs/series"
	"tscds/internal/sim"
)

// curMetrics/curTracer/curLabel track the native arm currently running
// so the -serve endpoint and series collector read live state.
var (
	curMetrics atomic.Pointer[tscds.Metrics]
	curTracer  atomic.Pointer[tscds.Tracer]
	curLabel   atomic.Pointer[string]
)

func main() {
	skipNative := flag.Bool("skip-native", false, "skip native measurements")
	full := flag.Bool("full", false, "run every simulated panel (slower)")
	nativeDuration := flag.Duration("native-duration", 300*time.Millisecond, "native per-trial duration")
	nativeKeys := flag.Uint64("native-keyrange", 100_000, "native key range")
	metrics := flag.Bool("metrics", false, "dump a metrics snapshot (JSON) per native arm")
	traceFlag := flag.Bool("trace", false, "print per-phase flight-trace breakdowns per native arm")
	out := flag.String("out", "", "also write the report to this file")
	serveAddr := flag.String("serve", "", "serve live /metrics(.prom), /trace, /series and /events for the native arms on this address")
	flag.Parse()

	if *serveAddr != "" {
		watchdog := obs.NewWatchdog(obs.DefaultRules(), nil)
		collector := series.New(series.Config{
			Label: func() string {
				if l := curLabel.Load(); l != nil {
					return *l
				}
				return ""
			},
			Metrics:  func() *tscds.Metrics { return curMetrics.Load() },
			Watchdog: watchdog,
		})
		collector.Start()
		defer collector.Stop()
		srv, err := obs.Serve(*serveAddr, map[string]obs.Var{
			"metrics": obs.Live(func() obs.Var {
				if reg := curMetrics.Load(); reg != nil {
					return reg
				}
				return nil
			}),
			"trace": obs.Live(func() obs.Var {
				if tr := curTracer.Load(); tr != nil {
					return tr
				}
				return nil
			}),
			"series": collector,
			"events": watchdog,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("serving stats on http://%s/metrics\n", srv.Addr())
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	m := sim.PaperMachine()
	fmt.Fprintf(w, "=== Simulated reproduction (paper machine: %d NUMA zones x %d cores x %d SMT) ===\n\n",
		m.Zones, m.CoresPerZone, m.SMTPerCore)

	fmt.Fprintln(w, "--- Figure 1: timestamp acquisition ---")
	fig1 := sim.Figure1(m)
	for _, p := range fig1 {
		fmt.Fprintln(w, sim.FormatPanel(p))
	}
	reportFig1(w, fig1)

	figs := []struct {
		name  string
		claim string
		fn    func(*sim.Machine) []sim.Panel
		large bool
	}{
		{"Figure 2: vCAS on lock-free BST", "up to 5.5x with TSC; equal at 100-0-0", sim.Figure2, true},
		{"Figure 3: Citrus with vCAS and Bundling", "vCAS gains most; Bundling flat on read-only", sim.Figure3, true},
		{"Figure 4: Citrus with EBR-RQ", "little/no gain; cliff past one NUMA zone", sim.Figure4, false},
		{"Figure 5: Skip list with Bundling", "gain only in update-heavy mixes", sim.Figure5, false},
		{"Omitted result: lazy list", "no gain; traversal-bound", sim.LazyListPanels, false},
	}
	for _, f := range figs {
		fmt.Fprintf(w, "--- %s ---\npaper: %s\n", f.name, f.claim)
		panels := f.fn(m)
		for i, p := range panels {
			if !*full && f.large && i > 2 {
				fmt.Fprintf(w, "(… %d more panels; rerun with -full)\n", len(panels)-i)
				break
			}
			fmt.Fprintln(w, sim.FormatPanel(p))
			if s := sim.PanelSummary(p); s != "" {
				fmt.Fprint(w, s)
			}
		}
		fmt.Fprintln(w)
	}

	if *skipNative {
		return
	}
	fmt.Fprintf(w, "=== Native spot checks (%d CPUs on this host) ===\n", runtime.NumCPU())
	fmt.Fprintln(w, "Low core counts mute the contention the paper measures; these verify")
	fmt.Fprintln(w, "the real implementations run and order sanely, not absolute shapes.")
	fmt.Fprintln(w)
	native(w, *nativeDuration, *nativeKeys, *metrics, *traceFlag)
}

func reportFig1(w io.Writer, panels []sim.Panel) {
	for _, p := range panels {
		var logical, rdtscp []float64
		for _, s := range p.Series {
			switch s.Name {
			case "Logical":
				logical = s.Mops
			case "RDTSCP":
				rdtscp = s.Mops
			}
		}
		last := len(p.Threads) - 1
		fmt.Fprintf(w, "  %s: RDTSCP/Logical at %d threads = %.1fx (at 1 thread: %.2fx)\n",
			p.ID, p.Threads[last], rdtscp[last]/logical[last], rdtscp[0]/logical[0])
	}
	fmt.Fprintln(w)
}

func native(w io.Writer, d time.Duration, keyRange uint64, metrics, traceOn bool) {
	combos := []struct {
		label string
		s     tscds.Structure
		t     tscds.Technique
		wl    bench.Workload
	}{
		{"Fig2 vCAS/BST 10-10-80", tscds.BST, tscds.VCAS, bench.PaperWorkload(10, 10, 80)},
		{"Fig3 vCAS/Citrus 10-10-80", tscds.Citrus, tscds.VCAS, bench.PaperWorkload(10, 10, 80)},
		{"Fig3 Bundle/Citrus 10-10-80", tscds.Citrus, tscds.Bundle, bench.PaperWorkload(10, 10, 80)},
		{"Fig4 EBR-RQ/Citrus 10-10-80", tscds.Citrus, tscds.EBRRQ, bench.PaperWorkload(10, 10, 80)},
		{"Fig5 Bundle/SkipList 50-10-40", tscds.SkipList, tscds.Bundle, bench.PaperWorkload(50, 10, 40)},
	}
	threads := runtime.NumCPU()
	fmt.Fprintf(w, "%-32s %14s %14s\n", "arm (threads="+itoa(threads)+")", "Logical", "RDTSCP")
	for _, c := range combos {
		wl := c.wl
		wl.KeyRange = keyRange
		var cells [2]string
		var snaps [2]string
		var traces [2]string
		for i, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC} {
			cfg := tscds.Config{Source: src, MaxThreads: 256}
			if metrics {
				cfg.Metrics = tscds.NewMetrics()
			}
			if traceOn {
				cfg.Trace = &tscds.TraceConfig{}
			}
			mp, err := tscds.New(c.s, c.t, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			curMetrics.Store(cfg.Metrics)
			curTracer.Store(mp.Tracer())
			label := fmt.Sprintf("%s/%v", c.label, src)
			curLabel.Store(&label)
			if act := mp.SourceActual(); act != src {
				fmt.Fprintf(os.Stderr, "warning: %s: source %v is served by %v on this host; the %v column measures %v\n",
					c.label, src, act, src, act)
			}
			if err := bench.Prefill(mp, mp, wl.KeyRange); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			res, err := bench.Run(mp, mp, wl, bench.Options{
				Threads: threads, Duration: d, Trials: 2, Pin: true, Seed: 11,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			cells[i] = fmt.Sprintf("%9.2f Mops", res.Mean)
			if cfg.Metrics != nil {
				snaps[i] = cfg.Metrics.String()
			}
			if traceOn {
				traces[i] = mp.TraceSnapshot(false).Format()
			}
		}
		fmt.Fprintf(w, "%-32s %14s %14s\n", c.label, cells[0], cells[1])
		if metrics {
			fmt.Fprintf(w, "  metrics Logical: %s\n  metrics RDTSCP:  %s\n", snaps[0], snaps[1])
		}
		if traceOn {
			fmt.Fprintf(w, "  trace Logical:\n%s  trace RDTSCP:\n%s", indent(traces[0]), indent(traces[1]))
		}
	}
}

// indent shifts a multi-line block right by two spaces for nesting under
// an arm's row.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// Command rqbench regenerates the data-structure figures (2-5, plus the
// lazy-list negative result) natively on this host or on the simulated
// paper machine.
//
//	rqbench -fig 2 -mode sim
//	rqbench -fig 3 -mode native -threads 1,2,4 -duration 500ms -trials 3
//	rqbench -fig lazy -mode native -keyrange 2000
//	rqbench -fig durability -threads 1,2,4 -sync-every 0,1,64
//
// Native mode follows the paper's setup: structures prefilled to half of
// the key range (default 1,000,000), 100-key range queries, uniform
// keys, mean of the trials reported in Mops/s.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tscds"
	"tscds/internal/bench"
	"tscds/internal/obs"
	"tscds/internal/obs/series"
	"tscds/internal/sim"
	"tscds/internal/tsc"
)

type arm struct {
	name string
	s    tscds.Structure
	t    tscds.Technique
}

type figure struct {
	arms      []arm
	workloads []bench.Workload
	simFn     func(*sim.Machine) []sim.Panel
}

// figuresOverride is set by -custom.
var figuresOverride *figure

// metricsOn is set by -metrics, traceOn by -trace, shardCount by -shards.
var (
	metricsOn  bool
	traceOn    bool
	shardCount int
)

// curMetrics, curTracer, curHealth and curLabel always point at the arm
// currently running, so the -serve endpoint and the series collector
// read live state across arm changes. tscHealth is the process-wide TSC
// health monitor (-trace only); figures that build per-arm monitors
// (adaptive) re-point curHealth at theirs.
var (
	curMetrics atomic.Pointer[tscds.Metrics]
	curTracer  atomic.Pointer[tscds.Tracer]
	curHealth  atomic.Pointer[tsc.Health]
	curLabel   atomic.Pointer[string]
	tscHealth  *tsc.Health
)

// setArmLabel names the arm currently running for the series collector.
func setArmLabel(label string) { curLabel.Store(&label) }

// newMap builds an arm's map, attaching a fresh metrics registry when
// -metrics is set and a flight recorder when -trace is set. With
// -shards above 1 the map is built through the sharded front end.
func newMap(s tscds.Structure, t tscds.Technique, src tscds.SourceKind) (tscds.Map, *tscds.Metrics, error) {
	return newMapN(s, t, src, shardCount)
}

// newMapN is newMap at an explicit shard count (the shard-sweep figure
// varies it per point).
func newMapN(s tscds.Structure, t tscds.Technique, src tscds.SourceKind, shards int) (tscds.Map, *tscds.Metrics, error) {
	cfg := tscds.Config{Source: src, MaxThreads: 512}
	if metricsOn {
		cfg.Metrics = tscds.NewMetrics()
	}
	if traceOn {
		cfg.Trace = &tscds.TraceConfig{}
	}
	var m tscds.Map
	var err error
	if shards > 1 {
		m, err = tscds.NewSharded(s, t, shards, cfg)
	} else {
		m, err = tscds.New(s, t, cfg)
	}
	if err != nil {
		return nil, nil, err
	}
	warnSubstituted(m, src)
	curMetrics.Store(cfg.Metrics)
	curTracer.Store(m.Tracer())
	return m, cfg.Metrics, nil
}

// warnSubstituted discloses a hardware source the host cannot actually
// serve: numbers labeled e.g. "RDTSCP" would otherwise silently be
// monotonic-clock numbers. Printed once per kind.
var warnedKinds sync.Map

func warnSubstituted(m tscds.Map, src tscds.SourceKind) {
	if src == tscds.Adaptive {
		return // differing by design: the adaptive figure reports actuals itself
	}
	if act := m.SourceActual(); act != src {
		if _, dup := warnedKinds.LoadOrStore(src, true); !dup {
			fmt.Fprintf(os.Stderr, "warning: source %v is served by %v on this host; arms labeled %v measure %v\n",
				src, act, src, act)
		}
	}
}

// dumpMetrics prints a labeled snapshot (JSON plus the percentile
// summary) after an arm's runs.
func dumpMetrics(label string, reg *tscds.Metrics) {
	if reg == nil {
		return
	}
	fmt.Printf("metrics %s: %s\n", label, reg.String())
	fmt.Print(reg.Snapshot().Summary())
}

// dumpTrace prints the flame-style per-phase summary and one JSON line
// after an arm's runs.
func dumpTrace(label string, m tscds.Map) {
	tr := m.Tracer()
	if tr == nil {
		return
	}
	fmt.Printf("trace %s:\n", label)
	snap := m.TraceSnapshot(false)
	fmt.Print(snap.Format())
	fmt.Printf("trace-json %s\n", snap.JSON())
}

// benchOptions extends the base measurement options with -trace wiring:
// pprof labels identifying the arm and the periodic TSC health sampler.
func benchOptions(opts bench.Options, a arm, src tscds.SourceKind) bench.Options {
	if !traceOn {
		return opts
	}
	opts.Labels = map[string]string{
		"tscds.technique": a.t.String(),
		"tscds.structure": a.s.String(),
		"tscds.source":    src.String(),
	}
	if tscHealth != nil {
		opts.Sample = tscHealth.Sample
	}
	return opts
}

// writeBenchFile atomically publishes a BENCH_*.json artifact: the
// bytes land in a temp file in the destination directory, reach the
// disk, and are renamed into place — a crash or full disk mid-write
// can no longer leave a truncated artifact that downstream validation
// (CI's python checks) half-parses. Failures are fatal: a bench run
// whose artifact did not land must not exit 0.
func writeBenchFile(path string, b []byte) {
	err := func() error {
		dir := filepath.Dir(path)
		f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
		if err != nil {
			return err
		}
		tmp := f.Name()
		if _, err = f.Write(b); err == nil {
			err = f.Sync()
		}
		if err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			_ = os.Remove(tmp)
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			_ = os.Remove(tmp)
			return err
		}
		return nil
	}()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rqbench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
}

// writeMetricsSeries dumps the collector's retained points to path as a
// JSON array (no file when nothing was sampled). The point shape keeps
// the label/elapsed_ms/metrics keys the old -metrics-interval sampler
// wrote, now with at_unix_ms, health and per-interval rates alongside.
func writeMetricsSeries(c *series.Collector, path string) {
	points := c.Points()
	if len(points) == 0 {
		return
	}
	b, err := json.MarshalIndent(points, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rqbench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	writeBenchFile(path, append(b, '\n'))
	fmt.Printf("metrics-series: wrote %d samples to %s\n", len(points), path)
}

// customFigure parses "structure/technique" into a single-arm figure.
func customFigure(spec string) (figure, error) {
	structs := map[string]tscds.Structure{
		"bst": tscds.BST, "nmbst": tscds.NMBST, "citrus": tscds.Citrus,
		"skiplist": tscds.SkipList, "lazylist": tscds.LazyList,
	}
	techs := map[string]tscds.Technique{
		"vcas": tscds.VCAS, "bundle": tscds.Bundle,
		"ebrrq": tscds.EBRRQ, "ebrrq-lockfree": tscds.EBRRQLockFree,
	}
	parts := strings.SplitN(spec, "/", 2)
	if len(parts) != 2 {
		return figure{}, fmt.Errorf("custom arm %q: want structure/technique", spec)
	}
	st, ok1 := structs[parts[0]]
	te, ok2 := techs[parts[1]]
	if !ok1 || !ok2 {
		return figure{}, fmt.Errorf("custom arm %q: unknown structure or technique", spec)
	}
	return figure{
		arms:      []arm{{spec, st, te}},
		workloads: []bench.Workload{bench.PaperWorkload(10, 10, 80)},
	}, nil
}

func figures() map[string]figure {
	return map[string]figure{
		"2": {
			arms: []arm{{"vCAS", tscds.BST, tscds.VCAS}},
			workloads: []bench.Workload{
				bench.PaperWorkload(0, 10, 90), bench.PaperWorkload(2, 10, 88),
				bench.PaperWorkload(10, 10, 80), bench.PaperWorkload(20, 10, 70),
				bench.PaperWorkload(0, 20, 80), bench.PaperWorkload(2, 20, 78),
				bench.PaperWorkload(10, 20, 70), bench.PaperWorkload(20, 20, 60),
				bench.PaperWorkload(50, 10, 40), bench.PaperWorkload(100, 0, 0),
			},
			simFn: sim.Figure2,
		},
		"3": {
			arms: []arm{
				{"vCAS", tscds.Citrus, tscds.VCAS},
				{"Bundle", tscds.Citrus, tscds.Bundle},
			},
			workloads: []bench.Workload{
				bench.PaperWorkload(0, 10, 90), bench.PaperWorkload(2, 10, 88),
				bench.PaperWorkload(10, 10, 80), bench.PaperWorkload(20, 10, 70),
				bench.PaperWorkload(50, 10, 40), bench.PaperWorkload(90, 10, 0),
			},
			simFn: sim.Figure3,
		},
		"4": {
			arms: []arm{{"EBR-RQ", tscds.Citrus, tscds.EBRRQ}},
			workloads: []bench.Workload{
				bench.PaperWorkload(2, 10, 88), bench.PaperWorkload(10, 10, 80),
				bench.PaperWorkload(20, 10, 70), bench.PaperWorkload(50, 10, 40),
				bench.PaperWorkload(90, 10, 0), bench.PaperWorkload(100, 0, 0),
			},
			simFn: sim.Figure4,
		},
		"5": {
			arms: []arm{{"Bundle", tscds.SkipList, tscds.Bundle}},
			workloads: []bench.Workload{
				bench.PaperWorkload(10, 10, 80), bench.PaperWorkload(50, 10, 40),
				bench.PaperWorkload(90, 10, 0),
			},
			simFn: sim.Figure5,
		},
		"lazy": {
			arms: []arm{
				{"vCAS", tscds.LazyList, tscds.VCAS},
				{"Bundle", tscds.LazyList, tscds.Bundle},
			},
			workloads: []bench.Workload{{U: 10, RQ: 10, C: 80, KeyRange: 2000, RQLen: 100}},
			simFn:     sim.LazyListPanels,
		},
	}
}

// runShardSweep regenerates the sharded Logical-vs-TSC arm: one fixed
// thread count, shard counts 1-8, a range-query-heavy mix over the
// lock-free BST with vCAS. Sharding cuts structural contention on point
// operations S ways, but every range query still obtains its snapshot
// bound from the ONE shared source — so the Logical column flattens as
// shards grow (each query is a fetch-and-add on the same cache line,
// now arriving from S times less structure work) while the TSC column,
// whose timestamp is a core-local read, keeps the per-shard gains. This
// is the re-serialization cliff; see EXPERIMENTS.md.
func runShardSweep(threads []int, wl bench.Workload, duration time.Duration, trials int) {
	n := threads[len(threads)-1]
	shardCounts := []int{1, 2, 4, 8}
	results := map[string][]bench.Result{}
	for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC} {
		name := "vCAS"
		if src == tscds.TSC {
			name += "-RDTSCP"
		}
		for _, sc := range shardCounts {
			m, mreg, err := newMapN(tscds.BST, tscds.VCAS, src, sc)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := bench.Prefill(m, m, wl.KeyRange); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			res, err := bench.Run(m, m, wl, benchOptions(bench.Options{
				Threads: n, Duration: duration, Trials: trials, Pin: true, Seed: 7,
			}, arm{name, tscds.BST, tscds.VCAS}, src))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			results[name] = append(results[name], res)
			dumpMetrics(fmt.Sprintf("%s shards=%d %s", name, sc, wl.Label()), mreg)
			dumpTrace(fmt.Sprintf("%s shards=%d %s", name, sc, wl.Label()), m)
		}
	}
	fmt.Println(bench.AxisTable(
		fmt.Sprintf("Figure shard (re-serialization cliff), workload %s, %d threads, native (%d trials x %v)",
			wl.Label(), n, trials, duration),
		"shards", shardCounts, results))
}

// adaptiveArmRecord is one BENCH_adaptive.json entry: an arm's
// throughput next to the health monitor's switch telemetry, with the
// requested and actually-serving source kinds disclosed side by side.
type adaptiveArmRecord struct {
	Label        string    `json:"label"`
	Requested    string    `json:"requested_source"`
	Actual       string    `json:"actual_source"`
	Threads      []int     `json:"threads"`
	Mops         []float64 `json:"mops"`
	Switches     uint64    `json:"source_switches"`
	Failbacks    uint64    `json:"source_failbacks"`
	SwitchNSMean float64   `json:"switch_ns_mean,omitempty"`
	SwitchNSLast uint64    `json:"switch_ns_last,omitempty"`
	SwitchNSMax  uint64    `json:"switch_ns_max,omitempty"`
	Injected     uint64    `json:"injected_faults,omitempty"`
}

// runAdaptiveFigure regenerates the adaptive-source arm: Logical, TSC
// and Adaptive over the same structure and workload. The adaptive arm
// runs with a health monitor into which a background injector feeds
// periodic TSC backsteps, so the source actually exercises its
// failover/failback machinery mid-measurement; the cost of each
// generation switch (and how many happened) lands in BENCH_adaptive.json
// alongside the throughput it bought. The healthy-host reading: Adaptive
// tracks the TSC column until the first injection, then pays the logical
// counter's contention until failback.
func runAdaptiveFigure(threads []int, wl bench.Workload, duration time.Duration, trials int, injectEvery time.Duration) {
	results := map[string][]bench.Result{}
	var records []adaptiveArmRecord
	for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC, tscds.Adaptive} {
		name := map[tscds.SourceKind]string{
			tscds.Logical: "vCAS", tscds.TSC: "vCAS-RDTSCP", tscds.Adaptive: "vCAS-Adaptive",
		}[src]
		cfg := tscds.Config{Source: src, MaxThreads: 512}
		if metricsOn {
			cfg.Metrics = tscds.NewMetrics()
		}
		if traceOn {
			cfg.Trace = &tscds.TraceConfig{}
		}
		var health *tscds.TSCHealth
		if src == tscds.Adaptive {
			health = tscds.NewTSCHealth(512)
			cfg.Health = health
		}
		m, err := tscds.New(tscds.BST, tscds.VCAS, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		warnSubstituted(m, src)
		curMetrics.Store(cfg.Metrics)
		curTracer.Store(m.Tracer())
		if health != nil {
			curHealth.Store(health)
		} else {
			curHealth.Store(tscHealth)
		}
		setArmLabel(fmt.Sprintf("%s %s", name, wl.Label()))
		if err := bench.Prefill(m, m, wl.KeyRange); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var stopInject chan struct{}
		var injectDone sync.WaitGroup
		if health != nil && injectEvery > 0 {
			stopInject = make(chan struct{})
			injectDone.Add(1)
			go func() {
				defer injectDone.Done()
				tick := time.NewTicker(injectEvery)
				defer tick.Stop()
				for {
					select {
					case <-stopInject:
						return
					case <-tick.C:
						health.InjectBackstep(uint64(time.Hour))
					}
				}
			}()
		}
		rec := adaptiveArmRecord{Label: name, Requested: src.String()}
		for _, n := range threads {
			res, err := bench.Run(m, m, wl, benchOptions(bench.Options{
				Threads: n, Duration: duration, Trials: trials, Pin: true, Seed: 7,
			}, arm{name, tscds.BST, tscds.VCAS}, src))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			results[name] = append(results[name], res)
			rec.Threads = append(rec.Threads, n)
			rec.Mops = append(rec.Mops, res.Mean)
		}
		if stopInject != nil {
			close(stopInject)
			injectDone.Wait()
		}
		rec.Actual = m.SourceActual().String()
		if cfg.Metrics != nil {
			cfg.Metrics.SetSourceActual(rec.Actual)
		}
		if health != nil {
			hs := health.Snapshot()
			rec.Switches = hs.SourceSwitches
			rec.Failbacks = hs.SourceFailbacks
			rec.Injected = hs.InjectedFaults
			if n := hs.SourceSwitches + hs.SourceFailbacks; n > 0 {
				rec.SwitchNSMean = float64(hs.SwitchTotalNS) / float64(n)
			}
			rec.SwitchNSLast = hs.LastSwitchNS
			rec.SwitchNSMax = hs.MaxSwitchNS
			fmt.Printf("adaptive arm: %d switches, %d failbacks, mean switch %.0fns (last %dns, max %dns), final source %s\n",
				rec.Switches, rec.Failbacks, rec.SwitchNSMean, rec.SwitchNSLast, rec.SwitchNSMax, rec.Actual)
		}
		records = append(records, rec)
		dumpMetrics(fmt.Sprintf("%s %s", name, wl.Label()), cfg.Metrics)
		dumpTrace(fmt.Sprintf("%s %s", name, wl.Label()), m)
	}
	fmt.Println(bench.Table(
		fmt.Sprintf("Figure adaptive (failover cost), workload %s, native (%d trials x %v, backstep every %v)",
			wl.Label(), trials, duration, injectEvery),
		threads, results))
	b, err := json.MarshalIndent(records, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rqbench: writing BENCH_adaptive.json: %v\n", err)
		os.Exit(1)
	}
	writeBenchFile("BENCH_adaptive.json", append(b, '\n'))
	fmt.Printf("adaptive: wrote %d arm records to BENCH_adaptive.json\n", len(records))
}

// allocArmRecord is one BENCH_alloc.json entry: an allocation mode's
// throughput next to the runtime's allocation and GC-pause deltas over
// the measured window, plus the pool's own hit/miss/recycle counters.
type allocArmRecord struct {
	Label       string  `json:"label"`
	Alloc       string  `json:"alloc"`
	Source      string  `json:"source"`
	Threads     int     `json:"threads"`
	Mops        float64 `json:"mops"`
	Ops         uint64  `json:"ops"`
	Mallocs     uint64  `json:"mallocs"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	GCPauseNS   uint64  `json:"gc_pause_ns"`
	GCCycles    uint32  `json:"gc_cycles"`
	PoolHits    uint64  `json:"pool_hits,omitempty"`
	PoolMisses  uint64  `json:"pool_misses,omitempty"`
	Recycled    uint64  `json:"pool_recycled,omitempty"`
}

// runAllocFigure regenerates the allocation-mode arm: GC, Pool and Arena
// allocation over the same update-heavy workload, each under Logical and
// TSC sources, on the skip list + EBR-RQ pairing (the combination where
// epoch reclamation actually feeds the pools, so recycling — not just
// arena batching — is on the measured path). Updates dominate by design:
// every insert allocates a node and every delete retires one, so the
// figure isolates what Config.Alloc buys — allocs/op and GC pause time —
// next to the throughput it costs or earns. Results land in
// BENCH_alloc.json.
func runAllocFigure(threads []int, wl bench.Workload, duration time.Duration, trials int) {
	n := threads[len(threads)-1]
	results := map[string][]bench.Result{}
	var records []allocArmRecord
	for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC} {
		for _, am := range []tscds.AllocMode{tscds.AllocGC, tscds.AllocPool, tscds.AllocArena} {
			name := "EBR-RQ-" + am.String()
			if src == tscds.TSC {
				name += "-RDTSCP"
			}
			// Metrics are always on for this figure: the pool counters are
			// part of what it reports.
			cfg := tscds.Config{Source: src, MaxThreads: 512, Alloc: am, Metrics: tscds.NewMetrics()}
			if traceOn {
				cfg.Trace = &tscds.TraceConfig{}
			}
			m, err := tscds.New(tscds.SkipList, tscds.EBRRQ, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			warnSubstituted(m, src)
			curMetrics.Store(cfg.Metrics)
			curTracer.Store(m.Tracer())
			setArmLabel(fmt.Sprintf("%s %s", name, wl.Label()))
			if err := bench.Prefill(m, m, wl.KeyRange); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// Settle the heap so the deltas below cover the measurement,
			// not the prefill.
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			res, err := bench.Run(m, m, wl, benchOptions(bench.Options{
				Threads: n, Duration: duration, Trials: trials, Pin: true, Seed: 7,
			}, arm{name, tscds.SkipList, tscds.EBRRQ}, src))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.ReadMemStats(&after)
			results[name] = append(results[name], res)
			ops := uint64(res.OpSplit[0] + res.OpSplit[1] + res.OpSplit[2])
			rec := allocArmRecord{
				Label:     name,
				Alloc:     am.String(),
				Source:    src.String(),
				Threads:   n,
				Mops:      res.Mean,
				Ops:       ops,
				Mallocs:   after.Mallocs - before.Mallocs,
				GCPauseNS: after.PauseTotalNs - before.PauseTotalNs,
				GCCycles:  after.NumGC - before.NumGC,
			}
			if ops > 0 {
				rec.AllocsPerOp = float64(rec.Mallocs) / float64(ops)
			}
			if ps := cfg.Metrics.Snapshot().Pool; ps != nil {
				rec.PoolHits = ps.Hits
				rec.PoolMisses = ps.Misses
				rec.Recycled = ps.Recycled
			}
			records = append(records, rec)
			fmt.Printf("alloc arm %s: %.2f allocs/op (%d mallocs / %d ops), GC pause %v over %d cycles\n",
				name, rec.AllocsPerOp, rec.Mallocs, rec.Ops,
				time.Duration(rec.GCPauseNS), rec.GCCycles)
			if metricsOn {
				dumpMetrics(fmt.Sprintf("%s %s", name, wl.Label()), cfg.Metrics)
			}
			dumpTrace(fmt.Sprintf("%s %s", name, wl.Label()), m)
		}
	}
	fmt.Println(bench.Table(
		fmt.Sprintf("Figure alloc (allocation modes), workload %s, native (%d trials x %v)",
			wl.Label(), trials, duration),
		[]int{n}, results))
	b, err := json.MarshalIndent(records, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rqbench: writing BENCH_alloc.json: %v\n", err)
		os.Exit(1)
	}
	writeBenchFile("BENCH_alloc.json", append(b, '\n'))
	fmt.Printf("alloc: wrote %d arm records to BENCH_alloc.json\n", len(records))
}

// parseSyncSweep parses the -sync-every list ("0,1,64") into the
// durability figure's SyncEvery arms; 0 means the WAL stays off.
func parseSyncSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -sync-every entry %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sync-every: empty sweep")
	}
	return out, nil
}

// durabilityRecord is one BENCH_durability.json entry: a durability
// mode's throughput at one thread count next to the WAL's group-commit
// telemetry over exactly that run (counter deltas, not totals, so the
// prefill and other thread counts don't pollute the point).
type durabilityRecord struct {
	Label           string  `json:"label"`
	SyncEvery       int     `json:"sync_every"`
	Source          string  `json:"source"`
	Threads         int     `json:"threads"`
	Mops            float64 `json:"mops"`
	Appends         uint64  `json:"wal_appends,omitempty"`
	Batches         uint64  `json:"wal_batches,omitempty"`
	Fsyncs          uint64  `json:"wal_fsyncs,omitempty"`
	RecordsPerBatch float64 `json:"records_per_batch,omitempty"`
	RecordsPerFsync float64 `json:"records_per_fsync,omitempty"`
	SnapshotFlushes uint64  `json:"snapshot_flushes,omitempty"`
	SnapshotKeys    uint64  `json:"snapshot_keys,omitempty"`
}

// runDurabilityFigure regenerates the durability arm: the same
// update-heavy vCAS BST measured with the WAL off, in fully-durable
// sync mode (SyncEvery 1: every ack waits for an fsync covering its
// record), and in batched mode (SyncEvery from the sweep: ack after
// the buffered append, bounded loss) — each under the Logical and TSC
// sources. The interesting read is the group-commit amortization:
// sync mode's fsync count falls well below its append count as
// threads grow (concurrent updaters share fsyncs), which is why the
// sync column's scaling is less catastrophic than one-fsync-per-op
// arithmetic predicts. Each arm also flushes one explicit Checkpoint
// so snapshot cost is on record. Results land in
// BENCH_durability.json.
func runDurabilityFigure(threads []int, wl bench.Workload, duration time.Duration, trials int, sweep []int) {
	results := map[string][]bench.Result{}
	var records []durabilityRecord
	for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC} {
		for _, se := range sweep {
			name := "vCAS"
			switch {
			case se <= 0:
				name += "-WAL-off"
			case se == 1:
				name += "-WAL-sync"
			default:
				name += fmt.Sprintf("-WAL-batched%d", se)
			}
			if src == tscds.TSC {
				name += "-RDTSCP"
			}
			// Metrics are always on for this figure: the WAL counters are
			// part of what it reports.
			cfg := tscds.Config{Source: src, MaxThreads: 512, Metrics: tscds.NewMetrics()}
			if traceOn {
				cfg.Trace = &tscds.TraceConfig{}
			}
			var dir string
			if se > 0 {
				var err error
				dir, err = os.MkdirTemp("", "rqbench-wal-*")
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				cfg.Durability = &tscds.Durability{Dir: dir, SyncEvery: se}
			}
			m, err := tscds.New(tscds.BST, tscds.VCAS, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			warnSubstituted(m, src)
			curMetrics.Store(cfg.Metrics)
			curTracer.Store(m.Tracer())
			setArmLabel(fmt.Sprintf("%s %s", name, wl.Label()))
			if err := bench.Prefill(m, m, wl.KeyRange); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, n := range threads {
				var before obs.WALSnapshot
				if w := cfg.Metrics.Snapshot().WAL; w != nil {
					before = *w
				}
				res, err := bench.Run(m, m, wl, benchOptions(bench.Options{
					Threads: n, Duration: duration, Trials: trials, Pin: true, Seed: 7,
				}, arm{name, tscds.BST, tscds.VCAS}, src))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				results[name] = append(results[name], res)
				rec := durabilityRecord{
					Label: name, SyncEvery: se, Source: src.String(),
					Threads: n, Mops: res.Mean,
				}
				if w := cfg.Metrics.Snapshot().WAL; w != nil {
					rec.Appends = w.Appends - before.Appends
					rec.Batches = w.Batches - before.Batches
					rec.Fsyncs = w.Fsyncs - before.Fsyncs
					if rec.Batches > 0 {
						rec.RecordsPerBatch = float64(rec.Appends) / float64(rec.Batches)
					}
					if rec.Fsyncs > 0 {
						rec.RecordsPerFsync = float64(rec.Appends) / float64(rec.Fsyncs)
					}
					fmt.Printf("durability arm %s n=%d: %d appends in %d batches, %d fsyncs (%.1f records/fsync)\n",
						name, n, rec.Appends, rec.Batches, rec.Fsyncs, rec.RecordsPerFsync)
				}
				records = append(records, rec)
			}
			if dm, ok := m.(tscds.DurableMap); ok && se > 0 {
				if err := dm.Checkpoint(); err != nil {
					fmt.Fprintf(os.Stderr, "durability arm %s: checkpoint: %v\n", name, err)
					os.Exit(1)
				}
				if w := cfg.Metrics.Snapshot().WAL; w != nil && len(records) > 0 {
					last := &records[len(records)-1]
					last.SnapshotFlushes = w.SnapshotFlushes
					last.SnapshotKeys = w.SnapshotKeys
				}
				if err := dm.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "durability arm %s: close: %v\n", name, err)
					os.Exit(1)
				}
			}
			dumpMetrics(fmt.Sprintf("%s %s", name, wl.Label()), cfg.Metrics)
			dumpTrace(fmt.Sprintf("%s %s", name, wl.Label()), m)
			if dir != "" {
				os.RemoveAll(dir)
			}
		}
	}
	fmt.Println(bench.Table(
		fmt.Sprintf("Figure durability (WAL ack policies), workload %s, native (%d trials x %v)",
			wl.Label(), trials, duration),
		threads, results))
	b, err := json.MarshalIndent(records, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rqbench: writing BENCH_durability.json: %v\n", err)
		os.Exit(1)
	}
	writeBenchFile("BENCH_durability.json", append(b, '\n'))
	fmt.Printf("durability: wrote %d records to BENCH_durability.json\n", len(records))
}

// mvccArmRecord is one BENCH_mvcc.json entry: a time-travel arm's
// historical-read latency as a function of timestamp age, next to the
// live-read baseline and the facade's historical-read telemetry. The
// parallel slices line up index-for-index with AgeUpdates; a Truncated
// entry marks an age whose timestamp fell below the retention
// watermark, where the typed refusal (not a latency) is the result.
type mvccArmRecord struct {
	Label              string    `json:"label"`
	Source             string    `json:"source"`
	Retention          string    `json:"retention"` // "all" or the window in source ticks
	AgeUpdates         []uint64  `json:"age_updates"`
	GetAtNS            []float64 `json:"getat_ns"`
	RangeAtNS          []float64 `json:"rangeat_ns"`
	Truncated          []bool    `json:"truncated"`
	LiveGetNS          float64   `json:"live_get_ns"`
	LiveRangeNS        float64   `json:"live_range_ns"`
	HistoricalReads    uint64    `json:"historical_reads"`
	HistoryTruncations uint64    `json:"history_truncations"`
}

// runMvccFigure regenerates the MVCC time-travel arm: a vCAS BST under
// the Logical and TSC sources, each in a retain-all and a bounded-
// retention (-retention) configuration. The driver first grows a known
// version history — one update per step, capturing Now() after each, so
// a stamp's age in update-steps is exact — then measures single-thread
// GetAt/RangeQueryAt latency at stamps of increasing age next to the
// live Get/RangeQuery baseline. The expected shape: version-chain walks
// lengthen with age (each probe must skip every newer version), and the
// bounded-retention arms refuse the oldest ages with ErrTruncatedHistory
// instead of paying the walk — the reads-vs-truncations split lands in
// the record from the metrics registry. Results go to BENCH_mvcc.json.
func runMvccFigure(wl bench.Workload, retention uint64) {
	ages := []uint64{0, 16, 64, 256, 1024, 4096}
	maxAge := ages[len(ages)-1]
	const (
		getProbes   = 2000
		rangeProbes = 200
	)
	retainAll := ^uint64(0)
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var records []mvccArmRecord
	for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC} {
		for _, ret := range []uint64{retainAll, retention} {
			name := "vCAS"
			if src == tscds.TSC {
				name += "-RDTSCP"
			}
			retLabel := "all"
			if ret != retainAll {
				retLabel = strconv.FormatUint(ret, 10)
				name += "-retain" + retLabel
			}
			// Metrics are always on for this figure: the historical-read
			// counters are part of what it reports.
			cfg := tscds.Config{Source: src, MaxThreads: 512, Retention: ret, Metrics: tscds.NewMetrics()}
			if traceOn {
				cfg.Trace = &tscds.TraceConfig{}
			}
			m, err := tscds.New(tscds.BST, tscds.VCAS, cfg)
			if err != nil {
				fatal(err)
			}
			warnSubstituted(m, src)
			curMetrics.Store(cfg.Metrics)
			curTracer.Store(m.Tracer())
			setArmLabel(name)
			if err := bench.Prefill(m, m, wl.KeyRange); err != nil {
				fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				fatal(err)
			}
			// Grow history: one update per step (delete on even passes over
			// the key range, insert on odd, so every step changes state),
			// stamping the source after each. stamps[len-1-A] is then a
			// timestamp exactly A update-steps old.
			stamps := make([]uint64, 0, maxAge+1)
			stamps = append(stamps, m.Now())
			for i := uint64(0); i < maxAge; i++ {
				k := i % wl.KeyRange
				if (i/wl.KeyRange)%2 == 0 {
					m.Delete(th, k)
				} else {
					m.Insert(th, k, i)
				}
				stamps = append(stamps, m.Now())
			}
			rec := mvccArmRecord{Label: name, Source: src.String(), Retention: retLabel}
			buf := make([]tscds.KV, 0, wl.RQLen+1)
			for _, age := range ages {
				ts := stamps[uint64(len(stamps)-1)-age]
				truncated := false
				var getNS, rangeNS float64
				start := time.Now()
				n := 0
				for i := 0; i < getProbes && !truncated; i++ {
					if _, _, err := m.GetAt(th, uint64(i)%wl.KeyRange, ts); err != nil {
						if errors.Is(err, tscds.ErrTruncatedHistory) {
							truncated = true
							break
						}
						fatal(fmt.Errorf("mvcc arm %s: GetAt(age %d): %w", name, age, err))
					}
					n++
				}
				if n > 0 {
					getNS = float64(time.Since(start).Nanoseconds()) / float64(n)
				}
				start = time.Now()
				n = 0
				for i := 0; i < rangeProbes && !truncated; i++ {
					lo := (uint64(i) * 131) % wl.KeyRange
					if _, err := m.RangeQueryAt(th, lo, lo+wl.RQLen, ts, buf[:0]); err != nil {
						if errors.Is(err, tscds.ErrTruncatedHistory) {
							truncated = true
							break
						}
						fatal(fmt.Errorf("mvcc arm %s: RangeQueryAt(age %d): %w", name, age, err))
					}
					n++
				}
				if n > 0 {
					rangeNS = float64(time.Since(start).Nanoseconds()) / float64(n)
				}
				rec.AgeUpdates = append(rec.AgeUpdates, age)
				rec.GetAtNS = append(rec.GetAtNS, getNS)
				rec.RangeAtNS = append(rec.RangeAtNS, rangeNS)
				rec.Truncated = append(rec.Truncated, truncated)
			}
			// Live baseline over the same keys, same probe counts.
			start := time.Now()
			for i := 0; i < getProbes; i++ {
				m.Get(th, uint64(i)%wl.KeyRange)
			}
			rec.LiveGetNS = float64(time.Since(start).Nanoseconds()) / float64(getProbes)
			start = time.Now()
			for i := 0; i < rangeProbes; i++ {
				lo := (uint64(i) * 131) % wl.KeyRange
				m.RangeQuery(th, lo, lo+wl.RQLen, buf[:0])
			}
			rec.LiveRangeNS = float64(time.Since(start).Nanoseconds()) / float64(rangeProbes)
			if hs := cfg.Metrics.Snapshot().History; hs != nil {
				rec.HistoricalReads = hs.Reads
				rec.HistoryTruncations = hs.Truncations
			}
			for i, age := range rec.AgeUpdates {
				if rec.Truncated[i] {
					fmt.Printf("mvcc arm %s age=%d: truncated (below the retention watermark)\n", name, age)
					continue
				}
				fmt.Printf("mvcc arm %s age=%d: GetAt %.0fns, RangeQueryAt %.0fns (live %.0f / %.0f)\n",
					name, age, rec.GetAtNS[i], rec.RangeAtNS[i], rec.LiveGetNS, rec.LiveRangeNS)
			}
			fmt.Printf("mvcc arm %s: %d historical reads served, %d refused truncated\n",
				name, rec.HistoricalReads, rec.HistoryTruncations)
			records = append(records, rec)
			dumpMetrics(name, cfg.Metrics)
			dumpTrace(name, m)
			th.Release()
		}
	}
	b, err := json.MarshalIndent(records, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rqbench: writing BENCH_mvcc.json: %v\n", err)
		os.Exit(1)
	}
	writeBenchFile("BENCH_mvcc.json", append(b, '\n'))
	fmt.Printf("mvcc: wrote %d arm records to BENCH_mvcc.json\n", len(records))
}

func main() {
	fig := flag.String("fig", "2", "figure to regenerate: 2, 3, 4, 5, lazy, shard, adaptive, alloc, durability, mvcc")
	mode := flag.String("mode", "native", "native or sim")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (native)")
	duration := flag.Duration("duration", 500*time.Millisecond, "per-trial duration (native)")
	trials := flag.Int("trials", 3, "trials per point (native)")
	keyRange := flag.Uint64("keyrange", 1_000_000, "key range (native; figures 2-5)")
	zipf := flag.Float64("zipf", 0, "Zipfian key skew s (0 = paper's uniform; extension)")
	format := flag.String("format", "table", "sim output: table, csv, or chart")
	latency := flag.Bool("latency", false, "native: report per-class latency percentiles instead of throughput")
	timeline := flag.Bool("timeline", false, "native: report per-interval throughput and GC activity")
	custom := flag.String("custom", "", "run one custom arm instead of a figure, e.g. skiplist/vcas or citrus/bundle")
	metrics := flag.Bool("metrics", false, "native: dump a metrics snapshot (JSON) per arm after its runs")
	traceFlag := flag.Bool("trace", false, "native: record per-phase flight traces, print breakdowns per arm, monitor TSC health")
	metricsInterval := flag.Duration("metrics-interval", 0, "native: with -metrics, sample snapshots at this interval into BENCH_metrics.json")
	serveAddr := flag.String("serve", "", "native: serve live /metrics(.prom), /trace, /tschealth, /series and /events on this address (e.g. :8080)")
	serveLinger := flag.Duration("serve-linger", 0, "native: keep the -serve endpoint up this long after the figures finish (scrape window for CI/dashboards)")
	shardsFlag := flag.Int("shards", 1, "native: partition each map across this many shards (figure 'shard' sweeps 1,2,4,8 itself)")
	injectEvery := flag.Duration("inject-every", 100*time.Millisecond, "figure adaptive: TSC-backstep injection period (0 disables)")
	syncSweep := flag.String("sync-every", "0,1,64", "figure durability: comma-separated SyncEvery arms (0 = WAL off)")
	retention := flag.Uint64("retention", 2048, "figure mvcc: bounded-arm retention window in source ticks (the retain-all arms ignore it)")
	flag.Parse()
	metricsOn = *metrics
	traceOn = *traceFlag
	shardCount = *shardsFlag

	if traceOn {
		tscHealth = tsc.NewHealth(512)
		curHealth.Store(tscHealth)
	}

	// The series collector runs whenever anything consumes it: the
	// BENCH_metrics.json time series (-metrics -metrics-interval) or the
	// live endpoint (-serve). Its watchdog turns snapshot deltas into
	// /events entries.
	var collector *series.Collector
	var watchdog *obs.Watchdog
	if *serveAddr != "" || (metricsOn && *metricsInterval > 0) {
		iv := *metricsInterval
		if iv <= 0 {
			iv = time.Second
		}
		watchdog = obs.NewWatchdog(obs.DefaultRules(), nil)
		collector = series.New(series.Config{
			Interval: iv,
			Label: func() string {
				if l := curLabel.Load(); l != nil {
					return *l
				}
				return ""
			},
			Metrics:  func() *tscds.Metrics { return curMetrics.Load() },
			Health:   func() *tsc.Health { return curHealth.Load() },
			Watchdog: watchdog,
		})
		collector.Start()
		defer func() {
			collector.Stop()
			if metricsOn && *metricsInterval > 0 {
				writeMetricsSeries(collector, "BENCH_metrics.json")
			}
		}()
	}

	if *serveAddr != "" {
		srv, err := obs.Serve(*serveAddr, map[string]obs.Var{
			"metrics": obs.Live(func() obs.Var {
				if reg := curMetrics.Load(); reg != nil {
					return reg
				}
				return nil
			}),
			"trace": obs.Live(func() obs.Var {
				if tr := curTracer.Load(); tr != nil {
					return tr
				}
				return nil
			}),
			"tschealth": obs.Live(func() obs.Var {
				if h := curHealth.Load(); h != nil {
					return h
				}
				return nil
			}),
			"series": collector,
			"events": watchdog,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		if *serveLinger > 0 {
			defer func() {
				fmt.Printf("lingering %v for scrapers (-serve-linger)\n", *serveLinger)
				time.Sleep(*serveLinger)
			}()
		}
		fmt.Printf("serving stats on http://%s/metrics\n", srv.Addr())
	}

	if *custom != "" {
		f2, err := customFigure(*custom)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		figuresOverride = &f2
	}

	if *custom == "" && *fig == "adaptive" {
		if *mode == "sim" {
			fmt.Fprintln(os.Stderr, "figure adaptive runs natively only")
			os.Exit(1)
		}
		threads, err := bench.ParseThreads(*threadsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wl := bench.PaperWorkload(10, 10, 80)
		wl.KeyRange = *keyRange
		wl.ZipfS = *zipf
		runAdaptiveFigure(threads, wl, *duration, *trials, *injectEvery)
		if tscHealth != nil {
			fmt.Printf("tschealth %s\n", tscHealth.String())
		}
		return
	}

	if *custom == "" && *fig == "alloc" {
		if *mode == "sim" {
			fmt.Fprintln(os.Stderr, "figure alloc runs natively only")
			os.Exit(1)
		}
		threads, err := bench.ParseThreads(*threadsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Update-heavy by design: every insert allocates and every delete
		// retires, so allocation modes separate maximally here.
		wl := bench.PaperWorkload(100, 0, 0)
		wl.KeyRange = *keyRange
		wl.ZipfS = *zipf
		runAllocFigure(threads, wl, *duration, *trials)
		if tscHealth != nil {
			fmt.Printf("tschealth %s\n", tscHealth.String())
		}
		return
	}

	if *custom == "" && *fig == "durability" {
		if *mode == "sim" {
			fmt.Fprintln(os.Stderr, "figure durability runs natively only")
			os.Exit(1)
		}
		threads, err := bench.ParseThreads(*threadsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sweep, err := parseSyncSweep(*syncSweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Update-heavy: only inserts and deletes cross the WAL, so reads
		// would just dilute the arms. The key range defaults small here —
		// prefill runs through the durable path, and in sync mode each
		// prefilled key pays a full fsync.
		wl := bench.PaperWorkload(50, 10, 40)
		wl.KeyRange = *keyRange
		if *keyRange == 1_000_000 {
			wl.KeyRange = 8192
		}
		wl.ZipfS = *zipf
		runDurabilityFigure(threads, wl, *duration, *trials, sweep)
		if tscHealth != nil {
			fmt.Printf("tschealth %s\n", tscHealth.String())
		}
		return
	}

	if *custom == "" && *fig == "mvcc" {
		if *mode == "sim" {
			fmt.Fprintln(os.Stderr, "figure mvcc runs natively only")
			os.Exit(1)
		}
		// Only KeyRange and RQLen matter here: the figure runs its own
		// deterministic history-growth phase and single-thread latency
		// probes rather than a mixed throughput workload. The key range
		// defaults smaller than the throughput figures' — history depth is
		// measured in update-steps over the range, and the probes should
		// hit keys whose version chains actually grew.
		wl := bench.PaperWorkload(10, 10, 80)
		wl.KeyRange = *keyRange
		if *keyRange == 1_000_000 {
			wl.KeyRange = 65536
		}
		runMvccFigure(wl, *retention)
		if tscHealth != nil {
			fmt.Printf("tschealth %s\n", tscHealth.String())
		}
		return
	}

	if *custom == "" && *fig == "shard" {
		if *mode == "sim" {
			fmt.Fprintln(os.Stderr, "figure shard runs natively only")
			os.Exit(1)
		}
		threads, err := bench.ParseThreads(*threadsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wl := bench.PaperWorkload(10, 30, 60) // range-heavy: the cliff is a range-query effect
		wl.KeyRange = *keyRange
		wl.ZipfS = *zipf
		runShardSweep(threads, wl, *duration, *trials)
		if tscHealth != nil {
			fmt.Printf("tschealth %s\n", tscHealth.String())
		}
		return
	}

	var f figure
	if figuresOverride != nil {
		f = *figuresOverride
	} else {
		var ok bool
		f, ok = figures()[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
			os.Exit(1)
		}
	}

	if *mode == "sim" {
		if f.simFn == nil {
			fmt.Fprintln(os.Stderr, "custom arms run natively only")
			os.Exit(1)
		}
		for _, p := range f.simFn(sim.PaperMachine()) {
			switch *format {
			case "csv":
				fmt.Print(sim.FormatCSV(p))
			case "chart":
				fmt.Println(sim.FormatChart(p, 16))
			default:
				fmt.Println(sim.FormatPanel(p))
				if s := sim.PanelSummary(p); s != "" {
					fmt.Print(s, "\n")
				}
			}
		}
		return
	}

	threads, err := bench.ParseThreads(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, wl := range f.workloads {
		if wl.KeyRange == 1_000_000 {
			wl.KeyRange = *keyRange
		}
		wl.ZipfS = *zipf
		if *timeline {
			for _, a := range f.arms {
				for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC} {
					m, mreg, err := newMap(a.s, a.t, src)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					if err := bench.Prefill(m, m, wl.KeyRange); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					tl, err := bench.RunTimeline(m, m, wl, threads[len(threads)-1], *duration, *duration/10, 7)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					fmt.Printf("%s/%v, workload %s, timeline:\n%s\n", a.name, src, wl.Label(), tl)
					dumpMetrics(fmt.Sprintf("%s/%v %s", a.name, src, wl.Label()), mreg)
					dumpTrace(fmt.Sprintf("%s/%v %s", a.name, src, wl.Label()), m)
				}
			}
			continue
		}
		if *latency {
			for _, a := range f.arms {
				for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC} {
					m, mreg, err := newMap(a.s, a.t, src)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					if err := bench.Prefill(m, m, wl.KeyRange); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					res, err := bench.MeasureLatency(m, m, wl, *duration, 7)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					fmt.Printf("%s/%v, workload %s, latency over %v:\n%s\n", a.name, src, wl.Label(), *duration, res)
					dumpMetrics(fmt.Sprintf("%s/%v %s", a.name, src, wl.Label()), mreg)
					dumpTrace(fmt.Sprintf("%s/%v %s", a.name, src, wl.Label()), m)
				}
			}
			continue
		}
		results := map[string][]bench.Result{}
		for _, a := range f.arms {
			for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC} {
				name := a.name
				if src == tscds.TSC {
					name += "-RDTSCP"
				}
				m, mreg, err := newMap(a.s, a.t, src)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := bench.Prefill(m, m, wl.KeyRange); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				setArmLabel(fmt.Sprintf("%s %s", name, wl.Label()))
				for _, n := range threads {
					res, err := bench.Run(m, m, wl, benchOptions(bench.Options{
						Threads: n, Duration: *duration, Trials: *trials, Pin: true, Seed: 7,
					}, a, src))
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					results[name] = append(results[name], res)
				}
				dumpMetrics(fmt.Sprintf("%s %s", name, wl.Label()), mreg)
				dumpTrace(fmt.Sprintf("%s %s", name, wl.Label()), m)
			}
		}
		fmt.Println(bench.Table(
			fmt.Sprintf("Figure %s, workload %s, native (%d trials x %v)", *fig, wl.Label(), *trials, *duration),
			threads, results))
	}
	if tscHealth != nil {
		fmt.Printf("tschealth %s\n", tscHealth.String())
	}
}

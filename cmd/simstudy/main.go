// Command simstudy sweeps the simulator's calibration constants and
// reports how each headline reproduction ratio responds, demonstrating
// that the paper's qualitative conclusions are properties of the
// contention model, not of one parameter choice: the EBR-RQ ratio stays
// near 1x and the vCAS ratio stays well above 1x across wide ranges.
package main

import (
	"flag"
	"fmt"

	"tscds/internal/sim"
)

func main() {
	flag.Parse()
	heads := sim.Headlines()

	fmt.Println("Headline ratios at the calibrated machine:")
	base := sim.PaperMachine()
	for _, h := range heads {
		fmt.Printf("  %-18s %8.2fx   (paper: %s)\n", h.Name, h.Eval(base), h.Claim)
	}
	fmt.Println()

	for _, sw := range sim.Sweeps() {
		fmt.Printf("sweep %s:\n", sw.Name)
		fmt.Printf("  %10s", "value")
		for _, h := range heads {
			fmt.Printf(" %16s", h.Name)
		}
		fmt.Println()
		for _, row := range sim.RunSweep(sw, heads) {
			fmt.Printf("  %10.2f", row.Value)
			for _, r := range row.Ratios {
				fmt.Printf(" %15.2fx", r)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

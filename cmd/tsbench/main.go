// Command tsbench regenerates Figure 1: the throughput of acquiring
// timestamps from a logical counter versus the hardware counter, across
// thread counts, with and without interleaved local work.
//
// Modes:
//
//	-mode native   measure on this host (thread counts capped by CPUs)
//	-mode sim      regenerate the paper machine's curves (4x24x2 Xeon)
//
// Example:
//
//	tsbench -mode native -threads 1,2,4 -duration 200ms
//	tsbench -mode sim
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"tscds/internal/affinity"
	"tscds/internal/bench"
	"tscds/internal/core"
	"tscds/internal/sim"
)

func main() {
	mode := flag.String("mode", "native", "native or sim")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (native; default 1..NumCPU)")
	duration := flag.Duration("duration", 300*time.Millisecond, "per-point duration (native)")
	flag.Parse()

	switch *mode {
	case "sim":
		for _, p := range sim.Figure1(sim.PaperMachine()) {
			fmt.Println(sim.FormatPanel(p))
		}
	case "native":
		threads, err := bench.ParseThreads(*threadsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runNative(threads, *duration)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

func runNative(threads []int, d time.Duration) {
	kinds := []core.Kind{core.Logical, core.TSC, core.TSCCPUID, core.TSCUnfenced, core.TSCRaw}
	for _, panel := range []struct {
		name string
		work bool
	}{{"top: bare acquisition", false}, {"bottom: acquisition + local work", true}} {
		fmt.Printf("Figure 1 (%s), native, %v/point\n", panel.name, d)
		fmt.Printf("%8s", "threads")
		for _, k := range kinds {
			fmt.Printf(" %16s", k)
		}
		fmt.Println()
		for _, n := range threads {
			fmt.Printf("%8d", n)
			for _, k := range kinds {
				mops := measure(core.New(k), n, d, panel.work)
				fmt.Printf(" %11.2f Mops", mops)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func measure(src core.Source, threads int, d time.Duration, work bool) float64 {
	var stop core.PaddedBool
	counts := make([]struct {
		n int64
		_ [56]byte
	}, threads)
	pinner := affinity.NewPinner()
	var ready, done sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < threads; i++ {
		ready.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			unpin := pinner.Pin(i)
			defer unpin()
			ready.Done()
			start.Wait()
			sink := uint64(0)
			for !stop.Load() {
				sink += src.Advance()
				if work {
					for j := 0; j < 100; j++ {
						sink = sink*2862933555777941757 + 3037000493
					}
				}
				counts[i].n++
			}
			_ = sink
		}(i)
	}
	ready.Wait()
	begin := time.Now()
	start.Done()
	time.Sleep(d)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin).Seconds()
	var total int64
	for i := range counts {
		total += counts[i].n
	}
	return float64(total) / elapsed / 1e6
}

// tscstat is a vmstat-style live dashboard for a tscds process serving
// obs endpoints (rqbench/reproduce -serve, or any embedder of
// obs.Serve). Once per interval it polls /series and /events and
// renders ops/s, p50/p99 latency by op class, timestamp-source health,
// pool hit rate and WAL fsync rate.
//
//	tscstat -addr 127.0.0.1:8090               full-screen ANSI panel
//	tscstat -addr 127.0.0.1:8090 -plain        one line per tick (logs)
//	tscstat -addr 127.0.0.1:8090 -once         single sample, then exit
//	tscstat -addr 127.0.0.1:8090 -check        validate every endpoint
//
// -check is the machine mode used by CI: it scrapes /metrics.prom and
// /metrics (with a Prometheus Accept header) and runs both through the
// strict in-repo exposition parser, requires /series to carry at least
// one point and /trace?format=chrome to be structurally valid
// trace-event JSON, and — with -want-event — waits for a named watchdog
// rule to appear on /events. Exit status 0 only if everything passed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"tscds/internal/obs"
	"tscds/internal/obs/promparse"
	"tscds/internal/obs/series"
)

var (
	addr     = flag.String("addr", "127.0.0.1:8090", "host:port of a live obs.Serve endpoint")
	interval = flag.Duration("interval", time.Second, "poll interval")
	once     = flag.Bool("once", false, "render one sample and exit")
	plain    = flag.Bool("plain", false, "vmstat-style line output instead of the ANSI panel")
	check    = flag.Bool("check", false, "validate every endpoint and exit (CI mode)")
	timeout  = flag.Duration("timeout", 30*time.Second, "overall deadline for -check (retries until the endpoint is up)")
	wantEv   = flag.String("want-event", "", "with -check: require a watchdog event with this rule name on /events")
)

func main() {
	flag.Parse()
	if *check {
		os.Exit(runCheck())
	}
	runDashboard()
}

// ---- HTTP plumbing ----

var client = &http.Client{Timeout: 10 * time.Second}

func get(path string, hdr map[string]string) ([]byte, string, error) {
	req, err := http.NewRequest("GET", "http://"+*addr+path, nil)
	if err != nil {
		return nil, "", err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return body, resp.Header.Get("Content-Type"), fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return body, resp.Header.Get("Content-Type"), nil
}

// seriesPage mirrors the /series JSON shape.
type seriesPage struct {
	IntervalMS int64          `json:"interval_ms"`
	Retention  int            `json:"retention"`
	Points     []series.Point `json:"points"`
}

// eventsPage mirrors the /events JSON shape.
type eventsPage struct {
	Total  uint64      `json:"total"`
	Events []obs.Event `json:"events"`
}

func fetchSeries(last int) (*seriesPage, error) {
	body, _, err := get(fmt.Sprintf("/series?last=%d", last), nil)
	if err != nil {
		return nil, err
	}
	var p seriesPage
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("/series: %v", err)
	}
	return &p, nil
}

func fetchEvents(last int) (*eventsPage, error) {
	body, _, err := get(fmt.Sprintf("/events?last=%d", last), nil)
	if err != nil {
		return nil, err
	}
	var p eventsPage
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("/events: %v", err)
	}
	return &p, nil
}

// ---- dashboard ----

func runDashboard() {
	ticks := 0
	for {
		sp, err := fetchSeries(2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tscstat: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		ep, _ := fetchEvents(5) // events endpoint is optional
		if *plain {
			renderPlain(sp, ticks)
		} else {
			renderPanel(sp, ep)
		}
		ticks++
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func latest(sp *seriesPage) *series.Point {
	if sp == nil || len(sp.Points) == 0 {
		return nil
	}
	return &sp.Points[len(sp.Points)-1]
}

func fmtNS(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// opOrder keeps the panel rows stable.
var opOrder = []string{"update", "range-query", "contains"}

func renderPanel(sp *seriesPage, ep *eventsPage) {
	p := latest(sp)
	var b strings.Builder
	b.WriteString("\x1b[H\x1b[2J") // home + clear
	fmt.Fprintf(&b, "\x1b[1mtscstat\x1b[0m  %s  interval %dms", *addr, sp.IntervalMS)
	if p == nil {
		b.WriteString("\n\n  (no samples yet)\n")
		os.Stdout.WriteString(b.String())
		return
	}
	if p.Label != "" {
		fmt.Fprintf(&b, "  arm \x1b[1m%s\x1b[0m", p.Label)
	}
	fmt.Fprintf(&b, "  up %s\n\n", (time.Duration(p.ElapsedMS) * time.Millisecond).Truncate(time.Second))

	// Ops table: interval rate + lifetime latency quantiles.
	fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s %10s\n", "op class", "ops/s", "p50", "p99", "max", "total")
	for _, class := range opOrder {
		hs, ok := p.Metrics.Ops[class]
		if !ok || hs.Count == 0 {
			continue
		}
		rate := "-"
		if p.Rates != nil {
			rate = fmtRate(p.Rates.OpsPerSec[class]) + "/s"
		}
		fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s %10d\n",
			class, rate, fmtNS(hs.P50NS), fmtNS(hs.P99NS), fmtNS(hs.MaxNS), hs.Count)
	}
	if p.Rates != nil {
		fmt.Fprintf(&b, "  %-12s %10s\n", "all", fmtRate(p.Rates.TotalOpsPerSec)+"/s")
	}

	// Source line.
	src := p.Metrics.Source
	fmt.Fprintf(&b, "\n  source %s", src.Kind)
	if src.Actual != "" && src.Actual != src.Kind {
		fmt.Fprintf(&b, " (actual %s)", src.Actual)
	}
	if p.Rates != nil {
		fmt.Fprintf(&b, "  advances %s/s  snapshots %s/s",
			fmtRate(p.Rates.AdvancesPerSec), fmtRate(p.Rates.SnapshotsPerSec))
		if p.Rates.SnapshotRetriesPerSec > 0 {
			fmt.Fprintf(&b, "  \x1b[33mretries %s/s\x1b[0m", fmtRate(p.Rates.SnapshotRetriesPerSec))
		}
	}
	b.WriteByte('\n')
	if h := p.Health; h != nil {
		color := "\x1b[32m" // green
		if h.State != "healthy" {
			color = "\x1b[31m" // red
		}
		fmt.Fprintf(&b, "  tsc %s%s\x1b[0m  backsteps %d (injected %d)  stalls %d  switches %d/%d\n",
			color, h.State, h.CrossRegressions, h.InjectedFaults, h.SourceStalls,
			h.SourceSwitches, h.SourceFailbacks)
	}

	// Reclamation / pool / WAL.
	fmt.Fprintf(&b, "  limbo %d", p.Metrics.GC.LimboLen)
	if pool := p.Metrics.Pool; pool != nil {
		hitRate := "-"
		if p.Rates != nil && p.Rates.PoolHitRate >= 0 {
			hitRate = fmt.Sprintf("%.1f%%", 100*p.Rates.PoolHitRate)
		}
		fmt.Fprintf(&b, "  pool(%s) hit %s  recycled %d", pool.Mode, hitRate, pool.Recycled)
	}
	if wal := p.Metrics.WAL; wal != nil {
		fmt.Fprintf(&b, "  wal(%s)", wal.Mode)
		if p.Rates != nil {
			fmt.Fprintf(&b, " appends %s/s fsyncs %s/s",
				fmtRate(p.Rates.WALAppendsPerSec), fmtRate(p.Rates.WALFsyncsPerSec))
		}
		if wal.Errors > 0 {
			fmt.Fprintf(&b, "  \x1b[31merrors %d\x1b[0m", wal.Errors)
		}
	}
	b.WriteByte('\n')

	// Recent watchdog events.
	if ep != nil && len(ep.Events) > 0 {
		fmt.Fprintf(&b, "\n  events (%d total):\n", ep.Total)
		for _, ev := range ep.Events {
			color := "\x1b[33m"
			if ev.Severity == obs.SeverityCritical {
				color = "\x1b[31m"
			}
			fmt.Fprintf(&b, "   %s %s[%s] %s\x1b[0m %s\n",
				ev.At.Format("15:04:05"), color, ev.Severity, ev.Rule, ev.Message)
		}
	}
	os.Stdout.WriteString(b.String())
}

// renderPlain emits one vmstat-style line per tick.
func renderPlain(sp *seriesPage, tick int) {
	p := latest(sp)
	if p == nil {
		fmt.Println("(no samples yet)")
		return
	}
	if tick%20 == 0 {
		fmt.Printf("%-8s %10s %10s %10s %10s %9s %8s %8s %8s\n",
			"arm", "ops/s", "upd-p99", "rq-p99", "con-p99", "tsc", "backstep", "limbo", "fsync/s")
	}
	rate, fsync := "-", "-"
	if p.Rates != nil {
		rate = fmtRate(p.Rates.TotalOpsPerSec)
		if p.Metrics.WAL != nil {
			fsync = fmtRate(p.Rates.WALFsyncsPerSec)
		}
	}
	q := func(class string) string {
		if hs, ok := p.Metrics.Ops[class]; ok && hs.Count > 0 {
			return fmtNS(hs.P99NS)
		}
		return "-"
	}
	state, back := "-", uint64(0)
	if p.Health != nil {
		state = p.Health.State
		back = p.Health.CrossRegressions + p.Health.InjectedFaults
	}
	fmt.Printf("%-8s %10s %10s %10s %10s %9s %8d %8d %8s\n",
		p.Label, rate, q("update"), q("range-query"), q("contains"),
		state, back, p.Metrics.GC.LimboLen, fsync)
}

// ---- -check mode ----

func runCheck() int {
	deadline := time.Now().Add(*timeout)
	fails := []string{}
	pass := func(what string) { fmt.Printf("ok   %s\n", what) }
	fail := func(what string, err any) {
		msg := fmt.Sprintf("FAIL %s: %v", what, err)
		fmt.Println(msg)
		fails = append(fails, msg)
	}

	// Wait for the endpoint to come up at all.
	var body []byte
	var err error
	for {
		body, _, err = get("/metrics.prom", nil)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if err != nil {
		fail("/metrics.prom reachable", err)
		return 1
	}

	// /metrics.prom must satisfy the strict parser with zero diagnostics.
	res, diags := promparse.Parse(body)
	if len(diags) > 0 {
		fail("/metrics.prom strict parse", strings.Join(diags, "; "))
	} else {
		pass(fmt.Sprintf("/metrics.prom strict parse (%d families)", len(res.Families)))
	}
	for _, fam := range []string{"tscds_ops_total", "tscds_op_latency_ns", "tscds_source_advances_total"} {
		if res.Family(fam) == nil {
			fail("family "+fam, "absent from /metrics.prom")
		} else {
			pass("family " + fam)
		}
	}

	// /metrics with a Prometheus Accept header must negotiate to the
	// text exposition and parse just as strictly.
	nb, ct, err := get("/metrics", map[string]string{"Accept": "text/plain"})
	switch {
	case err != nil:
		fail("/metrics Accept negotiation", err)
	case !strings.HasPrefix(ct, "text/plain"):
		fail("/metrics Accept negotiation", "Content-Type "+ct)
	default:
		if _, d := promparse.Parse(nb); len(d) > 0 {
			fail("/metrics negotiated exposition", strings.Join(d, "; "))
		} else {
			pass("/metrics Accept negotiation")
		}
	}

	// /metrics without the header stays a JSON object.
	jb, _, err := get("/metrics", nil)
	var anyJSON map[string]any
	if err != nil || json.Unmarshal(jb, &anyJSON) != nil {
		fail("/metrics JSON aggregate", err)
	} else {
		pass("/metrics JSON aggregate")
	}

	// /series must be JSON with at least one point (retry — the
	// collector may not have ticked yet).
	var sp *seriesPage
	for {
		sp, err = fetchSeries(0)
		if (err == nil && len(sp.Points) > 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if err != nil {
		fail("/series", err)
	} else if len(sp.Points) == 0 {
		fail("/series", "no points within deadline")
	} else {
		pass(fmt.Sprintf("/series (%d points)", len(sp.Points)))
	}

	// /trace?format=chrome must be trace-event JSON. A server running
	// without -trace serves "null" (no recorder); that is a valid
	// deployment, not a telemetry failure.
	tb, _, err := get("/trace?format=chrome", nil)
	if err != nil {
		fail("/trace?format=chrome", err)
	} else if strings.TrimSpace(string(tb)) == "null" {
		pass("/trace (tracing disabled)")
	} else {
		var tr struct {
			TraceEvents *[]map[string]any `json:"traceEvents"`
		}
		if json.Unmarshal(tb, &tr) != nil || tr.TraceEvents == nil {
			fail("/trace?format=chrome", "missing traceEvents array")
		} else {
			pass(fmt.Sprintf("/trace?format=chrome (%d events)", len(*tr.TraceEvents)))
		}
	}

	// /events must be JSON; with -want-event, the named rule must fire
	// before the deadline.
	var ep *eventsPage
	for {
		ep, err = fetchEvents(0)
		if err == nil && *wantEv != "" && !hasRule(ep, *wantEv) && !time.Now().After(deadline) {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		break
	}
	if err != nil {
		fail("/events", err)
	} else if *wantEv != "" && !hasRule(ep, *wantEv) {
		rules := map[string]bool{}
		for _, ev := range ep.Events {
			rules[ev.Rule] = true
		}
		seen := make([]string, 0, len(rules))
		for r := range rules {
			seen = append(seen, r)
		}
		sort.Strings(seen)
		fail("/events", fmt.Sprintf("rule %q never fired (saw %v)", *wantEv, seen))
	} else {
		pass(fmt.Sprintf("/events (%d events)", len(ep.Events)))
	}

	if len(fails) > 0 {
		fmt.Printf("tscstat -check: %d failure(s)\n", len(fails))
		return 1
	}
	fmt.Println("tscstat -check: all endpoints valid")
	return 0
}

func hasRule(ep *eventsPage, rule string) bool {
	if ep == nil {
		return false
	}
	for _, ev := range ep.Events {
		if ev.Rule == rule {
			return true
		}
	}
	return false
}

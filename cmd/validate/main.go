// Command validate stress-checks the linearizability of range queries
// for every (structure, technique, source) combination using three
// order-theoretic probes:
//
//	prefix   one writer inserts ascending keys; every snapshot must be a
//	         prefix of the insertion order
//	suffix   one writer deletes ascending keys from a full map; every
//	         snapshot must be a suffix
//	stripe   random churn on odd keys; even keys must always appear
//	         exactly once, with no duplicates anywhere
//
// Any torn snapshot — a range query mixing two points in time — fails a
// probe. Exit status is nonzero on failure.
//
//	validate -duration 2s              # all combinations
//	validate -combo skiplist/vcas      # one combination
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tscds"
)

type combo struct {
	name string
	s    tscds.Structure
	t    tscds.Technique
}

func combos() []combo {
	return []combo{
		{"bst/vcas", tscds.BST, tscds.VCAS},
		{"nmbst/vcas", tscds.NMBST, tscds.VCAS},
		{"bst/ebrrq", tscds.BST, tscds.EBRRQ},
		{"bst/ebrrq-lockfree", tscds.BST, tscds.EBRRQLockFree},
		{"citrus/vcas", tscds.Citrus, tscds.VCAS},
		{"citrus/bundle", tscds.Citrus, tscds.Bundle},
		{"citrus/ebrrq", tscds.Citrus, tscds.EBRRQ},
		{"citrus/ebrrq-lockfree", tscds.Citrus, tscds.EBRRQLockFree},
		{"skiplist/bundle", tscds.SkipList, tscds.Bundle},
		{"skiplist/vcas", tscds.SkipList, tscds.VCAS},
		{"skiplist/ebrrq", tscds.SkipList, tscds.EBRRQ},
		{"lazylist/vcas", tscds.LazyList, tscds.VCAS},
		{"lazylist/bundle", tscds.LazyList, tscds.Bundle},
	}
}

func main() {
	duration := flag.Duration("duration", 1*time.Second, "time per probe")
	comboFlag := flag.String("combo", "", "restrict to one combination (e.g. citrus/bundle)")
	keys := flag.Uint64("keys", 3000, "key-space size per probe")
	flag.Parse()

	failures := 0
	for _, c := range combos() {
		if *comboFlag != "" && c.name != *comboFlag {
			continue
		}
		sources := []tscds.SourceKind{tscds.Logical, tscds.TSC}
		if c.t == tscds.EBRRQLockFree {
			sources = []tscds.SourceKind{tscds.Logical}
		}
		for _, src := range sources {
			for _, probe := range []struct {
				name string
				fn   func(tscds.Map, uint64, time.Duration) error
			}{{"prefix", prefixProbe}, {"suffix", suffixProbe}, {"stripe", stripeProbe}} {
				m, err := tscds.New(c.s, c.t, tscds.Config{Source: src, MaxThreads: 64})
				if err != nil {
					fmt.Printf("FAIL %-24s %-8s %-7s construct: %v\n", c.name, src, probe.name, err)
					failures++
					continue
				}
				n := *keys
				if c.s == tscds.LazyList && n > 800 {
					n = 800 // O(n) traversals
				}
				if err := probe.fn(m, n, *duration); err != nil {
					fmt.Printf("FAIL %-24s %-8s %-7s %v\n", c.name, src, probe.name, err)
					failures++
				} else {
					fmt.Printf("ok   %-24s %-8s %-7s\n", c.name, src, probe.name)
				}
			}
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d probe(s) failed\n", failures)
		os.Exit(1)
	}
}

func sortedKeys(kvs []tscds.KV) []uint64 {
	keys := make([]uint64, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// prefixProbe: ascending inserts; snapshots must be prefixes.
func prefixProbe(m tscds.Map, n uint64, d time.Duration) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if err := onePrefixRound(m, n); err != nil {
			return err
		}
		// Clear for the next round.
		th, _ := m.RegisterThread()
		for k := uint64(1); k <= n; k++ {
			m.Delete(th, k)
		}
		th.Release()
	}
	return nil
}

func onePrefixRound(m tscds.Map, n uint64) error {
	var wg sync.WaitGroup
	var fail atomic.Pointer[string]
	wg.Add(1)
	go func() {
		defer wg.Done()
		th, _ := m.RegisterThread()
		defer th.Release()
		for k := uint64(1); k <= n; k++ {
			m.Insert(th, k, k)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		th, _ := m.RegisterThread()
		defer th.Release()
		for {
			keys := sortedKeys(m.RangeQuery(th, 1, n, nil))
			for i, k := range keys {
				if k != uint64(i+1) {
					msg := fmt.Sprintf("snapshot not a prefix: position %d holds %d", i, k)
					fail.Store(&msg)
					return
				}
			}
			if uint64(len(keys)) == n {
				return
			}
		}
	}()
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		return fmt.Errorf("%s", *msg)
	}
	return nil
}

// suffixProbe: ascending deletes; snapshots must be suffixes.
func suffixProbe(m tscds.Map, n uint64, d time.Duration) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		th, _ := m.RegisterThread()
		for k := uint64(1); k <= n; k++ {
			m.Insert(th, k, k)
		}
		th.Release()
		var wg sync.WaitGroup
		var fail atomic.Pointer[string]
		wg.Add(1)
		go func() {
			defer wg.Done()
			th, _ := m.RegisterThread()
			defer th.Release()
			for k := uint64(1); k <= n; k++ {
				m.Delete(th, k)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			th, _ := m.RegisterThread()
			defer th.Release()
			for {
				keys := sortedKeys(m.RangeQuery(th, 1, n, nil))
				if len(keys) == 0 {
					return
				}
				for i, k := range keys {
					if k != keys[0]+uint64(i) {
						msg := fmt.Sprintf("snapshot not a suffix at %d: %d (first %d)", i, k, keys[0])
						fail.Store(&msg)
						return
					}
				}
				if keys[len(keys)-1] != n {
					msg := fmt.Sprintf("suffix missing tail: ends at %d", keys[len(keys)-1])
					fail.Store(&msg)
					return
				}
			}
		}()
		wg.Wait()
		if msg := fail.Load(); msg != nil {
			return fmt.Errorf("%s", *msg)
		}
	}
	return nil
}

// stripeProbe: churn odd keys; even keys must stay complete and unique.
func stripeProbe(m tscds.Map, n uint64, d time.Duration) error {
	th0, _ := m.RegisterThread()
	for k := uint64(1); k <= n; k++ {
		m.Insert(th0, k, k)
	}
	th0.Release()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th, _ := m.RegisterThread()
		defer th.Release()
		r := uint64(0xDECAF)
		for {
			select {
			case <-stop:
				return
			default:
			}
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			k := r%n + 1
			if k%2 == 1 {
				if m.Delete(th, k) {
					m.Insert(th, k, k)
				}
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	th, _ := m.RegisterThread()
	defer th.Release()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		got := m.RangeQuery(th, 1, n, nil)
		seen := map[uint64]bool{}
		evens := 0
		for _, kv := range got {
			if seen[kv.Key] {
				return fmt.Errorf("duplicate key %d in snapshot", kv.Key)
			}
			seen[kv.Key] = true
			if kv.Key%2 == 0 {
				evens++
			}
		}
		if uint64(evens) != n/2 {
			return fmt.Errorf("stable stripe incomplete: %d even keys, want %d", evens, n/2)
		}
	}
	return nil
}

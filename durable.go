package tscds

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tscds/internal/core"
	"tscds/internal/ebrrq"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/wal"
)

// Durability opts a Map into crash-safe persistence (Config.Durability):
// a per-shard append-only write-ahead log on the update path plus
// periodic whole-map snapshot flushes taken at a single source
// timestamp — zero stop-the-world, writers keep running. Opening a Map
// over a non-empty Dir recovers the durable image (newest valid
// snapshot + WAL replay) before the constructor returns.
type Durability struct {
	// Dir is the durability directory, created if absent. One Map per
	// directory.
	Dir string
	// SyncEvery selects the durability/throughput trade. <= 1 (the
	// default) is fully durable: an update is acknowledged only after
	// an fsync covering its record returns, with group commit sharing
	// each fsync across concurrent updaters. N > 1 acknowledges after
	// the buffered append and fsyncs every N records per shard — a
	// crash loses at most the last N acknowledged updates per shard.
	SyncEvery int
	// SnapshotEvery, when positive, flushes a snapshot periodically on
	// a background goroutine. Zero means snapshots happen only on
	// explicit Checkpoint calls. Snapshots bound recovery time and let
	// covered WAL segments be pruned.
	SnapshotEvery time.Duration
	// FS substitutes the file layer (fault-injection tests); nil means
	// the real filesystem.
	FS wal.FS
}

// RecoveryStats reports what recovery found when a durable Map was
// opened; see DurableMap.LastRecovery.
type RecoveryStats = wal.RecoveryStats

// DurableMap is the extended surface of Maps built with
// Config.Durability. Type-assert the Map from New to it, or use the
// methods directly on a *ShardedMap from NewSharded. The methods exist
// (as no-ops or errors) on non-durable Maps too.
type DurableMap interface {
	Map
	// InsertDurable is Insert returning additionally the durability
	// acknowledgment: a nil error means the update's WAL record is
	// covered per the SyncEvery policy. The boolean is the in-memory
	// result; (true, non-nil) means the update applied but its
	// durability is unknown (indeterminate after a log failure).
	InsertDurable(th *Thread, key, val uint64) (bool, error)
	// DeleteDurable is Delete with the durability acknowledgment.
	DeleteDurable(th *Thread, key uint64) (bool, error)
	// Checkpoint flushes a snapshot now (collect at one timestamp,
	// write atomically, prune covered WAL segments) and returns the
	// write outcome.
	Checkpoint() error
	// CheckpointAt flushes a snapshot of the map AS OF the past
	// timestamp ts, collected through the same retained version history
	// GetAt/RangeQueryAt read (so it needs a history-retaining
	// technique — vCAS or Bundle — and ts inside the retention window;
	// otherwise ErrHistoryUnsupported / ErrTruncatedHistory /
	// ErrFutureTimestamp). The log is rotated but only segments the
	// past bound covers are pruned, so recovery still converges to the
	// present state: the artifact doubles as a point-in-time export and
	// a valid recovery base.
	CheckpointAt(ts uint64) error
	// WALError reports the sticky durability error, if any: after a
	// persistent I/O failure the Map keeps serving from memory but
	// updates are no longer made durable (their acks carry the error).
	WALError() error
	// LastRecovery reports what recovery loaded when this Map opened
	// (the zero value for a fresh directory).
	LastRecovery() RecoveryStats
	// Close stops the durability layer: drains and fsyncs the log
	// (clean shutdowns are fully durable even with SyncEvery > 1),
	// stops the snapshot flusher, and closes the files. The Map must
	// be quiescent. Close on a non-durable Map is a no-op.
	Close() error
}

var _ DurableMap = (*wrap)(nil)
var _ DurableMap = (*ShardedMap)(nil)

// errNotDurable is returned by Checkpoint on Maps without durability.
var errNotDurable = errors.New("tscds: durability not enabled (set Config.Durability)")

// padMutex keeps per-shard WAL mutexes on separate cache-line pairs.
type padMutex struct {
	sync.Mutex
	_ [2*64 - 8]byte
}

// durable is the per-Map durability state hung off wrap.dur.
type durable struct {
	log   *wal.Log
	mus   []padMutex // one per WAL shard; serializes apply+stamp+append
	n     uint64
	inner inner
	src   core.Source
	shift uint64
	obs   *obs.Registry
	tr    *trace.Recorder

	// snapAll collects the whole map at one bound (bound returned).
	snapAll func(out []core.KV) ([]core.KV, core.TS)
	snapMu  sync.Mutex // serializes Checkpoint with the flusher
	snapBuf []core.KV

	th       *core.Thread // replay + flusher handle
	recovery RecoveryStats
	every    time.Duration
	stop     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool
}

// enableDurability arms cfg.Durability on w: open (and recover) the
// log, replay the surviving image into the still-traffic-free
// structure, and start the snapshot flusher. shards is the facade
// shard count; the WAL shards by the same residue, so each stream is
// ordered by the per-shard serialization insert/delete add below.
func (w *wrap) enableDurability(cfg Config, shards int) error {
	d := cfg.Durability
	if d.Dir == "" {
		return errors.New("tscds: Durability.Dir is required")
	}
	// The snapshot flusher needs a collect-at-bound primitive: the
	// sharded fan-out provides its own; an unsharded structure must
	// expose RangeQueryAt.
	at, plainOK := w.m.(rangeQueryAt)
	if _, sharded := w.m.(*shardedInner); !sharded && !plainOK {
		return fmt.Errorf("tscds: %v/%v does not support durability (no RangeQueryAt)", w.s, w.t)
	}
	var stats *obs.WALStats
	if cfg.Metrics != nil {
		stats = &cfg.Metrics.WAL
		mode := "sync"
		if d.SyncEvery > 1 {
			mode = fmt.Sprintf("batched(%d)", d.SyncEvery)
		}
		cfg.Metrics.SetWALMode(mode)
	}
	log, recov, err := wal.Open(wal.Options{
		Dir:       d.Dir,
		Shards:    shards,
		SyncEvery: d.SyncEvery,
		FS:        d.FS,
		Stats:     stats,
	})
	if err != nil {
		return err
	}
	th, err := w.reg.Register()
	if err != nil {
		_ = log.Close()
		return fmt.Errorf("tscds: durability thread handle: %w", err)
	}

	// Replay the recovered image. Keys in the log and snapshot are
	// user keys; the facade's sentinel shift is reapplied here, so a
	// log written by one structure recovers into any other.
	for _, p := range recov.Pairs {
		if p.Key <= MaxKey {
			w.m.Insert(th, p.Key+w.shift, p.Val)
		}
	}
	for _, r := range recov.Replay {
		if r.Key > MaxKey {
			continue
		}
		switch r.Op {
		case wal.OpInsert:
			w.m.Insert(th, r.Key+w.shift, r.Val)
		case wal.OpDelete:
			w.m.Delete(th, r.Key+w.shift)
		}
	}

	dd := &durable{
		log:      log,
		mus:      make([]padMutex, shards),
		n:        uint64(shards),
		inner:    w.m,
		src:      w.srcImpl,
		shift:    w.shift,
		obs:      cfg.Metrics,
		tr:       w.tr,
		th:       th,
		recovery: recov.Stats,
		every:    d.SnapshotEvery,
		stop:     make(chan struct{}),
	}
	if sh, ok := w.m.(*shardedInner); ok {
		dd.snapAll = func(out []core.KV) ([]core.KV, core.TS) {
			return sh.SnapshotAll(th, w.shift, MaxKey+w.shift, out)
		}
	} else {
		peek := w.t == Bundle
		var prov *ebrrq.Provider
		if p, ok := w.m.(provided); ok {
			prov = p.Provider()
		}
		dd.snapAll = func(out []core.KV) ([]core.KV, core.TS) {
			return snapshotPlain(at, prov, w.srcImpl, peek, th, w.shift, MaxKey+w.shift, out)
		}
	}
	w.dur = dd
	if dd.every > 0 {
		dd.wg.Add(1)
		go dd.flushLoop()
	}
	return nil
}

// snapshotPlain is an unsharded map's collect-everything-at-one-bound:
// the per-structure RangeQuery prologue (announce, provider lock for
// EBR-RQ, read the source) followed by RangeQueryAt, retried if an
// adaptive source switched generations under the bound — exactly the
// sharded fan-out protocol with one shard.
func snapshotPlain(at rangeQueryAt, prov *ebrrq.Provider, src core.Source, peek bool, th *core.Thread, lo, hi uint64, out []core.KV) ([]core.KV, core.TS) {
	base := len(out)
	for {
		th.BeginRQ()
		var s core.TS
		switch {
		case prov != nil:
			prov.RQLock()
			s = src.Snapshot()
			prov.RQUnlock()
		case peek:
			s = src.Peek()
		default:
			s = src.Snapshot()
		}
		out = at.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(src, s) {
			return out, s
		}
		out = out[:base]
	}
}

// insert is the durable update path: apply, stamp and append under the
// WAL shard's mutex (so log order is linearization order), then wait
// for the group commit outside it (so concurrent updaters share the
// fsync). Failed in-memory ops log nothing — per key the log holds
// only effective updates, which is what makes redundant replay over a
// snapshot converge.
func (d *durable) insert(th *core.Thread, ikey, val uint64) (bool, error) {
	sh := int(ikey % d.n)
	var mark uint64
	if d.tr != nil {
		mark = d.tr.Now()
	}
	mu := &d.mus[sh]
	mu.Lock()
	ok := d.inner.Insert(th, ikey, val)
	if !ok {
		mu.Unlock()
		return false, nil
	}
	lsn, err := d.log.Append(sh, wal.Record{
		TS: d.src.Peek(), Op: wal.OpInsert, Key: ikey - d.shift, Val: val,
	})
	mu.Unlock()
	if err == nil {
		err = d.log.WaitDurable(sh, lsn)
	}
	if d.tr != nil {
		d.tr.Span(th.ID, trace.PhaseWALAppend, mark)
	}
	return true, err
}

// delete mirrors insert.
func (d *durable) delete(th *core.Thread, ikey uint64) (bool, error) {
	sh := int(ikey % d.n)
	var mark uint64
	if d.tr != nil {
		mark = d.tr.Now()
	}
	mu := &d.mus[sh]
	mu.Lock()
	ok := d.inner.Delete(th, ikey)
	if !ok {
		mu.Unlock()
		return false, nil
	}
	lsn, err := d.log.Append(sh, wal.Record{
		TS: d.src.Peek(), Op: wal.OpDelete, Key: ikey - d.shift,
	})
	mu.Unlock()
	if err == nil {
		err = d.log.WaitDurable(sh, lsn)
	}
	if d.tr != nil {
		d.tr.Span(th.ID, trace.PhaseWALAppend, mark)
	}
	return true, err
}

// checkpoint is one snapshot flush: collect at a single bound with
// writers running, sort, write atomically, then rotate and prune the
// segments the snapshot covers.
func (d *durable) checkpoint() error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	var mark uint64
	if d.tr != nil {
		mark = d.tr.Now()
	}
	// Rotate first: every record buffered before this point lands in a
	// sealed segment whose maxTS the prune below can compare against
	// the snapshot bound.
	d.log.RotateAll()
	kvs, s := d.snapAll(d.snapBuf[:0])
	d.snapBuf = kvs[:0]
	core.SortKVs(kvs)
	pairs := make([]wal.Pair, len(kvs))
	for i, kv := range kvs {
		pairs[i] = wal.Pair{Key: kv.Key - d.shift, Val: kv.Val}
	}
	err := d.log.WriteSnapshot(uint64(s), pairs)
	if d.tr != nil {
		d.tr.SharedSpan(trace.PhaseSnapshotFlush, mark)
	}
	if err != nil {
		return err
	}
	d.log.PruneUpTo(uint64(s))
	return nil
}

// checkpointAt is checkpoint with the collection pointed at a past
// timestamp: the facade's validate-and-walk historical read (user
// keys, full range) instead of a fresh bound. Only segments whose
// records the past bound covers are pruned — newer records stay, so
// replay over the historical snapshot still converges to the log's
// final state.
func (d *durable) checkpointAt(w *wrap, ts uint64) error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	var mark uint64
	if d.tr != nil {
		mark = d.tr.Now()
	}
	d.log.RotateAll()
	kvs, err := w.rangeQueryAt(d.th, 0, MaxKey, ts, d.snapBuf[:0])
	d.snapBuf = kvs[:0]
	if err != nil {
		return err
	}
	core.SortKVs(kvs)
	pairs := make([]wal.Pair, len(kvs))
	for i, kv := range kvs {
		pairs[i] = wal.Pair{Key: kv.Key, Val: kv.Val} // already user keys
	}
	err = d.log.WriteSnapshot(ts, pairs)
	if d.tr != nil {
		d.tr.SharedSpan(trace.PhaseSnapshotFlush, mark)
	}
	if err != nil {
		return err
	}
	d.log.PruneUpTo(ts)
	return nil
}

// flushLoop drives periodic snapshots until Close.
func (d *durable) flushLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.every)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			_ = d.checkpoint() // failures counted in obs; next tick retries
		}
	}
}

// close stops the flusher and the log; idempotent.
func (d *durable) close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return d.log.Err()
	}
	close(d.stop)
	d.wg.Wait()
	err := d.log.Close()
	d.th.Release()
	return err
}

// --- wrap surface -----------------------------------------------------

// applyInsert routes an internal-keyed insert through the durability
// layer when one is armed.
func (w *wrap) applyInsert(th *Thread, ikey, val uint64) (bool, error) {
	if w.dur == nil {
		return w.m.Insert(th, ikey, val), nil
	}
	return w.dur.insert(th, ikey, val)
}

// applyDelete mirrors applyInsert.
func (w *wrap) applyDelete(th *Thread, ikey uint64) (bool, error) {
	if w.dur == nil {
		return w.m.Delete(th, ikey), nil
	}
	return w.dur.delete(th, ikey)
}

// InsertDurable implements DurableMap.
func (w *wrap) InsertDurable(th *Thread, key, val uint64) (bool, error) {
	if key > MaxKey {
		return false, nil
	}
	if w.obs == nil && w.tr == nil {
		return w.applyInsert(th, key+w.shift, val)
	}
	w.tr.OpBegin(th.ID, trace.OpUpdate)
	start := time.Now()
	ok, err := w.applyInsert(th, key+w.shift, val)
	w.observe(th, obs.OpUpdate, trace.OpUpdate, start)
	return ok, err
}

// DeleteDurable implements DurableMap.
func (w *wrap) DeleteDurable(th *Thread, key uint64) (bool, error) {
	if key > MaxKey {
		return false, nil
	}
	if w.obs == nil && w.tr == nil {
		return w.applyDelete(th, key+w.shift)
	}
	w.tr.OpBegin(th.ID, trace.OpUpdate)
	start := time.Now()
	ok, err := w.applyDelete(th, key+w.shift)
	w.observe(th, obs.OpUpdate, trace.OpUpdate, start)
	return ok, err
}

// Checkpoint implements DurableMap.
func (w *wrap) Checkpoint() error {
	if w.dur == nil {
		return errNotDurable
	}
	return w.dur.checkpoint()
}

// CheckpointAt implements DurableMap.
func (w *wrap) CheckpointAt(ts uint64) error {
	if w.dur == nil {
		return errNotDurable
	}
	if !w.hist {
		return ErrHistoryUnsupported
	}
	return w.dur.checkpointAt(w, ts)
}

// WALError implements DurableMap.
func (w *wrap) WALError() error {
	if w.dur == nil {
		return nil
	}
	return w.dur.log.Err()
}

// LastRecovery implements DurableMap.
func (w *wrap) LastRecovery() RecoveryStats {
	if w.dur == nil {
		return RecoveryStats{}
	}
	return w.dur.recovery
}

// Close implements DurableMap.
func (w *wrap) Close() error {
	if w.dur == nil {
		return nil
	}
	return w.dur.close()
}

package tscds_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tscds"
	"tscds/internal/linearize"
	"tscds/internal/wal/faultfs"
)

// These tests drive the durability layer through injected storage
// faults: run a recorded workload against a WAL-backed map on a
// fault-injecting filesystem, crash it at a chosen I/O operation, heal
// the disk image (dropping unsynced bytes, as a real crash does),
// recover, and require the recovered state to be a crash-consistent
// snapshot of the acknowledged history (linearize.CheckDurable).

const (
	cmDir      = "crashdir"
	cmWorkers  = 3
	cmOps      = 40
	cmKeyRange = 64
	cmShards   = 2
)

// uval is the harness's unique-value convention (thread in the high
// bits, sequence below), matching the linearize package's.
func uval(tid int, seq uint64) uint64 { return uint64(tid+1)<<40 | seq }

// crashOutcome is everything a crashed run leaves for the checker.
type crashOutcome struct {
	hist    *linearize.History
	pending []linearize.Event
}

func durCfg(fs *faultfs.FS, syncEvery int) tscds.Config {
	return tscds.Config{
		Source:     tscds.Logical,
		Durability: &tscds.Durability{Dir: cmDir, SyncEvery: syncEvery, FS: fs},
	}
}

// runCrashWorkload drives a durable sharded map until every worker
// finishes or hits a durability error. Only operations that succeeded
// in memory are recorded: acknowledged ones (err == nil) become
// history, unacknowledged ones become pending. Worker 0 checkpoints
// halfway through, putting snapshot I/O inside the faultable window.
func runCrashWorkload(t *testing.T, fs *faultfs.FS, syncEvery int) crashOutcome {
	t.Helper()
	m, err := tscds.NewSharded(tscds.BST, tscds.VCAS, cmShards, durCfg(fs, syncEvery))
	if err != nil {
		// The fault fired before the map even opened: there is no
		// acknowledged history to preserve.
		return crashOutcome{hist: &linearize.History{Cfg: linearize.Config{Seed: 1}}}
	}

	var clock atomic.Int64
	logs := make([][]linearize.Event, cmWorkers)
	var mu sync.Mutex
	var pending []linearize.Event
	var wg sync.WaitGroup
	for tid := 0; tid < cmWorkers; tid++ {
		th, err := m.RegisterThread()
		if err != nil {
			t.Fatalf("RegisterThread: %v", err)
		}
		wg.Add(1)
		go func(tid int, th *tscds.Thread) {
			defer wg.Done()
			defer th.Release()
			rng := rand.New(rand.NewSource(int64(tid) + 1))
			var seq uint64
			log := make([]linearize.Event, 0, cmOps)
			defer func() { // keep acked events even when stopping on error
				mu.Lock()
				logs[tid] = log
				mu.Unlock()
			}()
			for i := 0; i < cmOps; i++ {
				if tid == 0 && i == cmOps/2 {
					_ = m.Checkpoint() // may fail under the fault; recovery decides
				}
				key := rng.Uint64() % cmKeyRange
				ev := linearize.Event{Thread: tid, Key: key}
				var ok bool
				var err error
				if rng.Intn(100) < 60 {
					seq++
					ev.Op, ev.Val = linearize.OpInsert, uval(tid, seq)
					ev.Inv = clock.Add(1)
					ok, err = m.InsertDurable(th, key, ev.Val)
				} else {
					ev.Op = linearize.OpDelete
					ev.Inv = clock.Add(1)
					ok, err = m.DeleteDurable(th, key)
				}
				ev.Ret = clock.Add(1)
				ev.OK = ok
				if err != nil {
					// Applied in memory but never acknowledged durable:
					// the crash decides whether it survives.
					if ok {
						mu.Lock()
						pending = append(pending, ev)
						mu.Unlock()
					}
					return // workers stop at the first durability error
				}
				if ok {
					log = append(log, ev)
				}
			}
		}(tid, th)
	}
	wg.Wait()
	_ = m.Close() // under a crash fault this reports the sticky error

	return crashOutcome{
		hist:    &linearize.History{Cfg: linearize.Config{Seed: 1}, Threads: logs},
		pending: pending,
	}
}

// recoverAndCheck heals the disk image, reopens the map, reads back
// its full content and validates it against the crashed run.
func recoverAndCheck(t *testing.T, fs *faultfs.FS, syncEvery int, out crashOutcome) {
	t.Helper()
	fs.Heal()
	m, err := tscds.NewSharded(tscds.BST, tscds.VCAS, cmShards, durCfg(fs, syncEvery))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer m.Close()
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatalf("RegisterThread: %v", err)
	}
	defer th.Release()
	recovered := m.RangeQuery(th, 0, cmKeyRange, nil)
	if err := linearize.CheckDurable(out.hist, out.pending, recovered); err != nil {
		rec := m.LastRecovery()
		t.Fatalf("recovered state inconsistent with acknowledged history\nrecovery: %+v\n%v", rec, err)
	}
}

// TestCrashMatrix is the acceptance gate: for every injected crash
// point across the workload's I/O trace — segment creation, WAL batch
// writes, fsyncs, snapshot temp-writes, renames, directory syncs — the
// recovered map must satisfy durable linearizability against the
// acknowledged pre-crash history.
func TestCrashMatrix(t *testing.T) {
	dry := faultfs.New(faultfs.Fault{})
	out := runCrashWorkload(t, dry, 1)
	if got := out.hist.Events(); got == 0 {
		t.Fatal("dry run recorded no events")
	}
	recoverAndCheck(t, dry, 1, out)
	total := dry.Ops()
	if total < 10 {
		t.Fatalf("dry run performed only %d I/O ops", total)
	}

	points := 12
	if testing.Short() {
		points = 6
	}
	kinds := []struct {
		kind faultfs.Kind
		name string
	}{
		{faultfs.KindCrash, "crash"},
		{faultfs.KindTorn, "torn"},
		{faultfs.KindWriteErr, "transient"},
		{faultfs.KindENOSPC, "enospc"},
	}
	for _, k := range kinds {
		for p := 0; p < points; p++ {
			// Evenly spaced over the dry run's I/O trace. Concurrency
			// makes other runs' traces differ slightly; a point past the
			// end simply never fires, which is still a valid (clean) run.
			at := 1 + p*(total-1)/(points-1)
			t.Run(fmt.Sprintf("%s/op%03d", k.name, at), func(t *testing.T) {
				fs := faultfs.New(faultfs.Fault{AtOp: at, Kind: k.kind})
				out := runCrashWorkload(t, fs, 1)
				if k.kind == faultfs.KindWriteErr && fs.Crashed() {
					t.Fatal("transient fault crashed the filesystem")
				}
				recoverAndCheck(t, fs, 1, out)
			})
		}
	}
}

// TestCrashDuringRecovery crashes the recovery run itself (while it
// opens fresh segments for the new run generation): the open must fail
// cleanly, and a second attempt must recover everything.
func TestCrashDuringRecovery(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	out := runCrashWorkload(t, fs, 1)

	// Clone the surviving image onto a filesystem armed to crash at the
	// recovery run's second mutating I/O (mid segment setup).
	armed := faultfs.New(faultfs.Fault{})
	copyImage(t, fs, armed)
	armed.Arm(faultfs.Fault{AtOp: armed.Ops() + 2, Kind: faultfs.KindCrash})
	if _, err := tscds.NewSharded(tscds.BST, tscds.VCAS, cmShards, durCfg(armed, 1)); err == nil {
		t.Fatal("open under recovery crash succeeded")
	}
	recoverAndCheck(t, armed, 1, out)
}

// copyImage clones src's surviving files into dst.
func copyImage(t *testing.T, src, dst *faultfs.FS) {
	t.Helper()
	for _, p := range src.Paths() {
		b, err := src.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		f, err := dst.Create(p)
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatalf("write %s: %v", p, err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %s: %v", p, err)
		}
	}
}

// TestRecoverRefusesCorruptInterior verifies end to end that interior
// damage — a flipped bit with intact records after it — fails the open
// with a descriptive error instead of silently truncating history.
func TestRecoverRefusesCorruptInterior(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	runCrashWorkload(t, fs, 1)
	var seg string
	for _, p := range fs.Paths() {
		if strings.Contains(p, "wal-") && fs.Size(p) > 32+3*29 {
			seg = p
			break
		}
	}
	if seg == "" {
		t.Fatal("no segment with enough records to corrupt")
	}
	if err := fs.Corrupt(seg, 32+10); err != nil { // inside the first record
		t.Fatalf("Corrupt: %v", err)
	}
	_, err := tscds.NewSharded(tscds.BST, tscds.VCAS, cmShards, durCfg(fs, 1))
	if err == nil {
		t.Fatal("open accepted a corrupt WAL interior")
	}
	if !strings.Contains(err.Error(), "corrupt") || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("corruption error lacks file/offset detail: %v", err)
	}
}

// TestDurableRestartRoundtrip exercises the real filesystem: insert,
// checkpoint, insert more, close cleanly, reopen, and expect the exact
// content back with the snapshot + replay split visible in the stats.
func TestDurableRestartRoundtrip(t *testing.T) {
	dir := t.TempDir()
	cfg := tscds.Config{Source: tscds.Logical, Durability: &tscds.Durability{Dir: dir, SyncEvery: 1}}
	m, err := tscds.New(tscds.BST, tscds.VCAS, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dm := m.(tscds.DurableMap)
	th, _ := m.RegisterThread()
	for k := uint64(0); k < 20; k++ {
		if ok, err := dm.InsertDurable(th, k, k*10); !ok || err != nil {
			t.Fatalf("InsertDurable(%d) = %v, %v", k, ok, err)
		}
	}
	if err := dm.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for k := uint64(20); k < 30; k++ {
		if ok, err := dm.InsertDurable(th, k, k*10); !ok || err != nil {
			t.Fatalf("InsertDurable(%d) = %v, %v", k, ok, err)
		}
	}
	if ok, err := dm.DeleteDurable(th, 5); !ok || err != nil {
		t.Fatalf("DeleteDurable(5) = %v, %v", ok, err)
	}
	th.Release()
	if err := dm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2, err := tscds.New(tscds.BST, tscds.VCAS, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	dm2 := m2.(tscds.DurableMap)
	defer dm2.Close()
	rec := dm2.LastRecovery()
	if rec.SnapshotKeys != 20 {
		t.Fatalf("recovery loaded %d snapshot keys, want 20 (%+v)", rec.SnapshotKeys, rec)
	}
	if rec.Replayed != 11 {
		t.Fatalf("recovery replayed %d records, want 11 (%+v)", rec.Replayed, rec)
	}
	th2, _ := m2.RegisterThread()
	defer th2.Release()
	got := m2.RangeQuery(th2, 0, 100, nil)
	if len(got) != 29 {
		t.Fatalf("recovered %d keys, want 29", len(got))
	}
	for _, kv := range got {
		if kv.Key == 5 {
			t.Fatal("deleted key 5 resurrected")
		}
		if kv.Val != kv.Key*10 {
			t.Fatalf("key %d recovered value %d, want %d", kv.Key, kv.Val, kv.Key*10)
		}
	}
}

// TestDurableBatchedMode checks the bounded-loss configuration: acks
// come before fsync, but a clean Close still makes everything durable.
func TestDurableBatchedMode(t *testing.T) {
	dir := t.TempDir()
	cfg := tscds.Config{Source: tscds.Logical, Durability: &tscds.Durability{Dir: dir, SyncEvery: 64}}
	m, err := tscds.NewSharded(tscds.BST, tscds.VCAS, cmShards, cfg)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	th, _ := m.RegisterThread()
	for k := uint64(0); k < 50; k++ {
		if ok, err := m.InsertDurable(th, k, k+1); !ok || err != nil {
			t.Fatalf("InsertDurable(%d) = %v, %v", k, ok, err)
		}
	}
	th.Release()
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	m2, err := tscds.NewSharded(tscds.BST, tscds.VCAS, cmShards, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	th2, _ := m2.RegisterThread()
	defer th2.Release()
	if got := len(m2.RangeQuery(th2, 0, 100, nil)); got != 50 {
		t.Fatalf("recovered %d keys after clean batched close, want 50", got)
	}
}

// TestCheckpointOnPlainMapErrors pins the non-durable error path.
func TestCheckpointOnPlainMapErrors(t *testing.T) {
	m, err := tscds.New(tscds.BST, tscds.VCAS, tscds.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.(tscds.DurableMap).Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a non-durable map returned nil")
	}
}

// TestDrainRacesSnapshotFlush races Drain (eager reclamation of
// version chains and limbo lists) against a fast periodic snapshot
// flusher and concurrent writers. The flusher pins a timestamp and
// walks RangeQueryAt while Drain reclaims; under -race this guards the
// flusher's announced-timestamp protocol against reclamation. Run for
// both a version-chain structure (vCAS) and an EBR-heavy one.
func TestDrainRacesSnapshotFlush(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based race soak")
	}
	for _, tc := range []struct {
		name string
		tech tscds.Technique
	}{
		{"vcas", tscds.VCAS},
		{"ebrrq-lockfree", tscds.EBRRQLockFree},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := tscds.Config{
				Source: tscds.Logical,
				Durability: &tscds.Durability{
					Dir: dir, SyncEvery: 8, SnapshotEvery: time.Millisecond,
				},
			}
			m, err := tscds.NewSharded(tscds.BST, tc.tech, cmShards, cfg)
			if err != nil {
				t.Fatalf("NewSharded: %v", err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				th, err := m.RegisterThread()
				if err != nil {
					t.Fatalf("RegisterThread: %v", err)
				}
				wg.Add(1)
				go func(w int, th *tscds.Thread) {
					defer wg.Done()
					defer th.Release()
					rng := rand.New(rand.NewSource(int64(w) + 99))
					var seq uint64
					for {
						select {
						case <-stop:
							return
						default:
						}
						key := rng.Uint64() % 128
						if rng.Intn(2) == 0 {
							seq++
							if _, err := m.InsertDurable(th, key, uval(w, seq)); err != nil {
								t.Errorf("InsertDurable: %v", err)
								return
							}
						} else {
							if _, err := m.DeleteDurable(th, key); err != nil {
								t.Errorf("DeleteDurable: %v", err)
								return
							}
						}
					}
				}(w, th)
			}
			deadline := time.After(300 * time.Millisecond)
		drainLoop:
			for {
				select {
				case <-deadline:
					break drainLoop
				default:
					m.Drain()
				}
			}
			close(stop)
			wg.Wait()
			if err := m.WALError(); err != nil {
				t.Fatalf("WALError: %v", err)
			}
			if err := m.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

package tscds_test

import (
	"fmt"
	"sort"

	"tscds"
)

// Build a hardware-timestamped map and take a consistent range snapshot.
func ExampleNew() {
	m, err := tscds.New(tscds.BST, tscds.VCAS, tscds.Config{Source: tscds.TSC})
	if err != nil {
		panic(err)
	}
	th, _ := m.RegisterThread()
	defer th.Release()

	for _, k := range []uint64{5, 1, 9, 3} {
		m.Insert(th, k, k*10)
	}
	m.Delete(th, 9)

	kvs := m.RangeQuery(th, 2, 8, nil)
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	for _, kv := range kvs {
		fmt.Println(kv.Key, kv.Val)
	}
	// Output:
	// 3 30
	// 5 50
}

// The combination rules mirror the paper: lock-free EBR-RQ cannot use a
// hardware timestamp, because its DCSS must validate the timestamp at a
// memory address.
func ExampleNew_unsupported() {
	_, err := tscds.New(tscds.Citrus, tscds.EBRRQLockFree, tscds.Config{Source: tscds.TSC})
	fmt.Println(err != nil)
	// Output:
	// true
}

// The timestamp API itself is usable directly; switching Source between
// Logical and TSC is the paper's entire porting recipe.
func ExampleNewTimestampSource() {
	logical := tscds.NewTimestampSource(tscds.Logical)
	a := logical.Advance()
	b := logical.Advance()
	fmt.Println(b > a)

	hw := tscds.NewTimestampSource(tscds.TSC)
	c := hw.Advance()
	d := hw.Advance()
	fmt.Println(d >= c)
	// Output:
	// true
	// true
}

// analytics: range-aggregation readers against a write-heavy feed,
// run twice — once with the logical-counter timestamp and once with the
// hardware timestamp — printing the throughput of each. This is the
// paper's experiment in miniature: same structure, same workload, only
// the timestamp source changes.
//
// On a large multicore the hardware source pulls far ahead (Figures
// 2-3); on small hosts the gap narrows and at one core the logical
// counter's cache locality can even win, exactly as the paper's
// single-thread results show.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tscds"
)

const (
	keyRange = 100_000
	runFor   = 700 * time.Millisecond
)

func main() {
	fmt.Printf("host: %d CPUs, invariant TSC: %v\n\n", runtime.NumCPU(), tscds.HardwareTimestampSupported())
	fmt.Printf("%-10s %14s %14s %14s\n", "source", "updates/s", "queries/s", "total Mops/s")
	for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC} {
		u, q, mops := run(src)
		fmt.Printf("%-10v %14d %14d %14.2f\n", src, u, q, mops)
	}
}

func run(src tscds.SourceKind) (updates, queries int64, mops float64) {
	m, err := tscds.New(tscds.BST, tscds.VCAS, tscds.Config{Source: src})
	if err != nil {
		log.Fatal(err)
	}
	seed, err := m.RegisterThread()
	if err != nil {
		log.Fatal(err)
	}
	// Prefill half the keys in permuted order (sorted insertion would
	// degenerate the unbalanced tree into a list).
	for i := uint64(0); i < keyRange/2; i++ {
		k := (i * 2654435761) % keyRange
		m.Insert(seed, k, k)
	}
	seed.Release()

	var stop atomic.Bool
	var wg sync.WaitGroup
	workers := runtime.NumCPU()*2 + 2
	var uCount, qCount atomic.Int64
	begin := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, err := m.RegisterThread()
			if err != nil {
				log.Print(err)
				return
			}
			defer th.Release()
			r := uint64(w)*0x9E3779B97F4A7C15 + 1
			buf := make([]tscds.KV, 0, 128)
			for !stop.Load() {
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				key := (r >> 8) % keyRange
				if w%2 == 0 {
					// Feed writer: churn prices.
					if r&1 == 0 {
						m.Insert(th, key, key)
					} else {
						m.Delete(th, key)
					}
					uCount.Add(1)
				} else {
					// Analyst: 100-key window aggregate.
					buf = m.RangeQuery(th, key, key+99, buf[:0])
					var sum uint64
					for _, kv := range buf {
						sum += kv.Val
					}
					_ = sum
					qCount.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(begin).Seconds()
	u, q := uCount.Load(), qCount.Load()
	return int64(float64(u) / elapsed), int64(float64(q) / elapsed),
		float64(u+q) / elapsed / 1e6
}

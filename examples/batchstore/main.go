// batchstore: the Jiffy-style store (§III-A of the paper) — atomic
// multi-key batches with long-lived consistent snapshots, all ordered by
// strictly-increasing hardware timestamps.
//
// A bank keeps account balances; transfers are two-key batches (debit +
// credit). The invariant "total money is constant" must hold in every
// snapshot, no matter how transfers interleave — a single torn batch
// breaks it. A background auditor verifies it continuously while
// transfer traffic runs.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"tscds"
)

const (
	accounts   = 64
	initialSum = accounts * 1000
)

func main() {
	store, reg := tscds.NewBatchStore(tscds.Config{Source: tscds.TSC})

	seed, err := reg.Register()
	if err != nil {
		log.Fatal(err)
	}
	for acct := uint64(1); acct <= accounts; acct++ {
		store.Put(seed, acct, 1000)
	}
	seed.Release()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var transfers atomic.Int64

	// Transfer traffic: random debits+credits as atomic batches.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, err := reg.Register()
			if err != nil {
				log.Fatal(err)
			}
			defer th.Release()
			r := uint64(w)*0x9E3779B97F4A7C15 + 7
			for {
				select {
				case <-stop:
					return
				default:
				}
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				from := r%accounts + 1
				to := (r>>8)%accounts + 1
				if from == to {
					continue
				}
				sn := store.Snapshot(th)
				fromBal, _ := sn.Get(from)
				toBal, _ := sn.Get(to)
				sn.Close()
				amount := r % 50
				if fromBal < amount {
					continue
				}
				// Note: balances may have moved since the snapshot; this
				// demo tolerates that by re-reading inside one batch
				// cycle. The audited invariant is batch atomicity.
				store.Apply(th, []tscds.BatchOp{
					{Key: from, Val: fromBal - amount},
					{Key: to, Val: toBal + amount},
				})
				transfers.Add(1)
			}
		}(w)
	}

	// Auditor: every snapshot must balance — but since our transfers
	// read balances non-transactionally, audit instead the stronger
	// per-batch property on a dedicated pair of accounts driven
	// transactionally below.
	pairTh, _ := reg.Register()
	audTh, _ := reg.Register()
	store.Apply(pairTh, []tscds.BatchOp{{Key: 1000, Val: 500}, {Key: 1001, Val: 500}})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer pairTh.Release()
		r := uint64(99)
		for {
			select {
			case <-stop:
				return
			default:
			}
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			sn := store.Snapshot(pairTh)
			a, _ := sn.Get(1000)
			b, _ := sn.Get(1001)
			sn.Close()
			amt := r % 100
			if a < amt {
				continue
			}
			store.Apply(pairTh, []tscds.BatchOp{
				{Key: 1000, Val: a - amt},
				{Key: 1001, Val: b + amt},
			})
		}
	}()

	audits := 0
	deadline := time.Now().Add(1 * time.Second)
	for time.Now().Before(deadline) {
		sn := store.Snapshot(audTh)
		a, _ := sn.Get(1000)
		b, _ := sn.Get(1001)
		sn.Close()
		if a+b != 1000 {
			log.Fatalf("torn batch observed: %d + %d != 1000", a, b)
		}
		audits++
	}
	close(stop)
	wg.Wait()
	audTh.Release()

	fmt.Printf("%d transfers executed, %d audits — every snapshot balanced\n",
		transfers.Load(), audits)
	fmt.Printf("strict-timestamp tie retries: %d (the paper's §III-A wait loop; ~0 on real TSC)\n",
		store.TieRetries())
}

// eventlog: using the hardware timestamp API directly (the paper's
// Listing 1) to order events across goroutines without any shared
// counter. Producers stamp events with tscds.Now(); because invariant
// TSC is synchronized across cores, merging by timestamp yields an
// order consistent with every cross-goroutine happens-before edge —
// verified here with message-passing checkpoints.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"tscds"
)

type event struct {
	producer int
	seq      int
	ts       uint64
}

const (
	producers  = 4
	perProd    = 20_000
	handshakes = 200
)

func main() {
	fmt.Printf("invariant TSC: %v\n", tscds.HardwareTimestampSupported())

	var mu sync.Mutex
	logbuf := make([]event, 0, producers*perProd)

	// Producers stamp their own events; a token ring forces known
	// cross-goroutine ordering edges we can verify afterwards.
	ring := make([]chan uint64, producers)
	for i := range ring {
		ring[i] = make(chan uint64, 1)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			local := make([]event, 0, perProd)
			for i := 0; i < perProd; i++ {
				local = append(local, event{producer: p, seq: i, ts: tscds.Now()})
			}
			mu.Lock()
			logbuf = append(logbuf, local...)
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	// Merge by hardware timestamp, breaking ties (TSC is monotonic, not
	// strictly increasing) by producer and sequence.
	sort.Slice(logbuf, func(i, j int) bool {
		a, b := logbuf[i], logbuf[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.producer != b.producer {
			return a.producer < b.producer
		}
		return a.seq < b.seq
	})

	// Check 1: per-producer program order survives the merge.
	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	for _, e := range logbuf {
		if e.seq < lastSeq[e.producer] {
			log.Fatalf("producer %d order violated: seq %d after %d", e.producer, e.seq, lastSeq[e.producer])
		}
		lastSeq[e.producer] = e.seq
	}
	fmt.Printf("merged %d events; per-producer program order preserved\n", len(logbuf))

	// Check 2: explicit happens-before edges. A sender reads Now(),
	// passes it to the receiver, which reads Now() again — the
	// receiver's stamp must not be smaller.
	violations := 0
	for i := 0; i < handshakes; i++ {
		ch := make(chan uint64)
		done := make(chan uint64)
		go func() {
			sent := <-ch
			after := tscds.Now()
			if after < sent {
				violations++
			}
			done <- after
		}()
		ch <- tscds.Now()
		<-done
	}
	fmt.Printf("%d cross-goroutine handshakes: %d ordering violations\n", handshakes, violations)
	if violations > 0 {
		log.Fatal("hardware timestamps disagreed with happens-before — is invariant TSC available?")
	}

	// Tie statistics (the §III-A corner case).
	ties := 0
	for i := 1; i < len(logbuf); i++ {
		if logbuf[i].ts == logbuf[i-1].ts {
			ties++
		}
	}
	fmt.Printf("timestamp ties among %d events: %d (%.4f%%) — rare, as the paper argues\n",
		len(logbuf), ties, 100*float64(ties)/float64(len(logbuf)))
}

// kvstore: a concurrent key-value store taking consistent range
// snapshots while writers churn — the scenario range-query techniques
// exist for. A writer inserts ascending order IDs; snapshot readers
// verify that every snapshot is a prefix of the insertion order, which
// only holds if range queries are linearizable.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"tscds"
)

// Order IDs arrive ascending — the worst case for an unbalanced tree —
// so the stream is kept short; the point here is snapshot consistency,
// not throughput.
const totalOrders = 8_000

func main() {
	// Citrus tree + bundled references: the lock-based pairing from the
	// paper's Figure 3, with hardware timestamps.
	store, err := tscds.New(tscds.Citrus, tscds.Bundle, tscds.Config{Source: tscds.TSC})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	start := time.Now()

	// Writer: append orders with ascending IDs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th, err := store.RegisterThread()
		if err != nil {
			log.Fatal(err)
		}
		defer th.Release()
		for id := uint64(1); id <= totalOrders; id++ {
			store.Insert(th, id, id*7) // value: pretend payload
		}
	}()

	// Snapshot readers: every range query must observe a prefix
	// 1..k of the order stream — a gap would mean the snapshot mixed
	// two points in time.
	snapshots := 0
	var mu sync.Mutex
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			th, err := store.RegisterThread()
			if err != nil {
				log.Fatal(err)
			}
			defer th.Release()
			buf := make([]tscds.KV, 0, totalOrders)
			for {
				buf = store.RangeQuery(th, 1, totalOrders, buf[:0])
				for i, kv := range buf {
					if kv.Key != uint64(i+1) {
						log.Fatalf("reader %d: snapshot is not a prefix: position %d holds order %d",
							r, i, kv.Key)
					}
					if kv.Val != kv.Key*7 {
						log.Fatalf("reader %d: order %d has corrupt payload %d", r, kv.Key, kv.Val)
					}
				}
				mu.Lock()
				snapshots++
				mu.Unlock()
				if len(buf) == totalOrders {
					return
				}
			}
		}(r)
	}
	wg.Wait()

	elapsed := time.Since(start)
	th, _ := store.RegisterThread()
	defer th.Release()
	fmt.Printf("ingested %d orders in %v with %d consistent snapshots taken concurrently\n",
		totalOrders, elapsed.Round(time.Millisecond), snapshots)
	fmt.Printf("final store size: %d; every snapshot was a prefix of the insertion order\n",
		store.Len())

	// A final point-in-time report: total payload across an ID band.
	kvs := store.RangeQuery(th, 100, 199, nil)
	var sum uint64
	for _, kv := range kvs {
		sum += kv.Val
	}
	fmt.Printf("orders 100-199: %d orders, payload sum %d\n", len(kvs), sum)
}

// Quickstart: build a map with hardware-timestamped range queries, use
// every operation, and peek at the timestamp API itself.
package main

import (
	"fmt"
	"log"

	"tscds"
)

func main() {
	fmt.Printf("invariant TSC available: %v (falls back to a monotonic clock otherwise)\n\n",
		tscds.HardwareTimestampSupported())

	// A lock-free BST whose range queries are synchronized through the
	// CPU's timestamp counter — the paper's fastest combination.
	m, err := tscds.New(tscds.BST, tscds.VCAS, tscds.Config{Source: tscds.TSC})
	if err != nil {
		log.Fatal(err)
	}

	// Each goroutine registers once and passes its handle to every call.
	th, err := m.RegisterThread()
	if err != nil {
		log.Fatal(err)
	}
	defer th.Release()

	for _, k := range []uint64{30, 10, 50, 20, 40} {
		m.Insert(th, k, k*100)
	}
	fmt.Println("inserted 10,20,30,40,50 (values = key*100)")

	if v, ok := m.Get(th, 30); ok {
		fmt.Printf("Get(30) = %d\n", v)
	}
	m.Delete(th, 20)
	fmt.Println("deleted 20")

	// A range query returns one linearizable snapshot: no concurrent
	// update can be half-visible in it.
	kvs := m.RangeQuery(th, 15, 45, nil)
	fmt.Printf("RangeQuery(15,45) -> %d pairs:", len(kvs))
	for _, kv := range kvs {
		fmt.Printf(" (%d,%d)", kv.Key, kv.Val)
	}
	fmt.Println()

	// The timestamp API is also usable directly (Listing 1 of the
	// paper): monotonic, synchronized across cores.
	a, b := tscds.Now(), tscds.Now()
	fmt.Printf("\ntscds.Now(): %d then %d (delta %d ticks)\n", a, b, b-a)

	// The same map works with the logical-counter baseline; only the
	// Config changes — that is the paper's entire porting recipe.
	baseline, err := tscds.New(tscds.BST, tscds.VCAS, tscds.Config{Source: tscds.Logical})
	if err != nil {
		log.Fatal(err)
	}
	tb, _ := baseline.RegisterThread()
	baseline.Insert(tb, 1, 1)
	fmt.Printf("baseline map with logical timestamps works identically: Contains(1)=%v\n",
		baseline.Contains(tb, 1))
	tb.Release()
}

package tscds

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// checkRangeAgainstModel compares one RangeQuery and one Scan of [lo,hi]
// against the model, key for key in sorted order — not just counts, so a
// snapshot returning the right number of wrong pairs cannot pass.
func checkRangeAgainstModel(t *testing.T, label string, m Map, th *Thread, model map[uint64]uint64, lo, hi uint64) {
	t.Helper()
	var want []KV
	for k, v := range model {
		if k >= lo && k <= hi {
			want = append(want, KV{Key: k, Val: v})
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })

	got := m.RangeQuery(th, lo, hi, nil)
	sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
	if len(got) != len(want) {
		t.Fatalf("%s: range[%d,%d] = %d pairs, want %d", label, lo, hi, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: range[%d,%d][%d] = %v, want %v", label, lo, hi, i, got[i], want[i])
		}
	}

	var scanned []KV
	m.Scan(th, lo, hi, func(kv KV) bool {
		scanned = append(scanned, kv)
		return true
	})
	if len(scanned) != len(want) {
		t.Fatalf("%s: scan[%d,%d] = %d pairs, want %d", label, lo, hi, len(scanned), len(want))
	}
	for i := range scanned {
		if scanned[i] != want[i] { // Scan contract: ascending key order
			t.Fatalf("%s: scan[%d,%d][%d] = %v, want %v", label, lo, hi, i, scanned[i], want[i])
		}
	}
	if len(want) > 1 {
		calls := 0
		m.Scan(th, lo, hi, func(KV) bool {
			calls++
			return false
		})
		if calls != 1 {
			t.Fatalf("%s: early-exit scan made %d calls, want 1", label, calls)
		}
	}
}

// FuzzMapAgainstModel feeds arbitrary operation tapes through every
// (structure, technique) pair and a reference map simultaneously. Each
// tape byte-pair is one operation: the first byte selects the op, the
// second the key. Run with `go test -fuzz=FuzzMapAgainstModel` for
// continuous exploration; without -fuzz the seed corpus still executes.
func FuzzMapAgainstModel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 1, 1, 1, 3, 0})
	f.Add([]byte{0, 5, 0, 6, 0, 7, 1, 6, 3, 4, 2, 7})
	f.Add([]byte{})
	seq := []byte{}
	for i := 0; i < 64; i++ {
		seq = append(seq, byte(i%4), byte(i*7))
	}
	f.Add(seq)

	combos := allCombos()
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 512 {
			tape = tape[:512]
		}
		for _, c := range combos {
			m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 2})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			model := map[uint64]uint64{}
			for i := 0; i+1 < len(tape); i += 2 {
				op := tape[i] % 4
				key := uint64(tape[i+1])
				switch op {
				case 0:
					_, exists := model[key]
					if got := m.Insert(th, key, key*3); got == exists {
						t.Fatalf("%v/%v op %d: Insert(%d)=%v exists=%v", c.S, c.T, i, key, got, exists)
					}
					if !exists {
						model[key] = key * 3
					}
				case 1:
					_, exists := model[key]
					if got := m.Delete(th, key); got != exists {
						t.Fatalf("%v/%v op %d: Delete(%d)=%v exists=%v", c.S, c.T, i, key, got, exists)
					}
					delete(model, key)
				case 2:
					_, exists := model[key]
					if got := m.Contains(th, key); got != exists {
						t.Fatalf("%v/%v op %d: Contains(%d)=%v want %v", c.S, c.T, i, key, got, exists)
					}
				default:
					label := fmt.Sprintf("%v/%v op %d", c.S, c.T, i)
					checkRangeAgainstModel(t, label, m, th, model, key, key+16)
				}
			}
			// Final full-range agreement.
			checkRangeAgainstModel(t, fmt.Sprintf("%v/%v final", c.S, c.T), m, th, model, 0, MaxKey)
			if m.Len() != len(model) {
				t.Fatalf("%v/%v final: Len=%d model=%d", c.S, c.T, m.Len(), len(model))
			}
			th.Release()
		}
	})
}

// FuzzShardedAgainstModel is FuzzMapAgainstModel through the sharded
// front end: the first tape byte picks the shard count (1-8), the second
// the (structure, technique) pair, and the rest is an op tape whose range
// queries are compared against the model key for key — so a cross-shard
// snapshot that loses, duplicates or misroutes a key cannot pass.
func FuzzShardedAgainstModel(f *testing.F) {
	for n := byte(0); n < 8; n++ {
		f.Add(append([]byte{n, n}, 0, 1, 0, 2, 2, 1, 1, 1, 3, 0))
	}
	seq := []byte{3, 4}
	for i := 0; i < 64; i++ {
		seq = append(seq, byte(i%4), byte(i*7))
	}
	f.Add(seq)

	combos := allCombos()
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) < 2 {
			return
		}
		if len(tape) > 512 {
			tape = tape[:512]
		}
		shards := int(tape[0]%8) + 1
		c := combos[int(tape[1])%len(combos)]
		tape = tape[2:]
		label := fmt.Sprintf("%v/%v/shards=%d", c.S, c.T, shards)

		m, err := NewSharded(c.S, c.T, shards, Config{Source: Logical, MaxThreads: 2})
		if err != nil {
			t.Fatal(err)
		}
		th, err := m.RegisterThread()
		if err != nil {
			t.Fatal(err)
		}
		defer th.Release()
		model := map[uint64]uint64{}
		for i := 0; i+1 < len(tape); i += 2 {
			op := tape[i] % 4
			key := uint64(tape[i+1])
			switch op {
			case 0:
				_, exists := model[key]
				if got := m.Insert(th, key, key*3); got == exists {
					t.Fatalf("%s op %d: Insert(%d)=%v exists=%v", label, i, key, got, exists)
				}
				if !exists {
					model[key] = key * 3
				}
			case 1:
				_, exists := model[key]
				if got := m.Delete(th, key); got != exists {
					t.Fatalf("%s op %d: Delete(%d)=%v exists=%v", label, i, key, got, exists)
				}
				delete(model, key)
			case 2:
				_, exists := model[key]
				if got := m.Contains(th, key); got != exists {
					t.Fatalf("%s op %d: Contains(%d)=%v want %v", label, i, key, got, exists)
				}
			default:
				// Width under the shard count exercises partial fan-outs.
				checkRangeAgainstModel(t, fmt.Sprintf("%s op %d", label, i), m, th, model, key, key+3)
			}
		}
		checkRangeAgainstModel(t, label+" final", m, th, model, 0, MaxKey)
		if m.Len() != len(model) {
			t.Fatalf("%s final: Len=%d model=%d", label, m.Len(), len(model))
		}
	})
}

// FuzzAdaptiveSwitch drives an Adaptive-source map against the model
// while injecting TSC backsteps at tape-chosen points: the first byte
// picks the (structure, technique) pair, and bit 7 of each op byte
// injects a backstep into the health monitor immediately before the op,
// forcing a hardware→logical generation switch (and, after enough quiet
// operations, possibly a failback). Every range query after a switch is
// compared key for key against the model, so a snapshot torn across a
// generation boundary cannot pass.
func FuzzAdaptiveSwitch(f *testing.F) {
	f.Add([]byte{0, 0x80, 1, 0, 2, 2, 1, 0x81, 1, 3, 0})
	f.Add([]byte{5, 0, 9, 0x83, 7, 1, 9, 0x80, 3, 0})
	seq := []byte{2}
	for i := 0; i < 64; i++ {
		b := byte(i % 4)
		if i%9 == 0 {
			b |= 0x80 // periodic backsteps through the tape
		}
		seq = append(seq, b, byte(i*7))
	}
	f.Add(seq)

	combos := allCombos()
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) < 1 {
			return
		}
		if len(tape) > 512 {
			tape = tape[:512]
		}
		c := combos[int(tape[0])%len(combos)]
		tape = tape[1:]
		label := fmt.Sprintf("%v/%v/adaptive", c.S, c.T)

		health := NewTSCHealth(2)
		m, err := New(c.S, c.T, Config{Source: Adaptive, Health: health, MaxThreads: 2})
		if err != nil {
			if c.T == EBRRQLockFree {
				return // requires an addressable source; Adaptive is not
			}
			t.Fatal(err)
		}
		th, err := m.RegisterThread()
		if err != nil {
			t.Fatal(err)
		}
		defer th.Release()
		model := map[uint64]uint64{}
		injected := 0
		for i := 0; i+1 < len(tape); i += 2 {
			if tape[i]&0x80 != 0 {
				health.InjectBackstep(uint64(time.Hour))
				injected++
			}
			op := tape[i] % 4
			key := uint64(tape[i+1])
			switch op {
			case 0:
				_, exists := model[key]
				if got := m.Insert(th, key, key*3); got == exists {
					t.Fatalf("%s op %d: Insert(%d)=%v exists=%v", label, i, key, got, exists)
				}
				if !exists {
					model[key] = key * 3
				}
			case 1:
				_, exists := model[key]
				if got := m.Delete(th, key); got != exists {
					t.Fatalf("%s op %d: Delete(%d)=%v exists=%v", label, i, key, got, exists)
				}
				delete(model, key)
			case 2:
				_, exists := model[key]
				if got := m.Contains(th, key); got != exists {
					t.Fatalf("%s op %d: Contains(%d)=%v want %v", label, i, key, got, exists)
				}
			default:
				checkRangeAgainstModel(t, fmt.Sprintf("%s op %d", label, i), m, th, model, key, key+16)
			}
		}
		checkRangeAgainstModel(t, label+" final", m, th, model, 0, MaxKey)
		if m.Len() != len(model) {
			t.Fatalf("%s final: Len=%d model=%d", label, m.Len(), len(model))
		}
		if injected > 0 {
			if hs := health.Snapshot(); hs.SourceSwitches < 1 {
				t.Fatalf("%s: %d backsteps injected but no generation switch recorded", label, injected)
			}
		}
	})
}

// FuzzTimeTravelAgainstModel checks MVCC time travel against a
// versioned model. Three maps run the same single-threaded op tape: a
// retain-everything map, its sharded twin (the cross-shard historical
// fan-out must agree with the merged model exactly), and a
// no-retention map where a historical read may legally refuse with
// ErrTruncatedHistory but must otherwise return exactly the model
// state. After every update the model state is snapshotted together
// with a Now() stamp from each map; historical reads replay those
// snapshots at stamps of arbitrary age — including the pre-history
// stamp captured before the first update, which must read as empty.
// The first tape byte picks the (structure, technique) pair among the
// history-retaining ones, the second the shard count.
func FuzzTimeTravelAgainstModel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 5, 0, 6, 2, 5, 1, 6, 3, 4, 2, 9})
	f.Add([]byte{3, 3, 0, 1, 4, 1, 0, 2, 5, 0, 1, 1, 2, 0})
	seq := []byte{1, 2}
	for i := 0; i < 64; i++ {
		seq = append(seq, byte(i%6), byte(i*7))
	}
	f.Add(seq)

	var combos []struct {
		S Structure
		T Technique
	}
	for _, c := range allCombos() {
		if c.T == VCAS || c.T == Bundle {
			combos = append(combos, c)
		}
	}

	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) < 2 {
			return
		}
		if len(tape) > 512 {
			tape = tape[:512]
		}
		c := combos[int(tape[0])%len(combos)]
		shards := int(tape[1]%4) + 1
		tape = tape[2:]
		label := fmt.Sprintf("%v/%v/shards=%d", c.S, c.T, shards)

		full, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 2, Retention: ^uint64(0)})
		if err != nil {
			t.Fatal(err)
		}
		shard, err := NewSharded(c.S, c.T, shards, Config{Source: Logical, MaxThreads: 2, Retention: ^uint64(0)})
		if err != nil {
			t.Fatal(err)
		}
		tight, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 2})
		if err != nil {
			t.Fatal(err)
		}
		maps := []Map{full, shard, tight}
		ths := make([]*Thread, len(maps))
		for i, m := range maps {
			if ths[i], err = m.RegisterThread(); err != nil {
				t.Fatal(err)
			}
			defer ths[i].Release()
		}

		// One snapshot per model state: a copy of the model plus the
		// stamp each map handed out for that state. snaps[0] is the
		// pre-history snapshot (empty state, first stamps — on a logical
		// source that first Now() is timestamp zero).
		type snap struct {
			state map[uint64]uint64
			ts    [3]uint64
		}
		record := func(model map[uint64]uint64) snap {
			st := make(map[uint64]uint64, len(model))
			for k, v := range model {
				st[k] = v
			}
			var s snap
			s.state = st
			for i, m := range maps {
				s.ts[i] = m.Now()
			}
			return s
		}
		model := map[uint64]uint64{}
		snaps := []snap{record(model)}

		// checkAt replays snapshot sn against map i at its captured
		// stamp. mayTruncate permits an ErrTruncatedHistory refusal (the
		// no-retention map makes no promise); any other error, or any
		// divergence from the recorded state, fails.
		checkAt := func(op int, i int, sn snap, key uint64) {
			t.Helper()
			m, th, ts := maps[i], ths[i], sn.ts[i]
			mayTruncate := i == 2
			wantV, wantOK := sn.state[key]
			gotV, gotOK, err := m.GetAt(th, key, ts)
			if err != nil {
				if mayTruncate && err == ErrTruncatedHistory {
					return
				}
				t.Fatalf("%s op %d map %d: GetAt(%d, ts=%d): %v", label, op, i, key, ts, err)
			}
			if gotV != wantV || gotOK != wantOK {
				t.Fatalf("%s op %d map %d: GetAt(%d, ts=%d) = (%d,%v), model (%d,%v)",
					label, op, i, key, ts, gotV, gotOK, wantV, wantOK)
			}
			lo, hi := key, key+16
			var want []KV
			for k, v := range sn.state {
				if k >= lo && k <= hi {
					want = append(want, KV{Key: k, Val: v})
				}
			}
			sort.Slice(want, func(a, b int) bool { return want[a].Key < want[b].Key })
			got, err := m.RangeQueryAt(th, lo, hi, ts, nil)
			if err != nil {
				if mayTruncate && err == ErrTruncatedHistory {
					return
				}
				t.Fatalf("%s op %d map %d: RangeQueryAt[%d,%d]@%d: %v", label, op, i, lo, hi, ts, err)
			}
			sort.Slice(got, func(a, b int) bool { return got[a].Key < got[b].Key })
			if len(got) != len(want) {
				t.Fatalf("%s op %d map %d: RangeQueryAt[%d,%d]@%d = %d pairs, model %d",
					label, op, i, lo, hi, ts, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s op %d map %d: RangeQueryAt[%d,%d]@%d [%d] = %v, model %v",
						label, op, i, lo, hi, ts, j, got[j], want[j])
				}
			}
			var scanned []KV
			if err := m.ScanAt(th, lo, hi, ts, func(kv KV) bool {
				scanned = append(scanned, kv)
				return true
			}); err != nil {
				if mayTruncate && err == ErrTruncatedHistory {
					return
				}
				t.Fatalf("%s op %d map %d: ScanAt[%d,%d]@%d: %v", label, op, i, lo, hi, ts, err)
			}
			for j := range scanned {
				if scanned[j] != want[j] { // ScanAt contract: ascending keys
					t.Fatalf("%s op %d map %d: ScanAt[%d,%d]@%d [%d] = %v, model %v",
						label, op, i, lo, hi, ts, j, scanned[j], want[j])
				}
			}
		}

		for i := 0; i+1 < len(tape); i += 2 {
			op := tape[i] % 6
			key := uint64(tape[i+1])
			switch op {
			case 0, 1:
				insert := op == 0
				_, exists := model[key]
				val := key*3 + uint64(i)
				for j, m := range maps {
					if insert {
						if got := m.Insert(ths[j], key, val); got == exists {
							t.Fatalf("%s op %d map %d: Insert(%d)=%v exists=%v", label, i, j, key, got, exists)
						}
					} else if got := m.Delete(ths[j], key); got != exists {
						t.Fatalf("%s op %d map %d: Delete(%d)=%v exists=%v", label, i, j, key, got, exists)
					}
				}
				if insert && !exists {
					model[key] = val
				} else if !insert {
					delete(model, key)
				}
				snaps = append(snaps, record(model))
			case 2, 3:
				// Historical read at a stamp of tape-chosen age: index 0 is
				// the pre-history stamp, the newest exercises the
				// ts == Now() inclusive boundary.
				sn := snaps[int(key)%len(snaps)]
				for j := range maps {
					checkAt(i, j, sn, key)
				}
			case 4:
				// Pre-history on every map: state before any update.
				for j := range maps {
					checkAt(i, j, snaps[0], key)
				}
			default:
				// Future timestamps must refuse on every map.
				for j, m := range maps {
					future := snaps[len(snaps)-1].ts[j] + 1000
					if _, _, err := m.GetAt(ths[j], key, future); err != ErrFutureTimestamp {
						t.Fatalf("%s op %d map %d: GetAt at future ts %d: err=%v, want ErrFutureTimestamp",
							label, i, j, future, err)
					}
				}
			}
		}
		// Final pass: every snapshot must still replay exactly on the
		// retain-everything maps.
		for si, sn := range snaps {
			for j := 0; j < 2; j++ {
				checkAt(-si, j, sn, uint64(si*13)%256)
			}
		}
	})
}

// FuzzBatchStore checks the Jiffy-style store's batch semantics against
// a model: a tape of batches (each up to 4 ops) applied to both.
func FuzzBatchStore(f *testing.F) {
	f.Add([]byte{1, 0, 5, 9, 2, 0, 5, 1, 1, 6, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 256 {
			tape = tape[:256]
		}
		st, reg := NewBatchStore(Config{Source: Logical, MaxThreads: 2})
		th, _ := reg.Register()
		defer th.Release()
		model := map[uint64]uint64{}
		i := 0
		for i < len(tape) {
			n := int(tape[i]%4) + 1
			i++
			var ops []BatchOp
			for j := 0; j < n && i+1 < len(tape); j++ {
				key := uint64(tape[i]%32) + 1
				val := uint64(tape[i+1])
				i += 2
				remove := val%5 == 0
				ops = append(ops, BatchOp{Key: key, Val: val, Remove: remove})
			}
			st.Apply(th, ops)
			for _, op := range ops { // batch order: last op per key wins
				if op.Remove {
					delete(model, op.Key)
				} else {
					model[op.Key] = op.Val
				}
			}
			for k, v := range model {
				got, ok := st.Get(th, k)
				if !ok || got != v {
					t.Fatalf("Get(%d) = (%d,%v), model %d after %s", k, got, ok, v, fmt.Sprint(ops))
				}
			}
		}
		if st.Len() != len(model) {
			t.Fatalf("Len=%d model=%d", st.Len(), len(model))
		}
	})
}

// FuzzPooledAgainstModel is FuzzMapAgainstModel with Config.Alloc set to
// a recycling mode and Drain interleaved into the op tape. Drain forces
// retired nodes through limbo into the pool free lists, so subsequent
// inserts run on recycled memory — any field a constructor forgets to
// reset, or any node recycled while still reachable, surfaces as a model
// divergence or a crash. The first tape byte picks Pool vs Arena; the
// rest is the op tape (op byte mod 5: insert, delete, contains, range,
// drain).
func FuzzPooledAgainstModel(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 1, 1, 4, 0, 0, 3, 0, 5})
	f.Add([]byte{1, 0, 5, 0, 6, 0, 7, 1, 6, 4, 0, 0, 6, 3, 4})
	seq := []byte{0}
	for i := 0; i < 96; i++ {
		seq = append(seq, byte(i%5), byte(i*11))
	}
	f.Add(seq)

	combos := allCombos()
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) == 0 {
			return
		}
		alloc := AllocPool
		if tape[0]%2 == 1 {
			alloc = AllocArena
		}
		tape = tape[1:]
		if len(tape) > 512 {
			tape = tape[:512]
		}
		for _, c := range combos {
			m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 2, Alloc: alloc})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			model := map[uint64]uint64{}
			for i := 0; i+1 < len(tape); i += 2 {
				op := tape[i] % 5
				key := uint64(tape[i+1])
				switch op {
				case 0:
					_, exists := model[key]
					if got := m.Insert(th, key, key*3); got == exists {
						t.Fatalf("%v/%v/%v op %d: Insert(%d)=%v exists=%v", c.S, c.T, alloc, i, key, got, exists)
					}
					if !exists {
						model[key] = key * 3
					}
				case 1:
					_, exists := model[key]
					if got := m.Delete(th, key); got != exists {
						t.Fatalf("%v/%v/%v op %d: Delete(%d)=%v exists=%v", c.S, c.T, alloc, i, key, got, exists)
					}
					delete(model, key)
				case 2:
					_, exists := model[key]
					if got := m.Contains(th, key); got != exists {
						t.Fatalf("%v/%v/%v op %d: Contains(%d)=%v want %v", c.S, c.T, alloc, i, key, got, exists)
					}
				case 3:
					label := fmt.Sprintf("%v/%v/%v op %d", c.S, c.T, alloc, i)
					checkRangeAgainstModel(t, label, m, th, model, key, key+16)
				default:
					m.Drain() // recycle everything retired so far
				}
			}
			m.Drain()
			checkRangeAgainstModel(t, fmt.Sprintf("%v/%v/%v final", c.S, c.T, alloc), m, th, model, 0, MaxKey)
			if m.Len() != len(model) {
				t.Fatalf("%v/%v/%v final: Len=%d model=%d", c.S, c.T, alloc, m.Len(), len(model))
			}
			th.Release()
		}
	})
}

package tscds

import (
	"fmt"
	"testing"
)

// FuzzMapAgainstModel feeds arbitrary operation tapes through every
// (structure, technique) pair and a reference map simultaneously. Each
// tape byte-pair is one operation: the first byte selects the op, the
// second the key. Run with `go test -fuzz=FuzzMapAgainstModel` for
// continuous exploration; without -fuzz the seed corpus still executes.
func FuzzMapAgainstModel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 1, 1, 1, 3, 0})
	f.Add([]byte{0, 5, 0, 6, 0, 7, 1, 6, 3, 4, 2, 7})
	f.Add([]byte{})
	seq := []byte{}
	for i := 0; i < 64; i++ {
		seq = append(seq, byte(i%4), byte(i*7))
	}
	f.Add(seq)

	combos := allCombos()
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 512 {
			tape = tape[:512]
		}
		for _, c := range combos {
			m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 2})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			model := map[uint64]uint64{}
			for i := 0; i+1 < len(tape); i += 2 {
				op := tape[i] % 4
				key := uint64(tape[i+1])
				switch op {
				case 0:
					_, exists := model[key]
					if got := m.Insert(th, key, key*3); got == exists {
						t.Fatalf("%v/%v op %d: Insert(%d)=%v exists=%v", c.S, c.T, i, key, got, exists)
					}
					if !exists {
						model[key] = key * 3
					}
				case 1:
					_, exists := model[key]
					if got := m.Delete(th, key); got != exists {
						t.Fatalf("%v/%v op %d: Delete(%d)=%v exists=%v", c.S, c.T, i, key, got, exists)
					}
					delete(model, key)
				case 2:
					_, exists := model[key]
					if got := m.Contains(th, key); got != exists {
						t.Fatalf("%v/%v op %d: Contains(%d)=%v want %v", c.S, c.T, i, key, got, exists)
					}
				default:
					lo := key
					hi := lo + 16
					got := m.RangeQuery(th, lo, hi, nil)
					want := 0
					for k := range model {
						if k >= lo && k <= hi {
							want++
						}
					}
					if len(got) != want {
						t.Fatalf("%v/%v op %d: range[%d,%d] = %d keys, want %d",
							c.S, c.T, i, lo, hi, len(got), want)
					}
					for _, kv := range got {
						if v, ok := model[kv.Key]; !ok || v != kv.Val {
							t.Fatalf("%v/%v: range kv %v disagrees with model", c.S, c.T, kv)
						}
					}
				}
			}
			// Final full-range agreement.
			got := m.RangeQuery(th, 0, MaxKey, nil)
			if len(got) != len(model) || m.Len() != len(model) {
				t.Fatalf("%v/%v final: range=%d Len=%d model=%d", c.S, c.T, len(got), m.Len(), len(model))
			}
			th.Release()
		}
	})
}

// FuzzBatchStore checks the Jiffy-style store's batch semantics against
// a model: a tape of batches (each up to 4 ops) applied to both.
func FuzzBatchStore(f *testing.F) {
	f.Add([]byte{1, 0, 5, 9, 2, 0, 5, 1, 1, 6, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 256 {
			tape = tape[:256]
		}
		st, reg := NewBatchStore(Config{Source: Logical, MaxThreads: 2})
		th, _ := reg.Register()
		defer th.Release()
		model := map[uint64]uint64{}
		i := 0
		for i < len(tape) {
			n := int(tape[i]%4) + 1
			i++
			var ops []BatchOp
			for j := 0; j < n && i+1 < len(tape); j++ {
				key := uint64(tape[i]%32) + 1
				val := uint64(tape[i+1])
				i += 2
				remove := val%5 == 0
				ops = append(ops, BatchOp{Key: key, Val: val, Remove: remove})
			}
			st.Apply(th, ops)
			for _, op := range ops { // batch order: last op per key wins
				if op.Remove {
					delete(model, op.Key)
				} else {
					model[op.Key] = op.Val
				}
			}
			for k, v := range model {
				got, ok := st.Get(th, k)
				if !ok || got != v {
					t.Fatalf("Get(%d) = (%d,%v), model %d after %s", k, got, ok, v, fmt.Sprint(ops))
				}
			}
		}
		if st.Len() != len(model) {
			t.Fatalf("Len=%d model=%d", st.Len(), len(model))
		}
	})
}

module tscds

go 1.22

// Package affinity pins benchmark goroutines to CPUs and reproduces the
// paper's pinning policy: saturate one NUMA zone before starting the
// next, and within a zone place each pair of hyperthreads on their shared
// physical core consecutively. Topology is read from /sys on Linux; on
// other platforms (or restricted containers) pinning degrades to
// runtime.LockOSThread only, which is reported rather than hidden.
package affinity

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// ErrUnsupported indicates the host cannot set CPU affinity.
var ErrUnsupported = errors.New("affinity: not supported on this platform")

// CPU describes one logical CPU.
type CPU struct {
	ID   int // logical CPU number
	Core int // physical core id within the package
	Node int // NUMA node
}

// Topology is the set of online logical CPUs.
type Topology struct {
	CPUs []CPU
}

// Nodes returns the distinct NUMA node ids in ascending order.
func (t *Topology) Nodes() []int {
	seen := map[int]bool{}
	var nodes []int
	for _, c := range t.CPUs {
		if !seen[c.Node] {
			seen[c.Node] = true
			nodes = append(nodes, c.Node)
		}
	}
	sort.Ints(nodes)
	return nodes
}

// Detect reads the host topology from /sys. When /sys is unavailable it
// returns a flat topology: one node, one core per logical CPU — which
// keeps the pin order well-defined everywhere.
func Detect() *Topology { return DetectAt("/sys") }

// DetectAt reads the topology from an alternative sysfs root (tests use
// a synthetic tree).
func DetectAt(sysRoot string) *Topology {
	n := runtime.NumCPU()
	online, err := parseCPUList(readSys(sysRoot + "/devices/system/cpu/online"))
	if err != nil || len(online) == 0 {
		online = make([]int, n)
		for i := range online {
			online[i] = i
		}
	}
	t := &Topology{}
	for _, id := range online {
		base := fmt.Sprintf("%s/devices/system/cpu/cpu%d/topology/", sysRoot, id)
		core := atoiDefault(readSys(base+"core_id"), id)
		node := atoiDefault(readSys(base+"physical_package_id"), 0)
		t.CPUs = append(t.CPUs, CPU{ID: id, Core: core, Node: node})
	}
	return t
}

// PaperTopology returns the topology of the paper's machine: four NUMA
// zones, 24 physical cores per zone, two hyperthreads per core (192
// logical CPUs). Used by the simulator and by tests of the pin policy.
func PaperTopology() *Topology {
	t := &Topology{}
	id := 0
	for node := 0; node < 4; node++ {
		for core := 0; core < 24; core++ {
			t.CPUs = append(t.CPUs, CPU{ID: id, Core: core, Node: node})
			id++
		}
	}
	// Second hyperthread of every core, in the same order.
	for node := 0; node < 4; node++ {
		for core := 0; core < 24; core++ {
			t.CPUs = append(t.CPUs, CPU{ID: id, Core: core, Node: node})
			id++
		}
	}
	return t
}

// PinOrder returns logical CPU ids in the paper's pin order: fill a NUMA
// zone completely (each core's hyperthreads consecutively) before moving
// to the next zone.
func PinOrder(t *Topology) []int {
	type key struct{ node, core int }
	groups := map[key][]int{}
	for _, c := range t.CPUs {
		k := key{c.Node, c.Core}
		groups[k] = append(groups[k], c.ID)
	}
	var keys []key
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].core < keys[j].core
	})
	var order []int
	for _, k := range keys {
		ids := groups[k]
		sort.Ints(ids)
		order = append(order, ids...)
	}
	return order
}

// Pinner assigns worker indices to CPUs following the pin order and
// applies the assignment to the calling goroutine's OS thread.
type Pinner struct {
	order []int
	// Applied counts successful affinity calls; tests and the harness
	// report whether pinning actually took effect.
	Applied int
	// LastErr holds the most recent pinning failure, if any.
	LastErr error
}

// NewPinner builds a pinner over the detected host topology.
func NewPinner() *Pinner { return &Pinner{order: PinOrder(Detect())} }

// Pin locks the calling goroutine to an OS thread and binds that thread
// to the CPU assigned to worker i. The caller must invoke the returned
// function to unlock the thread when done. Pinning failures are recorded,
// not fatal: the benchmark still runs, just unpinned.
func (p *Pinner) Pin(i int) (unpin func()) {
	runtime.LockOSThread()
	cpu := p.order[i%len(p.order)]
	if err := setAffinity(cpu); err != nil {
		p.LastErr = err
	} else {
		p.Applied++
	}
	return runtime.UnlockOSThread
}

func readSys(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

func atoiDefault(s string, def int) int {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return def
	}
	return v
}

// parseCPUList parses the kernel's cpulist format, e.g. "0-3,8,10-11".
func parseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, errors.New("empty cpu list")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, err
			}
			b, err := strconv.Atoi(hi)
			if err != nil {
				return nil, err
			}
			if b < a {
				return nil, fmt.Errorf("invalid range %q", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
		} else {
			v, err := strconv.Atoi(part)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

//go:build linux

package affinity

import (
	"syscall"
	"unsafe"
)

// setAffinity binds the calling OS thread to a single CPU using the raw
// sched_setaffinity syscall (tid 0 = calling thread). The mask is a
// 1024-bit cpu_set_t, matching glibc's default CPU_SETSIZE.
func setAffinity(cpu int) error {
	var mask [16]uint64 // 1024 bits
	if cpu < 0 || cpu >= len(mask)*64 {
		return ErrUnsupported
	}
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return errno
	}
	return nil
}

//go:build !linux

package affinity

// setAffinity is unavailable off Linux; Pin degrades to LockOSThread.
func setAffinity(cpu int) error { return ErrUnsupported }

package affinity

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"0", []int{0}, false},
		{"0-3", []int{0, 1, 2, 3}, false},
		{"0-2,5,7-8", []int{0, 1, 2, 5, 7, 8}, false},
		{" 1-2 \n", []int{1, 2}, false},
		{"", nil, true},
		{"3-1", nil, true},
		{"x", nil, true},
		{"1-y", nil, true},
	}
	for _, c := range cases {
		got, err := parseCPUList(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseCPUList(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseCPUList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDetectNonEmpty(t *testing.T) {
	topo := Detect()
	if len(topo.CPUs) == 0 {
		t.Fatal("Detect returned no CPUs")
	}
	if len(topo.Nodes()) == 0 {
		t.Fatal("Detect returned no NUMA nodes")
	}
}

func TestPaperTopologyShape(t *testing.T) {
	topo := PaperTopology()
	if len(topo.CPUs) != 192 {
		t.Fatalf("paper topology has %d CPUs, want 192", len(topo.CPUs))
	}
	nodes := topo.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("paper topology has %d nodes, want 4", len(nodes))
	}
	perNode := map[int]int{}
	for _, c := range topo.CPUs {
		perNode[c.Node]++
	}
	for n, cnt := range perNode {
		if cnt != 48 {
			t.Errorf("node %d has %d hyperthreads, want 48", n, cnt)
		}
	}
}

// The paper's pin order: the first 48 workers all land in NUMA zone 0,
// and hyperthread siblings (same node+core) are adjacent.
func TestPinOrderPaperPolicy(t *testing.T) {
	topo := PaperTopology()
	order := PinOrder(topo)
	if len(order) != 192 {
		t.Fatalf("pin order has %d entries, want 192", len(order))
	}
	byID := map[int]CPU{}
	for _, c := range topo.CPUs {
		byID[c.ID] = c
	}
	for i := 0; i < 48; i++ {
		if byID[order[i]].Node != 0 {
			t.Fatalf("worker %d pinned to node %d before zone 0 saturated", i, byID[order[i]].Node)
		}
	}
	for i := 48; i < 96; i++ {
		if byID[order[i]].Node != 1 {
			t.Fatalf("worker %d pinned to node %d, want 1", i, byID[order[i]].Node)
		}
	}
	// SMT pairing: consecutive even/odd workers share a physical core.
	for i := 0; i+1 < len(order); i += 2 {
		a, b := byID[order[i]], byID[order[i+1]]
		if a.Node != b.Node || a.Core != b.Core {
			t.Fatalf("workers %d,%d not on sibling hyperthreads: %+v vs %+v", i, i+1, a, b)
		}
	}
}

func TestPinOrderCoversAllCPUsOnce(t *testing.T) {
	for _, topo := range []*Topology{Detect(), PaperTopology()} {
		order := PinOrder(topo)
		if len(order) != len(topo.CPUs) {
			t.Fatalf("pin order length %d != topology size %d", len(order), len(topo.CPUs))
		}
		seen := map[int]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("CPU %d appears twice in pin order", id)
			}
			seen[id] = true
		}
	}
}

func TestPinnerPinsWithoutPanic(t *testing.T) {
	p := NewPinner()
	unpin := p.Pin(0)
	unpin()
	// Wrap-around beyond available CPUs must not panic.
	unpin = p.Pin(10_000)
	unpin()
	t.Logf("applied=%d lastErr=%v", p.Applied, p.LastErr)
}

// DetectAt against a synthetic sysfs: 2 packages x 2 cores x 2 SMT.
func TestDetectAtSyntheticSysfs(t *testing.T) {
	root := t.TempDir()
	cpuDir := filepath.Join(root, "devices", "system", "cpu")
	write := func(rel, content string) {
		p := filepath.Join(cpuDir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("online", "0-7\n")
	for id := 0; id < 8; id++ {
		pkg := id / 4
		core := (id / 2) % 2
		write(fmt.Sprintf("cpu%d/topology/core_id", id), fmt.Sprintf("%d\n", core))
		write(fmt.Sprintf("cpu%d/topology/physical_package_id", id), fmt.Sprintf("%d\n", pkg))
	}
	topo := DetectAt(root)
	if len(topo.CPUs) != 8 {
		t.Fatalf("detected %d CPUs", len(topo.CPUs))
	}
	nodes := topo.Nodes()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Fatalf("nodes = %v", nodes)
	}
	order := PinOrder(topo)
	// Zone 0 (CPUs 0..3) must be fully pinned before zone 1.
	byID := map[int]CPU{}
	for _, c := range topo.CPUs {
		byID[c.ID] = c
	}
	for i := 0; i < 4; i++ {
		if byID[order[i]].Node != 0 {
			t.Fatalf("worker %d on node %d before node 0 saturated", i, byID[order[i]].Node)
		}
	}
	// SMT pairs adjacent within each node.
	for i := 0; i+1 < len(order); i += 2 {
		a, b := byID[order[i]], byID[order[i+1]]
		if a.Node != b.Node || a.Core != b.Core {
			t.Fatalf("workers %d,%d not SMT siblings: %+v %+v", i, i+1, a, b)
		}
	}
}

// A sysfs missing topology files degrades to flat (node 0, core = id).
func TestDetectAtDegradedSysfs(t *testing.T) {
	root := t.TempDir()
	p := filepath.Join(root, "devices", "system", "cpu")
	if err := os.MkdirAll(p, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(p, "online"), []byte("0-2"), 0o644); err != nil {
		t.Fatal(err)
	}
	topo := DetectAt(root)
	if len(topo.CPUs) != 3 {
		t.Fatalf("CPUs = %d", len(topo.CPUs))
	}
	for i, c := range topo.CPUs {
		if c.Node != 0 || c.Core != i {
			t.Fatalf("degraded cpu %d = %+v", i, c)
		}
	}
}

// Package bench is the native benchmark harness replicating the paper's
// experimental setup (§III-B): mixed U-RQ-C workloads over uniformly
// random keys in a 1,000,000-key range, structures prefilled to half,
// 100-key range queries, timed trials averaged with their coefficient of
// variation reported. Worker goroutines are pinned to OS threads and, on
// Linux, to CPUs in the paper's NUMA-zone-saturating order.
package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tscds/internal/affinity"
	"tscds/internal/core"
)

// Target is the data structure surface the harness drives.
type Target interface {
	Insert(th *core.Thread, key, val uint64) bool
	Delete(th *core.Thread, key uint64) bool
	Contains(th *core.Thread, key uint64) bool
	RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV
}

// Registrar hands out thread handles (implemented by the facade maps and
// by raw registries).
type Registrar interface {
	RegisterThread() (*core.Thread, error)
}

// Workload is the paper's U-RQ-C mix plus its key-space parameters.
type Workload struct {
	U, RQ, C int    // percentages; must sum to 100
	KeyRange uint64 // keys drawn from [0, KeyRange)
	RQLen    uint64 // range query span in keys
	// ZipfS skews key selection (0 = the paper's uniform distribution;
	// >1 = Zipfian with that s parameter — an extension for studying
	// hot-key contention on top of timestamp contention).
	ZipfS float64
}

// PaperWorkload returns the paper's parameters for a given mix.
func PaperWorkload(u, rq, c int) Workload {
	return Workload{U: u, RQ: rq, C: c, KeyRange: 1_000_000, RQLen: 100}
}

// Label formats the mix as in the paper ("10-10-80").
func (w Workload) Label() string { return fmt.Sprintf("%d-%d-%d", w.U, w.RQ, w.C) }

// Valid reports whether the mix sums to 100.
func (w Workload) Valid() bool {
	return w.U >= 0 && w.RQ >= 0 && w.C >= 0 && w.U+w.RQ+w.C == 100
}

// Options controls a measurement.
type Options struct {
	Threads  int
	Duration time.Duration
	Trials   int
	Pin      bool // pin workers to CPUs (paper policy)
	Seed     uint64
	// Labels, when non-empty, is applied to every worker goroutine as
	// runtime/pprof labels (e.g. tscds.technique); workers additionally
	// switch a tscds.op label between update/range-query/contains using
	// contexts prebuilt outside the measurement loop, so CPU profiles
	// attribute samples per operation class.
	Labels map[string]string
	// Sample, when non-nil, is invoked by each worker every sampleEvery
	// operations with the worker's thread ID — the hook the drivers use
	// for TSC health cross-checks. Nil costs one pointer test per op.
	Sample func(tid int)
}

// sampleEvery is how many operations pass between Options.Sample calls
// on one worker.
const sampleEvery = 64

// DefaultOptions mirrors the paper: five trials of three seconds. The
// drivers shorten these for quick runs.
func DefaultOptions(threads int) Options {
	return Options{Threads: threads, Duration: 3 * time.Second, Trials: 5, Pin: true, Seed: 1}
}

// Result summarizes one measurement.
type Result struct {
	Threads  int
	Trials   []float64 // Mops/s per trial
	Mean     float64   // Mops/s
	CV       float64   // coefficient of variation, percent
	OpSplit  [3]int64  // completed updates, range queries, contains
	Workload Workload
}

// Prefill inserts half the key range in uniformly random order, as in
// the paper's setup; balanced insert/delete mixes then keep the size
// stable. Random order matters beyond fidelity: the BSTs are unbalanced,
// so sorted insertion would degenerate them into linked lists.
func Prefill(t Target, r Registrar, keyRange uint64) error {
	th, err := r.RegisterThread()
	if err != nil {
		return err
	}
	defer th.Release()
	for _, k := range PrefillKeys(keyRange) {
		t.Insert(th, k, k)
	}
	return nil
}

// PrefillKeys returns a deterministic random half of [0, keyRange) in
// shuffled order.
func PrefillKeys(keyRange uint64) []uint64 {
	keys := make([]uint64, keyRange)
	for i := range keys {
		keys[i] = uint64(i)
	}
	r := rng{s: 0xC0FFEE123456789}
	for i := len(keys) - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys[:keyRange/2]
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// Run measures throughput of target under the workload.
func Run(target Target, reg Registrar, wl Workload, opts Options) (Result, error) {
	if !wl.Valid() {
		return Result{}, fmt.Errorf("bench: workload %s does not sum to 100", wl.Label())
	}
	if wl.KeyRange == 0 {
		return Result{}, fmt.Errorf("bench: workload %s has zero key range", wl.Label())
	}
	if opts.Trials <= 0 {
		opts.Trials = 1
	}
	res := Result{Threads: opts.Threads, Workload: wl}
	var pinner *affinity.Pinner
	if opts.Pin {
		pinner = affinity.NewPinner()
	}
	for trial := 0; trial < opts.Trials; trial++ {
		mops, split, err := runTrial(target, reg, wl, opts, pinner, trial)
		if err != nil {
			return Result{}, err
		}
		res.Trials = append(res.Trials, mops)
		for i := range split {
			res.OpSplit[i] += split[i]
		}
	}
	res.Mean, res.CV = meanCV(res.Trials)
	return res, nil
}

func runTrial(target Target, reg Registrar, wl Workload, opts Options,
	pinner *affinity.Pinner, trial int) (float64, [3]int64, error) {

	type counts struct {
		ops [3]int64
		_   [40]byte
	}
	perWorker := make([]counts, opts.Threads)
	var stop core.PaddedBool
	var start sync.WaitGroup
	var ready, done sync.WaitGroup
	start.Add(1)

	threads := make([]*core.Thread, opts.Threads)
	for i := 0; i < opts.Threads; i++ {
		th, err := reg.RegisterThread()
		if err != nil {
			return 0, [3]int64{}, err
		}
		threads[i] = th
	}

	for i := 0; i < opts.Threads; i++ {
		ready.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			if pinner != nil {
				unpin := pinner.Pin(i)
				defer unpin()
			}
			th := threads[i]
			// Prebuilt per-op-class label contexts: switching goroutine
			// labels is then a pointer store, cheap enough per operation.
			var opCtx [3]context.Context
			if opts.Labels != nil {
				pairs := make([]string, 0, 2*len(opts.Labels))
				for k, v := range opts.Labels {
					pairs = append(pairs, k, v)
				}
				base := pprof.WithLabels(context.Background(), pprof.Labels(pairs...))
				for j, op := range []string{"update", "range-query", "contains"} {
					opCtx[j] = pprof.WithLabels(base, pprof.Labels("tscds.op", op))
				}
				defer pprof.SetGoroutineLabels(context.Background())
			}
			r := rng{s: opts.Seed + uint64(i)*0x9E3779B97F4A7C15 + uint64(trial)*0x100000001B3 + 1}
			var zipf *rand.Zipf
			if wl.ZipfS > 0 {
				src := rand.New(rand.NewSource(int64(r.next())))
				zipf = rand.NewZipf(src, wl.ZipfS, 1, wl.KeyRange-1)
			}
			buf := make([]core.KV, 0, wl.RQLen+16)
			var n uint64
			ready.Done()
			start.Wait()
			for !stop.Load() {
				x := r.next()
				op := int(x % 100)
				key := (x >> 8) % wl.KeyRange
				if zipf != nil {
					key = zipf.Uint64()
				}
				switch {
				case op < wl.U:
					if opts.Labels != nil {
						pprof.SetGoroutineLabels(opCtx[0])
					}
					// Half inserts, half deletes, to keep size stable.
					if x&(1<<63) != 0 {
						target.Insert(th, key, key)
					} else {
						target.Delete(th, key)
					}
					perWorker[i].ops[0]++
				case op < wl.U+wl.RQ:
					if opts.Labels != nil {
						pprof.SetGoroutineLabels(opCtx[1])
					}
					lo := key
					hi := lo + wl.RQLen - 1
					buf = target.RangeQuery(th, lo, hi, buf[:0])
					perWorker[i].ops[1]++
				default:
					if opts.Labels != nil {
						pprof.SetGoroutineLabels(opCtx[2])
					}
					target.Contains(th, key)
					perWorker[i].ops[2]++
				}
				n++
				if opts.Sample != nil && n%sampleEvery == 0 {
					opts.Sample(th.ID)
				}
			}
		}(i)
	}
	ready.Wait()
	begin := time.Now()
	start.Done()
	time.Sleep(opts.Duration)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin).Seconds()
	for _, th := range threads {
		th.Release()
	}

	var split [3]int64
	var total int64
	for i := range perWorker {
		for j := 0; j < 3; j++ {
			split[j] += perWorker[i].ops[j]
			total += perWorker[i].ops[j]
		}
	}
	return float64(total) / elapsed / 1e6, split, nil
}

func meanCV(xs []float64) (mean, cv float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 || mean == 0 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(len(xs)-1)) / mean * 100
}

// Table renders results as an aligned text table, one row per thread
// count, one column per series.
func Table(title string, threads []int, series map[string][]Result) string {
	return AxisTable(title, "threads", threads, series)
}

// AxisTable is Table with a caller-chosen row axis — the shard-sweep
// figure rows by shard count at a fixed thread count, for example.
func AxisTable(title, axis string, rows []int, series map[string][]Result) string {
	var names []string
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%8s", axis)
	for _, n := range names {
		fmt.Fprintf(&b, " %18s", n)
	}
	b.WriteString("\n")
	for i, t := range rows {
		fmt.Fprintf(&b, "%8d", t)
		for _, n := range names {
			rs := series[n]
			if i < len(rs) {
				fmt.Fprintf(&b, " %12.2f Mops", rs[i].Mean)
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ParseThreads parses a comma-separated thread-count list ("1,2,4").
// An empty string yields powers of two up to the host CPU count (always
// including the CPU count itself) — the drivers' default sweep.
func ParseThreads(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		var out []int
		for n := 1; n <= runtime.NumCPU(); n *= 2 {
			out = append(out, n)
		}
		if out[len(out)-1] != runtime.NumCPU() {
			out = append(out, runtime.NumCPU())
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bench: bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

package bench

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"tscds/internal/core"
	"tscds/internal/lfbst"
)

type reg struct{ r *core.Registry }

func (r reg) RegisterThread() (*core.Thread, error) { return r.r.Register() }

func TestWorkloadValidation(t *testing.T) {
	if !PaperWorkload(10, 10, 80).Valid() {
		t.Fatal("paper workload invalid")
	}
	if (Workload{U: 50, RQ: 10, C: 10}).Valid() {
		t.Fatal("60%% mix accepted")
	}
	if got := PaperWorkload(2, 10, 88).Label(); got != "2-10-88" {
		t.Fatalf("label = %q", got)
	}
	if _, err := Run(nil, nil, Workload{U: 1, RQ: 1, C: 1}, Options{}); err == nil {
		t.Fatal("invalid workload accepted by Run")
	}
}

func TestZeroKeyRangeRejected(t *testing.T) {
	// A valid mix with KeyRange 0 used to divide by zero in the key draw.
	wl := Workload{U: 10, RQ: 10, C: 80}
	if _, err := Run(nil, nil, wl, Options{Threads: 1}); err == nil {
		t.Fatal("Run accepted zero key range")
	}
	r := core.NewRegistry(4)
	tr := lfbst.New(core.New(core.Logical), r)
	if _, err := MeasureLatency(tr, reg{r}, wl, time.Millisecond, 1); err == nil {
		t.Fatal("MeasureLatency accepted zero key range")
	}
}

func TestPrefillHalf(t *testing.T) {
	r := core.NewRegistry(4)
	tr := lfbst.New(core.New(core.Logical), r)
	if err := Prefill(tr, reg{r}, 1000); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(); got != 500 {
		t.Fatalf("prefill produced %d keys, want 500", got)
	}
}

func TestRunMeasuresAllOpClasses(t *testing.T) {
	r := core.NewRegistry(8)
	tr := lfbst.New(core.New(core.TSC), r)
	if err := Prefill(tr, reg{r}, 10_000); err != nil {
		t.Fatal(err)
	}
	wl := Workload{U: 20, RQ: 20, C: 60, KeyRange: 10_000, RQLen: 50}
	res, err := Run(tr, reg{r}, wl, Options{
		Threads: 2, Duration: 60 * time.Millisecond, Trials: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean <= 0 {
		t.Fatalf("mean = %v", res.Mean)
	}
	if len(res.Trials) != 2 {
		t.Fatalf("trials = %v", res.Trials)
	}
	total := res.OpSplit[0] + res.OpSplit[1] + res.OpSplit[2]
	if total == 0 {
		t.Fatal("no ops recorded")
	}
	for i, name := range []string{"updates", "rqs", "contains"} {
		if res.OpSplit[i] == 0 {
			t.Fatalf("no %s executed", name)
		}
	}
	// Mix roughly honored (within very loose bounds).
	fu := float64(res.OpSplit[0]) / float64(total)
	if fu < 0.1 || fu > 0.3 {
		t.Fatalf("update fraction = %.2f, want ~0.2", fu)
	}
}

func TestTableRendering(t *testing.T) {
	series := map[string][]Result{
		"Logical": {{Mean: 1.5}, {Mean: 2.5}},
		"RDTSCP":  {{Mean: 3.5}},
	}
	out := Table("Fig X", []int{1, 2}, series)
	for _, want := range []string{"Fig X", "threads", "Logical", "RDTSCP", "1.50", "3.50", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestZipfWorkloadSkewsKeys(t *testing.T) {
	r := core.NewRegistry(4)
	tr := lfbst.New(core.New(core.Logical), r)
	wl := Workload{U: 0, RQ: 0, C: 100, KeyRange: 1000, ZipfS: 1.5}
	res, err := Run(tr, reg{r}, wl, Options{Threads: 1, Duration: 30 * time.Millisecond, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OpSplit[2] == 0 {
		t.Fatal("no contains ops under zipf workload")
	}
	// Distribution check on the generator itself: low keys dominate.
	zr := rand.New(rand.NewSource(1))
	z := rand.NewZipf(zr, 1.5, 1, 999)
	low := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if z.Uint64() < 10 {
			low++
		}
	}
	if float64(low)/n < 0.5 {
		t.Fatalf("zipf(1.5): only %.1f%% of keys below 10; expected heavy skew", 100*float64(low)/n)
	}
}

func TestParseThreads(t *testing.T) {
	got, err := ParseThreads("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 8 {
		t.Fatalf("ParseThreads = %v, %v", got, err)
	}
	if _, err := ParseThreads("0"); err == nil {
		t.Fatal("zero accepted")
	}
	if _, err := ParseThreads("x"); err == nil {
		t.Fatal("garbage accepted")
	}
	def, err := ParseThreads("")
	if err != nil || len(def) == 0 || def[len(def)-1] != runtime.NumCPU() {
		t.Fatalf("default ParseThreads = %v, %v", def, err)
	}
	for i := 1; i < len(def); i++ {
		if def[i] <= def[i-1] {
			t.Fatalf("default thread list not increasing: %v", def)
		}
	}
}

func TestMeasureLatency(t *testing.T) {
	r := core.NewRegistry(4)
	tr := lfbst.New(core.New(core.TSC), r)
	if err := Prefill(tr, reg{r}, 5000); err != nil {
		t.Fatal(err)
	}
	wl := Workload{U: 30, RQ: 20, C: 50, KeyRange: 5000, RQLen: 50}
	res, err := MeasureLatency(tr, reg{r}, wl, 60*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Classes {
		if s.Count == 0 {
			t.Fatalf("class %d collected no samples", c)
		}
		if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
			t.Fatalf("class %d percentiles not ordered: %+v", c, s)
		}
		if s.Mean <= 0 {
			t.Fatalf("class %d mean %v", c, s.Mean)
		}
	}
	out := res.String()
	for _, want := range []string{"update", "range-query", "contains", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("latency table missing %q:\n%s", want, out)
		}
	}
	if _, err := MeasureLatency(tr, reg{r}, Workload{U: 1}, time.Millisecond, 1); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := summarize(nil); s.Count != 0 {
		t.Fatal("empty summarize nonzero")
	}
	s := summarize([]time.Duration{5 * time.Millisecond})
	if s.P50 != 5*time.Millisecond || s.Max != 5*time.Millisecond || s.Count != 1 {
		t.Fatalf("singleton summarize: %+v", s)
	}
}

func TestRunTimeline(t *testing.T) {
	r := core.NewRegistry(8)
	tr := lfbst.New(core.New(core.TSC), r)
	if err := Prefill(tr, reg{r}, 5000); err != nil {
		t.Fatal(err)
	}
	wl := Workload{U: 20, RQ: 10, C: 70, KeyRange: 5000, RQLen: 50}
	tl, err := RunTimeline(tr, reg{r}, wl, 2, 250*time.Millisecond, 50*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Samples) < 4 {
		t.Fatalf("samples = %v", tl.Samples)
	}
	min, mean, max := tl.Stability()
	if mean <= 0 || min > mean || mean > max {
		t.Fatalf("stability stats inconsistent: %v %v %v", min, mean, max)
	}
	out := tl.String()
	for _, want := range []string{"min/mean/max", "GC cycles", "t+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	if _, err := RunTimeline(tr, reg{r}, Workload{U: 5}, 1, time.Millisecond, time.Millisecond, 1); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

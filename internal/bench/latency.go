package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"tscds/internal/core"
)

// LatencyResult holds per-operation-class latency percentiles from a
// sampling run (an extension beyond the paper's throughput-only
// reporting — latency is where coarse timestamp labeling hurts even when
// throughput looks flat).
type LatencyResult struct {
	// Classes indexes: 0 updates, 1 range queries, 2 contains.
	Classes [3]LatencyStats
}

// LatencyStats summarizes one operation class.
type LatencyStats struct {
	Count         int
	P50, P95, P99 time.Duration
	Max           time.Duration
	Mean          time.Duration
}

// classNames labels LatencyResult.Classes.
var classNames = [3]string{"update", "range-query", "contains"}

// MeasureLatency runs the workload on a single sampling thread for the
// given duration (other threads can be driven separately to create
// contention) and returns latency percentiles per class.
func MeasureLatency(target Target, reg Registrar, wl Workload, duration time.Duration, seed uint64) (LatencyResult, error) {
	if !wl.Valid() {
		return LatencyResult{}, fmt.Errorf("bench: workload %s does not sum to 100", wl.Label())
	}
	if wl.KeyRange == 0 {
		return LatencyResult{}, fmt.Errorf("bench: workload %s has zero key range", wl.Label())
	}
	th, err := reg.RegisterThread()
	if err != nil {
		return LatencyResult{}, err
	}
	defer th.Release()
	r := rng{s: seed + 1}
	buf := make([]core.KV, 0, wl.RQLen+16)
	var samples [3][]time.Duration
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		x := r.next()
		op := int(x % 100)
		key := (x >> 8) % wl.KeyRange
		var class int
		begin := time.Now()
		switch {
		case op < wl.U:
			if x&(1<<63) != 0 {
				target.Insert(th, key, key)
			} else {
				target.Delete(th, key)
			}
			class = 0
		case op < wl.U+wl.RQ:
			buf = target.RangeQuery(th, key, key+wl.RQLen-1, buf[:0])
			class = 1
		default:
			target.Contains(th, key)
			class = 2
		}
		samples[class] = append(samples[class], time.Since(begin))
	}
	var res LatencyResult
	for c := range samples {
		res.Classes[c] = summarize(samples[c])
	}
	return res, nil
}

func summarize(xs []time.Duration) LatencyStats {
	if len(xs) == 0 {
		return LatencyStats{}
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	pct := func(p float64) time.Duration {
		idx := int(math.Ceil(p*float64(len(xs)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(xs) {
			idx = len(xs) - 1
		}
		return xs[idx]
	}
	return LatencyStats{
		Count: len(xs),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   xs[len(xs)-1],
		Mean:  sum / time.Duration(len(xs)),
	}
}

// String renders the result as an aligned table.
func (r LatencyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %10s %10s %10s\n",
		"class", "count", "mean", "p50", "p95", "p99", "max")
	for c, s := range r.Classes {
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %8d %10s %10s %10s %10s %10s\n",
			classNames[c], s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
	}
	return b.String()
}

package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"tscds/internal/core"
)

// Timeline is a per-interval throughput trace. Its purpose is Go-specific
// due diligence for this reproduction: the runtime's GC can dent
// fine-grained concurrent throughput in ways the paper's C++ baselines
// never see, and a flat average hides it. Sample dips correlated with
// GC cycles quantify the effect.
type Timeline struct {
	Interval time.Duration
	// Mops per interval, in order.
	Samples []float64
	// GCCycles is the number of collections during the run.
	GCCycles uint32
	// GCPauseTotal is the cumulative stop-the-world pause.
	GCPauseTotal time.Duration
}

// Stability returns min/mean/max over the samples (ignoring the first,
// which includes warmup).
func (tl Timeline) Stability() (min, mean, max float64) {
	xs := tl.Samples
	if len(xs) > 1 {
		xs = xs[1:]
	}
	if len(xs) == 0 {
		return 0, 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		mean += x
	}
	mean /= float64(len(xs))
	return min, mean, max
}

// String renders the timeline as a compact sparkline-style table.
func (tl Timeline) String() string {
	var b strings.Builder
	min, mean, max := tl.Stability()
	fmt.Fprintf(&b, "interval=%v samples=%d min/mean/max = %.2f/%.2f/%.2f Mops, GC cycles=%d pause=%v\n",
		tl.Interval, len(tl.Samples), min, mean, max, tl.GCCycles, tl.GCPauseTotal)
	for i, s := range tl.Samples {
		fmt.Fprintf(&b, "  t+%4dms %8.2f Mops\n", int(tl.Interval.Milliseconds())*i, s)
	}
	return b.String()
}

// RunTimeline drives the workload like Run but records throughput per
// interval along with GC activity.
func RunTimeline(target Target, reg Registrar, wl Workload, threads int,
	duration, interval time.Duration, seed uint64) (Timeline, error) {

	if !wl.Valid() {
		return Timeline{}, fmt.Errorf("bench: workload %s does not sum to 100", wl.Label())
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	counters := make([]core.PaddedUint64, threads)
	var stop core.PaddedBool
	var ready, done sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	ths := make([]*core.Thread, threads)
	for i := range ths {
		th, err := reg.RegisterThread()
		if err != nil {
			return Timeline{}, err
		}
		ths[i] = th
	}
	for i := 0; i < threads; i++ {
		ready.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			th := ths[i]
			r := rng{s: seed + uint64(i)*0x9E3779B97F4A7C15 + 1}
			buf := make([]core.KV, 0, wl.RQLen+16)
			ready.Done()
			start.Wait()
			for !stop.Load() {
				x := r.next()
				op := int(x % 100)
				key := (x >> 8) % wl.KeyRange
				switch {
				case op < wl.U:
					if x&(1<<63) != 0 {
						target.Insert(th, key, key)
					} else {
						target.Delete(th, key)
					}
				case op < wl.U+wl.RQ:
					buf = target.RangeQuery(th, key, key+wl.RQLen-1, buf[:0])
				default:
					target.Contains(th, key)
				}
				counters[i].Add(1)
			}
		}(i)
	}
	ready.Wait()
	start.Done()

	tl := Timeline{Interval: interval}
	prev := int64(0)
	steps := int(duration / interval)
	if steps < 1 {
		steps = 1
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for s := 0; s < steps; s++ {
		<-tick.C
		var total int64
		for i := range counters {
			total += int64(counters[i].Load())
		}
		tl.Samples = append(tl.Samples, float64(total-prev)/interval.Seconds()/1e6)
		prev = total
	}
	stop.Store(true)
	done.Wait()
	for _, th := range ths {
		th.Release()
	}
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	tl.GCCycles = memAfter.NumGC - memBefore.NumGC
	tl.GCPauseTotal = time.Duration(memAfter.PauseTotalNs - memBefore.PauseTotalNs)
	return tl, nil
}

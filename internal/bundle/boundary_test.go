package bundle

import "testing"

// Boundary tie-break regression: a hardware Source.Snapshot can return a
// value EQUAL to a concurrent update's label (unlike LogicalSource, whose
// pre-increment Snapshot makes later labels strictly newer). The pinned
// rule, asserted here so no future edit flips the inequality in PtrAtWalk:
// the newest entry labeled ts <= s — including ts == s exactly — is the
// link target at bound s; a tie linearizes the update before the query.
func TestPtrAtBoundaryTieBreak(t *testing.T) {
	n0, n5, n10 := new(int), new(int), new(int)
	b := New(n0) // Init labels 0
	b.Finalize(b.Prepare(n5), 5)
	b.Finalize(b.Prepare(n10), 10)

	cases := []struct {
		s    uint64
		want *int
	}{
		{0, n0},
		{4, n0},
		{5, n5}, // bound ties the label: entry included
		{6, n5},
		{9, n5},
		{10, n10}, // ties again at the newest entry
		{11, n10},
	}
	for _, c := range cases {
		got, ok := b.PtrAt(c.s)
		if !ok || got != c.want {
			t.Errorf("PtrAt(%d) = (%p,%v), want %p", c.s, got, ok, c.want)
		}
	}
}

// TestPtrAtHistoricalBounds pins the bundle walk at arbitrary PAST
// bounds, the contract time-travel reads are built on: the newest entry
// labeled <= s wins (ties included), and once truncation has dropped
// the entries a bound would need, the walk reports no-entry rather than
// a younger target. The facade turns that blind spot into a typed
// refusal by validating ts against the retention watermark before the
// walk; this test pins the raw behavior the refusal protects against.
func TestPtrAtHistoricalBounds(t *testing.T) {
	n0, n5, n10 := new(int), new(int), new(int)
	b := New(n0)
	b.Finalize(b.Prepare(n5), 5)
	b.Finalize(b.Prepare(n10), 10)

	if dropped := b.Truncate(5); dropped != 1 {
		t.Fatalf("Truncate(5) dropped %d entries, want 1", dropped)
	}
	cases := []struct {
		s      uint64
		want   *int
		wantOK bool
	}{
		{4, nil, false}, // below retained history: detectably gone
		{5, n5, true},   // exact surviving label: tied entry included
		{9, n5, true},
		{10, n10, true}, // tie at the newest
		{11, n10, true},
	}
	for _, c := range cases {
		got, ok := b.PtrAt(c.s)
		if got != c.want || ok != c.wantOK {
			t.Errorf("PtrAt(%d) = (%p,%v), want (%p,%v)", c.s, got, ok, c.want, c.wantOK)
		}
	}
}

// Truncate must keep the entry labeled exactly at the minimum active
// bound — it is the target a snapshot at that bound follows.
func TestTruncateBoundaryKeepsTiedEntry(t *testing.T) {
	n0, n5, n10 := new(int), new(int), new(int)
	b := New(n0)
	b.Finalize(b.Prepare(n5), 5)
	b.Finalize(b.Prepare(n10), 10)

	if dropped := b.Truncate(5); dropped != 1 {
		t.Fatalf("Truncate(5) dropped %d entries, want 1 (only the label-0 entry)", dropped)
	}
	if got, ok := b.PtrAt(5); !ok || got != n5 {
		t.Fatalf("after Truncate(5), PtrAt(5) = (%p,%v), want tied entry %p", got, ok, n5)
	}
	if n := b.Len(); n != 2 {
		t.Fatalf("entries after boundary truncate = %d, want 2", n)
	}
}

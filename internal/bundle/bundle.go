// Package bundle implements the bundled references of Nelson, Hassan and
// Palmieri ("Bundled references: an abstraction for highly-concurrent
// linearizable range queries", PPoPP 2021).
//
// A Bundle augments one link (e.g. a node's next pointer) of a lock-based
// structure with the link's timestamped history, newest first. An update
// that changes links while holding the structure's locks Prepares a
// pending entry in each affected bundle, obtains one timestamp — with a
// logical source this Advance is the fetch-and-add bottleneck the paper
// removes; with TSC it is a core-local read — and Finalizes the entries.
// Timestamp labeling is thus atomic only with the op's own lock scope
// (§IV calls this medium granularity), never with a global lock, which is
// why bundling benefits from hardware timestamps.
//
// A range query at snapshot bound s follows, in each bundle, the newest
// entry labeled <= s, thereby traversing the structure exactly as it was
// at s. Range queries block briefly on pending entries, matching the
// original design (bundling targets lock-based structures, so its range
// queries are blocking).
package bundle

import (
	"runtime"
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/pool"
)

// Entry is one moment of a link's history.
type Entry[T any] struct {
	ts   atomic.Uint64
	ptr  *T
	next atomic.Pointer[Entry[T]] // older entry
}

// TS returns the entry's label (core.Pending while in flight).
func (e *Entry[T]) TS() core.TS { return e.ts.Load() }

// Ptr returns the link target recorded by this entry.
func (e *Entry[T]) Ptr() *T { return e.ptr }

// Bundle is the timestamped history of one link.
type Bundle[T any] struct {
	head atomic.Pointer[Entry[T]]
}

// Init records the link's initial target with label 0, before the
// enclosing node is published.
func (b *Bundle[T]) Init(ptr *T) { b.InitIn(nil, -1, ptr) }

// InitIn is Init drawing the entry from p (Config.Alloc pooled/arena
// modes; nil p allocates through the GC). Entries from a pool may be
// recycled memory, so every field is reset before the entry becomes
// reachable.
//
// As with vCAS versions, entries detached by Truncate remain readable
// by snapshot readers holding direct pointers into the history, so the
// truncation path never feeds the pool; entry pooling buys arena
// batching and reuse of aborted (never-published) entries only.
func (b *Bundle[T]) InitIn(p *pool.Pool[Entry[T]], tid int, ptr *T) {
	e := p.Get(tid)
	e.ptr = ptr
	e.ts.Store(0)
	e.next.Store(nil)
	b.head.Store(e)
}

// New returns a bundle initialized to ptr.
func New[T any](ptr *T) *Bundle[T] {
	b := &Bundle[T]{}
	b.Init(ptr)
	return b
}

// InitPending seeds an unpublished node's bundle with a pending first
// entry, to be Finalized with the inserting operation's timestamp. Unlike
// Init (label 0), this lets snapshot readers detect that the node itself
// is newer than their snapshot — needed when a reader can land on a node
// through an un-timestamped index (the skip list's upper levels) rather
// than through a labeled edge.
func (b *Bundle[T]) InitPending(ptr *T) *Entry[T] { return b.InitPendingIn(nil, -1, ptr) }

// InitPendingIn is InitPending drawing the entry from p (nil p
// allocates through the GC).
func (b *Bundle[T]) InitPendingIn(p *pool.Pool[Entry[T]], tid int, ptr *T) *Entry[T] {
	e := p.Get(tid)
	e.ptr = ptr
	e.ts.Store(uint64(core.Pending))
	e.next.Store(nil)
	b.head.Store(e)
	return e
}

// Prepare pushes a pending entry for a new link target. The caller must
// hold the structure's locks covering this link, so at most one pending
// entry exists per bundle. The entry stays pending — blocking snapshot
// readers that reach it — until Finalize.
func (b *Bundle[T]) Prepare(ptr *T) *Entry[T] { return b.PrepareIn(nil, -1, ptr) }

// PrepareIn is Prepare drawing the entry from p (nil p allocates
// through the GC).
func (b *Bundle[T]) PrepareIn(p *pool.Pool[Entry[T]], tid int, ptr *T) *Entry[T] {
	e := p.Get(tid)
	e.ptr = ptr
	e.ts.Store(core.Pending)
	e.next.Store(b.head.Load())
	b.head.Store(e)
	return e
}

// Finalize labels a prepared entry, linearizing the update that created
// it. All entries prepared by one operation receive the same timestamp.
func (b *Bundle[T]) Finalize(e *Entry[T], ts core.TS) {
	e.ts.Store(ts)
}

// Abort removes a prepared entry after a failed validation, restoring
// the bundle head. Only valid while the caller still holds the locks it
// held at Prepare and no later Prepare has occurred.
func (b *Bundle[T]) Abort(e *Entry[T]) {
	b.head.Store(e.next.Load())
}

// PtrAt returns the link target at snapshot bound s: the target of the
// newest entry labeled <= s. It spins across pending entries (the
// labeling window is a few instructions inside the updater's critical
// section). The boolean is false when the link has no entry that old —
// impossible for callers that reached this bundle through an edge
// labeled <= s, since Init labels with 0.
func (b *Bundle[T]) PtrAt(s core.TS) (*T, bool) {
	ptr, ok, _, _ := b.PtrAtWalk(s)
	return ptr, ok
}

// PtrAtWalk is PtrAt returning additionally the number of history
// entries examined (>= 1 whenever the chain is non-empty; entries past
// the first measure history walked) and the number of spins on pending
// entries — the dereference-depth and labeling-wait costs the tracing
// layer aggregates as the bundle-deref and pending-wait phases.
func (b *Bundle[T]) PtrAtWalk(s core.TS) (ptr *T, ok bool, depth, spins int) {
	e := b.head.Load()
	for e != nil {
		depth++
		ts := e.ts.Load()
		if ts == core.Pending {
			runtime.Gosched()
			spins++
			ts = e.ts.Load()
			if ts == core.Pending {
				depth--
				continue // re-read until the in-flight updater labels
			}
		}
		if ts <= s {
			return e.ptr, true, depth, spins
		}
		e = e.next.Load()
	}
	return nil, false, depth, spins
}

// Head exposes the newest entry (tests and invariant checks).
func (b *Bundle[T]) Head() *Entry[T] { return b.head.Load() }

// Truncate drops history below the newest entry labeled at or before
// minRQ, the minimum active range-query timestamp; no current or future
// snapshot reads anything older. Writers call it opportunistically while
// holding the link's locks. It returns the number of entries dropped
// (counted on the detached tail, so the cost is proportional to what was
// reclaimed; concurrent truncators may attribute the same tail to both —
// callers use the count for metrics, not correctness).
func (b *Bundle[T]) Truncate(minRQ core.TS) int {
	e := b.head.Load()
	if e == nil || e.ts.Load() == core.Pending {
		return 0
	}
	for e.ts.Load() > minRQ {
		next := e.next.Load()
		if next == nil {
			return 0
		}
		e = next
	}
	tail := e.next.Load()
	e.next.Store(nil)
	n := 0
	for ; tail != nil; tail = tail.next.Load() {
		n++
	}
	return n
}

// Len counts reachable entries (tests, heap-boundedness assertions).
func (b *Bundle[T]) Len() int {
	n := 0
	for e := b.head.Load(); e != nil; e = e.next.Load() {
		n++
	}
	return n
}

package bundle

import (
	"sync"
	"testing"
	"testing/quick"

	"tscds/internal/core"
)

type node struct{ key uint64 }

func TestInitAndPtrAt(t *testing.T) {
	n := &node{key: 1}
	b := New(n)
	got, ok := b.PtrAt(0)
	if !ok || got != n {
		t.Fatalf("PtrAt(0) = (%v,%v), want initial node", got, ok)
	}
	got, ok = b.PtrAt(100)
	if !ok || got != n {
		t.Fatal("PtrAt(100) should still find the initial entry")
	}
}

func TestPrepareFinalizeHistory(t *testing.T) {
	src := core.New(core.Logical)
	n0, n1, n2 := &node{0}, &node{1}, &node{2}
	b := New(n0)

	s0 := src.Snapshot()
	e := b.Prepare(n1)
	b.Finalize(e, src.Advance())
	s1 := src.Snapshot()
	e = b.Prepare(n2)
	b.Finalize(e, src.Advance())
	s2 := src.Snapshot()

	for _, c := range []struct {
		s    core.TS
		want *node
	}{{s0, n0}, {s1, n1}, {s2, n2}} {
		got, ok := b.PtrAt(c.s)
		if !ok || got != c.want {
			t.Fatalf("PtrAt(%d) = %v, want key %d", c.s, got, c.want.key)
		}
	}
}

func TestAbortRestoresHead(t *testing.T) {
	n0, n1 := &node{0}, &node{1}
	b := New(n0)
	e := b.Prepare(n1)
	b.Abort(e)
	if got, _ := b.PtrAt(core.MaxTS); got != n0 {
		t.Fatalf("after abort PtrAt = %v, want original", got)
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d after abort, want 1", b.Len())
	}
}

// A pending entry must block snapshot readers until finalized, and then
// be visible exactly per its label.
func TestPendingBlocksThenResolves(t *testing.T) {
	src := core.New(core.Logical)
	n0, n1 := &node{0}, &node{1}
	b := New(n0)
	s := src.Snapshot()
	e := b.Prepare(n1)
	done := make(chan *node)
	go func() {
		got, _ := b.PtrAt(core.MaxTS) // newest view: must wait for label
		done <- got
	}()
	ts := src.Advance()
	b.Finalize(e, ts)
	if got := <-done; got != n1 {
		t.Fatalf("reader resolved to %v, want new node", got)
	}
	// The old snapshot still sees the old target.
	if got, _ := b.PtrAt(s); got != n0 {
		t.Fatal("old snapshot observed the new entry")
	}
}

// Entry labels must be non-increasing along the history.
func TestHistoryMonotone(t *testing.T) {
	for _, kind := range []core.Kind{core.Logical, core.TSC} {
		src := core.New(kind)
		b := New(&node{0})
		var mu sync.Mutex // stands in for the structure's link lock
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					mu.Lock()
					e := b.Prepare(&node{uint64(g*10000 + i)})
					b.Finalize(e, src.Advance())
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		prev := core.Pending
		for e := b.Head(); e != nil; e = e.next.Load() {
			ts := e.TS()
			if ts == core.Pending {
				t.Fatal("pending entry after all updates finished")
			}
			if ts > prev {
				t.Fatalf("%v: history not monotone: %d above %d", kind, prev, ts)
			}
			prev = ts
		}
	}
}

func TestTruncatePreservesOldestActiveSnapshot(t *testing.T) {
	src := core.New(core.Logical)
	b := New(&node{0})
	var snaps []core.TS
	var wants []*node
	for i := uint64(1); i <= 20; i++ {
		snaps = append(snaps, src.Snapshot())
		w, _ := b.PtrAt(snaps[len(snaps)-1])
		wants = append(wants, w)
		e := b.Prepare(&node{i})
		b.Finalize(e, src.Advance())
	}
	before := b.Len()
	b.Truncate(snaps[12])
	if b.Len() >= before {
		t.Fatalf("truncate did not shrink: %d -> %d", before, b.Len())
	}
	for i := 12; i < len(snaps); i++ {
		got, ok := b.PtrAt(snaps[i])
		if !ok || got != wants[i] {
			t.Fatalf("snapshot %d broken after truncate", i)
		}
	}
}

func TestTruncateNoActiveRQ(t *testing.T) {
	src := core.New(core.Logical)
	b := New(&node{0})
	for i := uint64(1); i <= 10; i++ {
		e := b.Prepare(&node{i})
		b.Finalize(e, src.Advance())
	}
	b.Truncate(core.Pending)
	if n := b.Len(); n != 1 {
		t.Fatalf("len = %d after full truncate, want 1", n)
	}
}

// Property: for any sequence of updates, PtrAt(s) returns the target
// finalized by the last update whose label is <= s.
func TestPtrAtProperty(t *testing.T) {
	f := func(nVals []uint64) bool {
		if len(nVals) > 40 {
			nVals = nVals[:40]
		}
		src := core.New(core.Logical)
		init := &node{^uint64(0)}
		b := New(init)
		type rec struct {
			ts  core.TS
			ptr *node
		}
		hist := []rec{{0, init}}
		for _, v := range nVals {
			n := &node{v}
			e := b.Prepare(n)
			ts := src.Advance()
			b.Finalize(e, ts)
			hist = append(hist, rec{ts, n})
		}
		// Check at every label boundary and in between.
		for i, r := range hist {
			got, ok := b.PtrAt(r.ts)
			if !ok || got != r.ptr {
				return false
			}
			if i+1 < len(hist) {
				got, ok = b.PtrAt(hist[i+1].ts - 1)
				if !ok || got != r.ptr {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrepareFinalizeLogical(b *testing.B) {
	src := core.New(core.Logical)
	bd := New(&node{0})
	n := &node{1}
	for i := 0; i < b.N; i++ {
		e := bd.Prepare(n)
		bd.Finalize(e, src.Advance())
		if i%64 == 0 {
			bd.Truncate(core.Pending)
		}
	}
}

func BenchmarkPrepareFinalizeTSC(b *testing.B) {
	src := core.New(core.TSC)
	bd := New(&node{0})
	n := &node{1}
	for i := 0; i < b.N; i++ {
		e := bd.Prepare(n)
		bd.Finalize(e, src.Advance())
		if i%64 == 0 {
			bd.Truncate(core.Pending)
		}
	}
}

func TestInitPendingBlocksUntilFinalized(t *testing.T) {
	src := core.New(core.Logical)
	succ := &node{9}
	b := &Bundle[node]{}
	e := b.InitPending(succ)
	done := make(chan *node)
	go func() {
		got, _ := b.PtrAt(core.MaxTS)
		done <- got
	}()
	ts := src.Advance()
	b.Finalize(e, ts)
	if got := <-done; got != succ {
		t.Fatalf("reader resolved %v", got)
	}
	// A snapshot older than the node's insertion sees no entry at all —
	// the signal skip-list range queries use to reject an index landing.
	if _, ok := b.PtrAt(ts - 1); ok {
		t.Fatal("pre-insertion snapshot found an entry")
	}
}

func TestPtrAtOnEmptyHistory(t *testing.T) {
	b := &Bundle[node]{}
	if _, ok := b.PtrAt(5); ok {
		t.Fatal("empty bundle returned an entry")
	}
}

func TestTruncateOnPendingHeadIsNoop(t *testing.T) {
	b := New(&node{1})
	e := b.Prepare(&node{2})
	before := b.Len()
	b.Truncate(core.Pending)
	if b.Len() != before {
		t.Fatal("truncate touched a bundle with a pending head")
	}
	b.Finalize(e, 7)
}

func TestConcurrentTruncateAndReaders(t *testing.T) {
	src := core.New(core.Logical)
	b := New(&node{0})
	reg := core.NewRegistry(4)
	stop := make(chan struct{})
	var wg, readers sync.WaitGroup
	// Reader repeatedly takes announced snapshots and reads at them.
	readers.Add(1)
	go func() {
		defer readers.Done()
		th := reg.MustRegister()
		defer th.Release()
		for {
			select {
			case <-stop:
				return
			default:
			}
			th.BeginRQ()
			s := src.Peek()
			th.AnnounceRQ(s)
			if _, ok := b.PtrAt(s); !ok {
				t.Error("announced snapshot lost its entry to truncation")
				th.DoneRQ()
				return
			}
			th.DoneRQ()
		}
	}()
	var mu sync.Mutex
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				mu.Lock()
				e := b.Prepare(&node{uint64(i)})
				b.Finalize(e, src.Advance())
				if i%16 == 0 {
					b.Truncate(reg.MinActiveRQ())
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
}

package citrus

import (
	"sync"
	"sync/atomic"

	"tscds/internal/bundle"
	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
	"tscds/internal/rcu"
)

// bnode is a Citrus node whose child links each carry a bundle: the raw
// pointer serves searches and updates, the bundle serves snapshot
// traversals. Both change together under the node's lock.
type bnode struct {
	key, val uint64
	mu       sync.Mutex
	marked   bool
	child    [2]atomic.Pointer[bnode]
	bnd      [2]bundle.Bundle[bnode]
}

func newBnode(key, val uint64) *bnode {
	n := &bnode{key: key, val: val}
	n.bnd[0].Init(nil)
	n.bnd[1].Init(nil)
	return n
}

// setChild updates a link and records the change in its bundle, labeled
// with one Source.Advance — with a logical source this is the
// fetch-and-add each update pays; with TSC it is a core-local read, the
// difference Figure 3's Bundle vs Bundle-RDTSCP series measures. tid is
// the updating thread's slot and only routes pool allocations.
func (t *BundleTree) setChild(n *bnode, dir int, target *bnode, tid int) {
	if t.tr != nil {
		// The Prepare..Finalize window is bundling's labeling phase: the
		// span readers can block on (pending-entry spins).
		mark := t.tr.Now()
		e := n.bnd[dir].PrepareIn(t.ep, tid, target)
		n.child[dir].Store(target)
		n.bnd[dir].Finalize(e, t.src.Advance())
		t.tr.SharedSpan(trace.PhaseLabel, mark)
		return
	}
	e := n.bnd[dir].PrepareIn(t.ep, tid, target)
	n.child[dir].Store(target)
	n.bnd[dir].Finalize(e, t.src.Advance())
}

// BundleTree is the Citrus tree augmented with bundled references.
type BundleTree struct {
	src  core.Source
	reg  *core.Registry
	rcu  *rcu.RCU
	gc   *obs.GC
	tr   *trace.Recorder
	np   *pool.Pool[bnode]
	ep   *pool.Pool[bundle.Entry[bnode]]
	rb   *core.ReadBound
	root *bnode
}

// NewBundle builds an empty tree over the given source and registry.
func NewBundle(src core.Source, reg *core.Registry) *BundleTree {
	return &BundleTree{
		src:  src,
		reg:  reg,
		rcu:  rcu.New(reg.Cap()),
		root: newBnode(sentinelKey, 0),
	}
}

// Source returns the tree's timestamp source.
func (t *BundleTree) Source() core.Source { return t.src }

// SetGC wires reclamation reporting to g (nil disables it). Call before
// the tree sees concurrent traffic.
func (t *BundleTree) SetGC(g *obs.GC) { t.gc = g }

// SetTrace wires the flight recorder (nil disables it): label spans on
// updates, validation retries, range-query timestamp/traverse spans,
// bundle-dereference depth and pending-entry waits. Call before the tree
// sees concurrent traffic.
func (t *BundleTree) SetTrace(tr *trace.Recorder) { t.tr = tr }

// SetReadBound routes bundle-entry truncation through a retention
// watermark (time-travel reads). Call before the tree sees traffic.
func (t *BundleTree) SetReadBound(rb *core.ReadBound) { t.rb = rb }

// SetAlloc selects the allocation mode for nodes and bundle entries (see
// Config.Alloc). Every node is published under locks after validation
// and truncated entry tails stay reachable to snapshot readers, so
// nothing ever flows back to the pools — they supply arena chunking and
// batching only. Call before the tree sees concurrent traffic.
func (t *BundleTree) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[bnode](t.reg.Cap(), mode, ps)
	t.ep = pool.New[bundle.Entry[bnode]](t.reg.Cap(), mode, ps)
}

// newBnodeIn is newBnode drawing the node and its two seed entries from
// the pools, with the child links seeded directly.
func (t *BundleTree) newBnodeIn(tid int, key, val uint64, left, right *bnode) *bnode {
	if t.np == nil {
		n := newBnode(key, val)
		if left != nil || right != nil {
			n.child[0].Store(left)
			n.child[1].Store(right)
			n.bnd[0].Init(left)
			n.bnd[1].Init(right)
		}
		return n
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.marked = false
	n.child[0].Store(left)
	n.child[1].Store(right)
	n.bnd[0].InitIn(t.ep, tid, left)
	n.bnd[1].InitIn(t.ep, tid, right)
	return n
}

func (t *BundleTree) noteRetries(th *core.Thread, retries uint64) {
	if t.tr == nil {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
}

func (t *BundleTree) traverse(tid int, key uint64) (prev, curr *bnode) {
	t.rcu.ReadLock(tid)
	prev = t.root
	curr = prev.child[dirOf(key, prev.key)].Load()
	for curr != nil && curr.key != key {
		prev = curr
		curr = curr.child[dirOf(key, curr.key)].Load()
	}
	t.rcu.ReadUnlock(tid)
	return prev, curr
}

// Contains reports whether key is present.
func (t *BundleTree) Contains(th *core.Thread, key uint64) bool {
	_, curr := t.traverse(th.ID, key)
	return curr != nil
}

// Get returns the value stored at key.
func (t *BundleTree) Get(th *core.Thread, key uint64) (uint64, bool) {
	_, curr := t.traverse(th.ID, key)
	if curr == nil {
		return 0, false
	}
	return curr.val, true
}

func (t *BundleTree) validateLink(prev *bnode, dir int, curr *bnode) bool {
	return !prev.marked && prev.child[dir].Load() == curr
}

// Insert adds key with val; it returns false if already present.
func (t *BundleTree) Insert(th *core.Thread, key, val uint64) bool {
	if key > MaxKey {
		return false
	}
	var retries uint64
	for {
		prev, curr := t.traverse(th.ID, key)
		if curr != nil {
			t.noteRetries(th, retries)
			return false
		}
		dir := dirOf(key, prev.key)
		prev.mu.Lock()
		if !t.validateLink(prev, dir, nil) {
			prev.mu.Unlock()
			retries++
			continue
		}
		am := t.tr.Now()
		n := t.newBnodeIn(th.ID, key, val, nil, nil)
		t.tr.Span(th.ID, trace.PhaseAlloc, am)
		t.setChild(prev, dir, n, th.ID)
		t.maybeTruncate(prev, key)
		prev.mu.Unlock()
		t.noteRetries(th, retries)
		return true
	}
}

// Delete removes key; it returns false if absent.
func (t *BundleTree) Delete(th *core.Thread, key uint64) bool {
	if key > MaxKey {
		return false
	}
	var retries uint64
	for {
		prev, curr := t.traverse(th.ID, key)
		if curr == nil {
			t.noteRetries(th, retries)
			return false
		}
		dir := dirOf(key, prev.key)
		prev.mu.Lock()
		curr.mu.Lock()
		if curr.marked || !t.validateLink(prev, dir, curr) {
			curr.mu.Unlock()
			prev.mu.Unlock()
			retries++
			continue
		}
		left := curr.child[0].Load()
		right := curr.child[1].Load()
		if left == nil || right == nil {
			repl := left
			if repl == nil {
				repl = right
			}
			curr.marked = true
			t.setChild(prev, dir, repl, th.ID)
			t.maybeTruncate(prev, key)
			curr.mu.Unlock()
			prev.mu.Unlock()
			t.noteRetries(th, retries)
			return true
		}
		if t.deleteTwoChildren(th.ID, prev, dir, curr, left, right) {
			curr.mu.Unlock()
			prev.mu.Unlock()
			t.noteRetries(th, retries)
			return true
		}
		curr.mu.Unlock()
		prev.mu.Unlock()
		retries++
	}
}

func (t *BundleTree) deleteTwoChildren(tid int, prev *bnode, dir int, curr, left, right *bnode) bool {
	succPrev := curr
	succ := right
	for {
		next := succ.child[0].Load()
		if next == nil {
			break
		}
		succPrev = succ
		succ = next
	}
	if succPrev != curr {
		succPrev.mu.Lock()
	}
	succ.mu.Lock()
	valid := !succ.marked && !succPrev.marked && succ.child[0].Load() == nil
	if succPrev == curr {
		valid = valid && succPrev.child[1].Load() == succ
	} else {
		valid = valid && succPrev.child[0].Load() == succ
	}
	if !valid {
		succ.mu.Unlock()
		if succPrev != curr {
			succPrev.mu.Unlock()
		}
		return false
	}

	n := t.newBnodeIn(tid, succ.key, succ.val, left, right)
	n.mu.Lock()

	curr.marked = true
	t.setChild(prev, dir, n, tid) // key removed; successor's key duplicated until unlink

	t.rcu.Synchronize()

	succ.marked = true
	succRight := succ.child[1].Load()
	if succPrev == curr {
		t.setChild(n, 1, succRight, tid)
	} else {
		t.setChild(succPrev, 0, succRight, tid)
	}
	t.maybeTruncate(prev, succ.key)

	n.mu.Unlock()
	succ.mu.Unlock()
	if succPrev != curr {
		succPrev.mu.Unlock()
	}
	return true
}

func (t *BundleTree) maybeTruncate(n *bnode, key uint64) {
	if key%64 != 0 {
		return
	}
	min := core.PruneBoundOf(t.rb, t.reg)
	dropped := n.bnd[0].Truncate(min) + n.bnd[1].Truncate(min)
	if t.gc != nil && dropped > 0 {
		t.gc.BundlePruned.Add(uint64(dropped))
	}
}

// RangeQuery appends every pair with lo <= key <= hi as of one
// linearizable snapshot. Bundling's range queries only READ the
// timestamp (updates advance it), so with a logical source a read-only
// workload shows no benefit from TSC — Figure 3a's flat pair of Bundle
// curves — while update-heavy mixes do.
func (t *BundleTree) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		var mark uint64
		if tr != nil {
			mark = tr.Now()
		}
		s := t.src.Peek()
		if tr != nil {
			tr.Span(th.ID, trace.PhaseTimestamp, mark)
		}
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.src, s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		if tr != nil {
			tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		}
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s; the reservation
// keeps bundle entries labeled at or below s from being truncated before
// the announcement lands here.
func (t *BundleTree) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if hi > MaxKey {
		hi = MaxKey
	}
	tr := t.tr
	var mark uint64
	if tr != nil {
		mark = tr.Now()
	}
	th.AnnounceRQ(s)
	base := len(out)
	var w bwalk
	out = t.collect(t.childAt(t.root, 0, s, &w), lo, hi, s, base, out, &w)
	if tr != nil {
		tr.Span(th.ID, trace.PhaseTraverse, mark)
		tr.Count(th.ID, trace.PhaseBundleDeref, w.depth)
		tr.Count(th.ID, trace.PhasePendingWait, w.spins)
	}
	th.DoneRQ()
	return out
}

// bwalk accumulates one range query's bundle-walk costs.
type bwalk struct {
	depth, spins uint64
}

func (t *BundleTree) childAt(n *bnode, dir int, s core.TS, w *bwalk) *bnode {
	c, _, depth, spins := n.bnd[dir].PtrAtWalk(s)
	w.depth += uint64(depth)
	w.spins += uint64(spins)
	return c
}

func (t *BundleTree) collect(n *bnode, lo, hi uint64, s core.TS, base int, out []core.KV, w *bwalk) []core.KV {
	if n == nil {
		return out
	}
	if lo < n.key {
		out = t.collect(t.childAt(n, 0, s, w), lo, hi, s, base, out, w)
	}
	if n.key >= lo && n.key <= hi {
		if len(out) == base || out[len(out)-1].Key != n.key {
			out = append(out, core.KV{Key: n.key, Val: n.val})
		}
	}
	if hi > n.key {
		out = t.collect(t.childAt(n, 1, s, w), lo, hi, s, base, out, w)
	}
	return out
}

// Len counts present keys; quiescent use only (tests).
func (t *BundleTree) Len() int {
	n := 0
	var walk func(*bnode)
	walk = func(x *bnode) {
		if x == nil {
			return
		}
		n++
		walk(x.child[0].Load())
		walk(x.child[1].Load())
	}
	walk(t.root.child[0].Load())
	return n
}

// Package citrus implements the Citrus tree of Arbel and Attiya
// ("Concurrent updates with RCU: search tree as an example", PODC 2014):
// an internal binary search tree with per-node locks whose searches run
// lock-free inside RCU read-side sections. Deleting a node with two
// children replaces it with a locked copy of its successor, waits out an
// RCU grace period so in-flight searches keep their path, and only then
// unlinks the successor.
//
// The package provides the three range-query augmentations the paper
// evaluates on Citrus (Figures 3 and 4):
//
//	VcasTree   — child pointers are vCAS objects (range queries advance
//	             the timestamp; updates label versions).
//	BundleTree — each child link carries a bundle (updates advance the
//	             timestamp; range queries only read it).
//	EBRTree    — nodes carry insertion/deletion labels assigned under
//	             EBR-RQ's global readers-writer lock (or DCSS), and
//	             range queries additionally scan the EBR limbo lists.
//
// Two-child deletion briefly exposes the successor's key both at its old
// node and at the replacement copy; snapshot traversals deduplicate by
// key, which is sound because keys are unique in the abstract state.
//
// A note on elemental-vs-bulk linearization in the Bundle variant:
// contains consults the raw pointers while range queries consult bundle
// labels, and the two are fixed a few instructions apart inside the
// update's critical section. A contains that observes the raw write in
// that window orders against concurrent range queries with the usual
// in-flight-operation freedom; vCAS avoids even that window because its
// reads label versions before returning (the property §IV credits to
// helping), which is one more reason the paper finds vCAS the cleanest
// fit for hardware timestamps.
package citrus

// Keys are uint64 with the top value reserved for the root sentinel.
const (
	sentinelKey = ^uint64(0)
	// MaxKey is the largest insertable key.
	MaxKey = ^uint64(0) - 1
)

// dirOf returns which child of a node with key nodeKey leads to key.
func dirOf(key, nodeKey uint64) int {
	if key < nodeKey {
		return 0
	}
	return 1
}

package citrus

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tscds/internal/core"
	"tscds/internal/ebrrq"
)

// mapLike is the common surface of the three variants.
type mapLike interface {
	Insert(th *core.Thread, key, val uint64) bool
	Delete(th *core.Thread, key uint64) bool
	Contains(th *core.Thread, key uint64) bool
	Get(th *core.Thread, key uint64) (uint64, bool)
	RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV
	Len() int
}

type variant struct {
	name string
	make func(kind core.Kind, threads int) (mapLike, *core.Registry)
}

func variants(t *testing.T) []variant {
	t.Helper()
	return []variant{
		{"vcas", func(k core.Kind, n int) (mapLike, *core.Registry) {
			reg := core.NewRegistry(n)
			return NewVcas(core.New(k), reg), reg
		}},
		{"bundle", func(k core.Kind, n int) (mapLike, *core.Registry) {
			reg := core.NewRegistry(n)
			return NewBundle(core.New(k), reg), reg
		}},
		{"ebr-lock", func(k core.Kind, n int) (mapLike, *core.Registry) {
			reg := core.NewRegistry(n)
			tr, err := NewEBR(core.New(k), reg, ebrrq.LockBased)
			if err != nil {
				t.Fatal(err)
			}
			return tr, reg
		}},
		{"ebr-lockfree", func(k core.Kind, n int) (mapLike, *core.Registry) {
			reg := core.NewRegistry(n)
			// Lock-free EBR-RQ only exists for logical sources.
			tr, err := NewEBR(core.New(core.Logical), reg, ebrrq.LockFree)
			if err != nil {
				t.Fatal(err)
			}
			return tr, reg
		}},
	}
}

func TestEBRLockFreeRejectsTSC(t *testing.T) {
	reg := core.NewRegistry(1)
	if _, err := NewEBR(core.New(core.TSC), reg, ebrrq.LockFree); err == nil {
		t.Fatal("lock-free EBR-RQ accepted a hardware source")
	}
}

func TestBasicOps(t *testing.T) {
	for _, v := range variants(t) {
		t.Run(v.name, func(t *testing.T) {
			m, reg := v.make(core.Logical, 2)
			th := reg.MustRegister()
			if m.Contains(th, 7) || m.Delete(th, 7) {
				t.Fatal("empty tree misbehaved")
			}
			if !m.Insert(th, 7, 70) || m.Insert(th, 7, 71) {
				t.Fatal("insert semantics broken")
			}
			if got, ok := m.Get(th, 7); !ok || got != 70 {
				t.Fatalf("Get = (%d,%v)", got, ok)
			}
			if !m.Delete(th, 7) || m.Contains(th, 7) || m.Len() != 0 {
				t.Fatal("delete semantics broken")
			}
		})
	}
}

func TestSentinelRejected(t *testing.T) {
	for _, v := range variants(t) {
		m, reg := v.make(core.Logical, 1)
		th := reg.MustRegister()
		if m.Insert(th, MaxKey+1, 0) {
			t.Fatalf("%s: sentinel key insertable", v.name)
		}
		if !m.Insert(th, MaxKey, 0) {
			t.Fatalf("%s: MaxKey not insertable", v.name)
		}
	}
}

// Exercise every delete shape: leaf, one child, two children (successor
// adjacent and distant).
func TestDeleteShapes(t *testing.T) {
	for _, v := range variants(t) {
		t.Run(v.name, func(t *testing.T) {
			m, reg := v.make(core.TSC, 2)
			th := reg.MustRegister()
			// Build:        50
			//            30      70
			//          20  40  60  90
			//                     80
			for _, k := range []uint64{50, 30, 70, 20, 40, 60, 90, 80} {
				m.Insert(th, k, k)
			}
			if !m.Delete(th, 20) { // leaf
				t.Fatal("leaf delete failed")
			}
			if !m.Delete(th, 90) { // one child (80)
				t.Fatal("one-child delete failed")
			}
			if !m.Delete(th, 70) { // two children, successor 80 distant
				t.Fatal("two-children delete failed")
			}
			if !m.Delete(th, 50) { // two children, successor 60 via right child
				t.Fatal("root-ish two-children delete failed")
			}
			want := []uint64{30, 40, 60, 80}
			got := m.RangeQuery(th, 0, MaxKey, nil)
			keys := make([]uint64, len(got))
			for i, kv := range got {
				keys[i] = kv.Key
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			if len(keys) != len(want) {
				t.Fatalf("post-delete keys = %v, want %v", keys, want)
			}
			for i := range want {
				if keys[i] != want[i] {
					t.Fatalf("post-delete keys = %v, want %v", keys, want)
				}
				if !m.Contains(th, want[i]) {
					t.Fatalf("Contains(%d) false", want[i])
				}
			}
		})
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, v := range variants(t) {
		t.Run(v.name, func(t *testing.T) {
			m, reg := v.make(core.TSC, 2)
			th := reg.MustRegister()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 15000; i++ {
				k := uint64(rng.Intn(300))
				switch rng.Intn(4) {
				case 0, 1:
					_, exists := model[k]
					if got := m.Insert(th, k, k*3); got == exists {
						t.Fatalf("op %d: Insert(%d)=%v, exists=%v", i, k, got, exists)
					}
					if !exists {
						model[k] = k * 3
					}
				case 2:
					_, exists := model[k]
					if got := m.Delete(th, k); got != exists {
						t.Fatalf("op %d: Delete(%d)=%v, exists=%v", i, k, got, exists)
					}
					delete(model, k)
				default:
					_, exists := model[k]
					if got := m.Contains(th, k); got != exists {
						t.Fatalf("op %d: Contains(%d)=%v, want %v", i, k, got, exists)
					}
				}
			}
			if m.Len() != len(model) {
				t.Fatalf("Len=%d model=%d", m.Len(), len(model))
			}
			got := m.RangeQuery(th, 0, MaxKey, nil)
			if len(got) != len(model) {
				t.Fatalf("range len=%d model=%d", len(got), len(model))
			}
			for _, kv := range got {
				if mv, ok := model[kv.Key]; !ok || mv != kv.Val {
					t.Fatalf("kv %v vs model (%d,%v)", kv, mv, ok)
				}
			}
		})
	}
}

func TestConcurrentStripedOps(t *testing.T) {
	for _, v := range variants(t) {
		t.Run(v.name, func(t *testing.T) {
			m, reg := v.make(core.TSC, 8)
			const gs = 4
			const per = 800
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := reg.MustRegister()
					defer th.Release()
					base := uint64(g * 100_000)
					for i := uint64(0); i < per; i++ {
						if !m.Insert(th, base+i, i) {
							t.Errorf("insert %d failed", base+i)
							return
						}
					}
					for i := uint64(0); i < per; i += 2 {
						if !m.Delete(th, base+i) {
							t.Errorf("delete %d failed", base+i)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if n := m.Len(); n != gs*per/2 {
				t.Fatalf("Len=%d want %d", n, gs*per/2)
			}
		})
	}
}

// Random contended mix across overlapping keys, then validate against
// successful-op accounting.
func TestConcurrentContendedAccounting(t *testing.T) {
	for _, v := range variants(t) {
		t.Run(v.name, func(t *testing.T) {
			m, reg := v.make(core.TSC, 8)
			const gs = 4
			var ins, del [gs]int
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := reg.MustRegister()
					defer th.Release()
					rng := rand.New(rand.NewSource(int64(g * 13)))
					for i := 0; i < 1500; i++ {
						k := uint64(rng.Intn(40))
						if rng.Intn(2) == 0 {
							if m.Insert(th, k, k) {
								ins[g]++
							}
						} else if m.Delete(th, k) {
							del[g]++
						}
					}
				}(g)
			}
			wg.Wait()
			totalIns, totalDel := 0, 0
			for g := 0; g < gs; g++ {
				totalIns += ins[g]
				totalDel += del[g]
			}
			if got := m.Len(); got != totalIns-totalDel {
				t.Fatalf("Len=%d, inserts-deletes=%d", got, totalIns-totalDel)
			}
		})
	}
}

// Linearizability probe: ascending single-writer inserts must make every
// snapshot a prefix.
func TestSnapshotPrefixDuringInserts(t *testing.T) {
	for _, v := range variants(t) {
		for _, kind := range []core.Kind{core.Logical, core.TSC} {
			t.Run(v.name+"/"+kind.String(), func(t *testing.T) {
				m, reg := v.make(kind, 4)
				const n = 3000
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := reg.MustRegister()
					defer th.Release()
					for k := uint64(1); k <= n; k++ {
						m.Insert(th, k, k)
					}
				}()
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := reg.MustRegister()
					defer th.Release()
					for {
						got := m.RangeQuery(th, 1, n, nil)
						keys := make([]uint64, len(got))
						for i, kv := range got {
							keys[i] = kv.Key
						}
						sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
						for i, k := range keys {
							if k != uint64(i+1) {
								t.Errorf("snapshot gap at %d: key %d", i, k)
								return
							}
						}
						if len(keys) == n {
							return
						}
					}
				}()
				wg.Wait()
			})
		}
	}
}

// Deletion-side probe: with two-child deletes happening (random tree,
// random deletes), snapshots restricted to a stable stripe must stay
// complete: keys 1..n inserted with even keys never touched; deleting
// odd keys randomly must never make an even key vanish from a snapshot.
func TestSnapshotStableStripeUnderDeletes(t *testing.T) {
	for _, v := range variants(t) {
		t.Run(v.name, func(t *testing.T) {
			m, reg := v.make(core.TSC, 4)
			const n = 2000
			th0 := reg.MustRegister()
			perm := rand.New(rand.NewSource(3)).Perm(n)
			for _, i := range perm {
				m.Insert(th0, uint64(i+1), uint64(i+1))
			}
			th0.Release()
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				rng := rand.New(rand.NewSource(11))
				for _, i := range rng.Perm(n) {
					k := uint64(i + 1)
					if k%2 == 1 {
						m.Delete(th, k)
					}
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for round := 0; round < 60; round++ {
					got := m.RangeQuery(th, 1, n, nil)
					evens := map[uint64]bool{}
					for _, kv := range got {
						if kv.Key%2 == 0 {
							if evens[kv.Key] {
								t.Errorf("duplicate even key %d in snapshot", kv.Key)
								return
							}
							evens[kv.Key] = true
						}
					}
					if len(evens) != n/2 {
						t.Errorf("round %d: snapshot holds %d even keys, want %d", round, len(evens), n/2)
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}

// Range snapshots never contain duplicate keys even while two-child
// deletes relocate successors.
func TestNoDuplicateKeysUnderRelocation(t *testing.T) {
	for _, v := range variants(t) {
		t.Run(v.name, func(t *testing.T) {
			m, reg := v.make(core.TSC, 4)
			th0 := reg.MustRegister()
			const n = 300
			for k := uint64(1); k <= n; k++ {
				m.Insert(th0, k, k)
			}
			th0.Release()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				rng := rand.New(rand.NewSource(5))
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := uint64(rng.Intn(n) + 1)
					// Churn: delete (often a two-child node) and reinsert.
					if m.Delete(th, k) {
						m.Insert(th, k, k)
					}
				}
			}()
			th := reg.MustRegister()
			for round := 0; round < 150; round++ {
				got := m.RangeQuery(th, 1, n, nil)
				seen := map[uint64]bool{}
				for _, kv := range got {
					if seen[kv.Key] {
						t.Fatalf("duplicate key %d in snapshot", kv.Key)
					}
					seen[kv.Key] = true
				}
			}
			th.Release()
			close(stop)
			wg.Wait()
		})
	}
}

// EBR-specific: limbo lists must not grow without bound when no range
// queries are active.
func TestEBRLimboBounded(t *testing.T) {
	reg := core.NewRegistry(2)
	tr, err := NewEBR(core.New(core.Logical), reg, ebrrq.LockBased)
	if err != nil {
		t.Fatal(err)
	}
	th := reg.MustRegister()
	for i := 0; i < 20000; i++ {
		k := uint64(i % 50)
		tr.Insert(th, k, k)
		tr.Delete(th, k)
	}
	if n := tr.LimboLen(); n > 5000 {
		t.Fatalf("limbo grew unbounded: %d nodes", n)
	}
}

package citrus

import (
	"sync"
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/ebrrq"
	"tscds/internal/epoch"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
	"tscds/internal/rcu"
)

// enode is a Citrus node carrying EBR-RQ insertion/deletion labels.
type enode struct {
	key, val     uint64
	mu           sync.Mutex
	marked       bool
	child        [2]atomic.Pointer[enode]
	itime, dtime ebrrq.Label
}

func newEnode(key, val uint64) *enode {
	n := &enode{key: key, val: val}
	n.itime.Init()
	n.dtime.Init()
	return n
}

// EBRTree is the Citrus tree augmented with EBR-RQ (Figure 4). Every
// label assignment goes through the ebrrq.Provider: in the lock-based
// variant updates share-lock the global readers-writer lock around
// (read timestamp, write label) while range queries take it exclusively
// — the coarse-grained labeling that, per §IV, caps what TSC can
// deliver. Deleted nodes are retired to EBR limbo lists *before* being
// unlinked, so a range query always finds a deleted-after-its-snapshot
// node either in the tree or in limbo.
type EBRTree struct {
	src      core.Source
	provider *ebrrq.Provider
	reg      *core.Registry
	rcu      *rcu.RCU
	em       *epoch.Manager[*enode]
	tr       *trace.Recorder
	np       *pool.Pool[enode] // nil in GC mode
	root     *enode
}

// NewEBR builds an empty tree. variant selects lock-based or lock-free
// labeling; the lock-free variant requires an addressable (logical)
// source and otherwise returns ebrrq.ErrRequiresAddress — the paper's
// "TSC cannot be used at all here" case.
func NewEBR(src core.Source, reg *core.Registry, variant ebrrq.Variant) (*EBRTree, error) {
	var provider *ebrrq.Provider
	if variant == ebrrq.LockFree {
		p, err := ebrrq.NewLockFree(src)
		if err != nil {
			return nil, err
		}
		provider = p
	} else {
		provider = ebrrq.NewLockBased(src)
	}
	t := &EBRTree{
		src:      src,
		provider: provider,
		reg:      reg,
		rcu:      rcu.New(reg.Cap()),
		root:     newEnode(sentinelKey, 0),
	}
	t.em = epoch.NewManager[*enode](reg.Cap(),
		func(n *enode, min core.TS) bool { return n.dtime.Get() >= min },
		reg.MinActiveRQ)
	return t, nil
}

// Source returns the tree's timestamp source.
func (t *EBRTree) Source() core.Source { return t.src }

// SetGC wires limbo-list reporting to g (nil disables it). Call before
// the tree sees concurrent traffic.
func (t *EBRTree) SetGC(g *obs.GC) { t.em.SetGC(g) }

// SetAlloc switches node allocation to the pooled/arena facade and
// recycles pruned limbo nodes back into it. Citrus retires each node
// exactly once (the marked flag flips under the node's lock before the
// only Retire it will ever see), so unlike the lock-free BST no limbo
// reference count is needed. Call before the tree sees traffic.
func (t *EBRTree) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[enode](t.reg.Cap(), mode, ps)
	if t.np != nil {
		t.em.SetRecycle(func(n *enode, tid int) { t.np.Put(tid, n) })
	}
}

// newNode acquires and fully re-initializes a node. marked=false and
// fresh labels are the load-bearing resets: a recycled marked=true
// would make every validation against the node fail forever, and stale
// labels would corrupt snapshot visibility.
func (t *EBRTree) newNode(tid int, key, val uint64) *enode {
	if t.np == nil {
		return newEnode(key, val)
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.marked = false
	n.child[0].Store(nil)
	n.child[1].Store(nil)
	n.itime.Init()
	n.dtime.Init()
	return n
}

// SetTrace wires the flight recorder (nil disables it) through the tree,
// its timestamp provider (lock-wait/label spans) and its epoch manager
// (pin/advance stalls). Call before the tree sees concurrent traffic.
func (t *EBRTree) SetTrace(tr *trace.Recorder) {
	t.tr = tr
	t.provider.SetTrace(tr)
	t.em.SetTrace(tr)
}

// SetReadBound routes the epoch pruner's minimum-bound through a
// retention watermark: with a non-zero window, limbo nodes whose
// deletion timestamps are inside the window survive pruning (and
// DrainAll) even with no range query in flight. A zero window keeps
// classic EBR-RQ behavior. EBR-RQ retains no per-key version history,
// so this extends limbo lifetimes only; it does not enable time-travel
// reads on this technique. Call before the tree sees traffic.
func (t *EBRTree) SetReadBound(rb *core.ReadBound) {
	if rb == nil || rb.Window() == 0 {
		return
	}
	reg := t.reg
	t.em.SetMinRQ(func() core.TS { return rb.PruneBound(reg) })
}

func (t *EBRTree) noteRetries(th *core.Thread, retries uint64) {
	if t.tr == nil {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
}

// Provider exposes the timestamp provider (tests).
func (t *EBRTree) Provider() *ebrrq.Provider { return t.provider }

// LimboLen reports retained limbo nodes (tests).
func (t *EBRTree) LimboLen() int { return t.em.LimboLen() }

// Drain eagerly advances the epoch and prunes every limbo list.
// Quiescent use only, like Len.
func (t *EBRTree) Drain() { t.em.DrainAll() }

func (t *EBRTree) traverse(tid int, key uint64) (prev, curr *enode) {
	t.rcu.ReadLock(tid)
	prev = t.root
	curr = prev.child[dirOf(key, prev.key)].Load()
	for curr != nil && curr.key != key {
		prev = curr
		curr = curr.child[dirOf(key, curr.key)].Load()
	}
	t.rcu.ReadUnlock(tid)
	return prev, curr
}

// Contains reports whether key is present.
func (t *EBRTree) Contains(th *core.Thread, key uint64) bool {
	t.em.Pin(th.ID)
	_, curr := t.traverse(th.ID, key)
	t.em.Unpin(th.ID)
	return curr != nil
}

// Get returns the value stored at key.
func (t *EBRTree) Get(th *core.Thread, key uint64) (uint64, bool) {
	t.em.Pin(th.ID)
	_, curr := t.traverse(th.ID, key)
	t.em.Unpin(th.ID)
	if curr == nil {
		return 0, false
	}
	return curr.val, true
}

func validateELink(prev *enode, dir int, curr *enode) bool {
	return !prev.marked && prev.child[dir].Load() == curr
}

// Insert adds key with val; it returns false if already present.
func (t *EBRTree) Insert(th *core.Thread, key, val uint64) bool {
	if key > MaxKey {
		return false
	}
	t.em.Pin(th.ID)
	defer t.em.Unpin(th.ID)
	var retries uint64
	for {
		prev, curr := t.traverse(th.ID, key)
		if curr != nil {
			t.noteRetries(th, retries)
			return false
		}
		dir := dirOf(key, prev.key)
		prev.mu.Lock()
		if !validateELink(prev, dir, nil) {
			prev.mu.Unlock()
			retries++
			continue
		}
		amark := t.tr.Now()
		n := t.newNode(th.ID, key, val)
		t.tr.Span(th.ID, trace.PhaseAlloc, amark)
		prev.child[dir].Store(n)
		t.provider.Label(&n.itime) // linearization: (read ts, label) atomic
		prev.mu.Unlock()
		t.noteRetries(th, retries)
		return true
	}
}

// Delete removes key; it returns false if absent.
func (t *EBRTree) Delete(th *core.Thread, key uint64) bool {
	if key > MaxKey {
		return false
	}
	t.em.Pin(th.ID)
	defer t.em.Unpin(th.ID)
	var retries uint64
	for {
		prev, curr := t.traverse(th.ID, key)
		if curr == nil {
			t.noteRetries(th, retries)
			return false
		}
		dir := dirOf(key, prev.key)
		prev.mu.Lock()
		curr.mu.Lock()
		if curr.marked || !validateELink(prev, dir, curr) {
			curr.mu.Unlock()
			prev.mu.Unlock()
			retries++
			continue
		}
		left := curr.child[0].Load()
		right := curr.child[1].Load()
		if left == nil || right == nil {
			repl := left
			if repl == nil {
				repl = right
			}
			t.provider.Label(&curr.dtime) // linearization of the delete
			curr.marked = true
			t.em.Retire(th.ID, curr) // limbo before unlink: never invisible
			prev.child[dir].Store(repl)
			curr.mu.Unlock()
			prev.mu.Unlock()
			t.noteRetries(th, retries)
			return true
		}
		if t.deleteTwoChildren(th, prev, dir, curr, left, right) {
			curr.mu.Unlock()
			prev.mu.Unlock()
			t.noteRetries(th, retries)
			return true
		}
		curr.mu.Unlock()
		prev.mu.Unlock()
		retries++
	}
}

func (t *EBRTree) deleteTwoChildren(th *core.Thread, prev *enode, dir int, curr, left, right *enode) bool {
	succPrev := curr
	succ := right
	for {
		next := succ.child[0].Load()
		if next == nil {
			break
		}
		succPrev = succ
		succ = next
	}
	if succPrev != curr {
		succPrev.mu.Lock()
	}
	succ.mu.Lock()
	valid := !succ.marked && !succPrev.marked && succ.child[0].Load() == nil
	if succPrev == curr {
		valid = valid && succPrev.child[1].Load() == succ
	} else {
		valid = valid && succPrev.child[0].Load() == succ
	}
	if !valid {
		succ.mu.Unlock()
		if succPrev != curr {
			succPrev.mu.Unlock()
		}
		return false
	}

	n := t.newNode(th.ID, succ.key, succ.val)
	n.child[0].Store(left)
	n.child[1].Store(right)
	n.mu.Lock()

	curr.marked = true
	prev.child[dir].Store(n)
	// Label the copy before the original successor's deletion label so
	// the successor's key is never invisible: snapshots in the overlap
	// window see both and deduplicate.
	t.provider.Label(&n.itime)
	t.provider.Label(&curr.dtime)
	t.em.Retire(th.ID, curr)

	t.rcu.Synchronize()

	succ.marked = true
	t.provider.Label(&succ.dtime)
	t.em.Retire(th.ID, succ)
	succRight := succ.child[1].Load()
	if succPrev == curr {
		n.child[1].Store(succRight)
	} else {
		succPrev.child[0].Store(succRight)
	}

	n.mu.Unlock()
	succ.mu.Unlock()
	if succPrev != curr {
		succPrev.mu.Unlock()
	}
	return true
}

// RangeQuery appends every pair with lo <= key <= hi as of one
// linearizable snapshot: nodes inserted at or before the bound and not
// deleted at or before it, found in the live tree or — for nodes removed
// during the traversal — in the EBR limbo lists.
func (t *EBRTree) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		var mark uint64
		if tr != nil {
			mark = tr.Now()
		}
		s := t.provider.Snapshot()
		if tr != nil {
			// Includes the exclusive acquisition of the provider's RW lock in
			// the lock-based variant; the wait alone also lands in the shared
			// lock-wait phase.
			tr.Span(th.ID, trace.PhaseTimestamp, mark)
		}
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.provider.Source(), s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		if tr != nil {
			tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		}
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s, and — for the
// lock-based variant — must have obtained s while holding this tree's
// Provider RQLock, so every in-flight (read, label) pair on this shard
// settled at or below s. The reservation keeps limbo nodes with
// deletion labels at or below s scannable until the announcement lands.
func (t *EBRTree) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if hi > MaxKey {
		hi = MaxKey
	}
	t.em.Pin(th.ID)
	tr := t.tr
	var mark uint64
	if tr != nil {
		mark = tr.Now()
	}
	th.AnnounceRQ(s)

	acc := make(map[uint64]uint64)
	t.collect(t.root.child[0].Load(), lo, hi, s, acc)
	if tr != nil {
		tr.Span(th.ID, trace.PhaseTraverse, mark)
		mark = tr.Now()
	}
	t.em.ForEachRetired(func(n *enode) bool {
		if n.key >= lo && n.key <= hi && ebrrq.VisibleAt(n.itime.Get(), n.dtime.Get(), s) {
			acc[n.key] = n.val
		}
		return true
	})
	if tr != nil {
		tr.Span(th.ID, trace.PhaseLimboScan, mark)
	}

	t.em.Unpin(th.ID)
	th.DoneRQ()
	for k, v := range acc {
		out = append(out, core.KV{Key: k, Val: v})
	}
	return out
}

func (t *EBRTree) collect(n *enode, lo, hi uint64, s core.TS, acc map[uint64]uint64) {
	if n == nil {
		return
	}
	if lo < n.key {
		t.collect(n.child[0].Load(), lo, hi, s, acc)
	}
	if n.key >= lo && n.key <= hi && ebrrq.VisibleAt(n.itime.Get(), n.dtime.Get(), s) {
		acc[n.key] = n.val
	}
	if hi > n.key {
		t.collect(n.child[1].Load(), lo, hi, s, acc)
	}
}

// Len counts present keys; quiescent use only (tests).
func (t *EBRTree) Len() int {
	n := 0
	var walk func(*enode)
	walk = func(x *enode) {
		if x == nil {
			return
		}
		n++
		walk(x.child[0].Load())
		walk(x.child[1].Load())
	}
	walk(t.root.child[0].Load())
	return n
}

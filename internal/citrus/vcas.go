package citrus

import (
	"sync"

	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
	"tscds/internal/rcu"
	"tscds/internal/vcas"
)

// vnode is a Citrus node whose child pointers are vCAS objects. Key and
// value are immutable; marked is set under the node's lock and never
// cleared.
type vnode struct {
	key, val uint64
	mu       sync.Mutex
	marked   bool
	child    [2]vcas.Object[*vnode]
}

func newVnode(key, val uint64) *vnode {
	n := &vnode{key: key, val: val}
	n.child[0].Init(nil)
	n.child[1].Init(nil)
	return n
}

// VcasTree is the Citrus tree augmented with vCAS range queries.
type VcasTree struct {
	src  core.Source
	reg  *core.Registry
	rcu  *rcu.RCU
	gc   *obs.GC
	tr   *trace.Recorder
	np   *pool.Pool[vnode]
	vp   *pool.Pool[vcas.Version[*vnode]]
	rb   *core.ReadBound
	root *vnode
}

// NewVcas builds an empty tree over the given source and registry.
func NewVcas(src core.Source, reg *core.Registry) *VcasTree {
	return &VcasTree{
		src:  src,
		reg:  reg,
		rcu:  rcu.New(reg.Cap()),
		root: newVnode(sentinelKey, 0),
	}
}

// Source returns the tree's timestamp source.
func (t *VcasTree) Source() core.Source { return t.src }

// SetGC wires reclamation reporting to g (nil disables it). Call before
// the tree sees concurrent traffic.
func (t *VcasTree) SetGC(g *obs.GC) { t.gc = g }

// SetTrace wires the flight recorder (nil disables it): validation-retry
// counts on updates, range-query timestamp/traverse spans and
// version-walk lengths. Call before the tree sees concurrent traffic.
func (t *VcasTree) SetTrace(tr *trace.Recorder) { t.tr = tr }

// SetReadBound routes version-chain truncation through a retention
// watermark (time-travel reads). Call before the tree sees traffic.
func (t *VcasTree) SetReadBound(rb *core.ReadBound) { t.rb = rb }

// SetAlloc selects the allocation mode for nodes and vCAS versions (see
// Config.Alloc). Every node this tree creates is published (creation
// happens under locks after validation), and published memory stays
// reachable to snapshot readers, so nothing ever flows back to the
// pools — they supply arena chunking and batching only. Call before the
// tree sees concurrent traffic.
func (t *VcasTree) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[vnode](t.reg.Cap(), mode, ps)
	t.vp = pool.New[vcas.Version[*vnode]](t.reg.Cap(), mode, ps)
}

// newVnodeIn is newVnode drawing the node and its two seed versions from
// the pools, with the children seeded directly (newVnode seeds nil and
// deleteTwoChildren re-Inits, wasting two versions on the pooled path).
func (t *VcasTree) newVnodeIn(tid int, key, val uint64, left, right *vnode) *vnode {
	if t.np == nil {
		n := newVnode(key, val)
		if left != nil || right != nil {
			n.child[0].Init(left)
			n.child[1].Init(right)
		}
		return n
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.marked = false
	n.child[0].InitIn(t.vp, tid, left)
	n.child[1].InitIn(t.vp, tid, right)
	return n
}

func (t *VcasTree) noteRetries(th *core.Thread, retries uint64) {
	if t.tr == nil {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
}

// traverse returns (prev, curr) where curr.key == key, or curr == nil
// with prev the would-be parent. Runs inside an RCU read section.
func (t *VcasTree) traverse(tid int, key uint64) (prev, curr *vnode) {
	t.rcu.ReadLock(tid)
	prev = t.root
	curr = prev.child[dirOf(key, prev.key)].Read(t.src)
	for curr != nil && curr.key != key {
		prev = curr
		curr = curr.child[dirOf(key, curr.key)].Read(t.src)
	}
	t.rcu.ReadUnlock(tid)
	return prev, curr
}

// Contains reports whether key is present.
func (t *VcasTree) Contains(th *core.Thread, key uint64) bool {
	_, curr := t.traverse(th.ID, key)
	return curr != nil
}

// Get returns the value stored at key.
func (t *VcasTree) Get(th *core.Thread, key uint64) (uint64, bool) {
	_, curr := t.traverse(th.ID, key)
	if curr == nil {
		return 0, false
	}
	return curr.val, true
}

// validateLink re-checks, under prev's lock, that the traversal result
// still describes the tree.
func (t *VcasTree) validateLink(prev *vnode, dir int, curr *vnode) bool {
	return !prev.marked && prev.child[dir].Read(t.src) == curr
}

// Insert adds key with val; it returns false if already present.
func (t *VcasTree) Insert(th *core.Thread, key, val uint64) bool {
	if key > MaxKey {
		return false
	}
	var retries uint64
	for {
		prev, curr := t.traverse(th.ID, key)
		if curr != nil {
			t.noteRetries(th, retries)
			return false
		}
		dir := dirOf(key, prev.key)
		prev.mu.Lock()
		if !t.validateLink(prev, dir, nil) {
			prev.mu.Unlock()
			retries++
			continue
		}
		am := t.tr.Now()
		n := t.newVnodeIn(th.ID, key, val, nil, nil)
		t.tr.Span(th.ID, trace.PhaseAlloc, am)
		prev.child[dir].WriteIn(t.src, t.vp, th.ID, n)
		t.maybeTruncate(prev, key)
		prev.mu.Unlock()
		t.noteRetries(th, retries)
		return true
	}
}

// Delete removes key; it returns false if absent.
func (t *VcasTree) Delete(th *core.Thread, key uint64) bool {
	if key > MaxKey {
		return false
	}
	var retries uint64
	for {
		prev, curr := t.traverse(th.ID, key)
		if curr == nil {
			t.noteRetries(th, retries)
			return false
		}
		dir := dirOf(key, prev.key)
		prev.mu.Lock()
		curr.mu.Lock()
		if curr.marked || !t.validateLink(prev, dir, curr) {
			curr.mu.Unlock()
			prev.mu.Unlock()
			retries++
			continue
		}
		left := curr.child[0].Read(t.src)
		right := curr.child[1].Read(t.src)
		if left == nil || right == nil {
			// At most one child: splice it up.
			repl := left
			if repl == nil {
				repl = right
			}
			curr.marked = true
			prev.child[dir].WriteIn(t.src, t.vp, th.ID, repl)
			t.maybeTruncate(prev, key)
			curr.mu.Unlock()
			prev.mu.Unlock()
			t.noteRetries(th, retries)
			return true
		}
		if t.deleteTwoChildren(th.ID, prev, dir, curr, left, right) {
			curr.mu.Unlock()
			prev.mu.Unlock()
			t.noteRetries(th, retries)
			return true
		}
		curr.mu.Unlock()
		prev.mu.Unlock()
		retries++
	}
}

// deleteTwoChildren performs Citrus's successor relocation. Caller holds
// prev and curr locks; returns false to signal a full retry.
func (t *VcasTree) deleteTwoChildren(tid int, prev *vnode, dir int, curr, left, right *vnode) bool {
	// Find the successor (leftmost node of the right subtree) and its
	// parent while holding curr's lock, so the subtree cannot be
	// relocated away — but its internals may still change, hence the
	// validation after locking.
	succPrev := curr
	succ := right
	for {
		next := succ.child[0].Read(t.src)
		if next == nil {
			break
		}
		succPrev = succ
		succ = next
	}
	if succPrev != curr {
		succPrev.mu.Lock()
	}
	succ.mu.Lock()
	valid := !succ.marked && !succPrev.marked &&
		succ.child[0].Read(t.src) == nil
	if succPrev == curr {
		valid = valid && succPrev.child[1].Read(t.src) == succ
	} else {
		valid = valid && succPrev.child[0].Read(t.src) == succ
	}
	if !valid {
		succ.mu.Unlock()
		if succPrev != curr {
			succPrev.mu.Unlock()
		}
		return false
	}

	n := t.newVnodeIn(tid, succ.key, succ.val, left, right)
	n.mu.Lock() // published locked so no writer touches it before we finish

	curr.marked = true
	prev.child[dir].WriteIn(t.src, t.vp, tid, n)

	// Wait out readers that may be en route to succ through curr.
	t.rcu.Synchronize()

	succ.marked = true
	succRight := succ.child[1].Read(t.src)
	if succPrev == curr {
		n.child[1].WriteIn(t.src, t.vp, tid, succRight)
	} else {
		succPrev.child[0].WriteIn(t.src, t.vp, tid, succRight)
	}
	t.maybeTruncate(prev, succ.key)

	n.mu.Unlock()
	succ.mu.Unlock()
	if succPrev != curr {
		succPrev.mu.Unlock()
	}
	return true
}

func (t *VcasTree) maybeTruncate(n *vnode, key uint64) {
	if key%64 != 0 {
		return
	}
	min := core.PruneBoundOf(t.rb, t.reg)
	dropped := n.child[0].Truncate(min) + n.child[1].Truncate(min)
	if t.gc != nil && dropped > 0 {
		t.gc.VersionsPruned.Add(uint64(dropped))
	}
}

// RangeQuery appends every pair with lo <= key <= hi as of one
// linearizable snapshot. vCAS range queries advance the timestamp
// (Source.Snapshot) — the fetch-and-add that dominates read-heavy
// workloads in Figure 3 until TSC removes it.
func (t *VcasTree) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		var mark uint64
		if tr != nil {
			mark = tr.Now()
		}
		s := t.src.Snapshot()
		if tr != nil {
			tr.Span(th.ID, trace.PhaseTimestamp, mark)
		}
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.src, s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		if tr != nil {
			tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		}
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s; the reservation
// keeps versions labeled at or below s from being truncated before the
// announcement lands here.
func (t *VcasTree) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if hi > MaxKey {
		hi = MaxKey
	}
	tr := t.tr
	var mark uint64
	if tr != nil {
		mark = tr.Now()
	}
	th.AnnounceRQ(s)
	base := len(out)
	var walk uint64
	out = t.collect(t.childAt(t.root, 0, s, &walk), lo, hi, s, base, out, &walk)
	if tr != nil {
		tr.Span(th.ID, trace.PhaseTraverse, mark)
		tr.Count(th.ID, trace.PhaseVersionWalk, walk)
	}
	th.DoneRQ()
	return out
}

// childAt reads a routing edge as of snapshot bound s, accumulating
// version-chain hops into walk.
func (t *VcasTree) childAt(n *vnode, dir int, s core.TS, walk *uint64) *vnode {
	c, _, hops := n.child[dir].ReadVersionWalk(t.src, s)
	*walk += uint64(hops)
	return c
}

// collect walks the snapshot in order, deduplicating the equal adjacent
// keys that a concurrent two-child delete can momentarily expose (the
// in-order walk of a BST is sorted, so duplicates are always adjacent).
func (t *VcasTree) collect(n *vnode, lo, hi uint64, s core.TS, base int, out []core.KV, walk *uint64) []core.KV {
	if n == nil {
		return out
	}
	if lo < n.key {
		out = t.collect(t.childAt(n, 0, s, walk), lo, hi, s, base, out, walk)
	}
	if n.key >= lo && n.key <= hi {
		if len(out) == base || out[len(out)-1].Key != n.key {
			out = append(out, core.KV{Key: n.key, Val: n.val})
		}
	}
	if hi > n.key {
		out = t.collect(t.childAt(n, 1, s, walk), lo, hi, s, base, out, walk)
	}
	return out
}

// Len counts present keys; quiescent use only (tests).
func (t *VcasTree) Len() int {
	n := 0
	var walk func(*vnode)
	walk = func(x *vnode) {
		if x == nil {
			return
		}
		n++
		walk(x.child[0].Read(t.src))
		walk(x.child[1].Read(t.src))
	}
	walk(t.root.child[0].Read(t.src))
	return n
}

package core

import (
	"sync"
	"sync/atomic"
	"time"

	"tscds/internal/tsc"
)

// Timestamp generation encoding. Every TS produced by an AdaptiveSource
// carries a source generation in its top GenBits bits and the source's
// reading in the low bits:
//
//	TS = generation<<GenShift | payload
//
// The generation increments on every source switch, so any value from a
// later generation numerically dominates every value from an earlier
// one — ordinary uint64 comparison keeps working across a switch with
// no algorithm changes. Generation parity encodes the mode: even
// generations read the hardware counter, odd generations the shared
// logical counter, so the hot path needs no separate mode word.
const (
	// GenBits is the width of the generation field.
	GenBits = 8
	// GenShift is the payload width / the generation's bit offset.
	GenShift = 64 - GenBits
	// MaxGen is the largest encodable generation. It is odd, so a source
	// that somehow exhausts all generations saturates in logical mode —
	// the always-correct fallback.
	MaxGen = 1<<GenBits - 1
	// PayloadMask extracts the payload (reading) bits.
	PayloadMask = 1<<GenShift - 1
)

// GenOf extracts the generation field from a timestamp. For timestamps
// from non-generational sources this is 0 until the counter exceeds
// 2^56 (≈ 267 days of 3GHz TSC ticks), which the process lifetimes here
// never reach.
func GenOf(ts TS) uint64 { return ts >> GenShift }

// PayloadOf extracts the reading bits from a timestamp.
func PayloadOf(ts TS) TS { return ts & PayloadMask }

// Generational is implemented by sources whose timestamps carry a
// source generation (AdaptiveSource). Range queries that cache a
// snapshot bound use it to detect a source switch under their feet.
type Generational interface {
	Source
	// Generation returns the current generation. It changes only on a
	// source switch and is monotonically increasing.
	Generation() uint64
}

// retryObserver is implemented by wrappers that want to count snapshot
// retries (instrumentedSource); SnapshotValid notifies it on mismatch.
type retryObserver interface{ NoteSnapshotRetry() }

// SnapshotValid reports whether a range query that collected under the
// given snapshot bound may return its result: true unless src is
// generational and has switched generations since bound was taken. On
// mismatch the caller must discard what it collected, take a fresh
// bound and re-run — the pre-switch bound orders correctly against
// pre-switch labels only, so a result assembled across the switch could
// tear the snapshot. Non-generational sources never invalidate.
func SnapshotValid(src Source, bound TS) bool {
	g, ok := src.(Generational)
	if !ok {
		return true
	}
	if g.Generation() == GenOf(bound) {
		return true
	}
	if o, ok := src.(retryObserver); ok {
		o.NoteSnapshotRetry()
	}
	return false
}

// DefaultFailbackAfter is the failback hysteresis: the number of
// consecutive fault-free Snapshot calls in logical mode before an
// AdaptiveSource retries the hardware counter.
const DefaultFailbackAfter = 4096

// AdaptiveConfig configures NewAdaptive.
type AdaptiveConfig struct {
	// Health supplies the degraded signal and receives switch telemetry.
	// With a nil Health the source never observes faults and stays on
	// hardware (still generation-encoded, so instrumentation works).
	Health *tsc.Health
	// HW is the hardware kind used in even generations; zero value means
	// TSC (fenced RDTSCP). Logical and Adaptive are rejected.
	HW Kind
	// FailbackAfter overrides the failback hysteresis: the number of
	// consecutive fault-free Snapshot calls in logical mode before
	// retrying hardware. 0 means DefaultFailbackAfter; negative disables
	// failback (a failed-over source stays logical).
	FailbackAfter int
}

// AdaptiveSource starts on the hardware counter and fails over to a
// shared logical counter when Health reports the hardware degraded —
// the control loop that makes hardware timestamps safe on machines
// where the invariant-TSC assumption can break at runtime. After a
// fault-free stretch it fails back.
//
// Every timestamp carries the source generation in its high bits (see
// GenBits); on a switch the generation increments, so post-switch
// timestamps numerically dominate all pre-switch ones and monotonicity
// holds across the switch by construction. The logical counter is
// additionally seeded at or above the last hardware payload, so the
// payload bits are monotonic too. In-flight range queries detect a
// switch via SnapshotValid and retry against a fresh bound.
//
// Hot-path cost over the plain hardware source: one atomic load of the
// generation and one of the degraded flag per timestamp.
type AdaptiveSource struct {
	health *tsc.Health
	hwKind Kind
	read   func() uint64
	baseHW uint64 // hardware reading at construction; payload = read() - baseHW + 1

	gen     atomic.Uint64
	logical PaddedUint64 // payload counter for odd (logical) generations

	failbackAfter int
	lastSeq       atomic.Uint64 // Health.FaultSeq at last observation
	quiet         atomic.Uint64 // consecutive clean logical-mode snapshots

	mu sync.Mutex // serializes switches
}

// NewAdaptive builds an adaptive source per cfg. See AdaptiveConfig.
func NewAdaptive(cfg AdaptiveConfig) *AdaptiveSource {
	hw := cfg.HW
	if hw == Logical || hw == Adaptive {
		hw = TSC
	}
	inner := New(hw).(*hwSource)
	s := &AdaptiveSource{
		health:        cfg.Health,
		hwKind:        hw,
		read:          inner.read,
		baseHW:        inner.read(),
		failbackAfter: cfg.FailbackAfter,
	}
	if s.failbackAfter == 0 {
		s.failbackAfter = DefaultFailbackAfter
	}
	s.logical.Store(0)
	return s
}

// hwPayload returns the current hardware reading as a payload: offset
// from the construction-time base so values stay far from the payload
// width, floored at 1 (0 is "before all snapshots") and capped below
// PayloadMask so no generation can compose to the Pending sentinel.
func (s *AdaptiveSource) hwPayload() uint64 {
	r := s.read()
	var p uint64
	if r > s.baseHW {
		p = r - s.baseHW + 1
	} else {
		p = 1
	}
	if p >= PayloadMask {
		p = PayloadMask - 1
	}
	return p
}

// Generation returns the current source generation (even = hardware,
// odd = logical).
func (s *AdaptiveSource) Generation() uint64 { return s.gen.Load() }

// Degraded reports whether the source is currently in logical
// (failed-over) mode.
func (s *AdaptiveSource) Degraded() bool { return s.gen.Load()&1 == 1 }

// Advance obtains a new timestamp (see Source).
func (s *AdaptiveSource) Advance() TS {
	for {
		g := s.gen.Load()
		if g&1 == 1 {
			return g<<GenShift | s.logical.Add(1)&PayloadMask
		}
		if s.health.Degraded() && s.failover(g) {
			continue
		}
		return g<<GenShift | s.hwPayload()
	}
}

// Peek reads the current timestamp without advancing it (see Source).
func (s *AdaptiveSource) Peek() TS {
	for {
		g := s.gen.Load()
		if g&1 == 1 {
			return g<<GenShift | s.logical.Load()&PayloadMask
		}
		if s.health.Degraded() && s.failover(g) {
			continue
		}
		return g<<GenShift | s.hwPayload()
	}
}

// Snapshot returns a closed snapshot bound (see Source). In logical
// mode it is the logical pre-increment (strict bound, like
// LogicalSource); in hardware mode a fenced read (ties possible, like
// hwSource). Logical-mode snapshots also drive failback hysteresis:
// after failbackAfter consecutive snapshots with no new Health faults,
// the source retries the hardware counter.
func (s *AdaptiveSource) Snapshot() TS {
	for {
		g := s.gen.Load()
		if g&1 == 1 {
			ts := g<<GenShift | (s.logical.Add(1)-1)&PayloadMask
			s.maybeFailback(g)
			return ts
		}
		if s.health.Degraded() && s.failover(g) {
			continue
		}
		return g<<GenShift | s.hwPayload()
	}
}

// Kind reports Adaptive.
func (s *AdaptiveSource) Kind() Kind { return Adaptive }

// Actual reports the kind actually serving reads right now: Logical in
// a failed-over generation, otherwise whatever the hardware kind's
// reads actually hit on this host (monotonic fallback included).
func (s *AdaptiveSource) Actual() Kind {
	if s.gen.Load()&1 == 1 {
		return Logical
	}
	return actualFor(s.hwKind)
}

// NoteSourceStall implements StallObserver: a stalled strict advance is
// a fault, reported to Health, which flips the degraded flag and makes
// the next timestamp acquisition fail over.
func (s *AdaptiveSource) NoteSourceStall(prev TS) { s.health.NoteStall() }

// failover switches generation g (even, hardware) to g+1 (odd,
// logical). Returns true if the caller should re-read the generation
// (the switch happened, here or on another thread); false when the
// generation space is exhausted and the source must stay put.
func (s *AdaptiveSource) failover(g uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen.Load() != g {
		return true // raced: another thread already switched
	}
	if g+1 > MaxGen {
		return false
	}
	start := time.Now()
	// Seed the logical counter at or above the last hardware payload so
	// payload bits never move backward across the switch; the next
	// Advance returns seed+1, strictly above every hardware reading
	// taken before the switch.
	hw := s.hwPayload()
	for {
		cur := s.logical.Load()
		if hw <= cur || s.logical.CompareAndSwap(cur, hw) {
			break
		}
	}
	s.lastSeq.Store(s.health.FaultSeq())
	s.quiet.Store(0)
	s.gen.Store(g + 1)
	s.health.NoteSourceSwitch(false, time.Since(start))
	return true
}

// maybeFailback runs the failback hysteresis from a logical-mode
// snapshot: count consecutive snapshots during which Health observed no
// new fault, and after failbackAfter of them switch back to hardware.
// The counters are racy by design — hysteresis is a heuristic, and any
// thread observing a fault resets the run.
func (s *AdaptiveSource) maybeFailback(g uint64) {
	if s.failbackAfter < 0 || s.health == nil {
		return
	}
	seq := s.health.FaultSeq()
	if seq != s.lastSeq.Load() {
		s.lastSeq.Store(seq)
		s.quiet.Store(0)
		return
	}
	if s.quiet.Add(1) < uint64(s.failbackAfter) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen.Load() != g || g+1 > MaxGen-1 {
		return // raced, or too few generations left for another failover
	}
	if s.health.FaultSeq() != seq {
		return // a fault landed while we acquired the lock
	}
	start := time.Now()
	s.gen.Store(g + 1)
	s.quiet.Store(0)
	// Clear the flag so hardware-mode hot paths stop failing over; if a
	// fault raced with the clear, the sequence number exposes it and the
	// flag is re-raised (atomics are sequentially consistent, so a fault
	// ordered before our re-check is visible to it).
	s.health.ClearDegraded()
	if s.health.FaultSeq() != seq {
		s.health.RaiseDegraded()
	}
	s.health.NoteSourceSwitch(true, time.Since(start))
}

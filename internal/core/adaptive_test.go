package core

import (
	"sync"
	"testing"
	"time"

	"tscds/internal/obs"
	"tscds/internal/tsc"
)

func TestGenEncoding(t *testing.T) {
	ts := TS(3)<<GenShift | 42
	if GenOf(ts) != 3 {
		t.Fatalf("GenOf = %d, want 3", GenOf(ts))
	}
	if PayloadOf(ts) != 42 {
		t.Fatalf("PayloadOf = %d, want 42", PayloadOf(ts))
	}
	if GenOf(Pending) != MaxGen {
		t.Fatalf("GenOf(Pending) = %d, want MaxGen", GenOf(Pending))
	}
	// Any generation-g+1 value dominates any generation-g value.
	lo := TS(4)<<GenShift | PayloadMask
	hi := TS(5)<<GenShift | 1
	if hi <= lo {
		t.Fatal("higher generation does not dominate")
	}
}

func TestAdaptiveNoHealthStaysHardware(t *testing.T) {
	s := NewAdaptive(AdaptiveConfig{})
	if s.Kind() != Adaptive {
		t.Fatalf("Kind = %v", s.Kind())
	}
	if s.Generation() != 0 || s.Degraded() {
		t.Fatal("fresh adaptive source not in hardware generation 0")
	}
	prev := s.Advance()
	for i := 0; i < 10000; i++ {
		now := s.Advance()
		if now < prev {
			t.Fatalf("Advance went backwards %d -> %d", prev, now)
		}
		if GenOf(now) != 0 {
			t.Fatalf("generation drifted to %d with no health monitor", GenOf(now))
		}
		prev = now
	}
	if s.Peek() == Pending || s.Snapshot() == Pending {
		t.Fatal("adaptive source produced Pending")
	}
}

func TestAdaptiveFailoverOnDegraded(t *testing.T) {
	h := tsc.NewHealth(2)
	s := NewAdaptive(AdaptiveConfig{Health: h, FailbackAfter: -1})
	before := s.Advance()
	if GenOf(before) != 0 {
		t.Fatalf("pre-fault generation = %d", GenOf(before))
	}
	h.InjectBackstep(1 << 30)
	after := s.Advance()
	if GenOf(after) != 1 {
		t.Fatalf("post-fault generation = %d, want 1", GenOf(after))
	}
	if !s.Degraded() {
		t.Fatal("source does not report degraded after failover")
	}
	if after <= before {
		t.Fatalf("timestamp moved backwards across failover: %d -> %d", before, after)
	}
	// Logical mode: payload seeded at or above the last hardware payload,
	// and strictly increasing from there.
	if PayloadOf(after) < PayloadOf(before) {
		t.Fatalf("payload moved backwards across failover: %d -> %d", PayloadOf(before), PayloadOf(after))
	}
	prev := after
	for i := 0; i < 1000; i++ {
		now := s.Advance()
		if now <= prev {
			t.Fatalf("logical mode not strictly increasing: %d -> %d", prev, now)
		}
		prev = now
	}
	snap := h.Snapshot()
	if snap.SourceSwitches != 1 {
		t.Fatalf("SourceSwitches = %d, want 1", snap.SourceSwitches)
	}
	if snap.SourceFailbacks != 0 {
		t.Fatalf("SourceFailbacks = %d, want 0", snap.SourceFailbacks)
	}
	if got := Actual(s); got != Logical {
		t.Fatalf("Actual = %v in failed-over mode, want Logical", got)
	}
}

func TestAdaptiveFailbackAfterQuiet(t *testing.T) {
	h := tsc.NewHealth(2)
	s := NewAdaptive(AdaptiveConfig{Health: h, FailbackAfter: 8})
	h.InjectBackstep(1 << 30)
	if got := GenOf(s.Advance()); got != 1 {
		t.Fatalf("generation after fault = %d, want 1", got)
	}
	// 8 fault-free snapshots trip the hysteresis back to hardware.
	var last TS
	for i := 0; i < 20 && s.Degraded(); i++ {
		last = s.Snapshot()
	}
	if s.Degraded() {
		t.Fatal("no failback after quiet snapshots")
	}
	if got := s.Generation(); got != 2 {
		t.Fatalf("generation after failback = %d, want 2", got)
	}
	now := s.Advance()
	if now <= last {
		t.Fatalf("timestamp moved backwards across failback: %d -> %d", last, now)
	}
	if h.Degraded() {
		t.Fatal("degraded flag still set after failback")
	}
	snap := h.Snapshot()
	if snap.SourceSwitches != 1 || snap.SourceFailbacks != 1 {
		t.Fatalf("switches=%d failbacks=%d, want 1/1", snap.SourceSwitches, snap.SourceFailbacks)
	}
	// A new fault fails over again, onto a fresh generation.
	h.InjectBackstep(1 << 30)
	if got := GenOf(s.Peek()); got != 3 {
		t.Fatalf("generation after second fault = %d, want 3", got)
	}
}

func TestAdaptiveFailbackDisabled(t *testing.T) {
	h := tsc.NewHealth(1)
	s := NewAdaptive(AdaptiveConfig{Health: h, FailbackAfter: -1})
	h.InjectBackstep(1 << 30)
	s.Advance()
	for i := 0; i < 100000; i++ {
		s.Snapshot()
	}
	if !s.Degraded() || s.Generation() != 1 {
		t.Fatal("failback happened despite FailbackAfter < 0")
	}
}

func TestSnapshotValid(t *testing.T) {
	// Non-generational sources never invalidate.
	if !SnapshotValid(NewLogical(), 0) || !SnapshotValid(New(TSC), Pending) {
		t.Fatal("non-generational source invalidated a bound")
	}
	h := tsc.NewHealth(1)
	s := NewAdaptive(AdaptiveConfig{Health: h, FailbackAfter: -1})
	bound := s.Snapshot()
	if !SnapshotValid(s, bound) {
		t.Fatal("fresh bound invalid")
	}
	h.InjectBackstep(1 << 30)
	s.Advance() // trips the failover
	if SnapshotValid(s, bound) {
		t.Fatal("pre-switch bound still valid after failover")
	}
	if !SnapshotValid(s, s.Snapshot()) {
		t.Fatal("post-switch bound invalid")
	}
}

func TestSnapshotValidThroughInstrumentation(t *testing.T) {
	h := tsc.NewHealth(1)
	var st obs.SourceStats
	src := InstrumentSource(NewAdaptive(AdaptiveConfig{Health: h, FailbackAfter: -1}), &st)
	if _, ok := src.(Generational); !ok {
		t.Fatal("instrumentation dropped Generational")
	}
	bound := src.Snapshot()
	h.InjectBackstep(1 << 30)
	src.Advance()
	if SnapshotValid(src, bound) {
		t.Fatal("instrumented adaptive source did not invalidate pre-switch bound")
	}
	if st.SnapshotRetries.Load() != 1 {
		t.Fatalf("SnapshotRetries = %d, want 1", st.SnapshotRetries.Load())
	}
}

func TestAdaptiveConcurrentSwitches(t *testing.T) {
	h := tsc.NewHealth(8)
	s := NewAdaptive(AdaptiveConfig{Health: h, FailbackAfter: 64})
	// One synchronous fault before the workers start guarantees at least
	// one failover regardless of scheduling.
	h.InjectBackstep(1 << 30)
	stop := make(chan struct{})
	injDone := make(chan struct{})
	// Fault injector: periodic backsteps force repeated failovers while
	// the hysteresis keeps failing back in between.
	go func() {
		defer close(injDone)
		for {
			select {
			case <-stop:
				return
			default:
				h.InjectBackstep(1 << 30)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := s.Advance()
			for i := 0; i < 20000; i++ {
				var now TS
				switch i % 3 {
				case 0:
					now = s.Advance()
				case 1:
					now = s.Snapshot()
				default:
					now = s.Peek()
				}
				if now < prev {
					select {
					case errs <- "timestamp went backwards across switches":
					default:
					}
					return
				}
				if now > prev {
					prev = now
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-injDone
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	snap := h.Snapshot()
	if snap.SourceSwitches == 0 {
		t.Fatal("no switches recorded under fault injection")
	}
	t.Logf("switches=%d failbacks=%d lastSwitch=%dns", snap.SourceSwitches, snap.SourceFailbacks, snap.LastSwitchNS)
}

// frozenSource never moves — the shape of a fully stalled counter.
// AdvanceStrict used to hang forever on it.
type frozenSource struct {
	v      uint64
	stalls int
}

func (s *frozenSource) Advance() TS             { return s.v }
func (s *frozenSource) Peek() TS                { return s.v }
func (s *frozenSource) Snapshot() TS            { return s.v }
func (s *frozenSource) Kind() Kind              { return Monotonic }
func (s *frozenSource) NoteSourceStall(prev TS) { s.stalls++ }

func TestAdvanceStrictBoundedOnFrozenSource(t *testing.T) {
	s := &frozenSource{v: 41}
	done := make(chan TS, 1)
	go func() { done <- AdvanceStrict(s, 41) }()
	select {
	case got := <-done:
		if got != 42 {
			t.Fatalf("AdvanceStrict on frozen source = %d, want prev+1 = 42", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("AdvanceStrict still hanging on a frozen source")
	}
	if s.stalls != 1 {
		t.Fatalf("stall observer called %d times, want 1", s.stalls)
	}
}

func TestAdvanceStrictStallTripsAdaptiveFailover(t *testing.T) {
	h := tsc.NewHealth(1)
	s := NewAdaptive(AdaptiveConfig{Health: h, FailbackAfter: -1})
	// Report a stall as AdvanceStrict would; the health fault must flip
	// the next acquisition to the logical generation.
	s.NoteSourceStall(7)
	if got := GenOf(s.Advance()); got != 1 {
		t.Fatalf("generation after stall report = %d, want 1", got)
	}
	if h.Snapshot().SourceStalls != 1 {
		t.Fatal("stall not recorded on health")
	}
}

func TestActualDisclosesFallback(t *testing.T) {
	for _, k := range []Kind{TSC, TSCUnfenced, TSCCPUID, TSCRaw, Monotonic} {
		s := New(k)
		got := Actual(s)
		if tsc.Supported() && tsc.HasCounter() {
			if got != k {
				t.Errorf("Actual(%v) = %v on a supported host", k, got)
			}
		} else if !tsc.HasCounter() && k != Monotonic {
			if got != Monotonic {
				t.Errorf("Actual(%v) = %v without a hardware counter, want Monotonic", k, got)
			}
		}
	}
	// Logical sources are always exactly what they claim.
	if got := Actual(NewLogical()); got != Logical {
		t.Errorf("Actual(Logical) = %v", got)
	}
	// Instrumentation forwards the disclosure.
	var st obs.SourceStats
	s := InstrumentSource(New(TSC), &st)
	if Actual(s) != Actual(New(TSC)) {
		t.Error("instrumented Actual differs from inner Actual")
	}
}

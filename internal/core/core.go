// Package core implements the paper's primary contribution: a drop-in
// timestamp API that lets a range-query algorithm switch between a global
// logical timestamp and the CPU's synchronized hardware timestamp counter
// (TSC), plus the shared machinery every ported technique needs — padded
// atomics, and a registry of active range-query timestamps used to
// garbage-collect version chains, bundle entries and limbo lists.
//
// The API mirrors the paper's porting recipe exactly: every place an
// algorithm incremented the logical timestamp becomes Source.Advance, and
// every place it read the timestamp becomes Source.Peek. For hardware
// sources both calls are a fenced RDTSCP read; for the logical source
// Advance is an atomic fetch-and-add on a single shared cache line — the
// contention bottleneck the paper measures.
package core

import (
	"math"
	"sort"
)

// TS is a timestamp. Logical sources produce small dense integers;
// hardware sources produce TSC cycle counts. Algorithms only ever compare
// timestamps and never assume density.
type TS = uint64

// Pending marks an object whose timestamp label has been reserved but not
// yet assigned (vCAS's "TBD", bundling's pending entry). It is the
// largest TS so an unlabeled object always appears "newer than any
// snapshot" until labeled.
const Pending TS = math.MaxUint64

// MaxTS is the largest assignable timestamp (one below Pending).
const MaxTS TS = Pending - 1

// KV is a key-value pair returned by range queries.
type KV struct {
	Key, Val uint64
}

// SortKVs sorts pairs by ascending key. Range-query collections return
// shard- or structure-order results; the facade's Scan and the
// durability layer's snapshot writer both need key order.
func SortKVs(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}

// Kind identifies a timestamp source implementation.
type Kind int

const (
	// Logical is a shared atomic counter: Advance = fetch-and-add,
	// Peek = load. The baseline in every figure.
	Logical Kind = iota
	// TSC is RDTSCP;LFENCE — the paper's recommended hardware source.
	TSC
	// TSCUnfenced is a bare RDTSCP (pseudo-serializing only); shown in
	// Figure 1 to bound fence overhead.
	TSCUnfenced
	// TSCCPUID is CPUID;RDTSC — fully serialized but ~200+ cycles.
	TSCCPUID
	// TSCRaw is a bare RDTSC with no ordering guarantees.
	TSCRaw
	// Monotonic is the portable monotonic-clock source, used where TSC
	// is unavailable (non-amd64, or non-invariant TSC).
	Monotonic
	// Adaptive starts on fenced RDTSCP and fails over to the shared
	// logical counter when tsc.Health reports the hardware degraded,
	// encoding a source generation in each timestamp's high bits (see
	// AdaptiveSource).
	Adaptive
)

// String returns the series label used in benchmark output, matching the
// paper's legend names.
func (k Kind) String() string {
	switch k {
	case Logical:
		return "Logical"
	case TSC:
		return "RDTSCP"
	case TSCUnfenced:
		return "RDTSCP-nofence"
	case TSCCPUID:
		return "RDTSC-CPUID"
	case TSCRaw:
		return "RDTSC-nofence"
	case Monotonic:
		return "Monotonic"
	case Adaptive:
		return "Adaptive"
	}
	return "Unknown"
}

// Hardware reports whether the kind reads a per-core hardware counter
// rather than a shared memory location.
func (k Kind) Hardware() bool { return k != Logical }

// Source produces timestamps. Implementations must guarantee that
// timestamps are monotonically (not necessarily strictly) increasing with
// respect to real-time order: if a call happens-after another call
// returns, it yields a value >= the earlier result.
type Source interface {
	// Advance obtains a new timestamp, advancing the global order. On a
	// logical source this is a fetch-and-add; on hardware sources it is
	// simply a read, since the counter advances on its own.
	Advance() TS
	// Peek reads the current timestamp without advancing it. On a
	// logical source this is an atomic load.
	Peek() TS
	// Snapshot returns a closed snapshot bound s: every label produced
	// by Peek or Advance that starts after Snapshot returns is >= s, and
	// on a logical source strictly greater. Range queries linearize at
	// Snapshot and include exactly the labels <= s. On a logical source
	// this is a fetch-and-add returning the pre-increment value; on
	// hardware sources it is a read (ties with in-flight labels are the
	// theoretical corner case of §III-A, addressed by AdvanceStrict
	// where an algorithm needs strictness).
	Snapshot() TS
	// Kind identifies the implementation.
	Kind() Kind
}

// StallObserver is implemented by sources (or wrappers) that want to
// hear when AdvanceStrict exhausted its spin budget against them — the
// signature of a frozen or severely degraded counter. AdaptiveSource
// reports the stall to its Health monitor (triggering failover);
// instrumented sources count it.
type StallObserver interface {
	NoteSourceStall(prev TS)
}

// advanceStrictSpinBudget bounds the AdvanceStrict spin. A healthy
// source moves within a handful of reads (one counter increment — a
// clock cycle for TSC); a million reads without progress means the
// counter is frozen, and spinning further would hang the caller on
// exactly the hardware fault the health monitor exists to catch.
const advanceStrictSpinBudget = 1 << 20

// AdvanceStrict returns a timestamp strictly greater than prev. This is
// the Jiffy-style tie-avoidance discussed in §III-A: TSC is monotonic
// but not strictly increasing, so algorithms that require unique
// versions wait out ties. On a healthy source the wait is bounded by
// one counter increment (a clock cycle for TSC); for a logical source
// Advance already guarantees strict increase so no spin occurs.
//
// Against a stalled source the spin is bounded: after the budget is
// exhausted the stall is reported via StallObserver (if implemented)
// and prev+1 is returned. The fabricated label is strictly above prev
// but ahead of the frozen counter, so it stays invisible to snapshots
// until the counter catches up — a bounded-staleness degradation,
// instead of the unbounded hang a frozen counter used to cause here.
func AdvanceStrict(s Source, prev TS) TS {
	for i := 0; i < advanceStrictSpinBudget; i++ {
		t := s.Advance()
		if t > prev {
			return t
		}
	}
	if o, ok := s.(StallObserver); ok {
		o.NoteSourceStall(prev)
	}
	t := prev + 1
	if t > MaxTS {
		t = MaxTS
	}
	return t
}

package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Logical:     "Logical",
		TSC:         "RDTSCP",
		TSCUnfenced: "RDTSCP-nofence",
		TSCCPUID:    "RDTSC-CPUID",
		TSCRaw:      "RDTSC-nofence",
		Monotonic:   "Monotonic",
		Adaptive:    "Adaptive",
		Kind(99):    "Unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindHardware(t *testing.T) {
	if Logical.Hardware() {
		t.Error("Logical should not be hardware")
	}
	for _, k := range []Kind{TSC, TSCUnfenced, TSCCPUID, TSCRaw, Monotonic} {
		if !k.Hardware() {
			t.Errorf("%v should be hardware", k)
		}
	}
}

func TestLogicalSourceSequential(t *testing.T) {
	s := NewLogical()
	first := s.Peek()
	if first != 1 {
		t.Fatalf("fresh logical source Peek = %d, want 1", first)
	}
	for i := 0; i < 1000; i++ {
		before := s.Peek()
		got := s.Advance()
		if got != before+1 {
			t.Fatalf("Advance returned %d after Peek %d", got, before)
		}
	}
}

func TestLogicalSourceConcurrentUnique(t *testing.T) {
	s := NewLogical()
	const gs = 8
	const per = 10000
	results := make([][]TS, gs)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]TS, per)
			for i := range out {
				out[i] = s.Advance()
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[TS]bool, gs*per)
	for _, out := range results {
		for _, v := range out {
			if seen[v] {
				t.Fatalf("duplicate logical timestamp %d", v)
			}
			seen[v] = true
		}
	}
	if got := s.Peek(); got != gs*per+1 {
		t.Fatalf("final Peek = %d, want %d", got, gs*per+1)
	}
}

func TestAllKindsConstructAndAdvance(t *testing.T) {
	for _, k := range []Kind{Logical, TSC, TSCUnfenced, TSCCPUID, TSCRaw, Monotonic, Adaptive} {
		s := New(k)
		if s.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, s.Kind())
		}
		a := s.Advance()
		b := s.Advance()
		if b < a && k != TSCRaw && k != TSCUnfenced {
			t.Errorf("%v: Advance went backwards %d -> %d", k, a, b)
		}
		if s.Peek() == Pending {
			t.Errorf("%v: Peek returned Pending", k)
		}
	}
}

func TestBestIsMonotonicAcrossCalls(t *testing.T) {
	s := Best()
	prev := s.Advance()
	for i := 0; i < 100000; i++ {
		now := s.Advance()
		if now < prev {
			t.Fatalf("Best() source went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}

// stalledSource freezes at v for stall reads before moving — the shape
// of a Monotonic or TSCRaw source whose counter ties across
// back-to-back reads (the §III-A corner case AdvanceStrict exists for).
type stalledSource struct {
	kind  Kind
	v     uint64
	stall int
	calls int
}

func (s *stalledSource) Advance() TS {
	s.calls++
	if s.calls > s.stall {
		s.v++
	}
	return s.v
}
func (s *stalledSource) Peek() TS     { return s.v }
func (s *stalledSource) Snapshot() TS { return s.Advance() }
func (s *stalledSource) Kind() Kind   { return s.kind }

// AdvanceStrict must wait out a stall and return a strictly greater
// timestamp, never a tie.
func TestAdvanceStrictSpinsOutStalledSource(t *testing.T) {
	for _, k := range []Kind{Monotonic, TSCRaw} {
		s := &stalledSource{kind: k, v: 7, stall: 1000}
		got := AdvanceStrict(s, 7)
		if got != 8 {
			t.Fatalf("%v: AdvanceStrict = %d, want 8", k, got)
		}
		if s.calls <= 1000 {
			t.Fatalf("%v: returned after %d reads without waiting out the stall", k, s.calls)
		}
	}
}

func TestAdvanceStrict(t *testing.T) {
	for _, k := range []Kind{Logical, TSC, Monotonic} {
		s := New(k)
		prev := s.Advance()
		for i := 0; i < 1000; i++ {
			now := AdvanceStrict(s, prev)
			if now <= prev {
				t.Fatalf("%v: AdvanceStrict returned %d, not > %d", k, now, prev)
			}
			prev = now
		}
	}
}

func TestPaddedUint64(t *testing.T) {
	var p PaddedUint64
	if p.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	p.Store(7)
	if got := p.Add(3); got != 10 {
		t.Fatalf("Add = %d, want 10", got)
	}
	if !p.CompareAndSwap(10, 20) || p.Load() != 20 {
		t.Fatal("CAS failed")
	}
	if p.CompareAndSwap(10, 30) {
		t.Fatal("CAS succeeded with wrong expected value")
	}
}

func TestRegistryRegisterReleaseReuse(t *testing.T) {
	r := NewRegistry(2)
	a := r.MustRegister()
	b := r.MustRegister()
	if _, err := r.Register(); err == nil {
		t.Fatal("expected registry-full error")
	}
	b.Release()
	c := r.MustRegister()
	if c.ID != b.ID {
		t.Fatalf("released slot not reused: got %d, want %d", c.ID, b.ID)
	}
	a.Release()
	c.Release()
}

func TestMinActiveRQ(t *testing.T) {
	r := NewRegistry(4)
	if got := r.MinActiveRQ(); got != Pending {
		t.Fatalf("empty registry MinActiveRQ = %d, want Pending", got)
	}
	a := r.MustRegister()
	b := r.MustRegister()
	a.AnnounceRQ(100)
	b.AnnounceRQ(50)
	if got := r.MinActiveRQ(); got != 50 {
		t.Fatalf("MinActiveRQ = %d, want 50", got)
	}
	b.DoneRQ()
	if got := r.MinActiveRQ(); got != 100 {
		t.Fatalf("MinActiveRQ = %d, want 100", got)
	}
	a.DoneRQ()
	if got := r.MinActiveRQ(); got != Pending {
		t.Fatalf("MinActiveRQ = %d, want Pending", got)
	}
}

// Property: MinActiveRQ equals the minimum of any set of announced values.
func TestMinActiveRQProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		r := NewRegistry(64)
		min := Pending
		for _, v := range vals {
			if v >= Pending {
				v = MaxTS
			}
			th := r.MustRegister()
			th.AnnounceRQ(v)
			if v < min {
				min = v
			}
		}
		return r.MinActiveRQ() == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: logical Advance values observed by one goroutine strictly
// increase regardless of interleaving with another advancing goroutine.
func TestLogicalMonotoneUnderConcurrencyProperty(t *testing.T) {
	s := NewLogical()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s.Advance()
			}
		}
	}()
	prev := s.Advance()
	for i := 0; i < 50000; i++ {
		now := s.Advance()
		if now <= prev {
			t.Fatalf("logical Advance not strictly increasing: %d then %d", prev, now)
		}
		prev = now
	}
	close(stop)
}

func BenchmarkLogicalAdvance(b *testing.B) {
	s := NewLogical()
	for i := 0; i < b.N; i++ {
		s.Advance()
	}
}

func BenchmarkTSCAdvance(b *testing.B) {
	s := New(TSC)
	for i := 0; i < b.N; i++ {
		s.Advance()
	}
}

func TestBestPrefersHardwareWhenAvailable(t *testing.T) {
	s := Best()
	if s.Kind() != TSC && s.Kind() != Monotonic {
		t.Fatalf("Best() returned %v", s.Kind())
	}
	// Whatever the host provides, the source must be usable immediately.
	if s.Snapshot() == Pending || s.Advance() == Pending {
		t.Fatal("Best() source produced the Pending sentinel")
	}
}

func TestSnapshotStrictlyBelowLaterLabelsLogical(t *testing.T) {
	s := NewLogical()
	for i := 0; i < 1000; i++ {
		snap := s.Snapshot()
		label := s.Peek()
		if label <= snap {
			t.Fatalf("label %d not strictly after snapshot %d", label, snap)
		}
	}
}

func TestRegistryConcurrentRegisterRelease(t *testing.T) {
	r := NewRegistry(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				th, err := r.Register()
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				th.BeginRQ()
				th.AnnounceRQ(5)
				th.DoneRQ()
				th.Release()
			}
		}()
	}
	wg.Wait()
	if got := r.MinActiveRQ(); got != Pending {
		t.Fatalf("MinActiveRQ after quiesce = %d", got)
	}
}

package core

import (
	"sync/atomic"

	"tscds/internal/obs"
)

// InstrumentSource wraps src so every Advance, Peek and Snapshot is
// counted in st. On a logical source the Advance count is a direct proxy
// for fetch-and-add contention on the shared timestamp line — the effect
// the paper's figures measure; on hardware sources the counts describe
// the workload's timestamp appetite.
//
// The wrapper preserves Addressable, so an instrumented logical source
// remains usable by lock-free EBR-RQ's DCSS. (DCSS traffic goes straight
// to the counter's address and is intentionally not counted: it is the
// algorithm's validation read, not a timestamp acquisition.) It likewise
// preserves Generational, so range queries validating their snapshot
// bound against the source generation see through the wrapper.
func InstrumentSource(src Source, st *obs.SourceStats) Source {
	is := instrumentedSource{inner: src, st: st}
	if a, ok := src.(Addressable); ok {
		return &instrumentedAddressable{instrumentedSource: is, addr: a}
	}
	if g, ok := src.(Generational); ok {
		return &instrumentedGenerational{instrumentedSource: is, gen: g}
	}
	return &is
}

type instrumentedSource struct {
	inner Source
	st    *obs.SourceStats
}

func (s *instrumentedSource) Advance() TS {
	s.st.Advances.Inc()
	return s.inner.Advance()
}

func (s *instrumentedSource) Peek() TS {
	s.st.Peeks.Inc()
	return s.inner.Peek()
}

func (s *instrumentedSource) Snapshot() TS {
	s.st.Snapshots.Inc()
	return s.inner.Snapshot()
}

func (s *instrumentedSource) Kind() Kind { return s.inner.Kind() }

// Actual discloses the inner source's actual kind (see Actual).
func (s *instrumentedSource) Actual() Kind { return Actual(s.inner) }

// NoteSourceStall counts the stall and forwards it to the inner source
// (an AdaptiveSource turns it into a Health fault).
func (s *instrumentedSource) NoteSourceStall(prev TS) {
	s.st.Stalls.Inc()
	if o, ok := s.inner.(StallObserver); ok {
		o.NoteSourceStall(prev)
	}
}

// NoteSnapshotRetry counts a range query discarded and re-run because
// the source switched generations under it (see SnapshotValid).
func (s *instrumentedSource) NoteSnapshotRetry() {
	s.st.SnapshotRetries.Inc()
	if o, ok := s.inner.(retryObserver); ok {
		o.NoteSnapshotRetry()
	}
}

type instrumentedAddressable struct {
	instrumentedSource
	addr Addressable
}

func (s *instrumentedAddressable) Addr() *atomic.Uint64 { return s.addr.Addr() }

type instrumentedGenerational struct {
	instrumentedSource
	gen Generational
}

func (s *instrumentedGenerational) Generation() uint64 { return s.gen.Generation() }

package core

import (
	"sync/atomic"

	"tscds/internal/obs"
)

// InstrumentSource wraps src so every Advance, Peek and Snapshot is
// counted in st. On a logical source the Advance count is a direct proxy
// for fetch-and-add contention on the shared timestamp line — the effect
// the paper's figures measure; on hardware sources the counts describe
// the workload's timestamp appetite.
//
// The wrapper preserves Addressable, so an instrumented logical source
// remains usable by lock-free EBR-RQ's DCSS. (DCSS traffic goes straight
// to the counter's address and is intentionally not counted: it is the
// algorithm's validation read, not a timestamp acquisition.)
func InstrumentSource(src Source, st *obs.SourceStats) Source {
	is := instrumentedSource{inner: src, st: st}
	if a, ok := src.(Addressable); ok {
		return &instrumentedAddressable{instrumentedSource: is, addr: a}
	}
	return &is
}

type instrumentedSource struct {
	inner Source
	st    *obs.SourceStats
}

func (s *instrumentedSource) Advance() TS {
	s.st.Advances.Inc()
	return s.inner.Advance()
}

func (s *instrumentedSource) Peek() TS {
	s.st.Peeks.Inc()
	return s.inner.Peek()
}

func (s *instrumentedSource) Snapshot() TS {
	s.st.Snapshots.Inc()
	return s.inner.Snapshot()
}

func (s *instrumentedSource) Kind() Kind { return s.inner.Kind() }

type instrumentedAddressable struct {
	instrumentedSource
	addr Addressable
}

func (s *instrumentedAddressable) Addr() *atomic.Uint64 { return s.addr.Addr() }

package core

// OrdoSource wraps a hardware source with an ORDO-style uncertainty
// window (Kashyap et al., "A scalable ordering primitive for multicore
// machines", EuroSys 2018 — discussed in the paper's related work §V).
//
// ORDO targets machines whose per-core clocks are NOT guaranteed
// synchronized: it measures a bound Δ on the pairwise clock skew and
// derives ordering only across timestamps more than Δ apart. Here,
// Advance returns read+Δ — a value guaranteed greater than any raw
// clock reading taken on any core before the call — while Peek returns
// the raw reading. With invariant TSC (the paper's assumption) Δ is
// zero and OrdoSource degenerates to its inner source; a nonzero Δ lets
// the test suite and the ablation benchmarks explore how skew-tolerance
// inflates snapshot windows.
type OrdoSource struct {
	inner Source
	delta TS
}

// NewOrdo wraps inner with uncertainty bound delta.
func NewOrdo(inner Source, delta TS) *OrdoSource {
	return &OrdoSource{inner: inner, delta: delta}
}

// Advance returns a timestamp ordered after every clock reading taken
// before the call on any core, assuming pairwise skew is below delta.
func (s *OrdoSource) Advance() TS {
	t := s.inner.Advance()
	if t > MaxTS-s.delta {
		return MaxTS
	}
	return t + s.delta
}

// Peek returns the raw clock reading.
func (s *OrdoSource) Peek() TS { return s.inner.Peek() }

// Snapshot returns a closed snapshot bound: the raw reading, since
// labels produced by Advance are at least delta ahead of any
// concurrently-read raw value.
func (s *OrdoSource) Snapshot() TS { return s.inner.Snapshot() }

// Kind reports the wrapped source's kind.
func (s *OrdoSource) Kind() Kind { return s.inner.Kind() }

// Delta reports the uncertainty bound.
func (s *OrdoSource) Delta() TS { return s.delta }

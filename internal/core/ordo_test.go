package core

import (
	"testing"
	"testing/quick"
)

func TestOrdoAdvanceExceedsRawReads(t *testing.T) {
	for _, delta := range []TS{0, 10, 1000} {
		s := NewOrdo(New(TSC), delta)
		for i := 0; i < 5000; i++ {
			raw := s.Peek()
			adv := s.Advance()
			if adv < raw+delta {
				t.Fatalf("delta=%d: Advance %d below Peek %d + delta", delta, adv, raw)
			}
		}
	}
}

func TestOrdoSnapshotClosed(t *testing.T) {
	// Labels taken after a snapshot must exceed it by at least delta,
	// because Advance adds the uncertainty bound.
	s := NewOrdo(New(Logical), 5)
	for i := 0; i < 1000; i++ {
		snap := s.Snapshot()
		label := s.Advance()
		if label <= snap {
			t.Fatalf("label %d not after snapshot %d", label, snap)
		}
	}
}

func TestOrdoSaturatesAtMaxTS(t *testing.T) {
	s := NewOrdo(New(Logical), MaxTS)
	if got := s.Advance(); got != MaxTS {
		t.Fatalf("saturating Advance = %d, want MaxTS", got)
	}
	// Never returns the Pending sentinel.
	if s.Advance() == Pending {
		t.Fatal("OrdoSource produced Pending")
	}
}

func TestOrdoKindAndDelta(t *testing.T) {
	s := NewOrdo(New(Monotonic), 42)
	if s.Kind() != Monotonic || s.Delta() != 42 {
		t.Fatalf("Kind=%v Delta=%d", s.Kind(), s.Delta())
	}
}

// Property: for any delta, consecutive Advances remain monotone.
func TestOrdoMonotoneProperty(t *testing.T) {
	f := func(d uint16) bool {
		s := NewOrdo(New(Logical), TS(d))
		prev := s.Advance()
		for i := 0; i < 100; i++ {
			now := s.Advance()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// A data-structure sanity check lives in the facade tests; here verify
// OrdoSource satisfies the Source contract used by the techniques.
var _ Source = (*OrdoSource)(nil)

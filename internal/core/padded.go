package core

import "sync/atomic"

// cacheLine is the assumed cache line size. Padding uses two lines to
// defeat the adjacent-line prefetcher that Intel parts enable by default.
const cacheLine = 64

// PaddedUint64 is an atomic uint64 alone on its own pair of cache lines,
// so contended counters (the logical timestamp, per-thread announcement
// slots) never false-share with neighbours.
type PaddedUint64 struct {
	_ [cacheLine]byte
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Load atomically loads the value.
func (p *PaddedUint64) Load() uint64 { return p.v.Load() }

// Store atomically stores v.
func (p *PaddedUint64) Store(v uint64) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *PaddedUint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// CompareAndSwap executes the CAS.
func (p *PaddedUint64) CompareAndSwap(old, new uint64) bool {
	return p.v.CompareAndSwap(old, new)
}

// Raw returns the underlying atomic for callers that need its address
// (the DCSS in lock-free EBR-RQ validates the counter by address).
func (p *PaddedUint64) Raw() *atomic.Uint64 { return &p.v }

// PaddedBool is a padded atomic flag used for run/stop signalling in the
// benchmark harness without perturbing measured cache lines.
type PaddedBool struct {
	_ [cacheLine]byte
	v atomic.Bool
	_ [cacheLine - 1]byte
}

// Load atomically loads the flag.
func (p *PaddedBool) Load() bool { return p.v.Load() }

// Store atomically stores v.
func (p *PaddedBool) Store(v bool) { p.v.Store(v) }

package core

import "errors"

// Typed errors for time-travel reads. The facade re-exports them so
// callers can errors.Is against either package's name.
var (
	// ErrTruncatedHistory reports that the requested timestamp is older
	// than the retained history: a prune point at or above it has been
	// published, so the version a read at that instant should observe
	// may already have been truncated (and, under recycling allocators,
	// reused). Reads refuse rather than serve a too-new value.
	ErrTruncatedHistory = errors.New("tscds: timestamp below the retained history window")

	// ErrFutureTimestamp reports a requested timestamp ahead of the
	// source: no update can have linearized there yet, so a "historical"
	// read at it would really be a read of the unstable present.
	ErrFutureTimestamp = errors.New("tscds: timestamp ahead of the source")
)

// ReadBound is the watermark that makes time-travel reads refuse
// truncated history instead of silently serving a too-new version.
//
// Without it, pruning is governed only by the announcement registry:
// Truncate(minRQ) keeps exactly the newest version <= minRQ per key,
// which is sufficient for in-flight range queries (their bounds are
// announced) but leaves a *future* historical read at ts no way to
// know whether the version it found is the one that was current at ts
// or merely the oldest survivor of a truncation that already passed ts.
//
// ReadBound closes that hole with a publish-before-prune protocol:
//
//	pruner: w := lowWater()            reader: th.BeginRQ()         (slot := ReservedRQ)
//	        pruned.fetchMax(w)                 err := rb.CheckAt(ts) (load pruned)
//	        min := reg.MinActiveRQ()           th.AnnounceRQ(ts)
//	        Truncate(min(w, min))              ... collect at ts ...
//
// Both sides use sequentially consistent atomics, so at least one of
// the cross-reads observes the other's write: either the reader loads
// a pruned watermark >= w (and refuses ts < w with ErrTruncatedHistory
// before touching the structure), or the pruner's MinActiveRQ scan
// observes the reader's ReservedRQ slot (= 0) and truncates nothing.
// Either way a read that proceeds past CheckAt only ever observes
// versions its announced bound protects.
//
// The watermark is intentionally conservative: it rises to the
// *intended* prune point even when MinActiveRQ holds the actual
// truncation lower, so a later read inside (min, w) may refuse where
// it could still have answered. That trades a little availability at
// the retention edge for never returning a wrong-version value.
//
// window is the retention span in timestamp ticks: lowWater follows
// Peek() - window (saturating), so versions younger than the window
// are never offered to Truncate. window == 0 keeps today's behavior —
// prune everything in-flight queries no longer need — which makes NO
// retention promise to historical reads: the watermark follows Peek()
// itself, and only reads at not-yet-pruned timestamps succeed.
type ReadBound struct {
	src    Source
	window TS
	pruned PaddedUint64 // fetch-max high-water mark of intended prune points
}

// NewReadBound wires a watermark over src with the given retention
// window (in source ticks; 0 = no retention guarantee).
func NewReadBound(src Source, window TS) *ReadBound {
	return &ReadBound{src: src, window: window}
}

// Window reports the retention span the bound was built with.
func (rb *ReadBound) Window() TS { return rb.window }

// Pruned reports the published prune watermark: requested timestamps
// strictly below it are refused by CheckAt.
func (rb *ReadBound) Pruned() TS {
	if rb == nil {
		return 0
	}
	return rb.pruned.Load()
}

// lowWater is the newest timestamp the retention window permits
// pruning up to: Peek() - window, saturating at zero. A zero window
// places no retention floor (the low water is "now").
//
// The window is measured in ticks of the CURRENT source generation
// (PayloadOf strips an adaptive source's generation bits; for plain
// sources payload == timestamp). While the current generation is
// younger than the window the low water saturates all the way to zero
// — NOT to the generation floor — because the floor would numerically
// dominate every previous generation's timestamps and instantly expire
// pre-switch history the window still owes. Once the generation ages
// past the window, prior generations fall out of retention together:
// cross-generation tick arithmetic is meaningless, so "older than the
// whole current generation's window" is the honest expiry point.
func (rb *ReadBound) lowWater() TS {
	now := rb.src.Peek()
	if rb.window == 0 {
		return now
	}
	if rb.window >= PayloadOf(now) {
		return 0
	}
	return now - rb.window
}

// PruneBound publishes the intended prune point and returns the bound
// truncation may actually use: min(low water, MinActiveRQ). The
// publish happens BEFORE the announcement-slot scan — see the type
// comment for why that order is the whole correctness argument.
func (rb *ReadBound) PruneBound(reg *Registry) TS {
	w := rb.lowWater()
	for {
		cur := rb.pruned.Load()
		if w <= cur {
			w = cur
			break
		}
		if rb.pruned.CompareAndSwap(cur, w) {
			break
		}
	}
	if min := reg.MinActiveRQ(); min < w {
		w = min
	}
	return w
}

// CheckAt validates a requested historical timestamp against the
// watermark and the source. It must be called AFTER the reader has
// reserved its announcement slot (BeginRQ) for the publish-before-
// prune protocol to hold. Nil-safe: a nil bound accepts everything
// (history-incapable cells are gated at the facade instead).
func (rb *ReadBound) CheckAt(ts TS) error {
	if rb == nil {
		return nil
	}
	if ts > rb.src.Peek() {
		return ErrFutureTimestamp
	}
	if ts < rb.pruned.Load() {
		return ErrTruncatedHistory
	}
	return nil
}

// PruneBoundOf is the structures' truncation bound: the watermark
// protocol when a ReadBound is wired, plain MinActiveRQ when not
// (history-incapable or pre-wiring construction paths).
func PruneBoundOf(rb *ReadBound, reg *Registry) TS {
	if rb == nil {
		return reg.MinActiveRQ()
	}
	return rb.PruneBound(reg)
}

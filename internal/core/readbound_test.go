package core

import (
	"errors"
	"sync"
	"testing"
)

func TestReadBoundWindowArithmetic(t *testing.T) {
	src := NewLogical()
	for src.Peek() < 100 {
		src.Advance()
	}
	reg := NewRegistry(2)

	rb := NewReadBound(src, 30)
	if got := rb.PruneBound(reg); got != 70 {
		t.Fatalf("PruneBound with window 30 at now=100 = %d, want 70", got)
	}
	if got := rb.Pruned(); got != 70 {
		t.Fatalf("published watermark = %d, want 70", got)
	}

	// A window wider than the whole history floors at zero.
	wide := NewReadBound(src, 1000)
	if got := wide.PruneBound(reg); got != 0 {
		t.Fatalf("PruneBound with window 1000 at now=100 = %d, want 0", got)
	}

	// window == 0: no retention promise; the low water is "now".
	none := NewReadBound(src, 0)
	if got := none.PruneBound(reg); got != 100 {
		t.Fatalf("PruneBound with window 0 at now=100 = %d, want 100", got)
	}
}

func TestReadBoundAnnouncedQueryLowersBound(t *testing.T) {
	src := NewLogical()
	for src.Peek() < 100 {
		src.Advance()
	}
	reg := NewRegistry(2)
	th := reg.MustRegister()
	defer th.Release()

	rb := NewReadBound(src, 10)

	// An announced in-flight query below the low water must win.
	th.BeginRQ()
	th.AnnounceRQ(40)
	if got := rb.PruneBound(reg); got != 40 {
		t.Fatalf("PruneBound with announced 40 = %d, want 40", got)
	}
	// The intended (not the actual) point is what gets published.
	if got := rb.Pruned(); got != 90 {
		t.Fatalf("published watermark = %d, want the intended 90", got)
	}
	th.DoneRQ()

	// A reserved (ReservedRQ = 0) slot pins the bound at zero.
	th.BeginRQ()
	if got := rb.PruneBound(reg); got != 0 {
		t.Fatalf("PruneBound with a reserved slot = %d, want 0", got)
	}
	th.DoneRQ()
}

func TestReadBoundWatermarkIsMonotonic(t *testing.T) {
	src := NewLogical()
	for src.Peek() < 100 {
		src.Advance()
	}
	reg := NewRegistry(1)
	rb := NewReadBound(src, 0)
	if got := rb.PruneBound(reg); got != 100 {
		t.Fatalf("first PruneBound = %d, want 100", got)
	}
	// The source does not move; repeated prunes must not lower the mark.
	if got := rb.PruneBound(reg); got != 100 {
		t.Fatalf("second PruneBound = %d, want 100", got)
	}
	if got := rb.Pruned(); got != 100 {
		t.Fatalf("watermark regressed to %d", got)
	}
}

func TestReadBoundCheckAt(t *testing.T) {
	src := NewLogical()
	for src.Peek() < 100 {
		src.Advance()
	}
	reg := NewRegistry(1)
	rb := NewReadBound(src, 30)
	rb.PruneBound(reg) // publish 70

	if err := rb.CheckAt(101); !errors.Is(err, ErrFutureTimestamp) {
		t.Fatalf("CheckAt(101) = %v, want ErrFutureTimestamp", err)
	}
	if err := rb.CheckAt(100); err != nil {
		t.Fatalf("CheckAt(now) = %v, want nil", err)
	}
	if err := rb.CheckAt(70); err != nil {
		t.Fatalf("CheckAt(watermark) = %v, want nil (boundary is inclusive)", err)
	}
	if err := rb.CheckAt(69); !errors.Is(err, ErrTruncatedHistory) {
		t.Fatalf("CheckAt(69) = %v, want ErrTruncatedHistory", err)
	}

	// Nil bound accepts everything (gating happens at the facade).
	var nilRB *ReadBound
	if err := nilRB.CheckAt(0); err != nil {
		t.Fatalf("nil CheckAt = %v, want nil", err)
	}
	if got := nilRB.Pruned(); got != 0 {
		t.Fatalf("nil Pruned = %d, want 0", got)
	}
}

func TestPruneBoundOfNilFallsBackToRegistry(t *testing.T) {
	src := NewLogical()
	reg := NewRegistry(1)
	th := reg.MustRegister()
	defer th.Release()
	th.BeginRQ()
	th.AnnounceRQ(7)
	if got := PruneBoundOf(nil, reg); got != 7 {
		t.Fatalf("PruneBoundOf(nil) = %d, want MinActiveRQ 7", got)
	}
	th.DoneRQ()
	_ = src
}

// TestReadBoundPublishBeforeScan is the protocol's SC-atomics argument
// under the race detector: concurrent readers reserve, check, announce
// and read while a pruner repeatedly publishes and truncates. A reader
// that passed CheckAt(ts) must never find its ts below the bound the
// pruner actually used at that moment — asserted indirectly: every
// PruneBound result must be <= every announced ts that passed CheckAt,
// or the reader must have refused.
func TestReadBoundPublishBeforeScan(t *testing.T) {
	src := NewLogical()
	reg := NewRegistry(4)
	rb := NewReadBound(src, 8)

	var wg, writerWG sync.WaitGroup
	stop := make(chan struct{})
	writerWG.Add(1)
	go func() { // writer: keep time moving
		defer writerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				src.Advance()
			}
		}
	}()

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := reg.MustRegister()
			defer th.Release()
			for i := 0; i < 2000; i++ {
				now := src.Peek()
				ts := TS(0)
				if now > 4 {
					ts = now - 4
				}
				th.BeginRQ()
				if err := rb.CheckAt(ts); err != nil {
					th.DoneRQ()
					continue
				}
				th.AnnounceRQ(ts)
				// Simulated collection: the bound any concurrent pruner
				// computes from here on must not exceed ts.
				if b := rb.PruneBound(th.Registry()); b > ts {
					t.Errorf("prune bound %d passed an announced, checked read at %d", b, ts)
					th.DoneRQ()
					return
				}
				th.DoneRQ()
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
}

package core

import (
	"fmt"
	"sync"
)

// Registry tracks the threads operating on a data structure and the
// timestamp of each thread's in-flight range query. Every ported
// technique needs this for garbage collection: a vCAS version, a bundle
// entry or a limbo-list node may be reclaimed only once no active range
// query could still need it, i.e. once it is older than MinActiveRQ.
//
// Each slot sits on its own cache line pair so announcements never
// contend with one another or with the logical timestamp.
type Registry struct {
	mu    sync.Mutex
	free  []int
	next  int
	slots []PaddedUint64 // Pending = no active range query
}

// DefaultMaxThreads is the registry capacity used by the public facade.
const DefaultMaxThreads = 256

// NewRegistry returns a registry with capacity for maxThreads concurrent
// thread handles.
func NewRegistry(maxThreads int) *Registry {
	if maxThreads <= 0 {
		maxThreads = DefaultMaxThreads
	}
	r := &Registry{slots: make([]PaddedUint64, maxThreads)}
	for i := range r.slots {
		r.slots[i].Store(Pending)
	}
	return r
}

// Cap returns the registry capacity.
func (r *Registry) Cap() int { return len(r.slots) }

// Thread is a per-goroutine handle. Handles are not safe for concurrent
// use by multiple goroutines; each worker registers its own.
type Thread struct {
	// ID is the slot index, usable to index per-thread structures
	// (limbo lists, RCU slots) sized by Registry.Cap.
	ID  int
	reg *Registry
	// released guards against double-release (under reg.mu): pushing the
	// same slot ID onto free twice would hand it to two goroutines, whose
	// racing announcements would silently break the MinActiveRQ
	// reclamation invariant.
	released bool
	// shards, when non-nil, are the per-shard handles this thread fans
	// out to (ShardedRegistry.Register). shards[0] is this thread itself;
	// shards[i] belongs to shard i's registry. Releasing the fronting
	// handle releases every fanned-out handle.
	shards []*Thread
}

// Shard returns the handle to use against shard i's structure. A handle
// with no fan-out (plain Registry.Register) returns itself, so
// single-shard callers need no special casing.
func (t *Thread) Shard(i int) *Thread {
	if t.shards == nil {
		return t
	}
	return t.shards[i]
}

// Fanout reports how many per-shard handles this thread fans out to
// (0 for a plain handle).
func (t *Thread) Fanout() int { return len(t.shards) }

// Register allocates a thread handle, reusing released slots.
func (r *Registry) Register() (*Thread, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var id int
	switch {
	case len(r.free) > 0:
		id = r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
	case r.next < len(r.slots):
		id = r.next
		r.next++
	default:
		return nil, fmt.Errorf("core: registry full (%d threads)", len(r.slots))
	}
	r.slots[id].Store(Pending)
	return &Thread{ID: id, reg: r}, nil
}

// MustRegister is Register for callers that size the registry correctly
// by construction (benchmark harness, examples).
func (r *Registry) MustRegister() *Thread {
	t, err := r.Register()
	if err != nil {
		panic(err)
	}
	return t
}

// Release returns the slot to the registry. The handle must not be used
// afterwards. Release is idempotent: a second call is a no-op, so a slot
// ID can never be pushed onto the free list twice and handed out to two
// goroutines at once. A fanned-out handle releases every per-shard
// handle it fronts.
func (t *Thread) Release() {
	for _, s := range t.shards {
		if s != t {
			s.releaseOne()
		}
	}
	t.releaseOne()
}

// releaseOne returns this handle's own slot to its registry.
func (t *Thread) releaseOne() {
	t.reg.mu.Lock()
	defer t.reg.mu.Unlock()
	if t.released {
		return
	}
	t.released = true
	t.reg.slots[t.ID].Store(Pending)
	t.reg.free = append(t.reg.free, t.ID)
}

// ReservedRQ is the announcement value stored by BeginRQ. It is below
// every real timestamp (sources start at 1), so an in-preparation range
// query blocks all pruning until it publishes its actual timestamp.
const ReservedRQ TS = 0

// BeginRQ reserves this thread's announcement slot *before* the range
// query reads its snapshot timestamp. Without the reservation there is a
// race: a pruner could compute MinActiveRQ between the query obtaining
// its timestamp and announcing it, and reclaim history the query needs.
func (t *Thread) BeginRQ() { t.reg.slots[t.ID].Store(ReservedRQ) }

// AnnounceRQ publishes the timestamp of the range query this thread is
// executing, replacing the BeginRQ reservation. It must remain until
// DoneRQ.
func (t *Thread) AnnounceRQ(ts TS) { t.reg.slots[t.ID].Store(ts) }

// DoneRQ withdraws the announcement.
func (t *Thread) DoneRQ() { t.reg.slots[t.ID].Store(Pending) }

// Registry returns the owning registry.
func (t *Thread) Registry() *Registry { return t.reg }

// MinActiveRQ returns the smallest announced range-query timestamp, or
// Pending when no range query is active. Anything labeled with a
// timestamp strictly below the returned value can no longer be observed
// by any in-flight or future snapshot taken at or after this call
// returns, because future snapshots only receive larger timestamps.
func (r *Registry) MinActiveRQ() TS {
	min := Pending
	for i := range r.slots {
		if v := r.slots[i].Load(); v < min {
			min = v
		}
	}
	return min
}

// ShardedRegistry fronts one Registry per shard of a key-partitioned
// structure. Register hands out a single Thread that fans out to one
// handle per shard, so a worker goroutine still manages exactly one
// handle while each shard keeps its own independent announcement slots —
// the property that lets per-shard reclamation proceed without scanning
// (or contending with) the other shards' announcement arrays.
type ShardedRegistry struct {
	regs []*Registry
}

// NewShardedRegistry builds a registry front-end over shards independent
// per-shard registries, each with capacity maxThreads (DefaultMaxThreads
// when non-positive). shards must be at least 1.
func NewShardedRegistry(shards, maxThreads int) *ShardedRegistry {
	if shards < 1 {
		shards = 1
	}
	r := &ShardedRegistry{regs: make([]*Registry, shards)}
	for i := range r.regs {
		r.regs[i] = NewRegistry(maxThreads)
	}
	return r
}

// Shards returns the shard count.
func (r *ShardedRegistry) Shards() int { return len(r.regs) }

// Shard returns shard i's underlying registry (per-shard structures are
// constructed against it).
func (r *ShardedRegistry) Shard(i int) *Registry { return r.regs[i] }

// Cap returns the per-shard capacity: the number of fronting handles
// that can be live at once.
func (r *ShardedRegistry) Cap() int { return r.regs[0].Cap() }

// Register allocates one handle in every shard's registry and returns
// the shard-0 handle fronting them. On partial exhaustion (some shard
// full) every handle obtained so far is released before the error is
// returned, so a failed registration never leaks slots.
func (r *ShardedRegistry) Register() (*Thread, error) {
	ths := make([]*Thread, len(r.regs))
	for i, reg := range r.regs {
		th, err := reg.Register()
		if err != nil {
			for _, got := range ths[:i] {
				got.releaseOne()
			}
			return nil, fmt.Errorf("core: sharded registry, shard %d of %d: %w",
				i, len(r.regs), err)
		}
		ths[i] = th
	}
	front := ths[0]
	front.shards = ths
	return front, nil
}

// MustRegister is Register for callers that size the registries
// correctly by construction.
func (r *ShardedRegistry) MustRegister() *Thread {
	t, err := r.Register()
	if err != nil {
		panic(err)
	}
	return t
}

package core

import (
	"sync"
	"testing"
	"time"

	"tscds/internal/obs"
)

// Regression: a double Release must not push the slot onto the free list
// twice — that would hand one announcement slot to two goroutines and
// break the MinActiveRQ reclamation invariant.
func TestReleaseIdempotent(t *testing.T) {
	r := NewRegistry(4)
	th, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	th.Release()
	th.Release() // second release must be a no-op
	a := r.MustRegister()
	b := r.MustRegister()
	if a.ID == b.ID {
		t.Fatalf("double release handed slot %d to two threads", a.ID)
	}
	// The freed slot is reused exactly once.
	if a.ID != th.ID && b.ID != th.ID {
		t.Fatalf("released slot %d never reused (got %d, %d)", th.ID, a.ID, b.ID)
	}
}

func TestDoubleReleaseNeverOverfillsRegistry(t *testing.T) {
	r := NewRegistry(2)
	a := r.MustRegister()
	b := r.MustRegister()
	a.Release()
	a.Release()
	b.Release()
	// Only two distinct slots exist; three registrations must fail even
	// after the double release above.
	r.MustRegister()
	r.MustRegister()
	if _, err := r.Register(); err == nil {
		t.Fatal("registry handed out more slots than its capacity")
	}
}

// Exhaustion and reuse: a full registry errors cleanly on the next
// Register, a Release makes exactly that slot available again, and the
// capacity bound still holds afterwards.
func TestRegistryExhaustionAndReuse(t *testing.T) {
	r := NewRegistry(3)
	ths := make([]*Thread, 3)
	for i := range ths {
		th, err := r.Register()
		if err != nil {
			t.Fatalf("register %d of 3: %v", i+1, err)
		}
		ths[i] = th
	}
	if _, err := r.Register(); err == nil {
		t.Fatal("full registry handed out a fourth slot")
	}
	ths[1].Release()
	th, err := r.Register()
	if err != nil {
		t.Fatalf("released slot not reusable: %v", err)
	}
	if th.ID != ths[1].ID {
		t.Fatalf("reuse handed slot %d, want released slot %d", th.ID, ths[1].ID)
	}
	if _, err := r.Register(); err == nil {
		t.Fatal("registry overfilled after reuse")
	}
}

// Race-focused churn over register/announce/release (run with -race; the
// make check target does). Every goroutine loops obtaining a handle,
// announcing a range query through it, and releasing it — with a rogue
// double release thrown in — while a scanner computes MinActiveRQ.
func TestRegistryChurnRace(t *testing.T) {
	const workers = 8
	r := NewRegistry(workers)
	var stop sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		stop.Add(1)
		go func() {
			defer stop.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				th, err := r.Register()
				if err != nil {
					continue // capacity transiently exhausted by churn
				}
				th.BeginRQ()
				th.AnnounceRQ(42)
				th.DoneRQ()
				th.Release()
				th.Release() // regression: must stay a no-op under -race
			}
		}()
	}
	deadline := time.After(200 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(done)
			stop.Wait()
			if got := r.MinActiveRQ(); got != Pending {
				t.Fatalf("MinActiveRQ after quiesce = %d, want Pending", got)
			}
			return
		default:
			_ = r.MinActiveRQ()
		}
	}
}

// Announcement slots released and re-registered must come back Pending so
// a stale announcement can never pin reclamation.
func TestReleasedSlotComesBackPending(t *testing.T) {
	r := NewRegistry(1)
	th := r.MustRegister()
	th.AnnounceRQ(7)
	th.Release()
	if got := r.MinActiveRQ(); got != Pending {
		t.Fatalf("released slot still announces %d", got)
	}
	th2 := r.MustRegister()
	if got := r.MinActiveRQ(); got != Pending {
		t.Fatalf("fresh slot announces %d", got)
	}
	th2.Release()
}

func TestInstrumentSourceCounts(t *testing.T) {
	var st obs.SourceStats
	src := InstrumentSource(New(Logical), &st)
	if src.Kind() != Logical {
		t.Fatalf("kind = %v, want Logical", src.Kind())
	}
	before := src.Peek()
	src.Advance()
	src.Advance()
	src.Snapshot()
	if after := src.Peek(); after <= before {
		t.Fatalf("instrumented source did not advance: %d -> %d", before, after)
	}
	if st.Advances.Load() != 2 || st.Snapshots.Load() != 1 || st.Peeks.Load() != 2 {
		t.Fatalf("counts = advances %d, peeks %d, snapshots %d; want 2, 2, 1",
			st.Advances.Load(), st.Peeks.Load(), st.Snapshots.Load())
	}
}

// Instrumenting a logical source must preserve addressability — lock-free
// EBR-RQ's DCSS validates the timestamp at its address.
func TestInstrumentSourcePreservesAddressable(t *testing.T) {
	var st obs.SourceStats
	src := InstrumentSource(NewLogical(), &st)
	a, ok := src.(Addressable)
	if !ok {
		t.Fatal("instrumented logical source lost Addressable")
	}
	src.Advance()
	if got := a.Addr().Load(); got != src.Peek() {
		t.Fatalf("Addr() tracks %d, Peek says %d", got, src.Peek())
	}
	// Hardware sources have no address before or after wrapping.
	var st2 obs.SourceStats
	if _, ok := InstrumentSource(New(Monotonic), &st2).(Addressable); ok {
		t.Fatal("instrumented hardware source claims Addressable")
	}
}

// A sharded handle must fan out to one live slot per shard, announce
// independently per shard, and release every slot at once.
func TestShardedRegistryFanout(t *testing.T) {
	const shards, cap = 4, 8
	r := NewShardedRegistry(shards, cap)
	if r.Shards() != shards || r.Cap() != cap {
		t.Fatalf("Shards/Cap = %d/%d, want %d/%d", r.Shards(), r.Cap(), shards, cap)
	}
	th := r.MustRegister()
	if th.Fanout() != shards {
		t.Fatalf("Fanout = %d, want %d", th.Fanout(), shards)
	}
	if th.Shard(0) != th {
		t.Fatal("front handle is not shard 0's handle")
	}
	// Announcing on shard 2 pins only shard 2's reclamation horizon.
	th.Shard(2).BeginRQ()
	th.Shard(2).AnnounceRQ(7)
	for i := 0; i < shards; i++ {
		want := Pending
		if i == 2 {
			want = 7
		}
		if got := r.Shard(i).MinActiveRQ(); got != want {
			t.Fatalf("shard %d MinActiveRQ = %d, want %d", i, got, want)
		}
	}
	th.Shard(2).DoneRQ()
	// One front Release returns every shard's slot.
	th.Release()
	th.Release() // and stays idempotent across the fan-out
	for i := 0; i < cap; i++ {
		r.MustRegister() // full capacity available again in every shard
	}
	if _, err := r.Register(); err == nil {
		t.Fatal("register past capacity succeeded")
	}
}

// Partial registration failure (one shard exhausted) must roll back the
// slots already taken in earlier shards.
func TestShardedRegistryRollback(t *testing.T) {
	const shards, cap = 3, 2
	r := NewShardedRegistry(shards, cap)
	// Exhaust shard 1 behind the front-end's back.
	a := r.Shard(1).MustRegister()
	b := r.Shard(1).MustRegister()
	if _, err := r.Register(); err == nil {
		t.Fatal("register with an exhausted shard succeeded")
	}
	a.Release()
	b.Release()
	// The failed attempt must not have leaked shard-0 slots: all cap
	// front handles still fit.
	for i := 0; i < cap; i++ {
		r.MustRegister()
	}
}

// Concurrent register/announce/release churn through the sharded
// fan-out, with MinActiveRQ scans racing on every shard. Mirrors
// TestRegistryChurnRace; run under -race.
func TestShardedRegistryChurnRace(t *testing.T) {
	const shards, workers = 4, 8
	r := NewShardedRegistry(shards, workers)
	var stop sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		stop.Add(1)
		go func() {
			defer stop.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				th, err := r.Register()
				if err != nil {
					continue // capacity transiently exhausted by churn
				}
				for s := 0; s < shards; s++ {
					th.Shard(s).BeginRQ()
					th.Shard(s).AnnounceRQ(42)
					th.Shard(s).DoneRQ()
				}
				th.Release()
				th.Release() // regression: must stay a no-op under -race
			}
		}()
	}
	deadline := time.After(200 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(done)
			stop.Wait()
			for s := 0; s < shards; s++ {
				if got := r.Shard(s).MinActiveRQ(); got != Pending {
					t.Fatalf("shard %d MinActiveRQ after quiesce = %d, want Pending", s, got)
				}
			}
			return
		default:
			for s := 0; s < shards; s++ {
				_ = r.Shard(s).MinActiveRQ()
			}
		}
	}
}

package core

import (
	"sync/atomic"

	"tscds/internal/tsc"
)

// LogicalSource is the baseline: a single shared counter on its own cache
// line. Advance is a fetch-and-add — the single point of contention the
// paper identifies — and Peek is an atomic load.
type LogicalSource struct {
	c PaddedUint64
}

// NewLogical returns a logical source starting at 1 (0 is reserved as
// "before all snapshots" by the data structures).
func NewLogical() *LogicalSource {
	s := &LogicalSource{}
	s.c.Store(1)
	return s
}

// Advance increments the counter and returns the new value.
func (s *LogicalSource) Advance() TS { return s.c.Add(1) }

// Addr exposes the counter's memory address. Lock-free EBR-RQ needs this
// for its DCSS (the swap only succeeds if the timestamp at this address
// is unchanged) — which is precisely why, per the paper §IV, that
// algorithm cannot be ported to hardware timestamps: a TSC value has no
// address to validate.
func (s *LogicalSource) Addr() *atomic.Uint64 { return s.c.Raw() }

// Addressable is implemented by sources whose timestamp lives at a
// memory address (only LogicalSource). Algorithms that validate the
// timestamp's value over time (lock-free EBR-RQ) require it.
type Addressable interface {
	Source
	Addr() *atomic.Uint64
}

// Peek loads the counter.
func (s *LogicalSource) Peek() TS { return s.c.Load() }

// Snapshot advances the counter and returns the pre-increment value, so
// every label taken after the snapshot is strictly newer than the bound.
func (s *LogicalSource) Snapshot() TS { return s.c.Add(1) - 1 }

// Kind reports Logical.
func (s *LogicalSource) Kind() Kind { return Logical }

// hwSource reads a per-core counter; Advance and Peek are the same read.
type hwSource struct {
	kind Kind
	read func() uint64
}

func (s *hwSource) Advance() TS  { return s.read() }
func (s *hwSource) Peek() TS     { return s.read() }
func (s *hwSource) Snapshot() TS { return s.read() }
func (s *hwSource) Kind() Kind   { return s.kind }

// New returns a Source of the requested kind. Hardware kinds silently use
// the monotonic fallback when the host lacks the needed instructions (the
// tsc package handles that), so callers can always construct any kind.
func New(k Kind) Source {
	switch k {
	case Logical:
		return NewLogical()
	case TSC:
		return &hwSource{kind: k, read: tsc.ReadFenced}
	case TSCUnfenced:
		return &hwSource{kind: k, read: tsc.ReadP}
	case TSCCPUID:
		return &hwSource{kind: k, read: tsc.ReadCPUID}
	case TSCRaw:
		return &hwSource{kind: k, read: tsc.Read}
	case Monotonic:
		return &hwSource{kind: k, read: tsc.Monotonic}
	}
	panic("core: unknown source kind")
}

// Best returns the preferred hardware source for this host: fenced RDTSCP
// when the CPU advertises invariant TSC, otherwise the monotonic clock.
// This mirrors the paper's guidance that invariant TSC is the property
// that makes cross-core timestamp comparison sound.
func Best() Source {
	if tsc.Supported() && tsc.Invariant() {
		return New(TSC)
	}
	return New(Monotonic)
}

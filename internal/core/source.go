package core

import (
	"sync/atomic"

	"tscds/internal/tsc"
)

// LogicalSource is the baseline: a single shared counter on its own cache
// line. Advance is a fetch-and-add — the single point of contention the
// paper identifies — and Peek is an atomic load.
type LogicalSource struct {
	c PaddedUint64
}

// NewLogical returns a logical source starting at 1 (0 is reserved as
// "before all snapshots" by the data structures).
func NewLogical() *LogicalSource {
	s := &LogicalSource{}
	s.c.Store(1)
	return s
}

// Advance increments the counter and returns the new value.
func (s *LogicalSource) Advance() TS { return s.c.Add(1) }

// Addr exposes the counter's memory address. Lock-free EBR-RQ needs this
// for its DCSS (the swap only succeeds if the timestamp at this address
// is unchanged) — which is precisely why, per the paper §IV, that
// algorithm cannot be ported to hardware timestamps: a TSC value has no
// address to validate.
func (s *LogicalSource) Addr() *atomic.Uint64 { return s.c.Raw() }

// Addressable is implemented by sources whose timestamp lives at a
// memory address (only LogicalSource). Algorithms that validate the
// timestamp's value over time (lock-free EBR-RQ) require it.
type Addressable interface {
	Source
	Addr() *atomic.Uint64
}

// Peek loads the counter.
func (s *LogicalSource) Peek() TS { return s.c.Load() }

// Snapshot advances the counter and returns the pre-increment value, so
// every label taken after the snapshot is strictly newer than the bound.
func (s *LogicalSource) Snapshot() TS { return s.c.Add(1) - 1 }

// Kind reports Logical.
func (s *LogicalSource) Kind() Kind { return Logical }

// hwSource reads a per-core counter; Advance and Peek are the same read.
type hwSource struct {
	kind Kind
	read func() uint64
}

func (s *hwSource) Advance() TS  { return s.read() }
func (s *hwSource) Peek() TS     { return s.read() }
func (s *hwSource) Snapshot() TS { return s.read() }
func (s *hwSource) Kind() Kind   { return s.kind }

// Actual reports what s.read actually hits on this host, which is not
// necessarily s.kind: the tsc package degrades unavailable instruction
// sequences to the closest available read (ultimately the monotonic
// clock). See Actual.
func (s *hwSource) Actual() Kind { return actualFor(s.kind) }

// actualFor maps a requested hardware kind to the kind whose semantics
// the tsc accessors really deliver on this host. Mirrors the fallback
// chains in tsc's per-arch files.
func actualFor(k Kind) Kind {
	switch k {
	case TSC:
		// ReadFenced needs RDTSCP; without it the accessor serves the
		// monotonic clock.
		if !tsc.Supported() {
			return Monotonic
		}
	case TSCUnfenced:
		// ReadP degrades to bare RDTSC without RDTSCP, and to the
		// monotonic clock without any counter.
		if !tsc.HasCounter() {
			return Monotonic
		}
		if !tsc.Supported() {
			return TSCRaw
		}
	case TSCCPUID, TSCRaw:
		// Real whenever the architecture has a counter at all.
		if !tsc.HasCounter() {
			return Monotonic
		}
	}
	return k
}

// actualReporter is implemented by sources that can disclose the kind
// actually serving reads (hwSource, AdaptiveSource, and the
// instrumentation wrappers).
type actualReporter interface{ Actual() Kind }

// Actual reports the kind actually serving s's reads. For hardware
// kinds on hosts missing the needed instructions this differs from
// s.Kind() — the silent-fallback case that used to mislabel monotonic
// numbers as RDTSCP in benchmark output. Sources that cannot introspect
// are taken at their word.
func Actual(s Source) Kind {
	if a, ok := s.(actualReporter); ok {
		return a.Actual()
	}
	return s.Kind()
}

// New returns a Source of the requested kind. Hardware kinds use the
// monotonic fallback when the host lacks the needed instructions (the
// tsc package handles that), so callers can always construct any kind —
// but the substitution is disclosed via Actual, never silent.
// New(Adaptive) builds an AdaptiveSource with no health monitor (it
// stays on hardware); use NewAdaptive to wire one.
func New(k Kind) Source {
	switch k {
	case Logical:
		return NewLogical()
	case TSC:
		return &hwSource{kind: k, read: tsc.ReadFenced}
	case TSCUnfenced:
		return &hwSource{kind: k, read: tsc.ReadP}
	case TSCCPUID:
		return &hwSource{kind: k, read: tsc.ReadCPUID}
	case TSCRaw:
		return &hwSource{kind: k, read: tsc.Read}
	case Monotonic:
		return &hwSource{kind: k, read: tsc.Monotonic}
	case Adaptive:
		return NewAdaptive(AdaptiveConfig{})
	}
	panic("core: unknown source kind")
}

// Best returns the preferred hardware source for this host: fenced RDTSCP
// when the CPU advertises invariant TSC, otherwise the monotonic clock.
// This mirrors the paper's guidance that invariant TSC is the property
// that makes cross-core timestamp comparison sound.
func Best() Source {
	if tsc.Supported() && tsc.Invariant() {
		return New(TSC)
	}
	return New(Monotonic)
}

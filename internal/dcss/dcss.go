// Package dcss implements the double-compare-single-swap primitive of
// Harris, Fraser and Pratt ("A practical multi-word compare-and-swap
// operation", DISC 2002), restricted to the two-address form that
// lock-free EBR-RQ needs: atomically store n2 into address a2 if and only
// if a2 currently holds e2 AND a separate address a1 holds e1.
//
// In EBR-RQ, a1 is the global logical timestamp and a2 is a node's
// insertion/deletion label; the primitive makes (read timestamp, label
// node) atomic without locks. Because it fundamentally validates a value
// *at an address*, it is the construct the paper identifies as
// incompatible with hardware timestamps.
//
// A Word holds a 63-bit value: bit 63 is reserved to mark the word as
// occupied by an in-flight DCSS descriptor. The marked representation
// keeps the plain operations (Read, Store, CAS) allocation-free — they
// are the per-update label traffic of the lock-based variant, where no
// descriptor ever appears — while DCSS allocates one descriptor per
// attempt, the price of a helping protocol whose descriptors may be held
// by stalled helpers indefinitely.
//
// Readers encountering a mark help the descriptor complete and retry, so
// a stalled writer never blocks progress — with one caveat: a writer
// preempted between installing its mark and publishing its descriptor
// leaves helpers spinning for the duration of the preemption. The window
// is one store wide; it trades the strict lock-freedom of a boxed-cell
// representation for allocation-free plain operations.
package dcss

import "sync/atomic"

// MaxValue is the largest value a Word can hold; bit 63 is reserved for
// in-flight descriptor marks.
const MaxValue = 1<<63 - 1

const markBit = uint64(1) << 63

func marked(x uint64) bool { return x&markBit != 0 }

// Word is a 63-bit location supporting Read, CAS and DCSS with helping.
// The zero value holds 0. Values with bit 63 set are reserved and must
// not be stored.
type Word struct {
	v atomic.Uint64 // plain value, or markBit|seq while a DCSS is in flight
	d atomic.Pointer[descriptor]
	// seq makes every mark unique across the Word's lifetime, so a slow
	// helper holding an old descriptor can never apply its outcome over a
	// newer operation's mark.
	seq atomic.Uint64
}

const (
	undecided uint32 = iota
	succeeded
	failed
)

type descriptor struct {
	a1     *atomic.Uint64
	e1     uint64
	e2, n2 uint64
	mark   uint64
	status atomic.Uint32
}

// help resolves the in-flight operation whose mark x the caller observed
// in the word. It returns when the word no longer holds x.
func (w *Word) help(x uint64) {
	for w.v.Load() == x {
		d := w.d.Load()
		if d == nil || d.mark != x {
			// The owner installed its mark but has not yet published the
			// descriptor (or a stale descriptor from a completed operation
			// lingers). Re-check the word; the publish is one store away.
			continue
		}
		w.complete(d)
	}
}

// complete decides the descriptor's outcome exactly once (status CAS)
// and removes its mark from the word. The decision is taken while the
// word provably holds d.mark — i.e. while it is frozen at e2 — which is
// the operation's linearization point. Safe to call from any helper.
func (w *Word) complete(d *descriptor) {
	if d.status.Load() == undecided && w.v.Load() == d.mark {
		if d.a1.Load() == d.e1 {
			d.status.CompareAndSwap(undecided, succeeded)
		} else {
			d.status.CompareAndSwap(undecided, failed)
		}
	}
	out := d.e2
	if d.status.Load() == succeeded {
		out = d.n2
	}
	w.v.CompareAndSwap(d.mark, out)
	w.d.CompareAndSwap(d, nil)
}

// Read returns the word's current value, helping any in-flight DCSS
// complete first.
func (w *Word) Read() uint64 {
	for {
		x := w.v.Load()
		if !marked(x) {
			return x
		}
		w.help(x)
	}
}

// Store unconditionally sets the value, helping in-flight operations so
// their outcome is decided before being overwritten. Intended for
// initialization and single-writer phases. Allocation-free.
func (w *Word) Store(v uint64) {
	for {
		x := w.v.Load()
		if marked(x) {
			w.help(x)
			continue
		}
		if w.v.CompareAndSwap(x, v) {
			return
		}
	}
}

// CAS atomically replaces old with new, helping in-flight DCSS
// operations. It returns false if the current value differs from old.
// Allocation-free.
func (w *Word) CAS(old, new uint64) bool {
	for {
		x := w.v.Load()
		if marked(x) {
			w.help(x)
			continue
		}
		if x != old {
			return false
		}
		if w.v.CompareAndSwap(old, new) {
			return true
		}
	}
}

// DCSS stores n2 into the word iff the word holds e2 and *a1 == e1, all
// atomically. It returns the value observed in the word and whether the
// swap took effect. A false return with cur == e2 means the first
// comparand (a1) had moved — the retry signal EBR-RQ updates act on.
func (w *Word) DCSS(a1 *atomic.Uint64, e1, e2, n2 uint64) (cur uint64, ok bool) {
	d := &descriptor{a1: a1, e1: e1, e2: e2, n2: n2}
	for {
		x := w.v.Load()
		if marked(x) {
			w.help(x)
			continue
		}
		if x != e2 {
			return x, false
		}
		d.mark = markBit | (w.seq.Add(1) &^ markBit)
		if !w.v.CompareAndSwap(e2, d.mark) {
			continue // the word moved under us; re-validate
		}
		// The word is frozen at our mark; publish the descriptor so
		// helpers can resolve it, then complete it ourselves.
		w.d.Store(d)
		w.complete(d)
		return e2, d.status.Load() == succeeded
	}
}

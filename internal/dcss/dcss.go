// Package dcss implements the double-compare-single-swap primitive of
// Harris, Fraser and Pratt ("A practical multi-word compare-and-swap
// operation", DISC 2002), restricted to the two-address form that
// lock-free EBR-RQ needs: atomically store n2 into address a2 if and only
// if a2 currently holds e2 AND a separate address a1 holds e1.
//
// In EBR-RQ, a1 is the global logical timestamp and a2 is a node's
// insertion/deletion label; the primitive makes (read timestamp, label
// node) atomic without locks. Because it fundamentally validates a value
// *at an address*, it is the construct the paper identifies as
// incompatible with hardware timestamps.
//
// Words are lock-free: readers encountering an in-flight descriptor help
// complete it and retry, so a stalled writer never blocks progress.
package dcss

import "sync/atomic"

// Word is a 64-bit location supporting Read, CAS and DCSS with helping.
// The zero value holds 0.
type Word struct {
	p atomic.Pointer[cell]
}

// cell boxes either a plain value (desc == nil) or an in-flight DCSS
// descriptor occupying the word.
type cell struct {
	val  uint64
	desc *descriptor
}

const (
	undecided uint32 = iota
	succeeded
	failed
)

type descriptor struct {
	a1     *atomic.Uint64
	e1     uint64
	w      *Word
	e2, n2 uint64
	status atomic.Uint32
}

// Read returns the word's current value, helping any in-flight DCSS
// complete first.
func (w *Word) Read() uint64 {
	for {
		p := w.p.Load()
		if p == nil {
			return 0
		}
		if p.desc == nil {
			return p.val
		}
		p.desc.complete(p)
	}
}

// Store unconditionally sets the value, helping in-flight operations so
// their outcome is decided before being overwritten. Intended for
// initialization and single-writer phases.
func (w *Word) Store(v uint64) {
	nc := &cell{val: v}
	for {
		p := w.p.Load()
		if p != nil && p.desc != nil {
			p.desc.complete(p)
			continue
		}
		if w.p.CompareAndSwap(p, nc) {
			return
		}
	}
}

// CAS atomically replaces old with new, helping in-flight DCSS
// operations. It returns false if the current value differs from old.
func (w *Word) CAS(old, new uint64) bool {
	nc := &cell{val: new}
	for {
		p := w.p.Load()
		cur := uint64(0)
		if p != nil {
			if p.desc != nil {
				p.desc.complete(p)
				continue
			}
			cur = p.val
		}
		if cur != old {
			return false
		}
		if w.p.CompareAndSwap(p, nc) {
			return true
		}
	}
}

// DCSS stores n2 into the word iff the word holds e2 and *a1 == e1, all
// atomically. It returns the value observed in the word and whether the
// swap took effect. A false return with cur == e2 means the first
// comparand (a1) had moved — the retry signal EBR-RQ updates act on.
func (w *Word) DCSS(a1 *atomic.Uint64, e1, e2, n2 uint64) (cur uint64, ok bool) {
	d := &descriptor{a1: a1, e1: e1, w: w, e2: e2, n2: n2}
	holder := &cell{val: e2, desc: d}
	for {
		p := w.p.Load()
		val := uint64(0)
		if p != nil {
			if p.desc != nil {
				p.desc.complete(p)
				continue
			}
			val = p.val
		}
		if val != e2 {
			return val, false
		}
		if !w.p.CompareAndSwap(p, holder) {
			continue
		}
		d.complete(holder)
		return e2, d.status.Load() == succeeded
	}
}

// complete resolves the descriptor's outcome exactly once (status CAS)
// and removes it from the word. Safe to call from any helper; holder is
// the cell through which the caller observed the descriptor.
func (d *descriptor) complete(holder *cell) {
	if d.status.Load() == undecided {
		if d.a1.Load() == d.e1 {
			d.status.CompareAndSwap(undecided, succeeded)
		} else {
			d.status.CompareAndSwap(undecided, failed)
		}
	}
	out := d.e2
	if d.status.Load() == succeeded {
		out = d.n2
	}
	d.w.p.CompareAndSwap(holder, &cell{val: out})
}

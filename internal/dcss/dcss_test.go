package dcss

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestZeroValueReadsZero(t *testing.T) {
	var w Word
	if got := w.Read(); got != 0 {
		t.Fatalf("zero Word reads %d", got)
	}
}

func TestStoreRead(t *testing.T) {
	var w Word
	w.Store(42)
	if got := w.Read(); got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
}

func TestCASSemantics(t *testing.T) {
	var w Word
	if !w.CAS(0, 5) {
		t.Fatal("CAS(0,5) on zero word failed")
	}
	if w.CAS(0, 9) {
		t.Fatal("CAS(0,9) succeeded with stale expected")
	}
	if !w.CAS(5, 9) || w.Read() != 9 {
		t.Fatal("CAS(5,9) failed")
	}
}

func TestDCSSBothMatch(t *testing.T) {
	var guard atomic.Uint64
	guard.Store(7)
	var w Word
	w.Store(100)
	cur, ok := w.DCSS(&guard, 7, 100, 200)
	if !ok || cur != 100 {
		t.Fatalf("DCSS = (%d,%v), want (100,true)", cur, ok)
	}
	if w.Read() != 200 {
		t.Fatalf("word = %d after successful DCSS, want 200", w.Read())
	}
}

func TestDCSSGuardMismatch(t *testing.T) {
	var guard atomic.Uint64
	guard.Store(8)
	var w Word
	w.Store(100)
	cur, ok := w.DCSS(&guard, 7, 100, 200)
	if ok {
		t.Fatal("DCSS succeeded despite guard mismatch")
	}
	if cur != 100 {
		t.Fatalf("cur = %d, want 100 (word value matched)", cur)
	}
	if w.Read() != 100 {
		t.Fatalf("word changed to %d despite failed DCSS", w.Read())
	}
}

func TestDCSSWordMismatch(t *testing.T) {
	var guard atomic.Uint64
	guard.Store(7)
	var w Word
	w.Store(99)
	cur, ok := w.DCSS(&guard, 7, 100, 200)
	if ok || cur != 99 {
		t.Fatalf("DCSS = (%d,%v), want (99,false)", cur, ok)
	}
}

// Concurrent increments via DCSS where the guard never changes must
// behave exactly like CAS increments: no lost updates.
func TestDCSSConcurrentIncrement(t *testing.T) {
	var guard atomic.Uint64
	guard.Store(1)
	var w Word
	const gs = 8
	const per = 5000
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					cur := w.Read()
					if _, ok := w.DCSS(&guard, 1, cur, cur+1); ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := w.Read(); got != gs*per {
		t.Fatalf("final = %d, want %d", got, gs*per)
	}
}

// While the guard flips, successful DCSS operations only ever happen when
// the guard holds the expected value at the linearization point; the test
// checks the weaker but observable invariant that failed swaps never
// mutate the word and the word only ever takes values written by
// successful swaps.
func TestDCSSGuardFlipsNoGhostWrites(t *testing.T) {
	var guard atomic.Uint64
	var w Word
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				guard.Add(1)
			}
		}
	}()
	written := map[uint64]bool{0: true}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(1); i <= 2000; i++ {
				v := seed*1_000_000 + i
				cur := w.Read()
				e1 := guard.Load()
				if _, ok := w.DCSS(&guard, e1, cur, v); ok {
					mu.Lock()
					written[v] = true
					mu.Unlock()
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	close(stop)
	if got := w.Read(); !written[got] {
		t.Fatalf("word holds %d, which no successful DCSS wrote", got)
	}
}

// Readers helping in-flight descriptors must never observe the
// descriptor itself, only plain before/after values.
func TestReadersSeeOnlyPlainValues(t *testing.T) {
	var guard atomic.Uint64
	guard.Store(1)
	var w Word
	w.Store(10)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					v := w.Read()
					if v != 10 && v != 20 {
						t.Errorf("reader saw impossible value %d", v)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 50000; i++ {
		w.DCSS(&guard, 1, 10, 20)
		w.DCSS(&guard, 1, 20, 10)
	}
	close(stop)
	wg.Wait()
}

// Property: a sequential DCSS behaves as its specification dictates for
// arbitrary values.
func TestDCSSSequentialProperty(t *testing.T) {
	f := func(initW, initG, e1, e2, n2 uint64) bool {
		initW &= MaxValue // bit 63 is reserved for descriptor marks
		e2 &= MaxValue
		n2 &= MaxValue
		var g atomic.Uint64
		g.Store(initG)
		var w Word
		w.Store(initW)
		cur, ok := w.DCSS(&g, e1, e2, n2)
		wantOK := initW == e2 && initG == e1
		if ok != wantOK || cur != initW {
			return false
		}
		want := initW
		if wantOK {
			want = n2
		}
		return w.Read() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDCSSUncontended(b *testing.B) {
	var g atomic.Uint64
	g.Store(1)
	var w Word
	w.Store(0)
	for i := 0; i < b.N; i++ {
		w.DCSS(&g, 1, uint64(i), uint64(i+1))
	}
}

func BenchmarkWordCAS(b *testing.B) {
	var w Word
	for i := 0; i < b.N; i++ {
		w.CAS(uint64(i), uint64(i+1))
	}
}

// Store must help an in-flight descriptor rather than clobber it, so
// the DCSS outcome stays decided and consistent.
func TestStoreHelpsInFlightDescriptor(t *testing.T) {
	var guard atomic.Uint64
	guard.Store(1)
	var w Word
	w.Store(10)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cur := w.Read()
			w.DCSS(&guard, 1, cur, cur+1)
		}
	}()
	for i := 0; i < 20000; i++ {
		w.Store(uint64(1000000 + i))
		if v := w.Read(); v < 10 {
			t.Fatalf("impossible value %d", v)
		}
	}
	close(stop)
	wg.Wait()
}

// A failed DCSS against a moved word reports the observed value.
func TestDCSSReportsObservedValue(t *testing.T) {
	var guard atomic.Uint64
	guard.Store(1)
	var w Word
	w.Store(5)
	cur, ok := w.DCSS(&guard, 1, 99, 100)
	if ok || cur != 5 {
		t.Fatalf("DCSS = (%d,%v), want (5,false)", cur, ok)
	}
}

package ebrrq

import (
	"testing"

	"tscds/internal/core"
)

// Boundary tie-break regression for EBR-RQ visibility. A hardware
// Source.Snapshot can return a value EQUAL to a concurrent operation's
// label (unlike LogicalSource, whose pre-increment Snapshot guarantees
// strictly newer labels), so the <=/> choices in VisibleAt are
// load-bearing: an insert labeled exactly s IS in the snapshot at s,
// and a delete labeled exactly s REMOVES the node from the snapshot at
// s — a tie always linearizes the update before the query. This table
// pins those inequalities so a future edit cannot silently flip one.
func TestVisibleAtBoundaryTieBreak(t *testing.T) {
	const s = core.TS(5)
	cases := []struct {
		name         string
		itime, dtime core.TS
		want         bool
	}{
		{"insert before bound, alive", 4, core.Pending, true},
		{"insert ties bound, alive", 5, core.Pending, true},
		{"insert after bound", 6, core.Pending, false},
		{"insert pending (linearizes after s)", core.Pending, core.Pending, false},
		{"delete before bound", 4, 4, false},
		{"delete ties bound", 5, 5, false},
		{"delete just after bound", 5, 6, true},
		{"delete pending (node alive at s)", 5, core.Pending, true},
		{"insert and delete both tie", 5, 5, false},
	}
	for _, c := range cases {
		if got := VisibleAt(c.itime, c.dtime, s); got != c.want {
			t.Errorf("%s: VisibleAt(%d, %d, %d) = %v, want %v",
				c.name, c.itime, c.dtime, s, got, c.want)
		}
	}
}

// TestVisibleAtHistoricalBound documents why EBR-RQ cannot serve
// time-travel reads even though VisibleAt itself evaluates correctly at
// any past bound: visibility is a predicate over a node's OWN lifetime
// stamps, with the same inclusive tie rule at every s. What EBR-RQ does
// not retain is reachability — a deleted node moves to a limbo list the
// traversal never visits, and an overwrite keeps no previous value at
// all. So a read at past s would evaluate VisibleAt over only the nodes
// still linked, silently missing everything history has let go, which
// is why the facade refuses those cells with ErrHistoryUnsupported
// rather than returning a partial past.
func TestVisibleAtHistoricalBound(t *testing.T) {
	// A node that lived over [2, 6): the predicate answers correctly at
	// every bound of its lifetime, before it, at the ties, and after —
	// IF the traversal can still reach the node.
	const itime, dtime = core.TS(2), core.TS(6)
	cases := []struct {
		s    core.TS
		want bool
	}{
		{1, false}, // before the insert
		{2, true},  // insert ties the bound: included
		{5, true},
		{6, false}, // delete ties the bound: excluded
		{7, false},
	}
	for _, c := range cases {
		if got := VisibleAt(itime, dtime, c.s); got != c.want {
			t.Errorf("VisibleAt(%d, %d, s=%d) = %v, want %v", itime, dtime, c.s, got, c.want)
		}
	}
}

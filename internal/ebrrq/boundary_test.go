package ebrrq

import (
	"testing"

	"tscds/internal/core"
)

// Boundary tie-break regression for EBR-RQ visibility. A hardware
// Source.Snapshot can return a value EQUAL to a concurrent operation's
// label (unlike LogicalSource, whose pre-increment Snapshot guarantees
// strictly newer labels), so the <=/> choices in VisibleAt are
// load-bearing: an insert labeled exactly s IS in the snapshot at s,
// and a delete labeled exactly s REMOVES the node from the snapshot at
// s — a tie always linearizes the update before the query. This table
// pins those inequalities so a future edit cannot silently flip one.
func TestVisibleAtBoundaryTieBreak(t *testing.T) {
	const s = core.TS(5)
	cases := []struct {
		name         string
		itime, dtime core.TS
		want         bool
	}{
		{"insert before bound, alive", 4, core.Pending, true},
		{"insert ties bound, alive", 5, core.Pending, true},
		{"insert after bound", 6, core.Pending, false},
		{"insert pending (linearizes after s)", core.Pending, core.Pending, false},
		{"delete before bound", 4, 4, false},
		{"delete ties bound", 5, 5, false},
		{"delete just after bound", 5, 6, true},
		{"delete pending (node alive at s)", 5, core.Pending, true},
		{"insert and delete both tie", 5, 5, false},
	}
	for _, c := range cases {
		if got := VisibleAt(c.itime, c.dtime, s); got != c.want {
			t.Errorf("%s: VisibleAt(%d, %d, %d) = %v, want %v",
				c.name, c.itime, c.dtime, s, got, c.want)
		}
	}
}

// Package ebrrq implements the timestamp machinery of EBR-RQ
// (Arbel-Raviv & Brown, "Harnessing epoch-based reclamation for efficient
// range queries", PPoPP 2018), the technique whose coarse-grained
// timestamp labeling the paper shows cannot profit from hardware
// timestamps (§IV, Figure 4).
//
// EBR-RQ tags every node with an insertion and a deletion timestamp, and
// requires that an update's (read timestamp, write label) pair executes
// atomically:
//
//   - The lock-based variant holds a global readers-writer lock in shared
//     mode around the pair, while a range query acquires it exclusively
//     to advance the timestamp and linearize. Porting to TSC replaces the
//     counter accesses with RDTSCP reads but must RETAIN the lock — so
//     the lock, not the counter, remains the bottleneck, which is the
//     paper's central negative result.
//
//   - The lock-free variant uses DCSS: the label write succeeds only if
//     the global timestamp still holds the value read. Because DCSS
//     validates the timestamp at an address, this variant is
//     fundamentally incompatible with TSC; NewLockFree returns
//     ErrRequiresAddress for hardware sources.
//
// A range query at bound s includes a node iff its insertion label is
// assigned and <= s, and its deletion label is unassigned or > s; the
// deleted-but-included nodes are found by scanning the EBR limbo lists
// (package epoch).
package ebrrq

import (
	"errors"
	"sync"
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/dcss"
	"tscds/internal/obs/trace"
)

// ErrRequiresAddress is returned when the lock-free variant is asked to
// use a hardware timestamp: DCSS must validate the timestamp's value at
// its address, and a TSC read has no address. This pins the paper's
// finding that lock-free EBR-RQ "prevents the use of TSC altogether".
var ErrRequiresAddress = errors.New(
	"ebrrq: lock-free EBR-RQ requires an addressable (logical) timestamp; " +
		"hardware timestamps cannot be validated by DCSS")

// Variant selects the labeling implementation.
type Variant int

const (
	// LockBased protects (read, label) with a global RW lock.
	LockBased Variant = iota
	// LockFree makes (read, label) atomic via DCSS.
	LockFree
)

// Label is a node's insertion or deletion timestamp field. It starts
// unassigned and is assigned exactly once. Reads help in-flight DCSS
// labelings complete, so a range query never observes an undecided
// label in the lock-free variant.
type Label struct {
	w dcss.Word
}

// pendingWord encodes core.Pending inside the dcss word, whose top bit
// is reserved for descriptor marks (core.Pending has it set). It is the
// largest storable value, so any real timestamp — logical counters and
// raw TSC reads alike stay far below 2^63 — orders strictly below it.
const pendingWord = uint64(dcss.MaxValue)

// Init marks the label unassigned. Must run before the node is
// published. Allocation-free, so labels in pooled nodes reset without
// heap traffic.
func (l *Label) Init() { l.w.Store(pendingWord) }

// Get returns the label, or core.Pending if unassigned.
func (l *Label) Get() core.TS {
	v := l.w.Read()
	if v == pendingWord {
		return core.Pending
	}
	return core.TS(v)
}

// Assigned reports whether the label has been set.
func (l *Label) Assigned() bool { return l.Get() != core.Pending }

// Provider issues snapshot bounds to range queries and labels nodes on
// behalf of updates, with the variant's atomicity discipline.
type Provider struct {
	variant Variant
	src     core.Source
	mu      sync.RWMutex
	addr    *atomic.Uint64 // lock-free only
	tr      *trace.Recorder
}

// SetTrace attaches a flight recorder. Label runs in helping paths with
// no thread identity, so the provider reports through the recorder's
// shared aggregates (lock-wait and label spans, DCSS retry counts). A
// nil recorder (the default) keeps the hot paths on their current cost.
func (p *Provider) SetTrace(tr *trace.Recorder) { p.tr = tr }

// NewLockBased returns the readers-writer-lock variant over any source.
// With a hardware source the lock is retained, as the algorithm requires.
func NewLockBased(src core.Source) *Provider {
	return &Provider{variant: LockBased, src: src}
}

// NewLockFree returns the DCSS variant. The source must be addressable
// (logical); hardware sources yield ErrRequiresAddress.
func NewLockFree(src core.Source) (*Provider, error) {
	a, ok := src.(core.Addressable)
	if !ok {
		return nil, ErrRequiresAddress
	}
	return &Provider{variant: LockFree, src: src, addr: a.Addr()}, nil
}

// Variant reports the labeling discipline in use.
func (p *Provider) Variant() Variant { return p.variant }

// Source reports the underlying timestamp source.
func (p *Provider) Source() core.Source { return p.src }

// Snapshot returns the range query's linearization bound s. Labels
// assigned by updates that linearize later are strictly greater than s
// (up to the theoretical TSC tie of §III-A).
func (p *Provider) Snapshot() core.TS {
	p.RQLock()
	s := p.src.Snapshot()
	p.RQUnlock()
	return s
}

// RQLock acquires the range-query side of the labeling discipline: in
// the lock-based variant the exclusive half of the readers-writer lock,
// which waits out every in-flight (read, label) pair so that labels
// assigned after the caller reads its snapshot bound are at least that
// bound. A no-op in the lock-free variant, whose DCSS validates the
// bound at its address instead.
//
// Cross-shard range queries use the split pair directly: they RQLock
// every overlapping shard's provider (in shard order, so concurrent
// fan-outs cannot deadlock), read one shared timestamp, and RQUnlock —
// extending the single-structure atomicity argument to a common
// snapshot instant. Single-shard queries use Snapshot, which wraps the
// pair around its own source read.
func (p *Provider) RQLock() {
	if p.variant != LockBased {
		return
	}
	if p.tr != nil {
		w := p.tr.Now()
		p.mu.Lock()
		p.tr.SharedSpan(trace.PhaseLockWait, w)
		return
	}
	p.mu.Lock()
}

// RQUnlock releases what RQLock acquired (a no-op in the lock-free
// variant).
func (p *Provider) RQUnlock() {
	if p.variant != LockBased {
		return
	}
	p.mu.Unlock()
}

// Label assigns the current timestamp to l atomically with reading it,
// returning the assigned value. Labels are assigned exactly once: when
// helpers race, the first assignment wins and everyone returns it, so
// observers never see a label change.
func (p *Provider) Label(l *Label) core.TS {
	if v := l.Get(); v != core.Pending {
		return v // already linearized by a helper; no lock traffic
	}
	if p.variant == LockBased {
		if p.tr != nil {
			// Split the pair for the recorder: time to get into the lock's
			// shared section (the paper's bottleneck) vs. the labeling
			// itself.
			w := p.tr.Now()
			p.mu.RLock()
			p.tr.SharedSpan(trace.PhaseLockWait, w)
			lb := p.tr.Now()
			t := p.src.Peek()
			if !l.w.CAS(pendingWord, uint64(t)) {
				t = l.Get()
			}
			p.mu.RUnlock()
			p.tr.SharedSpan(trace.PhaseLabel, lb)
			return t
		}
		p.mu.RLock()
		t := p.src.Peek()
		if !l.w.CAS(pendingWord, uint64(t)) {
			t = l.Get()
		}
		p.mu.RUnlock()
		return t
	}
	var retries uint64
	for {
		t := p.addr.Load()
		cur, ok := l.w.DCSS(p.addr, t, pendingWord, t)
		if ok {
			p.tr.SharedCount(trace.PhaseRetry, retries)
			return core.TS(t)
		}
		if cur != pendingWord {
			p.tr.SharedCount(trace.PhaseRetry, retries)
			return core.TS(cur) // someone else labeled it
		}
		// The global timestamp moved between read and swap; retry.
		retries++
	}
}

// VisibleAt reports whether a node labeled (itime, dtime) belongs to the
// snapshot at bound s. An unassigned insertion label means the insert
// linearizes after s (exclude); an unassigned deletion label means the
// node is alive at s or its deletion linearizes after s (include).
func VisibleAt(itime, dtime core.TS, s core.TS) bool {
	return itime != core.Pending && itime <= s &&
		(dtime == core.Pending || dtime > s)
}

package ebrrq

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"tscds/internal/core"
)

func TestLockFreeRejectsHardwareSources(t *testing.T) {
	for _, k := range []core.Kind{core.TSC, core.TSCUnfenced, core.TSCCPUID, core.TSCRaw, core.Monotonic} {
		if _, err := NewLockFree(core.New(k)); !errors.Is(err, ErrRequiresAddress) {
			t.Errorf("NewLockFree(%v) err = %v, want ErrRequiresAddress", k, err)
		}
	}
	if _, err := NewLockFree(core.New(core.Logical)); err != nil {
		t.Fatalf("NewLockFree(logical) err = %v", err)
	}
}

func TestLabelLifecycle(t *testing.T) {
	var l Label
	l.Init()
	if l.Assigned() {
		t.Fatal("fresh label reports assigned")
	}
	p := NewLockBased(core.New(core.Logical))
	ts := p.Label(&l)
	if !l.Assigned() || l.Get() != ts {
		t.Fatalf("label = %d, assigned ts = %d", l.Get(), ts)
	}
}

func providers(t *testing.T) map[string]*Provider {
	t.Helper()
	lf, err := NewLockFree(core.New(core.Logical))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Provider{
		"lock-logical": NewLockBased(core.New(core.Logical)),
		"lock-tsc":     NewLockBased(core.New(core.TSC)),
		"lockfree":     lf,
	}
}

// The invariant every variant must provide: a label assigned after a
// snapshot bound was taken is strictly greater than the bound (modulo
// the theoretical TSC tie, which cannot occur here because the snapshot
// and label reads are separated by far more than one cycle).
func TestLabelAfterSnapshotIsNewer(t *testing.T) {
	for name, p := range providers(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				s := p.Snapshot()
				var l Label
				l.Init()
				ts := p.Label(&l)
				if ts <= s {
					t.Fatalf("label %d not after snapshot %d", ts, s)
				}
			}
		})
	}
}

// Symmetric invariant: a snapshot taken after a label sees it.
func TestSnapshotAfterLabelCoversIt(t *testing.T) {
	for name, p := range providers(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				var l Label
				l.Init()
				ts := p.Label(&l)
				s := p.Snapshot()
				if ts > s {
					t.Fatalf("snapshot %d below earlier label %d", s, ts)
				}
			}
		})
	}
}

// Under concurrency, every (snapshot, label) pair observed with the
// label assigned before the snapshot was requested must satisfy
// label <= snapshot; labels assigned after must exceed it.
func TestConcurrentSnapshotLabelOrdering(t *testing.T) {
	for name, p := range providers(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						var l Label
						l.Init()
						before := p.Snapshot()
						ts := p.Label(&l)
						after := p.Snapshot()
						if ts <= before || ts > after {
							t.Errorf("label %d outside (%d, %d]", ts, before, after)
							return
						}
					}
				}()
			}
			for i := 0; i < 2000; i++ {
				p.Snapshot()
			}
			close(stop)
			wg.Wait()
		})
	}
}

// Lock-free labeling must converge even while the global timestamp is
// being advanced aggressively (DCSS failures retry).
func TestLockFreeLabelUnderSnapshotStorm(t *testing.T) {
	src := core.New(core.Logical)
	p, err := NewLockFree(src)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.Snapshot()
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		var l Label
		l.Init()
		ts := p.Label(&l)
		if ts == core.Pending || l.Get() != ts {
			t.Fatalf("labeling failed under contention: %d vs %d", ts, l.Get())
		}
	}
	close(stop)
	wg.Wait()
}

// A label is assigned exactly once even when raced by helpers.
func TestLabelIdempotentUnderRace(t *testing.T) {
	p, err := NewLockFree(core.New(core.Logical))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		var l Label
		l.Init()
		var wg sync.WaitGroup
		results := make([]core.TS, 4)
		for g := range results {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = p.Label(&l)
			}(g)
		}
		wg.Wait()
		final := l.Get()
		for g, r := range results {
			if r != final {
				t.Fatalf("labeler %d saw %d, final label %d", g, r, final)
			}
		}
	}
}

func TestVisibleAt(t *testing.T) {
	P := core.Pending
	cases := []struct {
		itime, dtime, s core.TS
		want            bool
	}{
		{1, P, 5, true},  // alive, inserted before s
		{6, P, 5, false}, // inserted after s
		{P, P, 5, false}, // insert in flight (linearizes after s)
		{1, 3, 5, false}, // deleted before s
		{1, 9, 5, true},  // deleted after s: in snapshot
		{5, P, 5, true},  // inserted exactly at s
		{1, 5, 5, false}, // deleted exactly at s
		{1, 6, 5, true},  // boundary: deleted just after
		{5, 6, 5, true},  // inserted at s, deleted after
	}
	for i, c := range cases {
		if got := VisibleAt(c.itime, c.dtime, c.s); got != c.want {
			t.Errorf("case %d: VisibleAt(%d,%d,%d) = %v, want %v", i, c.itime, c.dtime, c.s, got, c.want)
		}
	}
}

// Property: VisibleAt is monotone in deletion time and antitone in
// insertion time.
func TestVisibleAtProperty(t *testing.T) {
	f := func(it, dt, s uint64) bool {
		if it == uint64(core.Pending) {
			it--
		}
		v := VisibleAt(it, dt, s)
		// Inserting earlier never hides a visible node.
		if v && it > 0 && !VisibleAt(it-1, dt, s) {
			return false
		}
		// Deleting later never hides a visible node.
		if v && dt != core.Pending && dt < core.MaxTS && !VisibleAt(it, dt+1, s) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLabelLockBasedLogical(b *testing.B) {
	p := NewLockBased(core.New(core.Logical))
	var l Label
	for i := 0; i < b.N; i++ {
		l.Init()
		p.Label(&l)
	}
}

func BenchmarkLabelLockBasedTSC(b *testing.B) {
	p := NewLockBased(core.New(core.TSC))
	var l Label
	for i := 0; i < b.N; i++ {
		l.Init()
		p.Label(&l)
	}
}

func BenchmarkLabelLockFree(b *testing.B) {
	p, _ := NewLockFree(core.New(core.Logical))
	var l Label
	for i := 0; i < b.N; i++ {
		l.Init()
		p.Label(&l)
	}
}

// Package epoch implements epoch-based reclamation (EBR) with the one
// extension EBR-RQ (Arbel-Raviv & Brown, PPoPP 2018) relies on: the
// per-thread limbo lists holding logically deleted nodes remain *visible*
// and scannable, so a range query can collect nodes that were removed
// from the structure after the query's linearization point but belonged
// to its snapshot.
//
// A node is retired into its deleter's limbo list tagged with the current
// global epoch. It is pruned only when both conditions hold:
//
//  1. three epochs have passed since retirement, so no thread can still
//     hold a reference obtained from the structure. Classic EBR needs
//     two, with nodes retired only after they are unreachable; EBR-RQ
//     retires *before* unlinking (the limbo list must be scannable the
//     moment the deletion can linearize), so a node's tag can lag its
//     actual unreachability by one epoch — the deleter is pinned across
//     retire and unlink, during which the global can advance once. A
//     reader pinned at tag+1 may therefore still acquire the node from
//     the structure; the third epoch waits that reader out. And
//  2. the caller-supplied retention predicate releases it — EBR-RQ keeps
//     a node while any active range query's timestamp still precedes the
//     node's deletion timestamp.
//
// What pruning *does* with the node is the caller's choice: by default
// it is dropped for Go's GC; with a Recycle hook installed (SetRecycle)
// the manager hands each pruned item back exactly once, so structures
// can feed their free lists (pool.Pool) with epoch-proven-unreachable
// memory. Recycling sharpens every liveness question into a memory-
// safety one, so the list protocol here is explicit about who may
// detach what:
//
//   - Append (Retire) is owner-only but uses a CAS push, because a
//     pruner may concurrently detach the list out from under the push.
//   - Prune is serialized per list by a CAS-claimed boundary (slot.claim),
//     so the owner's amortized prune and a concurrent Drain/DrainAll
//     cannot both detach — and thus double-recycle — the same suffix.
//     The claim holder is also the only writer of the pruned/len stats
//     for that detach, which keeps the accounting single-owner.
//   - ForEachRetired (the EBR-RQ limbo scan) registers in a scan count;
//     a detached suffix is handed to the Recycle hook only when no scan
//     is active, and is otherwise parked on a claim-guarded deferred
//     chain until a later prune observes zero scans. A scanner can
//     therefore never observe an item after it reached the pool.
package epoch

import (
	"sync"
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
)

// quiescent marks an unpinned thread slot.
const quiescent = ^uint64(0)

// pruneInterval is how many retirements pass between prune/advance
// attempts by one thread.
const pruneInterval = 64

// drainInterval is how many unpins pass between prune/advance attempts
// by a thread whose limbo list is non-empty. Without it a thread that
// stops retiring (updates cease, reads continue) would never drain its
// limbo list.
const drainInterval = 64

// drainRounds bounds Drain's advance/prune attempts. Three successive
// epoch advances make any quiescent retirement reclaimable, so a fourth
// round only mops up items retired mid-drain.
const drainRounds = 4

type limboNode[T any] struct {
	item  T
	epoch uint64
	next  atomic.Pointer[limboNode[T]]
}

type slot[T any] struct {
	local core.PaddedUint64 // epoch observed while pinned; quiescent otherwise
	head  atomic.Pointer[limboNode[T]]
	// claim serializes pruners of this slot: the owner's amortized
	// prune and Drain/DrainAll race to CAS it 0→1, and only the winner
	// walks, detaches, accounts, and recycles. Everything the claim
	// guards is released before claim.Store(0), which the atomics'
	// ordering turns into a spinlock-style happens-before edge to the
	// next claimer.
	claim atomic.Uint32
	// deferred chains detached suffixes that could not be recycled yet
	// because a limbo scan was in flight. Mutated only under claim;
	// atomic so triggers can peek at emptiness without claiming.
	deferred atomic.Pointer[limboNode[T]]
	retires  int // owner-local counter
	unpins   int // owner-local counter
	_        [32]byte
}

// Manager coordinates epochs and limbo lists for up to a fixed number of
// threads (indexed by core.Thread.ID).
type Manager[T any] struct {
	global core.PaddedUint64
	// retain reports whether an item must stay visible given the current
	// minimum active range-query timestamp (core.Pending when none).
	retain func(item T, minRQ core.TS) bool
	// minRQ supplies the current minimum active range-query timestamp.
	minRQ func() core.TS
	// recycle, when set, receives every pruned item exactly once, on the
	// pruning thread, after the scan guard proves no limbo scan can
	// still observe it. tid is the pruning thread's slot id, or -1 when
	// the pruner has no slot (DrainAll from an unregistered caller).
	recycle func(item T, tid int)
	// gc, when set, receives limbo-list churn (retired/pruned counts and
	// the current population). Nil disables reporting.
	gc *obs.GC
	// tr, when set, receives pin republications and failed advance
	// attempts — the stall phases of epoch management. Nil disables it.
	tr *trace.Recorder
	// scans counts in-flight ForEachRetired walks; see release.
	scans atomic.Int64
	// wrappers recycles limboNode shells once a Recycle hook is set, so
	// pooled mode does not trade one allocation per retire (the node)
	// for another (its limbo wrapper).
	wrappers sync.Pool
	slots    []slot[T]
	// pinHook, when set, runs inside Pin between reading the global
	// epoch and publishing it — the window in which concurrent
	// tryAdvance passes cannot see the thread. Tests use it to provoke
	// that window deterministically; it must be set before the manager
	// sees concurrent traffic.
	pinHook func()
}

// NewManager creates a manager for maxThreads threads. retain and minRQ
// configure range-query-aware retention; passing nil for retain yields
// plain EBR behaviour (epoch condition only).
func NewManager[T any](maxThreads int, retain func(T, core.TS) bool, minRQ func() core.TS) *Manager[T] {
	m := &Manager[T]{
		retain: retain,
		minRQ:  minRQ,
		slots:  make([]slot[T], maxThreads),
	}
	m.global.Store(2) // leave room below for "before all epochs"
	for i := range m.slots {
		m.slots[i].local.Store(quiescent)
	}
	return m
}

// SetGC wires limbo-list reporting to g (nil disables it). Call before
// the manager sees concurrent traffic.
func (m *Manager[T]) SetGC(g *obs.GC) { m.gc = g }

// SetTrace wires stall reporting to tr (nil disables it). Call before
// the manager sees concurrent traffic.
func (m *Manager[T]) SetTrace(tr *trace.Recorder) { m.tr = tr }

// SetRecycle installs the pruned-item hook (nil reverts to dropping
// pruned items for the GC). fn must tolerate tid == -1 by routing to a
// thread-safe free list. Call before the manager sees traffic: items
// retired before the hook is set may still be dropped rather than
// recycled.
func (m *Manager[T]) SetRecycle(fn func(item T, tid int)) { m.recycle = fn }

// SetMinRQ replaces the minimum-active-range-query bound the pruner
// consults (nil disables the bound). Used to route pruning through a
// core.ReadBound watermark so retention windows extend limbo lifetimes
// and historical reads can refuse truncated timestamps. Call before
// the manager sees concurrent traffic.
func (m *Manager[T]) SetMinRQ(fn func() core.TS) { m.minRQ = fn }

// Pin enters an epoch-protected region for thread tid. Every data
// structure operation (including range queries) runs pinned.
//
// Publication must loop: a single load-then-store leaves a window in
// which the thread is still quiescent to tryAdvance. If the global
// epoch moved twice in that window, the thread would end up published
// two epochs behind, Prune's epoch safety margin would be void, and
// a node the thread is about to traverse could be dropped. Pin
// therefore re-reads the global after publishing and repeats until the
// published value is current; from then on the global can move at most
// one epoch past this thread until it unpins.
func (m *Manager[T]) Pin(tid int) {
	s := &m.slots[tid]
	var stalls uint64
	for {
		g := m.global.Load()
		if h := m.pinHook; h != nil {
			h()
		}
		s.local.Store(g)
		if m.global.Load() == g {
			if stalls > 0 {
				m.tr.Count(tid, trace.PhasePinStall, stalls)
			}
			return
		}
		stalls++
	}
}

// Unpin leaves the epoch-protected region. A thread with a non-empty
// limbo list periodically attempts epoch advancement and pruning here,
// so limbo lists drain even when the thread stops retiring (updates
// cease, reads continue).
func (m *Manager[T]) Unpin(tid int) {
	s := &m.slots[tid]
	s.local.Store(quiescent)
	if s.head.Load() == nil && s.deferred.Load() == nil {
		return
	}
	s.unpins++
	if s.unpins%drainInterval == 0 {
		m.tryAdvance()
		m.prune(tid, tid)
	}
}

// Drain aggressively advances the epoch and prunes tid's limbo list,
// for quiescent paths that want retained memory released without
// waiting out the amortized schedules. It may be called by the owning
// thread at any time; pinned threads and active range queries still
// block reclamation as usual.
func (m *Manager[T]) Drain(tid int) {
	s := &m.slots[tid]
	for i := 0; i < drainRounds && (s.head.Load() != nil || s.deferred.Load() != nil); i++ {
		m.tryAdvance()
		m.prune(tid, tid)
	}
}

// DrainAll drains every thread's limbo list. It is safe to run
// concurrently with operations: retirement appends are CAS pushes, and
// the per-slot claim ensures each detached suffix is accounted and
// recycled by exactly one pruner (a slot whose claim is held by its
// owner's in-flight prune is simply skipped this round — that prune is
// already doing the work). Recycled items are routed with tid -1, since
// the draining caller owns no slot.
func (m *Manager[T]) DrainAll() {
	for round := 0; round < drainRounds; round++ {
		m.tryAdvance()
		empty := true
		for tid := range m.slots {
			s := &m.slots[tid]
			if s.head.Load() != nil || s.deferred.Load() != nil {
				m.prune(tid, -1)
				empty = false
			}
		}
		if empty {
			return
		}
	}
}

// GlobalEpoch returns the current global epoch (diagnostics and tests).
func (m *Manager[T]) GlobalEpoch() uint64 { return m.global.Load() }

// Retire places item on tid's limbo list tagged with the current epoch,
// and periodically attempts epoch advancement and pruning. The push is
// a CAS loop rather than a plain store: a concurrent DrainAll may
// detach the list between the head load and the publication, and a
// plain store would resurrect the detached — possibly already recycled
// — suffix through the new node's next pointer.
func (m *Manager[T]) Retire(tid int, item T) {
	s := &m.slots[tid]
	var n *limboNode[T]
	if m.recycle != nil {
		n, _ = m.wrappers.Get().(*limboNode[T])
	}
	if n == nil {
		n = &limboNode[T]{}
	}
	n.item = item
	n.epoch = m.global.Load()
	for {
		h := s.head.Load()
		n.next.Store(h)
		if s.head.CompareAndSwap(h, n) {
			break
		}
	}
	s.retires++
	if m.gc != nil {
		m.gc.LimboRetired.Inc()
		m.gc.LimboLen.Add(1)
	}
	if s.retires%pruneInterval == 0 {
		m.tryAdvance()
		m.prune(tid, tid)
	}
}

// tryAdvance bumps the global epoch if every pinned thread has observed
// the current one.
func (m *Manager[T]) tryAdvance() {
	g := m.global.Load()
	for i := range m.slots {
		if l := m.slots[i].local.Load(); l != quiescent && l < g {
			// A pinned thread lags; the epoch cannot move. tryAdvance has
			// no thread identity (it runs from Retire/Unpin/Drain on any
			// thread), so the stall lands in the shared aggregates.
			m.tr.SharedCount(trace.PhaseAdvanceStall, 1)
			return
		}
	}
	m.global.CompareAndSwap(g, g+1)
}

// Prune drops the reclaimable suffix of tid's limbo list. Per-thread
// lists are ordered newest-first with per-thread-monotonic deletion
// timestamps, so once one node is reclaimable the entire suffix is.
// Intended for the owning thread; recycled items are credited to tid's
// free list.
func (m *Manager[T]) Prune(tid int) { m.prune(tid, tid) }

// prune detaches and releases the reclaimable suffix of slot tid's
// list. ctx is the slot id of the *pruning* thread (-1 when it has
// none), which is where the Recycle hook banks reclaimed items.
func (m *Manager[T]) prune(tid, ctx int) {
	s := &m.slots[tid]
	if !s.claim.CompareAndSwap(0, 1) {
		// Another pruner holds this list's boundary; its pass covers it.
		return
	}
	defer s.claim.Store(0)

	m.flushDeferred(s, ctx)

	g := m.global.Load()
	if g < 3 {
		return
	}
	// Three-epoch margin, not classic EBR's two: nodes are retired before
	// they are unlinked (scannability), so a tag can predate
	// unreachability by one epoch. See the package comment.
	safe := g - 3
	min := core.Pending
	if m.minRQ != nil {
		min = m.minRQ()
	}
retry:
	var prev *limboNode[T]
	for n := s.head.Load(); n != nil; n = n.next.Load() {
		if n.epoch <= safe && (m.retain == nil || !m.retain(n.item, min)) {
			if prev == nil {
				// Detaching at the head races the owner's CAS push; on
				// failure re-walk from the new head (the push only ever
				// prepends, so the reclaimable suffix is still there).
				if !s.head.CompareAndSwap(n, nil) {
					goto retry
				}
			} else {
				// Interior next pointers are written only under claim,
				// and the owner's push touches only the head, so a plain
				// detach cannot race anything.
				prev.next.Store(nil)
			}
			dropped := int64(0)
			for x := n; x != nil; x = x.next.Load() {
				dropped++
			}
			if m.gc != nil {
				// The claim makes this pruner the sole accountant for the
				// detached suffix, so the gauge cannot drift (the old
				// overlapping-pruner double-decrement).
				m.gc.LimboPruned.Add(uint64(dropped))
				m.gc.LimboLen.Add(-dropped)
			}
			m.release(s, n, ctx)
			return
		}
		prev = n
	}
}

// release recycles a freshly detached chain, unless a limbo scan is in
// flight — a scanner that loaded the head before the detach may still
// be walking these very nodes, so handing them to the pool now would
// let the scan observe recycled memory. Such chains park on the slot's
// deferred list; flushDeferred recycles them once no scan is active.
//
// The ordering argument for the fast path: the detach (an atomic store
// or CAS) precedes the scans load here; Go atomics are sequentially
// consistent, so any scanner that was *not* counted at that load
// increments scans — and then loads the list head — after the detach,
// and cannot reach the detached chain.
func (m *Manager[T]) release(s *slot[T], chain *limboNode[T], ctx int) {
	if m.recycle == nil {
		// No hook: pruning means dropping for the GC, which a scanner
		// may safely keep reading until the chain is unreachable.
		return
	}
	if m.scans.Load() != 0 {
		tail := chain
		for {
			n := tail.next.Load()
			if n == nil {
				break
			}
			tail = n
		}
		tail.next.Store(s.deferred.Load())
		s.deferred.Store(chain)
		return
	}
	m.recycleChain(chain, ctx)
}

// flushDeferred hands a parked chain to the Recycle hook once no limbo
// scan is active. Caller must hold the slot's claim.
func (m *Manager[T]) flushDeferred(s *slot[T], ctx int) {
	chain := s.deferred.Load()
	if chain == nil || m.scans.Load() != 0 {
		return
	}
	s.deferred.Store(nil)
	m.recycleChain(chain, ctx)
}

// recycleChain walks a detached chain invoking the Recycle hook once
// per item and returning the limbo wrappers to the shell pool. Without
// a hook the chain is simply dropped for the GC.
func (m *Manager[T]) recycleChain(chain *limboNode[T], ctx int) {
	if m.recycle == nil {
		return
	}
	var zero T
	for n := chain; n != nil; {
		next := n.next.Load()
		m.recycle(n.item, ctx)
		n.item = zero
		n.epoch = 0
		n.next.Store(nil)
		m.wrappers.Put(n)
		n = next
	}
}

// ForEachRetired visits every item currently on any thread's limbo list.
// It is safe to run concurrently with retirements and pruning; the
// visitor may observe items being pruned concurrently (they are, by the
// retention protocol, items no active range query needs) but never an
// item already handed to a Recycle hook — the scan count defers
// recycling while any walk is in flight. Returning false stops the
// scan.
func (m *Manager[T]) ForEachRetired(fn func(item T) bool) {
	m.scans.Add(1)
	defer m.scans.Add(-1)
	for i := range m.slots {
		for n := m.slots[i].head.Load(); n != nil; n = n.next.Load() {
			if !fn(n.item) {
				return
			}
		}
	}
}

// LimboLen reports the total number of items across all limbo lists
// (tests and heap-boundedness checks).
func (m *Manager[T]) LimboLen() int {
	total := 0
	m.ForEachRetired(func(T) bool { total++; return true })
	return total
}

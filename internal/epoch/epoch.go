// Package epoch implements epoch-based reclamation (EBR) with the one
// extension EBR-RQ (Arbel-Raviv & Brown, PPoPP 2018) relies on: the
// per-thread limbo lists holding logically deleted nodes remain *visible*
// and scannable, so a range query can collect nodes that were removed
// from the structure after the query's linearization point but belonged
// to its snapshot.
//
// A node is retired into its deleter's limbo list tagged with the current
// global epoch. It is pruned (dropped, leaving physical reclamation to
// Go's GC) only when both conditions hold:
//
//  1. two epochs have passed since retirement, so no thread can still
//     hold a reference obtained from the structure (classic EBR), and
//  2. the caller-supplied retention predicate releases it — EBR-RQ keeps
//     a node while any active range query's timestamp still precedes the
//     node's deletion timestamp.
//
// Lists are single-writer (the owning thread appends and prunes) with
// concurrent lock-free readers, matching the original design.
package epoch

import (
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
)

// quiescent marks an unpinned thread slot.
const quiescent = ^uint64(0)

// pruneInterval is how many retirements pass between prune/advance
// attempts by one thread.
const pruneInterval = 64

// drainInterval is how many unpins pass between prune/advance attempts
// by a thread whose limbo list is non-empty. Without it a thread that
// stops retiring (updates cease, reads continue) would never drain its
// limbo list.
const drainInterval = 64

// drainRounds bounds Drain's advance/prune attempts. Two successive
// epoch advances make any quiescent retirement reclaimable, so a third
// round only mops up items retired mid-drain.
const drainRounds = 3

type limboNode[T any] struct {
	item  T
	epoch uint64
	next  atomic.Pointer[limboNode[T]]
}

type slot[T any] struct {
	local   core.PaddedUint64 // epoch observed while pinned; quiescent otherwise
	head    atomic.Pointer[limboNode[T]]
	retires int // owner-local counter
	unpins  int // owner-local counter
	_       [32]byte
}

// Manager coordinates epochs and limbo lists for up to a fixed number of
// threads (indexed by core.Thread.ID).
type Manager[T any] struct {
	global core.PaddedUint64
	// retain reports whether an item must stay visible given the current
	// minimum active range-query timestamp (core.Pending when none).
	retain func(item T, minRQ core.TS) bool
	// minRQ supplies the current minimum active range-query timestamp.
	minRQ func() core.TS
	// gc, when set, receives limbo-list churn (retired/pruned counts and
	// the current population). Nil disables reporting.
	gc *obs.GC
	// tr, when set, receives pin republications and failed advance
	// attempts — the stall phases of epoch management. Nil disables it.
	tr    *trace.Recorder
	slots []slot[T]
	// pinHook, when set, runs inside Pin between reading the global
	// epoch and publishing it — the window in which concurrent
	// tryAdvance passes cannot see the thread. Tests use it to provoke
	// that window deterministically; it must be set before the manager
	// sees concurrent traffic.
	pinHook func()
}

// NewManager creates a manager for maxThreads threads. retain and minRQ
// configure range-query-aware retention; passing nil for retain yields
// plain EBR behaviour (epoch condition only).
func NewManager[T any](maxThreads int, retain func(T, core.TS) bool, minRQ func() core.TS) *Manager[T] {
	m := &Manager[T]{
		retain: retain,
		minRQ:  minRQ,
		slots:  make([]slot[T], maxThreads),
	}
	m.global.Store(2) // leave room below for "before all epochs"
	for i := range m.slots {
		m.slots[i].local.Store(quiescent)
	}
	return m
}

// SetGC wires limbo-list reporting to g (nil disables it). Call before
// the manager sees concurrent traffic.
func (m *Manager[T]) SetGC(g *obs.GC) { m.gc = g }

// SetTrace wires stall reporting to tr (nil disables it). Call before
// the manager sees concurrent traffic.
func (m *Manager[T]) SetTrace(tr *trace.Recorder) { m.tr = tr }

// Pin enters an epoch-protected region for thread tid. Every data
// structure operation (including range queries) runs pinned.
//
// Publication must loop: a single load-then-store leaves a window in
// which the thread is still quiescent to tryAdvance. If the global
// epoch moved twice in that window, the thread would end up published
// two epochs behind, Prune's two-epoch safety margin would be void, and
// a node the thread is about to traverse could be dropped. Pin
// therefore re-reads the global after publishing and repeats until the
// published value is current; from then on the global can move at most
// one epoch past this thread until it unpins.
func (m *Manager[T]) Pin(tid int) {
	s := &m.slots[tid]
	var stalls uint64
	for {
		g := m.global.Load()
		if h := m.pinHook; h != nil {
			h()
		}
		s.local.Store(g)
		if m.global.Load() == g {
			if stalls > 0 {
				m.tr.Count(tid, trace.PhasePinStall, stalls)
			}
			return
		}
		stalls++
	}
}

// Unpin leaves the epoch-protected region. A thread with a non-empty
// limbo list periodically attempts epoch advancement and pruning here,
// so limbo lists drain even when the thread stops retiring (updates
// cease, reads continue).
func (m *Manager[T]) Unpin(tid int) {
	s := &m.slots[tid]
	s.local.Store(quiescent)
	if s.head.Load() == nil {
		return
	}
	s.unpins++
	if s.unpins%drainInterval == 0 {
		m.tryAdvance()
		m.Prune(tid)
	}
}

// Drain aggressively advances the epoch and prunes tid's limbo list,
// for quiescent paths that want retained memory released without
// waiting out the amortized schedules. It may be called by the owning
// thread at any time; pinned threads and active range queries still
// block reclamation as usual.
func (m *Manager[T]) Drain(tid int) {
	for i := 0; i < drainRounds && m.slots[tid].head.Load() != nil; i++ {
		m.tryAdvance()
		m.Prune(tid)
	}
}

// DrainAll drains every thread's limbo list. Unlike Drain it violates
// the lists' single-writer discipline, so it is for quiescent use only
// (no concurrent operations), like Len on the data structures.
func (m *Manager[T]) DrainAll() {
	for round := 0; round < drainRounds; round++ {
		m.tryAdvance()
		empty := true
		for tid := range m.slots {
			if m.slots[tid].head.Load() != nil {
				m.Prune(tid)
				empty = false
			}
		}
		if empty {
			return
		}
	}
}

// GlobalEpoch returns the current global epoch (diagnostics and tests).
func (m *Manager[T]) GlobalEpoch() uint64 { return m.global.Load() }

// Retire places item on tid's limbo list tagged with the current epoch,
// and periodically attempts epoch advancement and pruning.
func (m *Manager[T]) Retire(tid int, item T) {
	s := &m.slots[tid]
	n := &limboNode[T]{item: item, epoch: m.global.Load()}
	n.next.Store(s.head.Load())
	s.head.Store(n)
	s.retires++
	if m.gc != nil {
		m.gc.LimboRetired.Inc()
		m.gc.LimboLen.Add(1)
	}
	if s.retires%pruneInterval == 0 {
		m.tryAdvance()
		m.Prune(tid)
	}
}

// tryAdvance bumps the global epoch if every pinned thread has observed
// the current one.
func (m *Manager[T]) tryAdvance() {
	g := m.global.Load()
	for i := range m.slots {
		if l := m.slots[i].local.Load(); l != quiescent && l < g {
			// A pinned thread lags; the epoch cannot move. tryAdvance has
			// no thread identity (it runs from Retire/Unpin/Drain on any
			// thread), so the stall lands in the shared aggregates.
			m.tr.SharedCount(trace.PhaseAdvanceStall, 1)
			return
		}
	}
	m.global.CompareAndSwap(g, g+1)
}

// Prune drops the reclaimable suffix of tid's limbo list. Per-thread
// lists are ordered newest-first with per-thread-monotonic deletion
// timestamps, so once one node is reclaimable the entire suffix is.
func (m *Manager[T]) Prune(tid int) {
	safe := m.global.Load()
	if safe < 2 {
		return
	}
	safe -= 2
	min := core.Pending
	if m.minRQ != nil {
		min = m.minRQ()
	}
	s := &m.slots[tid]
	var prev *limboNode[T]
	for n := s.head.Load(); n != nil; n = n.next.Load() {
		if n.epoch <= safe && (m.retain == nil || !m.retain(n.item, min)) {
			if prev == nil {
				s.head.Store(nil)
			} else {
				prev.next.Store(nil)
			}
			if m.gc != nil {
				// Count the detached suffix; the list is single-writer
				// (this thread), so the walk is stable.
				dropped := int64(0)
				for x := n; x != nil; x = x.next.Load() {
					dropped++
				}
				m.gc.LimboPruned.Add(uint64(dropped))
				m.gc.LimboLen.Add(-dropped)
			}
			return
		}
		prev = n
	}
}

// ForEachRetired visits every item currently on any thread's limbo list.
// It is safe to run concurrently with retirements and pruning; the
// visitor may observe items being pruned concurrently (they are, by the
// retention protocol, items no active range query needs). Returning
// false stops the scan.
func (m *Manager[T]) ForEachRetired(fn func(item T) bool) {
	for i := range m.slots {
		for n := m.slots[i].head.Load(); n != nil; n = n.next.Load() {
			if !fn(n.item) {
				return
			}
		}
	}
}

// LimboLen reports the total number of items across all limbo lists
// (tests and heap-boundedness checks).
func (m *Manager[T]) LimboLen() int {
	total := 0
	m.ForEachRetired(func(T) bool { total++; return true })
	return total
}

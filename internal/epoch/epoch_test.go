package epoch

import (
	"sync"
	"sync/atomic"
	"testing"

	"tscds/internal/core"
	"tscds/internal/obs"
)

type item struct {
	key   uint64
	dtime core.TS
}

func retainByDtime(it item, minRQ core.TS) bool { return it.dtime >= minRQ }

func TestRetireAndScan(t *testing.T) {
	m := NewManager[item](4, nil, nil)
	m.Retire(0, item{key: 1})
	m.Retire(1, item{key: 2})
	m.Retire(0, item{key: 3})
	var keys []uint64
	m.ForEachRetired(func(it item) bool { keys = append(keys, it.key); return true })
	if len(keys) != 3 {
		t.Fatalf("scanned %d items, want 3: %v", len(keys), keys)
	}
	if m.LimboLen() != 3 {
		t.Fatalf("LimboLen = %d", m.LimboLen())
	}
}

func TestForEachEarlyStop(t *testing.T) {
	m := NewManager[item](2, nil, nil)
	for i := 0; i < 10; i++ {
		m.Retire(0, item{key: uint64(i)})
	}
	count := 0
	m.ForEachRetired(func(item) bool { count++; return count < 4 })
	if count != 4 {
		t.Fatalf("early stop visited %d, want 4", count)
	}
}

func TestEpochAdvancesWhenQuiescent(t *testing.T) {
	m := NewManager[item](2, nil, nil)
	g0 := m.GlobalEpoch()
	// No thread pinned: enough retirements should advance the epoch.
	for i := 0; i < 3*pruneInterval; i++ {
		m.Retire(0, item{key: uint64(i)})
	}
	if m.GlobalEpoch() <= g0 {
		t.Fatalf("epoch did not advance: %d -> %d", g0, m.GlobalEpoch())
	}
}

func TestEpochBlockedByPinnedThread(t *testing.T) {
	m := NewManager[item](2, nil, nil)
	m.Pin(1) // thread 1 parks inside an old epoch
	g0 := m.GlobalEpoch()
	for i := 0; i < 2*pruneInterval; i++ {
		m.Retire(0, item{key: uint64(i)})
	}
	// One advance is possible (thread 1 observed g0), but not two: the
	// global can move at most one step past a pinned thread's epoch.
	if g := m.GlobalEpoch(); g > g0+1 {
		t.Fatalf("epoch advanced %d -> %d past pinned thread", g0, g)
	}
	m.Unpin(1)
	for i := 0; i < 3*pruneInterval; i++ {
		m.Retire(0, item{key: uint64(i)})
	}
	if g := m.GlobalEpoch(); g <= g0+1 {
		t.Fatalf("epoch stuck at %d after unpin", g)
	}
}

func TestPruneDropsOldItems(t *testing.T) {
	m := NewManager[item](2, retainByDtime, func() core.TS { return core.Pending })
	for i := 0; i < 10*pruneInterval; i++ {
		m.Retire(0, item{key: uint64(i), dtime: core.TS(i)})
	}
	// With no active RQ (min = Pending) and epochs advancing freely,
	// the limbo list must stay far below the total retired count.
	if n := m.LimboLen(); n >= 10*pruneInterval {
		t.Fatalf("limbo never pruned: %d items", n)
	}
}

func TestRetentionHoldsItemsForActiveRQ(t *testing.T) {
	// Active RQ at ts=5: items deleted at or after 5 must survive
	// arbitrary pruning pressure.
	minRQ := core.TS(5)
	m := NewManager[item](2, retainByDtime, func() core.TS { return minRQ })
	for i := 0; i < 4*pruneInterval; i++ {
		m.Retire(0, item{key: uint64(i), dtime: core.TS(i % 10)})
	}
	m.Prune(0)
	held := map[uint64]bool{}
	m.ForEachRetired(func(it item) bool {
		if it.dtime < minRQ {
			// Allowed to remain (pruning is lazy) but must not be
			// required; nothing to assert for them.
			return true
		}
		held[it.key] = true
		return true
	})
	// The most recent retirements with dtime >= 5 must all be present:
	// check the newest 10 such items are reachable.
	found := 0
	m.ForEachRetired(func(it item) bool {
		if it.dtime >= minRQ {
			found++
		}
		return true
	})
	if found == 0 {
		t.Fatal("retention predicate ignored: no items with dtime >= minRQ retained")
	}
}

// Regression for the Pin publication race: a thread delayed between
// loading the global epoch and publishing it is invisible to concurrent
// tryAdvance passes. If the epoch moved twice in that window, the old
// single-store Pin left the thread published two epochs behind —
// outside Prune's two-epoch safety margin — so Prune could drop a node
// the thread was about to traverse. Fixed Pin re-reads the global and
// loops until the published value is current.
func TestPinPublicationRace(t *testing.T) {
	m := NewManager[item](2, nil, nil)
	fired := false
	m.pinHook = func() {
		if fired {
			return
		}
		fired = true
		// Two tryAdvance passes run to completion inside the window,
		// neither seeing the in-flight pin.
		m.global.Add(2)
	}
	m.Pin(0)
	if got, g := m.slots[0].local.Load(), m.global.Load(); got != g {
		t.Fatalf("Pin published epoch %d while global is %d: two prune passes can miss this thread", got, g)
	}
	m.Unpin(0)
}

// With the looped Pin, a pinned thread can never trail the global epoch
// by two — the bound Prune's safety margin depends on. Stress it with
// concurrent retirement-driven advancement (meaningful under -race and
// on the pre-fix Pin).
func TestPinnedThreadNeverTrailsByTwo(t *testing.T) {
	m := NewManager[item](4, nil, nil)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // advance pressure
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
				m.Retire(0, item{key: uint64(i)})
			}
		}
	}()
	for i := 0; i < 3000; i++ {
		m.Pin(1)
		// While thread 1 stays pinned at l, tryAdvance cannot move the
		// global past l+1.
		for k := 0; k < 4; k++ {
			l := m.slots[1].local.Load()
			if g := m.global.Load(); g > l+1 {
				close(done)
				t.Fatalf("iteration %d: pinned at %d but global reached %d", i, l, g)
			}
		}
		m.Unpin(1)
	}
	close(done)
	wg.Wait()
}

// Regression for unbounded limbo growth: once updates cease, read-only
// traffic (pin/unpin) must still drain the limbo lists to zero.
func TestLimboDrainsAfterUpdatesCease(t *testing.T) {
	m := NewManager[item](2, retainByDtime, func() core.TS { return core.Pending })
	for i := 0; i < 100; i++ {
		m.Pin(0)
		m.Retire(0, item{key: uint64(i), dtime: core.TS(i)})
		m.Unpin(0)
	}
	if m.LimboLen() == 0 {
		t.Fatal("test needs a non-empty limbo list to be meaningful")
	}
	for i := 0; i < 8*drainInterval && m.LimboLen() > 0; i++ {
		m.Pin(0)
		m.Unpin(0)
	}
	if n := m.LimboLen(); n != 0 {
		t.Fatalf("limbo list never drained under read-only traffic: %d items", n)
	}
}

func TestDrainEmptiesLimboImmediately(t *testing.T) {
	m := NewManager[item](2, retainByDtime, func() core.TS { return core.Pending })
	for i := 0; i < 10; i++ {
		m.Retire(0, item{key: uint64(i), dtime: core.TS(i)})
		m.Retire(1, item{key: uint64(100 + i), dtime: core.TS(i)})
	}
	m.Drain(0)
	perThread := 0
	m.ForEachRetired(func(it item) bool {
		if it.key < 100 {
			perThread++
		}
		return true
	})
	if perThread != 0 {
		t.Fatalf("Drain(0) left %d items on thread 0's list", perThread)
	}
	m.DrainAll()
	if n := m.LimboLen(); n != 0 {
		t.Fatalf("DrainAll left %d items", n)
	}
}

// Drain must respect retention: items an active range query still needs
// survive it.
func TestDrainRespectsActiveRQ(t *testing.T) {
	minRQ := core.TS(5)
	m := NewManager[item](2, retainByDtime, func() core.TS { return minRQ })
	for i := 0; i < 10; i++ {
		m.Retire(0, item{key: uint64(i), dtime: core.TS(i)})
	}
	m.Drain(0)
	held := 0
	m.ForEachRetired(func(it item) bool {
		if it.dtime >= minRQ {
			held++
		}
		return true
	})
	if held != 5 {
		t.Fatalf("Drain dropped items an active RQ needs: %d of 5 held", held)
	}
}

func TestConcurrentRetireAndScan(t *testing.T) {
	m := NewManager[item](8, retainByDtime, func() core.TS { return 0 }) // retain all
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Pin(tid)
				m.Retire(tid, item{key: uint64(tid*10000 + i), dtime: core.TS(i)})
				m.Unpin(tid)
			}
		}(tid)
	}
	for r := 4; r < 8; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Pin(tid)
				m.ForEachRetired(func(it item) bool { return true })
				m.Unpin(tid)
			}
		}(r)
	}
	wg.Wait()
	if n := m.LimboLen(); n != 4*2000 {
		t.Fatalf("retain-all kept %d items, want %d", n, 4*2000)
	}
}

// Regression for the GC-stat accounting race: Drain/DrainAll used to
// call Prune on lists whose owner was pruning concurrently, and both
// passes could detach-and-count overlapping suffixes, so LimboLen
// drifted (negative or overcounted) and retired/pruned disagreed. The
// CAS-claimed prune boundary makes exactly one pruner the accountant
// for each detached suffix; under concurrent churn the books must
// balance exactly once everything drains.
func TestLimboAccountingUnderConcurrentDrain(t *testing.T) {
	const total = 60 * pruneInterval
	m := NewManager[item](2, retainByDtime, func() core.TS { return core.Pending })
	gc := &obs.GC{}
	m.SetGC(gc)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // adversarial drainer racing the owner's amortized prunes
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				m.DrainAll()
			}
		}
	}()
	for i := 0; i < total; i++ {
		m.Pin(0)
		m.Retire(0, item{key: uint64(i), dtime: core.TS(i)})
		m.Unpin(0)
	}
	close(done)
	wg.Wait()

	for i := 0; i < 2*drainRounds && m.LimboLen() > 0; i++ {
		m.DrainAll()
	}
	if n := m.LimboLen(); n != 0 {
		t.Fatalf("limbo did not drain: %d items left", n)
	}
	retired, pruned, lvl := gc.LimboRetired.Load(), gc.LimboPruned.Load(), gc.LimboLen.Load()
	if retired != total {
		t.Fatalf("retired = %d, want %d (a lost CAS push drops retirements)", retired, total)
	}
	if pruned != retired {
		t.Fatalf("pruned = %d but retired = %d: suffix double- or under-counted", pruned, retired)
	}
	if lvl != 0 {
		t.Fatalf("LimboLen gauge drifted to %d after full drain, want 0", lvl)
	}
}

// Regression for DrainAll's single-writer violation, which recycling
// turns from a stat bug into a double-free: with a Recycle hook
// installed, a node must reach the hook exactly once no matter how
// DrainAll races the owners' retires and amortized prunes. Run under
// -race (make check does).
func TestRecycleExactlyOnceUnderConcurrentDrain(t *testing.T) {
	const threads = 4
	const perThread = 3000
	m := NewManager[*item](threads, nil, nil)
	counts := make([]atomic.Int32, threads*perThread)
	m.SetRecycle(func(it *item, tid int) {
		if c := counts[it.key].Add(1); c > 1 {
			t.Errorf("item %d recycled %d times (double-free)", it.key, c)
		}
	})

	done := make(chan struct{})
	var drainer sync.WaitGroup
	drainer.Add(1)
	go func() {
		defer drainer.Done()
		for {
			select {
			case <-done:
				return
			default:
				m.DrainAll()
			}
		}
	}()
	var workers sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		workers.Add(1)
		go func(tid int) {
			defer workers.Done()
			for i := 0; i < perThread; i++ {
				m.Pin(tid)
				m.Retire(tid, &item{key: uint64(tid*perThread + i)})
				m.Unpin(tid)
			}
		}(tid)
	}
	workers.Wait()
	close(done)
	drainer.Wait()

	for i := 0; i < 4*drainRounds; i++ {
		m.DrainAll()
	}
	for k := range counts {
		if c := counts[k].Load(); c != 1 {
			t.Fatalf("item %d recycled %d times, want exactly 1", k, c)
		}
	}
}

// Regression for the scan/recycle window: a ForEachRetired walk that
// loaded a list head before a prune detached it may still be reading
// those nodes, so handing them to a pool mid-scan would let the scan
// observe recycled memory. The manager must defer recycling until no
// scan is active. The recycle hook poisons items, so without the scan
// guard the blocked scanner below resumes into poisoned nodes and the
// test fails.
func TestForEachRetiredNeverObservesRecycled(t *testing.T) {
	const total = 5
	const poison = ^uint64(0)
	m := NewManager[*item](1, nil, nil)
	var recycled atomic.Int32
	m.SetRecycle(func(it *item, tid int) {
		it.key = poison
		recycled.Add(1)
	})
	for i := 0; i < total; i++ {
		m.Retire(0, &item{key: uint64(i)})
	}

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		m.ForEachRetired(func(it *item) bool {
			if first {
				first = false
				close(started)
				<-release // park mid-scan while the drain below runs
			}
			if it.key == poison {
				t.Error("limbo scan observed an item after it was recycled")
			}
			return true
		})
	}()

	<-started
	m.Drain(0) // advances epochs and detaches the whole list mid-scan
	if n := recycled.Load(); n != 0 {
		t.Fatalf("recycled %d items while a limbo scan was active", n)
	}
	close(release)
	wg.Wait()

	// With the scan gone, the parked chain must actually flush — deferral
	// may not become a leak.
	m.Drain(0)
	if n := recycled.Load(); n != total {
		t.Fatalf("deferred chain never recycled: %d of %d", n, total)
	}
}

// Recycling must wait THREE epochs past a node's tag, not classic EBR's
// two: nodes are retired before they are unlinked, so a reader pinned
// one epoch past the tag can still acquire the node from the structure.
// Regression test for a crash where a recycled skip-list node was
// re-initialized at a lower level while such a reader was validating
// through it.
func TestRecycleWaitsThreeEpochs(t *testing.T) {
	m := NewManager[item](2, nil, nil)
	var recycled []uint64
	m.SetRecycle(func(it item, tid int) { recycled = append(recycled, it.key) })
	m.Retire(0, item{key: 7})
	g0 := m.GlobalEpoch()
	for m.GlobalEpoch() < g0+2 {
		m.tryAdvance()
	}
	m.Prune(0)
	if len(recycled) != 0 {
		t.Fatalf("item recycled only two epochs past its tag: %v", recycled)
	}
	m.tryAdvance()
	m.Prune(0)
	if len(recycled) != 1 || recycled[0] != 7 {
		t.Fatalf("item not recycled three epochs past its tag: %v", recycled)
	}
}

// Package jiffy is a compact reimplementation of the design the paper
// analyzes in §III-A: Jiffy (Kobus, Kokociński, Wojciechowski, PPoPP
// 2022), a multiversioned ordered key-value store that uses the hardware
// timestamp counter directly and therefore must make its revision
// timestamps STRICTLY increasing — TSC alone is only monotonic, so ties
// between concurrent readings are algorithmically avoided with a wait
// loop (core.AdvanceStrict), which the paper notes "is never used in
// practice due to the clock-cycle resolution" of TSC. The tests in this
// package demonstrate both halves of that claim: uniqueness is enforced
// even under a deliberately coarse clock, and with real TSC the retry
// loop almost never fires.
//
// Supported operations, mirroring Jiffy's interface at small scale:
//
//   - Apply: a batch of puts and removes that becomes visible atomically
//     (all at one revision timestamp) — Put and Remove are one-op batches;
//   - Get: read the newest committed value;
//   - Snapshot: a long-lived consistent view supporting Get and Range,
//     valid until Close, backed by per-key revision chains that are
//     truncated only past the oldest open snapshot.
//
// Structurally this uses a sorted linked list of per-key revision chains
// rather than Jiffy's skip list; the paper's discussion targets the
// timestamping discipline, which is preserved verbatim, not the index
// shape. Keys are never structurally removed — a remove appends a
// tombstone revision, as in Jiffy.
package jiffy

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tscds/internal/core"
)

// MaxKey is the largest usable key; 0 is the head sentinel's slot.
const MaxKey = ^uint64(0) - 2

// Op is one element of a batch.
type Op struct {
	Key    uint64
	Val    uint64
	Remove bool
}

// revision is one version of a key's value. Its timestamp is Pending
// until the owning batch commits; all revisions of a batch share one
// strictly-unique timestamp.
type revision struct {
	val       uint64
	tombstone bool
	ts        atomic.Uint64
	prev      atomic.Pointer[revision]
}

type node struct {
	key  uint64
	mu   sync.Mutex
	revs atomic.Pointer[revision]
	next atomic.Pointer[node]
}

func newNode(key uint64) *node {
	n := &node{key: key}
	base := &revision{tombstone: true}
	base.ts.Store(0) // "absent since before every snapshot"
	n.revs.Store(base)
	return n
}

// Map is the mini-Jiffy store.
type Map struct {
	src  core.Source
	reg  *core.Registry
	last core.PaddedUint64 // strict-increase fence over assigned revisions
	head *node
	// retries counts tie-wait iterations (tests and the tie study).
	retries atomic.Int64
}

// New creates an empty store over the given timestamp source.
func New(src core.Source, reg *core.Registry) *Map {
	return &Map{src: src, reg: reg, head: newNode(0)}
}

// TieRetries reports how many strict-increase retries have occurred — the
// §III-A wait loop's real-world frequency.
func (m *Map) TieRetries() int64 { return m.retries.Load() }

// strictTS assigns the next revision timestamp: strictly greater than
// every previously assigned one, unique across concurrent batches.
func (m *Map) strictTS() core.TS {
	for {
		last := m.last.Load()
		t := m.src.Advance()
		if t <= last {
			m.retries.Add(1)
			continue // the §III-A tie wait
		}
		if m.last.CompareAndSwap(last, t) {
			return t
		}
		m.retries.Add(1)
	}
}

// findOrInsert returns the node for key, structurally inserting an
// absent (tombstone-based) node if needed.
func (m *Map) findOrInsert(key uint64) *node {
	for {
		pred := m.head
		cur := pred.next.Load()
		for cur != nil && cur.key < key {
			pred = cur
			cur = cur.next.Load()
		}
		if cur != nil && cur.key == key {
			return cur
		}
		pred.mu.Lock()
		if pred.next.Load() != cur {
			pred.mu.Unlock()
			continue
		}
		n := newNode(key)
		n.next.Store(cur)
		pred.next.Store(n)
		pred.mu.Unlock()
		return n
	}
}

func (m *Map) find(key uint64) *node {
	cur := m.head.next.Load()
	for cur != nil && cur.key < key {
		cur = cur.next.Load()
	}
	if cur != nil && cur.key == key {
		return cur
	}
	return nil
}

// Apply performs a batch of operations atomically: one revision
// timestamp covers them all, so every snapshot sees either none or all
// of the batch. Later ops on the same key within a batch win.
func (m *Map) Apply(th *core.Thread, ops []Op) {
	if len(ops) == 0 {
		return
	}
	// Deduplicate by key, last write wins, and order by key so node
	// locks are acquired in a global order (no deadlocks).
	byKey := make(map[uint64]Op, len(ops))
	for _, op := range ops {
		if op.Key == 0 || op.Key > MaxKey {
			continue
		}
		byKey[op.Key] = op
	}
	if len(byKey) == 0 {
		return
	}
	final := make([]Op, 0, len(byKey))
	for _, op := range byKey {
		final = append(final, op)
	}
	sort.Slice(final, func(i, j int) bool { return final[i].Key < final[j].Key })

	// Phase 1: make every node exist (nodes are never removed, so the
	// pointers stay valid). Phase 2: lock in key order and install the
	// pending revisions. Splitting the phases keeps findOrInsert's
	// predecessor locking from colliding with locks the batch holds.
	nodes := make([]*node, len(final))
	for i, op := range final {
		nodes[i] = m.findOrInsert(op.Key)
	}
	revs := make([]*revision, len(final))
	for i, op := range final {
		nodes[i].mu.Lock()
		r := &revision{val: op.Val, tombstone: op.Remove}
		r.ts.Store(uint64(core.Pending))
		r.prev.Store(nodes[i].revs.Load())
		nodes[i].revs.Store(r)
		revs[i] = r
	}
	t := m.strictTS()
	for _, r := range revs {
		r.ts.Store(uint64(t)) // commit: visible at exactly t
	}
	min := m.reg.MinActiveRQ()
	for i := len(nodes) - 1; i >= 0; i-- {
		if final[i].Key%32 == 0 {
			truncate(nodes[i], min)
		}
		nodes[i].mu.Unlock()
	}
}

// Put stores key=val (a one-op batch).
func (m *Map) Put(th *core.Thread, key, val uint64) {
	m.Apply(th, []Op{{Key: key, Val: val}})
}

// Remove deletes key (a one-op tombstone batch).
func (m *Map) Remove(th *core.Thread, key uint64) {
	m.Apply(th, []Op{{Key: key, Remove: true}})
}

// committedAt returns the newest revision with ts <= s, waiting out
// in-flight batch commits (the window between revision push and
// timestamp assignment is a few instructions).
func committedAt(n *node, s core.TS) *revision {
	r := n.revs.Load()
	for r != nil {
		ts := r.ts.Load()
		for ts == uint64(core.Pending) {
			runtime.Gosched()
			ts = r.ts.Load()
		}
		if core.TS(ts) <= s {
			return r
		}
		r = r.prev.Load()
	}
	return nil
}

// Get returns the newest committed value for key.
func (m *Map) Get(th *core.Thread, key uint64) (uint64, bool) {
	n := m.find(key)
	if n == nil {
		return 0, false
	}
	r := committedAt(n, core.MaxTS)
	if r == nil || r.tombstone {
		return 0, false
	}
	return r.val, true
}

// Contains reports whether key currently has a live value.
func (m *Map) Contains(th *core.Thread, key uint64) bool {
	_, ok := m.Get(th, key)
	return ok
}

// Snap is a long-lived consistent view. It keeps its bound announced in
// the registry so revision truncation cannot reclaim what it reads;
// Close releases it.
type Snap struct {
	m  *Map
	th *core.Thread
	s  core.TS
}

// Snapshot opens a consistent view at the current instant using the
// calling thread's handle. The thread must not open a second snapshot
// before closing the first.
func (m *Map) Snapshot(th *core.Thread) *Snap {
	th.BeginRQ()
	s := m.src.Snapshot()
	th.AnnounceRQ(s)
	return &Snap{m: m, th: th, s: s}
}

// TS returns the snapshot's bound.
func (sn *Snap) TS() core.TS { return sn.s }

// Close releases the snapshot's reclamation hold.
func (sn *Snap) Close() { sn.th.DoneRQ() }

// Get reads key as of the snapshot.
func (sn *Snap) Get(key uint64) (uint64, bool) {
	n := sn.m.find(key)
	if n == nil {
		return 0, false
	}
	r := committedAt(n, sn.s)
	if r == nil || r.tombstone {
		return 0, false
	}
	return r.val, true
}

// Range appends every live pair with lo <= key <= hi as of the snapshot.
func (sn *Snap) Range(lo, hi uint64, out []core.KV) []core.KV {
	if lo == 0 {
		lo = 1
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	for cur := sn.m.head.next.Load(); cur != nil && cur.key <= hi; cur = cur.next.Load() {
		if cur.key < lo {
			continue
		}
		if r := committedAt(cur, sn.s); r != nil && !r.tombstone {
			out = append(out, core.KV{Key: cur.key, Val: r.val})
		}
	}
	return out
}

// truncate cuts a node's revision chain below the newest revision at or
// before minRQ. Caller holds the node lock.
func truncate(n *node, minRQ core.TS) {
	r := n.revs.Load()
	if r == nil || r.ts.Load() == uint64(core.Pending) {
		return
	}
	for core.TS(r.ts.Load()) > minRQ {
		next := r.prev.Load()
		if next == nil {
			return
		}
		r = next
	}
	r.prev.Store(nil)
}

// RevisionLen counts reachable revisions for key (tests).
func (m *Map) RevisionLen(key uint64) int {
	n := m.find(key)
	if n == nil {
		return 0
	}
	c := 0
	for r := n.revs.Load(); r != nil; r = r.prev.Load() {
		c++
	}
	return c
}

// Len counts currently live keys; quiescent use only.
func (m *Map) Len() int {
	c := 0
	for cur := m.head.next.Load(); cur != nil; cur = cur.next.Load() {
		if r := committedAt(cur, core.MaxTS); r != nil && !r.tombstone {
			c++
		}
	}
	return c
}

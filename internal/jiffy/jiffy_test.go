package jiffy

import (
	"math/rand"
	"sync"
	"testing"

	"tscds/internal/core"
)

func newMap(kind core.Kind, threads int) (*Map, *core.Registry) {
	reg := core.NewRegistry(threads)
	return New(core.New(kind), reg), reg
}

func TestBasicPutGetRemove(t *testing.T) {
	m, reg := newMap(core.TSC, 1)
	th := reg.MustRegister()
	if _, ok := m.Get(th, 5); ok {
		t.Fatal("empty map returned a value")
	}
	m.Put(th, 5, 50)
	if v, ok := m.Get(th, 5); !ok || v != 50 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	m.Put(th, 5, 51) // overwrite appends a revision
	if v, _ := m.Get(th, 5); v != 51 {
		t.Fatalf("overwrite: Get = %d", v)
	}
	m.Remove(th, 5)
	if m.Contains(th, 5) {
		t.Fatal("removed key still present")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	// Key 0 and oversized keys are ignored, not stored.
	m.Put(th, 0, 1)
	m.Put(th, MaxKey+1, 1)
	if m.Len() != 0 {
		t.Fatal("invalid keys stored")
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	m, reg := newMap(core.TSC, 4)
	writer := reg.MustRegister()
	reader := reg.MustRegister()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// The batch invariant: keys 10,20,30 always carry the same i.
			m.Apply(writer, []Op{{Key: 10, Val: i}, {Key: 20, Val: i}, {Key: 30, Val: i}})
		}
	}()
	for round := 0; round < 3000; round++ {
		sn := m.Snapshot(reader)
		a, okA := sn.Get(10)
		b, okB := sn.Get(20)
		c, okC := sn.Get(30)
		sn.Close()
		if okA != okB || okB != okC {
			t.Fatalf("torn batch: presence %v %v %v", okA, okB, okC)
		}
		if okA && (a != b || b != c) {
			t.Fatalf("torn batch: values %d %d %d", a, b, c)
		}
	}
	close(stop)
	wg.Wait()
}

func TestBatchLastWriteWinsWithinBatch(t *testing.T) {
	m, reg := newMap(core.Logical, 1)
	th := reg.MustRegister()
	m.Apply(th, []Op{{Key: 7, Val: 1}, {Key: 7, Val: 2}})
	if v, _ := m.Get(th, 7); v != 2 {
		t.Fatalf("last-write-wins violated: %d", v)
	}
	m.Apply(th, []Op{{Key: 7, Val: 3}, {Key: 7, Remove: true}})
	if m.Contains(th, 7) {
		t.Fatal("remove-after-put in one batch did not win")
	}
}

// The Jiffy requirement the paper discusses: revision timestamps are
// unique and strictly increasing, even under concurrency and even when
// the clock is coarse enough to tie constantly.
func TestStrictUniqueTimestamps(t *testing.T) {
	for _, kind := range []core.Kind{core.TSC, core.Monotonic, core.Logical} {
		t.Run(kind.String(), func(t *testing.T) {
			m, _ := newMap(kind, 8)
			const gs = 4
			const per = 2000
			tss := make([][]core.TS, gs)
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					out := make([]core.TS, per)
					for i := range out {
						out[i] = m.strictTS()
					}
					tss[g] = out
				}(g)
			}
			wg.Wait()
			seen := make(map[core.TS]bool, gs*per)
			for g, out := range tss {
				prev := core.TS(0)
				for i, ts := range out {
					if ts <= prev {
						t.Fatalf("goroutine %d: non-increasing ts at %d: %d then %d", g, i, prev, ts)
					}
					prev = ts
					if seen[ts] {
						t.Fatalf("duplicate revision timestamp %d", ts)
					}
					seen[ts] = true
				}
			}
			t.Logf("%v: %d timestamps, %d tie retries", kind, gs*per, m.TieRetries())
		})
	}
}

// Snapshots are repeatable: the same handle rereads identical state no
// matter how much writers churn after it opened.
func TestSnapshotRepeatableUnderChurn(t *testing.T) {
	m, reg := newMap(core.TSC, 4)
	w := reg.MustRegister()
	for k := uint64(1); k <= 200; k++ {
		m.Put(w, k, k)
	}
	reader := reg.MustRegister()
	sn := m.Snapshot(reader)
	before := sn.Range(1, 200, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(200) + 1)
			if rng.Intn(2) == 0 {
				m.Put(w, k, k*1000)
			} else {
				m.Remove(w, k)
			}
		}
	}()
	for round := 0; round < 300; round++ {
		again := sn.Range(1, 200, nil)
		if len(again) != len(before) {
			t.Fatalf("snapshot drifted: %d then %d entries", len(before), len(again))
		}
		for i := range again {
			if again[i] != before[i] {
				t.Fatalf("snapshot drifted at %d: %v then %v", i, before[i], again[i])
			}
		}
		if v, ok := sn.Get(before[0].Key); !ok || v != before[0].Val {
			t.Fatalf("snapshot Get drifted: (%d,%v)", v, ok)
		}
	}
	close(stop)
	wg.Wait()
	sn.Close()
}

// A snapshot taken before a key existed must not see it; one taken after
// a remove must not either.
func TestSnapshotBoundaries(t *testing.T) {
	m, reg := newMap(core.Logical, 2)
	th := reg.MustRegister()
	reader := reg.MustRegister()

	snEmpty := m.Snapshot(reader)
	m.Put(th, 42, 1)
	if _, ok := snEmpty.Get(42); ok {
		t.Fatal("pre-insert snapshot sees the key")
	}
	snEmpty.Close()

	snLive := m.Snapshot(reader)
	m.Remove(th, 42)
	if v, ok := snLive.Get(42); !ok || v != 1 {
		t.Fatalf("live snapshot lost the key: (%d,%v)", v, ok)
	}
	snLive.Close()

	snGone := m.Snapshot(reader)
	if _, ok := snGone.Get(42); ok {
		t.Fatal("post-remove snapshot sees the key")
	}
	snGone.Close()
}

func TestRangeSortedAndBounded(t *testing.T) {
	m, reg := newMap(core.TSC, 1)
	th := reg.MustRegister()
	for _, k := range []uint64{50, 10, 30, 20, 40} {
		m.Put(th, k, k)
	}
	m.Remove(th, 30)
	sn := m.Snapshot(th)
	defer sn.Close()
	got := sn.Range(15, 45, nil)
	want := []uint64{20, 40}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if got[i].Key != want[i] {
			t.Fatalf("range = %v, want keys %v", got, want)
		}
	}
}

func TestRevisionChainsBounded(t *testing.T) {
	m, reg := newMap(core.Logical, 2)
	th := reg.MustRegister()
	// Key 32 hits the %32 truncation trigger.
	for i := uint64(0); i < 20000; i++ {
		m.Put(th, 32, i)
	}
	if n := m.RevisionLen(32); n > 1000 {
		t.Fatalf("revision chain unbounded: %d", n)
	}
	// An open snapshot pins history.
	sn := m.Snapshot(th)
	base := sn.TS()
	for i := uint64(0); i < 1000; i++ {
		m.Put(th, 32, i)
	}
	if v, ok := sn.Get(32); !ok || v != 19999 {
		t.Fatalf("pinned snapshot lost its revision: (%d,%v) at bound %d", v, ok, base)
	}
	sn.Close()
}

func TestConcurrentMixedWorkload(t *testing.T) {
	m, reg := newMap(core.TSC, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := reg.MustRegister()
			defer th.Release()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 1500; i++ {
				switch rng.Intn(4) {
				case 0:
					m.Put(th, uint64(rng.Intn(100)+1), uint64(i))
				case 1:
					m.Remove(th, uint64(rng.Intn(100)+1))
				case 2:
					batch := []Op{
						{Key: uint64(rng.Intn(100) + 1), Val: uint64(i)},
						{Key: uint64(rng.Intn(100) + 1), Val: uint64(i)},
					}
					m.Apply(th, batch)
				default:
					sn := m.Snapshot(th)
					kvs := sn.Range(1, 100, nil)
					for j := 1; j < len(kvs); j++ {
						if kvs[j].Key <= kvs[j-1].Key {
							t.Errorf("unsorted/duplicate snapshot range at %d", j)
							sn.Close()
							return
						}
					}
					sn.Close()
				}
			}
		}(g)
	}
	wg.Wait()
}

// Package lazylist implements the lazy sorted linked list (Heller,
// Herlihy, Luchangco, Moir, Scherer, Shavit, OPODIS 2005) augmented with
// range queries via bundled references and via vCAS. The paper tested
// these combinations and reports no TSC benefit — the list's O(n)
// traversal, not the timestamp, is the bottleneck — and our benchmark
// harness reproduces that negative result (BenchmarkLazyList*).
//
// The bundled variant uses the same insertion/deletion-timestamp
// protocol as package skiplist (labels assigned before bundle entries
// finalize) so elemental reads and snapshots share linearization
// instants. The vCAS variant versions both the links and the marked
// flag, so every read fixes labels by helping, as in Wei et al.
package lazylist

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tscds/internal/bundle"
	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
	"tscds/internal/vcas"
)

// MaxKey is the largest insertable key; 0 is the head sentinel's slot.
const MaxKey = ^uint64(0) - 2

// ---------------------------------------------------------------------
// Bundled variant
// ---------------------------------------------------------------------

type bnode struct {
	key, val uint64
	mu       sync.Mutex
	its, dts atomic.Uint64
	next     atomic.Pointer[bnode]
	bnd      bundle.Bundle[bnode]
}

func alive(dts uint64) bool { return dts == 0 || dts == uint64(core.Pending) }

// BundleList is the lazy list with bundled next links.
type BundleList struct {
	src  core.Source
	reg  *core.Registry
	gc   *obs.GC
	tr   *trace.Recorder
	np   *pool.Pool[bnode]
	ep   *pool.Pool[bundle.Entry[bnode]]
	rb   *core.ReadBound
	head *bnode
}

// NewBundle creates an empty bundled lazy list.
func NewBundle(src core.Source, reg *core.Registry) *BundleList {
	h := &bnode{}
	h.bnd.Init(nil)
	return &BundleList{src: src, reg: reg, head: h}
}

// Source returns the list's timestamp source.
func (t *BundleList) Source() core.Source { return t.src }

// SetGC wires reclamation reporting to g (nil disables it). Call before
// the list sees concurrent traffic.
func (t *BundleList) SetGC(g *obs.GC) { t.gc = g }

// SetTrace attaches a flight recorder (nil disables it). Call before the
// list sees concurrent traffic.
func (t *BundleList) SetTrace(tr *trace.Recorder) { t.tr = tr }

// SetReadBound routes bundle-entry truncation through a retention
// watermark (time-travel reads). Call before the list sees traffic.
func (t *BundleList) SetReadBound(rb *core.ReadBound) { t.rb = rb }

// SetAlloc selects the allocation mode for nodes and bundle entries (see
// Config.Alloc). The lazy list has no reclamation scheme — unlinked
// nodes and truncated entry tails stay reachable to in-flight readers —
// so pooling is allocation-side only (arena chunking, batching); nothing
// published is recycled. Call before the list sees concurrent traffic.
func (t *BundleList) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[bnode](t.reg.Cap(), mode, ps)
	t.ep = pool.New[bundle.Entry[bnode]](t.reg.Cap(), mode, ps)
}

// newBnode allocates an insertable node, from the pool when configured.
func (t *BundleList) newBnode(tid int, key, val uint64) *bnode {
	if t.np == nil {
		n := &bnode{key: key, val: val}
		n.its.Store(uint64(core.Pending))
		return n
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.its.Store(uint64(core.Pending))
	n.dts.Store(0)
	return n
}

// noteRetries reports an update's validation-failure retries.
func (t *BundleList) noteRetries(th *core.Thread, retries uint64) {
	if t.tr == nil || retries == 0 {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
}

func (t *BundleList) find(key uint64) (pred, cur *bnode) {
	pred = t.head
	cur = pred.next.Load()
	for cur != nil && cur.key < key {
		pred = cur
		cur = cur.next.Load()
	}
	return pred, cur
}

// Contains reports whether key is present.
func (t *BundleList) Contains(_ *core.Thread, key uint64) bool {
	_, cur := t.find(key)
	if cur == nil || cur.key != key {
		return false
	}
	if cur.its.Load() == uint64(core.Pending) {
		return false
	}
	return alive(cur.dts.Load())
}

// Get returns the value stored at key.
func (t *BundleList) Get(th *core.Thread, key uint64) (uint64, bool) {
	_, cur := t.find(key)
	if cur == nil || cur.key != key || cur.its.Load() == uint64(core.Pending) || !alive(cur.dts.Load()) {
		return 0, false
	}
	return cur.val, true
}

// Insert adds key with val; it returns false if already present.
func (t *BundleList) Insert(th *core.Thread, key, val uint64) bool {
	if key == 0 || key > MaxKey {
		return false
	}
	var retries uint64
	for {
		pred, cur := t.find(key)
		if cur != nil && cur.key == key {
			for cur.its.Load() == uint64(core.Pending) {
				runtime.Gosched()
			}
			if !alive(cur.dts.Load()) {
				retries++
				continue // deleted, unlink imminent
			}
			t.noteRetries(th, retries)
			return false
		}
		pred.mu.Lock()
		if !alive(pred.dts.Load()) || pred.next.Load() != cur {
			pred.mu.Unlock()
			retries++
			continue
		}
		am := t.tr.Now()
		n := t.newBnode(th.ID, key, val)
		t.tr.Span(th.ID, trace.PhaseAlloc, am)
		n.next.Store(cur)
		// The Prepare..Finalize window is bundling's labeling phase.
		lb := t.tr.Now()
		eInit := n.bnd.InitPendingIn(t.ep, th.ID, cur)
		ePred := pred.bnd.PrepareIn(t.ep, th.ID, n)
		pred.next.Store(n)
		ts := t.src.Advance()
		n.its.Store(ts)
		pred.bnd.Finalize(ePred, ts)
		n.bnd.Finalize(eInit, ts)
		t.tr.Span(th.ID, trace.PhaseLabel, lb)
		t.maybeTruncate(pred, key)
		pred.mu.Unlock()
		t.noteRetries(th, retries)
		return true
	}
}

// Delete removes key; it returns false if absent.
func (t *BundleList) Delete(th *core.Thread, key uint64) bool {
	var retries uint64
	for {
		pred, cur := t.find(key)
		if cur == nil || cur.key != key {
			t.noteRetries(th, retries)
			return false
		}
		for cur.its.Load() == uint64(core.Pending) {
			runtime.Gosched()
		}
		pred.mu.Lock()
		cur.mu.Lock()
		if !alive(pred.dts.Load()) || pred.next.Load() != cur {
			cur.mu.Unlock()
			pred.mu.Unlock()
			retries++
			continue
		}
		if !alive(cur.dts.Load()) {
			cur.mu.Unlock()
			pred.mu.Unlock()
			t.noteRetries(th, retries)
			return false
		}
		lb := t.tr.Now()
		ePred := pred.bnd.PrepareIn(t.ep, th.ID, cur.next.Load())
		ts := t.src.Advance()
		cur.dts.Store(ts) // linearization
		pred.bnd.Finalize(ePred, ts)
		pred.next.Store(cur.next.Load())
		t.tr.Span(th.ID, trace.PhaseLabel, lb)
		t.maybeTruncate(pred, key)
		cur.mu.Unlock()
		pred.mu.Unlock()
		t.noteRetries(th, retries)
		return true
	}
}

func (t *BundleList) maybeTruncate(n *bnode, key uint64) {
	if key%64 == 0 {
		dropped := n.bnd.Truncate(core.PruneBoundOf(t.rb, t.reg))
		if t.gc != nil && dropped > 0 {
			t.gc.BundlePruned.Add(uint64(dropped))
		}
	}
}

// RangeQuery appends every pair in [lo,hi] as of one snapshot. The walk
// starts at the head: unlike the skip list there is no index, which is
// exactly why the paper saw no TSC gain here — the O(n) walk dwarfs the
// timestamp access.
func (t *BundleList) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		mark := tr.Now()
		s := t.src.Peek()
		tr.Span(th.ID, trace.PhaseTimestamp, mark)
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.src, s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s; the reservation
// keeps bundle entries labeled at or below s from being truncated before
// the announcement lands here.
func (t *BundleList) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if lo == 0 {
		lo = 1
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	tr := t.tr
	th.AnnounceRQ(s)
	mark := tr.Now()
	var derefs, spins uint64
	cur, ok, d, sp := t.head.bnd.PtrAtWalk(s)
	derefs, spins = uint64(d), uint64(sp)
	for ok && cur != nil && cur.key <= hi {
		if cur.key >= lo {
			out = append(out, core.KV{Key: cur.key, Val: cur.val})
		}
		cur, ok, d, sp = cur.bnd.PtrAtWalk(s)
		derefs += uint64(d)
		spins += uint64(sp)
	}
	tr.Span(th.ID, trace.PhaseTraverse, mark)
	tr.Count(th.ID, trace.PhaseBundleDeref, derefs)
	tr.Count(th.ID, trace.PhasePendingWait, spins)
	th.DoneRQ()
	return out
}

// Len counts present keys; quiescent use only.
func (t *BundleList) Len() int {
	n := 0
	for cur := t.head.next.Load(); cur != nil; cur = cur.next.Load() {
		n++
	}
	return n
}

// ---------------------------------------------------------------------
// vCAS variant
// ---------------------------------------------------------------------

type vnode struct {
	key, val uint64
	mu       sync.Mutex
	marked   vcas.Object[bool]
	next     vcas.Object[*vnode]
}

func newVnode(key, val uint64, next *vnode) *vnode {
	n := &vnode{key: key, val: val}
	n.marked.Init(false)
	n.next.Init(next)
	return n
}

// VcasList is the lazy list with versioned links and marks.
type VcasList struct {
	src  core.Source
	reg  *core.Registry
	gc   *obs.GC
	tr   *trace.Recorder
	np   *pool.Pool[vnode]
	vp   *pool.Pool[vcas.Version[*vnode]]
	bp   *pool.Pool[vcas.Version[bool]]
	rb   *core.ReadBound
	head *vnode
}

// NewVcas creates an empty vCAS lazy list.
func NewVcas(src core.Source, reg *core.Registry) *VcasList {
	return &VcasList{src: src, reg: reg, head: newVnode(0, 0, nil)}
}

// Source returns the list's timestamp source.
func (t *VcasList) Source() core.Source { return t.src }

// SetGC wires reclamation reporting to g (nil disables it). Call before
// the list sees concurrent traffic.
func (t *VcasList) SetGC(g *obs.GC) { t.gc = g }

// SetTrace attaches a flight recorder (nil disables it). Call before the
// list sees concurrent traffic.
func (t *VcasList) SetTrace(tr *trace.Recorder) { t.tr = tr }

// SetReadBound routes version-chain truncation through a retention
// watermark (time-travel reads). Call before the list sees traffic.
func (t *VcasList) SetReadBound(rb *core.ReadBound) { t.rb = rb }

// SetAlloc selects the allocation mode for nodes and vCAS versions (see
// Config.Alloc). As with the bundled variant, nothing published is ever
// recycled — versions detached by Truncate stay readable to snapshot
// readers — so the pools supply arena chunking and batching only. Call
// before the list sees concurrent traffic.
func (t *VcasList) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[vnode](t.reg.Cap(), mode, ps)
	t.vp = pool.New[vcas.Version[*vnode]](t.reg.Cap(), mode, ps)
	t.bp = pool.New[vcas.Version[bool]](t.reg.Cap(), mode, ps)
}

// newVnodeIn is newVnode drawing the node and its seed versions from the
// pools when configured.
func (t *VcasList) newVnodeIn(tid int, key, val uint64, next *vnode) *vnode {
	if t.np == nil {
		return newVnode(key, val, next)
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.marked.InitIn(t.bp, tid, false)
	n.next.InitIn(t.vp, tid, next)
	return n
}

// noteRetries reports an update's validation-failure retries.
func (t *VcasList) noteRetries(th *core.Thread, retries uint64) {
	if t.tr == nil || retries == 0 {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
}

func (t *VcasList) find(key uint64) (pred, cur *vnode) {
	pred = t.head
	cur = pred.next.Read(t.src)
	for cur != nil && cur.key < key {
		pred = cur
		cur = cur.next.Read(t.src)
	}
	return pred, cur
}

// Contains reports whether key is present.
func (t *VcasList) Contains(_ *core.Thread, key uint64) bool {
	_, cur := t.find(key)
	return cur != nil && cur.key == key && !cur.marked.Read(t.src)
}

// Get returns the value stored at key.
func (t *VcasList) Get(th *core.Thread, key uint64) (uint64, bool) {
	_, cur := t.find(key)
	if cur == nil || cur.key != key || cur.marked.Read(t.src) {
		return 0, false
	}
	return cur.val, true
}

// Insert adds key with val; it returns false if already present.
func (t *VcasList) Insert(th *core.Thread, key, val uint64) bool {
	if key == 0 || key > MaxKey {
		return false
	}
	var retries uint64
	for {
		pred, cur := t.find(key)
		if cur != nil && cur.key == key && !cur.marked.Read(t.src) {
			t.noteRetries(th, retries)
			return false
		}
		if cur != nil && cur.key == key {
			retries++
			continue // marked; wait for unlink
		}
		pred.mu.Lock()
		if pred.marked.Read(t.src) || pred.next.Read(t.src) != cur {
			pred.mu.Unlock()
			retries++
			continue
		}
		am := t.tr.Now()
		n := t.newVnodeIn(th.ID, key, val, cur)
		t.tr.Span(th.ID, trace.PhaseAlloc, am)
		pred.next.WriteIn(t.src, t.vp, th.ID, n)
		t.maybeTruncate(pred, key)
		pred.mu.Unlock()
		t.noteRetries(th, retries)
		return true
	}
}

// Delete removes key; it returns false if absent.
func (t *VcasList) Delete(th *core.Thread, key uint64) bool {
	var retries uint64
	for {
		pred, cur := t.find(key)
		if cur == nil || cur.key != key {
			t.noteRetries(th, retries)
			return false
		}
		pred.mu.Lock()
		cur.mu.Lock()
		if pred.marked.Read(t.src) || pred.next.Read(t.src) != cur {
			cur.mu.Unlock()
			pred.mu.Unlock()
			retries++
			continue
		}
		if cur.marked.Read(t.src) {
			cur.mu.Unlock()
			pred.mu.Unlock()
			t.noteRetries(th, retries)
			return false
		}
		cur.marked.WriteIn(t.src, t.bp, th.ID, true) // linearization
		pred.next.WriteIn(t.src, t.vp, th.ID, cur.next.Read(t.src))
		t.maybeTruncate(pred, key)
		cur.mu.Unlock()
		pred.mu.Unlock()
		t.noteRetries(th, retries)
		return true
	}
}

func (t *VcasList) maybeTruncate(n *vnode, key uint64) {
	if key%64 == 0 {
		min := core.PruneBoundOf(t.rb, t.reg)
		dropped := n.next.Truncate(min) + n.marked.Truncate(min)
		if t.gc != nil && dropped > 0 {
			t.gc.VersionsPruned.Add(uint64(dropped))
		}
	}
}

// RangeQuery appends every pair in [lo,hi] as of one snapshot (vCAS
// style: the query advances the camera).
func (t *VcasList) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		mark := tr.Now()
		s := t.src.Snapshot()
		tr.Span(th.ID, trace.PhaseTimestamp, mark)
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.src, s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s; the reservation
// keeps versions labeled at or below s from being truncated before the
// announcement lands here.
func (t *VcasList) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if lo == 0 {
		lo = 1
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	tr := t.tr
	th.AnnounceRQ(s)
	mark := tr.Now()
	var walk uint64
	cur, _, h := t.head.next.ReadVersionWalk(t.src, s)
	walk += uint64(h)
	for cur != nil && cur.key <= hi {
		if cur.key >= lo {
			m, ok, h := cur.marked.ReadVersionWalk(t.src, s)
			walk += uint64(h)
			if ok && !m {
				out = append(out, core.KV{Key: cur.key, Val: cur.val})
			}
		}
		cur, _, h = cur.next.ReadVersionWalk(t.src, s)
		walk += uint64(h)
	}
	tr.Span(th.ID, trace.PhaseTraverse, mark)
	tr.Count(th.ID, trace.PhaseVersionWalk, walk)
	th.DoneRQ()
	return out
}

// Len counts present keys; quiescent use only.
func (t *VcasList) Len() int {
	n := 0
	for cur := t.head.next.Read(t.src); cur != nil; cur = cur.next.Read(t.src) {
		n++
	}
	return n
}

package lazylist

import (
	"math/rand"
	"sync"
	"testing"

	"tscds/internal/core"
)

type listLike interface {
	Insert(th *core.Thread, key, val uint64) bool
	Delete(th *core.Thread, key uint64) bool
	Contains(th *core.Thread, key uint64) bool
	Get(th *core.Thread, key uint64) (uint64, bool)
	RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV
	Len() int
}

func variants() map[string]func(core.Kind, int) (listLike, *core.Registry) {
	return map[string]func(core.Kind, int) (listLike, *core.Registry){
		"bundle": func(k core.Kind, n int) (listLike, *core.Registry) {
			reg := core.NewRegistry(n)
			return NewBundle(core.New(k), reg), reg
		},
		"vcas": func(k core.Kind, n int) (listLike, *core.Registry) {
			reg := core.NewRegistry(n)
			return NewVcas(core.New(k), reg), reg
		},
	}
}

func TestBasicOps(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 2)
			th := reg.MustRegister()
			if l.Contains(th, 3) || l.Delete(th, 3) {
				t.Fatal("empty list misbehaved")
			}
			if !l.Insert(th, 3, 30) || l.Insert(th, 3, 31) {
				t.Fatal("insert semantics")
			}
			if v, ok := l.Get(th, 3); !ok || v != 30 {
				t.Fatalf("Get=(%d,%v)", v, ok)
			}
			if !l.Delete(th, 3) || l.Contains(th, 3) || l.Len() != 0 {
				t.Fatal("delete semantics")
			}
			if l.Insert(th, 0, 1) {
				t.Fatal("key 0 insertable")
			}
		})
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.Logical, 1)
			th := reg.MustRegister()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(21))
			for i := 0; i < 8000; i++ {
				k := uint64(rng.Intn(150) + 1)
				switch rng.Intn(4) {
				case 0, 1:
					_, exists := model[k]
					if got := l.Insert(th, k, k*2); got == exists {
						t.Fatalf("Insert(%d)=%v exists=%v", k, got, exists)
					}
					if !exists {
						model[k] = k * 2
					}
				case 2:
					_, exists := model[k]
					if got := l.Delete(th, k); got != exists {
						t.Fatalf("Delete(%d)=%v exists=%v", k, got, exists)
					}
					delete(model, k)
				default:
					_, exists := model[k]
					if got := l.Contains(th, k); got != exists {
						t.Fatalf("Contains(%d)=%v want %v", k, got, exists)
					}
				}
			}
			got := l.RangeQuery(th, 1, MaxKey, nil)
			if len(got) != len(model) || l.Len() != len(model) {
				t.Fatalf("range=%d Len=%d model=%d", len(got), l.Len(), len(model))
			}
			for _, kv := range got {
				if v, ok := model[kv.Key]; !ok || v != kv.Val {
					t.Fatalf("kv %v vs model", kv)
				}
			}
		})
	}
}

func TestRangeSorted(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 1)
			th := reg.MustRegister()
			for _, k := range []uint64{50, 10, 30, 20, 40} {
				l.Insert(th, k, k)
			}
			got := l.RangeQuery(th, 15, 45, nil)
			want := []uint64{20, 30, 40}
			if len(got) != len(want) {
				t.Fatalf("range=%v", got)
			}
			for i := range want {
				if got[i].Key != want[i] {
					t.Fatalf("range=%v want %v", got, want)
				}
			}
		})
	}
}

func TestConcurrentStripedAndPrefix(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 4)
			const n = 1200
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for k := uint64(1); k <= n; k++ {
					l.Insert(th, k, k)
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for {
					got := l.RangeQuery(th, 1, n, nil)
					for i, kv := range got {
						if kv.Key != uint64(i+1) {
							t.Errorf("snapshot gap at %d: %d", i, kv.Key)
							return
						}
					}
					if len(got) == n {
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}

func TestConcurrentAccounting(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 8)
			const gs = 4
			var ins, del [gs]int
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := reg.MustRegister()
					defer th.Release()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < 1200; i++ {
						k := uint64(rng.Intn(25) + 1)
						if rng.Intn(2) == 0 {
							if l.Insert(th, k, k) {
								ins[g]++
							}
						} else if l.Delete(th, k) {
							del[g]++
						}
					}
				}(g)
			}
			wg.Wait()
			ti, td := 0, 0
			for g := range ins {
				ti += ins[g]
				td += del[g]
			}
			if got := l.Len(); got != ti-td {
				t.Fatalf("Len=%d inserts-deletes=%d", got, ti-td)
			}
		})
	}
}

func TestGetSemantics(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 1)
			th := reg.MustRegister()
			if _, ok := l.Get(th, 9); ok {
				t.Fatal("Get on empty list")
			}
			l.Insert(th, 9, 90)
			if v, ok := l.Get(th, 9); !ok || v != 90 {
				t.Fatalf("Get = (%d,%v)", v, ok)
			}
			l.Delete(th, 9)
			if _, ok := l.Get(th, 9); ok {
				t.Fatal("Get after delete")
			}
		})
	}
}

func TestRangeBoundsClamped(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.Logical, 1)
			th := reg.MustRegister()
			l.Insert(th, 1, 1)
			l.Insert(th, MaxKey, 2)
			got := l.RangeQuery(th, 0, ^uint64(0), nil)
			if len(got) != 2 {
				t.Fatalf("clamped full range = %v", got)
			}
		})
	}
}

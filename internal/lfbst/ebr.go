package lfbst

import (
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/ebrrq"
	"tscds/internal/epoch"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
)

// This file hosts the EBR-RQ augmentation of the same EFRB external BST:
// the pairing the original EBR-RQ paper targets (lock-free structure,
// range queries via insertion/deletion labels plus limbo-list scans).
// The lock-free labeling variant uses DCSS against the logical
// timestamp's address; the lock-based variant shares the global
// readers-writer lock. Per the paper's §IV, the lock-free variant
// cannot exist over TSC at all, and the lock-based one gains little.

// enode is an EFRB node carrying EBR-RQ labels on leaves.
type enode struct {
	key  uint64
	val  uint64
	leaf bool
	// leaves only:
	itime, dtime ebrrq.Label
	// limboRefs counts limbo entries holding this leaf. A leaf can
	// legitimately be retired more than once: a deleter retires before
	// its flag CAS (scannable-before-unreachable), the attempt can fail
	// with the leaf surviving, and a later delete — possibly by another
	// thread that raced past the same dtime==Pending check — retires it
	// again. With a Recycle hook each limbo entry eventually reports the
	// leaf once, so the pool may take it only when the count hits zero;
	// recycling on the first report would double-free the second entry.
	limboRefs atomic.Int32
	// internal nodes only:
	left, right atomic.Pointer[enode]
	update      atomicEUpdate
}

type atomicEUpdate struct {
	p atomic.Pointer[eUpdateRec]
}

func (a *atomicEUpdate) load() *eUpdateRec {
	if v := a.p.Load(); v != nil {
		return v
	}
	return eCleanRec
}

func (a *atomicEUpdate) cas(old, new *eUpdateRec) bool { return a.p.CompareAndSwap(old, new) }

type eUpdateRec struct {
	state uint8
	ins   *eInsertInfo
	del   *eDeleteInfo
}

var eCleanRec = &eUpdateRec{state: clean}

type eInsertInfo struct {
	p, l, newInternal *enode
	newLeaf           *enode // labeled by whoever completes the insert
	flag              *eUpdateRec
}

type eDeleteInfo struct {
	gp, p, l *enode
	pupdate  *eUpdateRec
	flag     *eUpdateRec
}

func newELeaf(key, val uint64) *enode {
	n := &enode{key: key, val: val, leaf: true}
	n.itime.Init()
	n.dtime.Init()
	return n
}

func newEInternal(key uint64, l, r *enode) *enode {
	n := &enode{key: key}
	n.left.Store(l)
	n.right.Store(r)
	n.update.p.Store(eCleanRec)
	return n
}

// EBRTree is the lock-free BST augmented with EBR-RQ range queries.
type EBRTree struct {
	src      core.Source
	provider *ebrrq.Provider
	reg      *core.Registry
	em       *epoch.Manager[*enode]
	tr       *trace.Recorder
	np       *pool.Pool[enode] // nil in GC mode
	root     *enode
}

// NewEBR builds an empty tree; the LockFree variant requires an
// addressable (logical) source and otherwise returns
// ebrrq.ErrRequiresAddress.
func NewEBR(src core.Source, reg *core.Registry, variant ebrrq.Variant) (*EBRTree, error) {
	var provider *ebrrq.Provider
	if variant == ebrrq.LockFree {
		p, err := ebrrq.NewLockFree(src)
		if err != nil {
			return nil, err
		}
		provider = p
	} else {
		provider = ebrrq.NewLockBased(src)
	}
	t := &EBRTree{
		src:      src,
		provider: provider,
		reg:      reg,
		root:     newEInternal(inf2, newELeaf(inf1, 0), newELeaf(inf2, 0)),
	}
	t.em = epoch.NewManager[*enode](reg.Cap(),
		func(n *enode, min core.TS) bool { return n.dtime.Get() >= min },
		reg.MinActiveRQ)
	return t, nil
}

// Source returns the tree's timestamp source.
func (t *EBRTree) Source() core.Source { return t.src }

// SetGC wires limbo-list reporting to g (nil disables it). Call before
// the tree sees concurrent traffic.
func (t *EBRTree) SetGC(g *obs.GC) { t.em.SetGC(g) }

// SetAlloc switches node allocation to the pooled/arena facade and
// recycles pruned limbo leaves back into it, gated by the per-leaf
// limbo reference count (see enode.limboRefs). Only leaves ever enter
// limbo; internal nodes are pool-*allocated* but reclaimed by the GC,
// since nothing proves when the last helper drops a spliced-out
// internal node. The eUpdateRec/eInsertInfo/eDeleteInfo records stay
// heap-allocated on purpose: the EFRB protocol compares them by
// pointer identity, so recycling them would reintroduce ABA on the
// update-field CASes. Call before the tree sees traffic.
func (t *EBRTree) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[enode](t.reg.Cap(), mode, ps)
	if t.np != nil {
		t.em.SetRecycle(func(n *enode, tid int) {
			if n.limboRefs.Add(-1) == 0 {
				t.np.Put(tid, n)
			}
		})
	}
}

// newLeaf acquires and fully re-initializes a leaf. One recycled node
// may have served as an internal node before, so every discriminating
// field is reset (leaf=true and fresh labels decide visibility).
func (t *EBRTree) newLeaf(tid int, key, val uint64) *enode {
	if t.np == nil {
		return newELeaf(key, val)
	}
	n := t.np.Get(tid)
	n.key, n.val, n.leaf = key, val, true
	n.itime.Init()
	n.dtime.Init()
	n.left.Store(nil)
	n.right.Store(nil)
	n.update.p.Store(nil)
	return n
}

// newInternal is newLeaf's internal-node counterpart; leaf=false gates
// every label read, so stale labels from a previous life as a leaf are
// unreachable.
func (t *EBRTree) newInternal(tid int, key uint64, l, r *enode) *enode {
	if t.np == nil {
		return newEInternal(key, l, r)
	}
	n := t.np.Get(tid)
	n.key, n.val, n.leaf = key, 0, false
	n.left.Store(l)
	n.right.Store(r)
	n.update.p.Store(eCleanRec)
	return n
}

// SetTrace wires the flight recorder (nil disables it) through the tree,
// its timestamp provider (lock-wait/label spans) and its epoch manager
// (pin/advance stalls). Call before the tree sees concurrent traffic.
func (t *EBRTree) SetTrace(tr *trace.Recorder) {
	t.tr = tr
	t.provider.SetTrace(tr)
	t.em.SetTrace(tr)
}

// SetReadBound routes the epoch pruner's minimum-bound through a
// retention watermark: with a non-zero window, limbo nodes whose
// deletion timestamps are inside the window survive pruning (and
// DrainAll) even with no range query in flight. A zero window keeps
// classic EBR-RQ behavior. EBR-RQ retains no per-key version history,
// so this extends limbo lifetimes only; it does not enable time-travel
// reads on this technique. Call before the tree sees traffic.
func (t *EBRTree) SetReadBound(rb *core.ReadBound) {
	if rb == nil || rb.Window() == 0 {
		return
	}
	reg := t.reg
	t.em.SetMinRQ(func() core.TS { return rb.PruneBound(reg) })
}

func (t *EBRTree) noteUpdate(th *core.Thread, retries, helps uint64) {
	if t.tr == nil {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
	t.tr.Count(th.ID, trace.PhaseHelp, helps)
}

// Provider exposes the timestamp provider (tests).
func (t *EBRTree) Provider() *ebrrq.Provider { return t.provider }

// LimboLen reports retained limbo leaves (tests).
func (t *EBRTree) LimboLen() int { return t.em.LimboLen() }

// Drain eagerly advances the epoch and prunes every limbo list.
// Quiescent use only, like Len.
func (t *EBRTree) Drain() { t.em.DrainAll() }

func (t *EBRTree) child(n *enode, key uint64) *atomic.Pointer[enode] {
	if key < n.key {
		return &n.left
	}
	return &n.right
}

type eSearchResult struct {
	gp, p, l          *enode
	gpupdate, pupdate *eUpdateRec
}

func (t *EBRTree) search(key uint64) eSearchResult {
	var r eSearchResult
	r.l = t.root
	for !r.l.leaf {
		r.gp, r.p = r.p, r.l
		r.gpupdate = r.pupdate
		r.pupdate = r.p.update.load()
		r.l = t.child(r.p, key).Load()
	}
	return r
}

// Contains reports whether key is present: leaf reachable, its insert
// linearized (itime assigned), its delete not (dtime unassigned). A
// pending label means the corresponding update has not linearized yet,
// keeping contains consistent with snapshot visibility.
func (t *EBRTree) Contains(th *core.Thread, key uint64) bool {
	t.em.Pin(th.ID)
	l := t.search(key).l
	t.em.Unpin(th.ID)
	return l.key == key && l.itime.Get() != core.Pending && l.dtime.Get() == core.Pending
}

// Get returns the value stored at key.
func (t *EBRTree) Get(th *core.Thread, key uint64) (uint64, bool) {
	t.em.Pin(th.ID)
	l := t.search(key).l
	t.em.Unpin(th.ID)
	if l.key != key || l.itime.Get() == core.Pending || l.dtime.Get() != core.Pending {
		return 0, false
	}
	return l.val, true
}

// Insert adds key with val; it returns false if key is already present.
func (t *EBRTree) Insert(th *core.Thread, key, val uint64) bool {
	if key > MaxKey {
		return false
	}
	t.em.Pin(th.ID)
	defer t.em.Unpin(th.ID)
	amark := t.tr.Now()
	nl := t.newLeaf(th.ID, key, val)
	t.tr.Span(th.ID, trace.PhaseAlloc, amark)
	var retries, helps uint64
	for {
		r := t.search(key)
		if r.l.key == key {
			if r.l.dtime.Get() != core.Pending {
				// Deleted leaf still wired in; help remove and retry.
				if r.pupdate.state != clean {
					t.help(r.pupdate)
					helps++
				}
				retries++
				continue
			}
			// Help the racing insert linearize before failing against it.
			t.provider.Label(&r.l.itime)
			t.noteUpdate(th, retries, helps)
			// nl was never published; it can go straight back.
			t.np.Put(th.ID, nl)
			return false
		}
		if r.pupdate.state != clean {
			t.help(r.pupdate)
			helps++
			retries++
			continue
		}
		var ni *enode
		if key < r.l.key {
			ni = t.newInternal(th.ID, r.l.key, nl, r.l)
		} else {
			ni = t.newInternal(th.ID, key, r.l, nl)
		}
		op := &eInsertInfo{p: r.p, l: r.l, newInternal: ni, newLeaf: nl}
		rec := &eUpdateRec{state: iflag, ins: op}
		op.flag = rec
		if r.p.update.cas(r.pupdate, rec) {
			t.helpInsert(op)
			t.noteUpdate(th, retries, helps)
			return true
		}
		t.help(r.p.update.load())
		// The flag CAS failed, so op was never installed and ni never
		// became reachable; reuse it next attempt.
		t.np.Put(th.ID, ni)
		helps++
		retries++
	}
}

// Delete removes key; it returns false if absent.
func (t *EBRTree) Delete(th *core.Thread, key uint64) bool {
	if key > MaxKey {
		return false
	}
	t.em.Pin(th.ID)
	defer t.em.Unpin(th.ID)
	retired := false
	var retries, helps uint64
	for {
		r := t.search(key)
		if r.l.key != key || r.l.dtime.Get() != core.Pending {
			t.noteUpdate(th, retries, helps)
			return false
		}
		if r.l.itime.Get() == core.Pending {
			// Help the insert linearize before deleting its leaf.
			t.provider.Label(&r.l.itime)
			helps++
			retries++
			continue
		}
		if r.gpupdate.state != clean {
			t.help(r.gpupdate)
			helps++
			retries++
			continue
		}
		if r.pupdate.state != clean {
			t.help(r.pupdate)
			helps++
			retries++
			continue
		}
		// Make the leaf scannable in limbo BEFORE any helper can splice
		// it out of the tree: a leaf must never be unreachable in both.
		// Retiring a leaf that ends up surviving (this attempt fails) is
		// harmless — visibility is decided by its labels, not by limbo
		// membership, and range queries deduplicate.
		if !retired {
			if t.np != nil {
				r.l.limboRefs.Add(1)
			}
			t.em.Retire(th.ID, r.l)
			retired = true
		}
		op := &eDeleteInfo{gp: r.gp, p: r.p, l: r.l, pupdate: r.pupdate}
		rec := &eUpdateRec{state: dflag, del: op}
		op.flag = rec
		if r.gp.update.cas(r.gpupdate, rec) {
			if t.helpDelete(op) {
				t.noteUpdate(th, retries, helps)
				return true
			}
			retries++
			continue
		}
		t.help(r.gp.update.load())
		helps++
		retries++
	}
}

func (t *EBRTree) help(u *eUpdateRec) {
	switch u.state {
	case iflag:
		t.helpInsert(u.ins)
	case dflag:
		t.helpDelete(u.del)
	case mark:
		t.helpMarked(u.del)
	}
}

func (t *EBRTree) helpInsert(op *eInsertInfo) {
	t.casChild(op.p, op.l, op.newInternal)
	// Whoever completes the insert linearizes it; Label assigns once.
	t.provider.Label(&op.newLeaf.itime)
	op.p.update.cas(op.flag, &eUpdateRec{state: clean})
}

func (t *EBRTree) helpDelete(op *eDeleteInfo) bool {
	markRec := &eUpdateRec{state: mark, del: op}
	if op.p.update.cas(op.pupdate, markRec) {
		// The mark is the point of no return: the splice is now
		// inevitable, so the delete linearizes here, before any helper
		// can make the leaf unreachable.
		t.provider.Label(&op.l.dtime)
		t.helpMarked(op)
		return true
	}
	cur := op.p.update.load()
	if cur.state == mark && cur.del == op {
		t.provider.Label(&op.l.dtime)
		t.helpMarked(op)
		return true
	}
	t.help(cur)
	op.gp.update.cas(op.flag, &eUpdateRec{state: clean})
	return false
}

func (t *EBRTree) helpMarked(op *eDeleteInfo) {
	// Every path into the splice first attempts the dtime label, so an
	// unreachable leaf is always labeled (and already in limbo).
	t.provider.Label(&op.l.dtime)
	var other *enode
	if right := op.p.right.Load(); right == op.l {
		other = op.p.left.Load()
	} else {
		other = right
	}
	t.casChild(op.gp, op.p, other)
	op.gp.update.cas(op.flag, &eUpdateRec{state: clean})
}

func (t *EBRTree) casChild(parent, old, new *enode) bool {
	if new.key < parent.key {
		return parent.left.CompareAndSwap(old, new)
	}
	return parent.right.CompareAndSwap(old, new)
}

// RangeQuery appends every pair with lo <= key <= hi as of one
// linearizable snapshot: live leaves satisfying the visibility predicate
// plus limbo leaves deleted after the snapshot bound.
func (t *EBRTree) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		var mark uint64
		if tr != nil {
			mark = tr.Now()
		}
		s := t.provider.Snapshot()
		if tr != nil {
			// Includes the exclusive lock acquisition the lock-based variant
			// needs; the wait alone also lands in the shared lock-wait phase.
			tr.Span(th.ID, trace.PhaseTimestamp, mark)
		}
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.src, s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		if tr != nil {
			tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		}
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s, and — for the
// lock-based variant — must have obtained s while holding this tree's
// Provider RQLock, so every in-flight (read, label) pair on this shard
// settled at or below s. The reservation keeps limbo nodes with
// deletion labels at or below s scannable until the announcement lands.
func (t *EBRTree) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if hi > MaxKey {
		hi = MaxKey
	}
	t.em.Pin(th.ID)
	tr := t.tr
	var mark uint64
	if tr != nil {
		mark = tr.Now()
	}
	th.AnnounceRQ(s)

	acc := make(map[uint64]uint64)
	t.collectE(t.root, lo, hi, s, acc)
	if tr != nil {
		tr.Span(th.ID, trace.PhaseTraverse, mark)
		mark = tr.Now()
	}
	t.em.ForEachRetired(func(n *enode) bool {
		if n.key >= lo && n.key <= hi && ebrrq.VisibleAt(n.itime.Get(), n.dtime.Get(), s) {
			acc[n.key] = n.val
		}
		return true
	})
	if tr != nil {
		tr.Span(th.ID, trace.PhaseLimboScan, mark)
	}

	t.em.Unpin(th.ID)
	th.DoneRQ()
	for k, v := range acc {
		out = append(out, core.KV{Key: k, Val: v})
	}
	return out
}

func (t *EBRTree) collectE(n *enode, lo, hi uint64, s core.TS, acc map[uint64]uint64) {
	if n == nil {
		return
	}
	if n.leaf {
		if n.key >= lo && n.key <= hi && ebrrq.VisibleAt(n.itime.Get(), n.dtime.Get(), s) {
			acc[n.key] = n.val
		}
		return
	}
	if lo < n.key {
		t.collectE(n.left.Load(), lo, hi, s, acc)
	}
	if hi >= n.key {
		t.collectE(n.right.Load(), lo, hi, s, acc)
	}
}

// Len counts present keys; quiescent use only (tests).
func (t *EBRTree) Len() int {
	n := 0
	var walk func(*enode)
	walk = func(x *enode) {
		if x == nil {
			return
		}
		if x.leaf {
			if x.key <= MaxKey && x.dtime.Get() == core.Pending {
				n++
			}
			return
		}
		walk(x.left.Load())
		walk(x.right.Load())
	}
	walk(t.root)
	return n
}

package lfbst

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tscds/internal/core"
	"tscds/internal/ebrrq"
)

func newEBRTree(t *testing.T, kind core.Kind, variant ebrrq.Variant, threads int) (*EBRTree, *core.Registry) {
	t.Helper()
	reg := core.NewRegistry(threads)
	tr, err := NewEBR(core.New(kind), reg, variant)
	if err != nil {
		t.Fatal(err)
	}
	return tr, reg
}

func ebrVariants(t *testing.T) map[string]func(int) (*EBRTree, *core.Registry) {
	return map[string]func(int) (*EBRTree, *core.Registry){
		"lock-logical": func(n int) (*EBRTree, *core.Registry) {
			return newEBRTree(t, core.Logical, ebrrq.LockBased, n)
		},
		"lock-tsc": func(n int) (*EBRTree, *core.Registry) {
			return newEBRTree(t, core.TSC, ebrrq.LockBased, n)
		},
		"lockfree-logical": func(n int) (*EBRTree, *core.Registry) {
			return newEBRTree(t, core.Logical, ebrrq.LockFree, n)
		},
	}
}

func TestEBRBSTRejectsLockFreeTSC(t *testing.T) {
	reg := core.NewRegistry(1)
	if _, err := NewEBR(core.New(core.TSC), reg, ebrrq.LockFree); !errors.Is(err, ebrrq.ErrRequiresAddress) {
		t.Fatalf("err = %v, want ErrRequiresAddress", err)
	}
}

func TestEBRBSTBasicOps(t *testing.T) {
	for name, mk := range ebrVariants(t) {
		t.Run(name, func(t *testing.T) {
			tr, reg := mk(2)
			th := reg.MustRegister()
			if tr.Contains(th, 5) || tr.Delete(th, 5) {
				t.Fatal("empty tree misbehaved")
			}
			if !tr.Insert(th, 5, 50) || tr.Insert(th, 5, 51) {
				t.Fatal("insert semantics")
			}
			if v, ok := tr.Get(th, 5); !ok || v != 50 {
				t.Fatalf("Get = (%d,%v)", v, ok)
			}
			if !tr.Delete(th, 5) || tr.Contains(th, 5) || tr.Delete(th, 5) {
				t.Fatal("delete semantics")
			}
			// Reinsertion after deletion must work (fresh leaf).
			if !tr.Insert(th, 5, 52) {
				t.Fatal("reinsert failed")
			}
			if v, _ := tr.Get(th, 5); v != 52 {
				t.Fatalf("reinserted value = %d", v)
			}
		})
	}
}

func TestEBRBSTSequentialModel(t *testing.T) {
	for name, mk := range ebrVariants(t) {
		t.Run(name, func(t *testing.T) {
			tr, reg := mk(2)
			th := reg.MustRegister()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(77))
			for i := 0; i < 12000; i++ {
				k := uint64(rng.Intn(250))
				switch rng.Intn(4) {
				case 0, 1:
					_, exists := model[k]
					if got := tr.Insert(th, k, k+9); got == exists {
						t.Fatalf("op %d: Insert(%d)=%v exists=%v", i, k, got, exists)
					}
					if !exists {
						model[k] = k + 9
					}
				case 2:
					_, exists := model[k]
					if got := tr.Delete(th, k); got != exists {
						t.Fatalf("op %d: Delete(%d)=%v exists=%v", i, k, got, exists)
					}
					delete(model, k)
				default:
					_, exists := model[k]
					if got := tr.Contains(th, k); got != exists {
						t.Fatalf("op %d: Contains(%d)=%v want %v", i, k, got, exists)
					}
				}
			}
			if tr.Len() != len(model) {
				t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
			}
			got := tr.RangeQuery(th, 0, MaxKey, nil)
			if len(got) != len(model) {
				t.Fatalf("range=%d model=%d", len(got), len(model))
			}
			for _, kv := range got {
				if v, ok := model[kv.Key]; !ok || v != kv.Val {
					t.Fatalf("kv %v vs model (%d,%v)", kv, v, ok)
				}
			}
		})
	}
}

func TestEBRBSTConcurrentStriped(t *testing.T) {
	for name, mk := range ebrVariants(t) {
		t.Run(name, func(t *testing.T) {
			tr, reg := mk(8)
			const gs = 4
			const per = 1000
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := reg.MustRegister()
					defer th.Release()
					base := uint64(g * 100_000)
					for i := uint64(0); i < per; i++ {
						if !tr.Insert(th, base+i, i) {
							t.Errorf("insert %d failed", base+i)
							return
						}
					}
					for i := uint64(0); i < per; i += 2 {
						if !tr.Delete(th, base+i) {
							t.Errorf("delete %d failed", base+i)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if n := tr.Len(); n != gs*per/2 {
				t.Fatalf("Len=%d want %d", n, gs*per/2)
			}
		})
	}
}

// Snapshot prefix probe, the linearizability check, against the
// lock-free labeling variant specifically (DCSS under snapshot storms).
func TestEBRBSTSnapshotPrefix(t *testing.T) {
	for name, mk := range ebrVariants(t) {
		t.Run(name, func(t *testing.T) {
			tr, reg := mk(4)
			const n = 2500
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for k := uint64(1); k <= n; k++ {
					tr.Insert(th, k, k)
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for {
					got := tr.RangeQuery(th, 1, n, nil)
					keys := make([]uint64, len(got))
					for i, kv := range got {
						keys[i] = kv.Key
					}
					sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
					for i, k := range keys {
						if k != uint64(i+1) {
							t.Errorf("snapshot gap at %d: %d", i, k)
							return
						}
					}
					if len(keys) == n {
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}

// Deleted-during-query keys must be captured from limbo: start a query
// while a deleter sweeps; every snapshot must be a suffix.
func TestEBRBSTSnapshotSuffixViaLimbo(t *testing.T) {
	tr, reg := newEBRTree(t, core.Logical, ebrrq.LockFree, 4)
	const n = 2500
	{
		th := reg.MustRegister()
		perm := rand.New(rand.NewSource(5)).Perm(n)
		for _, i := range perm {
			tr.Insert(th, uint64(i+1), uint64(i+1))
		}
		th.Release()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		for k := uint64(1); k <= n; k++ {
			tr.Delete(th, k)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		for {
			got := tr.RangeQuery(th, 1, n, nil)
			if len(got) == 0 {
				return
			}
			keys := make([]uint64, len(got))
			for i, kv := range got {
				keys[i] = kv.Key
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for i, k := range keys {
				if k != keys[0]+uint64(i) {
					t.Errorf("snapshot not a suffix at %d: %d (first %d)", i, k, keys[0])
					return
				}
			}
			if keys[len(keys)-1] != n {
				t.Errorf("suffix missing tail %d", keys[len(keys)-1])
				return
			}
		}
	}()
	wg.Wait()
}

func TestEBRBSTLimboBounded(t *testing.T) {
	tr, reg := newEBRTree(t, core.Logical, ebrrq.LockBased, 2)
	th := reg.MustRegister()
	for i := 0; i < 20000; i++ {
		k := uint64(i % 40)
		tr.Insert(th, k, k)
		tr.Delete(th, k)
	}
	if n := tr.LimboLen(); n > 5000 {
		t.Fatalf("limbo grew unbounded: %d", n)
	}
}

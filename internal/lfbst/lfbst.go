// Package lfbst is a lock-free external (leaf-oriented) binary search
// tree in the style of Ellen, Fatourou, Ruppert and van Breugel ("Non-
// blocking binary search trees", PODC 2010), augmented with linearizable
// range queries by replacing its child pointers with vCAS objects (Wei et
// al., PPoPP 2021) — the combination evaluated in the paper's Figure 2,
// where switching the vCAS camera from a logical counter to TSC yields up
// to 5.5x.
//
// Keys live in immutable leaves; internal nodes route. Every structural
// change is exactly one child-pointer CAS, so each update receives
// exactly one version label, which is what makes the vCAS recipe apply
// verbatim. Updates coordinate through flag/mark descriptors installed in
// internal nodes' update fields, with full helping: any thread that
// encounters an in-flight operation completes it.
package lfbst

import (
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
	"tscds/internal/vcas"
)

// Sentinel keys. Real keys must be strictly below Inf1.
const (
	inf2 = ^uint64(0)
	inf1 = ^uint64(0) - 1
	// MaxKey is the largest insertable key.
	MaxKey = ^uint64(0) - 2
)

// update-field states (EFRB).
const (
	clean uint8 = iota
	iflag
	dflag
	mark
)

// updateRec is the (state, info) pair CAS'd atomically in a node's
// update field.
type updateRec struct {
	state uint8
	ins   *insertInfo
	del   *deleteInfo
}

var cleanRec = &updateRec{state: clean}

type insertInfo struct {
	p, l, newInternal *node
	flag              *updateRec // the IFLAG record guarding this op
}

type deleteInfo struct {
	gp, p, l *node
	pupdate  *updateRec
	flag     *updateRec // the DFLAG record guarding this op
}

type node struct {
	key  uint64
	val  uint64 // leaves only
	leaf bool
	// internal nodes only:
	left, right vcas.Object[*node]
	update      atomicUpdate
}

// atomicUpdate wraps the node's update field. Records are distinct heap
// allocations, so pointer-identity CAS gives exactly EFRB's ABA-safe
// (state, info) pair semantics.
type atomicUpdate struct {
	p atomic.Pointer[updateRec]
}

func (a *atomicUpdate) load() *updateRec {
	if v := a.p.Load(); v != nil {
		return v
	}
	return cleanRec
}

func (a *atomicUpdate) store(r *updateRec) { a.p.Store(r) }

func (a *atomicUpdate) cas(old, new *updateRec) bool {
	return a.p.CompareAndSwap(old, new)
}

func newLeaf(key, val uint64) *node {
	return &node{key: key, val: val, leaf: true}
}

func newInternal(key uint64, l, r *node) *node {
	n := &node{key: key}
	n.left.Init(l)
	n.right.Init(r)
	n.update.store(cleanRec)
	return n
}

// Tree is the vCAS-augmented lock-free BST. All operations require a
// registered thread handle; range queries announce their snapshot bound
// through it so version-chain truncation never outruns them.
type Tree struct {
	src  core.Source
	reg  *core.Registry
	gc   *obs.GC
	tr   *trace.Recorder
	np   *pool.Pool[node]
	vp   *pool.Pool[vcas.Version[*node]]
	rb   *core.ReadBound
	root *node
}

// New creates an empty tree over the given timestamp source and thread
// registry.
func New(src core.Source, reg *core.Registry) *Tree {
	root := newInternal(inf2, newLeaf(inf1, 0), newLeaf(inf2, 0))
	return &Tree{src: src, reg: reg, root: root}
}

// Source returns the tree's timestamp source.
func (t *Tree) Source() core.Source { return t.src }

// SetGC wires reclamation reporting to g (nil disables it). Call before
// the tree sees concurrent traffic.
func (t *Tree) SetGC(g *obs.GC) { t.gc = g }

// SetTrace wires the flight recorder (nil disables it): update retry and
// helping counts, range-query timestamp/traverse spans, and version-walk
// lengths. Call before the tree sees concurrent traffic.
func (t *Tree) SetTrace(tr *trace.Recorder) { t.tr = tr }

// SetReadBound routes version-chain truncation through a retention
// watermark (time-travel reads). Call before the tree sees traffic.
func (t *Tree) SetReadBound(rb *core.ReadBound) { t.rb = rb }

// SetAlloc selects the allocation mode for tree nodes and vCAS versions
// (see Config.Alloc). The vCAS tree has no reclamation scheme — spliced-
// out nodes and truncated version tails stay reachable to snapshot
// readers — so only never-published memory (a leaf or internal node that
// lost its CAS, a version that lost the head race) flows back; the pools
// otherwise supply arena chunking and batching. updateRec descriptors
// are deliberately NOT pooled: their pointer identity is what makes the
// EFRB (state, info) CAS ABA-safe. Call before concurrent traffic.
func (t *Tree) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[node](t.reg.Cap(), mode, ps)
	t.vp = pool.New[vcas.Version[*node]](t.reg.Cap(), mode, ps)
}

// newLeafIn is newLeaf drawing from the node pool. A pooled node may
// have been an internal node in a previous life, so the discriminating
// flag and the update field are reset; stale left/right version heads
// are never read while leaf is true and are re-seeded by newInternalIn
// if the node is later reused as an internal node.
func (t *Tree) newLeafIn(tid int, key, val uint64) *node {
	if t.np == nil {
		return newLeaf(key, val)
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.leaf = true
	n.update.store(nil) // load() maps nil to cleanRec
	return n
}

// newInternalIn is newInternal drawing the node and its two seed
// versions from the pools.
func (t *Tree) newInternalIn(tid int, key uint64, l, r *node) *node {
	if t.np == nil {
		return newInternal(key, l, r)
	}
	n := t.np.Get(tid)
	n.key, n.val = key, 0
	n.leaf = false
	n.left.InitIn(t.vp, tid, l)
	n.right.InitIn(t.vp, tid, r)
	n.update.store(cleanRec)
	return n
}

// noteUpdate flushes an update attempt's retry/help tallies to the
// recorder (zero counts are dropped there).
func (t *Tree) noteUpdate(th *core.Thread, retries, helps uint64) {
	if t.tr == nil {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
	t.tr.Count(th.ID, trace.PhaseHelp, helps)
}

// child returns the current target of the routing edge for key at n.
func (t *Tree) child(n *node, key uint64) *vcas.Object[*node] {
	if key < n.key {
		return &n.left
	}
	return &n.right
}

type searchResult struct {
	gp, p, l          *node
	gpupdate, pupdate *updateRec
}

func (t *Tree) search(key uint64) searchResult {
	var r searchResult
	r.l = t.root
	for !r.l.leaf {
		r.gp, r.p = r.p, r.l
		r.gpupdate = r.pupdate
		r.pupdate = r.p.update.load()
		r.l = t.child(r.p, key).Read(t.src)
	}
	return r
}

// Contains reports whether key is present.
func (t *Tree) Contains(_ *core.Thread, key uint64) bool {
	return t.search(key).l.key == key
}

// Get returns the value stored at key.
func (t *Tree) Get(_ *core.Thread, key uint64) (uint64, bool) {
	l := t.search(key).l
	if l.key != key {
		return 0, false
	}
	return l.val, true
}

// Insert adds key with val; it returns false if key is already present.
func (t *Tree) Insert(th *core.Thread, key, val uint64) bool {
	if key > MaxKey {
		return false
	}
	am := t.tr.Now()
	nl := t.newLeafIn(th.ID, key, val)
	t.tr.Span(th.ID, trace.PhaseAlloc, am)
	var retries, helps uint64
	for {
		r := t.search(key)
		if r.l.key == key {
			t.noteUpdate(th, retries, helps)
			// nl was never published; hand it straight back.
			if t.np != nil {
				t.np.Put(th.ID, nl)
			}
			return false
		}
		if r.pupdate.state != clean {
			t.help(r.pupdate, th.ID)
			helps++
			retries++
			continue
		}
		// Sibling order inside the new internal node.
		var ni *node
		if key < r.l.key {
			ni = t.newInternalIn(th.ID, r.l.key, nl, r.l)
		} else {
			ni = t.newInternalIn(th.ID, key, r.l, nl)
		}
		op := &insertInfo{p: r.p, l: r.l, newInternal: ni}
		rec := &updateRec{state: iflag, ins: op}
		op.flag = rec
		if r.p.update.cas(r.pupdate, rec) {
			t.helpInsert(op, th.ID)
			t.maybeTruncate(r.p, key)
			t.noteUpdate(th, retries, helps)
			return true
		}
		// The flag CAS lost, so ni (and its seed versions) were never
		// published; recycle them before retrying.
		if t.np != nil {
			t.vp.Put(th.ID, ni.left.Head())
			t.vp.Put(th.ID, ni.right.Head())
			t.np.Put(th.ID, ni)
		}
		t.help(r.p.update.load(), th.ID)
		helps++
		retries++
	}
}

// Delete removes key; it returns false if absent.
func (t *Tree) Delete(th *core.Thread, key uint64) bool {
	if key > MaxKey {
		return false
	}
	var retries, helps uint64
	for {
		r := t.search(key)
		if r.l.key != key {
			t.noteUpdate(th, retries, helps)
			return false
		}
		if r.gpupdate.state != clean {
			t.help(r.gpupdate, th.ID)
			helps++
			retries++
			continue
		}
		if r.pupdate.state != clean {
			t.help(r.pupdate, th.ID)
			helps++
			retries++
			continue
		}
		op := &deleteInfo{gp: r.gp, p: r.p, l: r.l, pupdate: r.pupdate}
		rec := &updateRec{state: dflag, del: op}
		op.flag = rec
		if r.gp.update.cas(r.gpupdate, rec) {
			if t.helpDelete(op, th.ID) {
				t.maybeTruncate(r.gp, key)
				t.noteUpdate(th, retries, helps)
				return true
			}
			retries++
			continue
		}
		t.help(r.gp.update.load(), th.ID)
		helps++
		retries++
	}
}

// tid in the helping functions is the helping thread's slot (its own,
// not the flagging thread's) and only routes pool allocations; -1 is
// valid for callers without a slot.
func (t *Tree) help(u *updateRec, tid int) {
	switch u.state {
	case iflag:
		t.helpInsert(u.ins, tid)
	case dflag:
		t.helpDelete(u.del, tid)
	case mark:
		t.helpMarked(u.del, tid)
	}
}

func (t *Tree) helpInsert(op *insertInfo, tid int) {
	t.casChild(op.p, op.l, op.newInternal, tid)
	op.p.update.cas(op.flag, &updateRec{state: clean})
}

func (t *Tree) helpDelete(op *deleteInfo, tid int) bool {
	markRec := &updateRec{state: mark, del: op}
	if op.p.update.cas(op.pupdate, markRec) {
		t.helpMarked(op, tid)
		return true
	}
	cur := op.p.update.load()
	if cur.state == mark && cur.del == op {
		// Another helper installed the mark; finish together.
		t.helpMarked(op, tid)
		return true
	}
	// The parent changed under us: back out by unflagging the
	// grandparent so the deleter retries.
	t.help(cur, tid)
	op.gp.update.cas(op.flag, &updateRec{state: clean})
	return false
}

func (t *Tree) helpMarked(op *deleteInfo, tid int) {
	// The parent is marked, so its children are frozen; splice the
	// sibling of the deleted leaf into the grandparent.
	var other *node
	if right := op.p.right.Read(t.src); right == op.l {
		other = op.p.left.Read(t.src)
	} else {
		other = right
	}
	t.casChild(op.gp, op.p, other, tid)
	op.gp.update.cas(op.flag, &updateRec{state: clean})
}

// casChild performs the single structural CAS of an operation on the
// appropriate routing edge — the vCAS write that receives the
// operation's timestamp label.
func (t *Tree) casChild(parent, old, new *node, tid int) bool {
	if new.key < parent.key {
		return parent.left.CompareAndSwapIn(t.src, t.vp, tid, old, new)
	}
	return parent.right.CompareAndSwapIn(t.src, t.vp, tid, old, new)
}

// maybeTruncate occasionally trims version chains near a completed
// update, bounding history to what active range queries can still read.
func (t *Tree) maybeTruncate(n *node, key uint64) {
	if key%64 != 0 {
		return
	}
	min := core.PruneBoundOf(t.rb, t.reg)
	dropped := n.left.Truncate(min) + n.right.Truncate(min)
	if t.gc != nil && dropped > 0 {
		t.gc.VersionsPruned.Add(uint64(dropped))
	}
}

// RangeQuery appends to out every pair with lo <= key <= hi as of one
// linearizable snapshot, and returns the extended slice. The snapshot
// bound comes from Source.Snapshot: with a logical source this is the
// camera fetch-and-add that Figure 2 shows dominating at scale; with TSC
// it is a fenced core-local read.
func (t *Tree) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		var mark uint64
		if tr != nil {
			mark = tr.Now()
		}
		s := t.src.Snapshot()
		if tr != nil {
			tr.Span(th.ID, trace.PhaseTimestamp, mark)
		}
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.src, s) {
			return out
		}
		// The source switched generations under us: the bound orders
		// correctly only against labels of its own generation, so the
		// collected result could tear the snapshot. Discard and retry
		// against a fresh bound.
		if tr != nil {
			tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		}
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided snapshot
// bound s, announcing it on th and withdrawing the announcement before
// returning. The caller must have called th.BeginRQ before obtaining s
// (cross-shard queries reserve every shard, then read one shared
// timestamp); the reservation is what keeps version chains with labels
// at or below s from being truncated in the window before s is
// announced here.
func (t *Tree) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if hi > MaxKey {
		hi = MaxKey
	}
	tr := t.tr
	var mark uint64
	if tr != nil {
		mark = tr.Now()
	}
	th.AnnounceRQ(s)
	var walk uint64
	out = t.collect(t.root, lo, hi, s, out, &walk)
	if tr != nil {
		tr.Span(th.ID, trace.PhaseTraverse, mark)
		tr.Count(th.ID, trace.PhaseVersionWalk, walk)
	}
	th.DoneRQ()
	return out
}

func (t *Tree) collect(n *node, lo, hi uint64, s core.TS, out []core.KV, walk *uint64) []core.KV {
	if n == nil {
		return out
	}
	if n.leaf {
		if n.key >= lo && n.key <= hi {
			out = append(out, core.KV{Key: n.key, Val: n.val})
		}
		return out
	}
	if lo < n.key {
		if l, ok, hops := n.left.ReadVersionWalk(t.src, s); ok {
			*walk += uint64(hops)
			out = t.collect(l, lo, hi, s, out, walk)
		}
	}
	if hi >= n.key {
		if r, ok, hops := n.right.ReadVersionWalk(t.src, s); ok {
			*walk += uint64(hops)
			out = t.collect(r, lo, hi, s, out, walk)
		}
	}
	return out
}

// Len counts present keys; quiescent use only (tests).
func (t *Tree) Len() int {
	n := 0
	var walk func(*node)
	walk = func(x *node) {
		if x == nil {
			return
		}
		if x.leaf {
			if x.key <= MaxKey {
				n++
			}
			return
		}
		walk(x.left.Read(t.src))
		walk(x.right.Read(t.src))
	}
	walk(t.root)
	return n
}

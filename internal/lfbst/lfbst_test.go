package lfbst

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tscds/internal/core"
)

func newTree(kind core.Kind, threads int) (*Tree, *core.Registry) {
	reg := core.NewRegistry(threads)
	return New(core.New(kind), reg), reg
}

func TestEmptyTree(t *testing.T) {
	tr, reg := newTree(core.Logical, 1)
	th := reg.MustRegister()
	if tr.Contains(th, 5) {
		t.Fatal("empty tree contains 5")
	}
	if _, ok := tr.Get(th, 5); ok {
		t.Fatal("empty tree Get(5) ok")
	}
	if tr.Delete(th, 5) {
		t.Fatal("empty tree Delete(5) true")
	}
	if got := tr.RangeQuery(th, 0, MaxKey, nil); len(got) != 0 {
		t.Fatalf("empty tree range = %v", got)
	}
	if tr.Len() != 0 {
		t.Fatalf("empty tree Len = %d", tr.Len())
	}
}

func TestInsertContainsDelete(t *testing.T) {
	tr, reg := newTree(core.Logical, 1)
	th := reg.MustRegister()
	if !tr.Insert(th, 10, 100) {
		t.Fatal("insert 10 failed")
	}
	if tr.Insert(th, 10, 200) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := tr.Get(th, 10); !ok || v != 100 {
		t.Fatalf("Get(10) = (%d,%v)", v, ok)
	}
	if !tr.Delete(th, 10) {
		t.Fatal("delete 10 failed")
	}
	if tr.Contains(th, 10) {
		t.Fatal("10 present after delete")
	}
	if tr.Delete(th, 10) {
		t.Fatal("second delete succeeded")
	}
}

func TestSentinelKeysRejected(t *testing.T) {
	tr, reg := newTree(core.Logical, 1)
	th := reg.MustRegister()
	for _, k := range []uint64{MaxKey + 1, MaxKey + 2} {
		if tr.Insert(th, k, 1) {
			t.Fatalf("insert of sentinel key %d succeeded", k)
		}
		if tr.Delete(th, k) {
			t.Fatalf("delete of sentinel key %d succeeded", k)
		}
	}
	if !tr.Insert(th, MaxKey, 1) {
		t.Fatal("MaxKey must be insertable")
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	tr, reg := newTree(core.TSC, 1)
	th := reg.MustRegister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(500))
		switch rng.Intn(3) {
		case 0:
			_, exists := model[k]
			if got := tr.Insert(th, k, k*7); got == exists {
				t.Fatalf("op %d: Insert(%d) = %v, model exists = %v", i, k, got, exists)
			}
			if !exists {
				model[k] = k * 7
			}
		case 1:
			_, exists := model[k]
			if got := tr.Delete(th, k); got != exists {
				t.Fatalf("op %d: Delete(%d) = %v, model exists = %v", i, k, got, exists)
			}
			delete(model, k)
		case 2:
			_, exists := model[k]
			if got := tr.Contains(th, k); got != exists {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, exists)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", tr.Len(), len(model))
	}
	got := tr.RangeQuery(th, 0, MaxKey, nil)
	if len(got) != len(model) {
		t.Fatalf("range returned %d keys, model has %d", len(got), len(model))
	}
	for _, kv := range got {
		if v, ok := model[kv.Key]; !ok || v != kv.Val {
			t.Fatalf("range kv %v disagrees with model (%d,%v)", kv, v, ok)
		}
	}
}

func TestRangeQueryBounds(t *testing.T) {
	tr, reg := newTree(core.Logical, 1)
	th := reg.MustRegister()
	for k := uint64(10); k <= 100; k += 10 {
		tr.Insert(th, k, k)
	}
	keys := func(lo, hi uint64) []uint64 {
		var ks []uint64
		for _, kv := range tr.RangeQuery(th, lo, hi, nil) {
			ks = append(ks, kv.Key)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		return ks
	}
	if got := keys(10, 10); len(got) != 1 || got[0] != 10 {
		t.Fatalf("point range = %v", got)
	}
	if got := keys(11, 19); len(got) != 0 {
		t.Fatalf("gap range = %v", got)
	}
	if got := keys(0, MaxKey); len(got) != 10 {
		t.Fatalf("full range = %v", got)
	}
	if got := keys(35, 75); len(got) != 4 {
		t.Fatalf("mid range = %v, want 40..70", got)
	}
}

func TestRangeQueryReuseBuffer(t *testing.T) {
	tr, reg := newTree(core.Logical, 1)
	th := reg.MustRegister()
	for k := uint64(1); k <= 5; k++ {
		tr.Insert(th, k, k)
	}
	buf := make([]core.KV, 0, 16)
	got := tr.RangeQuery(th, 1, 5, buf)
	if len(got) != 5 {
		t.Fatalf("got %d", len(got))
	}
	got2 := tr.RangeQuery(th, 2, 4, got[:0])
	if len(got2) != 3 {
		t.Fatalf("reused buffer got %d", len(got2))
	}
}

func TestConcurrentStripedInsertDelete(t *testing.T) {
	for _, kind := range []core.Kind{core.Logical, core.TSC} {
		tr, reg := newTree(kind, 8)
		const gs = 4
		const per = 1500
		var wg sync.WaitGroup
		for g := 0; g < gs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				base := uint64(g * 1_000_000)
				for i := uint64(0); i < per; i++ {
					if !tr.Insert(th, base+i, i) {
						t.Errorf("stripe %d: insert %d failed", g, i)
						return
					}
				}
				for i := uint64(0); i < per; i += 2 {
					if !tr.Delete(th, base+i) {
						t.Errorf("stripe %d: delete %d failed", g, i)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if n := tr.Len(); n != gs*per/2 {
			t.Fatalf("%v: Len = %d, want %d", kind, n, gs*per/2)
		}
		th := reg.MustRegister()
		for g := 0; g < gs; g++ {
			base := uint64(g * 1_000_000)
			for i := uint64(0); i < per; i++ {
				want := i%2 == 1
				if got := tr.Contains(th, base+i); got != want {
					t.Fatalf("%v: Contains(%d) = %v, want %v", kind, base+i, got, want)
				}
			}
		}
		th.Release()
	}
}

// Contended single-key hammering: all threads fight over few keys; the
// tree must stay consistent and ops must keep their exact semantics.
func TestConcurrentContendedOps(t *testing.T) {
	tr, reg := newTree(core.TSC, 8)
	var inserted, deleted [8]int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := reg.MustRegister()
			defer th.Release()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(8))
				if rng.Intn(2) == 0 {
					if tr.Insert(th, k, k) {
						inserted[g]++
					}
				} else {
					if tr.Delete(th, k) {
						deleted[g]++
					}
				}
			}
		}(g)
	}
	wg.Wait()
	ins, del := 0, 0
	for g := 0; g < 8; g++ {
		ins += inserted[g]
		del += deleted[g]
	}
	if got := tr.Len(); got != ins-del {
		t.Fatalf("Len = %d, successful inserts %d - deletes %d = %d", got, ins, del, ins-del)
	}
}

// The central linearizability check: a single writer inserts ascending
// keys, so every consistent snapshot is a prefix. Any gap means the
// range query mixed two points in time.
func TestSnapshotIsPrefixDuringAscendingInserts(t *testing.T) {
	for _, kind := range []core.Kind{core.Logical, core.TSC} {
		t.Run(kind.String(), func(t *testing.T) {
			tr, reg := newTree(kind, 4)
			const n = 6000
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for k := uint64(1); k <= n; k++ {
					tr.Insert(th, k, k)
				}
			}()
			reader := func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				buf := make([]core.KV, 0, n)
				for {
					got := tr.RangeQuery(th, 1, n, buf[:0])
					keys := make([]uint64, len(got))
					for i, kv := range got {
						keys[i] = kv.Key
					}
					sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
					for i, k := range keys {
						if k != uint64(i+1) {
							t.Errorf("snapshot not a prefix: position %d holds %d", i, k)
							return
						}
					}
					if len(keys) == n {
						return
					}
				}
			}
			wg.Add(2)
			go reader()
			go reader()
			wg.Wait()
		})
	}
}

// Mirror image: a single writer deletes ascending keys from a full tree,
// so every consistent snapshot is a suffix.
func TestSnapshotIsSuffixDuringAscendingDeletes(t *testing.T) {
	tr, reg := newTree(core.TSC, 4)
	const n = 5000
	{
		th := reg.MustRegister()
		for k := uint64(1); k <= n; k++ {
			tr.Insert(th, k, k)
		}
		th.Release()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		for k := uint64(1); k <= n; k++ {
			tr.Delete(th, k)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		buf := make([]core.KV, 0, n)
		for {
			got := tr.RangeQuery(th, 1, n, buf[:0])
			if len(got) == 0 {
				return
			}
			keys := make([]uint64, len(got))
			for i, kv := range got {
				keys[i] = kv.Key
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			first := keys[0]
			for i, k := range keys {
				if k != first+uint64(i) {
					t.Errorf("snapshot not a suffix: %d at offset %d from %d", k, i, first)
					return
				}
			}
			if keys[len(keys)-1] != n {
				t.Errorf("suffix missing tail: ends at %d", keys[len(keys)-1])
				return
			}
		}
	}()
	wg.Wait()
}

// Two writers on disjoint stripes: a snapshot projected onto each stripe
// must be a prefix of that stripe, independently.
func TestSnapshotPerStripePrefix(t *testing.T) {
	tr, reg := newTree(core.TSC, 4)
	const n = 3000
	var wg sync.WaitGroup
	writer := func(stripe uint64) {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		for k := uint64(1); k <= n; k++ {
			tr.Insert(th, k*2+stripe, k)
		}
	}
	wg.Add(2)
	go writer(0)
	go writer(1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		for round := 0; ; round++ {
			got := tr.RangeQuery(th, 0, MaxKey, nil)
			var even, odd []uint64
			for _, kv := range got {
				if kv.Key%2 == 0 {
					even = append(even, kv.Key/2)
				} else {
					odd = append(odd, kv.Key/2)
				}
			}
			for _, stripe := range [][]uint64{even, odd} {
				sort.Slice(stripe, func(i, j int) bool { return stripe[i] < stripe[j] })
				for i, k := range stripe {
					if k != uint64(i+1) {
						t.Errorf("stripe snapshot not a prefix at %d: %v...", i, k)
						return
					}
				}
			}
			if len(even) == n && len(odd) == n {
				return
			}
		}
	}()
	wg.Wait()
}

// Version chains must stay bounded when no range queries are active.
func TestVersionChainsBounded(t *testing.T) {
	tr, reg := newTree(core.Logical, 2)
	th := reg.MustRegister()
	// Hammer one key region so the same objects get many versions. Keys
	// are multiples of 64 so maybeTruncate actually fires.
	for i := 0; i < 20000; i++ {
		tr.Insert(th, 64, 1)
		tr.Delete(th, 64)
	}
	maxChain := 0
	var walk func(*node)
	walk = func(x *node) {
		if x == nil || x.leaf {
			return
		}
		if n := x.left.ChainLen(); n > maxChain {
			maxChain = n
		}
		if n := x.right.ChainLen(); n > maxChain {
			maxChain = n
		}
		walk(x.left.Read(tr.src))
		walk(x.right.Read(tr.src))
	}
	walk(tr.root)
	if maxChain > 1000 {
		t.Fatalf("version chain grew unbounded: %d entries", maxChain)
	}
}

// Structural invariant: the external BST ordering property holds after a
// concurrent workload (left subtree < node key <= right subtree).
func TestBSTInvariantAfterStress(t *testing.T) {
	tr, reg := newTree(core.TSC, 8)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := reg.MustRegister()
			defer th.Release()
			rng := rand.New(rand.NewSource(int64(g * 77)))
			for i := 0; i < 3000; i++ {
				k := uint64(rng.Intn(2000))
				switch rng.Intn(3) {
				case 0:
					tr.Insert(th, k, k)
				case 1:
					tr.Delete(th, k)
				default:
					tr.Contains(th, k)
				}
			}
		}(g)
	}
	wg.Wait()
	var check func(x *node, lo, hi uint64)
	check = func(x *node, lo, hi uint64) {
		if x == nil {
			return
		}
		if x.key < lo || x.key > hi {
			t.Fatalf("key %d outside routing bounds [%d,%d]", x.key, lo, hi)
		}
		if x.leaf {
			return
		}
		check(x.left.Read(tr.src), lo, x.key-1)
		check(x.right.Read(tr.src), x.key, hi)
	}
	check(tr.root, 0, inf2)
}

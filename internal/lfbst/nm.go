package lfbst

import (
	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
	"tscds/internal/vcas"
)

// This file implements the Natarajan-Mittal lock-free external BST
// ("Fast concurrent lock-free binary search trees", PPoPP 2014) with
// vCAS-versioned edges — the second lock-free tree the vCAS work
// targets. Where EFRB coordinates through descriptors in nodes, NM marks
// EDGES: a delete first FLAGS the edge to its leaf (injection, claiming
// the delete), then TAGS the sibling edge (freezing it against inserts),
// then swings the ancestor's edge past the removed chunk. Helping is
// implicit: any operation that trips over a flagged or tagged edge runs
// the cleanup itself.
//
// An edge value packs the target with its two mark bits; versioning the
// whole value means mark transitions create versions too, but snapshot
// traversals only follow .n — the delete is visible to a snapshot
// exactly from the version created by the ancestor swing, which is the
// single structural change.

// edgeVal is the (pointer, flag, tag) word stored in a versioned edge.
type edgeVal struct {
	n    *nmNode
	flag bool // the leaf below is being deleted
	tag  bool // frozen: cleanup in progress under this edge
}

type nmNode struct {
	key  uint64
	val  uint64 // leaves only
	leaf bool
	// internal nodes only:
	child [2]vcas.Object[edgeVal]
}

func nmLeaf(key, val uint64) *nmNode {
	return &nmNode{key: key, val: val, leaf: true}
}

func nmInternal(key uint64, l, r *nmNode) *nmNode {
	n := &nmNode{key: key}
	n.child[0].Init(edgeVal{n: l})
	n.child[1].Init(edgeVal{n: r})
	return n
}

// NM sentinels: three infinity keys above every real key.
const (
	nmInf0 = ^uint64(0) - 2
	nmInf1 = ^uint64(0) - 1
	nmInf2 = ^uint64(0)
)

// NMTree is the vCAS-augmented Natarajan-Mittal tree. Real keys must be
// at most MaxNMKey.
type NMTree struct {
	src core.Source
	reg *core.Registry
	gc  *obs.GC
	tr  *trace.Recorder
	np  *pool.Pool[nmNode]
	ep  *pool.Pool[vcas.Version[edgeVal]]
	rb  *core.ReadBound
	r   *nmNode // sentinel root, key inf2
	s   *nmNode // sentinel child, key inf1
}

// MaxNMKey is the largest insertable key.
const MaxNMKey = ^uint64(0) - 3

// NewNM creates an empty tree.
func NewNM(src core.Source, reg *core.Registry) *NMTree {
	s := nmInternal(nmInf1, nmLeaf(nmInf0, 0), nmLeaf(nmInf1, 0))
	r := nmInternal(nmInf2, s, nmLeaf(nmInf2, 0))
	return &NMTree{src: src, reg: reg, r: r, s: s}
}

// Source returns the tree's timestamp source.
func (t *NMTree) Source() core.Source { return t.src }

// SetGC wires reclamation reporting to g (nil disables it). Call before
// the tree sees concurrent traffic.
func (t *NMTree) SetGC(g *obs.GC) { t.gc = g }

// SetTrace wires the flight recorder (nil disables it). NM helping is
// implicit (cleanup of flagged/tagged edges), so cleanup calls made on
// behalf of another operation count as help. Call before the tree sees
// concurrent traffic.
func (t *NMTree) SetTrace(tr *trace.Recorder) { t.tr = tr }

// SetReadBound routes edge-version truncation through a retention
// watermark (time-travel reads). Call before the tree sees traffic.
func (t *NMTree) SetReadBound(rb *core.ReadBound) { t.rb = rb }

// SetAlloc selects the allocation mode for tree nodes and edge versions
// (see Config.Alloc). As with the EFRB tree, nothing published is ever
// recycled — only CAS losers and never-linked nodes flow back; the pools
// otherwise supply arena chunking and batching. Call before concurrent
// traffic.
func (t *NMTree) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[nmNode](t.reg.Cap(), mode, ps)
	t.ep = pool.New[vcas.Version[edgeVal]](t.reg.Cap(), mode, ps)
}

// nmLeafIn is nmLeaf drawing from the node pool. Stale child version
// heads from a past internal life are never read while leaf is true and
// are re-seeded by nmInternalIn on reuse as an internal node.
func (t *NMTree) nmLeafIn(tid int, key, val uint64) *nmNode {
	if t.np == nil {
		return nmLeaf(key, val)
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.leaf = true
	return n
}

// nmInternalIn is nmInternal drawing the node and its two seed versions
// from the pools.
func (t *NMTree) nmInternalIn(tid int, key uint64, l, r *nmNode) *nmNode {
	if t.np == nil {
		return nmInternal(key, l, r)
	}
	n := t.np.Get(tid)
	n.key, n.val = key, 0
	n.leaf = false
	n.child[0].InitIn(t.ep, tid, edgeVal{n: l})
	n.child[1].InitIn(t.ep, tid, edgeVal{n: r})
	return n
}

func (t *NMTree) noteUpdate(th *core.Thread, retries, helps uint64) {
	if t.tr == nil {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
	t.tr.Count(th.ID, trace.PhaseHelp, helps)
}

func nmDir(key, nodeKey uint64) int {
	if key < nodeKey {
		return 0
	}
	return 1
}

// seekRec captures the NM seek: ancestor→successor is the lowest
// untagged edge above parent; parent→leaf is the terminal edge.
type seekRec struct {
	ancestor, successor *nmNode
	parent              *nmNode
	leafEdge            edgeVal // observed value of parent→leaf
	leaf                *nmNode
}

func (t *NMTree) seek(key uint64) seekRec {
	var r seekRec
	r.ancestor, r.successor = t.r, t.s
	r.parent = t.s
	r.leafEdge = t.s.child[nmDir(key, t.s.key)].Read(t.src)
	cur := r.leafEdge.n
	for !cur.leaf {
		if !r.leafEdge.tag {
			r.ancestor = r.parent
			r.successor = cur
		}
		r.parent = cur
		r.leafEdge = cur.child[nmDir(key, cur.key)].Read(t.src)
		cur = r.leafEdge.n
	}
	r.leaf = cur
	return r
}

// Contains reports whether key is present. Present means reachable: a
// flagged (injected) leaf still counts until the ancestor swing, which
// is where the delete linearizes for readers and snapshots alike.
func (t *NMTree) Contains(_ *core.Thread, key uint64) bool {
	return t.seek(key).leaf.key == key
}

// Get returns the value stored at key.
func (t *NMTree) Get(_ *core.Thread, key uint64) (uint64, bool) {
	l := t.seek(key).leaf
	if l.key != key {
		return 0, false
	}
	return l.val, true
}

// Insert adds key with val; it returns false if already present.
func (t *NMTree) Insert(th *core.Thread, key, val uint64) bool {
	if key > MaxNMKey {
		return false
	}
	am := t.tr.Now()
	nl := t.nmLeafIn(th.ID, key, val)
	t.tr.Span(th.ID, trace.PhaseAlloc, am)
	var retries, helps uint64
	for {
		r := t.seek(key)
		if r.leaf.key == key {
			t.noteUpdate(th, retries, helps)
			// nl was never published; hand it straight back.
			if t.np != nil {
				t.np.Put(th.ID, nl)
			}
			return false
		}
		if r.leafEdge.flag || r.leafEdge.tag {
			t.cleanup(key, r, th.ID) // help the pending delete, then retry
			helps++
			retries++
			continue
		}
		var ni *nmNode
		if key < r.leaf.key {
			ni = t.nmInternalIn(th.ID, r.leaf.key, nl, r.leaf)
		} else {
			ni = t.nmInternalIn(th.ID, key, r.leaf, nl)
		}
		edge := &r.parent.child[nmDir(key, r.parent.key)]
		if edge.CompareAndSwapIn(t.src, t.ep, th.ID, r.leafEdge, edgeVal{n: ni}) {
			t.maybeTruncate(r.parent, key)
			t.noteUpdate(th, retries, helps)
			return true
		}
		// The edge CAS lost, so ni (and its seed versions) were never
		// published; recycle them before retrying.
		if t.np != nil {
			t.ep.Put(th.ID, ni.child[0].Head())
			t.ep.Put(th.ID, ni.child[1].Head())
			t.np.Put(th.ID, ni)
		}
		cur := edge.Read(t.src)
		if cur.n == r.leaf && (cur.flag || cur.tag) {
			t.cleanup(key, r, th.ID)
			helps++
		}
		retries++
	}
}

// Delete removes key; it returns false if absent. The NM two-phase
// protocol: injection (flag the leaf edge, claiming the delete), then
// cleanup (tag the sibling edge and swing the ancestor), with helpers
// able to finish the cleanup on the owner's behalf.
func (t *NMTree) Delete(th *core.Thread, key uint64) bool {
	if key > MaxNMKey {
		return false
	}
	injected := false
	var leaf *nmNode
	var retries, helps uint64
	for {
		r := t.seek(key)
		if !injected {
			if r.leaf.key != key {
				t.noteUpdate(th, retries, helps)
				return false
			}
			if r.leafEdge.flag || r.leafEdge.tag {
				t.cleanup(key, r, th.ID) // another delete owns it; help and retry
				helps++
				retries++
				continue
			}
			edge := &r.parent.child[nmDir(key, r.parent.key)]
			if edge.CompareAndSwapIn(t.src, t.ep, th.ID, r.leafEdge, edgeVal{n: r.leaf, flag: true}) {
				injected = true
				leaf = r.leaf
				r.leafEdge = edgeVal{n: r.leaf, flag: true}
				if t.cleanup(key, r, th.ID) {
					t.maybeTruncate(r.ancestor, key)
					t.noteUpdate(th, retries, helps)
					return true
				}
			}
			retries++
			continue
		}
		if r.leaf != leaf {
			t.noteUpdate(th, retries, helps)
			return true // a helper finished the removal
		}
		if t.cleanup(key, r, th.ID) {
			t.maybeTruncate(r.ancestor, key)
			t.noteUpdate(th, retries, helps)
			return true
		}
		retries++
	}
}

// cleanup finishes the delete described by the seek record: tag the
// sibling edge of the flagged side, then swing ancestor→successor to
// the sibling (carrying the sibling edge's flag, so a delete pending on
// the sibling leaf survives the move). Returns false when the tree moved
// underneath and the caller must re-seek. tid is the cleaning thread's
// own slot and only routes pool allocations.
func (t *NMTree) cleanup(key uint64, r seekRec, tid int) bool {
	parent := r.parent
	dSide := nmDir(key, parent.key)
	de := parent.child[dSide].Read(t.src)
	sSide := 1 - dSide
	if !de.flag {
		// The flag sits on the other side: we are helping a delete
		// whose key routes opposite to ours through this parent.
		se := parent.child[sSide].Read(t.src)
		if !se.flag {
			return false // nothing to clean here anymore
		}
		dSide, sSide = sSide, dSide
	}
	// Freeze the sibling edge.
	sEdge := &parent.child[sSide]
	se := sEdge.Read(t.src)
	if !se.tag {
		if !sEdge.CompareAndSwapIn(t.src, t.ep, tid, se, edgeVal{n: se.n, flag: se.flag, tag: true}) {
			se = sEdge.Read(t.src)
			if !se.tag {
				return false // sibling changed (e.g. an insert landed); re-seek
			}
		} else {
			se = edgeVal{n: se.n, flag: se.flag, tag: true}
		}
	}
	// Swing the ancestor past the removed chunk; this is the delete's
	// linearization point for readers and snapshots.
	aEdge := &r.ancestor.child[nmDir(key, r.ancestor.key)]
	return aEdge.CompareAndSwapIn(t.src, t.ep, tid,
		edgeVal{n: r.successor},
		edgeVal{n: se.n, flag: se.flag})
}

func (t *NMTree) maybeTruncate(n *nmNode, key uint64) {
	if key%64 != 0 || n.leaf {
		return
	}
	min := core.PruneBoundOf(t.rb, t.reg)
	dropped := n.child[0].Truncate(min) + n.child[1].Truncate(min)
	if t.gc != nil && dropped > 0 {
		t.gc.VersionsPruned.Add(uint64(dropped))
	}
}

// RangeQuery appends every pair with lo <= key <= hi as of one
// linearizable snapshot, traversing edge versions and ignoring marks.
func (t *NMTree) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		var mark uint64
		if tr != nil {
			mark = tr.Now()
		}
		s := t.src.Snapshot()
		if tr != nil {
			tr.Span(th.ID, trace.PhaseTimestamp, mark)
		}
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.src, s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		if tr != nil {
			tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		}
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s; see
// Tree.RangeQueryAt.
func (t *NMTree) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if hi > MaxNMKey {
		hi = MaxNMKey
	}
	tr := t.tr
	var mark uint64
	if tr != nil {
		mark = tr.Now()
	}
	th.AnnounceRQ(s)
	var walk uint64
	out = t.collect(t.r, lo, hi, s, out, &walk)
	if tr != nil {
		tr.Span(th.ID, trace.PhaseTraverse, mark)
		tr.Count(th.ID, trace.PhaseVersionWalk, walk)
	}
	th.DoneRQ()
	return out
}

func (t *NMTree) collect(n *nmNode, lo, hi uint64, s core.TS, out []core.KV, walk *uint64) []core.KV {
	if n == nil {
		return out
	}
	if n.leaf {
		if n.key >= lo && n.key <= hi {
			out = append(out, core.KV{Key: n.key, Val: n.val})
		}
		return out
	}
	if lo < n.key {
		if e, ok, hops := n.child[0].ReadVersionWalk(t.src, s); ok {
			*walk += uint64(hops)
			out = t.collect(e.n, lo, hi, s, out, walk)
		}
	}
	if hi >= n.key {
		if e, ok, hops := n.child[1].ReadVersionWalk(t.src, s); ok {
			*walk += uint64(hops)
			out = t.collect(e.n, lo, hi, s, out, walk)
		}
	}
	return out
}

// Len counts present keys; quiescent use only (tests).
func (t *NMTree) Len() int {
	n := 0
	var walk func(*nmNode)
	walk = func(x *nmNode) {
		if x == nil {
			return
		}
		if x.leaf {
			if x.key <= MaxNMKey {
				n++
			}
			return
		}
		walk(x.child[0].Read(t.src).n)
		walk(x.child[1].Read(t.src).n)
	}
	walk(t.r)
	return n
}

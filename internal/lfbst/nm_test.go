package lfbst

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tscds/internal/core"
)

func newNMTree(kind core.Kind, threads int) (*NMTree, *core.Registry) {
	reg := core.NewRegistry(threads)
	return NewNM(core.New(kind), reg), reg
}

func TestNMBasicOps(t *testing.T) {
	for _, kind := range []core.Kind{core.Logical, core.TSC} {
		tr, reg := newNMTree(kind, 2)
		th := reg.MustRegister()
		if tr.Contains(th, 5) || tr.Delete(th, 5) || tr.Len() != 0 {
			t.Fatal("empty tree misbehaved")
		}
		if !tr.Insert(th, 5, 50) || tr.Insert(th, 5, 51) {
			t.Fatal("insert semantics")
		}
		if v, ok := tr.Get(th, 5); !ok || v != 50 {
			t.Fatalf("Get = (%d,%v)", v, ok)
		}
		if !tr.Delete(th, 5) || tr.Contains(th, 5) || tr.Delete(th, 5) {
			t.Fatal("delete semantics")
		}
		if tr.Insert(th, MaxNMKey+1, 1) {
			t.Fatal("sentinel key insertable")
		}
		if !tr.Insert(th, MaxNMKey, 1) || !tr.Delete(th, MaxNMKey) {
			t.Fatal("MaxNMKey roundtrip failed")
		}
	}
}

func TestNMSequentialModel(t *testing.T) {
	tr, reg := newNMTree(core.TSC, 1)
	th := reg.MustRegister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(400))
		switch rng.Intn(3) {
		case 0:
			_, exists := model[k]
			if got := tr.Insert(th, k, k*9); got == exists {
				t.Fatalf("op %d: Insert(%d)=%v exists=%v", i, k, got, exists)
			}
			if !exists {
				model[k] = k * 9
			}
		case 1:
			_, exists := model[k]
			if got := tr.Delete(th, k); got != exists {
				t.Fatalf("op %d: Delete(%d)=%v exists=%v", i, k, got, exists)
			}
			delete(model, k)
		default:
			_, exists := model[k]
			if got := tr.Contains(th, k); got != exists {
				t.Fatalf("op %d: Contains(%d)=%v want %v", i, k, got, exists)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
	}
	got := tr.RangeQuery(th, 0, MaxNMKey, nil)
	if len(got) != len(model) {
		t.Fatalf("range=%d model=%d", len(got), len(model))
	}
	for _, kv := range got {
		if v, ok := model[kv.Key]; !ok || v != kv.Val {
			t.Fatalf("kv %v vs model (%d,%v)", kv, v, ok)
		}
	}
}

func TestNMConcurrentStriped(t *testing.T) {
	for _, kind := range []core.Kind{core.Logical, core.TSC} {
		tr, reg := newNMTree(kind, 8)
		const gs = 4
		const per = 1500
		var wg sync.WaitGroup
		for g := 0; g < gs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				base := uint64(g * 1_000_000)
				for i := uint64(0); i < per; i++ {
					if !tr.Insert(th, base+i, i) {
						t.Errorf("insert %d failed", base+i)
						return
					}
				}
				for i := uint64(0); i < per; i += 2 {
					if !tr.Delete(th, base+i) {
						t.Errorf("delete %d failed", base+i)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if n := tr.Len(); n != gs*per/2 {
			t.Fatalf("%v: Len=%d want %d", kind, n, gs*per/2)
		}
	}
}

// Contended deletes of the same keys: exactly one deleter may win each
// key — the NM injection CAS is the arbiter.
func TestNMContendedDeleteOnce(t *testing.T) {
	tr, reg := newNMTree(core.TSC, 8)
	const keys = 2000
	{
		th := reg.MustRegister()
		perm := rand.New(rand.NewSource(2)).Perm(keys)
		for _, i := range perm {
			tr.Insert(th, uint64(i), 1)
		}
		th.Release()
	}
	const gs = 4
	wins := make([]int, gs)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := reg.MustRegister()
			defer th.Release()
			for k := uint64(0); k < keys; k++ {
				if tr.Delete(th, k) {
					wins[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != keys {
		t.Fatalf("deletes won %d times for %d keys", total, keys)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len=%d after deleting everything", tr.Len())
	}
}

func TestNMContendedMixedAccounting(t *testing.T) {
	tr, reg := newNMTree(core.TSC, 8)
	const gs = 6
	var ins, del [gs]int
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := reg.MustRegister()
			defer th.Release()
			rng := rand.New(rand.NewSource(int64(g * 5)))
			for i := 0; i < 3000; i++ {
				k := uint64(rng.Intn(10))
				if rng.Intn(2) == 0 {
					if tr.Insert(th, k, k) {
						ins[g]++
					}
				} else if tr.Delete(th, k) {
					del[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	ti, td := 0, 0
	for g := range ins {
		ti += ins[g]
		td += del[g]
	}
	if got := tr.Len(); got != ti-td {
		t.Fatalf("Len=%d inserts-deletes=%d", got, ti-td)
	}
}

func TestNMSnapshotPrefix(t *testing.T) {
	for _, kind := range []core.Kind{core.Logical, core.TSC} {
		t.Run(kind.String(), func(t *testing.T) {
			tr, reg := newNMTree(kind, 4)
			const n = 4000
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for k := uint64(1); k <= n; k++ {
					tr.Insert(th, k, k)
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for {
					got := tr.RangeQuery(th, 1, n, nil)
					keys := make([]uint64, len(got))
					for i, kv := range got {
						keys[i] = kv.Key
					}
					sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
					for i, k := range keys {
						if k != uint64(i+1) {
							t.Errorf("snapshot gap at %d: %d", i, k)
							return
						}
					}
					if len(keys) == n {
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}

func TestNMSnapshotSuffixDuringDeletes(t *testing.T) {
	tr, reg := newNMTree(core.TSC, 4)
	const n = 4000
	{
		th := reg.MustRegister()
		perm := rand.New(rand.NewSource(8)).Perm(n)
		for _, i := range perm {
			tr.Insert(th, uint64(i+1), uint64(i+1))
		}
		th.Release()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		for k := uint64(1); k <= n; k++ {
			tr.Delete(th, k)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		for {
			got := tr.RangeQuery(th, 1, n, nil)
			if len(got) == 0 {
				return
			}
			keys := make([]uint64, len(got))
			for i, kv := range got {
				keys[i] = kv.Key
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for i, k := range keys {
				if k != keys[0]+uint64(i) {
					t.Errorf("snapshot not a suffix at %d: %d (first %d)", i, k, keys[0])
					return
				}
			}
			if keys[len(keys)-1] != n {
				t.Errorf("suffix missing tail %d", keys[len(keys)-1])
				return
			}
		}
	}()
	wg.Wait()
}

func TestNMVersionChainsBounded(t *testing.T) {
	tr, reg := newNMTree(core.Logical, 2)
	th := reg.MustRegister()
	for i := 0; i < 20000; i++ {
		tr.Insert(th, 64, 1)
		tr.Delete(th, 64)
	}
	maxChain := 0
	var walk func(*nmNode)
	walk = func(x *nmNode) {
		if x == nil || x.leaf {
			return
		}
		for d := 0; d < 2; d++ {
			if c := x.child[d].ChainLen(); c > maxChain {
				maxChain = c
			}
		}
		walk(x.child[0].Read(tr.src).n)
		walk(x.child[1].Read(tr.src).n)
	}
	walk(tr.r)
	if maxChain > 1000 {
		t.Fatalf("edge version chain unbounded: %d", maxChain)
	}
}

// Structural invariant after stress: external BST ordering.
func TestNMInvariantAfterStress(t *testing.T) {
	tr, reg := newNMTree(core.TSC, 8)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := reg.MustRegister()
			defer th.Release()
			rng := rand.New(rand.NewSource(int64(g * 3)))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(1000))
				switch rng.Intn(3) {
				case 0:
					tr.Insert(th, k, k)
				case 1:
					tr.Delete(th, k)
				default:
					tr.Contains(th, k)
				}
			}
		}(g)
	}
	wg.Wait()
	var check func(x *nmNode, lo, hi uint64)
	check = func(x *nmNode, lo, hi uint64) {
		if x == nil {
			return
		}
		if x.key < lo || x.key > hi {
			t.Fatalf("key %d outside [%d,%d]", x.key, lo, hi)
		}
		if x.leaf {
			return
		}
		check(x.child[0].Read(tr.src).n, lo, x.key-1)
		check(x.child[1].Read(tr.src).n, x.key, hi)
	}
	check(tr.r, 0, nmInf2)
}

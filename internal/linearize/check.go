package linearize

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrNotLinearizable is wrapped by every violation Check reports, so
// callers can errors.Is against it.
var ErrNotLinearizable = errors.New("linearize: history is not linearizable")

// maxReported caps how many violations one Check call details.
const maxReported = 8

// orderBudget bounds the per-key witness-order search. The structures
// under test serialize successful updates per key, so the sorted-by-
// invocation order almost always succeeds immediately; the budget only
// guards against pathological interval overlap.
const orderBudget = 1 << 20

// upd is one successful update in a per-key replay.
type upd struct {
	e      *Event
	insert bool
}

// version is one lifetime of a key: created by a successful insert,
// ended by the matching successful delete (or never). est/lst bound the
// linearization points: the insert linearized in [estStart, lstStart],
// the delete in [estEnd, lstEnd] (both MaxInt64 when the version is
// never deleted).
type version struct {
	val                uint64
	estStart, lstStart int64
	estEnd, lstEnd     int64
}

// possiblyIn reports whether the version may be present at some instant
// of [a, b]: its insert can linearize at or before b and its delete at
// or after a. Boundary ties are resolved generously — the checker must
// never report a violation a real interleaving could explain.
func (v *version) possiblyIn(a, b int64) bool {
	return v.estStart <= b && v.lstEnd >= a
}

// span is a closed integer interval of nanosecond stamps.
type span struct{ a, b int64 }

// covers reports whether the union of spans covers every instant of
// [a, b].
func covers(spans []span, a, b int64) bool {
	sort.Slice(spans, func(i, j int) bool { return spans[i].a < spans[j].a })
	cur := a // first instant not yet covered
	for _, s := range spans {
		if s.a > cur {
			return false
		}
		if s.b >= cur {
			if s.b == math.MaxInt64 {
				return true
			}
			cur = s.b + 1
		}
		if cur > b {
			return true
		}
	}
	return cur > b
}

// certainSpan returns the closed interval during which the version is
// certainly present (empty span with a > b when there is none), clipped
// to [t0, t1]. Strict interiors are used so boundary ties never create
// false certainty.
func (v *version) certainSpan(t0, t1 int64) (span, bool) {
	a := v.lstStart + 1
	b := int64(math.MaxInt64)
	if v.estEnd != math.MaxInt64 {
		b = v.estEnd - 1
	}
	if a < t0 {
		a = t0
	}
	if b > t1 {
		b = t1
	}
	return span{a, b}, a <= b
}

// possiblyAbsentIn reports whether some instant of [a, b] exists at
// which the key (with lifetimes vs) may be absent.
func possiblyAbsentIn(vs []version, a, b int64) bool {
	var certain []span
	for i := range vs {
		if s, ok := vs[i].certainSpan(a, b); ok {
			certain = append(certain, s)
		}
	}
	return !covers(certain, a, b)
}

// checker holds the reconstructed per-key version timelines.
type checker struct {
	versions map[uint64][]version
	keys     []uint64 // sorted key universe (every key ever inserted)
}

// keysIn returns the universe keys within [lo, hi].
func (c *checker) keysIn(lo, hi uint64) []uint64 {
	i := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] >= lo })
	j := sort.Search(len(c.keys), func(j int) bool { return c.keys[j] > hi })
	return c.keys[i:j]
}

// findVersion returns the version of key holding val, or nil.
func (c *checker) findVersion(key, val uint64) *version {
	vs := c.versions[key]
	for i := range vs {
		if vs[i].val == val {
			return &vs[i]
		}
	}
	return nil
}

// orderUpdates finds a witness linearization order for one key's
// successful updates: alternating insert/delete starting from absent,
// consistent with real time (an op wholly preceding another in wall
// clock must precede it in the order). It prefers invocation order and
// backtracks only where intervals overlap.
func orderUpdates(ops []upd) ([]upd, bool) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].e.Inv < ops[j].e.Inv })
	n := len(ops)
	used := make([]bool, n)
	order := make([]upd, 0, n)
	budget := orderBudget
	var rec func(present bool) bool
	rec = func(present bool) bool {
		if len(order) == n {
			return true
		}
		if budget <= 0 {
			return false
		}
		budget--
		minRet := int64(math.MaxInt64)
		for i := 0; i < n; i++ {
			if !used[i] && ops[i].e.Ret < minRet {
				minRet = ops[i].e.Ret
			}
		}
		for i := 0; i < n; i++ {
			// A candidate may linearize first only if no unused op's
			// interval ends strictly before the candidate's begins, and
			// only if it respects the alternation.
			if used[i] || ops[i].e.Inv > minRet || ops[i].insert == present {
				continue
			}
			used[i] = true
			order = append(order, ops[i])
			if rec(ops[i].insert) {
				return true
			}
			order = order[:len(order)-1]
			used[i] = false
		}
		return false
	}
	ok := rec(false)
	return order, ok
}

// versionsOf converts a witness order into version lifetimes with
// est/lst linearization bounds: est is the earliest feasible point
// (weakly increasing along the order), lst the latest (weakly
// decreasing from the tail).
func versionsOf(order []upd) ([]version, bool) {
	n := len(order)
	est := make([]int64, n)
	lst := make([]int64, n)
	for i := 0; i < n; i++ {
		est[i] = order[i].e.Inv
		if i > 0 && est[i-1] > est[i] {
			est[i] = est[i-1]
		}
	}
	for i := n - 1; i >= 0; i-- {
		lst[i] = order[i].e.Ret
		if i < n-1 && lst[i+1] < lst[i] {
			lst[i] = lst[i+1]
		}
	}
	for i := 0; i < n; i++ {
		if est[i] > lst[i] {
			return nil, false
		}
	}
	var vs []version
	for i := 0; i < n; i++ {
		if !order[i].insert {
			continue
		}
		v := version{
			val:      order[i].e.Val,
			estStart: est[i], lstStart: lst[i],
			estEnd: math.MaxInt64, lstEnd: math.MaxInt64,
		}
		if i+1 < n {
			v.estEnd, v.lstEnd = est[i+1], lst[i+1]
		}
		vs = append(vs, v)
	}
	return vs, true
}

// Check replays the history and reports every way it fails to be
// linearizable (capped), or nil if a sequential witness exists for all
// observations.
func Check(h *History) error {
	// Reconstruct per-key update timelines from successful updates.
	perKey := make(map[uint64][]upd)
	for _, log := range h.Threads {
		for i := range log {
			ev := &log[i]
			if (ev.Op == OpInsert || ev.Op == OpDelete) && ev.OK {
				perKey[ev.Key] = append(perKey[ev.Key], upd{e: ev, insert: ev.Op == OpInsert})
			}
		}
	}

	var violations []string
	report := func(format string, args ...any) {
		if len(violations) < maxReported {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
	}

	c := &checker{versions: make(map[uint64][]version, len(perKey))}
	for key, ops := range perKey {
		order, ok := orderUpdates(ops)
		if ok {
			var vs []version
			if vs, ok = versionsOf(order); ok {
				c.versions[key] = vs
			}
		}
		if !ok {
			report("key %d: %d successful updates admit no real-time-consistent insert/delete alternation",
				key, len(ops))
			continue
		}
		c.keys = append(c.keys, key)
	}
	sort.Slice(c.keys, func(i, j int) bool { return c.keys[i] < c.keys[j] })

	for _, log := range h.Threads {
		for i := range log {
			ev := &log[i]
			if msg := c.checkEvent(ev); msg != "" {
				report("T%d %s: %s", ev.Thread, describe(ev), msg)
			}
		}
	}

	if len(violations) == 0 {
		return nil
	}
	return fmt.Errorf("%w (seed %d): %d violation(s):\n  %s",
		ErrNotLinearizable, h.Cfg.Seed, len(violations),
		strings.Join(violations, "\n  "))
}

// describe renders an event for violation reports.
func describe(ev *Event) string {
	switch ev.Op {
	case OpRange:
		return fmt.Sprintf("RangeQuery[%d,%d]@[%d,%d] -> %d pairs",
			ev.Lo, ev.Hi, ev.Inv, ev.Ret, len(ev.KVs))
	case OpGet:
		return fmt.Sprintf("Get(%d)@[%d,%d] -> (%d,%v)", ev.Key, ev.Inv, ev.Ret, ev.Val, ev.OK)
	case OpGetAt:
		return fmt.Sprintf("GetAt(%d, ts=%d cap[%d,%d]) -> (%d,%v)",
			ev.Key, ev.TS, ev.TSInv, ev.TSRet, ev.Val, ev.OK)
	case OpRangeAt:
		return fmt.Sprintf("RangeQueryAt[%d,%d](ts=%d cap[%d,%d]) -> %d pairs",
			ev.Lo, ev.Hi, ev.TS, ev.TSInv, ev.TSRet, len(ev.KVs))
	default:
		return fmt.Sprintf("%s(%d)@[%d,%d] -> %v", ev.Op, ev.Key, ev.Inv, ev.Ret, ev.OK)
	}
}

// checkEvent validates one observation against the version timelines;
// it returns "" when the observation is justified by some interleaving.
func (c *checker) checkEvent(ev *Event) string {
	switch ev.Op {
	case OpInsert:
		if ev.OK {
			return "" // part of the replay itself
		}
		if !c.anyVersionIn(ev.Key, ev.Inv, ev.Ret) {
			return "failed, but the key is absent throughout the interval"
		}
	case OpDelete:
		if ev.OK {
			return ""
		}
		if !possiblyAbsentIn(c.versions[ev.Key], ev.Inv, ev.Ret) {
			return "failed, but the key is present throughout the interval"
		}
	case OpContains:
		if ev.OK {
			if !c.anyVersionIn(ev.Key, ev.Inv, ev.Ret) {
				return "returned true, but the key is absent throughout the interval"
			}
		} else if !possiblyAbsentIn(c.versions[ev.Key], ev.Inv, ev.Ret) {
			return "returned false, but the key is present throughout the interval"
		}
	case OpGet:
		return c.checkGet(ev, ev.Inv, ev.Ret)
	case OpRange:
		return c.checkRange(ev, ev.Inv, ev.Ret)
	case OpGetAt, OpRangeAt:
		// A historical read at TS observes the state at some instant of
		// the interval bracketing the Now() call that captured TS: every
		// update that returned before the capture began labeled below TS,
		// every update invoked after it returned labeled above. So the
		// live oracle applies verbatim with the capture interval standing
		// in for the operation's own. A retention refusal is a legal
		// outcome with no observation to justify.
		if ev.Trunc {
			return ""
		}
		if ev.Op == OpGetAt {
			return c.checkGet(ev, ev.TSInv, ev.TSRet)
		}
		return c.checkRange(ev, ev.TSInv, ev.TSRet)
	}
	return ""
}

// checkGet validates a Get-style observation against [a, b] — the
// operation's own interval for live reads, the timestamp-capture
// interval for historical ones.
func (c *checker) checkGet(ev *Event, a, b int64) string {
	if !ev.OK {
		if !possiblyAbsentIn(c.versions[ev.Key], a, b) {
			return "returned miss, but the key is present throughout the interval"
		}
		return ""
	}
	v := c.findVersion(ev.Key, ev.Val)
	if v == nil {
		return fmt.Sprintf("observed value %#x that no successful insert wrote", ev.Val)
	}
	if !v.possiblyIn(a, b) {
		return fmt.Sprintf("observed value %#x outside its version's lifetime", ev.Val)
	}
	return ""
}

// anyVersionIn reports whether any lifetime of key overlaps [a, b].
func (c *checker) anyVersionIn(key uint64, a, b int64) bool {
	vs := c.versions[key]
	for i := range vs {
		if vs[i].possiblyIn(a, b) {
			return true
		}
	}
	return false
}

// checkRange is the snapshot-oracle test: the observed pairs must all be
// explainable at one common instant within [a, b] — the query's own
// interval for live reads, the timestamp-capture interval for
// historical ones — and at that instant no unobserved in-range key may
// be certainly present.
func (c *checker) checkRange(ev *Event, a, b int64) string {
	if ev.Hi < ev.Lo {
		if len(ev.KVs) != 0 {
			return "empty interval returned pairs"
		}
		return ""
	}
	seen := make(map[uint64]*version, len(ev.KVs))
	t0, t1 := a, b
	for _, kv := range ev.KVs {
		if kv.Key < ev.Lo || kv.Key > ev.Hi {
			return fmt.Sprintf("key %d outside the queried interval", kv.Key)
		}
		if seen[kv.Key] != nil {
			return fmt.Sprintf("key %d appears twice in one snapshot", kv.Key)
		}
		v := c.findVersion(kv.Key, kv.Val)
		if v == nil {
			return fmt.Sprintf("pair (%d,%#x) that no successful insert wrote", kv.Key, kv.Val)
		}
		if !v.possiblyIn(a, b) {
			return fmt.Sprintf("pair (%d,%#x) outside its version's lifetime", kv.Key, kv.Val)
		}
		seen[kv.Key] = v
		// Narrow the candidate snapshot window to instants at which this
		// pair can be present.
		if v.estStart > t0 {
			t0 = v.estStart
		}
		if v.lstEnd < t1 {
			t1 = v.lstEnd
		}
	}
	if t0 > t1 {
		return "observed pairs admit no common snapshot instant"
	}
	// Instants at which some unobserved key is certainly present are
	// forbidden; the snapshot needs one instant that is not.
	var forbidden []span
	for _, key := range c.keysIn(ev.Lo, ev.Hi) {
		if seen[key] != nil {
			continue
		}
		vs := c.versions[key]
		for i := range vs {
			if s, ok := vs[i].certainSpan(t0, t1); ok {
				forbidden = append(forbidden, s)
			}
		}
	}
	if covers(forbidden, t0, t1) {
		return "no snapshot instant: every candidate misses a certainly-present key"
	}
	return ""
}

package linearize

import (
	"fmt"
	"math"

	"tscds"
)

// This file extends the checker to crash recovery: durable
// linearizability (Izraelevitz et al., DISC 2016) specialized to the
// WAL layer's acknowledgment contract. After a crash and recovery,
//
//   - every operation whose durable acknowledgment returned before the
//     crash must be reflected in the recovered state;
//   - every operation that was invoked but never acknowledged (in
//     flight at the crash, or failed with a durability error after
//     applying in memory) may or may not be reflected — the crash
//     caught it between the in-memory apply and the covering fsync,
//     and either outcome is a legal completion;
//   - the recovered state must be an atomic snapshot: some single
//     linearization of the acknowledged history plus a subset of the
//     unacknowledged operations produces exactly it.
//
// CheckDurable reduces this to the existing oracle: it appends each
// candidate completion of the pending set to the history, appends one
// synthetic full-range query observing the recovered pairs after every
// other stamp, and accepts iff some completion makes Check pass.

// maxPending bounds the completion search (2^n subsets). The harness
// blocks each worker on its durable acknowledgment, so at most one
// operation per worker is pending at a crash and real pending sets are
// tiny; the bound only guards against quadratic misuse.
const maxPending = 16

// CheckDurable reports whether the recovered state is explainable as a
// crash-consistent snapshot of the recorded history: h holds every
// operation that was durably acknowledged before the crash, pending
// holds operations that applied in memory but whose acknowledgment
// never returned cleanly (each may or may not have reached the log),
// and recovered is the full key-value content of the map after
// recovery. It returns nil when some subset of pending joined to h
// linearizes with the recovered snapshot as its final observation; the
// returned violation (wrapping ErrNotLinearizable) otherwise describes
// the empty-subset attempt, the most common real failure being a lost
// acknowledged update.
func CheckDurable(h *History, pending []Event, recovered []tscds.KV) error {
	if len(pending) > maxPending {
		return fmt.Errorf("linearize: %d pending operations exceed the %d the completion search supports",
			len(pending), maxPending)
	}

	// One past every recorded stamp: pending completions linearize
	// somewhere in [their Inv, at], and the recovered-state observation
	// happens strictly after everything at at+1.
	var at int64
	bump := func(evs []Event) {
		for i := range evs {
			if evs[i].Ret > at {
				at = evs[i].Ret
			}
			if evs[i].Inv > at {
				at = evs[i].Inv
			}
		}
	}
	for _, log := range h.Threads {
		bump(log)
	}
	bump(pending)
	at++

	snap := Event{
		Op: OpRange, Thread: len(h.Threads) + len(pending),
		Lo: 0, Hi: math.MaxUint64,
		KVs: recovered,
		Inv: at + 1, Ret: at + 1,
	}

	var firstErr error
	for mask := 0; mask < 1<<len(pending); mask++ {
		threads := make([][]Event, 0, len(h.Threads)+len(pending)+1)
		threads = append(threads, h.Threads...)
		for i := range pending {
			if mask&(1<<i) == 0 {
				continue
			}
			// This completion says the op did reach the log: it took
			// effect, completing no later than recovery.
			ev := pending[i]
			ev.OK = true
			ev.Ret = at
			threads = append(threads, []Event{ev})
		}
		threads = append(threads, []Event{snap})
		err := Check(&History{Cfg: h.Cfg, Threads: threads})
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return fmt.Errorf("linearize: recovered state matches no completion of %d pending operation(s): %w",
		len(pending), firstErr)
}

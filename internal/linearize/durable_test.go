package linearize

import (
	"errors"
	"testing"

	"tscds"
)

// dh builds a minimal acknowledged history from sequential events.
func dh(evs ...Event) *History {
	return &History{Cfg: Config{Seed: 1}, Threads: [][]Event{evs}}
}

// seqEvents stamps evs with disjoint increasing intervals.
func seqEvents(evs []Event) []Event {
	t := int64(1)
	for i := range evs {
		evs[i].Inv = t
		evs[i].Ret = t + 1
		t += 2
	}
	return evs
}

func TestCheckDurableAccepts(t *testing.T) {
	h := dh(seqEvents([]Event{
		{Op: OpInsert, Key: 1, Val: value(0, 1), OK: true},
		{Op: OpInsert, Key: 2, Val: value(0, 2), OK: true},
		{Op: OpDelete, Key: 2, OK: true},
	})...)
	recovered := []tscds.KV{{Key: 1, Val: value(0, 1)}}
	if err := CheckDurable(h, nil, recovered); err != nil {
		t.Fatalf("exact recovered state rejected: %v", err)
	}
}

func TestCheckDurableDetectsLostAckedInsert(t *testing.T) {
	h := dh(seqEvents([]Event{
		{Op: OpInsert, Key: 1, Val: value(0, 1), OK: true},
		{Op: OpInsert, Key: 2, Val: value(0, 2), OK: true},
	})...)
	// Key 2's acknowledged insert vanished.
	err := CheckDurable(h, nil, []tscds.KV{{Key: 1, Val: value(0, 1)}})
	if err == nil {
		t.Fatal("lost acknowledged insert not detected")
	}
	if !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("error does not wrap ErrNotLinearizable: %v", err)
	}
}

func TestCheckDurableDetectsResurrectedDelete(t *testing.T) {
	h := dh(seqEvents([]Event{
		{Op: OpInsert, Key: 1, Val: value(0, 1), OK: true},
		{Op: OpDelete, Key: 1, OK: true},
	})...)
	// The acknowledged delete was lost: key 1 came back.
	if CheckDurable(h, nil, []tscds.KV{{Key: 1, Val: value(0, 1)}}) == nil {
		t.Fatal("lost acknowledged delete not detected")
	}
}

func TestCheckDurableDetectsForeignValue(t *testing.T) {
	h := dh(seqEvents([]Event{
		{Op: OpInsert, Key: 1, Val: value(0, 1), OK: true},
	})...)
	// Recovered a value no insert ever wrote.
	if CheckDurable(h, nil, []tscds.KV{{Key: 1, Val: 1 << 63}}) == nil {
		t.Fatal("fabricated recovered value not detected")
	}
}

func TestCheckDurablePendingInsertEitherWay(t *testing.T) {
	h := dh(seqEvents([]Event{
		{Op: OpInsert, Key: 1, Val: value(0, 1), OK: true},
	})...)
	pending := []Event{{Op: OpInsert, Thread: 1, Key: 2, Val: value(1, 1), Inv: 10}}

	with := []tscds.KV{{Key: 1, Val: value(0, 1)}, {Key: 2, Val: value(1, 1)}}
	if err := CheckDurable(h, pending, with); err != nil {
		t.Fatalf("pending insert that reached the log rejected: %v", err)
	}
	without := []tscds.KV{{Key: 1, Val: value(0, 1)}}
	if err := CheckDurable(h, pending, without); err != nil {
		t.Fatalf("pending insert that missed the log rejected: %v", err)
	}
}

func TestCheckDurablePendingDeleteEitherWay(t *testing.T) {
	h := dh(seqEvents([]Event{
		{Op: OpInsert, Key: 1, Val: value(0, 1), OK: true},
	})...)
	pending := []Event{{Op: OpDelete, Thread: 1, Key: 1, Inv: 10}}

	if err := CheckDurable(h, pending, []tscds.KV{{Key: 1, Val: value(0, 1)}}); err != nil {
		t.Fatalf("pending delete that missed the log rejected: %v", err)
	}
	if err := CheckDurable(h, pending, nil); err != nil {
		t.Fatalf("pending delete that reached the log rejected: %v", err)
	}
}

func TestCheckDurablePendingCannotExcuseForeignState(t *testing.T) {
	h := dh(seqEvents([]Event{
		{Op: OpInsert, Key: 1, Val: value(0, 1), OK: true},
	})...)
	pending := []Event{{Op: OpInsert, Thread: 1, Key: 2, Val: value(1, 1), Inv: 10}}
	// Key 3 relates to nothing in the history or the pending set.
	bad := []tscds.KV{{Key: 1, Val: value(0, 1)}, {Key: 3, Val: value(2, 9)}}
	if CheckDurable(h, pending, bad) == nil {
		t.Fatal("recovered state with unexplained key not detected")
	}
}

func TestCheckDurablePendingBound(t *testing.T) {
	h := dh()
	pending := make([]Event, maxPending+1)
	for i := range pending {
		pending[i] = Event{Op: OpInsert, Key: uint64(i), Val: value(i, 1), Inv: 1}
	}
	if CheckDurable(h, pending, nil) == nil {
		t.Fatal("oversized pending set accepted")
	}
}

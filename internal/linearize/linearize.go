// Package linearize is the library's linearizability-checking harness:
// a history-recording stress driver plus a snapshot-oracle checker that
// together validate the paper's central claim — range queries remain
// linearizable when the logical counter is swapped for a hardware
// timestamp — over every (structure, technique, source) combination the
// facade accepts.
//
// The methodology follows the validation style of the vCAS work (Wei et
// al., PPoPP 2021) and exploits the observation of Khyzha et al. ("Proving
// Linearizability Using Partial Orders") that timestamp-ordered histories
// admit a cheap sequential-witness check:
//
//  1. Run: worker goroutines drive a tscds.Map, recording one Event per
//     operation — kind, arguments, result, and the wall-clock interval
//     [Inv, Ret] bracketing the operation — into per-thread logs. Each
//     log is written by exactly one goroutine with no synchronization on
//     the hot path (the harness perturbs the schedule as little as
//     possible); logs are published once, at worker exit.
//
//  2. Check: successful updates are replayed per key in timestamp order
//     against a reference map. Every inserted value is unique, so the
//     alternation Insert/Delete/Insert/... on one key reconstructs the
//     version sequence; real-time interval bounds then give each version
//     a possible-presence window [estStart, lstEnd] and a
//     certain-presence window (lstStart, estEnd). A range-query result
//     is accepted only if some single instant inside its own interval is
//     consistent with every observed pair's possible window and no
//     absent key's certain window — i.e. the result equals an atomic
//     snapshot of the reference consistent with real-time order.
//     Contains/Get and failed updates are justified by the same
//     interval-overlap argument.
//
// The checker is sound against false alarms up to one caveat: when
// several successful updates to the same key overlap in real time it
// commits to a single real-time-consistent witness order (preferring
// invocation order) rather than exploring all of them. With nanosecond
// stamps and per-key contention this ambiguity is vanishingly rare; a
// reported violation includes the seed so the run can be replayed.
//
// Config.HistPct extends the same oracle to MVCC time travel: workers
// periodically capture a timestamp with Map.Now() (recording the
// wall-clock interval bracketing the capture) and later issue
// GetAt/RangeQueryAt at it. The snapshot at a captured timestamp is the
// map's state at some instant of the capture interval, so the checker
// validates a historical read exactly like a live one — but against
// [TSInv, TSRet], the capture interval, instead of [Inv, Ret]. A read
// refused with ErrTruncatedHistory is recorded (Trunc) and skipped: the
// retention window, not linearizability, decides those.
//
// Config.FaultRate is the fault-injection hook: it corrupts recorded
// range-query results with mutations no real history can produce,
// proving the checker can actually fail (see TestCheckerDetectsInjectedFault).
package linearize

import (
	"fmt"

	"tscds"
)

// OpKind labels a recorded operation.
type OpKind uint8

// Recorded operation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpContains
	OpGet
	OpRange
	OpGetAt   // historical Get at a captured past timestamp
	OpRangeAt // historical RangeQuery at a captured past timestamp
)

// String names the kind in violation reports.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "Insert"
	case OpDelete:
		return "Delete"
	case OpContains:
		return "Contains"
	case OpGet:
		return "Get"
	case OpRange:
		return "RangeQuery"
	case OpGetAt:
		return "GetAt"
	case OpRangeAt:
		return "RangeQueryAt"
	}
	return "unknown"
}

// Event is one recorded invocation/response pair. Inv and Ret are
// nanoseconds on the monotonic clock since the run's base instant; the
// operation's linearization point lies somewhere in [Inv, Ret].
type Event struct {
	Op     OpKind
	Thread int
	Key    uint64     // Insert/Delete/Contains/Get
	Val    uint64     // Insert: value written; Get: value observed when OK
	Lo, Hi uint64     // RangeQuery bounds
	OK     bool       // result of Insert/Delete/Contains/Get
	KVs    []tscds.KV // RangeQuery result (unsorted)
	Inv    int64
	Ret    int64

	// Historical reads (OpGetAt/OpRangeAt) carry the timestamp they read
	// at, plus the wall-clock interval [TSInv, TSRet] bracketing the
	// Now() call that captured it. The snapshot at TS is the map's state
	// at some instant of that interval, so the checker validates the
	// observation against [TSInv, TSRet] rather than [Inv, Ret]. Trunc
	// marks a read refused with ErrTruncatedHistory — a legal outcome the
	// checker skips.
	TS           uint64
	TSInv, TSRet int64
	Trunc        bool
}

// History is a complete recorded run. Threads[i] is worker i's log for
// i < Cfg.Workers; the final slice is the sequential prefill log.
type History struct {
	Cfg     Config
	Threads [][]Event
}

// Events returns the total number of recorded operations.
func (h *History) Events() int {
	n := 0
	for _, log := range h.Threads {
		n += len(log)
	}
	return n
}

// Summary is a one-line operation census for test logs.
func (h *History) Summary() string {
	var counts [OpRangeAt + 1]int
	trunc := 0
	for _, log := range h.Threads {
		for i := range log {
			counts[log[i].Op]++
			if log[i].Trunc {
				trunc++
			}
		}
	}
	return fmt.Sprintf("%d events (ins %d, del %d, ctn %d, get %d, rq %d, getat %d, rqat %d, trunc %d)",
		h.Events(), counts[OpInsert], counts[OpDelete],
		counts[OpContains], counts[OpGet], counts[OpRange],
		counts[OpGetAt], counts[OpRangeAt], trunc)
}

// Config parameterizes Run. The zero value is usable: every field has a
// sensible default.
type Config struct {
	// Workers is the number of concurrent driver goroutines (default 4).
	Workers int
	// Ops is the number of operations per worker (default 2000).
	Ops int
	// KeyRange restricts keys to [0, KeyRange) (default 128): small
	// enough that every key sees contention, large enough for real
	// range results.
	KeyRange uint64
	// RangeSpan bounds the width of generated range queries (default 32).
	RangeSpan uint64
	// Prefill seeds the map with this many keys before workers start
	// (default KeyRange/2).
	Prefill int
	// Seed makes runs reproducible: the same seed yields the same
	// per-thread operation sequences (default 1). Interleavings still
	// vary run to run; the seed pins the workload, which in practice
	// reproduces schedule-dependent failures within a few attempts.
	Seed int64
	// InsertPct, DeletePct, RangePct and GetPct set the operation mix in
	// percent; the remainder is Contains (defaults 25/20/15/10).
	InsertPct, DeletePct, RangePct, GetPct int
	// HistPct adds time-travel reads to the mix: that percentage of each
	// worker's operations read at a past timestamp the worker captured
	// earlier with Map.Now() (half GetAt, half RangeQueryAt). Zero (the
	// default) disables historical reads; only enable them on maps whose
	// technique retains history (vCAS, Bundle) — an ErrHistoryUnsupported
	// refusal aborts the run as a harness configuration error.
	HistPct int
	// FaultRate is the fault-injection hook: the probability, per range
	// query (live or historical), of corrupting the recorded result with
	// a mutation that no correct execution can produce. Zero (the
	// default) in normal use; set to 1 to prove the checker detects
	// broken snapshots.
	FaultRate float64
	// Midpoint, when set, is called once by worker 0 halfway through its
	// operation sequence, while every other worker keeps running. It is
	// the environment-fault hook: inject a TSC backstep here to force an
	// Adaptive source to switch generations mid-history, so the checker
	// validates range queries that span the switch.
	Midpoint func()
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if c.KeyRange == 0 {
		c.KeyRange = 128
	}
	if c.RangeSpan == 0 {
		c.RangeSpan = 32
	}
	if c.Prefill == 0 {
		c.Prefill = int(c.KeyRange / 2)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.InsertPct <= 0 {
		c.InsertPct = 25
	}
	if c.DeletePct <= 0 {
		c.DeletePct = 20
	}
	if c.RangePct <= 0 {
		c.RangePct = 15
	}
	if c.GetPct <= 0 {
		c.GetPct = 10
	}
	return c
}

package linearize

import (
	"errors"
	"strings"
	"testing"

	"tscds"
	"tscds/internal/core"
	"tscds/internal/lfbst"
)

func uev(op OpKind, key, val uint64, inv, ret int64, ok bool) Event {
	return Event{Op: op, Key: key, Val: val, Inv: inv, Ret: ret, OK: ok}
}

func rqev(lo, hi uint64, inv, ret int64, kvs ...tscds.KV) Event {
	return Event{Op: OpRange, Lo: lo, Hi: hi, Inv: inv, Ret: ret, KVs: kvs}
}

func hist(events ...Event) *History {
	return &History{Cfg: Config{Seed: 1}.withDefaults(), Threads: [][]Event{events}}
}

func TestCheckAcceptsSequentialHistory(t *testing.T) {
	h := hist(
		uev(OpInsert, 1, 100, 0, 1, true),
		rqev(0, 10, 2, 3, tscds.KV{Key: 1, Val: 100}),
		uev(OpContains, 1, 0, 4, 5, true),
		uev(OpDelete, 1, 0, 6, 7, true),
		rqev(0, 10, 8, 9),
		uev(OpContains, 1, 0, 10, 11, false),
	)
	if err := Check(h); err != nil {
		t.Fatalf("legal history rejected: %v", err)
	}
}

func TestCheckAcceptsConcurrentAmbiguity(t *testing.T) {
	// An insert overlapping a range query may or may not be observed;
	// both outcomes must pass.
	for _, observed := range []bool{false, true} {
		kvs := []tscds.KV{}
		if observed {
			kvs = append(kvs, tscds.KV{Key: 1, Val: 100})
		}
		h := hist(
			uev(OpInsert, 1, 100, 0, 10, true),
			rqev(0, 10, 4, 6, kvs...),
		)
		if err := Check(h); err != nil {
			t.Fatalf("observed=%v: concurrent overlap rejected: %v", observed, err)
		}
	}
}

func TestCheckRejectsStaleSnapshot(t *testing.T) {
	// The pair was deleted strictly before the query began.
	h := hist(
		uev(OpInsert, 1, 100, 0, 1, true),
		uev(OpDelete, 1, 0, 2, 3, true),
		rqev(0, 10, 4, 5, tscds.KV{Key: 1, Val: 100}),
	)
	err := Check(h)
	if !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("stale snapshot accepted: %v", err)
	}
}

func TestCheckRejectsMissingKey(t *testing.T) {
	// The key is certainly present throughout the query, yet missing.
	h := hist(
		uev(OpInsert, 1, 100, 0, 1, true),
		rqev(0, 10, 2, 3),
	)
	if err := Check(h); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("dropped key accepted: %v", err)
	}
}

func TestCheckRejectsNonAtomicSnapshot(t *testing.T) {
	// v1's lifetime certainly ends (by 11) before v2's can begin (20),
	// yet one "snapshot" observed both.
	h := hist(
		uev(OpInsert, 1, 100, 0, 1, true),
		uev(OpDelete, 1, 0, 10, 11, true),
		uev(OpInsert, 2, 200, 20, 21, true),
		rqev(0, 10, 0, 30, tscds.KV{Key: 1, Val: 100}, tscds.KV{Key: 2, Val: 200}),
	)
	err := Check(h)
	if !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("non-atomic snapshot accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "no common snapshot instant") {
		t.Fatalf("unexpected violation detail: %v", err)
	}
}

func TestCheckRejectsPhantomValue(t *testing.T) {
	h := hist(
		uev(OpInsert, 1, 100, 0, 1, true),
		rqev(0, 10, 2, 3, tscds.KV{Key: 1, Val: 999}),
	)
	if err := Check(h); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("phantom value accepted: %v", err)
	}
}

func TestCheckRejectsImpossibleReads(t *testing.T) {
	cases := []struct {
		name string
		h    *History
	}{
		{"contains-false-on-present", hist(
			uev(OpInsert, 1, 100, 0, 1, true),
			uev(OpContains, 1, 0, 2, 3, false),
		)},
		{"contains-true-on-absent", hist(
			uev(OpContains, 1, 0, 0, 1, true),
		)},
		{"failed-insert-on-absent", hist(
			uev(OpInsert, 1, 100, 0, 1, false),
		)},
		{"failed-delete-on-present", hist(
			uev(OpInsert, 1, 100, 0, 1, true),
			uev(OpDelete, 1, 0, 2, 3, false),
		)},
		{"get-wrong-value", hist(
			uev(OpInsert, 1, 100, 0, 1, true),
			uev(OpGet, 1, 101, 2, 3, true),
		)},
	}
	for _, c := range cases {
		if err := Check(c.h); !errors.Is(err, ErrNotLinearizable) {
			t.Errorf("%s: accepted: %v", c.name, err)
		}
	}
}

func TestCheckRejectsUnorderableUpdates(t *testing.T) {
	// Two successful inserts of one key with no delete between them can
	// belong to no sequential execution.
	h := hist(
		uev(OpInsert, 1, 100, 0, 1, true),
		uev(OpInsert, 1, 101, 2, 3, true),
	)
	err := Check(h)
	if !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("double insert accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "alternation") {
		t.Fatalf("unexpected violation detail: %v", err)
	}
}

func TestOrderUpdatesRespectsRealTime(t *testing.T) {
	// I_a [0,10], D [5,6], I_b [7,20]: D finishes before I_b begins, so
	// the only witness is I_a, D, I_b.
	ia := uev(OpInsert, 1, 100, 0, 10, true)
	d := uev(OpDelete, 1, 0, 5, 6, true)
	ib := uev(OpInsert, 1, 101, 7, 20, true)
	order, ok := orderUpdates([]upd{
		{e: &ib, insert: true}, {e: &d, insert: false}, {e: &ia, insert: true},
	})
	if !ok {
		t.Fatal("no witness order found")
	}
	got := []uint64{order[0].e.Val, order[2].e.Val}
	if got[0] != 100 || order[1].e.Op != OpDelete || got[1] != 101 {
		t.Fatalf("witness order wrong: %v", got)
	}
}

func TestCoversMergesSpans(t *testing.T) {
	if !covers([]span{{0, 4}, {5, 10}}, 0, 10) {
		t.Fatal("adjacent spans should cover")
	}
	if covers([]span{{0, 4}, {6, 10}}, 0, 10) {
		t.Fatal("gap at 5 should not cover")
	}
	if covers(nil, 3, 3) {
		t.Fatal("empty spans cover nothing")
	}
}

// The acceptance criterion's proof that the checker can actually fail:
// a deliberately broken snapshot (fault-injection hook) is detected on a
// real map.
func TestCheckerDetectsInjectedFault(t *testing.T) {
	m, err := tscds.New(tscds.BST, tscds.VCAS, tscds.Config{Source: tscds.Logical, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunAndCheck(m, Config{
		Workers: 4, Ops: 300, RangePct: 40, FaultRate: 1, Seed: 7,
	})
	if !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("injected faults went undetected: %v", err)
	}
}

// TestCheckRejectsTornCrossShardSnapshot builds the exact failure the
// sharded fan-out's one-shared-timestamp protocol exists to prevent:
// two per-shard structures over one source, with shard A collected at a
// bound read BEFORE two inserts (one per shard) and shard B at a bound
// read AFTER them. The stitched result misses shard A's key yet contains
// shard B's later one — a state no single instant exhibits — and the
// checker must say so.
func TestCheckRejectsTornCrossShardSnapshot(t *testing.T) {
	src := core.New(core.Logical)
	regA, regB := core.NewRegistry(2), core.NewRegistry(2)
	shardA, shardB := lfbst.New(src, regA), lfbst.New(src, regB)
	rqA, rqB := regA.MustRegister(), regB.MustRegister()
	wA, wB := regA.MustRegister(), regB.MustRegister()

	// Torn protocol: shard A's bound first, shard B's only after the
	// inserts land. (The real fan-out reserves both shards and reads the
	// shared source exactly once between the reservations.)
	rqA.BeginRQ()
	sA := src.Snapshot()

	vEven, vOdd := value(1, 1), value(1, 2)
	evEven := Event{Op: OpInsert, Thread: 1, Key: 2, Val: vEven, Inv: 1, Ret: 2, OK: shardA.Insert(wA, 2, vEven)}
	evOdd := Event{Op: OpInsert, Thread: 1, Key: 3, Val: vOdd, Inv: 3, Ret: 4, OK: shardB.Insert(wB, 3, vOdd)}
	if !evEven.OK || !evOdd.OK {
		t.Fatal("setup inserts failed")
	}

	rqB.BeginRQ()
	sB := src.Snapshot()
	kvs := shardA.RangeQueryAt(rqA, 0, 10, sA, nil)
	kvs = shardB.RangeQueryAt(rqB, 0, 10, sB, kvs)
	if len(kvs) != 1 || kvs[0].Key != 3 {
		t.Fatalf("torn schedule did not tear: collected %v", kvs)
	}

	h := &History{Cfg: Config{Seed: 1}.withDefaults(), Threads: [][]Event{
		{Event{Op: OpRange, Thread: 0, Lo: 0, Hi: 10, Inv: 0, Ret: 5, KVs: kvs}},
		{evEven, evOdd},
	}}
	err := Check(h)
	if !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("torn cross-shard snapshot accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "no snapshot instant") {
		t.Fatalf("unexpected violation detail: %v", err)
	}
}

// TestCheckRejectsTornSwitchSnapshot pins the failure the adaptive
// source's generation validation (core.SnapshotValid + retry) exists to
// prevent. When hardware timestamps backstep, a range query's bound can
// end up numerically AHEAD of labels assigned to operations that
// linearize after the query — so without revalidation, a collection
// overlapping the fault window can stitch pre-switch absence together
// with post-switch presence. The distilled history: k1's insert
// completes (by 10) strictly before the query begins (20), and k2's
// insert begins (40) strictly after the query returns (30) — yet the
// "snapshot" misses k1 and contains k2. No single instant exhibits that
// state, and the checker must reject it. This is the history shape a
// range query that kept a stale pre-switch bound would record.
func TestCheckRejectsTornSwitchSnapshot(t *testing.T) {
	h := hist(
		uev(OpInsert, 1, 100, 0, 10, true),
		rqev(0, 10, 20, 30, tscds.KV{Key: 2, Val: 200}),
		uev(OpInsert, 2, 200, 40, 50, true),
	)
	err := Check(h)
	if !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("torn pre/post-switch snapshot accepted: %v", err)
	}
}

// The same torn shape must be rejected even when only ONE half of the
// tear is present: observing the future insert alone, or missing the
// certainly-present key alone.
func TestCheckRejectsHalfTornSwitchSnapshot(t *testing.T) {
	cases := []struct {
		name string
		h    *History
	}{
		{"future-insert-observed", hist(
			rqev(0, 10, 20, 30, tscds.KV{Key: 2, Val: 200}),
			uev(OpInsert, 2, 200, 40, 50, true),
		)},
		{"settled-insert-missed", hist(
			uev(OpInsert, 1, 100, 0, 10, true),
			rqev(0, 10, 20, 30),
		)},
	}
	for _, c := range cases {
		if err := Check(c.h); !errors.Is(err, ErrNotLinearizable) {
			t.Errorf("%s: accepted: %v", c.name, err)
		}
	}
}

func TestCleanRunPasses(t *testing.T) {
	m, err := tscds.New(tscds.SkipList, tscds.Bundle, tscds.Config{Source: tscds.TSC, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	h, err := RunAndCheck(m, Config{Workers: 4, Ops: 400, Seed: 3})
	if err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if h.Events() != 4*400+len(h.Threads[4]) {
		t.Fatalf("history incomplete: %s", h.Summary())
	}
}

// Oversubscribing the registry must surface as an error from Run, never
// a panic, and must release any handles it did obtain.
func TestRunSurfacesRegistryExhaustion(t *testing.T) {
	m, err := tscds.New(tscds.BST, tscds.VCAS, tscds.Config{Source: tscds.Logical, MaxThreads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, Config{Workers: 8, Ops: 10}); err == nil {
		t.Fatal("oversubscribed run did not error")
	}
	// The failed attempt released its handles: a right-sized run fits.
	if _, err := Run(m, Config{Workers: 2, Ops: 10}); err != nil {
		t.Fatalf("handles leaked by failed run: %v", err)
	}
}

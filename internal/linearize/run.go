package linearize

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tscds"
)

// tsStamp is one captured past timestamp: the value Now() returned and
// the wall-clock interval bracketing the call. A historical read at ts
// observes the map's state at some instant of [inv, ret].
type tsStamp struct {
	ts       uint64
	inv, ret int64
}

// stampEvery is how often (in ops) a worker refreshes its stamp ring,
// and stampRing how many stamps it retains. Eviction is random, so the
// ring holds a spread of ages: fresh stamps exercise recent history,
// stale ones cross adaptive switches and, under tight retention, the
// ErrTruncatedHistory path.
const (
	stampEvery = 8
	stampRing  = 32
)

// value encodes a globally unique inserted value: thread in the high
// bits, a per-thread sequence number below. Bit 63 is never set, which
// the fault injector exploits to fabricate impossible observations.
func value(tid int, seq uint64) uint64 {
	return uint64(tid+1)<<40 | (seq & (1<<40 - 1))
}

// Run drives m with cfg.Workers goroutines for cfg.Ops operations each
// and returns the recorded history. The map must have been constructed
// with capacity for Workers+1 thread handles; registry exhaustion is
// surfaced as an error, never a panic.
func Run(m tscds.Map, cfg Config) (*History, error) {
	cfg = cfg.withDefaults()

	// Register every handle up front so oversubscription fails fast.
	pref, err := m.RegisterThread()
	if err != nil {
		return nil, fmt.Errorf("linearize: registering prefill thread: %w", err)
	}
	defer pref.Release()
	ths := make([]*tscds.Thread, cfg.Workers)
	for i := range ths {
		th, err := m.RegisterThread()
		if err != nil {
			for _, t := range ths[:i] {
				t.Release()
			}
			return nil, fmt.Errorf("linearize: registering worker %d of %d: %w",
				i+1, cfg.Workers, err)
		}
		ths[i] = th
	}
	defer func() {
		for _, t := range ths {
			t.Release()
		}
	}()

	base := time.Now()
	stamp := func() int64 { return int64(time.Since(base)) }

	h := &History{Cfg: cfg, Threads: make([][]Event, cfg.Workers+1)}

	// Sequential prefill, recorded like any other events so the checker
	// needs no special initial state.
	prng := rand.New(rand.NewSource(cfg.Seed))
	prefillTid := cfg.Workers
	var pseq uint64
	plog := make([]Event, 0, cfg.Prefill)
	for inserted := 0; inserted < cfg.Prefill; {
		key := prng.Uint64() % cfg.KeyRange
		pseq++
		v := value(prefillTid, pseq)
		ev := Event{Op: OpInsert, Thread: prefillTid, Key: key, Val: v}
		ev.Inv = stamp()
		ev.OK = m.Insert(pref, key, v)
		ev.Ret = stamp()
		plog = append(plog, ev)
		if ev.OK {
			inserted++
		}
	}
	h.Threads[prefillTid] = plog

	// Unexpected historical-read errors (ErrHistoryUnsupported on a cell
	// the caller claimed retains history, or a future-timestamp refusal
	// of a stamp that is necessarily in the past) are harness bugs, not
	// linearizability violations: the first one aborts the run.
	var (
		runErr  error
		errOnce sync.Once
	)
	fail := func(err error) { errOnce.Do(func() { runErr = err }) }

	var wg sync.WaitGroup
	for tid := 0; tid < cfg.Workers; tid++ {
		wg.Add(1)
		go func(tid int, th *tscds.Thread) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(tid) + 1))
			log := make([]Event, 0, cfg.Ops)
			var seq uint64
			var stamps []tsStamp
			capture := func() {
				inv := stamp()
				ts := m.Now()
				ret := stamp()
				st := tsStamp{ts: ts, inv: inv, ret: ret}
				if len(stamps) < stampRing {
					stamps = append(stamps, st)
				} else {
					stamps[rng.Intn(len(stamps))] = st
				}
			}
			if cfg.HistPct > 0 {
				capture()
			}
			for i := 0; i < cfg.Ops; i++ {
				if cfg.Midpoint != nil && tid == 0 && i == cfg.Ops/2 {
					cfg.Midpoint()
				}
				if cfg.HistPct > 0 && i%stampEvery == 0 {
					capture()
				}
				p := rng.Intn(100)
				key := rng.Uint64() % cfg.KeyRange
				var ev Event
				ev.Thread = tid
				switch {
				case p < cfg.InsertPct:
					seq++
					v := value(tid, seq)
					ev.Op, ev.Key, ev.Val = OpInsert, key, v
					ev.Inv = stamp()
					ev.OK = m.Insert(th, key, v)
					ev.Ret = stamp()
				case p < cfg.InsertPct+cfg.DeletePct:
					ev.Op, ev.Key = OpDelete, key
					ev.Inv = stamp()
					ev.OK = m.Delete(th, key)
					ev.Ret = stamp()
				case p < cfg.InsertPct+cfg.DeletePct+cfg.RangePct:
					lo := rng.Uint64() % cfg.KeyRange
					hi := lo + rng.Uint64()%cfg.RangeSpan
					ev.Op, ev.Lo, ev.Hi = OpRange, lo, hi
					ev.Inv = stamp()
					kvs := m.RangeQuery(th, lo, hi, nil)
					ev.Ret = stamp()
					if cfg.FaultRate > 0 && rng.Float64() < cfg.FaultRate {
						kvs = corrupt(rng, kvs, lo)
					}
					ev.KVs = kvs
				case p < cfg.InsertPct+cfg.DeletePct+cfg.RangePct+cfg.GetPct:
					ev.Op, ev.Key = OpGet, key
					ev.Inv = stamp()
					ev.Val, ev.OK = m.Get(th, key)
					ev.Ret = stamp()
				case p < cfg.InsertPct+cfg.DeletePct+cfg.RangePct+cfg.GetPct+cfg.HistPct:
					st := stamps[rng.Intn(len(stamps))]
					ev.TS, ev.TSInv, ev.TSRet = st.ts, st.inv, st.ret
					var err error
					if rng.Intn(2) == 0 {
						ev.Op, ev.Key = OpGetAt, key
						ev.Inv = stamp()
						ev.Val, ev.OK, err = m.GetAt(th, key, st.ts)
						ev.Ret = stamp()
					} else {
						lo := rng.Uint64() % cfg.KeyRange
						hi := lo + rng.Uint64()%cfg.RangeSpan
						ev.Op, ev.Lo, ev.Hi = OpRangeAt, lo, hi
						ev.Inv = stamp()
						var kvs []tscds.KV
						kvs, err = m.RangeQueryAt(th, lo, hi, st.ts, nil)
						ev.Ret = stamp()
						if err == nil && cfg.FaultRate > 0 && rng.Float64() < cfg.FaultRate {
							kvs = corrupt(rng, kvs, lo)
						}
						ev.KVs = kvs
					}
					if err != nil {
						if !errors.Is(err, tscds.ErrTruncatedHistory) {
							fail(fmt.Errorf("linearize: worker %d historical read at ts %d: %w",
								tid, st.ts, err))
							return
						}
						ev.Trunc = true
						ev.OK, ev.Val, ev.KVs = false, 0, nil
					}
				default:
					ev.Op, ev.Key = OpContains, key
					ev.Inv = stamp()
					ev.OK = m.Contains(th, key)
					ev.Ret = stamp()
				}
				log = append(log, ev)
			}
			h.Threads[tid] = log
		}(tid, ths[tid])
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return h, nil
}

// corrupt perturbs a recorded range-query result: it flips bit 63 of one
// observed value, or fabricates a phantom pair when the result is empty.
// Harness values never set bit 63, so either mutation is impossible in a
// real history and a working checker must flag it.
func corrupt(rng *rand.Rand, kvs []tscds.KV, lo uint64) []tscds.KV {
	out := append([]tscds.KV(nil), kvs...)
	if len(out) == 0 {
		return append(out, tscds.KV{Key: lo, Val: 1 << 63})
	}
	out[rng.Intn(len(out))].Val ^= 1 << 63
	return out
}

// RunAndCheck runs the harness and immediately checks the history,
// returning the history for logging alongside any violation.
func RunAndCheck(m tscds.Map, cfg Config) (*History, error) {
	h, err := Run(m, cfg)
	if err != nil {
		return nil, err
	}
	return h, Check(h)
}

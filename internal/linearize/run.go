package linearize

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tscds"
)

// value encodes a globally unique inserted value: thread in the high
// bits, a per-thread sequence number below. Bit 63 is never set, which
// the fault injector exploits to fabricate impossible observations.
func value(tid int, seq uint64) uint64 {
	return uint64(tid+1)<<40 | (seq & (1<<40 - 1))
}

// Run drives m with cfg.Workers goroutines for cfg.Ops operations each
// and returns the recorded history. The map must have been constructed
// with capacity for Workers+1 thread handles; registry exhaustion is
// surfaced as an error, never a panic.
func Run(m tscds.Map, cfg Config) (*History, error) {
	cfg = cfg.withDefaults()

	// Register every handle up front so oversubscription fails fast.
	pref, err := m.RegisterThread()
	if err != nil {
		return nil, fmt.Errorf("linearize: registering prefill thread: %w", err)
	}
	defer pref.Release()
	ths := make([]*tscds.Thread, cfg.Workers)
	for i := range ths {
		th, err := m.RegisterThread()
		if err != nil {
			for _, t := range ths[:i] {
				t.Release()
			}
			return nil, fmt.Errorf("linearize: registering worker %d of %d: %w",
				i+1, cfg.Workers, err)
		}
		ths[i] = th
	}
	defer func() {
		for _, t := range ths {
			t.Release()
		}
	}()

	base := time.Now()
	stamp := func() int64 { return int64(time.Since(base)) }

	h := &History{Cfg: cfg, Threads: make([][]Event, cfg.Workers+1)}

	// Sequential prefill, recorded like any other events so the checker
	// needs no special initial state.
	prng := rand.New(rand.NewSource(cfg.Seed))
	prefillTid := cfg.Workers
	var pseq uint64
	plog := make([]Event, 0, cfg.Prefill)
	for inserted := 0; inserted < cfg.Prefill; {
		key := prng.Uint64() % cfg.KeyRange
		pseq++
		v := value(prefillTid, pseq)
		ev := Event{Op: OpInsert, Thread: prefillTid, Key: key, Val: v}
		ev.Inv = stamp()
		ev.OK = m.Insert(pref, key, v)
		ev.Ret = stamp()
		plog = append(plog, ev)
		if ev.OK {
			inserted++
		}
	}
	h.Threads[prefillTid] = plog

	var wg sync.WaitGroup
	for tid := 0; tid < cfg.Workers; tid++ {
		wg.Add(1)
		go func(tid int, th *tscds.Thread) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(tid) + 1))
			log := make([]Event, 0, cfg.Ops)
			var seq uint64
			for i := 0; i < cfg.Ops; i++ {
				if cfg.Midpoint != nil && tid == 0 && i == cfg.Ops/2 {
					cfg.Midpoint()
				}
				p := rng.Intn(100)
				key := rng.Uint64() % cfg.KeyRange
				var ev Event
				ev.Thread = tid
				switch {
				case p < cfg.InsertPct:
					seq++
					v := value(tid, seq)
					ev.Op, ev.Key, ev.Val = OpInsert, key, v
					ev.Inv = stamp()
					ev.OK = m.Insert(th, key, v)
					ev.Ret = stamp()
				case p < cfg.InsertPct+cfg.DeletePct:
					ev.Op, ev.Key = OpDelete, key
					ev.Inv = stamp()
					ev.OK = m.Delete(th, key)
					ev.Ret = stamp()
				case p < cfg.InsertPct+cfg.DeletePct+cfg.RangePct:
					lo := rng.Uint64() % cfg.KeyRange
					hi := lo + rng.Uint64()%cfg.RangeSpan
					ev.Op, ev.Lo, ev.Hi = OpRange, lo, hi
					ev.Inv = stamp()
					kvs := m.RangeQuery(th, lo, hi, nil)
					ev.Ret = stamp()
					if cfg.FaultRate > 0 && rng.Float64() < cfg.FaultRate {
						kvs = corrupt(rng, kvs, lo)
					}
					ev.KVs = kvs
				case p < cfg.InsertPct+cfg.DeletePct+cfg.RangePct+cfg.GetPct:
					ev.Op, ev.Key = OpGet, key
					ev.Inv = stamp()
					ev.Val, ev.OK = m.Get(th, key)
					ev.Ret = stamp()
				default:
					ev.Op, ev.Key = OpContains, key
					ev.Inv = stamp()
					ev.OK = m.Contains(th, key)
					ev.Ret = stamp()
				}
				log = append(log, ev)
			}
			h.Threads[tid] = log
		}(tid, ths[tid])
	}
	wg.Wait()
	return h, nil
}

// corrupt perturbs a recorded range-query result: it flips bit 63 of one
// observed value, or fabricates a phantom pair when the result is empty.
// Harness values never set bit 63, so either mutation is impossible in a
// real history and a working checker must flag it.
func corrupt(rng *rand.Rand, kvs []tscds.KV, lo uint64) []tscds.KV {
	out := append([]tscds.KV(nil), kvs...)
	if len(out) == 0 {
		return append(out, tscds.KV{Key: lo, Val: 1 << 63})
	}
	out[rng.Intn(len(out))].Val ^= 1 << 63
	return out
}

// RunAndCheck runs the harness and immediately checks the history,
// returning the history for logging alongside any violation.
func RunAndCheck(m tscds.Map, cfg Config) (*History, error) {
	h, err := Run(m, cfg)
	if err != nil {
		return nil, err
	}
	return h, Check(h)
}

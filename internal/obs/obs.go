// Package obs is the library's zero-dependency observability layer:
// atomic counters, gauges, and lock-free latency histograms with fixed
// log-scale buckets, aggregated in a Registry with a Snapshot/expvar-style
// export surface.
//
// The paper's argument is quantitative — timestamp-advance contention,
// range-query/update interference, and version-reclamation pressure decide
// whether hardware timestamps win — so the hot paths report here when (and
// only when) a caller opts in by passing a *Registry. Every instrument is
// a plain atomic on its own cache-line pair; a nil registry costs a single
// predictable branch on the instrumented paths.
//
// The package deliberately imports nothing from the rest of the library so
// that every layer (core, the technique packages, the facade, the bench
// harness) can report through it without import cycles.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// cacheLine mirrors core's padding policy: two lines per instrument to
// defeat the adjacent-line prefetcher, so metric traffic never
// false-shares with the data it measures or with neighbouring metrics.
const cacheLine = 64

// Counter is a monotonically increasing atomic counter alone on its own
// pair of cache lines. The zero value is ready to use.
type Counter struct {
	_ [cacheLine]byte
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic signed level (something that goes up and down, like
// a limbo-list population). The zero value is ready to use.
type Gauge struct {
	_ [cacheLine]byte
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of histogram buckets. Bucket 0 holds zero
// observations; bucket i (i >= 1) holds values in [2^(i-1), 2^i)
// nanoseconds; the last bucket absorbs everything larger (>= 2^38 ns,
// about 4.6 minutes — far beyond any data-structure operation).
const HistBuckets = 40

// Histogram is a lock-free latency histogram over fixed log2-scale
// nanosecond buckets. Observations are three atomic adds and a CAS-loop
// max update; no locks, no allocation. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [HistBuckets]atomic.Uint64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns uint64) int {
	i := bits.Len64(ns)
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketUpperNS returns the inclusive upper bound (in ns) of bucket i,
// i.e. the largest value the bucket can hold. The last bucket is
// unbounded and reports the maximum uint64.
func BucketUpperNS(i int) uint64 {
	if i >= HistBuckets-1 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.ObserveNS(ns)
}

// ObserveNS records one observation of ns nanoseconds.
func (h *Histogram) ObserveNS(ns uint64) {
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// QuantileNS estimates the q-quantile in nanoseconds, for q in (0, 1],
// by log-linear interpolation: the winning log2 bucket is located by
// rank, then the estimate moves linearly across that bucket's
// [2^(i-1), 2^i) span according to the rank's position among the
// bucket's own observations. (Reporting the bucket boundary instead —
// what this function did originally — biased every quantile high by up
// to the 2x bucket width.) Estimates never exceed the observed maximum,
// and the unbounded tail bucket reports the maximum directly. With
// concurrent writers the estimate is approximate in the usual
// monitoring sense.
func (h *Histogram) QuantileNS(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		n := h.buckets[i].Load()
		if cum+n < rank {
			cum += n
			continue
		}
		if i == 0 {
			return 0 // the zero bucket holds only zero observations
		}
		max := h.max.Load()
		if i == HistBuckets-1 {
			// Unbounded tail: the observed maximum is the only finite
			// bound available.
			return max
		}
		lo := uint64(1) << uint(i-1) // inclusive lower bound, width == lo
		pos := float64(rank-cum) / float64(n)
		est := uint64(float64(lo) + pos*float64(lo))
		if up := 2*lo - 1; est > up {
			est = up
		}
		if est < lo {
			est = lo
		}
		if max > 0 && est > max {
			est = max
		}
		return est
	}
	return BucketUpperNS(HistBuckets - 1)
}

// BucketCount is one nonzero histogram bucket in a snapshot.
type BucketCount struct {
	// UpToNS is the bucket's inclusive upper bound in nanoseconds.
	UpToNS uint64 `json:"le_ns"`
	Count  uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a Histogram. Buckets lists only
// nonzero buckets, smallest bound first.
type HistSnapshot struct {
	Count   uint64        `json:"count"`
	SumNS   uint64        `json:"sum_ns"`
	MeanNS  uint64        `json:"mean_ns"`
	MaxNS   uint64        `json:"max_ns"`
	P50NS   uint64        `json:"p50_ns"`
	P95NS   uint64        `json:"p95_ns"`
	P99NS   uint64        `json:"p99_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Concurrent observations may straddle the
// copy; totals are internally consistent to within in-flight operations.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		SumNS: h.sum.Load(),
		MaxNS: h.max.Load(),
	}
	if s.Count > 0 {
		s.MeanNS = s.SumNS / s.Count
	}
	s.P50NS = h.QuantileNS(0.50)
	s.P95NS = h.QuantileNS(0.95)
	s.P99NS = h.QuantileNS(0.99)
	for i := 0; i < HistBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpToNS: BucketUpperNS(i), Count: n})
		}
	}
	return s
}

// OpClass labels the operation classes the facade instruments, matching
// the paper's U-RQ-C workload split.
type OpClass int

const (
	// OpUpdate covers Insert and Delete.
	OpUpdate OpClass = iota
	// OpRange covers RangeQuery and Scan.
	OpRange
	// OpContains covers Contains and Get.
	OpContains

	numOpClasses
)

// String names the class as it appears in snapshot JSON.
func (c OpClass) String() string {
	switch c {
	case OpUpdate:
		return "update"
	case OpRange:
		return "range-query"
	case OpContains:
		return "contains"
	}
	return "unknown"
}

// SourceStats counts timestamp-source traffic. On a logical source every
// Advance is one fetch-and-add on the shared counter, so Advances is a
// direct proxy for the contention the paper measures; on hardware sources
// all three are core-local reads and the counts only describe the
// workload's timestamp appetite.
type SourceStats struct {
	Advances  Counter
	Peeks     Counter
	Snapshots Counter
	// Stalls counts AdvanceStrict spin-budget exhaustions: the source
	// refused to move past a prior timestamp within the budget (a frozen
	// or severely degraded counter).
	Stalls Counter
	// SnapshotRetries counts range queries that discarded a collected
	// snapshot because the adaptive source switched generations under
	// them and re-ran against a fresh bound.
	SnapshotRetries Counter
}

// SourceSnapshot is a point-in-time copy of SourceStats.
type SourceSnapshot struct {
	// Kind is the timestamp kind label ("Logical", "RDTSCP", ...), set by
	// whoever wires the stats to a source.
	Kind string `json:"kind,omitempty"`
	// Actual is the kind actually serving reads when it differs from the
	// requested Kind — e.g. "Monotonic" when RDTSCP was requested on a
	// host without it. Empty when the request is honored.
	Actual          string `json:"actual,omitempty"`
	Advances        uint64 `json:"advances"`
	Peeks           uint64 `json:"peeks"`
	Snapshots       uint64 `json:"snapshots"`
	Stalls          uint64 `json:"stalls,omitempty"`
	SnapshotRetries uint64 `json:"snapshot_retries,omitempty"`
}

// GC is the reclamation-reporting hook shared by every technique family:
// the bundle, vCAS and EBR-RQ implementations all report through one
// instance of this struct (bundle entries and vCAS versions dropped by
// truncation, EBR-RQ limbo-list churn). A nil *GC disables reporting.
type GC struct {
	// BundlePruned counts bundle history entries dropped by truncation.
	BundlePruned Counter
	// VersionsPruned counts vCAS versions dropped by chain truncation.
	VersionsPruned Counter
	// LimboRetired counts nodes placed on EBR-RQ limbo lists.
	LimboRetired Counter
	// LimboPruned counts limbo nodes dropped once both the epoch and the
	// range-query retention conditions released them.
	LimboPruned Counter
	// LimboLen tracks the current total limbo population.
	LimboLen Gauge
}

// GCSnapshot is a point-in-time copy of GC.
type GCSnapshot struct {
	BundleEntriesPruned uint64 `json:"bundle_entries_pruned"`
	VcasVersionsPruned  uint64 `json:"vcas_versions_pruned"`
	LimboRetired        uint64 `json:"limbo_retired"`
	LimboPruned         uint64 `json:"limbo_pruned"`
	LimboLen            int64  `json:"limbo_len"`
}

// Snapshot copies the counters.
func (g *GC) Snapshot() GCSnapshot {
	return GCSnapshot{
		BundleEntriesPruned: g.BundlePruned.Load(),
		VcasVersionsPruned:  g.VersionsPruned.Load(),
		LimboRetired:        g.LimboRetired.Load(),
		LimboPruned:         g.LimboPruned.Load(),
		LimboLen:            g.LimboLen.Load(),
	}
}

// HistoryStats counts MVCC time-travel reads (Map.GetAt/RangeQueryAt/
// ScanAt at caller-chosen past timestamps). Reads that refuse with
// ErrHistoryUnsupported or ErrFutureTimestamp are not counted: the
// first is a static capability miss, the second a caller bug; only
// served snapshots and retention-window refusals say anything about
// the history the map is actually keeping.
type HistoryStats struct {
	// Reads counts historical reads served from retained history.
	Reads Counter
	// Truncations counts historical reads refused with
	// ErrTruncatedHistory: the requested timestamp fell below the
	// published prune watermark. A growing rate means readers want
	// more history than Config.Retention keeps.
	Truncations Counter
}

// HistorySnapshot is a point-in-time copy of HistoryStats.
type HistorySnapshot struct {
	Reads       uint64 `json:"reads"`
	Truncations uint64 `json:"truncations"`
}

// Snapshot copies the counters.
func (h *HistoryStats) Snapshot() HistorySnapshot {
	return HistorySnapshot{
		Reads:       h.Reads.Load(),
		Truncations: h.Truncations.Load(),
	}
}

// PoolStats counts allocator-facade traffic when a structure runs in
// pooled or arena mode (Config.Alloc): Hits are allocations served from
// a per-thread free list or arena chunk without touching the Go heap;
// Misses fell through to the runtime allocator (cold free list, drained
// sync.Pool, fresh arena chunk); Recycled counts retired nodes the epoch
// machinery proved unreachable and handed back to a free list instead of
// the GC. A nil *PoolStats disables reporting.
type PoolStats struct {
	Hits     Counter
	Misses   Counter
	Recycled Counter
}

// PoolSnapshot is a point-in-time copy of PoolStats.
type PoolSnapshot struct {
	// Mode is the allocation mode label ("GC", "Pool", "Arena"), set by
	// whoever wires the stats to a pool.
	Mode     string `json:"mode,omitempty"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Recycled uint64 `json:"recycled"`
}

// Snapshot copies the counters.
func (p *PoolStats) Snapshot() PoolSnapshot {
	return PoolSnapshot{
		Hits:     p.Hits.Load(),
		Misses:   p.Misses.Load(),
		Recycled: p.Recycled.Load(),
	}
}

// ShardStats counts one shard's share of a sharded map's traffic: Ops is
// point operations (insert/delete/contains/get) routed to the shard by
// the key partition; RQs is range-query collections that visited the
// shard (one range query increments RQs on every overlapping shard).
type ShardStats struct {
	Ops Counter
	RQs Counter
}

// ShardSnapshot is a point-in-time copy of one shard's stats.
type ShardSnapshot struct {
	Ops uint64 `json:"ops"`
	RQs uint64 `json:"rqs"`
}

// Registry aggregates one data structure's metrics: per-class operation
// latency histograms (which carry the op counts), timestamp-source stats,
// reclamation stats, and — for sharded maps — per-shard routing counts.
// A Registry is safe for concurrent use by any number of goroutines; all
// fields are independent atomics.
type Registry struct {
	ops      [numOpClasses]Histogram
	Source   SourceStats
	GC       GC
	Pool     PoolStats
	WAL      WALStats
	History  HistoryStats
	kind     atomic.Pointer[string]
	actual   atomic.Pointer[string]
	strucLbl atomic.Pointer[string]
	alloc    atomic.Pointer[string]
	walMode  atomic.Pointer[string]
	shards   atomic.Pointer[[]*ShardStats]
	strCache atomic.Pointer[stringCache]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Op returns the latency histogram for one operation class.
func (r *Registry) Op(c OpClass) *Histogram { return &r.ops[c] }

// ObserveOp records one completed operation of class c.
func (r *Registry) ObserveOp(c OpClass, d time.Duration) {
	r.ops[c].Observe(d)
}

// SetSourceKind records the timestamp kind label reported in snapshots.
// When several structures share one registry the last label wins.
func (r *Registry) SetSourceKind(kind string) { r.kind.Store(&kind) }

// SetSourceActual records the kind actually serving reads when it
// differs from the requested kind (silent-fallback disclosure). Pass
// the requested kind's label to clear.
func (r *Registry) SetSourceActual(actual string) { r.actual.Store(&actual) }

// SetStructure records the structure/technique label ("bst/vcas", ...)
// reported in snapshots and attached as the structure= label on every
// Prometheus family the registry exports. When several structures share
// one registry the last label wins.
func (r *Registry) SetStructure(s string) { r.strucLbl.Store(&s) }

// SetAllocMode records the allocation-mode label ("Pool", "Arena")
// reported with the pool stats in snapshots. Left unset, the pool
// section is omitted (the structure allocates through the GC).
func (r *Registry) SetAllocMode(mode string) { r.alloc.Store(&mode) }

// SetWALMode records the durability-mode label ("sync", "batched(N)")
// reported with the WAL stats in snapshots. Left unset, the wal
// section is omitted (the map is not durable).
func (r *Registry) SetWALMode(mode string) { r.walMode.Store(&mode) }

// EnsureShards sizes the per-shard stats table to at least n entries.
// Call before the instrumented map sees traffic; existing entries (and
// their counts) are preserved, so a registry shared by several sharded
// maps grows to the widest.
func (r *Registry) EnsureShards(n int) {
	for {
		old := r.shards.Load()
		if old != nil && len(*old) >= n {
			return
		}
		grown := make([]*ShardStats, n)
		if old != nil {
			copy(grown, *old)
		}
		for i := range grown {
			if grown[i] == nil {
				grown[i] = &ShardStats{}
			}
		}
		if r.shards.CompareAndSwap(old, &grown) {
			return
		}
	}
}

// Shard returns shard i's stats, or nil when i is outside the table
// sized by EnsureShards (callers then skip reporting).
func (r *Registry) Shard(i int) *ShardStats {
	s := r.shards.Load()
	if s == nil || i < 0 || i >= len(*s) {
		return nil
	}
	return (*s)[i]
}

// Snapshot is the exported point-in-time state of a Registry. It
// marshals to the JSON shape documented in the README's Observability
// section.
type Snapshot struct {
	// Structure is the structure/technique label set by SetStructure
	// ("bst/vcas", ...); empty when the registry is not wired to a map.
	Structure string                  `json:"structure,omitempty"`
	Source    SourceSnapshot          `json:"source"`
	Ops       map[string]HistSnapshot `json:"ops"`
	GC        GCSnapshot              `json:"gc"`
	// Pool is present only for registries wired to a pooled or arena
	// allocator (SetAllocMode was called).
	Pool *PoolSnapshot `json:"pool,omitempty"`
	// WAL is present only for registries wired to a durable map
	// (SetWALMode was called).
	WAL *WALSnapshot `json:"wal,omitempty"`
	// History is present once the map has served or refused at least
	// one time-travel read.
	History *HistorySnapshot `json:"history,omitempty"`
	// Shards is present only for registries wired to a sharded map.
	Shards []ShardSnapshot `json:"shards,omitempty"`
}

// Snapshot copies every instrument.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Source: SourceSnapshot{
			Advances:        r.Source.Advances.Load(),
			Peeks:           r.Source.Peeks.Load(),
			Snapshots:       r.Source.Snapshots.Load(),
			Stalls:          r.Source.Stalls.Load(),
			SnapshotRetries: r.Source.SnapshotRetries.Load(),
		},
		Ops: make(map[string]HistSnapshot, int(numOpClasses)),
		GC:  r.GC.Snapshot(),
	}
	if k := r.kind.Load(); k != nil {
		s.Source.Kind = *k
	}
	if st := r.strucLbl.Load(); st != nil {
		s.Structure = *st
	}
	if a := r.actual.Load(); a != nil && (s.Source.Kind == "" || *a != s.Source.Kind) {
		s.Source.Actual = *a
	}
	if m := r.alloc.Load(); m != nil {
		ps := r.Pool.Snapshot()
		ps.Mode = *m
		s.Pool = &ps
	}
	if m := r.walMode.Load(); m != nil {
		ws := r.WAL.Snapshot()
		ws.Mode = *m
		s.WAL = &ws
	}
	if hs := r.History.Snapshot(); hs.Reads+hs.Truncations > 0 {
		s.History = &hs
	}
	for c := OpClass(0); c < numOpClasses; c++ {
		s.Ops[c.String()] = r.ops[c].Snapshot()
	}
	if sh := r.shards.Load(); sh != nil {
		s.Shards = make([]ShardSnapshot, len(*sh))
		for i, st := range *sh {
			s.Shards[i] = ShardSnapshot{Ops: st.Ops.Load(), RQs: st.RQs.Load()}
		}
	}
	return s
}

// stringCache memoizes one rendered String so scrapers polling an
// expvar page cannot turn every page load into a full snapshot+marshal
// of ~120 histogram buckets.
type stringCache struct {
	at  time.Time
	out string
}

// stringTTL bounds how stale a memoized String render may be. Snapshot
// is always live; only the String export is rate-limited.
var stringTTL = 100 * time.Millisecond

// String renders the snapshot as JSON, making *Registry an expvar.Var so
// callers can expvar.Publish("tscds", registry) directly. Renders are
// memoized for stringTTL, so a hot scrape loop costs one pointer load
// per call rather than a marshal; use Snapshot for guaranteed-fresh
// values.
func (r *Registry) String() string {
	now := time.Now()
	if c := r.strCache.Load(); c != nil && now.Sub(c.at) < stringTTL {
		return c.out
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	out := string(b)
	r.strCache.Store(&stringCache{at: now, out: out})
	return out
}

// Summary renders the snapshot as a short human-readable table: one line
// per active op class with count, mean, and the bucket-derived p50, p99
// and max, plus source and reclamation traffic when present.
func (s Snapshot) Summary() string {
	var b strings.Builder
	for _, c := range []OpClass{OpUpdate, OpRange, OpContains} {
		op, ok := s.Ops[c.String()]
		if !ok || op.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-12s %10d ops  mean %s  p50 %s  p99 %s  max %s\n",
			c.String(), op.Count, durNS(op.MeanNS), durNS(op.P50NS), durNS(op.P99NS), durNS(op.MaxNS))
	}
	if s.Source.Advances+s.Source.Peeks+s.Source.Snapshots > 0 {
		label := s.Source.Kind
		if s.Source.Actual != "" {
			label += " (actual: " + s.Source.Actual + ")"
		}
		fmt.Fprintf(&b, "  source %s: %d advances, %d peeks, %d snapshots\n",
			label, s.Source.Advances, s.Source.Peeks, s.Source.Snapshots)
		if s.Source.Stalls+s.Source.SnapshotRetries > 0 {
			fmt.Fprintf(&b, "  source faults: %d stalls, %d snapshot retries\n",
				s.Source.Stalls, s.Source.SnapshotRetries)
		}
	}
	if g := s.GC; g.BundleEntriesPruned+g.VcasVersionsPruned+g.LimboRetired > 0 {
		fmt.Fprintf(&b, "  gc: %d bundle entries pruned, %d versions pruned, %d limbo retired (%d pruned, %d live)\n",
			g.BundleEntriesPruned, g.VcasVersionsPruned, g.LimboRetired, g.LimboPruned, g.LimboLen)
	}
	if h := s.History; h != nil {
		fmt.Fprintf(&b, "  history: %d time-travel reads, %d refused below retention\n",
			h.Reads, h.Truncations)
	}
	if p := s.Pool; p != nil {
		total := p.Hits + p.Misses
		hitPct := 0.0
		if total > 0 {
			hitPct = 100 * float64(p.Hits) / float64(total)
		}
		fmt.Fprintf(&b, "  alloc %s: %d pool hits / %d misses (%.1f%% reuse), %d recycled\n",
			p.Mode, p.Hits, p.Misses, hitPct, p.Recycled)
	}
	if w := s.WAL; w != nil {
		group := 0.0
		if w.Batches > 0 {
			group = float64(w.Appends) / float64(w.Batches)
		}
		fmt.Fprintf(&b, "  wal %s: %d appends in %d batches (%.1f/commit), %d fsyncs, %d snapshots (%d keys)\n",
			w.Mode, w.Appends, w.Batches, group, w.Fsyncs, w.SnapshotFlushes, w.SnapshotKeys)
		if w.Retries+w.Errors+w.SnapshotFailures > 0 {
			fmt.Fprintf(&b, "  wal faults: %d retries, %d errors, %d snapshot failures\n",
				w.Retries, w.Errors, w.SnapshotFailures)
		}
		if w.RecoveredKeys+w.RecoveredRecords+w.TornSkipped > 0 {
			fmt.Fprintf(&b, "  recovery: %d snapshot keys, %d records replayed, %d torn records skipped\n",
				w.RecoveredKeys, w.RecoveredRecords, w.TornSkipped)
		}
	}
	if len(s.Shards) > 0 {
		fmt.Fprintf(&b, "  shards:")
		for i, sh := range s.Shards {
			fmt.Fprintf(&b, " [%d] %d ops / %d rq", i, sh.Ops, sh.RQs)
		}
		fmt.Fprintf(&b, "\n")
	}
	if b.Len() == 0 {
		return "  (no activity recorded)\n"
	}
	return b.String()
}

// durNS renders an integer nanosecond quantity with an adaptive unit.
func durNS(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 38, HistBuckets - 1},
		{^uint64(0), HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// Property: every value falls in a bucket whose inclusive upper bound is
// >= the value, and the previous bucket's bound is < the value.
func TestBucketBoundsConsistent(t *testing.T) {
	for _, ns := range []uint64{0, 1, 2, 3, 5, 100, 999, 4096, 1 << 20, 1 << 37, 1 << 39} {
		i := bucketOf(ns)
		if up := BucketUpperNS(i); ns > up {
			t.Errorf("ns %d landed in bucket %d with upper bound %d", ns, i, up)
		}
		if i > 0 && i < HistBuckets-1 {
			if prev := BucketUpperNS(i - 1); ns <= prev {
				t.Errorf("ns %d should not fit below bucket %d (prev bound %d)", ns, i, prev)
			}
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.ObserveNS(0)
	h.ObserveNS(5)
	h.ObserveNS(5)
	h.ObserveNS(1000)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.SumNS != 1010 {
		t.Fatalf("sum = %d, want 1010", s.SumNS)
	}
	if s.MaxNS != 1000 {
		t.Fatalf("max = %d, want 1000", s.MaxNS)
	}
	if s.MeanNS != 252 {
		t.Fatalf("mean = %d, want 252", s.MeanNS)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
	// p50 of {0,5,5,1000}: rank 2 lands on a 5 -> bucket [4,7], halfway
	// through it by rank -> log-linear estimate 4 + 0.5*4 = 6.
	if s.P50NS != 6 {
		t.Fatalf("p50 = %d, want 6", s.P50NS)
	}
	// p99: rank 4 lands on 1000 -> bucket [512,1023], rank at the bucket
	// top -> estimate clamps to the bucket bound, then to the observed
	// max (1000).
	if s.P99NS != 1000 {
		t.Fatalf("p99 = %d, want 1000", s.P99NS)
	}
}

// The log-linear interpolation must keep quantile estimates close to
// the true values on a known distribution: uniform 1..100000 ns spans
// buckets whose widths reach 2^16, where the old report-the-bucket-
// bound estimator was off by up to 31% at p50.
func TestQuantileInterpolationErrorBounds(t *testing.T) {
	var h Histogram
	const n = 100_000
	for i := uint64(1); i <= n; i++ {
		h.ObserveNS(i)
	}
	cases := []struct {
		q      float64
		truth  float64
		maxErr float64 // relative
	}{
		{0.50, 50_000, 0.02},
		{0.95, 95_000, 0.06},
		{0.99, 99_000, 0.02},
	}
	for _, c := range cases {
		got := float64(h.QuantileNS(c.q))
		rel := (got - c.truth) / c.truth
		if rel < 0 {
			rel = -rel
		}
		if rel > c.maxErr {
			t.Errorf("p%.0f = %.0f, truth %.0f: relative error %.3f exceeds %.3f",
				100*c.q, got, c.truth, rel, c.maxErr)
		}
	}
	// The estimate must never exceed the observed max.
	if q := h.QuantileNS(1.0); q > n {
		t.Errorf("p100 = %d exceeds observed max %d", q, n)
	}
}

func TestHistogramNegativeDuration(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.SumNS != 0 {
		t.Fatalf("negative duration: count=%d sum=%d, want 1, 0", s.Count, s.SumNS)
	}
}

func TestEmptyHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.QuantileNS(0.99); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

// Concurrent increments across counters, gauges and histograms must not
// lose updates (run with -race; make check does).
func TestConcurrentInstruments(t *testing.T) {
	const (
		workers = 8
		perG    = 10_000
	)
	var (
		c  Counter
		g  Gauge
		h  Histogram
		wg sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.ObserveNS(uint64(w*perG + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*perG {
		t.Errorf("counter = %d, want %d", got, workers*perG)
	}
	if got := g.Load(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != workers*perG {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*perG)
	}
	if s.MaxNS != workers*perG-1 {
		t.Errorf("histogram max = %d, want %d", s.MaxNS, workers*perG-1)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.SetSourceKind("Logical")
	r.ObserveOp(OpUpdate, 100*time.Nanosecond)
	r.ObserveOp(OpRange, time.Microsecond)
	r.ObserveOp(OpContains, 50*time.Nanosecond)
	r.Source.Advances.Add(3)
	r.GC.BundlePruned.Add(2)
	r.GC.LimboRetired.Inc()
	r.GC.LimboLen.Add(1)

	var parsed Snapshot
	if err := json.Unmarshal([]byte(r.String()), &parsed); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if parsed.Source.Kind != "Logical" {
		t.Errorf("kind = %q, want Logical", parsed.Source.Kind)
	}
	if parsed.Source.Advances != 3 {
		t.Errorf("advances = %d, want 3", parsed.Source.Advances)
	}
	for _, class := range []string{"update", "range-query", "contains"} {
		op, ok := parsed.Ops[class]
		if !ok {
			t.Fatalf("snapshot missing op class %q", class)
		}
		if op.Count != 1 {
			t.Errorf("%s count = %d, want 1", class, op.Count)
		}
		if len(op.Buckets) == 0 {
			t.Errorf("%s has no buckets", class)
		}
	}
	if parsed.GC.BundleEntriesPruned != 2 || parsed.GC.LimboRetired != 1 || parsed.GC.LimboLen != 1 {
		t.Errorf("gc snapshot = %+v", parsed.GC)
	}
}

func TestOpClassString(t *testing.T) {
	if OpUpdate.String() != "update" || OpRange.String() != "range-query" ||
		OpContains.String() != "contains" || OpClass(99).String() != "unknown" {
		t.Fatal("OpClass labels changed; snapshot JSON shape is documented in README")
	}
}

package obs

import (
	"fmt"
	"io"
	"strings"
)

// PromVar is the optional capability a Var may implement to appear in
// the Prometheus text exposition (/metrics.prom, and /metrics under
// Accept negotiation). WriteProm writes zero or more complete metric
// families in text exposition format 0.0.4: every family introduced by
// its # HELP and # TYPE lines, histogram buckets cumulative and
// +Inf-terminated. *Registry implements it; so does *tsc.Health
// (structurally — this package never imports tsc).
type PromVar interface {
	WriteProm(w io.Writer)
}

// PromEscape escapes a label value per the text exposition format
// (backslash, double quote, and newline).
func PromEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabel is one label pair, pre-escaped at render time.
type promLabel struct{ k, v string }

// promLabels renders an ordered label set; an empty set renders as "".
func promLabels(ls []promLabel) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.k)
		b.WriteString(`="`)
		b.WriteString(PromEscape(l.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promHead writes a family's # HELP and # TYPE metadata.
func promHead(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promU64 writes one sample with an integer value.
func promU64(w io.Writer, name string, ls []promLabel, v uint64) {
	fmt.Fprintf(w, "%s%s %d\n", name, promLabels(ls), v)
}

// promI64 writes one sample with a signed integer value.
func promI64(w io.Writer, name string, ls []promLabel, v int64) {
	fmt.Fprintf(w, "%s%s %d\n", name, promLabels(ls), v)
}

// promF64 writes one sample with a float value.
func promF64(w io.Writer, name string, ls []promLabel, v float64) {
	fmt.Fprintf(w, "%s%s %g\n", name, promLabels(ls), v)
}

// with returns ls extended by one pair (copy; ls is never mutated).
func with(ls []promLabel, k, v string) []promLabel {
	out := make([]promLabel, len(ls), len(ls)+1)
	copy(out, ls)
	return append(out, promLabel{k, v})
}

// WriteProm renders the registry as Prometheus text-format families:
// op counters and latency histograms (cumulative _bucket/_sum/_count,
// le in nanoseconds), timestamp-source counters, GC/reclamation
// counters, and — when the registry is wired to them — pool, WAL and
// per-shard families. The structure= and source= labels carry the
// SetStructure/SetSourceKind identity on every sample; shard families
// add shard=. Nil-safe (writes nothing).
func (r *Registry) WriteProm(w io.Writer) {
	if r == nil {
		return
	}
	s := r.Snapshot()
	var base []promLabel
	if s.Structure != "" {
		base = append(base, promLabel{"structure", s.Structure})
	}
	if s.Source.Kind != "" {
		base = append(base, promLabel{"source", s.Source.Kind})
	}
	classes := []OpClass{OpUpdate, OpRange, OpContains}

	promHead(w, "tscds_ops_total", "Completed operations by class.", "counter")
	for _, c := range classes {
		promU64(w, "tscds_ops_total", with(base, "class", c.String()), s.Ops[c.String()].Count)
	}

	promHead(w, "tscds_op_latency_ns", "Operation latency in nanoseconds (log2 buckets; le is the bucket's inclusive upper bound).", "histogram")
	for _, c := range classes {
		op := s.Ops[c.String()]
		lb := with(base, "class", c.String())
		var cum uint64
		for _, b := range op.Buckets {
			cum += b.Count
			if b.UpToNS == ^uint64(0) {
				continue // the unbounded tail is the +Inf bucket below
			}
			promU64(w, "tscds_op_latency_ns_bucket", with(lb, "le", fmt.Sprintf("%d", b.UpToNS)), cum)
		}
		// +Inf and _count both report the bucket-derived total so the
		// exposition is internally consistent even while writers run.
		promU64(w, "tscds_op_latency_ns_bucket", with(lb, "le", "+Inf"), cum)
		promU64(w, "tscds_op_latency_ns_sum", lb, op.SumNS)
		promU64(w, "tscds_op_latency_ns_count", lb, cum)
	}

	src := base
	promHead(w, "tscds_source_advances_total", "Timestamp-source Advance calls (one fetch-and-add per call on a logical source).", "counter")
	promU64(w, "tscds_source_advances_total", src, s.Source.Advances)
	promHead(w, "tscds_source_peeks_total", "Timestamp-source Peek calls.", "counter")
	promU64(w, "tscds_source_peeks_total", src, s.Source.Peeks)
	promHead(w, "tscds_source_snapshots_total", "Range-query snapshot-bound acquisitions.", "counter")
	promU64(w, "tscds_source_snapshots_total", src, s.Source.Snapshots)
	promHead(w, "tscds_source_stalls_total", "AdvanceStrict spin-budget exhaustions (frozen or severely degraded source).", "counter")
	promU64(w, "tscds_source_stalls_total", src, s.Source.Stalls)
	promHead(w, "tscds_source_snapshot_retries_total", "Range-query snapshots discarded and re-run after an adaptive-source generation switch.", "counter")
	promU64(w, "tscds_source_snapshot_retries_total", src, s.Source.SnapshotRetries)

	actual := s.Source.Actual
	if actual == "" {
		actual = s.Source.Kind
	}
	promHead(w, "tscds_source_info", "Requested and actually-serving timestamp source (value is always 1).", "gauge")
	info := base
	info = with(info, "requested", s.Source.Kind)
	info = with(info, "actual", actual)
	promU64(w, "tscds_source_info", info, 1)

	promHead(w, "tscds_gc_bundle_entries_pruned_total", "Bundle history entries dropped by truncation.", "counter")
	promU64(w, "tscds_gc_bundle_entries_pruned_total", base, s.GC.BundleEntriesPruned)
	promHead(w, "tscds_gc_vcas_versions_pruned_total", "vCAS versions dropped by chain truncation.", "counter")
	promU64(w, "tscds_gc_vcas_versions_pruned_total", base, s.GC.VcasVersionsPruned)
	promHead(w, "tscds_gc_limbo_retired_total", "Nodes placed on EBR-RQ limbo lists.", "counter")
	promU64(w, "tscds_gc_limbo_retired_total", base, s.GC.LimboRetired)
	promHead(w, "tscds_gc_limbo_pruned_total", "Limbo nodes released by epoch and range-query retention.", "counter")
	promU64(w, "tscds_gc_limbo_pruned_total", base, s.GC.LimboPruned)
	promHead(w, "tscds_gc_limbo_len", "Current total limbo population.", "gauge")
	promI64(w, "tscds_gc_limbo_len", base, s.GC.LimboLen)

	if h := s.History; h != nil {
		promHead(w, "tscds_history_reads_total", "Historical (time-travel) reads served from retained version history.", "counter")
		promU64(w, "tscds_history_reads_total", base, h.Reads)
		promHead(w, "tscds_history_truncations_total", "Historical reads refused with ErrTruncatedHistory (timestamp below the retention watermark).", "counter")
		promU64(w, "tscds_history_truncations_total", base, h.Truncations)
	}

	if p := s.Pool; p != nil {
		pl := with(base, "mode", p.Mode)
		promHead(w, "tscds_pool_hits_total", "Allocations served from a per-thread free list or arena chunk.", "counter")
		promU64(w, "tscds_pool_hits_total", pl, p.Hits)
		promHead(w, "tscds_pool_misses_total", "Allocations that fell through to the runtime allocator.", "counter")
		promU64(w, "tscds_pool_misses_total", pl, p.Misses)
		promHead(w, "tscds_pool_recycled_total", "Retired nodes proven unreachable and recycled to free lists.", "counter")
		promU64(w, "tscds_pool_recycled_total", pl, p.Recycled)
	}

	if wal := s.WAL; wal != nil {
		wl := with(base, "mode", wal.Mode)
		promHead(w, "tscds_wal_appends_total", "WAL records appended.", "counter")
		promU64(w, "tscds_wal_appends_total", wl, wal.Appends)
		promHead(w, "tscds_wal_appended_bytes_total", "Encoded bytes appended to the WAL.", "counter")
		promU64(w, "tscds_wal_appended_bytes_total", wl, wal.AppendedBytes)
		promHead(w, "tscds_wal_batches_total", "Group-commit write batches.", "counter")
		promU64(w, "tscds_wal_batches_total", wl, wal.Batches)
		promHead(w, "tscds_wal_fsyncs_total", "Successful fsyncs (segment and snapshot files).", "counter")
		promU64(w, "tscds_wal_fsyncs_total", wl, wal.Fsyncs)
		promHead(w, "tscds_wal_retries_total", "Transient write/fsync errors absorbed by retry-with-backoff.", "counter")
		promU64(w, "tscds_wal_retries_total", wl, wal.Retries)
		promHead(w, "tscds_wal_errors_total", "Persistent WAL failures (sticky; durability broken, map serving from memory).", "counter")
		promU64(w, "tscds_wal_errors_total", wl, wal.Errors)
		promHead(w, "tscds_wal_snapshot_flushes_total", "Whole-map snapshot flushes.", "counter")
		promU64(w, "tscds_wal_snapshot_flushes_total", wl, wal.SnapshotFlushes)
		promHead(w, "tscds_wal_snapshot_failures_total", "Snapshot flush attempts that failed.", "counter")
		promU64(w, "tscds_wal_snapshot_failures_total", wl, wal.SnapshotFailures)
		promHead(w, "tscds_wal_snapshot_keys_total", "Keys written by snapshot flushes.", "counter")
		promU64(w, "tscds_wal_snapshot_keys_total", wl, wal.SnapshotKeys)
		promHead(w, "tscds_wal_segments_pruned_total", "Sealed segments removed once covered by a snapshot.", "counter")
		promU64(w, "tscds_wal_segments_pruned_total", wl, wal.SegmentsPruned)
		promHead(w, "tscds_wal_torn_skipped_total", "Torn tail records discarded during recovery.", "counter")
		promU64(w, "tscds_wal_torn_skipped_total", wl, wal.TornSkipped)
	}

	if len(s.Shards) > 0 {
		promHead(w, "tscds_shard_ops_total", "Point operations routed to each shard by the key partition.", "counter")
		for i, sh := range s.Shards {
			promU64(w, "tscds_shard_ops_total", with(base, "shard", fmt.Sprintf("%d", i)), sh.Ops)
		}
		promHead(w, "tscds_shard_rqs_total", "Range-query collections that visited each shard.", "counter")
		for i, sh := range s.Shards {
			promU64(w, "tscds_shard_rqs_total", with(base, "shard", fmt.Sprintf("%d", i)), sh.RQs)
		}
	}
}

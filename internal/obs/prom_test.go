package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tscds/internal/obs/promparse"
)

// fullRegistry builds a registry exercising every optional block, so
// the exposition contains op, source, gc, pool, wal and shard families.
func fullRegistry() *Registry {
	r := NewRegistry()
	r.SetSourceKind("RDTSCP")
	r.SetSourceActual("Logical")
	r.SetStructure("bst/vcas")
	r.SetAllocMode("Pool")
	r.SetWALMode("batched(64)")
	r.EnsureShards(2)
	for i := 0; i < 100; i++ {
		r.ObserveOp(OpUpdate, time.Duration(i+1)*time.Microsecond)
	}
	r.ObserveOp(OpRange, 5*time.Millisecond)
	r.ObserveOp(OpContains, 300*time.Nanosecond)
	r.Source.Advances.Add(101)
	r.Source.Snapshots.Add(7)
	r.Source.SnapshotRetries.Add(2)
	r.GC.LimboRetired.Add(50)
	r.GC.LimboPruned.Add(40)
	r.GC.LimboLen.Add(10)
	r.Pool.Hits.Add(90)
	r.Pool.Misses.Add(10)
	r.Pool.Recycled.Add(33)
	r.WAL.Appends.Add(1000)
	r.WAL.Fsyncs.Add(16)
	r.WAL.Errors.Add(1)
	r.Shard(0).Ops.Add(60)
	r.Shard(1).Ops.Add(40)
	r.Shard(0).RQs.Add(7)
	r.Shard(1).RQs.Add(7)
	return r
}

func TestWritePromStrictParse(t *testing.T) {
	var buf bytes.Buffer
	fullRegistry().WriteProm(&buf)
	res, diags := promparse.Parse(buf.Bytes())
	if len(diags) > 0 {
		t.Fatalf("strict parse diagnostics:\n  %s\nexposition:\n%s",
			strings.Join(diags, "\n  "), buf.String())
	}

	// Every family group must be present.
	for _, fam := range []string{
		"tscds_ops_total", "tscds_op_latency_ns",
		"tscds_source_advances_total", "tscds_source_snapshot_retries_total",
		"tscds_source_info",
		"tscds_gc_limbo_retired_total", "tscds_gc_limbo_len",
		"tscds_pool_hits_total", "tscds_wal_appends_total",
		"tscds_shard_ops_total", "tscds_shard_rqs_total",
	} {
		if res.Family(fam) == nil {
			t.Errorf("family %s missing", fam)
		}
	}

	// Labels carry structure/source identity, counts survive round-trip.
	if v, ok := res.Value("tscds_ops_total", map[string]string{
		"class": "update", "structure": "bst/vcas", "source": "RDTSCP",
	}); !ok || v != 100 {
		t.Errorf("ops_total{class=update} = %v, %v; want 100, true", v, ok)
	}
	if v, ok := res.Value("tscds_op_latency_ns_count", map[string]string{"class": "update"}); !ok || v != 100 {
		t.Errorf("latency count{update} = %v, %v; want 100, true", v, ok)
	}
	if v, ok := res.Value("tscds_op_latency_ns_bucket", map[string]string{"class": "update", "le": "+Inf"}); !ok || v != 100 {
		t.Errorf("latency +Inf bucket{update} = %v, %v; want 100, true", v, ok)
	}
	if v, ok := res.Value("tscds_source_info", map[string]string{"requested": "RDTSCP", "actual": "Logical"}); !ok || v != 1 {
		t.Errorf("source_info = %v, %v; want 1, true", v, ok)
	}
	if v, ok := res.Value("tscds_pool_hits_total", map[string]string{"mode": "Pool"}); !ok || v != 90 {
		t.Errorf("pool hits = %v, %v; want 90, true", v, ok)
	}
	if v, ok := res.Value("tscds_wal_errors_total", map[string]string{"mode": "batched(64)"}); !ok || v != 1 {
		t.Errorf("wal errors = %v, %v; want 1, true", v, ok)
	}
	if v, ok := res.Value("tscds_shard_ops_total", map[string]string{"shard": "1"}); !ok || v != 40 {
		t.Errorf("shard 1 ops = %v, %v; want 40, true", v, ok)
	}
	if v, ok := res.Value("tscds_gc_limbo_len", nil); !ok || v != 10 {
		t.Errorf("limbo_len = %v, %v; want 10, true", v, ok)
	}
}

// A bare registry (no structure/pool/wal/shard wiring) must still emit
// a conformant exposition with only the unconditional families.
func TestWritePromBareRegistry(t *testing.T) {
	r := NewRegistry()
	r.ObserveOp(OpUpdate, time.Microsecond)
	var buf bytes.Buffer
	r.WriteProm(&buf)
	res, diags := promparse.Parse(buf.Bytes())
	if len(diags) > 0 {
		t.Fatalf("diagnostics: %v", diags)
	}
	for _, fam := range []string{"tscds_pool_hits_total", "tscds_wal_appends_total", "tscds_shard_ops_total"} {
		if res.Family(fam) != nil {
			t.Errorf("family %s present on bare registry", fam)
		}
	}
	if got := res.Family("tscds_ops_total"); got == nil {
		t.Fatal("tscds_ops_total missing")
	}
}

func TestWritePromNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	(*Registry)(nil).WriteProm(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestPromEscape(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := PromEscape(in); got != want {
		t.Fatalf("PromEscape(%q) = %q, want %q", in, got, want)
	}
	// Escaped label values must round-trip through the parser.
	r := NewRegistry()
	r.SetStructure(in)
	r.ObserveOp(OpUpdate, time.Microsecond)
	var buf bytes.Buffer
	r.WriteProm(&buf)
	res, diags := promparse.Parse(buf.Bytes())
	if len(diags) > 0 {
		t.Fatalf("diagnostics: %v", diags)
	}
	if _, ok := res.Value("tscds_ops_total", map[string]string{"class": "update", "structure": in}); !ok {
		t.Fatalf("escaped structure label did not round-trip")
	}
}

// Package promparse is a strict parser for the Prometheus text
// exposition format 0.0.4, used by tests and the tscstat -check mode to
// validate everything the obs layer exports. It is deliberately
// stricter than a real scraper: besides syntax it checks that every
// family carries # HELP and # TYPE metadata before its samples, that
// metric and label names are legal, that no series is duplicated, and
// that histograms have cumulative, +Inf-terminated buckets agreeing
// with _count. Violations come back as diagnostics, not errors, so a
// test can report all of them at once.
package promparse

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	Line   int
}

// Family groups the samples of one metric family with its metadata.
// For histograms the samples include the _bucket/_sum/_count series.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Result is a parsed exposition.
type Result struct {
	// Families in first-seen order.
	Families []*Family
	byName   map[string]*Family
}

// Family returns the named family, or nil.
func (r *Result) Family(name string) *Family {
	if r == nil {
		return nil
	}
	return r.byName[name]
}

// Value finds the sample with the given name whose labels are a
// superset of want, returning (value, true) on a unique match.
func (r *Result) Value(name string, want map[string]string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	fam := r.byName[familyOf(name)]
	if fam == nil {
		return 0, false
	}
	found := false
	var v float64
	for _, s := range fam.Samples {
		if s.Name != name || !subset(want, s.Labels) {
			continue
		}
		if found {
			return 0, false // ambiguous
		}
		v, found = s.Value, true
	}
	return v, found
}

func subset(want, have map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// familyOf strips the histogram/summary sample suffixes.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

var metricNameOK = mustMatcher(func(i int, r rune) bool {
	if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':' {
		return true
	}
	return i > 0 && r >= '0' && r <= '9'
})

var labelNameOK = mustMatcher(func(i int, r rune) bool {
	if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' {
		return true
	}
	return i > 0 && r >= '0' && r <= '9'
})

func mustMatcher(ok func(int, rune) bool) func(string) bool {
	return func(s string) bool {
		if s == "" {
			return false
		}
		for i, r := range s {
			if !ok(i, r) {
				return false
			}
		}
		return true
	}
}

// parser carries the running state and accumulated diagnostics.
type parser struct {
	res   *Result
	diags []string
	line  int
	// seen de-duplicates full series identities across the exposition.
	seen map[string]int
}

func (p *parser) diagf(format string, args ...any) {
	p.diags = append(p.diags, fmt.Sprintf("line %d: %s", p.line, fmt.Sprintf(format, args...)))
}

// Parse parses a full exposition. The Result holds everything that
// could be parsed; diags lists every strictness violation found (an
// empty slice means the exposition is fully conformant).
func Parse(data []byte) (*Result, []string) {
	p := &parser{
		res:  &Result{byName: make(map[string]*Family)},
		seen: make(map[string]int),
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		p.line++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			// blank lines are allowed anywhere
		case strings.HasPrefix(line, "# HELP "):
			p.meta(line, "HELP")
		case strings.HasPrefix(line, "# TYPE "):
			p.meta(line, "TYPE")
		case strings.HasPrefix(line, "#"):
			// other comments are legal and ignored
		default:
			p.sample(line)
		}
	}
	if err := sc.Err(); err != nil {
		p.diags = append(p.diags, fmt.Sprintf("scan: %v", err))
	}
	p.checkFamilies()
	return p.res, p.diags
}

// meta handles a # HELP or # TYPE line.
func (p *parser) meta(line, kind string) {
	rest := strings.TrimPrefix(line, "# "+kind+" ")
	name, text, ok := strings.Cut(rest, " ")
	if !ok || name == "" {
		p.diagf("malformed # %s line", kind)
		return
	}
	if !metricNameOK(name) {
		p.diagf("illegal metric name %q in # %s", name, kind)
		return
	}
	fam := p.res.byName[name]
	if fam == nil {
		fam = &Family{Name: name}
		p.res.byName[name] = fam
		p.res.Families = append(p.res.Families, fam)
	}
	switch kind {
	case "HELP":
		if fam.Help != "" {
			p.diagf("duplicate # HELP for %q", name)
		}
		if len(fam.Samples) > 0 {
			p.diagf("# HELP for %q appears after its samples", name)
		}
		fam.Help = text
	case "TYPE":
		if fam.Type != "" {
			p.diagf("duplicate # TYPE for %q", name)
		}
		if len(fam.Samples) > 0 {
			p.diagf("# TYPE for %q appears after its samples", name)
		}
		switch text {
		case "counter", "gauge", "histogram", "summary", "untyped":
			fam.Type = text
		default:
			p.diagf("unknown type %q for %q", text, name)
		}
	}
}

// sample parses one sample line: name[{labels}] value [timestamp].
func (p *parser) sample(line string) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		p.diagf("malformed sample line %q", line)
		return
	}
	name := rest[:i]
	if !metricNameOK(name) {
		p.diagf("illegal metric name %q", name)
		return
	}
	rest = rest[i:]
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		var ok bool
		labels, rest, ok = p.labels(rest[1:])
		if !ok {
			return
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		p.diagf("expected value [timestamp] after %q, got %q", name, rest)
		return
	}
	val, err := parseValue(fields[0])
	if err != nil {
		p.diagf("bad value %q for %q: %v", fields[0], name, err)
		return
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			p.diagf("bad timestamp %q for %q", fields[1], name)
		}
	}

	famName := familyOf(name)
	fam := p.res.byName[famName]
	if fam == nil || fam.Type == "" {
		// a _bucket/_sum suffix only belongs to a histogram/summary
		// family; for a plain metric the full name must have metadata
		if f := p.res.byName[name]; f != nil && f.Type != "" {
			fam, famName = f, name
		} else {
			p.diagf("sample %q has no preceding # TYPE (family %q)", name, famName)
			if fam == nil {
				fam = p.res.byName[name]
			}
			if fam == nil {
				fam = &Family{Name: famName}
				p.res.byName[famName] = fam
				p.res.Families = append(p.res.Families, fam)
			}
		}
	} else if famName != name && fam.Type != "histogram" && fam.Type != "summary" {
		// e.g. foo_count with family foo typed counter: treat as its own
		// metric, which then needs its own metadata
		if f := p.res.byName[name]; f != nil && f.Type != "" {
			fam, famName = f, name
		} else {
			p.diagf("sample %q has no preceding # TYPE", name)
		}
	}
	if fam.Help == "" {
		// reported once per family in checkFamilies
		_ = fam
	}

	id := seriesID(name, labels)
	if prev, dup := p.seen[id]; dup {
		p.diagf("duplicate series %s (previous at line %d)", id, prev)
	} else {
		p.seen[id] = p.line
	}
	fam.Samples = append(fam.Samples, Sample{Name: name, Labels: labels, Value: val, Line: p.line})
}

// labels parses `k="v",...}` (the opening brace already consumed) and
// returns the remainder of the line after the closing brace.
func (p *parser) labels(rest string) (map[string]string, string, bool) {
	out := map[string]string{}
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return out, rest[1:], true
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			p.diagf("malformed label set (no '=' in %q)", rest)
			return nil, "", false
		}
		k := strings.TrimSpace(rest[:eq])
		if !labelNameOK(k) {
			p.diagf("illegal label name %q", k)
			return nil, "", false
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			p.diagf("label %q value not quoted", k)
			return nil, "", false
		}
		v, rem, ok := unquote(rest[1:])
		if !ok {
			p.diagf("unterminated or bad escape in value of label %q", k)
			return nil, "", false
		}
		if _, dup := out[k]; dup {
			p.diagf("duplicate label name %q", k)
		}
		out[k] = v
		rest = rem
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return out, rest[1:], true
		}
		p.diagf("expected ',' or '}' after label %q, got %q", k, rest)
		return nil, "", false
	}
}

// unquote consumes a label value up to its closing quote, handling the
// three legal escapes (\\, \", \n).
func unquote(s string) (val, rest string, ok bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], true
		case '\\':
			i++
			if i >= len(s) {
				return "", "", false
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", false
			}
		case '\n':
			return "", "", false
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", false
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// seriesID is the full identity of a series (name + sorted labels).
func seriesID(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// checkFamilies runs the whole-family checks once parsing is done:
// metadata presence and histogram bucket discipline.
func (p *parser) checkFamilies() {
	for _, fam := range p.res.Families {
		if len(fam.Samples) == 0 {
			continue
		}
		if fam.Help == "" {
			p.diags = append(p.diags, fmt.Sprintf("family %q has samples but no # HELP", fam.Name))
		}
		if fam.Type == "" {
			p.diags = append(p.diags, fmt.Sprintf("family %q has samples but no # TYPE", fam.Name))
		}
		if fam.Type == "histogram" {
			p.checkHistogram(fam)
		}
	}
}

// checkHistogram validates each label-partitioned histogram series:
// buckets cumulative and non-decreasing in le order, terminated by a
// +Inf bucket whose value equals _count.
func (p *parser) checkHistogram(fam *Family) {
	type hist struct {
		buckets []Sample // in exposition order
		count   *Sample
		sum     *Sample
	}
	groups := map[string]*hist{}
	order := []string{}
	for i := range fam.Samples {
		s := &fam.Samples[i]
		key := seriesID("", without(s.Labels, "le"))
		g := groups[key]
		if g == nil {
			g = &hist{}
			groups[key] = g
			order = append(order, key)
		}
		switch s.Name {
		case fam.Name + "_bucket":
			if _, ok := s.Labels["le"]; !ok {
				p.diags = append(p.diags, fmt.Sprintf("line %d: %s_bucket without le label", s.Line, fam.Name))
				continue
			}
			g.buckets = append(g.buckets, *s)
		case fam.Name + "_count":
			g.count = s
		case fam.Name + "_sum":
			g.sum = s
		default:
			p.diags = append(p.diags, fmt.Sprintf("line %d: unexpected sample %q in histogram family %q", s.Line, s.Name, fam.Name))
		}
	}
	for _, key := range order {
		g := groups[key]
		id := fam.Name + key
		if len(g.buckets) == 0 {
			p.diags = append(p.diags, fmt.Sprintf("histogram %s has no buckets", id))
			continue
		}
		prevLe := math.Inf(-1)
		prevCum := -1.0
		for _, b := range g.buckets {
			le, err := parseValue(b.Labels["le"])
			if err != nil {
				p.diags = append(p.diags, fmt.Sprintf("line %d: bad le %q in %s", b.Line, b.Labels["le"], id))
				continue
			}
			if le <= prevLe {
				p.diags = append(p.diags, fmt.Sprintf("line %d: le %q not increasing in %s", b.Line, b.Labels["le"], id))
			}
			if b.Value < prevCum {
				p.diags = append(p.diags, fmt.Sprintf("line %d: bucket values not cumulative in %s (%g after %g)", b.Line, id, b.Value, prevCum))
			}
			prevLe, prevCum = le, b.Value
		}
		last := g.buckets[len(g.buckets)-1]
		if !math.IsInf(mustLe(last), 1) {
			p.diags = append(p.diags, fmt.Sprintf("histogram %s not terminated by le=\"+Inf\"", id))
		}
		if g.count == nil {
			p.diags = append(p.diags, fmt.Sprintf("histogram %s missing _count", id))
		} else if math.IsInf(mustLe(last), 1) && g.count.Value != last.Value {
			p.diags = append(p.diags, fmt.Sprintf("histogram %s +Inf bucket (%g) != _count (%g)", id, last.Value, g.count.Value))
		}
		if g.sum == nil {
			p.diags = append(p.diags, fmt.Sprintf("histogram %s missing _sum", id))
		}
	}
}

func mustLe(s Sample) float64 {
	v, err := parseValue(s.Labels["le"])
	if err != nil {
		return math.NaN()
	}
	return v
}

func without(m map[string]string, drop string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		if k != drop {
			out[k] = v
		}
	}
	return out
}

package promparse

import (
	"strings"
	"testing"
)

const good = `# HELP t_ops_total Completed operations.
# TYPE t_ops_total counter
t_ops_total{class="update"} 100
t_ops_total{class="range"} 7
# HELP t_lat_ns Latency histogram.
# TYPE t_lat_ns histogram
t_lat_ns_bucket{class="update",le="1"} 10
t_lat_ns_bucket{class="update",le="2"} 60
t_lat_ns_bucket{class="update",le="+Inf"} 100
t_lat_ns_sum{class="update"} 12345
t_lat_ns_count{class="update"} 100
# HELP t_gauge A gauge.
# TYPE t_gauge gauge
t_gauge -3.5
`

func TestParseConformant(t *testing.T) {
	res, diags := Parse([]byte(good))
	if len(diags) > 0 {
		t.Fatalf("diagnostics on conformant input: %v", diags)
	}
	if len(res.Families) != 3 {
		t.Fatalf("families = %d, want 3", len(res.Families))
	}
	if v, ok := res.Value("t_ops_total", map[string]string{"class": "update"}); !ok || v != 100 {
		t.Fatalf("Value = %v, %v", v, ok)
	}
	if v, ok := res.Value("t_lat_ns_bucket", map[string]string{"le": "+Inf"}); !ok || v != 100 {
		t.Fatalf("+Inf bucket = %v, %v", v, ok)
	}
	if v, ok := res.Value("t_gauge", nil); !ok || v != -3.5 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
}

// Each mutation of the conformant exposition must produce at least one
// diagnostic mentioning the expected substring.
func TestParseDiagnostics(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		mention string
	}{
		{"missing TYPE", func(s string) string {
			return strings.Replace(s, "# TYPE t_ops_total counter\n", "", 1)
		}, "no # TYPE"},
		{"missing HELP", func(s string) string {
			return strings.Replace(s, "# HELP t_gauge A gauge.\n", "", 1)
		}, "no # HELP"},
		{"duplicate series", func(s string) string {
			return s + "t_gauge -3.5\n"
		}, "duplicate series"},
		{"illegal metric name", func(s string) string {
			return s + "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n"
		}, "illegal metric name"},
		{"illegal label name", func(s string) string {
			return strings.Replace(s, `class="range"`, `9class="range"`, 1)
		}, "illegal label name"},
		{"non-cumulative buckets", func(s string) string {
			return strings.Replace(s, `le="2"} 60`, `le="2"} 5`, 1)
		}, "not cumulative"},
		{"missing +Inf", func(s string) string {
			return strings.Replace(s, "t_lat_ns_bucket{class=\"update\",le=\"+Inf\"} 100\n", "", 1)
		}, "+Inf"},
		{"Inf disagrees with count", func(s string) string {
			return strings.Replace(s, `le="+Inf"} 100`, `le="+Inf"} 99`, 1)
		}, "_count"},
		{"missing sum", func(s string) string {
			return strings.Replace(s, "t_lat_ns_sum{class=\"update\"} 12345\n", "", 1)
		}, "missing _sum"},
		{"unterminated label value", func(s string) string {
			return s + "t_gauge{x=\"oops} 1\n"
		}, "unterminated"},
		{"bad escape", func(s string) string {
			return s + "t_gauge{x=\"a\\q\"} 1\n"
		}, "bad escape"},
		{"bad value", func(s string) string {
			return s + "# HELP t_v x\n# TYPE t_v counter\nt_v banana\n"
		}, "bad value"},
		{"le not increasing", func(s string) string {
			return strings.Replace(s, `le="2"} 60`, `le="0.5"} 60`, 1)
		}, "not increasing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, diags := Parse([]byte(c.mutate(good)))
			if len(diags) == 0 {
				t.Fatalf("no diagnostics for %s", c.name)
			}
			for _, d := range diags {
				if strings.Contains(d, c.mention) {
					return
				}
			}
			t.Fatalf("no diagnostic mentions %q; got %v", c.mention, diags)
		})
	}
}

func TestParseEscapedLabelValues(t *testing.T) {
	in := "# HELP t x\n# TYPE t gauge\nt{v=\"a\\\\b\\\"c\\nd\"} 1\n"
	res, diags := Parse([]byte(in))
	if len(diags) > 0 {
		t.Fatalf("diagnostics: %v", diags)
	}
	if _, ok := res.Value("t", map[string]string{"v": "a\\b\"c\nd"}); !ok {
		t.Fatal("escaped value did not round-trip")
	}
}

func TestFamilyOfSuffixes(t *testing.T) {
	for in, want := range map[string]string{
		"x_bucket": "x", "x_sum": "x", "x_count": "x", "x_total": "x_total",
	} {
		if got := familyOf(in); got != want {
			t.Errorf("familyOf(%s) = %s, want %s", in, got, want)
		}
	}
}

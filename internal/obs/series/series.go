// Package series is the background time-series collector of the
// telemetry pipeline: a fixed-retention ring of periodic registry +
// TSC-health snapshots with per-interval rate computation, servable on
// /series and feeding an obs.Watchdog one observation per tick. It is
// the one place that may import both obs and tsc (obs itself stays
// dependency-free), converting tsc health snapshots into the neutral
// obs.HealthFacts the watchdog rules consume.
package series

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tscds/internal/obs"
	"tscds/internal/tsc"
)

// DefaultInterval is the collection period when Config.Interval is zero.
const DefaultInterval = time.Second

// DefaultRetention is the ring capacity when Config.Retention is zero:
// ten minutes of points at the default interval.
const DefaultRetention = 600

// maxRetention bounds the ring so a typo'd retention cannot pin
// gigabytes of snapshots.
const maxRetention = 4096

// Config wires a Collector to its sources. All getters are re-resolved
// every tick, so a benchmark that re-points its registry per arm just
// swaps what the getter returns; the collector detects the swap and
// suppresses the torn rate window.
type Config struct {
	// Interval between samples (default DefaultInterval).
	Interval time.Duration
	// Retention is the ring capacity in points (default DefaultRetention,
	// capped at 4096).
	Retention int
	// Label, when non-nil, names the current workload/arm; it is stamped
	// on every point so one stream can span a multi-arm run.
	Label func() string
	// Metrics returns the current registry (nil skips metrics).
	Metrics func() *obs.Registry
	// Health returns the current TSC health monitor (nil skips health).
	Health func() *tsc.Health
	// Watchdog, when non-nil, receives one Observation per tick.
	Watchdog *obs.Watchdog
}

// Rates are the per-interval derivatives between two successive points
// sharing the same registry. Nil on the first point of a stream and on
// any point whose registry or health monitor was swapped since the
// previous one.
type Rates struct {
	IntervalMS            int64              `json:"interval_ms"`
	OpsPerSec             map[string]float64 `json:"ops_per_sec,omitempty"`
	TotalOpsPerSec        float64            `json:"total_ops_per_sec"`
	AdvancesPerSec        float64            `json:"advances_per_sec"`
	SnapshotsPerSec       float64            `json:"snapshots_per_sec"`
	SnapshotRetriesPerSec float64            `json:"snapshot_retries_per_sec,omitempty"`
	LimboGrowthPerSec     float64            `json:"limbo_growth_per_sec,omitempty"`
	// PoolHitRate is the interval hit fraction (hits/(hits+misses)),
	// -1 when no pool traffic occurred.
	PoolHitRate      float64 `json:"pool_hit_rate,omitempty"`
	WALAppendsPerSec float64 `json:"wal_appends_per_sec,omitempty"`
	WALFsyncsPerSec  float64 `json:"wal_fsyncs_per_sec,omitempty"`
}

// Point is one retained sample. The label/elapsed_ms/metrics keys match
// the shape rqbench's old -metrics-interval sampler wrote, so existing
// BENCH_metrics.json consumers keep working.
type Point struct {
	Label     string              `json:"label,omitempty"`
	AtUnixMS  int64               `json:"at_unix_ms"`
	ElapsedMS int64               `json:"elapsed_ms"`
	Metrics   obs.Snapshot        `json:"metrics"`
	Health    *tsc.HealthSnapshot `json:"health,omitempty"`
	Rates     *Rates              `json:"rates,omitempty"`
}

// Collector periodically samples the configured sources into a
// fixed-retention ring. Start/Stop bracket the background goroutine;
// Sample may also be called directly (tests, final flush).
type Collector struct {
	cfg      Config
	interval time.Duration
	cap      int

	mu      sync.Mutex
	points  []Point
	dropped uint64
	start   time.Time
	// prev* track identity across ticks so rates are only computed
	// between snapshots of the SAME registry/health pair.
	prevReg    *obs.Registry
	prevHealth *tsc.Health
	prevPoint  *Point

	stop chan struct{}
	done chan struct{}
}

// New builds a collector (not yet running).
func New(cfg Config) *Collector {
	iv := cfg.Interval
	if iv <= 0 {
		iv = DefaultInterval
	}
	n := cfg.Retention
	if n <= 0 {
		n = DefaultRetention
	}
	if n > maxRetention {
		n = maxRetention
	}
	return &Collector{cfg: cfg, interval: iv, cap: n, start: time.Now()}
}

// Start launches the background sampling loop. Nil-safe; starting twice
// is a no-op until the first loop is stopped.
func (c *Collector) Start() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Sample()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the loop and takes one final sample so the last partial
// interval is never lost. Nil-safe, idempotent.
func (c *Collector) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	c.Sample()
}

// Sample takes one point now: snapshot the sources, compute rates
// against the previous same-identity point, append to the ring, and
// feed the watchdog. Nil-safe.
func (c *Collector) Sample() {
	if c == nil {
		return
	}
	now := time.Now()
	var reg *obs.Registry
	if c.cfg.Metrics != nil {
		reg = c.cfg.Metrics()
	}
	var health *tsc.Health
	if c.cfg.Health != nil {
		health = c.cfg.Health()
	}

	p := Point{
		AtUnixMS:  now.UnixMilli(),
		ElapsedMS: now.Sub(c.start).Milliseconds(),
	}
	if c.cfg.Label != nil {
		p.Label = c.cfg.Label()
	}
	if reg != nil {
		p.Metrics = reg.Snapshot()
	}
	var hs *tsc.HealthSnapshot
	if health != nil {
		s := health.Snapshot()
		// Drop the bulky per-thread blocks from the retained ring; the
		// watchdog and dashboard consume only the scalar fields.
		s.Threads, s.Probes = nil, nil
		hs = &s
		p.Health = hs
	}

	c.mu.Lock()
	sameIdentity := reg == c.prevReg && health == c.prevHealth && c.prevPoint != nil
	if sameIdentity && reg != nil {
		p.Rates = computeRates(c.prevPoint, &p)
	}
	swapped := c.prevPoint != nil && !sameIdentity
	c.prevReg, c.prevHealth = reg, health
	prev := p
	c.prevPoint = &prev
	if len(c.points) >= c.cap {
		c.points = append(c.points[:0], c.points[1:]...)
		c.dropped++
	}
	c.points = append(c.points, p)
	wd := c.cfg.Watchdog
	c.mu.Unlock()

	if wd != nil {
		if swapped {
			// Deltas across a registry/health swap are garbage; restart
			// the watchdog baseline.
			wd.Reset()
		}
		obsv := obs.Observation{At: now, Metrics: p.Metrics}
		if hs != nil {
			obsv.HasHealth = true
			obsv.Health = obs.HealthFacts{
				State:            hs.State,
				Degraded:         health.Degraded(),
				CrossRegressions: hs.CrossRegressions,
				InjectedFaults:   hs.InjectedFaults,
				SourceStalls:     hs.SourceStalls,
				SourceSwitches:   hs.SourceSwitches,
				SourceFailbacks:  hs.SourceFailbacks,
			}
		}
		wd.Observe(obsv)
	}
}

// computeRates derives the interval rates between two successive
// same-registry points.
func computeRates(prev, cur *Point) *Rates {
	dms := cur.AtUnixMS - prev.AtUnixMS
	if dms <= 0 {
		return nil
	}
	secs := float64(dms) / 1e3
	d := func(c, p uint64) float64 {
		if c < p {
			return 0
		}
		return float64(c-p) / secs
	}
	r := &Rates{IntervalMS: dms}
	for class, cs := range cur.Metrics.Ops {
		ps := prev.Metrics.Ops[class]
		rate := d(cs.Count, ps.Count)
		if rate > 0 {
			if r.OpsPerSec == nil {
				r.OpsPerSec = map[string]float64{}
			}
			r.OpsPerSec[class] = rate
		}
		r.TotalOpsPerSec += rate
	}
	r.AdvancesPerSec = d(cur.Metrics.Source.Advances, prev.Metrics.Source.Advances)
	r.SnapshotsPerSec = d(cur.Metrics.Source.Snapshots, prev.Metrics.Source.Snapshots)
	r.SnapshotRetriesPerSec = d(cur.Metrics.Source.SnapshotRetries, prev.Metrics.Source.SnapshotRetries)
	r.LimboGrowthPerSec = float64(cur.Metrics.GC.LimboLen-prev.Metrics.GC.LimboLen) / secs
	r.PoolHitRate = -1
	if cp, pp := cur.Metrics.Pool, prev.Metrics.Pool; cp != nil && pp != nil {
		hits := satSub(cp.Hits, pp.Hits)
		misses := satSub(cp.Misses, pp.Misses)
		if hits+misses > 0 {
			r.PoolHitRate = float64(hits) / float64(hits+misses)
		}
	}
	if cw, pw := cur.Metrics.WAL, prev.Metrics.WAL; cw != nil && pw != nil {
		r.WALAppendsPerSec = d(cw.Appends, pw.Appends)
		r.WALFsyncsPerSec = d(cw.Fsyncs, pw.Fsyncs)
	}
	return r
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Points returns a copy of the retained points, oldest first. Nil-safe.
func (c *Collector) Points() []Point {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Point(nil), c.points...)
}

// page is the /series JSON shape.
type page struct {
	IntervalMS int64   `json:"interval_ms"`
	Retention  int     `json:"retention"`
	Dropped    uint64  `json:"dropped"`
	Points     []Point `json:"points"`
}

func (c *Collector) page(last int) page {
	c.mu.Lock()
	pts := append([]Point(nil), c.points...)
	dropped := c.dropped
	c.mu.Unlock()
	if last > 0 && last < len(pts) {
		pts = pts[len(pts)-last:]
	}
	if pts == nil {
		pts = []Point{}
	}
	return page{
		IntervalMS: c.interval.Milliseconds(),
		Retention:  c.cap,
		Dropped:    dropped,
		Points:     pts,
	}
}

// String renders the ring as JSON, making the collector registrable as
// an obs.Var under the conventional name "series".
func (c *Collector) String() string {
	if c == nil {
		return "{}"
	}
	b, err := json.Marshal(c.page(0))
	if err != nil {
		return "{}"
	}
	return string(b)
}

// ServeHTTP serves the ring; ?last=N trims to the newest N points.
func (c *Collector) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if c == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	last := 0
	if n, err := strconv.Atoi(req.URL.Query().Get("last")); err == nil && n > 0 {
		last = n
	}
	b, err := json.Marshal(c.page(last))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(b)
	w.Write([]byte("\n"))
}

package series

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tscds/internal/obs"
	"tscds/internal/tsc"
)

// tsc.Health must keep satisfying obs.PromVar structurally (tsc cannot
// import obs, so the contract is only checkable from here).
var _ obs.PromVar = (*tsc.Health)(nil)

func TestSampleRatesAndRetention(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetSourceKind("Logical")
	c := New(Config{
		Retention: 3,
		Label:     func() string { return "arm-a" },
		Metrics:   func() *obs.Registry { return reg },
	})

	reg.ObserveOp(obs.OpUpdate, time.Microsecond)
	c.Sample()
	pts := c.Points()
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1", len(pts))
	}
	if pts[0].Rates != nil {
		t.Fatal("first point has rates (no previous interval)")
	}
	if pts[0].Label != "arm-a" {
		t.Fatalf("label = %q", pts[0].Label)
	}
	if pts[0].Metrics.Ops["update"].Count != 1 {
		t.Fatalf("metrics not snapshotted: %+v", pts[0].Metrics.Ops)
	}

	for i := 0; i < 10; i++ {
		reg.ObserveOp(obs.OpUpdate, time.Microsecond)
	}
	time.Sleep(5 * time.Millisecond) // a measurable interval for the rate
	c.Sample()
	pts = c.Points()
	last := pts[len(pts)-1]
	if last.Rates == nil {
		t.Fatal("second same-registry point has no rates")
	}
	if last.Rates.TotalOpsPerSec <= 0 || last.Rates.OpsPerSec["update"] <= 0 {
		t.Fatalf("rates = %+v", last.Rates)
	}

	// Retention: the ring holds the newest 3 points.
	for i := 0; i < 5; i++ {
		c.Sample()
	}
	if got := len(c.Points()); got != 3 {
		t.Fatalf("retained %d points, want 3", got)
	}
}

// Swapping the observed registry must suppress the torn rate window
// (deltas across different registries are meaningless) and reset the
// watchdog baseline instead of firing bogus events.
func TestRegistrySwapSuppressesRates(t *testing.T) {
	regA := obs.NewRegistry()
	regB := obs.NewRegistry()
	var cur atomic.Pointer[obs.Registry]
	cur.Store(regA)
	wd := obs.NewWatchdog(obs.DefaultRules(), nil)
	c := New(Config{
		Metrics:  func() *obs.Registry { return cur.Load() },
		Watchdog: wd,
	})

	for i := 0; i < 100; i++ {
		regA.ObserveOp(obs.OpUpdate, time.Microsecond)
	}
	regA.Source.SnapshotRetries.Add(500)
	c.Sample()
	c.Sample()

	// Swap to a fresh registry whose counters are all below regA's.
	cur.Store(regB)
	regB.ObserveOp(obs.OpRange, time.Microsecond)
	c.Sample()
	pts := c.Points()
	last := pts[len(pts)-1]
	if last.Rates != nil {
		t.Fatalf("rates across a registry swap: %+v", last.Rates)
	}
	if evs := wd.Events(); len(evs) != 0 {
		t.Fatalf("watchdog fired across the swap: %+v", evs)
	}

	// The next same-registry sample resumes rate computation.
	regB.Source.SnapshotRetries.Add(5)
	time.Sleep(2 * time.Millisecond) // rates need a non-zero wall interval
	c.Sample()
	pts = c.Points()
	if pts[len(pts)-1].Rates == nil {
		t.Fatal("rates not resumed after the swap settled")
	}
	// ... and the retry delta now fires the watchdog on real movement.
	if evs := wd.Events(); len(evs) != 1 || evs[0].Rule != "snapshot-retry-spike" {
		t.Fatalf("post-swap events = %+v", evs)
	}
}

// An injected TSC backstep must surface as a tsc-backstep watchdog
// event within one collector sample — the acceptance criterion for the
// /events pipeline.
func TestInjectedBackstepFiresWithinOneSample(t *testing.T) {
	reg := obs.NewRegistry()
	health := tsc.NewHealth(8)
	wd := obs.NewWatchdog(obs.DefaultRules(), nil)
	c := New(Config{
		Metrics:  func() *obs.Registry { return reg },
		Health:   func() *tsc.Health { return health },
		Watchdog: wd,
	})
	c.Sample() // baseline
	health.InjectBackstep(uint64(time.Hour))
	c.Sample()
	var found bool
	for _, ev := range wd.Events() {
		if ev.Rule == "tsc-backstep" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tsc-backstep not raised within one sample; events = %+v", wd.Events())
	}
	// The health snapshot rides along on the point.
	pts := c.Points()
	if h := pts[len(pts)-1].Health; h == nil || h.InjectedFaults != 1 {
		t.Fatalf("point health = %+v", h)
	}
}

func TestCollectorStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{
		Interval: 2 * time.Millisecond,
		Metrics:  func() *obs.Registry { return reg },
	})
	c.Start()
	c.Start() // second Start is a no-op, not a second goroutine
	deadline := time.Now().Add(2 * time.Second)
	for len(c.Points()) < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	c.Stop()
	n := len(c.Points())
	if n < 3 {
		t.Fatalf("collector took too long: %d points", n)
	}
	time.Sleep(10 * time.Millisecond)
	if got := len(c.Points()); got != n {
		t.Fatalf("points kept arriving after Stop: %d -> %d", n, got)
	}
	c.Stop() // idempotent
}

func TestServeHTTPAndString(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Metrics: func() *obs.Registry { return reg }})
	c.Sample()
	c.Sample()
	c.Sample()

	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/series?last=2", nil))
	var p struct {
		IntervalMS int64   `json:"interval_ms"`
		Retention  int     `json:"retention"`
		Points     []Point `json:"points"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("/series JSON: %v", err)
	}
	if len(p.Points) != 2 || p.Retention != DefaultRetention || p.IntervalMS != 1000 {
		t.Fatalf("page = {interval %d, retention %d, %d points}", p.IntervalMS, p.Retention, len(p.Points))
	}
	if !strings.Contains(c.String(), `"points"`) {
		t.Fatalf("String() = %q", c.String())
	}

	// Nil sources and nil collector never panic.
	New(Config{}).Sample()
	var nilC *Collector
	nilC.Sample()
	nilC.Start()
	nilC.Stop()
	if nilC.String() != "{}" || nilC.Points() != nil {
		t.Fatal("nil collector state not empty")
	}
	rec = httptest.NewRecorder()
	nilC.ServeHTTP(rec, httptest.NewRequest("GET", "/series", nil))
	if rec.Code != 200 {
		t.Fatalf("nil ServeHTTP status %d", rec.Code)
	}
}

package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"
)

// Var is anything that renders itself as a JSON string — the same shape
// expvar.Var uses, redeclared here so the package stays dependency-free.
// *Registry, *trace.Recorder and *tsc.Health all satisfy it.
type Var interface {
	String() string
}

// Func adapts a function to Var (for values that need a live render,
// e.g. a TSC health snapshot refreshed per scrape).
type Func func() string

// String invokes the function.
func (f Func) String() string { return f() }

// Server is a live stats endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the address the server is listening on (useful with
// ":0", where the OS picks the port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// closeGrace bounds how long Close waits for in-flight scrapes. A
// scrape renders a few KB of JSON; a second of grace is generous, and
// the bound keeps a wedged client from hanging benchmark shutdown.
const closeGrace = time.Second

// Close shuts the server down, letting in-flight scrapes finish: a
// bench that stops its endpoint mid-scrape used to hand the collector
// a truncated JSON body. After the grace period any remaining
// connections are torn down hard.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// Serve starts an opt-in HTTP stats endpoint on addr and returns
// immediately. Routes:
//
//	/metrics    every registered var in one expvar-compatible JSON object
//	/<name>     one var's JSON by its registration name
//
// Conventional names used by the benchmark drivers: "metrics" (the
// *Registry), "trace" (the flight recorder), "tschealth" (the TSC health
// monitor), so /trace and /tschealth work as documented in the README.
func Serve(addr string, vars map[string]Var) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		for i, name := range names {
			if i > 0 {
				fmt.Fprintf(w, ",\n")
			}
			fmt.Fprintf(w, "%q: %s", name, vars[name].String())
		}
		fmt.Fprintf(w, "\n}\n")
	})
	for name, v := range vars {
		if name == "metrics" {
			// The aggregate route already serves this name; a registry
			// registered as "metrics" appears there.
			continue
		}
		v := v
		mux.HandleFunc("/"+name, func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			fmt.Fprintln(w, v.String())
		})
	}

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

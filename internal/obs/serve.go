package obs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Var is anything that renders itself as a JSON string — the same shape
// expvar.Var uses, redeclared here so the package stays dependency-free.
// *Registry, *trace.Recorder and *tsc.Health all satisfy it.
type Var interface {
	String() string
}

// Func adapts a function to Var (for values that need a live render,
// e.g. a TSC health snapshot refreshed per scrape).
type Func func() string

// String invokes the function.
func (f Func) String() string { return f() }

// Live adapts a getter to a Var that re-resolves on every use, for
// registrations whose backing value is swapped at runtime (a benchmark
// re-pointing its registry per arm). The returned Var forwards the
// PromVar and http.Handler capabilities of whatever the getter
// currently returns, so capability dispatch in Serve stays live too.
// The getter may return nil (or a nil typed pointer — every obs/trace/
// tsc method is nil-safe); the adapter then renders "null" / nothing.
func Live(get func() Var) Var { return liveVar{get} }

type liveVar struct{ get func() Var }

func (l liveVar) String() string {
	if v := l.get(); v != nil {
		return v.String()
	}
	return "null"
}

// WriteProm forwards to the current value when it speaks the text
// exposition format; otherwise writes nothing.
func (l liveVar) WriteProm(w io.Writer) {
	if pv, ok := l.get().(PromVar); ok {
		pv.WriteProm(w)
	}
}

// ServeHTTP delegates to the current value's handler when it has one,
// else falls back to the JSON rendering.
func (l liveVar) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	v := l.get()
	if h, ok := v.(http.Handler); ok {
		h.ServeHTTP(w, req)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if v == nil {
		fmt.Fprintln(w, "null")
		return
	}
	fmt.Fprintln(w, v.String())
}

// Server is a live stats endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the address the server is listening on (useful with
// ":0", where the OS picks the port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// closeGrace bounds how long Close waits for in-flight scrapes. A
// scrape renders a few KB of JSON; a second of grace is generous, and
// the bound keeps a wedged client from hanging benchmark shutdown.
const closeGrace = time.Second

// Close shuts the server down, letting in-flight scrapes finish: a
// bench that stops its endpoint mid-scrape used to hand the collector
// a truncated JSON body. After the grace period any remaining
// connections are torn down hard.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// bufferedResponse captures a handler's full output before any byte
// reaches the wire, so a panic mid-render can be converted into a clean
// HTTP 500 instead of a truncated body with a 200 status already sent.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: make(http.Header), status: http.StatusOK}
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) { b.status = status }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

// flush copies the buffered response onto the real writer.
func (b *bufferedResponse) flush(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range b.header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(b.status)
	w.Write(b.body.Bytes())
}

// protect wraps a handler with buffering + recover: a Var whose
// String()/WriteProm panics yields a 500 with the panic message rather
// than half an object. The buffer also means slow clients never observe
// a partially-rendered scrape.
func protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		buf := newBufferedResponse()
		func() {
			defer func() {
				if r := recover(); r != nil {
					buf = newBufferedResponse()
					buf.header.Set("Content-Type", "text/plain; charset=utf-8")
					buf.status = http.StatusInternalServerError
					fmt.Fprintf(buf, "internal error: %v\n", r)
				}
			}()
			h(buf, req)
		}()
		buf.flush(w)
	}
}

// acceptsProm reports whether an Accept header asks for the Prometheus
// text exposition rather than JSON. Prometheus scrapers send an Accept
// that names text/plain (or the OpenMetrics type, which the 0.0.4 text
// format satisfies for the families we export); browsers and the JSON
// collectors send */* or application/json and keep the JSON aggregate.
func acceptsProm(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// writePromAll renders every registered var that speaks the text
// exposition format, in sorted registration order.
func writePromAll(w http.ResponseWriter, names []string, vars map[string]Var) {
	w.Header().Set("Content-Type", promContentType)
	for _, name := range names {
		if pv, ok := vars[name].(PromVar); ok {
			pv.WriteProm(w)
		}
	}
}

// writeJSONAll renders every registered var into one expvar-compatible
// JSON object.
func writeJSONAll(w http.ResponseWriter, names []string, vars map[string]Var) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	for i, name := range names {
		if i > 0 {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: %s", name, vars[name].String())
	}
	fmt.Fprintf(w, "\n}\n")
}

// Serve starts an opt-in HTTP stats endpoint on addr and returns
// immediately. Routes:
//
//	/metrics       every registered var in one expvar-compatible JSON
//	               object; a Prometheus Accept header (text/plain or
//	               application/openmetrics-text) switches to the text
//	               exposition
//	/metrics.prom  Prometheus text exposition 0.0.4 of every var that
//	               implements PromVar
//	/<name>        one var by its registration name — JSON, unless the
//	               var implements http.Handler (the flight recorder's
//	               ?format=chrome, the series collector's ?last=N, the
//	               watchdog's /events), which then handles the request
//	               itself
//
// Unknown paths get a 404 listing the registered routes. Every handler
// renders into a buffer first: a panicking Var yields a clean HTTP 500
// instead of a truncated 200 body.
//
// Conventional names used by the benchmark drivers: "metrics" (the
// *Registry), "trace" (the flight recorder), "tschealth" (the TSC health
// monitor), "series" (the time-series collector), "events" (the
// watchdog), so /trace, /tschealth, /series and /events work as
// documented in the README.
func Serve(addr string, vars map[string]Var) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)

	routes := []string{"/metrics", "/metrics.prom"}
	for _, name := range names {
		if name != "metrics" {
			routes = append(routes, "/"+name)
		}
	}
	sort.Strings(routes)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", protect(func(w http.ResponseWriter, req *http.Request) {
		if acceptsProm(req.Header.Get("Accept")) {
			writePromAll(w, names, vars)
			return
		}
		writeJSONAll(w, names, vars)
	}))
	mux.HandleFunc("/metrics.prom", protect(func(w http.ResponseWriter, _ *http.Request) {
		writePromAll(w, names, vars)
	}))
	for name, v := range vars {
		if name == "metrics" {
			// The aggregate route already serves this name; a registry
			// registered as "metrics" appears there (and in the text
			// exposition).
			continue
		}
		v := v
		mux.HandleFunc("/"+name, protect(func(w http.ResponseWriter, req *http.Request) {
			if h, ok := v.(http.Handler); ok {
				h.ServeHTTP(w, req)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			fmt.Fprintln(w, v.String())
		}))
	}
	mux.HandleFunc("/", protect(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, "404 no route %q; registered routes:\n", req.URL.Path)
		for _, r := range routes {
			fmt.Fprintf(w, "  %s\n", r)
		}
	}))

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

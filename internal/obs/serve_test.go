package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.SetSourceKind("Logical")
	reg.ObserveOp(OpUpdate, 100*time.Nanosecond)

	srv, err := Serve("127.0.0.1:0", map[string]Var{
		"metrics":   reg,
		"tschealth": Func(func() string { return `{"state":"healthy"}` }),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// /metrics: one JSON object keyed by var name.
	var all map[string]json.RawMessage
	if err := json.Unmarshal(get(t, "http://"+srv.Addr()+"/metrics"), &all); err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}
	if _, ok := all["metrics"]; !ok {
		t.Fatal("/metrics missing registry var")
	}
	var snap Snapshot
	if err := json.Unmarshal(all["metrics"], &snap); err != nil {
		t.Fatalf("registry var JSON: %v", err)
	}
	if snap.Source.Kind != "Logical" {
		t.Fatalf("served kind = %q", snap.Source.Kind)
	}

	// Per-var routes.
	var health map[string]string
	if err := json.Unmarshal(get(t, "http://"+srv.Addr()+"/tschealth"), &health); err != nil {
		t.Fatalf("/tschealth JSON: %v", err)
	}
	if health["state"] != "healthy" {
		t.Fatalf("health = %v", health)
	}
}

// TestCloseDrainsInflightScrape: Close must let a scrape that is
// already rendering finish instead of slamming the connection —
// stopping an endpoint mid-scrape used to hand collectors truncated
// JSON bodies.
func TestCloseDrainsInflightScrape(t *testing.T) {
	entered := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", map[string]Var{
		"slow": Func(func() string {
			close(entered)
			time.Sleep(150 * time.Millisecond)
			return `{"done":true}`
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body []byte
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			got <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{b, err}
	}()

	<-entered // the scrape is mid-render
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape broken by Close: %v", r.err)
	}
	if !strings.Contains(string(r.body), `"done":true`) {
		t.Fatalf("in-flight scrape truncated: %q", r.body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", nil); err == nil {
		t.Fatal("expected error for bad listen addr")
	}
}

// TestStringMemoized: within stringTTL the rendered JSON is reused even
// if counters move; after the TTL the next render picks up new values.
func TestStringMemoized(t *testing.T) {
	old := stringTTL
	stringTTL = time.Hour
	defer func() { stringTTL = old }()

	reg := NewRegistry()
	reg.ObserveOp(OpUpdate, time.Microsecond)
	first := reg.String()
	reg.ObserveOp(OpUpdate, time.Microsecond)
	if got := reg.String(); got != first {
		t.Fatal("String re-marshaled within TTL")
	}

	stringTTL = 0 // every call is stale
	reg.ObserveOp(OpUpdate, time.Microsecond)
	var snap Snapshot
	if err := json.Unmarshal([]byte(reg.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Ops["update"].Count != 3 {
		t.Fatalf("post-TTL count = %d, want 3", snap.Ops["update"].Count)
	}
}

func TestSnapshotSummary(t *testing.T) {
	reg := NewRegistry()
	reg.SetSourceKind("RDTSCP")
	reg.ObserveOp(OpRange, 3*time.Microsecond)
	reg.Source.Snapshots.Inc()
	reg.GC.LimboRetired.Inc()
	out := reg.Snapshot().Summary()
	for _, want := range []string{"range-query", "p50", "p99", "RDTSCP", "limbo retired"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Summary missing %q:\n%s", want, out)
		}
	}
	if empty := (Snapshot{}).Summary(); !strings.Contains(empty, "no activity") {
		t.Fatalf("empty summary = %q", empty)
	}
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.SetSourceKind("Logical")
	reg.ObserveOp(OpUpdate, 100*time.Nanosecond)

	srv, err := Serve("127.0.0.1:0", map[string]Var{
		"metrics":   reg,
		"tschealth": Func(func() string { return `{"state":"healthy"}` }),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// /metrics: one JSON object keyed by var name.
	var all map[string]json.RawMessage
	if err := json.Unmarshal(get(t, "http://"+srv.Addr()+"/metrics"), &all); err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}
	if _, ok := all["metrics"]; !ok {
		t.Fatal("/metrics missing registry var")
	}
	var snap Snapshot
	if err := json.Unmarshal(all["metrics"], &snap); err != nil {
		t.Fatalf("registry var JSON: %v", err)
	}
	if snap.Source.Kind != "Logical" {
		t.Fatalf("served kind = %q", snap.Source.Kind)
	}

	// Per-var routes.
	var health map[string]string
	if err := json.Unmarshal(get(t, "http://"+srv.Addr()+"/tschealth"), &health); err != nil {
		t.Fatalf("/tschealth JSON: %v", err)
	}
	if health["state"] != "healthy" {
		t.Fatalf("health = %v", health)
	}
}

// TestCloseDrainsInflightScrape: Close must let a scrape that is
// already rendering finish instead of slamming the connection —
// stopping an endpoint mid-scrape used to hand collectors truncated
// JSON bodies.
func TestCloseDrainsInflightScrape(t *testing.T) {
	entered := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", map[string]Var{
		"slow": Func(func() string {
			close(entered)
			time.Sleep(150 * time.Millisecond)
			return `{"done":true}`
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body []byte
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			got <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{b, err}
	}()

	<-entered // the scrape is mid-render
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape broken by Close: %v", r.err)
	}
	if !strings.Contains(string(r.body), `"done":true`) {
		t.Fatalf("in-flight scrape truncated: %q", r.body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", nil); err == nil {
		t.Fatal("expected error for bad listen addr")
	}
}

// TestStringMemoized: within stringTTL the rendered JSON is reused even
// if counters move; after the TTL the next render picks up new values.
func TestStringMemoized(t *testing.T) {
	old := stringTTL
	stringTTL = time.Hour
	defer func() { stringTTL = old }()

	reg := NewRegistry()
	reg.ObserveOp(OpUpdate, time.Microsecond)
	first := reg.String()
	reg.ObserveOp(OpUpdate, time.Microsecond)
	if got := reg.String(); got != first {
		t.Fatal("String re-marshaled within TTL")
	}

	stringTTL = 0 // every call is stale
	reg.ObserveOp(OpUpdate, time.Microsecond)
	var snap Snapshot
	if err := json.Unmarshal([]byte(reg.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Ops["update"].Count != 3 {
		t.Fatalf("post-TTL count = %d, want 3", snap.Ops["update"].Count)
	}
}

func TestSnapshotSummary(t *testing.T) {
	reg := NewRegistry()
	reg.SetSourceKind("RDTSCP")
	reg.ObserveOp(OpRange, 3*time.Microsecond)
	reg.Source.Snapshots.Inc()
	reg.GC.LimboRetired.Inc()
	out := reg.Snapshot().Summary()
	for _, want := range []string{"range-query", "p50", "p99", "RDTSCP", "limbo retired"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Summary missing %q:\n%s", want, out)
		}
	}
	if empty := (Snapshot{}).Summary(); !strings.Contains(empty, "no activity") {
		t.Fatalf("empty summary = %q", empty)
	}
}

// getFull returns body, status and content type without failing on
// non-200 statuses.
func getFull(t *testing.T, url string, hdr map[string]string) ([]byte, int, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b, resp.StatusCode, resp.Header.Get("Content-Type")
}

// A Var whose String() panics must yield a clean 500, not a truncated
// 200 body — and must not take the server down for later requests.
func TestServePanickingVar(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", map[string]Var{
		"metrics": reg,
		"broken":  Func(func() string { panic("render exploded") }),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body, status, _ := getFull(t, "http://"+srv.Addr()+"/broken", nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking var status = %d, want 500", status)
	}
	if !strings.Contains(string(body), "render exploded") {
		t.Fatalf("500 body = %q", body)
	}

	// The aggregate route renders the panicking var too: same contract.
	_, status, _ = getFull(t, "http://"+srv.Addr()+"/metrics", nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("/metrics with panicking var status = %d, want 500", status)
	}

	// The server survives; a healthy route still works.
	got := get(t, "http://"+srv.Addr()+"/metrics.prom")
	if !strings.Contains(string(got), "tscds_ops_total") {
		t.Fatalf("/metrics.prom after panic = %q", got)
	}
}

func TestServe404ListsRoutes(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", map[string]Var{
		"metrics":   NewRegistry(),
		"tschealth": Func(func() string { return "{}" }),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, status, _ := getFull(t, "http://"+srv.Addr()+"/nope", nil)
	if status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", status)
	}
	for _, want := range []string{"/metrics", "/metrics.prom", "/tschealth"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("404 listing missing %s:\n%s", want, body)
		}
	}
}

// /metrics negotiates on the Accept header: Prometheus scrapers get the
// text exposition, everyone else the JSON aggregate.
func TestServeAcceptNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.ObserveOp(OpUpdate, time.Microsecond)
	srv, err := Serve("127.0.0.1:0", map[string]Var{"metrics": reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, status, ct := getFull(t, base+"/metrics", map[string]string{"Accept": "text/plain"})
	if status != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("negotiated: status %d, Content-Type %q", status, ct)
	}
	if !strings.Contains(string(body), "# TYPE tscds_ops_total counter") {
		t.Fatalf("negotiated body not an exposition:\n%s", body)
	}

	body, _, ct = getFull(t, base+"/metrics", map[string]string{"Accept": "application/json"})
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("JSON Accept got Content-Type %q", ct)
	}
	var all map[string]json.RawMessage
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatalf("JSON aggregate: %v", err)
	}

	// No Accept header keeps the pre-existing JSON behavior.
	body, _, _ = getFull(t, base+"/metrics", nil)
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatalf("default /metrics not JSON: %v", err)
	}

	// /metrics.prom always serves the exposition with the version tag.
	_, _, ct = getFull(t, base+"/metrics.prom", nil)
	if ct != promContentType {
		t.Fatalf("/metrics.prom Content-Type = %q", ct)
	}
}

// Live re-resolves its getter per use and forwards capabilities; a nil
// current value renders as null without panicking.
func TestLiveVar(t *testing.T) {
	var curP atomic.Pointer[Var] // written here, read by server handlers
	cur := func(v Var) {
		if v == nil {
			curP.Store(nil)
			return
		}
		curP.Store(&v)
	}
	live := Live(func() Var {
		if p := curP.Load(); p != nil {
			return *p
		}
		return nil
	})
	if got := live.String(); got != "null" {
		t.Fatalf("nil live String = %q", got)
	}
	var sb strings.Builder
	live.(PromVar).WriteProm(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil live WriteProm wrote %q", sb.String())
	}

	reg := NewRegistry()
	reg.ObserveOp(OpUpdate, time.Microsecond)
	cur(reg)
	if !strings.Contains(live.String(), `"update"`) {
		t.Fatal("live String did not track the swapped-in registry")
	}
	sb.Reset()
	live.(PromVar).WriteProm(&sb)
	if !strings.Contains(sb.String(), "tscds_ops_total") {
		t.Fatal("live WriteProm did not forward to the registry")
	}

	// Through Serve: the exposition follows the getter across swaps.
	srv, err := Serve("127.0.0.1:0", map[string]Var{"metrics": live})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg2 := NewRegistry()
	reg2.SetStructure("swapped/arm")
	reg2.ObserveOp(OpRange, time.Microsecond)
	cur(reg2)
	if got := string(get(t, "http://"+srv.Addr()+"/metrics.prom")); !strings.Contains(got, `structure="swapped/arm"`) {
		t.Fatalf("exposition did not follow the live swap:\n%s", got)
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format ("Trace
// Event Format", consumed by Perfetto and chrome://tracing). Fields:
// ph is the phase letter ("X" complete, "i" instant, "C" counter, "M"
// metadata); ts/dur are microseconds (float — the format allows
// sub-microsecond precision, which our nanosecond events need).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope Perfetto expects.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usFromNS converts recorder nanoseconds to trace-format microseconds.
func usFromNS(ns uint64) float64 { return float64(ns) / 1e3 }

// ChromeTrace converts a snapshot's ring events into Chrome trace-event
// JSON: one lane (tid) per registered thread, phase spans and op
// durations as "X" complete events, op begins as instants, and phase
// counts as "C" counter events. The snapshot must have been taken with
// events enabled; aggregate-only snapshots yield an empty trace.
func (s Snapshot) ChromeTrace() []byte {
	evs := make([]chromeEvent, 0, len(s.Events)+s.Threads+1)

	// One lane per thread that actually recorded something, named so
	// Perfetto's track list is readable.
	threads := map[int]bool{}
	for _, e := range s.Events {
		threads[e.Thread] = true
	}
	tids := make([]int, 0, len(threads))
	for t := range threads {
		tids = append(tids, t)
	}
	sort.Ints(tids)
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "tscds"},
	})
	for _, t := range tids {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: t,
			Args: map[string]any{"name": fmt.Sprintf("thread %d", t)},
		})
	}

	for _, e := range s.Events {
		switch e.Kind {
		case "span", "op-end":
			// Span and op-end events are recorded at completion time with
			// the duration in Value, so the trace-format start is at-dur.
			start := e.AtNS
			if e.Value <= start {
				start -= e.Value
			} else {
				start = 0
			}
			name, cat := e.Phase, "phase"
			if e.Kind == "op-end" {
				name, cat = e.Op, "op"
			}
			evs = append(evs, chromeEvent{
				Name: name, Cat: cat, Ph: "X",
				TS: usFromNS(start), Dur: usFromNS(e.Value),
				PID: 0, TID: e.Thread,
				Args: map[string]any{"seq": e.Seq},
			})
		case "op-begin":
			evs = append(evs, chromeEvent{
				Name: e.Op, Cat: "op", Ph: "i",
				TS: usFromNS(e.AtNS), PID: 0, TID: e.Thread, S: "t",
				Args: map[string]any{"seq": e.Seq},
			})
		case "count":
			evs = append(evs, chromeEvent{
				Name: e.Phase, Cat: "count", Ph: "C",
				TS: usFromNS(e.AtNS), PID: 0, TID: e.Thread,
				Args: map[string]any{"value": e.Value},
			})
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"}); err != nil {
		return []byte(`{"traceEvents":[],"displayTimeUnit":"ns"}`)
	}
	return buf.Bytes()
}

// ServeHTTP makes a registered recorder handle its own endpoint:
// ?format=chrome returns the full ring as Chrome trace-event JSON
// (import into https://ui.perfetto.dev), ?events=1 returns the snapshot
// JSON with decoded ring events, and the default returns the aggregate
// snapshot JSON (the pre-existing /trace behavior). Nil-safe.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	switch {
	case q.Get("format") == "chrome":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="tscds-trace.json"`)
		if r == nil {
			w.Write(Snapshot{}.ChromeTrace())
			return
		}
		w.Write(r.Snapshot(true).ChromeTrace())
	case q.Get("events") == "1":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if r == nil {
			fmt.Fprintln(w, "{}")
			return
		}
		fmt.Fprintln(w, r.Snapshot(true).JSON())
	default:
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, r.String())
	}
}

package trace

import (
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenSnapshot is a deterministic, hand-built ring covering every
// event kind across two threads. AtNS values are chosen so the span and
// op-end start-time arithmetic (at - dur) is visible in the output.
func goldenSnapshot() Snapshot {
	return Snapshot{
		DurationNS: 5000,
		RingSize:   16,
		Threads:    2,
		Recorded:   6,
		Events: []Event{
			{Thread: 0, Seq: 1, AtNS: 1000, Kind: "op-begin", Op: "update"},
			{Thread: 0, Seq: 2, AtNS: 1750, Kind: "op-end", Op: "update", Value: 750},
			{Thread: 0, Seq: 3, AtNS: 2000, Kind: "count", Phase: "rq-restart", Value: 3},
			{Thread: 1, Seq: 4, AtNS: 2500, Kind: "span", Phase: "snapshot-acquire", Value: 400},
			{Thread: 1, Seq: 5, AtNS: 3000, Kind: "op-begin", Op: "range-query"},
			// Value > AtNS: the start-time subtraction must clamp to 0.
			{Thread: 1, Seq: 6, AtNS: 3100, Kind: "op-end", Op: "range-query", Value: 9000},
		},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	got := goldenSnapshot().ChromeTrace()
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/trace -run Golden -update` to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("chrome trace drifted from golden file (regenerate with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// Structural checks on the same snapshot, independent of the golden
// bytes: phases, lane metadata, and the ts/dur microsecond arithmetic.
func TestChromeTraceStructure(t *testing.T) {
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(goldenSnapshot().ChromeTrace(), &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}

	byPhase := map[string]int{}
	threadNames := map[int]string{}
	for _, e := range tr.TraceEvents {
		byPhase[e.Ph]++
		if e.Ph == "M" && e.Name == "thread_name" {
			threadNames[e.TID], _ = e.Args["name"].(string)
		}
	}
	// 1 process_name + 2 thread_name metadata, 2 op-end + 1 span = 3 X,
	// 2 op-begin instants, 1 counter.
	for ph, want := range map[string]int{"M": 3, "X": 3, "i": 2, "C": 1} {
		if byPhase[ph] != want {
			t.Errorf("phase %q count = %d, want %d (%+v)", ph, byPhase[ph], want, byPhase)
		}
	}
	if threadNames[0] != "thread 0" || threadNames[1] != "thread 1" {
		t.Errorf("thread lanes mis-named: %v", threadNames)
	}

	for _, e := range tr.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name == "update":
			// op-end at 1750ns with dur 750ns → starts at 1000ns = 1.0µs.
			if e.TS != 1.0 || e.Dur != 0.75 || e.Cat != "op" || e.TID != 0 {
				t.Errorf("update X event = %+v", e)
			}
		case e.Ph == "X" && e.Name == "snapshot-acquire":
			// span at 2500ns, dur 400ns → starts at 2100ns = 2.1µs.
			if e.TS != 2.1 || e.Dur != 0.4 || e.Cat != "phase" || e.TID != 1 {
				t.Errorf("span X event = %+v", e)
			}
		case e.Ph == "X" && e.Name == "range-query":
			// dur exceeds the end timestamp: start clamps to 0.
			if e.TS != 0 || e.Dur != 9.0 {
				t.Errorf("clamped X event = %+v", e)
			}
		case e.Ph == "i":
			if e.S != "t" || e.Cat != "op" {
				t.Errorf("instant event = %+v", e)
			}
		case e.Ph == "C":
			if e.Name != "rq-restart" || e.Args["value"].(float64) != 3 {
				t.Errorf("counter event = %+v", e)
			}
		}
	}
}

func TestChromeTraceEmptySnapshot(t *testing.T) {
	var tr map[string]any
	if err := json.Unmarshal((Snapshot{}).ChromeTrace(), &tr); err != nil {
		t.Fatalf("empty trace not JSON: %v", err)
	}
	evs, ok := tr["traceEvents"].([]any)
	if !ok || len(evs) != 1 { // just the process_name metadata
		t.Fatalf("empty trace events = %v", tr["traceEvents"])
	}
}

func TestRecorderServeHTTPChrome(t *testing.T) {
	r := NewRecorder(2, 64)
	r.OpBegin(0, OpUpdate)
	r.OpEnd(0, OpUpdate, 500)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?format=chrome", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, "tscds-trace.json") {
		t.Fatalf("Content-Disposition = %q", cd)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("chrome body: %v", err)
	}
	if len(tr.TraceEvents) < 3 { // metadata + the recorded op events
		t.Fatalf("traceEvents = %d, want >= 3", len(tr.TraceEvents))
	}

	// Default and ?events=1 routes keep serving JSON.
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	var agg map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &agg); err != nil {
		t.Fatalf("aggregate body: %v", err)
	}
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?events=1", nil))
	if !strings.Contains(rec.Body.String(), `"events"`) {
		t.Fatalf("?events=1 body = %q", rec.Body.String())
	}

	// Nil recorder still serves a valid (empty) chrome trace.
	var nilR *Recorder
	rec = httptest.NewRecorder()
	nilR.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?format=chrome", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &agg); err != nil {
		t.Fatalf("nil chrome body: %v", err)
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Event is one decoded flight-recorder entry.
type Event struct {
	Thread int    `json:"thread"`
	Seq    uint64 `json:"seq"`
	AtNS   uint64 `json:"at_ns"`
	Kind   string `json:"kind"`
	Op     string `json:"op,omitempty"`
	Phase  string `json:"phase,omitempty"`
	Value  uint64 `json:"value"`
}

// OpStatSnapshot aggregates one op class across all rings.
type OpStatSnapshot struct {
	Op     string  `json:"op"`
	Count  uint64  `json:"count"`
	SumNS  uint64  `json:"sum_ns"`
	MeanNS float64 `json:"mean_ns"`
}

// PhaseStatSnapshot aggregates one phase across all rings plus the
// shared block. Unit is "ns" for span phases and "events" for counts.
type PhaseStatSnapshot struct {
	Phase string  `json:"phase"`
	Unit  string  `json:"unit"`
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
}

// Snapshot is a point-in-time view of a Recorder: per-op and per-phase
// aggregates plus the surviving ring events. It is safe to take while
// writers are recording; torn or overwritten events are counted in
// Dropped rather than returned.
type Snapshot struct {
	DurationNS uint64              `json:"duration_ns"`
	RingSize   int                 `json:"ring_size"`
	Threads    int                 `json:"threads"`
	Ops        []OpStatSnapshot    `json:"ops"`
	Phases     []PhaseStatSnapshot `json:"phases"`
	Events     []Event             `json:"events,omitempty"`
	Recorded   uint64              `json:"recorded"`
	Dropped    uint64              `json:"dropped"`
}

// Snapshot captures the recorder's current state. events controls
// whether ring contents are decoded (aggregates are always included).
// A nil recorder yields the zero Snapshot.
func (r *Recorder) Snapshot(events bool) Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		DurationNS: r.Now(),
		RingSize:   r.RingSize(),
		Threads:    len(r.rings),
	}
	for op := Op(0); op < NumOps; op++ {
		var agg OpStatSnapshot
		agg.Op = op.String()
		for i := range r.rings {
			st := &r.rings[i].ops[op]
			agg.Count += st.count.Load()
			agg.SumNS += st.sum.Load()
		}
		if agg.Count > 0 {
			agg.MeanNS = float64(agg.SumNS) / float64(agg.Count)
			s.Ops = append(s.Ops, agg)
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		agg := PhaseStatSnapshot{Phase: p.String(), Unit: p.Unit()}
		merge := func(st *phaseStat) {
			agg.Count += st.count.Load()
			agg.Sum += st.sum.Load()
			if m := st.max.Load(); m > agg.Max {
				agg.Max = m
			}
		}
		for i := range r.rings {
			merge(&r.rings[i].phases[p])
		}
		merge(&r.shared[p])
		if agg.Count > 0 {
			agg.Mean = float64(agg.Sum) / float64(agg.Count)
			s.Phases = append(s.Phases, agg)
		}
	}
	for i := range r.rings {
		rg := &r.rings[i]
		pos := rg.pos.Load()
		s.Recorded += pos
		if !events {
			continue
		}
		lo := uint64(0)
		if pos > r.mask+1 {
			lo = pos - (r.mask + 1)
		}
		for seq := lo; seq < pos; seq++ {
			sl := &rg.slots[seq&r.mask]
			got := sl.seq.Load()
			if got != seq+1 {
				// Torn mid-write or lapped by newer events.
				s.Dropped++
				continue
			}
			at := sl.at.Load()
			meta := sl.meta.Load()
			arg := sl.arg.Load()
			if sl.seq.Load() != seq+1 {
				s.Dropped++
				continue
			}
			ev := Event{
				Thread: i,
				Seq:    seq,
				AtNS:   at,
				Kind:   Kind(meta >> 16).String(),
				Value:  arg,
			}
			switch Kind(meta >> 16) {
			case KindOpBegin, KindOpEnd:
				ev.Op = Op(meta >> 8 & 0xff).String()
			case KindSpan, KindCount:
				ev.Phase = Phase(meta & 0xff).String()
			}
			s.Events = append(s.Events, ev)
		}
	}
	if events {
		sort.Slice(s.Events, func(a, b int) bool {
			if s.Events[a].AtNS != s.Events[b].AtNS {
				return s.Events[a].AtNS < s.Events[b].AtNS
			}
			if s.Events[a].Thread != s.Events[b].Thread {
				return s.Events[a].Thread < s.Events[b].Thread
			}
			return s.Events[a].Seq < s.Events[b].Seq
		})
	}
	return s
}

// String renders the aggregate snapshot (no ring events) as JSON, making
// the recorder directly servable as an expvar-style Var.
func (r *Recorder) String() string {
	if r == nil {
		return "{}"
	}
	b, err := json.Marshal(r.Snapshot(false))
	if err != nil {
		return "{}"
	}
	return string(b)
}

// JSON renders the snapshot as a single JSON line.
func (s Snapshot) JSON() string {
	b, err := json.Marshal(s)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Format renders a human-readable, flame-style phase summary: span
// phases as horizontal bars scaled to the largest span's share of
// recorded time, count phases as rates per operation.
func (s Snapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d thread(s), ring %d, %d event(s) recorded",
		s.Threads, s.RingSize, s.Recorded)
	if s.Dropped > 0 {
		fmt.Fprintf(&b, " (%d dropped mid-snapshot)", s.Dropped)
	}
	b.WriteByte('\n')

	var totalOps uint64
	if len(s.Ops) > 0 {
		b.WriteString("  ops:\n")
		for _, o := range s.Ops {
			totalOps += o.Count
			fmt.Fprintf(&b, "    %-12s %10d ops  mean %s\n", o.Op, o.Count, fmtNS(o.MeanNS))
		}
	}

	var spans, counts []PhaseStatSnapshot
	var maxSum uint64
	for _, p := range s.Phases {
		if p.Unit == "ns" {
			spans = append(spans, p)
			if p.Sum > maxSum {
				maxSum = p.Sum
			}
		} else {
			counts = append(counts, p)
		}
	}
	if len(spans) > 0 {
		b.WriteString("  phase spans (bar scaled to largest total):\n")
		const width = 30
		for _, p := range spans {
			bar := 0
			if maxSum > 0 {
				bar = int(p.Sum * width / maxSum)
			}
			if bar == 0 && p.Sum > 0 {
				bar = 1
			}
			fmt.Fprintf(&b, "    %-14s %-*s %10d× mean %s max %s\n",
				p.Phase, width, strings.Repeat("█", bar), p.Count,
				fmtNS(p.Mean), fmtNS(float64(p.Max)))
		}
	}
	if len(counts) > 0 {
		b.WriteString("  phase counts:\n")
		for _, p := range counts {
			rate := ""
			if totalOps > 0 {
				rate = fmt.Sprintf("  (%.3f/op)", float64(p.Sum)/float64(totalOps))
			}
			fmt.Fprintf(&b, "    %-14s %10d events in %d record(s), max %d%s\n",
				p.Phase, p.Sum, p.Count, p.Max, rate)
		}
	}
	if len(s.Ops) == 0 && len(s.Phases) == 0 {
		b.WriteString("  (no activity recorded)\n")
	}
	return b.String()
}

// fmtNS renders a nanosecond quantity with an adaptive unit.
func fmtNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// Dump writes the flame-style summary followed by the snapshot JSON to
// w. It is the one-call diagnostic exit for benchmark binaries.
func Dump(w io.Writer, r *Recorder, events bool) {
	s := r.Snapshot(events)
	io.WriteString(w, s.Format())
	io.WriteString(w, s.JSON())
	io.WriteString(w, "\n")
}

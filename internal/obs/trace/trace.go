// Package trace is the library's flight recorder: a per-thread,
// lock-free, fixed-size ring buffer of typed events plus per-phase
// aggregate statistics, recording *where time goes inside an operation*
// — the quantity §IV of the paper argues decides whether hardware
// timestamps help a given (structure, technique) cell.
//
// The design follows the same opt-in discipline as package obs: a nil
// *Recorder is a valid, fully inert recorder (every method nil-checks
// its receiver), so an uninstrumented hot path pays one predictable
// branch and allocates nothing. When recording is on:
//
//   - Per-thread methods (OpBegin/OpEnd/Span/Count) write to the calling
//     thread's own ring, indexed by its core.Thread ID. Rings are
//     single-writer, so recording an event is a handful of uncontended
//     atomic stores — no locks, no allocation, no shared cache lines.
//   - Shared methods (SharedSpan/SharedCount) aggregate into one common
//     stats block for instrumentation points that lack a thread identity
//     (e.g. the EBR-RQ provider's lock acquisitions, which may run on
//     behalf of helpers). They are multi-writer safe atomics.
//
// Ring slots are seqlock-published: the writer invalidates a slot's
// sequence, stores the fields, then publishes the new sequence. A
// concurrent snapshot that observes a torn slot (sequence changed or
// zero) simply drops it, so readers never block writers and the whole
// structure is race-detector clean.
//
// Like obs, this package imports nothing from the rest of the library so
// every layer can report through it without cycles.
package trace

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Phase labels one slice of an operation's execution. Span phases
// accumulate nanoseconds; count phases accumulate event units (chain
// hops, retries, helps). Unit reports which.
type Phase uint8

const (
	// PhaseTraverse is the structural walk of an operation (span).
	PhaseTraverse Phase = iota
	// PhaseTimestamp is the snapshot-bound acquisition of a range query —
	// the fetch-and-add a logical source pays, the fenced read TSC pays
	// (span).
	PhaseTimestamp
	// PhaseLabel is timestamp labeling by an update: a bundle
	// Prepare..Finalize window or an EBR-RQ (read, label) pair (span).
	PhaseLabel
	// PhaseLockWait is time spent acquiring the EBR-RQ readers-writer
	// lock — the paper's central negative result is that this wait, not
	// the counter, bounds EBR-RQ (span).
	PhaseLockWait
	// PhaseLimboScan is the EBR-RQ limbo-list sweep a range query
	// performs after the tree walk (span).
	PhaseLimboScan
	// PhaseRetry counts restarted update attempts (validation failures,
	// lost CASes, DCSS conflicts).
	PhaseRetry
	// PhaseHelp counts operations completed on behalf of other threads
	// (vCAS/EFRB helping).
	PhaseHelp
	// PhaseVersionWalk counts vCAS version-chain hops taken past the head
	// to reach the snapshot-visible version.
	PhaseVersionWalk
	// PhaseBundleDeref counts bundle history entries walked past the head
	// to find the snapshot-visible link target.
	PhaseBundleDeref
	// PhasePendingWait counts spins on pending (unlabeled) bundle entries.
	PhasePendingWait
	// PhasePinStall counts epoch Pin republications (global epoch moved
	// during publication).
	PhasePinStall
	// PhaseAdvanceStall counts failed epoch-advance attempts (a pinned
	// thread lagging, or a lost CAS).
	PhaseAdvanceStall
	// PhaseShardFanout is a sharded range query's cross-shard snapshot
	// coordination: reserving an announcement slot on every overlapping
	// shard, acquiring any per-shard provider locks, and reading the one
	// shared timestamp (span).
	PhaseShardFanout
	// PhaseSourceSwitch is the time a range query wasted on a collection
	// attempt that an adaptive-source generation switch invalidated: the
	// discarded attempt's duration, from taking the stale bound to the
	// failed revalidation (span).
	PhaseSourceSwitch
	// PhaseAlloc is node/version/entry acquisition on the update path —
	// a pooled Get (free-list pop, arena bump, or heap fallback) or the
	// plain heap allocation in GC mode (span). Comparing its share
	// across Config.Alloc modes is how the alloc figure attributes
	// update-path time to the allocator.
	PhaseAlloc
	// PhaseWALAppend is the durability tax on an acknowledged update:
	// appending the record to the shard's WAL buffer and waiting for
	// the group commit that covers it (span). In sync mode this is
	// dominated by the shared fsync; in batched mode by the write.
	PhaseWALAppend
	// PhaseSnapshotFlush is one whole snapshot flush: collecting the
	// map at a single timestamp via RangeQueryAt (writers running),
	// sorting, and atomically writing the image (span; recorded on the
	// shared stats block, since flushes run on the durability layer's
	// own thread or the Checkpoint caller's).
	PhaseSnapshotFlush

	// NumPhases is the number of phases.
	NumPhases
)

// String names the phase as it appears in snapshots.
func (p Phase) String() string {
	switch p {
	case PhaseTraverse:
		return "traverse"
	case PhaseTimestamp:
		return "timestamp-read"
	case PhaseLabel:
		return "label"
	case PhaseLockWait:
		return "lock-wait"
	case PhaseLimboScan:
		return "limbo-scan"
	case PhaseRetry:
		return "retry"
	case PhaseHelp:
		return "help"
	case PhaseVersionWalk:
		return "version-walk"
	case PhaseBundleDeref:
		return "bundle-deref"
	case PhasePendingWait:
		return "pending-wait"
	case PhasePinStall:
		return "pin-stall"
	case PhaseAdvanceStall:
		return "advance-stall"
	case PhaseShardFanout:
		return "shard-fanout"
	case PhaseSourceSwitch:
		return "source-switch"
	case PhaseAlloc:
		return "alloc"
	case PhaseWALAppend:
		return "wal-append"
	case PhaseSnapshotFlush:
		return "snapshot-flush"
	}
	return "unknown"
}

// IsSpan reports whether the phase accumulates nanoseconds (true) or
// event units (false).
func (p Phase) IsSpan() bool {
	switch p {
	case PhaseTraverse, PhaseTimestamp, PhaseLabel, PhaseLockWait, PhaseLimboScan,
		PhaseShardFanout, PhaseSourceSwitch, PhaseAlloc, PhaseWALAppend,
		PhaseSnapshotFlush:
		return true
	}
	return false
}

// Unit names the phase's accumulation unit ("ns" or "events").
func (p Phase) Unit() string {
	if p.IsSpan() {
		return "ns"
	}
	return "events"
}

// Op labels the operation classes the facade brackets, mirroring
// obs.OpClass.
type Op uint8

const (
	// OpUpdate covers Insert and Delete.
	OpUpdate Op = iota
	// OpRange covers RangeQuery and Scan.
	OpRange
	// OpContains covers Contains and Get.
	OpContains

	// NumOps is the number of op classes.
	NumOps
)

// String names the op class.
func (o Op) String() string {
	switch o {
	case OpUpdate:
		return "update"
	case OpRange:
		return "range-query"
	case OpContains:
		return "contains"
	}
	return "unknown"
}

// Kind tags a ring event.
type Kind uint8

const (
	// KindOpBegin marks the start of a facade operation.
	KindOpBegin Kind = iota
	// KindOpEnd marks its completion; the event value is the duration.
	KindOpEnd
	// KindSpan records one completed phase span; value is nanoseconds.
	KindSpan
	// KindCount records a phase count; value is the unit count.
	KindCount

	numKinds
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case KindOpBegin:
		return "op-begin"
	case KindOpEnd:
		return "op-end"
	case KindSpan:
		return "span"
	case KindCount:
		return "count"
	}
	return "unknown"
}

// DefaultRingSize is the per-thread event capacity used when the caller
// passes a non-positive size.
const DefaultRingSize = 256

// cacheLine mirrors obs's padding policy.
const cacheLine = 64

// slot is one seqlock-published ring entry. seq == 0 means "never
// written or mid-write"; otherwise seq is the 1-based global event
// index, so a reader can detect both tearing and overwrites.
type slot struct {
	seq  atomic.Uint64
	at   atomic.Uint64 // ns since recorder start
	meta atomic.Uint64 // kind<<16 | op<<8 | phase
	arg  atomic.Uint64 // duration ns or unit count
}

// phaseStat aggregates one phase on one ring (or the shared block).
type phaseStat struct {
	count atomic.Uint64
	sum   atomic.Uint64
	max   atomic.Uint64
}

func (s *phaseStat) add(v uint64) {
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// opStat aggregates one op class on one ring.
type opStat struct {
	count atomic.Uint64
	sum   atomic.Uint64 // ns
}

// ring is one thread's recording state. The pos cursor is written only
// by the owning thread; readers load it to locate the newest events.
type ring struct {
	_      [cacheLine]byte
	pos    atomic.Uint64
	phases [NumPhases]phaseStat
	ops    [NumOps]opStat
	slots  []slot
	_      [cacheLine - 8]byte
}

// Recorder is the flight recorder: one ring per thread ID plus a shared
// aggregate block. A nil *Recorder is inert; every method is safe (and
// free of allocation) on it.
type Recorder struct {
	start  time.Time
	mask   uint64
	rings  []ring
	shared [NumPhases]phaseStat
}

// NewRecorder builds a recorder for thread IDs in [0, maxThreads) with
// ringSize slots per thread (rounded up to a power of two;
// DefaultRingSize when non-positive).
func NewRecorder(maxThreads, ringSize int) *Recorder {
	if maxThreads <= 0 {
		maxThreads = 1
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	n := 1
	if ringSize > 1 {
		n = 1 << bits.Len(uint(ringSize-1))
	}
	r := &Recorder{start: time.Now(), mask: uint64(n - 1), rings: make([]ring, maxThreads)}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, n)
	}
	return r
}

// Enabled reports whether the recorder records events (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// RingSize returns the per-thread event capacity (0 for nil).
func (r *Recorder) RingSize() int {
	if r == nil {
		return 0
	}
	return int(r.mask) + 1
}

// Threads returns the number of per-thread rings (0 for nil).
func (r *Recorder) Threads() int {
	if r == nil {
		return 0
	}
	return len(r.rings)
}

// Now returns nanoseconds since the recorder started (0 for nil). Use it
// to obtain span start marks for Span/SharedSpan.
func (r *Recorder) Now() uint64 {
	if r == nil {
		return 0
	}
	return uint64(time.Since(r.start))
}

// OpBegin records the start of a facade operation on thread tid. The
// caller must be the goroutine owning tid.
func (r *Recorder) OpBegin(tid int, op Op) {
	if r == nil {
		return
	}
	r.record(tid, KindOpBegin, op, 0, 0)
}

// OpEnd records the completion of a facade operation that took durNS.
func (r *Recorder) OpEnd(tid int, op Op, durNS uint64) {
	if r == nil {
		return
	}
	if tid >= 0 && tid < len(r.rings) && op < NumOps {
		s := &r.rings[tid].ops[op]
		s.count.Add(1)
		s.sum.Add(durNS)
	}
	r.record(tid, KindOpEnd, op, 0, durNS)
}

// Span records a completed phase span that began at startNS (a mark from
// Now) on thread tid.
func (r *Recorder) Span(tid int, p Phase, startNS uint64) {
	if r == nil {
		return
	}
	dur := r.Now() - startNS
	if tid >= 0 && tid < len(r.rings) && p < NumPhases {
		r.rings[tid].phases[p].add(dur)
	}
	r.record(tid, KindSpan, 0, p, dur)
}

// Count records n phase units (hops, retries, helps) on thread tid.
// Zero counts are dropped.
func (r *Recorder) Count(tid int, p Phase, n uint64) {
	if r == nil || n == 0 {
		return
	}
	if tid >= 0 && tid < len(r.rings) && p < NumPhases {
		r.rings[tid].phases[p].add(n)
	}
	r.record(tid, KindCount, 0, p, n)
}

// SharedSpan aggregates a phase span without a thread identity (no ring
// event). Safe from any goroutine.
func (r *Recorder) SharedSpan(p Phase, startNS uint64) {
	if r == nil || p >= NumPhases {
		return
	}
	r.shared[p].add(r.Now() - startNS)
}

// SharedCount aggregates n phase units without a thread identity (no
// ring event). Safe from any goroutine. Zero counts are dropped.
func (r *Recorder) SharedCount(p Phase, n uint64) {
	if r == nil || n == 0 || p >= NumPhases {
		return
	}
	r.shared[p].add(n)
}

// record seqlock-publishes one event into tid's ring. Only the goroutine
// owning tid may call it (the rings are single-writer).
func (r *Recorder) record(tid int, k Kind, op Op, p Phase, arg uint64) {
	if tid < 0 || tid >= len(r.rings) {
		return
	}
	rg := &r.rings[tid]
	i := rg.pos.Load()
	sl := &rg.slots[i&r.mask]
	sl.seq.Store(0) // invalidate for in-flight readers
	sl.at.Store(r.Now())
	sl.meta.Store(uint64(k)<<16 | uint64(op)<<8 | uint64(p))
	sl.arg.Store(arg)
	sl.seq.Store(i + 1)
	rg.pos.Store(i + 1)
}

package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderSafe: a nil recorder must absorb every call.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	if r.Now() != 0 || r.RingSize() != 0 || r.Threads() != 0 {
		t.Fatal("nil recorder reports nonzero dimensions")
	}
	r.OpBegin(0, OpUpdate)
	r.OpEnd(0, OpUpdate, 10)
	r.Span(0, PhaseTraverse, 0)
	r.Count(0, PhaseRetry, 3)
	r.SharedSpan(PhaseLockWait, 0)
	r.SharedCount(PhaseRetry, 1)
	s := r.Snapshot(true)
	if s.Recorded != 0 || len(s.Events) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if r.String() != "{}" {
		t.Fatalf("nil String() = %q", r.String())
	}
}

// TestNilRecorderNoAlloc: the disabled path must not allocate — this is
// the contract that lets tscds leave instrumentation compiled in.
func TestNilRecorderNoAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		start := r.Now()
		r.OpBegin(0, OpRange)
		r.Span(0, PhaseTraverse, start)
		r.Count(0, PhaseVersionWalk, 2)
		r.SharedSpan(PhaseLockWait, start)
		r.OpEnd(0, OpRange, 5)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocates %.1f per op", allocs)
	}
}

// TestEnabledRecorderNoAlloc: even recording must stay allocation-free
// (fixed rings, atomics only).
func TestEnabledRecorderNoAlloc(t *testing.T) {
	r := NewRecorder(1, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		start := r.Now()
		r.OpBegin(0, OpUpdate)
		r.Span(0, PhaseTraverse, start)
		r.Count(0, PhaseRetry, 1)
		r.SharedCount(PhaseHelp, 1)
		r.OpEnd(0, OpUpdate, 7)
	})
	if allocs != 0 {
		t.Fatalf("enabled recorder allocates %.1f per op", allocs)
	}
}

func TestRingSizeRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultRingSize}, {-5, DefaultRingSize}, {1, 1}, {2, 2}, {3, 4},
		{100, 128}, {256, 256}, {257, 512},
	}
	for _, c := range cases {
		if got := NewRecorder(1, c.in).RingSize(); got != c.want {
			t.Errorf("RingSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestSnapshotAggregates: ops and phases accumulate exactly.
func TestSnapshotAggregates(t *testing.T) {
	r := NewRecorder(2, 16)
	r.OpEnd(0, OpUpdate, 100)
	r.OpEnd(0, OpUpdate, 300)
	r.OpEnd(1, OpRange, 50)
	r.Count(0, PhaseVersionWalk, 4)
	r.Count(1, PhaseVersionWalk, 6)
	r.SharedCount(PhaseVersionWalk, 10)
	r.SharedCount(PhaseRetry, 2)

	s := r.Snapshot(false)
	ops := map[string]OpStatSnapshot{}
	for _, o := range s.Ops {
		ops[o.Op] = o
	}
	if u := ops["update"]; u.Count != 2 || u.SumNS != 400 || u.MeanNS != 200 {
		t.Fatalf("update agg = %+v", u)
	}
	if q := ops["range-query"]; q.Count != 1 || q.SumNS != 50 {
		t.Fatalf("range agg = %+v", q)
	}
	phases := map[string]PhaseStatSnapshot{}
	for _, p := range s.Phases {
		phases[p.Phase] = p
	}
	if vw := phases["version-walk"]; vw.Sum != 20 || vw.Count != 3 || vw.Max != 10 || vw.Unit != "events" {
		t.Fatalf("version-walk agg = %+v", vw)
	}
	if rt := phases["retry"]; rt.Sum != 2 {
		t.Fatalf("retry agg = %+v", rt)
	}
}

// TestEventsDecode: ring contents decode in order with correct tags and
// wrap correctly once the ring overflows.
func TestEventsDecode(t *testing.T) {
	r := NewRecorder(1, 8)
	r.OpBegin(0, OpRange)
	r.Span(0, PhaseTimestamp, r.Now())
	r.Count(0, PhaseBundleDeref, 3)
	r.OpEnd(0, OpRange, 42)

	s := r.Snapshot(true)
	if s.Recorded != 4 || len(s.Events) != 4 || s.Dropped != 0 {
		t.Fatalf("recorded=%d events=%d dropped=%d", s.Recorded, len(s.Events), s.Dropped)
	}
	kinds := []string{"op-begin", "span", "count", "op-end"}
	for i, ev := range s.Events {
		if ev.Kind != kinds[i] {
			t.Fatalf("event %d kind = %q, want %q", i, ev.Kind, kinds[i])
		}
	}
	if s.Events[2].Phase != "bundle-deref" || s.Events[2].Value != 3 {
		t.Fatalf("count event = %+v", s.Events[2])
	}
	if s.Events[3].Op != "range-query" || s.Events[3].Value != 42 {
		t.Fatalf("op-end event = %+v", s.Events[3])
	}

	// Overflow: 20 more events into an 8-slot ring keeps only the last 8.
	for i := 0; i < 20; i++ {
		r.Count(0, PhaseRetry, uint64(i+1))
	}
	s = r.Snapshot(true)
	if s.Recorded != 24 || len(s.Events) != 8 {
		t.Fatalf("after wrap: recorded=%d events=%d", s.Recorded, len(s.Events))
	}
	if first := s.Events[0]; first.Seq != 16 {
		t.Fatalf("oldest surviving seq = %d, want 16", first.Seq)
	}
}

// TestSnapshotJSONRoundTrip: JSON() must parse back into a Snapshot.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRecorder(2, 16)
	r.OpEnd(0, OpContains, 9)
	r.Span(1, PhaseTraverse, r.Now())
	var parsed Snapshot
	if err := json.Unmarshal([]byte(r.Snapshot(true).JSON()), &parsed); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if parsed.Threads != 2 || parsed.Recorded != 2 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if err := json.Unmarshal([]byte(r.String()), &parsed); err != nil {
		t.Fatalf("String JSON: %v", err)
	}
}

// TestFormatMentionsPhases: the human rendering names active phases.
func TestFormatMentionsPhases(t *testing.T) {
	r := NewRecorder(1, 16)
	r.OpEnd(0, OpUpdate, 100)
	r.Span(0, PhaseLockWait, r.Now())
	r.Count(0, PhaseHelp, 5)
	out := r.Snapshot(false).Format()
	for _, want := range []string{"update", "lock-wait", "help", "1 thread(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentWritersAndReader: every thread hammers its own ring
// while a reader snapshots mid-flight. Run under -race (make check
// covers internal/obs/...). Aggregate counts must be exact; events may
// be dropped (lapped) but never torn into nonsense.
func TestConcurrentWritersAndReader(t *testing.T) {
	const (
		workers = 8
		perG    = 5000
	)
	r := NewRecorder(workers, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Reader: snapshot continuously while writers run.
	var rdWG sync.WaitGroup
	rdWG.Add(1)
	go func() {
		defer rdWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot(true)
			for _, ev := range s.Events {
				if ev.Kind == "unknown" {
					t.Error("torn event decoded with unknown kind")
					return
				}
				if ev.Thread < 0 || ev.Thread >= workers {
					t.Errorf("event thread %d out of range", ev.Thread)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				start := r.Now()
				r.OpBegin(tid, OpUpdate)
				r.Count(tid, PhaseRetry, 1)
				r.Span(tid, PhaseTraverse, start)
				r.SharedCount(PhaseHelp, 1)
				r.OpEnd(tid, OpUpdate, r.Now()-start)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	rdWG.Wait()

	s := r.Snapshot(true)
	ops := map[string]OpStatSnapshot{}
	for _, o := range s.Ops {
		ops[o.Op] = o
	}
	if got := ops["update"].Count; got != workers*perG {
		t.Fatalf("update count = %d, want %d", got, workers*perG)
	}
	phases := map[string]PhaseStatSnapshot{}
	for _, p := range s.Phases {
		phases[p.Phase] = p
	}
	if got := phases["retry"].Sum; got != workers*perG {
		t.Fatalf("retry sum = %d, want %d", got, workers*perG)
	}
	if got := phases["help"].Sum; got != workers*perG {
		t.Fatalf("help sum = %d, want %d", got, workers*perG)
	}
	if s.Recorded != workers*perG*4 {
		t.Fatalf("recorded = %d, want %d", s.Recorded, workers*perG*4)
	}
	// A quiescent snapshot decodes a full ring per thread, nothing torn.
	if len(s.Events) != workers*64 || s.Dropped != 0 {
		t.Fatalf("quiescent events = %d (dropped %d), want %d", len(s.Events), s.Dropped, workers*64)
	}
}

// TestOutOfRangeThreadIgnored: bad tids are dropped, not panics.
func TestOutOfRangeThreadIgnored(t *testing.T) {
	r := NewRecorder(2, 8)
	r.OpBegin(-1, OpUpdate)
	r.OpEnd(7, OpUpdate, 1)
	r.Span(99, PhaseTraverse, 0)
	r.Count(-3, PhaseRetry, 1)
	if s := r.Snapshot(true); s.Recorded != 0 {
		t.Fatalf("out-of-range tid recorded %d events", s.Recorded)
	}
}

func TestPhaseAndOpStrings(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == "unknown" {
			t.Fatalf("phase %d has no name", p)
		}
		if p.IsSpan() && p.Unit() != "ns" || !p.IsSpan() && p.Unit() != "events" {
			t.Fatalf("phase %v unit mismatch", p)
		}
	}
	for o := Op(0); o < NumOps; o++ {
		if o.String() == "unknown" {
			t.Fatalf("op %d has no name", o)
		}
	}
	if Phase(200).String() != "unknown" || Op(200).String() != "unknown" {
		t.Fatal("out-of-range labels must be unknown")
	}
}

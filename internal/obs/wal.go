package obs

// WALStats counts durability-layer traffic for Maps built with
// Config.Durability: append-path volume, group-commit batching and
// fsync amortization, transient-error retries, snapshot flushes, and
// what recovery replayed at open. A nil *WALStats disables reporting,
// like every other block in this package.
type WALStats struct {
	// Appends counts records appended; AppendedBytes their encoded size.
	Appends       Counter
	AppendedBytes Counter
	// Batches counts group-commit write batches; Appends/Batches is the
	// achieved commit-group size.
	Batches Counter
	// Fsyncs counts successful fsyncs (segment and snapshot files).
	Fsyncs Counter
	// Retries counts transient write/fsync errors absorbed by the
	// retry-with-backoff policy.
	Retries Counter
	// Errors counts persistent failures that made the log's error
	// sticky (durability broken; the map keeps serving from memory).
	Errors Counter
	// SnapshotFlushes/SnapshotFailures count snapshot attempts;
	// SnapshotKeys/SnapshotBytes the flushed volume.
	SnapshotFlushes  Counter
	SnapshotFailures Counter
	SnapshotKeys     Counter
	SnapshotBytes    Counter
	// SegmentsPruned counts sealed segments removed once a snapshot
	// covered them.
	SegmentsPruned Counter
	// RecoveredKeys/RecoveredRecords count what recovery loaded at
	// open (snapshot pairs, replayed WAL records); TornSkipped the
	// torn-tail records it discarded.
	RecoveredKeys    Counter
	RecoveredRecords Counter
	TornSkipped      Counter
}

// WALSnapshot is a point-in-time copy of WALStats.
type WALSnapshot struct {
	// Mode is the durability mode label ("sync" or "batched(N)"), set
	// by whoever wires the stats to a log.
	Mode             string `json:"mode,omitempty"`
	Appends          uint64 `json:"appends"`
	AppendedBytes    uint64 `json:"appended_bytes"`
	Batches          uint64 `json:"batches"`
	Fsyncs           uint64 `json:"fsyncs"`
	Retries          uint64 `json:"retries,omitempty"`
	Errors           uint64 `json:"errors,omitempty"`
	SnapshotFlushes  uint64 `json:"snapshot_flushes"`
	SnapshotFailures uint64 `json:"snapshot_failures,omitempty"`
	SnapshotKeys     uint64 `json:"snapshot_keys"`
	SnapshotBytes    uint64 `json:"snapshot_bytes"`
	SegmentsPruned   uint64 `json:"segments_pruned,omitempty"`
	RecoveredKeys    uint64 `json:"recovered_keys,omitempty"`
	RecoveredRecords uint64 `json:"recovered_records,omitempty"`
	TornSkipped      uint64 `json:"torn_skipped,omitempty"`
}

// Snapshot copies the counters.
func (w *WALStats) Snapshot() WALSnapshot {
	return WALSnapshot{
		Appends:          w.Appends.Load(),
		AppendedBytes:    w.AppendedBytes.Load(),
		Batches:          w.Batches.Load(),
		Fsyncs:           w.Fsyncs.Load(),
		Retries:          w.Retries.Load(),
		Errors:           w.Errors.Load(),
		SnapshotFlushes:  w.SnapshotFlushes.Load(),
		SnapshotFailures: w.SnapshotFailures.Load(),
		SnapshotKeys:     w.SnapshotKeys.Load(),
		SnapshotBytes:    w.SnapshotBytes.Load(),
		SegmentsPruned:   w.SegmentsPruned.Load(),
		RecoveredKeys:    w.RecoveredKeys.Load(),
		RecoveredRecords: w.RecoveredRecords.Load(),
		TornSkipped:      w.TornSkipped.Load(),
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// HealthFacts is the timestamp-source health summary a Watchdog rule
// can see. It mirrors the fields of tsc.HealthSnapshot the default
// rules consume, restated here so this package stays dependency-free;
// the series collector fills it from the live monitor.
type HealthFacts struct {
	// State is one of the tsc health states ("healthy", "degraded",
	// "fallback").
	State string `json:"state,omitempty"`
	// Degraded is the live fast-path fault flag.
	Degraded bool `json:"degraded,omitempty"`
	// CrossRegressions and InjectedFaults count observed and injected
	// TSC backsteps; SourceStalls counts frozen-source reports.
	CrossRegressions uint64 `json:"cross_regressions,omitempty"`
	InjectedFaults   uint64 `json:"injected_faults,omitempty"`
	SourceStalls     uint64 `json:"source_stalls,omitempty"`
	// SourceSwitches and SourceFailbacks count adaptive-source
	// generation switches in each direction.
	SourceSwitches  uint64 `json:"source_switches,omitempty"`
	SourceFailbacks uint64 `json:"source_failbacks,omitempty"`
}

// Observation is one periodic sighting of the system a Watchdog
// evaluates rules over: a metrics snapshot plus, when a TSC health
// monitor is wired, its health facts.
type Observation struct {
	At        time.Time
	Metrics   Snapshot
	Health    HealthFacts
	HasHealth bool
}

// Event is one fired watchdog rule, JSON-ready for the /events
// endpoint and the optional callback.
type Event struct {
	At       time.Time `json:"at"`
	AtUnixMS int64     `json:"at_unix_ms"`
	Rule     string    `json:"rule"`
	Severity string    `json:"severity"`
	Message  string    `json:"message"`
	// Value is the measurement that tripped the rule (a delta, a level,
	// or a rate — the rule's message says which).
	Value float64 `json:"value"`
}

// Severity levels used by the default rules.
const (
	SeverityWarn     = "warn"
	SeverityCritical = "critical"
)

// Rule is one declarative watchdog condition evaluated over successive
// observations. Check inspects the previous and current observation and
// reports a message and measured value when the rule fires.
type Rule struct {
	Name     string
	Severity string
	Check    func(prev, cur Observation) (msg string, value float64, fired bool)
}

// maxWatchdogEvents bounds the retained event ring; older events are
// dropped (and counted) once it fills.
const maxWatchdogEvents = 256

// Watchdog evaluates rules over successive observations and retains
// the fired events on a bounded ring. Feed it from a series.Collector
// (one Observe per collector tick) or directly from tests. Safe for
// concurrent use.
type Watchdog struct {
	mu      sync.Mutex
	rules   []Rule
	prev    Observation
	hasPrev bool
	events  []Event
	total   uint64
	cb      func(Event)
}

// NewWatchdog builds a watchdog over the given rules. cb, when non-nil,
// is invoked synchronously (outside the watchdog's lock) for every
// fired event.
func NewWatchdog(rules []Rule, cb func(Event)) *Watchdog {
	return &Watchdog{rules: rules, cb: cb}
}

// Observe evaluates every rule against (previous, o) and records the
// fired events. The first observation after construction or Reset only
// establishes the baseline. Returns the events fired by this call.
// Nil-safe.
func (w *Watchdog) Observe(o Observation) []Event {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	if !w.hasPrev {
		w.prev, w.hasPrev = o, true
		w.mu.Unlock()
		return nil
	}
	var fired []Event
	for _, r := range w.rules {
		msg, v, ok := r.Check(w.prev, o)
		if !ok {
			continue
		}
		ev := Event{
			At: o.At, AtUnixMS: o.At.UnixMilli(),
			Rule: r.Name, Severity: r.Severity, Message: msg, Value: v,
		}
		w.total++
		if len(w.events) >= maxWatchdogEvents {
			w.events = append(w.events[:0], w.events[1:]...)
		}
		w.events = append(w.events, ev)
		fired = append(fired, ev)
	}
	w.prev = o
	cb := w.cb
	w.mu.Unlock()
	if cb != nil {
		for _, ev := range fired {
			cb(ev)
		}
	}
	return fired
}

// Reset clears the baseline observation (but keeps recorded events).
// Call when the observed registry or health monitor is swapped out —
// deltas across the swap would be garbage. Nil-safe.
func (w *Watchdog) Reset() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.hasPrev = false
	w.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first. Nil-safe.
func (w *Watchdog) Events() []Event {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Event(nil), w.events...)
}

// Total returns the count of events ever fired (including any dropped
// from the ring). Nil-safe.
func (w *Watchdog) Total() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// eventsPage is the /events JSON shape.
type eventsPage struct {
	Total   uint64  `json:"total"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

func (w *Watchdog) page(last int) eventsPage {
	evs := w.Events()
	if last > 0 && last < len(evs) {
		evs = evs[len(evs)-last:]
	}
	if evs == nil {
		evs = []Event{}
	}
	total := w.Total()
	return eventsPage{Total: total, Dropped: total - uint64(len(w.Events())), Events: evs}
}

// String renders the retained events as JSON (expvar-style Var), so a
// watchdog registered as "events" serves the /events endpoint.
func (w *Watchdog) String() string {
	if w == nil {
		return "{}"
	}
	b, err := json.Marshal(w.page(0))
	if err != nil {
		return "{}"
	}
	return string(b)
}

// ServeHTTP serves the event log; ?last=N trims to the newest N events.
func (w *Watchdog) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	last := 0
	if w != nil {
		if n, err := strconv.Atoi(req.URL.Query().Get("last")); err == nil && n > 0 {
			last = n
		}
	}
	rw.Header().Set("Content-Type", "application/json; charset=utf-8")
	if w == nil {
		fmt.Fprintln(rw, "{}")
		return
	}
	b, err := json.Marshal(w.page(last))
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Write(b)
	rw.Write([]byte("\n"))
}

// Default rule thresholds.
const (
	// limboGrowthFactor and limboGrowthFloor gate the limbo-growth rule:
	// the population must both exceed the floor and have grown by the
	// factor within one interval.
	limboGrowthFactor = 2.0
	limboGrowthFloor  = 4096
	// poolHitFloor and poolMinTraffic gate the pool-hit-rate rule: at
	// least poolMinTraffic allocations in the interval with a hit rate
	// under the floor.
	poolHitFloor   = 0.5
	poolMinTraffic = 1024
)

// d64 is a monotonic-counter delta that tolerates torn or swapped
// readings by clamping to zero.
func d64(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// DefaultRules returns the standard rule set:
//
//	tsc-backstep        critical  a TSC backstep (real or injected) was observed
//	source-stall        critical  a strict advance exhausted its spin budget
//	source-degraded     critical  the health state left "healthy"
//	source-switch       warn      an adaptive source switched generations
//	snapshot-retry-spike warn     range queries discarded snapshots after a switch
//	limbo-growth        warn      the limbo population more than doubled past a floor
//	wal-error           critical  the WAL error became sticky (durability broken)
//	pool-hit-collapse   warn      the pool served under half its interval traffic
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "tsc-backstep", Severity: SeverityCritical,
			Check: func(prev, cur Observation) (string, float64, bool) {
				if !prev.HasHealth || !cur.HasHealth {
					return "", 0, false
				}
				d := d64(cur.Health.CrossRegressions, prev.Health.CrossRegressions) +
					d64(cur.Health.InjectedFaults, prev.Health.InjectedFaults)
				if d == 0 {
					return "", 0, false
				}
				return fmt.Sprintf("%d TSC backstep(s) observed this interval; cross-core snapshot ordering is suspect", d), float64(d), true
			},
		},
		{
			Name: "source-stall", Severity: SeverityCritical,
			Check: func(prev, cur Observation) (string, float64, bool) {
				d := d64(cur.Health.SourceStalls, prev.Health.SourceStalls) +
					d64(cur.Metrics.Source.Stalls, prev.Metrics.Source.Stalls)
				if d == 0 {
					return "", 0, false
				}
				return fmt.Sprintf("%d stalled-source report(s): strict advance gave up on a frozen counter", d), float64(d), true
			},
		},
		{
			Name: "source-degraded", Severity: SeverityCritical,
			Check: func(prev, cur Observation) (string, float64, bool) {
				if !prev.HasHealth || !cur.HasHealth {
					return "", 0, false
				}
				if cur.Health.State == prev.Health.State || cur.Health.State == "healthy" {
					return "", 0, false
				}
				return fmt.Sprintf("TSC health state changed %s -> %s", prev.Health.State, cur.Health.State), 1, true
			},
		},
		{
			Name: "source-switch", Severity: SeverityWarn,
			Check: func(prev, cur Observation) (string, float64, bool) {
				d := d64(cur.Health.SourceSwitches, prev.Health.SourceSwitches) +
					d64(cur.Health.SourceFailbacks, prev.Health.SourceFailbacks)
				if d == 0 {
					return "", 0, false
				}
				return fmt.Sprintf("%d adaptive-source generation switch(es) this interval", d), float64(d), true
			},
		},
		{
			Name: "snapshot-retry-spike", Severity: SeverityWarn,
			Check: func(prev, cur Observation) (string, float64, bool) {
				d := d64(cur.Metrics.Source.SnapshotRetries, prev.Metrics.Source.SnapshotRetries)
				if d == 0 {
					return "", 0, false
				}
				return fmt.Sprintf("%d range-query snapshot(s) discarded and re-run this interval", d), float64(d), true
			},
		},
		{
			Name: "limbo-growth", Severity: SeverityWarn,
			Check: func(prev, cur Observation) (string, float64, bool) {
				curLen, prevLen := cur.Metrics.GC.LimboLen, prev.Metrics.GC.LimboLen
				if curLen < limboGrowthFloor || prevLen <= 0 {
					return "", 0, false
				}
				if float64(curLen) < limboGrowthFactor*float64(prevLen) {
					return "", 0, false
				}
				return fmt.Sprintf("limbo population grew %d -> %d in one interval (reclamation falling behind)", prevLen, curLen), float64(curLen), true
			},
		},
		{
			Name: "wal-error", Severity: SeverityCritical,
			Check: func(prev, cur Observation) (string, float64, bool) {
				if cur.Metrics.WAL == nil {
					return "", 0, false
				}
				var prevErrs uint64
				if prev.Metrics.WAL != nil {
					prevErrs = prev.Metrics.WAL.Errors
				}
				d := d64(cur.Metrics.WAL.Errors, prevErrs)
				if d == 0 {
					return "", 0, false
				}
				return fmt.Sprintf("%d sticky WAL error(s): durability broken, map serving from memory", d), float64(d), true
			},
		},
		{
			Name: "pool-hit-collapse", Severity: SeverityWarn,
			Check: func(prev, cur Observation) (string, float64, bool) {
				if cur.Metrics.Pool == nil || prev.Metrics.Pool == nil {
					return "", 0, false
				}
				hits := d64(cur.Metrics.Pool.Hits, prev.Metrics.Pool.Hits)
				misses := d64(cur.Metrics.Pool.Misses, prev.Metrics.Pool.Misses)
				total := hits + misses
				if total < poolMinTraffic {
					return "", 0, false
				}
				rate := float64(hits) / float64(total)
				if rate >= poolHitFloor {
					return "", 0, false
				}
				return fmt.Sprintf("pool hit rate collapsed to %.1f%% over %d allocation(s)", 100*rate, total), rate, true
			},
		},
	}
}

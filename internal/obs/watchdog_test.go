package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func obsAt(sec int) Observation {
	return Observation{At: time.Unix(int64(sec), 0)}
}

func TestWatchdogBaselineAndDelta(t *testing.T) {
	var fired []Event
	w := NewWatchdog(DefaultRules(), func(e Event) { fired = append(fired, e) })

	o1 := obsAt(1)
	o1.HasHealth = true
	if evs := w.Observe(o1); len(evs) != 0 {
		t.Fatalf("baseline observation fired %d events", len(evs))
	}

	// An injected backstep between observations fires tsc-backstep once.
	o2 := obsAt(2)
	o2.HasHealth = true
	o2.Health.InjectedFaults = 3
	evs := w.Observe(o2)
	if len(evs) != 1 || evs[0].Rule != "tsc-backstep" {
		t.Fatalf("events = %+v, want one tsc-backstep", evs)
	}
	if evs[0].Severity != SeverityCritical || evs[0].Value != 3 {
		t.Fatalf("event = %+v", evs[0])
	}
	if len(fired) != 1 {
		t.Fatalf("callback saw %d events, want 1", len(fired))
	}

	// No further delta → no further events.
	o3 := obsAt(3)
	o3.HasHealth = true
	o3.Health.InjectedFaults = 3
	if evs := w.Observe(o3); len(evs) != 0 {
		t.Fatalf("steady state fired %+v", evs)
	}
	if w.Total() != 1 {
		t.Fatalf("total = %d, want 1", w.Total())
	}
}

func TestWatchdogRules(t *testing.T) {
	cases := []struct {
		rule string
		prev func(*Observation)
		cur  func(*Observation)
	}{
		{"source-degraded",
			func(o *Observation) { o.HasHealth = true; o.Health.State = "healthy" },
			func(o *Observation) { o.HasHealth = true; o.Health.State = "fallback" }},
		{"source-switch",
			func(o *Observation) { o.HasHealth = true },
			func(o *Observation) { o.HasHealth = true; o.Health.SourceSwitches = 1 }},
		{"source-stall",
			func(o *Observation) {},
			func(o *Observation) { o.Metrics.Source.Stalls = 2 }},
		{"snapshot-retry-spike",
			func(o *Observation) {},
			func(o *Observation) { o.Metrics.Source.SnapshotRetries = 10 }},
		{"limbo-growth",
			func(o *Observation) { o.Metrics.GC.LimboLen = 4000 },
			func(o *Observation) { o.Metrics.GC.LimboLen = 9000 }},
		{"wal-error",
			func(o *Observation) { o.Metrics.WAL = &WALSnapshot{} },
			func(o *Observation) { o.Metrics.WAL = &WALSnapshot{Errors: 1} }},
		{"pool-hit-collapse",
			func(o *Observation) { o.Metrics.Pool = &PoolSnapshot{} },
			func(o *Observation) { o.Metrics.Pool = &PoolSnapshot{Hits: 100, Misses: 2000} }},
	}
	for _, c := range cases {
		t.Run(c.rule, func(t *testing.T) {
			w := NewWatchdog(DefaultRules(), nil)
			prev, cur := obsAt(1), obsAt(2)
			c.prev(&prev)
			c.cur(&cur)
			w.Observe(prev)
			evs := w.Observe(cur)
			for _, ev := range evs {
				if ev.Rule == c.rule {
					return
				}
			}
			t.Fatalf("rule %s did not fire; events %+v", c.rule, evs)
		})
	}
}

// Rules that need growth must not fire on flat or shrinking inputs, and
// counter resets (cur < prev, e.g. after an arm swap missed by Reset)
// must not underflow into huge deltas.
func TestWatchdogNoFalsePositives(t *testing.T) {
	w := NewWatchdog(DefaultRules(), nil)
	prev := obsAt(1)
	prev.HasHealth = true
	prev.Health.InjectedFaults = 100
	prev.Metrics.Source.SnapshotRetries = 50
	prev.Metrics.GC.LimboLen = 100000
	w.Observe(prev)

	cur := obsAt(2)
	cur.HasHealth = true
	cur.Health.InjectedFaults = 3 // reset below prev: delta must clamp to 0
	cur.Metrics.GC.LimboLen = 50000
	if evs := w.Observe(cur); len(evs) != 0 {
		t.Fatalf("counter reset fired %+v", evs)
	}

	// Small limbo populations never alarm, whatever the growth factor.
	w2 := NewWatchdog(DefaultRules(), nil)
	p2 := obsAt(1)
	p2.Metrics.GC.LimboLen = 10
	c2 := obsAt(2)
	c2.Metrics.GC.LimboLen = 1000 // 100x growth but under the floor
	w2.Observe(p2)
	if evs := w2.Observe(c2); len(evs) != 0 {
		t.Fatalf("small limbo fired %+v", evs)
	}
}

func TestWatchdogResetClearsBaseline(t *testing.T) {
	w := NewWatchdog(DefaultRules(), nil)
	o := obsAt(1)
	o.HasHealth = true
	w.Observe(o)
	w.Reset()
	// First post-Reset observation re-baselines: a jump that would have
	// fired against the old baseline is silent.
	o2 := obsAt(2)
	o2.HasHealth = true
	o2.Health.InjectedFaults = 99
	if evs := w.Observe(o2); len(evs) != 0 {
		t.Fatalf("post-reset observation fired %+v", evs)
	}
}

func TestWatchdogRingCapAndServeHTTP(t *testing.T) {
	w := NewWatchdog(DefaultRules(), nil)
	o := obsAt(0)
	o.HasHealth = true
	w.Observe(o)
	for i := 1; i <= maxWatchdogEvents+10; i++ {
		o := obsAt(i)
		o.HasHealth = true
		o.Health.InjectedFaults = uint64(i)
		w.Observe(o)
	}
	if got := len(w.Events()); got != maxWatchdogEvents {
		t.Fatalf("ring holds %d, want %d", got, maxWatchdogEvents)
	}
	if w.Total() != maxWatchdogEvents+10 {
		t.Fatalf("total = %d, want %d", w.Total(), maxWatchdogEvents+10)
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/events?last=5", nil)
	w.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var page struct {
		Total   uint64  `json:"total"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(page.Events) != 5 || page.Total != maxWatchdogEvents+10 || page.Dropped != 10 {
		t.Fatalf("page = {total %d, dropped %d, %d events}", page.Total, page.Dropped, len(page.Events))
	}

	// String() must be valid JSON (it backs the /events Var rendering).
	var any map[string]any
	if err := json.Unmarshal([]byte(w.String()), &any); err != nil {
		t.Fatalf("String() not JSON: %v", err)
	}
}

func TestWatchdogNil(t *testing.T) {
	var w *Watchdog
	if evs := w.Observe(obsAt(1)); evs != nil {
		t.Fatal("nil watchdog fired")
	}
	w.Reset()
	if w.Events() != nil || w.Total() != 0 || w.String() != "{}" {
		t.Fatal("nil watchdog state not empty")
	}
	rec := httptest.NewRecorder()
	w.ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil ServeHTTP status %d", rec.Code)
	}
}

// The callback must run outside the watchdog lock: calling back into
// the watchdog from the callback must not deadlock.
func TestWatchdogCallbackReentrant(t *testing.T) {
	var w *Watchdog
	done := make(chan struct{})
	w = NewWatchdog(DefaultRules(), func(e Event) {
		_ = w.Events()
		_ = w.String()
		close(done)
	})
	o := obsAt(1)
	o.HasHealth = true
	w.Observe(o)
	o2 := obsAt(2)
	o2.HasHealth = true
	o2.Health.InjectedFaults = 1
	go w.Observe(o2)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("callback deadlocked against watchdog lock")
	}
}

// Package pool is the allocator facade behind Config.Alloc: a generic,
// per-thread pooled allocator that lets the structure packages serve
// node, version and bundle-entry allocations from free lists and arena
// chunks instead of the Go heap.
//
// The paper's comparisons (Logical vs RDTSCP labeling cost) assume the
// rest of the update path is cheap; with every node allocated through
// the GC, allocation and pause time blur exactly the deltas rqbench
// measures. The epoch machinery already proves when a retired node is
// unreachable, so reclamation can feed allocation: retire → limbo →
// free list → next Get, with the Go allocator only backstopping cold
// starts and imbalanced producers/consumers.
//
// Three modes:
//
//   - GC: the facade disappears. New returns a nil *Pool, whose methods
//     are nil-receiver safe: Get allocates with new(T), Put drops the
//     node for the collector. Structures therefore call the facade
//     unconditionally and pay one predictable nil check in GC mode.
//   - Pool: Get pops the calling thread's free list (owner-only, no
//     atomics), falling back to a shared sync.Pool and then to new(T).
//     Put pushes back to the thread's free list, overflowing to the
//     shared pool so cross-thread imbalance (one thread retires what
//     another allocates) still recycles.
//   - Arena: like Pool, but free-list misses bump-allocate out of
//     per-thread chunks of chunkSize elements, batching heap traffic
//     into one allocation per chunk and improving locality of nodes
//     allocated together. Recycled nodes still return to the free
//     list, so arenas do not grow without bound under churn.
//
// Concurrency contract: Get(tid)/Put(tid) with tid >= 0 touch only
// slot tid and MUST come from the thread registered with that id (the
// same single-writer discipline core.Registry already enforces for the
// structures). Put(-1, x) — used when a node is recycled by a thread
// that has no slot, e.g. an unregistered caller running DrainAll —
// routes through the shared sync.Pool, which is safe from anywhere.
//
// Safety contract: callers must hand Put only memory that is provably
// unreachable (the epoch manager's prune points, or a node that was
// never published). Reuse converts any use-after-retire into an ABA
// bug, which is exactly what the reclamation regression tests and
// FuzzPooledAgainstModel pin down.
package pool

import (
	"sync"

	"tscds/internal/obs"
)

// Mode selects how a structure allocates nodes, versions and entries.
type Mode int

const (
	// GC allocates everything through the Go runtime (the default).
	ModeGC Mode = iota
	// Pool serves allocations from per-thread free lists fed by
	// epoch-reclaimed nodes, with a sync.Pool overflow.
	ModePool
	// Arena is Pool plus bump allocation from per-thread chunks for
	// free-list misses.
	ModeArena
)

// String names the mode as it appears in snapshots and bench labels.
func (m Mode) String() string {
	switch m {
	case ModeGC:
		return "GC"
	case ModePool:
		return "Pool"
	case ModeArena:
		return "Arena"
	}
	return "unknown"
}

const (
	// maxLocalFree caps a thread's private free list; beyond it Put
	// overflows to the shared pool so one retire-heavy thread cannot
	// strand unbounded memory other threads could reuse.
	maxLocalFree = 4096
	// chunkSize is the arena chunk length: large enough to amortize the
	// chunk allocation across many nodes, small enough that a mostly
	// idle thread does not pin megabytes.
	chunkSize = 256
	// pad keeps each slot's hot fields on their own cache-line pair,
	// mirroring core's padding policy.
	pad = 64
)

// slot is one thread's private allocation state. Owner-only: no field
// is accessed by any thread but the registered owner.
type slot[T any] struct {
	_     [pad]byte
	free  []*T // LIFO free list; most recently retired first (warm)
	chunk []T  // current arena chunk; nil outside Arena mode
	off   int  // next unused element in chunk
	_     [pad]byte
}

// A Pool hands out *T. The zero value is not useful; use New. A nil
// *Pool is the GC mode and is safe to call.
type Pool[T any] struct {
	mode   Mode
	stats  *obs.PoolStats // nil disables reporting
	shared sync.Pool      // overflow / cross-thread rebalance; holds *T
	slots  []slot[T]
}

// New builds a pool with maxThreads single-writer slots. GC mode (and
// any unknown mode) returns nil — the nil receiver implements GC-mode
// behavior — so callers store the result unconditionally. stats may be
// nil.
func New[T any](maxThreads int, mode Mode, stats *obs.PoolStats) *Pool[T] {
	if mode != ModePool && mode != ModeArena {
		return nil
	}
	if maxThreads < 1 {
		maxThreads = 1
	}
	return &Pool[T]{
		mode:  mode,
		stats: stats,
		slots: make([]slot[T], maxThreads),
	}
}

// Mode reports the pool's mode; GC for a nil pool.
func (p *Pool[T]) Mode() Mode {
	if p == nil {
		return ModeGC
	}
	return p.mode
}

// Get returns a *T for the calling thread to initialize. The memory may
// be recycled: every field the caller relies on must be (re)set before
// the node is published. tid < 0 or out of range skips the per-thread
// free list and serves from the shared pool or the heap.
func (p *Pool[T]) Get(tid int) *T {
	if p == nil {
		return new(T)
	}
	if tid >= 0 && tid < len(p.slots) {
		s := &p.slots[tid]
		if n := len(s.free); n > 0 {
			x := s.free[n-1]
			s.free[n-1] = nil
			s.free = s.free[:n-1]
			p.hit()
			return x
		}
		if x, ok := p.shared.Get().(*T); ok {
			p.hit()
			return x
		}
		if p.mode == ModeArena {
			if s.off == len(s.chunk) {
				s.chunk = make([]T, chunkSize)
				s.off = 0
				p.miss()
			} else {
				p.hit()
			}
			x := &s.chunk[s.off]
			s.off++
			return x
		}
		p.miss()
		return new(T)
	}
	if x, ok := p.shared.Get().(*T); ok {
		p.hit()
		return x
	}
	p.miss()
	return new(T)
}

// Put returns x to the pool. x must be unreachable by every other
// thread (epoch-proven, or never published); the caller must not touch
// it afterwards. tid < 0 or out of range routes through the shared
// pool, which is safe from any goroutine.
func (p *Pool[T]) Put(tid int, x *T) {
	if p == nil || x == nil {
		return
	}
	if p.stats != nil {
		p.stats.Recycled.Inc()
	}
	if tid >= 0 && tid < len(p.slots) {
		s := &p.slots[tid]
		if len(s.free) < maxLocalFree {
			s.free = append(s.free, x)
			return
		}
	}
	p.shared.Put(x)
}

func (p *Pool[T]) hit() {
	if p.stats != nil {
		p.stats.Hits.Inc()
	}
}

func (p *Pool[T]) miss() {
	if p.stats != nil {
		p.stats.Misses.Inc()
	}
}

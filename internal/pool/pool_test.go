package pool

import (
	"sync"
	"testing"

	"tscds/internal/obs"
)

type thing struct {
	a, b uint64
}

func TestNilPoolIsGCMode(t *testing.T) {
	var p *Pool[thing]
	if p.Mode() != ModeGC {
		t.Fatalf("nil pool mode = %v, want GC", p.Mode())
	}
	x := p.Get(0)
	if x == nil {
		t.Fatal("nil pool Get returned nil")
	}
	if *x != (thing{}) {
		t.Fatalf("nil pool Get returned non-zero value %+v", *x)
	}
	p.Put(0, x) // must not panic
}

func TestNewReturnsNilForGCMode(t *testing.T) {
	if p := New[thing](4, ModeGC, nil); p != nil {
		t.Fatal("New(GC) should return nil so the nil fast path applies")
	}
	if p := New[thing](4, Mode(42), nil); p != nil {
		t.Fatal("New(unknown mode) should return nil")
	}
}

func TestPoolReusesPutNodes(t *testing.T) {
	var st obs.PoolStats
	p := New[thing](2, ModePool, &st)
	a := p.Get(0)
	if st.Misses.Load() != 1 {
		t.Fatalf("cold Get: misses = %d, want 1", st.Misses.Load())
	}
	a.a, a.b = 7, 9
	p.Put(0, a)
	if st.Recycled.Load() != 1 {
		t.Fatalf("recycled = %d, want 1", st.Recycled.Load())
	}
	b := p.Get(0)
	if b != a {
		t.Fatal("Get after Put did not reuse the freed node")
	}
	if st.Hits.Load() != 1 {
		t.Fatalf("warm Get: hits = %d, want 1", st.Hits.Load())
	}
	// Reused memory is NOT zeroed; that is the caller's contract.
	if b.a != 7 || b.b != 9 {
		t.Fatalf("pool unexpectedly zeroed reused node: %+v", *b)
	}
}

func TestPoolLIFOOrder(t *testing.T) {
	p := New[thing](1, ModePool, nil)
	a, b := p.Get(0), p.Get(0)
	p.Put(0, a)
	p.Put(0, b)
	if got := p.Get(0); got != b {
		t.Fatal("free list is not LIFO: most recently freed node should come back first")
	}
	if got := p.Get(0); got != a {
		t.Fatal("second Get should return the earlier freed node")
	}
}

func TestSharedPoolRoutesForeignTid(t *testing.T) {
	var st obs.PoolStats
	p := New[thing](2, ModePool, &st)
	x := p.Get(0)
	// tid -1 models a recycler with no slot (DrainAll): the node must
	// land somewhere another thread can reuse it, not be lost.
	p.Put(-1, x)
	if st.Recycled.Load() != 1 {
		t.Fatalf("recycled = %d, want 1", st.Recycled.Load())
	}
	if got := p.Get(1); got != x {
		// sync.Pool gives no cross-P guarantee, but single-goroutine
		// put-then-get hits the private slot deterministically.
		t.Fatal("Get(1) did not recover the node Put with tid -1")
	}
}

func TestArenaBumpAllocates(t *testing.T) {
	var st obs.PoolStats
	p := New[thing](1, ModeArena, &st)
	first := p.Get(0)
	if st.Misses.Load() != 1 {
		t.Fatalf("fresh chunk: misses = %d, want 1", st.Misses.Load())
	}
	for i := 1; i < chunkSize; i++ {
		p.Get(0)
	}
	if st.Hits.Load() != chunkSize-1 {
		t.Fatalf("bump allocations: hits = %d, want %d", st.Hits.Load(), chunkSize-1)
	}
	p.Get(0) // next chunk
	if st.Misses.Load() != 2 {
		t.Fatalf("second chunk: misses = %d, want 2", st.Misses.Load())
	}
	// Recycled nodes return through the free list even in arena mode.
	p.Put(0, first)
	if got := p.Get(0); got != first {
		t.Fatal("arena mode did not serve the recycled node from the free list")
	}
}

func TestConcurrentOwnersAndSharedOverflow(t *testing.T) {
	const threads = 4
	const rounds = 5000
	p := New[thing](threads, ModePool, nil)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			live := make([]*thing, 0, 8)
			for i := 0; i < rounds; i++ {
				x := p.Get(tid)
				x.a = uint64(tid)
				live = append(live, x)
				if len(live) == cap(live) {
					for _, y := range live {
						if y.a != uint64(tid) {
							// A node handed to two threads at once would
							// show a foreign owner id here.
							t.Errorf("node shared across threads: owner %d saw %d", tid, y.a)
							return
						}
						p.Put(tid, y)
					}
					live = live[:0]
				}
			}
		}(tid)
	}
	wg.Wait()
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{ModeGC: "GC", ModePool: "Pool", ModeArena: "Arena", Mode(9): "unknown"} {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

// Package rcu is a userspace read-copy-update implementation in the
// style of classic URCU (Desnoyers et al.): per-thread reader flags plus
// a global grace-period counter. The Citrus tree (Arbel & Attiya, PPoPP
// 2014) uses it so searches run without locks while deletions wait for
// concurrent readers before unlinking a relocated successor.
//
// Read-side sections are wait-free (two padded atomic stores);
// Synchronize spins until every reader that began before the grace
// period has left its critical section.
package rcu

import (
	"runtime"

	"tscds/internal/core"
)

// RCU coordinates up to a fixed number of reader threads, indexed by
// core.Thread.ID.
type RCU struct {
	// gp is the grace-period counter; always even when quiescent.
	gp core.PaddedUint64
	// readers[i] holds 0 when thread i is outside a read-side section,
	// else the gp value it observed on entry with the low bit set.
	readers []core.PaddedUint64
}

// New creates an RCU domain for maxThreads threads.
func New(maxThreads int) *RCU {
	r := &RCU{readers: make([]core.PaddedUint64, maxThreads)}
	r.gp.Store(2)
	return r
}

// ReadLock enters a read-side critical section for thread tid. Sections
// do not nest (the data structures here never need nesting).
func (r *RCU) ReadLock(tid int) {
	r.readers[tid].Store(r.gp.Load() | 1)
}

// ReadUnlock leaves the read-side critical section.
func (r *RCU) ReadUnlock(tid int) {
	r.readers[tid].Store(0)
}

// Synchronize waits until every read-side critical section that was
// running when it was called has completed. Readers that begin after the
// grace period starts observe the new counter value and do not delay it.
func (r *RCU) Synchronize() {
	newGP := r.gp.Add(2)
	for i := range r.readers {
		for {
			v := r.readers[i].Load()
			if v&1 == 0 || v >= newGP {
				break
			}
			runtime.Gosched()
		}
	}
}

package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReadLockUnlock(t *testing.T) {
	r := New(2)
	r.ReadLock(0)
	r.ReadUnlock(0)
	done := make(chan struct{})
	go func() { r.Synchronize(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize blocked with no readers")
	}
}

func TestSynchronizeWaitsForPriorReader(t *testing.T) {
	r := New(2)
	r.ReadLock(0)
	released := make(chan struct{})
	done := make(chan struct{})
	go func() {
		r.Synchronize()
		select {
		case <-released:
		default:
			t.Error("Synchronize returned while reader still inside")
		}
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	close(released)
	r.ReadUnlock(0)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize never returned")
	}
}

func TestSynchronizeIgnoresLaterReaders(t *testing.T) {
	r := New(2)
	// A reader that enters after Synchronize starts must not block it.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.ReadLock(1)
				r.ReadUnlock(1)
			}
		}
	}()
	for i := 0; i < 15; i++ {
		done := make(chan struct{})
		go func() { r.Synchronize(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Synchronize starved by re-entering reader")
		}
	}
	close(stop)
	wg.Wait()
}

// The canonical RCU usage: unlink, synchronize, then reuse. A reader must
// never observe the unlinked value after Synchronize returns.
func TestGracePeriodProtectsUnlink(t *testing.T) {
	r := New(4)
	type node struct{ v int }
	var ptr atomic.Pointer[node]
	ptr.Store(&node{v: 1})
	var freed atomic.Pointer[node] // the node the writer "freed"
	var violations atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for tid := 0; tid < 3; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.ReadLock(tid)
				n := ptr.Load()
				if n == freed.Load() && n != nil {
					violations.Add(1)
				}
				r.ReadUnlock(tid)
			}
		}(tid)
	}
	for i := 2; i < 40; i++ {
		old := ptr.Load()
		ptr.Store(&node{v: i})
		r.Synchronize()
		freed.Store(old) // after grace period nobody may still return it
		time.Sleep(time.Millisecond / 4)
		freed.Store(nil)
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d reader(s) observed a node after its grace period", v)
	}
}

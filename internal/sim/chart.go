package sim

import (
	"fmt"
	"math"
	"strings"
)

// FormatCSV renders a panel as CSV (threads column plus one column per
// series), for piping into external plotting tools.
func FormatCSV(p Panel) string {
	var b strings.Builder
	b.WriteString("threads")
	for _, s := range p.Series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteString("\n")
	for i, t := range p.Threads {
		fmt.Fprintf(&b, "%d", t)
		for _, s := range p.Series {
			fmt.Fprintf(&b, ",%.3f", s.Mops[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// chartGlyphs mark the series in FormatChart, cycling if needed.
var chartGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// FormatChart renders a panel as a rough ASCII line chart (throughput up,
// thread count across), enough to eyeball the crossovers and cliffs the
// paper's figures show without leaving the terminal.
func FormatChart(p Panel, height int) string {
	if height < 4 {
		height = 10
	}
	maxV := 0.0
	for _, s := range p.Series {
		for _, v := range s.Mops {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		return "(no data)\n"
	}
	cols := len(p.Threads)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = bytesRepeat(' ', cols*4)
	}
	for si, s := range p.Series {
		g := chartGlyphs[si%len(chartGlyphs)]
		for i, v := range s.Mops {
			row := height - 1 - int(math.Round(v/maxV*float64(height-1)))
			grid[row][i*4+1] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s (%s)  y-max = %.1f Mops/s\n", p.ID, p.Workload, maxV)
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.0f ", maxV)
		} else if r == height-1 {
			label = "      0 "
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("        +")
	b.WriteString(strings.Repeat("-", cols*4))
	b.WriteString("\n         ")
	for _, t := range p.Threads {
		fmt.Fprintf(&b, "%-4d", t)
	}
	b.WriteString("\n")
	for si, s := range p.Series {
		fmt.Fprintf(&b, "         %c = %s\n", chartGlyphs[si%len(chartGlyphs)], s.Name)
	}
	return b.String()
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// Package sim is a discrete-event simulator of the paper's evaluation
// machine (four-socket Intel Xeon Platinum 8160: 4 NUMA zones x 24 cores
// x 2 hyperthreads), used to regenerate every figure's *shape* on hosts
// that lack the hardware. It models the two first-order effects the paper
// attributes its curves to:
//
//   - a contended cache line (the logical timestamp, or a lock word)
//     serializes ownership transfers, with higher transfer costs across
//     NUMA zones, while cached re-reads are nearly free; and
//   - hardware timestamp reads are fixed-latency and core-local.
//
// Threads are closed-loop processes executing operation step programs
// (local work, cache-line accesses, readers-writer lock sections, TSC
// reads). Absolute throughputs are model outputs, not measurements; the
// calibration constants live in machine.go and are documented in
// EXPERIMENTS.md.
package sim

import "container/heap"

// Engine is a minimal event-driven scheduler over simulated nanoseconds.
type Engine struct {
	now float64
	seq uint64
	pq  eventHeap
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Now returns the current simulated time in nanoseconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute simulated time t (>= Now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn delta nanoseconds from now.
func (e *Engine) After(delta float64, fn func()) { e.At(e.now+delta, fn) }

// Run processes events until the queue empties or time passes horizon.
func (e *Engine) Run(horizon float64) {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(event)
		if ev.at > horizon {
			e.now = horizon
			return
		}
		e.now = ev.at
		ev.fn()
	}
}

package sim

// Series is one curve in a panel: throughput (Mops/s) per thread count.
type Series struct {
	Name string
	Mops []float64
}

// Panel is one subplot of a paper figure.
type Panel struct {
	ID       string // e.g. "2a"
	Workload string // U-RQ-C label, or a description
	Threads  []int
	Series   []Series
}

// ThreadCounts is the sweep used for every simulated figure, following
// the paper's x-axes up to 192 hyperthreads.
var ThreadCounts = []int{1, 2, 4, 8, 16, 24, 48, 96, 144, 192}

// simDuration is the simulated horizon per run (ns). Runs are
// deterministic, so no repetition is needed.
const simDuration = 300_000

// sweep runs one arm across ThreadCounts.
func sweep(m *Machine, build func() []OpSpec) []float64 {
	out := make([]float64, len(ThreadCounts))
	for i, n := range ThreadCounts {
		out[i] = Run(m, Config{Threads: n, DurationNs: simDuration, Ops: build()})
	}
	return out
}

// Fig1WorkNs is the local work interleaved with timestamp acquisition in
// Figure 1's bottom panel, calibrated so the model reproduces the text's
// single-thread ordering (Logical ahead via caching) and its ~2.6x
// RDTSCP advantage at 192 threads.
const Fig1WorkNs = 5000

// Figure1 regenerates both panels of Figure 1.
func Figure1(m *Machine) []Panel {
	kinds := []string{"Logical", "RDTSCP", "RDTSC-CPUID", "RDTSCP-nofence", "RDTSC-nofence"}
	mk := func(id string, work float64) Panel {
		p := Panel{ID: id, Workload: "timestamp acquisition", Threads: ThreadCounts}
		if work > 0 {
			p.Workload = "acquisition + local work"
		}
		for _, k := range kinds {
			k := k
			p.Series = append(p.Series, Series{
				Name: k,
				Mops: sweep(m, func() []OpSpec { return TimestampOps(m, k, work) }),
			})
		}
		return p
	}
	return []Panel{mk("1-top", 0), mk("1-bottom", Fig1WorkNs)}
}

// rqPanels builds one panel per workload with logical/TSC series for
// each listed (name, technique) arm on a structure.
func rqPanels(m *Machine, figure string, structCost float64, hotLines int, arms []struct {
	Name string
	Tech Tech
}, workloads []Workload) []Panel {
	panels := make([]Panel, 0, len(workloads))
	for i, wl := range workloads {
		p := Panel{
			ID:       figure + string(rune('a'+i)),
			Workload: wl.String(),
			Threads:  ThreadCounts,
		}
		for _, arm := range arms {
			arm := arm
			wl := wl
			p.Series = append(p.Series,
				Series{Name: arm.Name, Mops: sweep(m, func() []OpSpec {
					return BuildOps(m, arm.Tech, false, structCost, wl, hotLines)
				})},
				Series{Name: arm.Name + "-RDTSCP", Mops: sweep(m, func() []OpSpec {
					return BuildOps(m, arm.Tech, true, structCost, wl, hotLines)
				})},
			)
		}
		panels = append(panels, p)
	}
	return panels
}

// Figure2 regenerates vCAS on the lock-free BST (10 panels).
func Figure2(m *Machine) []Panel {
	workloads := []Workload{
		{0, 10, 90}, {2, 10, 88}, {10, 10, 80}, {20, 10, 70},
		{0, 20, 80}, {2, 20, 78}, {10, 20, 70}, {20, 20, 60},
		{50, 10, 40}, {100, 0, 0},
	}
	return rqPanels(m, "2", CostBST, 0, []struct {
		Name string
		Tech Tech
	}{{"vCAS", TechVcas}}, workloads)
}

// Figure3 regenerates vCAS and Bundling on the Citrus tree (6 panels).
func Figure3(m *Machine) []Panel {
	workloads := []Workload{
		{0, 10, 90}, {2, 10, 88}, {10, 10, 80},
		{20, 10, 70}, {50, 10, 40}, {90, 10, 0},
	}
	return rqPanels(m, "3", CostCitrus, 0, []struct {
		Name string
		Tech Tech
	}{{"vCAS", TechVcas}, {"Bundle", TechBundle}}, workloads)
}

// Figure4 regenerates EBR-RQ on the Citrus tree (6 panels).
func Figure4(m *Machine) []Panel {
	workloads := []Workload{
		{2, 10, 88}, {10, 10, 80}, {20, 10, 70},
		{50, 10, 40}, {90, 10, 0}, {100, 0, 0},
	}
	return rqPanels(m, "4", CostCitrus, 0, []struct {
		Name string
		Tech Tech
	}{{"EBR-RQ", TechEBR}}, workloads)
}

// Figure5 regenerates Bundling on the skip list (3 panels).
func Figure5(m *Machine) []Panel {
	workloads := []Workload{{10, 10, 80}, {50, 10, 40}, {90, 10, 0}}
	return rqPanels(m, "5", CostSkip, SkipHotLines, []struct {
		Name string
		Tech Tech
	}{{"Bundle", TechBundle}}, workloads)
}

// LazyListPanels regenerates the omitted negative result the paper
// discusses: on a lazy list the O(n) traversal hides the timestamp
// entirely, so TSC buys nothing.
func LazyListPanels(m *Machine) []Panel {
	workloads := []Workload{{10, 10, 80}}
	return rqPanels(m, "L", CostLazy, 0, []struct {
		Name string
		Tech Tech
	}{{"vCAS", TechVcas}, {"Bundle", TechBundle}}, workloads)
}

package sim

import (
	"fmt"
	"strings"
)

// FormatPanel renders a panel as an aligned text table (threads down,
// series across, Mops/s cells).
func FormatPanel(p Panel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s  (workload %s)\n", p.ID, p.Workload)
	fmt.Fprintf(&b, "%8s", "threads")
	for _, s := range p.Series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteString("\n")
	for i, t := range p.Threads {
		fmt.Fprintf(&b, "%8d", t)
		for _, s := range p.Series {
			fmt.Fprintf(&b, " %16.2f", s.Mops[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PanelSummary reports, for a two-series (or paired) panel, the speedup
// of each "-RDTSCP" series over its logical twin at the highest thread
// count — the number the paper quotes per figure.
func PanelSummary(p Panel) string {
	var b strings.Builder
	last := len(p.Threads) - 1
	byName := map[string][]float64{}
	for _, s := range p.Series {
		byName[s.Name] = s.Mops
	}
	for _, s := range p.Series {
		base, ok := byName[strings.TrimSuffix(s.Name, "-RDTSCP")]
		if !ok || !strings.HasSuffix(s.Name, "-RDTSCP") {
			continue
		}
		fmt.Fprintf(&b, "  %s %s: %.2fx at %d threads\n",
			p.ID, s.Name, s.Mops[last]/base[last], p.Threads[last])
	}
	return b.String()
}

package sim

import (
	"strings"
	"testing"
)

func samplePanel() Panel {
	return Panel{
		ID:       "9z",
		Workload: "10-10-80",
		Threads:  []int{1, 2, 4},
		Series: []Series{
			{Name: "Logical", Mops: []float64{1, 2, 3}},
			{Name: "Logical-RDTSCP", Mops: []float64{1, 3, 9}},
		},
	}
}

func TestFormatPanel(t *testing.T) {
	out := FormatPanel(samplePanel())
	for _, want := range []string{"Figure 9z", "10-10-80", "threads", "Logical", "9.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("panel missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 5 { // header x2 + 3 rows
		t.Fatalf("panel has %d lines:\n%s", got, out)
	}
}

func TestPanelSummary(t *testing.T) {
	out := PanelSummary(samplePanel())
	if !strings.Contains(out, "3.00x") {
		t.Fatalf("summary missing speedup: %q", out)
	}
	// A panel with no -RDTSCP pairs yields nothing.
	p := samplePanel()
	p.Series = p.Series[:1]
	if got := PanelSummary(p); got != "" {
		t.Fatalf("summary for unpaired panel = %q", got)
	}
}

func TestFormatCSV(t *testing.T) {
	out := FormatCSV(samplePanel())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines: %q", len(lines), out)
	}
	if lines[0] != "threads,Logical,Logical-RDTSCP" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[3] != "4,3.000,9.000" {
		t.Fatalf("CSV row = %q", lines[3])
	}
}

func TestFormatChart(t *testing.T) {
	out := FormatChart(samplePanel(), 8)
	for _, want := range []string{"Figure 9z", "y-max = 9.0", "* = Logical", "o = Logical-RDTSCP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Peak of the faster series must appear on the top row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "o") {
		t.Fatalf("top row missing peak glyph:\n%s", out)
	}
	if got := FormatChart(Panel{Threads: []int{1}, Series: []Series{{Name: "x", Mops: []float64{0}}}}, 5); got != "(no data)\n" {
		t.Fatalf("empty chart = %q", got)
	}
}

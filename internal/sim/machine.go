package sim

// Machine describes the simulated host's topology and calibration
// constants (all times in nanoseconds). PaperMachine returns the
// evaluation machine of the paper; the constants are calibrated so the
// model reproduces the paper's headline ratios (95x Figure 1 top, ~2.6x
// Figure 1 bottom, 3-5.5x Figure 2) — see EXPERIMENTS.md.
type Machine struct {
	Zones        int
	CoresPerZone int
	SMTPerCore   int

	// Cache line transfer costs for the contended-line model.
	LineCached    float64 // re-read of an unmodified line this thread holds
	LineSameOwner float64 // consecutive accesses by the same thread
	LineIntraZone float64 // ownership transfer within a NUMA zone
	LineCrossZone float64 // ownership transfer across zones

	// Timestamp instruction costs.
	TSCFenced   float64 // RDTSCP;LFENCE
	TSCUnfenced float64 // bare RDTSCP / RDTSC
	TSCCpuid    float64 // CPUID;RDTSC

	// Execution multipliers.
	SMTPenalty  float64 // work slowdown when the core's sibling is active
	NUMAPenalty float64 // work slowdown for threads outside zone 0
}

// PaperMachine models the 4x Intel Xeon Platinum 8160 testbed.
func PaperMachine() *Machine {
	return &Machine{
		Zones:        4,
		CoresPerZone: 24,
		SMTPerCore:   2,
		// Measured orders of magnitude for Skylake-SP coherence.
		LineCached:    2,
		LineSameOwner: 6,
		LineIntraZone: 45,
		LineCrossZone: 120,
		TSCFenced:     25,
		TSCUnfenced:   7,
		TSCCpuid:      110,
		SMTPenalty:    1.45,
		NUMAPenalty:   1.08,
	}
}

// HWThreads returns the machine's total hardware thread count.
func (m *Machine) HWThreads() int { return m.Zones * m.CoresPerZone * m.SMTPerCore }

// placement is a worker's pinned position.
type placement struct {
	zone, core int // core is globally unique
	smt        int
}

// place pins worker i following the Figure 4 narrative: fill a zone's 24
// physical cores first, then their hyperthread siblings, then move to the
// next zone ("speedup when saturating all non hyper-threaded cores in
// the first NUMA zone, i.e. using no greater than 24 threads").
func (m *Machine) place(i int) placement {
	perZone := m.CoresPerZone * m.SMTPerCore
	zone := (i / perZone) % m.Zones
	within := i % perZone
	smt := within / m.CoresPerZone
	core := zone*m.CoresPerZone + within%m.CoresPerZone
	return placement{zone: zone, core: core, smt: smt}
}

// workFactor is the execution multiplier for a worker given the total
// worker count (determines whether its SMT sibling is active).
func (m *Machine) workFactor(i, totalThreads int) float64 {
	p := m.place(i)
	f := 1.0
	if p.zone != 0 {
		f *= m.NUMAPenalty
	}
	// The sibling hyperthread of core c in zone z is the worker at the
	// mirrored SMT slot; with cores-first placement, sibling pairs are
	// i and i +/- CoresPerZone within the zone block.
	perZone := m.CoresPerZone * m.SMTPerCore
	within := i % perZone
	var sibling int
	if p.smt == 0 {
		sibling = i + m.CoresPerZone
	} else {
		sibling = i - m.CoresPerZone
	}
	_ = within
	if sibling < totalThreads && sibling >= 0 {
		f *= m.SMTPenalty
	}
	return f
}

package sim

// Structure and technique cost constants (nanoseconds of core-local
// work), chosen for a half-full 1M key range as in the paper's setup.
// They set absolute levels only; the paper-relevant *shapes* come from
// the line/lock contention model.
const (
	// Elemental operation traversal costs.
	CostBST    = 350 // lock-free external BST
	CostCitrus = 420 // Citrus tree (RCU readers, per-node locks)
	// CostSkip folds in the hot-tower coherence misses a traversal pays
	// at scale, which keep the skip list traversal-bound in read-heavy
	// mixes (the Figure 5 "structure bottleneck outweighs the
	// timestamp" observation).
	CostSkip = 1300
	CostLazy = 60000 // lazy linked list: O(n) walk dominates everything

	// Range query of 100 keys: positioning plus per-key collection.
	CostRQBase   = 400
	CostRQPerKey = 9

	// Technique bookkeeping on the update path.
	CostVcasVersion = 15 // allocate+link a version, help label
	CostBundleEntry = 60 // prepare+finalize a bundle entry (pending window, alloc)
	CostEBRLabel    = 5  // store into the node label inside the section

	// MicrobenchLoopNs is the Figure 1 harness's per-acquisition loop
	// overhead (operation counter, branch, store of the result).
	MicrobenchLoopNs = 40

	// SkipHotLines models the skip list's contended tower region: the
	// handful of high-level index nodes most operations touch. This is
	// the structure-internal bottleneck the paper says outweighs the
	// timestamp in Figure 5's read-heavy mixes.
	SkipHotLines = 4
)

// Tech identifies a range-query technique for profile construction.
type Tech int

const (
	// TechVcas: range queries advance the timestamp; updates read it.
	TechVcas Tech = iota
	// TechBundle: updates advance the timestamp; range queries read it.
	TechBundle
	// TechEBR: updates label under a shared lock; range queries advance
	// under the exclusive lock.
	TechEBR
)

// Workload is a U-RQ-C mix (percent updates, range queries, contains).
type Workload struct {
	U, RQ, C int
}

// String formats the mix the way the paper writes it, e.g. "10-10-80".
func (w Workload) String() string {
	return itoa(w.U) + "-" + itoa(w.RQ) + "-" + itoa(w.C)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// rqCost returns the range-query work for the paper's 100-key queries.
func rqCost() float64 { return CostRQBase + 100*CostRQPerKey }

// BuildOps constructs the operation mix for one (technique, source,
// structure, workload) arm. hw selects the hardware timestamp; fresh
// contended resources are created per call so runs are independent.
// hotLines > 0 adds structure-internal contention: every operation
// touches one of that many hot cache lines (updates write them) — the
// skip list's tower contention, which the paper identifies as the
// bottleneck that hides the timestamp in read-heavy Figure 5 mixes.
func BuildOps(m *Machine, tech Tech, hw bool, structCost float64, wl Workload, hotLines int) []OpSpec {
	line := NewLine()
	lock := NewRWLock()
	tsc := TSCRead(m.TSCFenced)
	rq := rqCost()

	var upd, rqs []Step
	cont := []Step{Work(structCost)}
	switch tech {
	case TechVcas:
		if hw {
			upd = []Step{Work(structCost), tsc, Work(CostVcasVersion)}
			rqs = []Step{tsc, Work(rq)}
		} else {
			upd = []Step{Work(structCost), ReadLine(line), Work(CostVcasVersion)}
			rqs = []Step{WriteLine(line), Work(rq)}
		}
	case TechBundle:
		if hw {
			upd = []Step{Work(structCost), tsc, Work(CostBundleEntry)}
			rqs = []Step{tsc, Work(rq)}
		} else {
			upd = []Step{Work(structCost), WriteLine(line), Work(CostBundleEntry)}
			rqs = []Step{ReadLine(line), Work(rq)}
		}
	case TechEBR:
		// The lock is retained in both arms — the paper's key negative
		// result. Only the timestamp access inside the section changes.
		if hw {
			upd = []Step{Work(structCost), Shared(lock, tsc, Work(CostEBRLabel))}
			rqs = []Step{Excl(lock, tsc), Work(rq)}
		} else {
			upd = []Step{Work(structCost), Shared(lock, ReadLine(line), Work(CostEBRLabel))}
			rqs = []Step{Excl(lock, WriteLine(line)), Work(rq)}
		}
	}
	if hotLines > 0 {
		// Updates additionally serialize on the structure's hot lines
		// (tower locks and pointers), capping update-heavy throughput
		// for both timestamp sources.
		pool := make([]*Line, hotLines)
		for i := range pool {
			pool[i] = NewLine()
		}
		upd = append([]Step{PoolWrite(pool)}, upd...)
	}
	return []OpSpec{
		{Name: "update", Weight: wl.U, Steps: upd},
		{Name: "rq", Weight: wl.RQ, Steps: rqs},
		{Name: "contains", Weight: wl.C, Steps: cont},
	}
}

// TimestampOps builds the Figure 1 microbenchmark mixes: pure timestamp
// acquisition (workNs = 0, top panel) or acquisition interleaved with
// local work (bottom panel).
func TimestampOps(m *Machine, kind string, workNs float64) []OpSpec {
	line := NewLine()
	var acquire Step
	switch kind {
	case "Logical":
		acquire = WriteLine(line)
	case "RDTSCP":
		acquire = TSCRead(m.TSCFenced)
	case "RDTSC-CPUID":
		acquire = TSCRead(m.TSCCpuid)
	case "RDTSCP-nofence":
		acquire = TSCRead(m.TSCUnfenced)
	case "RDTSC-nofence":
		acquire = TSCRead(m.TSCUnfenced)
	default:
		panic("sim: unknown timestamp kind " + kind)
	}
	// Every acquisition carries the measurement harness's loop overhead
	// (operation counting, branch), which is what keeps the paper's top
	// panel ratio near 100x rather than the bare instruction ratio.
	steps := []Step{acquire, Work(MicrobenchLoopNs + workNs)}
	return []OpSpec{{Name: kind, Weight: 100, Steps: steps}}
}

package sim

// Line models one contended cache line (a logical timestamp, a lock
// word) under a MESI-like discipline: writes and cold reads serialize on
// ownership transfers whose latency depends on where the line last
// lived; re-reads of an unmodified line hit the local cache and neither
// serialize nor pay a transfer.
//
// When multiple requesters wait, the next owner is chosen pseudo-randomly
// (deterministically seeded): coherence arbitration does not honor FIFO
// arrival, and round-robin grant order would understate cross-zone
// traffic by letting each zone's threads drain consecutively.
type Line struct {
	version   uint64
	busy      bool
	lastOwner int // worker id, -1 initially
	lastZone  int
	waiters   []lineReq
	rng       uint64
}

type lineReq struct {
	w     *worker
	write bool
	done  func()
}

// NewLine returns a line owned by nobody. Versions start at 1 so a
// worker's zero-valued cache entry reads as "never seen".
func NewLine() *Line { return &Line{lastOwner: -1, version: 1, rng: 0x1234567} }

// access schedules done when the worker's access completes. write
// indicates a modifying access (fetch-and-add); reads by a worker whose
// cached copy is current complete locally, and read *misses* pay only a
// fetch latency without serializing — MESI serves shared copies of an
// unmodified line to any number of readers concurrently; only ownership
// transfers (writes) serialize.
func (l *Line) access(e *Engine, m *Machine, w *worker, write bool, done func()) {
	if !write {
		if w.lineSeen[l] == l.version {
			e.After(m.LineCached, done)
			return
		}
		lat := m.LineIntraZone
		if l.lastZone != w.zone {
			lat = m.LineCrossZone
		}
		v := l.version
		e.After(lat, func() {
			w.lineSeen[l] = v
			done()
		})
		return
	}
	l.waiters = append(l.waiters, lineReq{w: w, write: write, done: done})
	if !l.busy {
		l.grant(e, m)
	}
}

func (l *Line) grant(e *Engine, m *Machine) {
	if len(l.waiters) == 0 {
		l.busy = false
		return
	}
	l.busy = true
	l.rng ^= l.rng << 13
	l.rng ^= l.rng >> 7
	l.rng ^= l.rng << 17
	idx := int(l.rng % uint64(len(l.waiters)))
	req := l.waiters[idx]
	l.waiters[idx] = l.waiters[len(l.waiters)-1]
	l.waiters = l.waiters[:len(l.waiters)-1]

	var svc float64
	switch {
	case l.lastOwner == req.w.id || l.lastOwner == -1:
		svc = m.LineSameOwner
	case l.lastZone == req.w.zone:
		svc = m.LineIntraZone
	default:
		svc = m.LineCrossZone
	}
	e.After(svc, func() {
		if req.write {
			l.version++
		}
		l.lastOwner = req.w.id
		l.lastZone = req.w.zone
		req.w.lineSeen[l] = l.version
		req.done()
		l.grant(e, m)
	})
}

// RWLock models a fair readers-writer lock whose lock word is itself a
// contended line: every acquire and release pays a line access, and
// exclusive holders serialize everyone — the EBR-RQ bottleneck of §IV.
type RWLock struct {
	word    *Line
	readers int
	writing bool
	queue   []rwReq
}

type rwReq struct {
	write bool
	w     *worker
	grant func()
}

// NewRWLock returns an unheld lock.
func NewRWLock() *RWLock { return &RWLock{word: NewLine()} }

// acquire requests the lock; grant runs once it is held.
func (k *RWLock) acquire(e *Engine, m *Machine, w *worker, write bool, grant func()) {
	k.word.access(e, m, w, true, func() {
		k.queue = append(k.queue, rwReq{write: write, w: w, grant: grant})
		k.dispatch(e)
	})
}

// release drops the lock (shared or exclusive as acquired).
func (k *RWLock) release(e *Engine, m *Machine, w *worker, write bool, done func()) {
	k.word.access(e, m, w, true, func() {
		if write {
			k.writing = false
		} else {
			k.readers--
		}
		k.dispatch(e)
		done()
	})
}

// dispatch grants queued requests FIFO: a run of readers at the head is
// admitted together; a writer waits for exclusivity.
func (k *RWLock) dispatch(e *Engine) {
	for len(k.queue) > 0 {
		head := k.queue[0]
		if head.write {
			if k.writing || k.readers > 0 {
				return
			}
			k.writing = true
		} else {
			if k.writing {
				return
			}
			k.readers++
		}
		k.queue = k.queue[1:]
		e.After(0, head.grant)
	}
}

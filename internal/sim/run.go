package sim

// StepKind enumerates the primitive actions a simulated operation is
// composed of.
type StepKind int

const (
	// StepWork is core-local computation (traversals, allocation); it is
	// scaled by the worker's SMT/NUMA factor.
	StepWork StepKind = iota
	// StepTSC is a hardware timestamp read: fixed latency, core-local.
	StepTSC
	// StepLineRead is a read of a contended cache line.
	StepLineRead
	// StepLineWrite is a modifying access (fetch-and-add) to a line.
	StepLineWrite
	// StepRWShared executes Hold while holding a RWLock in shared mode.
	StepRWShared
	// StepRWExcl executes Hold while holding a RWLock exclusively.
	StepRWExcl
	// StepPoolRead reads one randomly chosen line from a hot-line pool
	// (structure-internal contention, e.g. skip-list towers).
	StepPoolRead
	// StepPoolWrite writes one randomly chosen line from the pool.
	StepPoolWrite
)

// Step is one primitive action.
type Step struct {
	Kind StepKind
	Ns   float64 // StepWork/StepTSC: duration
	Line *Line
	Lock *RWLock
	Hold []Step  // body of RW-held sections
	Pool []*Line // hot-line pool for StepPool*
}

// Work returns a local-work step.
func Work(ns float64) Step { return Step{Kind: StepWork, Ns: ns} }

// TSCRead returns a hardware timestamp read step.
func TSCRead(ns float64) Step { return Step{Kind: StepTSC, Ns: ns} }

// ReadLine returns a read access to line.
func ReadLine(l *Line) Step { return Step{Kind: StepLineRead, Line: l} }

// WriteLine returns a fetch-and-add access to line.
func WriteLine(l *Line) Step { return Step{Kind: StepLineWrite, Line: l} }

// PoolRead returns a read of a random line in the pool.
func PoolRead(pool []*Line) Step { return Step{Kind: StepPoolRead, Pool: pool} }

// PoolWrite returns a write to a random line in the pool.
func PoolWrite(pool []*Line) Step { return Step{Kind: StepPoolWrite, Pool: pool} }

// Shared returns a shared-mode critical section on lock.
func Shared(k *RWLock, hold ...Step) Step { return Step{Kind: StepRWShared, Lock: k, Hold: hold} }

// Excl returns an exclusive critical section on lock.
func Excl(k *RWLock, hold ...Step) Step { return Step{Kind: StepRWExcl, Lock: k, Hold: hold} }

// OpSpec is one operation class in a workload mix.
type OpSpec struct {
	Name   string
	Weight int // percentage weight in the mix
	Steps  []Step
}

// Config describes one simulated run.
type Config struct {
	Threads    int
	DurationNs float64
	Ops        []OpSpec
}

type worker struct {
	id, zone, core int
	factor         float64
	lineSeen       map[*Line]uint64
	rng            uint64
	ops            int64
}

func (w *worker) rand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// Run simulates the configuration and returns total throughput in
// Mops/s. Deterministic: identical inputs produce identical outputs.
func Run(m *Machine, cfg Config) float64 {
	e := &Engine{}
	total := 0
	for _, op := range cfg.Ops {
		total += op.Weight
	}
	if total == 0 {
		return 0
	}
	workers := make([]*worker, cfg.Threads)
	for i := range workers {
		p := m.place(i)
		w := &worker{
			id:       i,
			zone:     p.zone,
			core:     p.core,
			factor:   m.workFactor(i, cfg.Threads),
			lineSeen: map[*Line]uint64{},
			rng:      uint64(i)*0x9E3779B97F4A7C15 + 1,
		}
		workers[i] = w
		// Small deterministic stagger to avoid lockstep artifacts.
		e.At(float64(i)*0.7, func() { w.loop(e, m, cfg, total) })
	}
	e.Run(cfg.DurationNs)
	var ops int64
	for _, w := range workers {
		ops += w.ops
	}
	return float64(ops) / cfg.DurationNs * 1e3 // ops/ns -> Mops/s
}

func (w *worker) loop(e *Engine, m *Machine, cfg Config, totalWeight int) {
	if e.Now() >= cfg.DurationNs {
		return
	}
	pick := int(w.rand() % uint64(totalWeight))
	var spec *OpSpec
	for i := range cfg.Ops {
		if pick < cfg.Ops[i].Weight {
			spec = &cfg.Ops[i]
			break
		}
		pick -= cfg.Ops[i].Weight
	}
	w.exec(e, m, spec.Steps, 0, func() {
		w.ops++
		w.loop(e, m, cfg, totalWeight)
	})
}

func (w *worker) exec(e *Engine, m *Machine, steps []Step, k int, done func()) {
	if k == len(steps) {
		done()
		return
	}
	st := steps[k]
	next := func() { w.exec(e, m, steps, k+1, done) }
	switch st.Kind {
	case StepWork:
		e.After(st.Ns*w.factor, next)
	case StepTSC:
		e.After(st.Ns, next)
	case StepLineRead:
		st.Line.access(e, m, w, false, next)
	case StepLineWrite:
		st.Line.access(e, m, w, true, next)
	case StepPoolRead:
		st.Pool[w.rand()%uint64(len(st.Pool))].access(e, m, w, false, next)
	case StepPoolWrite:
		st.Pool[w.rand()%uint64(len(st.Pool))].access(e, m, w, true, next)
	case StepRWShared:
		st.Lock.acquire(e, m, w, false, func() {
			w.exec(e, m, st.Hold, 0, func() {
				st.Lock.release(e, m, w, false, next)
			})
		})
	case StepRWExcl:
		st.Lock.acquire(e, m, w, true, func() {
			w.exec(e, m, st.Hold, 0, func() {
				st.Lock.release(e, m, w, true, next)
			})
		})
	}
}

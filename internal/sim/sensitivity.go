package sim

// Sensitivity analysis: how the headline reproduction ratios respond to
// the calibration constants. This is how we argue the simulated shapes
// are properties of the contention model rather than artifacts of one
// parameter choice — the qualitative conclusions (who wins, where) must
// hold across wide parameter ranges, and cmd/simstudy prints the sweeps.

// Headline identifies one paper-claim ratio the model reproduces.
type Headline struct {
	Name  string
	Claim string
	// Eval computes the ratio on machine m.
	Eval func(m *Machine) float64
}

// ratioAt computes hw/logical throughput at the top thread count.
func ratioAt(m *Machine, build func(hw bool) []OpSpec, threads int) float64 {
	lg := Run(m, Config{Threads: threads, DurationNs: simDuration, Ops: build(false)})
	hw := Run(m, Config{Threads: threads, DurationNs: simDuration, Ops: build(true)})
	return hw / lg
}

// Headlines returns the tracked paper claims.
func Headlines() []Headline {
	return []Headline{
		{
			Name:  "fig1-top@192",
			Claim: ">= 95x (RDTSCP vs Logical, bare acquisition)",
			Eval: func(m *Machine) float64 {
				lg := Run(m, Config{Threads: 192, DurationNs: simDuration, Ops: TimestampOps(m, "Logical", 0)})
				hw := Run(m, Config{Threads: 192, DurationNs: simDuration, Ops: TimestampOps(m, "RDTSCP", 0)})
				return hw / lg
			},
		},
		{
			Name:  "fig1-bottom@192",
			Claim: "~2.6x with interleaved work",
			Eval: func(m *Machine) float64 {
				lg := Run(m, Config{Threads: 192, DurationNs: simDuration, Ops: TimestampOps(m, "Logical", Fig1WorkNs)})
				hw := Run(m, Config{Threads: 192, DurationNs: simDuration, Ops: TimestampOps(m, "RDTSCP", Fig1WorkNs)})
				return hw / lg
			},
		},
		{
			Name:  "fig2e@192",
			Claim: "~5.5x (vCAS BST, 0-20-80)",
			Eval: func(m *Machine) float64 {
				return ratioAt(m, func(hw bool) []OpSpec {
					return BuildOps(m, TechVcas, hw, CostBST, Workload{0, 20, 80}, 0)
				}, 192)
			},
		},
		{
			Name:  "fig4b@192",
			Claim: "~1x (EBR-RQ keeps its lock)",
			Eval: func(m *Machine) float64 {
				return ratioAt(m, func(hw bool) []OpSpec {
					return BuildOps(m, TechEBR, hw, CostCitrus, Workload{10, 10, 80}, 0)
				}, 192)
			},
		},
		{
			Name:  "fig5c@192",
			Claim: ">1.4x (skip list, update-heavy)",
			Eval: func(m *Machine) float64 {
				return ratioAt(m, func(hw bool) []OpSpec {
					return BuildOps(m, TechBundle, hw, CostSkip, Workload{90, 10, 0}, SkipHotLines)
				}, 192)
			},
		},
	}
}

// Sweep is one calibration parameter to vary.
type Sweep struct {
	Name   string
	Values []float64
	Apply  func(m *Machine, v float64)
}

// Sweeps returns the default parameter sweeps around the calibrated
// values (marked by PaperMachine's defaults).
func Sweeps() []Sweep {
	return []Sweep{
		{
			Name:   "LineCrossZone(ns)",
			Values: []float64{60, 90, 120, 180, 240},
			Apply:  func(m *Machine, v float64) { m.LineCrossZone = v },
		},
		{
			Name:   "TSCFenced(ns)",
			Values: []float64{10, 25, 40, 80},
			Apply:  func(m *Machine, v float64) { m.TSCFenced = v },
		},
		{
			Name:   "SMTPenalty",
			Values: []float64{1.0, 1.2, 1.45, 1.8},
			Apply:  func(m *Machine, v float64) { m.SMTPenalty = v },
		},
		{
			Name:   "NUMAPenalty",
			Values: []float64{1.0, 1.08, 1.25},
			Apply:  func(m *Machine, v float64) { m.NUMAPenalty = v },
		},
	}
}

// SensitivityRow is one (parameter value, headline ratios) sample.
type SensitivityRow struct {
	Value  float64
	Ratios []float64 // parallel to Headlines()
}

// RunSweep evaluates every headline across one parameter sweep.
func RunSweep(sw Sweep, heads []Headline) []SensitivityRow {
	rows := make([]SensitivityRow, 0, len(sw.Values))
	for _, v := range sw.Values {
		m := PaperMachine()
		sw.Apply(m, v)
		row := SensitivityRow{Value: v}
		for _, h := range heads {
			row.Ratios = append(row.Ratios, h.Eval(m))
		}
		rows = append(rows, row)
	}
	return rows
}

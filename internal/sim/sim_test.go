package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := &Engine{}
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.At(10, func() { order = append(order, 11) }) // FIFO at equal times
	e.Run(100)
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineHorizon(t *testing.T) {
	e := &Engine{}
	ran := false
	e.At(500, func() { ran = true })
	e.Run(100)
	if ran {
		t.Fatal("event past horizon executed")
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want horizon", e.Now())
	}
}

func TestLineSerializesWriters(t *testing.T) {
	m := PaperMachine()
	e := &Engine{}
	l := NewLine()
	w1 := &worker{id: 0, zone: 0, lineSeen: map[*Line]uint64{}}
	w2 := &worker{id: 1, zone: 1, lineSeen: map[*Line]uint64{}}
	var t1, t2 float64
	l.access(e, m, w1, true, func() { t1 = e.Now() })
	l.access(e, m, w2, true, func() { t2 = e.Now() })
	e.Run(1e6)
	if t1 <= 0 || t2 <= t1 {
		t.Fatalf("writers not serialized: %v then %v", t1, t2)
	}
	if t2-t1 < m.LineCrossZone {
		t.Fatalf("cross-zone transfer too cheap: %v", t2-t1)
	}
}

func TestLineCachedRead(t *testing.T) {
	m := PaperMachine()
	e := &Engine{}
	l := NewLine()
	w := &worker{id: 0, zone: 0, lineSeen: map[*Line]uint64{}}
	var first, second float64
	l.access(e, m, w, true, func() {
		first = e.Now()
		l.access(e, m, w, false, func() { second = e.Now() })
	})
	e.Run(1e6)
	if second-first > m.LineCached+0.001 {
		t.Fatalf("re-read not cached: cost %v", second-first)
	}
}

func TestRWLockExclusionAndFairness(t *testing.T) {
	m := PaperMachine()
	e := &Engine{}
	k := NewRWLock()
	w1 := &worker{id: 0, zone: 0, lineSeen: map[*Line]uint64{}}
	w2 := &worker{id: 1, zone: 0, lineSeen: map[*Line]uint64{}}
	w3 := &worker{id: 2, zone: 0, lineSeen: map[*Line]uint64{}}
	var events []string
	// Writer holds; reader queued; second writer queued behind reader.
	k.acquire(e, m, w1, true, func() {
		events = append(events, "w1-acq")
		e.After(100, func() {
			k.release(e, m, w1, true, func() { events = append(events, "w1-rel") })
		})
	})
	e.After(1, func() {
		k.acquire(e, m, w2, false, func() {
			events = append(events, "r2-acq")
			k.release(e, m, w2, false, func() {})
		})
	})
	e.After(2, func() {
		k.acquire(e, m, w3, true, func() {
			events = append(events, "w3-acq")
			k.release(e, m, w3, true, func() {})
		})
	})
	e.Run(1e6)
	if len(events) != 4 {
		t.Fatalf("events = %v", events)
	}
	// Mutual exclusion: nobody acquires before the writer releases; the
	// relative order of the queued reader and writer is up to the word
	// line's arbitration.
	if events[0] != "w1-acq" || events[1] != "w1-rel" {
		t.Fatalf("events = %v: writer not exclusive", events)
	}
	rest := map[string]bool{events[2]: true, events[3]: true}
	if !rest["r2-acq"] || !rest["w3-acq"] {
		t.Fatalf("events = %v: queued requests not granted", events)
	}
}

func TestRunDeterministic(t *testing.T) {
	m := PaperMachine()
	build := func() []OpSpec { return BuildOps(m, TechVcas, false, CostBST, Workload{10, 10, 80}, 0) }
	a := Run(m, Config{Threads: 48, DurationNs: 100_000, Ops: build()})
	b := Run(m, Config{Threads: 48, DurationNs: 100_000, Ops: build()})
	if a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("throughput %v", a)
	}
}

func TestPlacementCoversMachine(t *testing.T) {
	m := PaperMachine()
	if m.HWThreads() != 192 {
		t.Fatalf("HWThreads = %d", m.HWThreads())
	}
	// First 24 workers on distinct cores of zone 0 (Figure 4 narrative).
	seen := map[int]bool{}
	for i := 0; i < 24; i++ {
		p := m.place(i)
		if p.zone != 0 {
			t.Fatalf("worker %d on zone %d", i, p.zone)
		}
		if seen[p.core] {
			t.Fatalf("worker %d shares core %d before cores exhausted", i, p.core)
		}
		seen[p.core] = true
	}
	// Workers 24..47 are the SMT siblings of 0..23.
	for i := 24; i < 48; i++ {
		p := m.place(i)
		if p.zone != 0 || p.smt != 1 || p.core != m.place(i-24).core {
			t.Fatalf("worker %d not sibling of %d: %+v", i, i-24, p)
		}
	}
	// Worker 48 starts zone 1.
	if p := m.place(48); p.zone != 1 {
		t.Fatalf("worker 48 on zone %d", p.zone)
	}
}

func TestWorkFactorSMT(t *testing.T) {
	m := PaperMachine()
	// With 24 threads, nobody shares a core.
	if f := m.workFactor(0, 24); f != 1.0 {
		t.Fatalf("factor(0,24) = %v", f)
	}
	// With 48 threads, worker 0's sibling (24) is active.
	if f := m.workFactor(0, 48); f != m.SMTPenalty {
		t.Fatalf("factor(0,48) = %v", f)
	}
	// Remote zone carries the NUMA penalty.
	if f := m.workFactor(48, 49); f != m.NUMAPenalty {
		t.Fatalf("factor(48,49) = %v", f)
	}
}

// The model must reproduce the paper's four headline shapes.
func TestPaperShapes(t *testing.T) {
	m := PaperMachine()

	at := func(mops []float64, threads int) float64 {
		for i, n := range ThreadCounts {
			if n == threads {
				return mops[i]
			}
		}
		t.Fatalf("thread count %d not in sweep", threads)
		return 0
	}

	t.Run("fig1-top: RDTSCP >= 95x Logical at 192", func(t *testing.T) {
		logical := sweep(m, func() []OpSpec { return TimestampOps(m, "Logical", 0) })
		rdtscp := sweep(m, func() []OpSpec { return TimestampOps(m, "RDTSCP", 0) })
		ratio := at(rdtscp, 192) / at(logical, 192)
		if ratio < 95 {
			t.Fatalf("RDTSCP/Logical at 192 = %.1fx, want >= 95x", ratio)
		}
		// Single thread: logical benefits from caching.
		if at(logical, 1) < at(rdtscp, 1) {
			t.Fatalf("at 1 thread logical (%.1f) should beat fenced RDTSCP (%.1f)",
				at(logical, 1), at(rdtscp, 1))
		}
	})

	t.Run("fig1-bottom: ~2.6x at 192, logical ahead at 1", func(t *testing.T) {
		logical := sweep(m, func() []OpSpec { return TimestampOps(m, "Logical", Fig1WorkNs) })
		rdtscp := sweep(m, func() []OpSpec { return TimestampOps(m, "RDTSCP", Fig1WorkNs) })
		ratio := at(rdtscp, 192) / at(logical, 192)
		if ratio < 1.8 || ratio > 3.5 {
			t.Fatalf("bottom-panel ratio at 192 = %.2fx, want ~2.6x", ratio)
		}
		if at(logical, 1) < at(rdtscp, 1) {
			t.Fatal("logical should win at 1 thread via caching")
		}
	})

	t.Run("fig2: vCAS TSC speedup grows with RQ rate", func(t *testing.T) {
		speedup := func(wl Workload) float64 {
			lg := sweep(m, func() []OpSpec { return BuildOps(m, TechVcas, false, CostBST, wl, 0) })
			hw := sweep(m, func() []OpSpec { return BuildOps(m, TechVcas, true, CostBST, wl, 0) })
			return at(hw, 192) / at(lg, 192)
		}
		s10 := speedup(Workload{0, 10, 90})
		s20 := speedup(Workload{0, 20, 80})
		if s10 < 2 {
			t.Fatalf("0-10-90 speedup = %.2fx, want >= 2x", s10)
		}
		if s20 <= s10 {
			t.Fatalf("speedup should grow with RQ rate: %.2fx (10%%) vs %.2fx (20%%)", s10, s20)
		}
		if s20 < 3.5 || s20 > 8 {
			t.Fatalf("0-20-80 speedup = %.2fx, want ~5.5x", s20)
		}
		// Update-only: identical (RQs advance the timestamp in vCAS).
		lg := sweep(m, func() []OpSpec { return BuildOps(m, TechVcas, false, CostBST, Workload{100, 0, 0}, 0) })
		hw := sweep(m, func() []OpSpec { return BuildOps(m, TechVcas, true, CostBST, Workload{100, 0, 0}, 0) })
		r := at(hw, 192) / at(lg, 192)
		if r < 0.9 || r > 1.25 {
			t.Fatalf("100-0-0 ratio = %.2fx, want ~1x", r)
		}
	})

	t.Run("fig3a: Bundling read-only is TSC-neutral", func(t *testing.T) {
		wl := Workload{0, 10, 90}
		lg := sweep(m, func() []OpSpec { return BuildOps(m, TechBundle, false, CostCitrus, wl, 0) })
		hw := sweep(m, func() []OpSpec { return BuildOps(m, TechBundle, true, CostCitrus, wl, 0) })
		r := at(hw, 192) / at(lg, 192)
		if r < 0.9 || r > 1.15 {
			t.Fatalf("bundle read-only ratio = %.2fx, want ~1x", r)
		}
	})

	t.Run("fig4: EBR-RQ gains little from TSC and cliffs past 24", func(t *testing.T) {
		wl := Workload{10, 10, 80}
		lg := sweep(m, func() []OpSpec { return BuildOps(m, TechEBR, false, CostCitrus, wl, 0) })
		hw := sweep(m, func() []OpSpec { return BuildOps(m, TechEBR, true, CostCitrus, wl, 0) })
		r := at(hw, 192) / at(lg, 192)
		if r > 1.5 {
			t.Fatalf("EBR-RQ TSC speedup = %.2fx; the lock should cap it near 1x", r)
		}
		if at(hw, 192) > at(hw, 24)*1.5 {
			t.Fatalf("EBR-RQ should not scale far past one NUMA zone: 24t=%.1f, 192t=%.1f",
				at(hw, 24), at(hw, 192))
		}
	})

	t.Run("fig5: skip list gains only when update-heavy", func(t *testing.T) {
		speedup := func(wl Workload) float64 {
			lg := sweep(m, func() []OpSpec { return BuildOps(m, TechBundle, false, CostSkip, wl, SkipHotLines) })
			hw := sweep(m, func() []OpSpec { return BuildOps(m, TechBundle, true, CostSkip, wl, SkipHotLines) })
			return at(hw, 192) / at(lg, 192)
		}
		light := speedup(Workload{10, 10, 80})
		heavy := speedup(Workload{90, 10, 0})
		if light > 1.35 {
			t.Fatalf("read-heavy skip list speedup = %.2fx; the structure bottleneck should hide TSC", light)
		}
		if heavy < 1.4 {
			t.Fatalf("update-heavy skip list speedup = %.2fx, want > 1.4x", heavy)
		}
		if heavy <= light {
			t.Fatalf("speedup must grow with update rate: %.2f vs %.2f", light, heavy)
		}
	})

	t.Run("lazylist: traversal hides the timestamp", func(t *testing.T) {
		wl := Workload{10, 10, 80}
		lg := sweep(m, func() []OpSpec { return BuildOps(m, TechVcas, false, CostLazy, wl, 0) })
		hw := sweep(m, func() []OpSpec { return BuildOps(m, TechVcas, true, CostLazy, wl, 0) })
		r := at(hw, 192) / at(lg, 192)
		if r > 1.1 {
			t.Fatalf("lazy list TSC speedup = %.2fx, want ~1x", r)
		}
	})
}

func TestFigureBuilders(t *testing.T) {
	m := PaperMachine()
	// Smoke-build the lighter figures end to end (Figure 2/3 are large;
	// the reproduce binary runs them).
	for _, panels := range [][]Panel{Figure1(m), Figure5(m)} {
		for _, p := range panels {
			if len(p.Series) == 0 || len(p.Threads) != len(ThreadCounts) {
				t.Fatalf("panel %s malformed", p.ID)
			}
			for _, s := range p.Series {
				if len(s.Mops) != len(ThreadCounts) {
					t.Fatalf("panel %s series %s malformed", p.ID, s.Name)
				}
				for _, v := range s.Mops {
					if v <= 0 {
						t.Fatalf("panel %s series %s has nonpositive throughput", p.ID, s.Name)
					}
				}
			}
		}
	}
}

// Sensitivity: the qualitative conclusions must be stable across wide
// parameter ranges — EBR-RQ pinned near 1x, vCAS well above it.
func TestSensitivityQualitativeStability(t *testing.T) {
	heads := Headlines()
	idx := map[string]int{}
	for i, h := range heads {
		idx[h.Name] = i
	}
	for _, sw := range Sweeps() {
		for _, row := range RunSweep(sw, heads) {
			vcas := row.Ratios[idx["fig2e@192"]]
			ebr := row.Ratios[idx["fig4b@192"]]
			if vcas < 1.5 {
				t.Errorf("%s=%v: vCAS ratio collapsed to %.2fx", sw.Name, row.Value, vcas)
			}
			if ebr > 1.6 {
				t.Errorf("%s=%v: EBR-RQ ratio inflated to %.2fx", sw.Name, row.Value, ebr)
			}
			if vcas <= ebr {
				t.Errorf("%s=%v: ordering inverted (vCAS %.2fx <= EBR %.2fx)", sw.Name, row.Value, vcas, ebr)
			}
		}
	}
}

// §IV's final takeaway: a lock-free structure with non-blocking bulk
// operations on TSC beats the logical-timestamp state of the art "with
// half of the processing power (i.e., half the amount of cores)".
func TestHalfTheCoresTakeaway(t *testing.T) {
	m := PaperMachine()
	wl := Workload{0, 10, 90} // Figure 2a
	at := func(hw bool, threads int) float64 {
		return Run(m, Config{Threads: threads, DurationNs: simDuration,
			Ops: BuildOps(m, TechVcas, hw, CostBST, wl, 0)})
	}
	tscHalf := at(true, 96)
	logicalFull := at(false, 192)
	if tscHalf <= logicalFull {
		t.Fatalf("vCAS-TSC at 96 threads (%.1f Mops) should beat vCAS-Logical at 192 (%.1f Mops)",
			tscHalf, logicalFull)
	}
}

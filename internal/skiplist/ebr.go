package skiplist

import (
	"sync"
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/ebrrq"
	"tscds/internal/epoch"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
)

// This file implements the skip list + EBR-RQ combination the paper
// built but omitted (no TSC gains observed; see vcas.go for the quote).
// Nodes carry insertion/deletion labels assigned through the EBR-RQ
// provider; deleted nodes are retired to the epoch manager's limbo lists
// before being unlinked so range queries never lose them.

type eskipNode struct {
	key, val     uint64
	mu           sync.Mutex
	topLevel     int
	itime, dtime ebrrq.Label
	linked       atomic.Bool
	next         []atomic.Pointer[eskipNode]
}

func newEskipNode(key, val uint64, topLevel int) *eskipNode {
	n := &eskipNode{key: key, val: val, topLevel: topLevel}
	n.itime.Init()
	n.dtime.Init()
	n.next = make([]atomic.Pointer[eskipNode], topLevel)
	return n
}

// EBRList is the skip list with EBR-RQ range queries.
type EBRList struct {
	src      core.Source
	provider *ebrrq.Provider
	reg      *core.Registry
	em       *epoch.Manager[*eskipNode]
	tr       *trace.Recorder
	np       *pool.Pool[eskipNode] // nil in GC mode
	head     *eskipNode
	rngs     []core.PaddedUint64
}

// NewEBR creates an empty EBR-RQ skip list; the LockFree variant
// requires an addressable (logical) source.
func NewEBR(src core.Source, reg *core.Registry, variant ebrrq.Variant) (*EBRList, error) {
	var provider *ebrrq.Provider
	if variant == ebrrq.LockFree {
		p, err := ebrrq.NewLockFree(src)
		if err != nil {
			return nil, err
		}
		provider = p
	} else {
		provider = ebrrq.NewLockBased(src)
	}
	head := newEskipNode(0, 0, maxLevel)
	head.linked.Store(true)
	t := &EBRList{
		src:      src,
		provider: provider,
		reg:      reg,
		head:     head,
		rngs:     make([]core.PaddedUint64, reg.Cap()),
	}
	t.em = epoch.NewManager[*eskipNode](reg.Cap(),
		func(n *eskipNode, min core.TS) bool { return n.dtime.Get() >= min },
		reg.MinActiveRQ)
	return t, nil
}

// Source returns the list's timestamp source.
func (t *EBRList) Source() core.Source { return t.src }

// SetGC wires limbo-list reporting to g (nil disables it). Call before
// the list sees concurrent traffic.
func (t *EBRList) SetGC(g *obs.GC) { t.em.SetGC(g) }

// SetAlloc switches node allocation to the pooled/arena facade and —
// this being an EBR structure, where every traversal is pinned and the
// two-epoch prune margin therefore proves unreachability — closes the
// loop: pruned limbo nodes are recycled into the pool's free lists
// instead of dropped for the GC. Call before the list sees traffic.
func (t *EBRList) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[eskipNode](t.reg.Cap(), mode, ps)
	if t.np != nil {
		t.em.SetRecycle(func(n *eskipNode, tid int) { t.np.Put(tid, n) })
	}
}

// newNode acquires and fully re-initializes a node. Recycled memory
// carries stale state, and two resets are load-bearing: linked=false
// (Delete refuses to label a node whose insert has not fully linked —
// a recycled true would let a deleter label dtime before itime) and
// the label Inits (stale labels would make the node spuriously visible
// or invisible to snapshots). The level array keeps its maxLevel
// backing across reuses; Insert stores every in-range level before
// publication, so stale pointers are overwritten while still private.
func (t *EBRList) newNode(tid int, key, val uint64, topLevel int) *eskipNode {
	if t.np == nil {
		return newEskipNode(key, val, topLevel)
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.topLevel = topLevel
	n.itime.Init()
	n.dtime.Init()
	n.linked.Store(false)
	if cap(n.next) >= topLevel {
		n.next = n.next[:topLevel]
	} else {
		n.next = make([]atomic.Pointer[eskipNode], maxLevel)[:topLevel]
	}
	return n
}

// SetTrace attaches a flight recorder to the list, its labeling provider
// (lock-wait and label spans) and its epoch manager (pin/advance stalls).
// Call before the list sees concurrent traffic.
func (t *EBRList) SetTrace(tr *trace.Recorder) {
	t.tr = tr
	t.provider.SetTrace(tr)
	t.em.SetTrace(tr)
}

// SetReadBound routes the epoch pruner's minimum-bound through a
// retention watermark: with a non-zero window, limbo nodes whose
// deletion timestamps are inside the window survive pruning (and
// DrainAll) even with no range query in flight. A zero window keeps
// classic EBR-RQ behavior. EBR-RQ retains no per-key version history,
// so this extends limbo lifetimes only; it does not enable time-travel
// reads on this technique. Call before the list sees traffic.
func (t *EBRList) SetReadBound(rb *core.ReadBound) {
	if rb == nil || rb.Window() == 0 {
		return
	}
	reg := t.reg
	t.em.SetMinRQ(func() core.TS { return rb.PruneBound(reg) })
}

// noteRetries reports an update's validation-failure retries.
func (t *EBRList) noteRetries(th *core.Thread, retries uint64) {
	if t.tr == nil || retries == 0 {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
}

// LimboLen reports retained limbo nodes (tests).
func (t *EBRList) LimboLen() int { return t.em.LimboLen() }

// Drain eagerly advances the epoch and prunes every limbo list.
// Quiescent use only, like Len.
func (t *EBRList) Drain() { t.em.DrainAll() }

// Provider exposes the timestamp provider (cross-shard snapshot
// coordination and tests).
func (t *EBRList) Provider() *ebrrq.Provider { return t.provider }

func (t *EBRList) randLevel(tid int) int {
	x := t.rngs[tid].Load()
	if x == 0 {
		x = uint64(tid)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rngs[tid].Store(x)
	lvl := 1
	for x&1 == 1 && lvl < maxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

func (t *EBRList) find(key uint64, preds, succs *[maxLevel]*eskipNode) int {
	lFound := -1
	pred := t.head
	for l := maxLevel - 1; l >= 0; l-- {
		cur := pred.next[l].Load()
		for cur != nil && cur.key < key {
			pred = cur
			cur = cur.next[l].Load()
		}
		if lFound == -1 && cur != nil && cur.key == key {
			lFound = l
		}
		preds[l] = pred
		succs[l] = cur
	}
	return lFound
}

// Contains reports whether key is present (insert linearized, delete
// not).
func (t *EBRList) Contains(th *core.Thread, key uint64) bool {
	t.em.Pin(th.ID)
	defer t.em.Unpin(th.ID)
	pred := t.head
	for l := maxLevel - 1; l >= 0; l-- {
		cur := pred.next[l].Load()
		for cur != nil && cur.key < key {
			pred = cur
			cur = cur.next[l].Load()
		}
		if cur != nil && cur.key == key {
			return cur.itime.Get() != core.Pending && cur.dtime.Get() == core.Pending
		}
	}
	return false
}

// Get returns the value stored at key.
func (t *EBRList) Get(th *core.Thread, key uint64) (uint64, bool) {
	var preds, succs [maxLevel]*eskipNode
	t.em.Pin(th.ID)
	defer t.em.Unpin(th.ID)
	if l := t.find(key, &preds, &succs); l != -1 {
		n := succs[l]
		if n.itime.Get() != core.Pending && n.dtime.Get() == core.Pending {
			return n.val, true
		}
	}
	return 0, false
}

// eLockPreds locks the distinct predecessors of levels [0, top) into the
// caller-provided locked array and returns how many it took; eUnlockPreds
// releases them. The caller owns both arrays on its stack — the split
// (rather than returning an unlock closure) keeps the hot update path
// allocation-free.
func eLockPreds(preds, locked *[maxLevel]*eskipNode, top int) int {
	n := 0
	var prev *eskipNode
	for l := 0; l < top; l++ {
		if preds[l] != prev {
			preds[l].mu.Lock()
			locked[n] = preds[l]
			n++
			prev = preds[l]
		}
	}
	return n
}

func eUnlockPreds(locked *[maxLevel]*eskipNode, n int) {
	for i := 0; i < n; i++ {
		locked[i].mu.Unlock()
	}
}

func eAlive(n *eskipNode) bool { return n.dtime.Get() == core.Pending }

// Insert adds key with val; it returns false if already present.
func (t *EBRList) Insert(th *core.Thread, key, val uint64) bool {
	if key > MaxKey || key == 0 {
		return false
	}
	t.em.Pin(th.ID)
	defer t.em.Unpin(th.ID)
	topLevel := t.randLevel(th.ID)
	var preds, succs [maxLevel]*eskipNode
	var retries uint64
	for {
		if lFound := t.find(key, &preds, &succs); lFound != -1 {
			f := succs[lFound]
			if !eAlive(f) {
				retries++
				continue // deleted; unlink imminent
			}
			// Help its insert linearize before failing against it.
			t.provider.Label(&f.itime)
			t.noteRetries(th, retries)
			return false
		}
		var locked [maxLevel]*eskipNode
		nl := eLockPreds(&preds, &locked, topLevel)
		valid := true
		for l := 0; l < topLevel; l++ {
			succ := succs[l]
			if (preds[l] != t.head && !eAlive(preds[l])) ||
				preds[l].next[l].Load() != succ ||
				(succ != nil && !eAlive(succ)) {
				valid = false
				break
			}
		}
		if !valid {
			eUnlockPreds(&locked, nl)
			retries++
			continue
		}
		mark := t.tr.Now()
		n := t.newNode(th.ID, key, val, topLevel)
		t.tr.Span(th.ID, trace.PhaseAlloc, mark)
		for l := 0; l < topLevel; l++ {
			n.next[l].Store(succs[l])
		}
		preds[0].next[0].Store(n)
		t.provider.Label(&n.itime) // linearization
		for l := 1; l < topLevel; l++ {
			preds[l].next[l].Store(n)
		}
		n.linked.Store(true)
		eUnlockPreds(&locked, nl)
		t.noteRetries(th, retries)
		return true
	}
}

// Delete removes key; it returns false if absent.
func (t *EBRList) Delete(th *core.Thread, key uint64) bool {
	t.em.Pin(th.ID)
	defer t.em.Unpin(th.ID)
	var preds, succs [maxLevel]*eskipNode
	lFound := t.find(key, &preds, &succs)
	if lFound == -1 {
		return false
	}
	victim := succs[lFound]
	if victim.itime.Get() == core.Pending {
		t.provider.Label(&victim.itime)
	}
	if !victim.linked.Load() || victim.topLevel != lFound+1 {
		return false
	}
	victim.mu.Lock()
	if !eAlive(victim) {
		victim.mu.Unlock()
		return false
	}
	// Scannable before unreachable, then linearize.
	t.em.Retire(th.ID, victim)
	t.provider.Label(&victim.dtime)
	var retries uint64
	for {
		var locked [maxLevel]*eskipNode
		nl := eLockPreds(&preds, &locked, victim.topLevel)
		valid := true
		for l := 0; l < victim.topLevel; l++ {
			if (preds[l] != t.head && !eAlive(preds[l])) ||
				preds[l].next[l].Load() != victim {
				valid = false
				break
			}
		}
		if valid {
			for l := victim.topLevel - 1; l >= 0; l-- {
				preds[l].next[l].Store(victim.next[l].Load())
			}
			eUnlockPreds(&locked, nl)
			victim.mu.Unlock()
			t.noteRetries(th, retries)
			return true
		}
		eUnlockPreds(&locked, nl)
		retries++
		t.find(key, &preds, &succs)
	}
}

// RangeQuery appends every pair in [lo,hi] as of one linearizable
// snapshot: live-list nodes passing the visibility predicate plus limbo
// nodes deleted after the bound.
func (t *EBRList) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		// The snapshot span covers the provider's exclusive-lock acquisition
		// (lock-based variant); the wait alone also lands in the shared
		// lock-wait aggregate.
		mark := tr.Now()
		s := t.provider.Snapshot()
		tr.Span(th.ID, trace.PhaseTimestamp, mark)
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.provider.Source(), s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s, and — for the
// lock-based variant — must have obtained s while holding this list's
// Provider RQLock, so every in-flight (read, label) pair on this shard
// settled at or below s. The reservation keeps limbo nodes with
// deletion labels at or below s scannable until the announcement lands.
func (t *EBRList) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if lo == 0 {
		lo = 1
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	t.em.Pin(th.ID)
	tr := t.tr
	th.AnnounceRQ(s)

	acc := make(map[uint64]uint64)
	// Current-state walk: position via the index, then sweep level 0.
	mark := tr.Now()
	pred := t.head
	for l := maxLevel - 1; l >= 1; l-- {
		cur := pred.next[l].Load()
		for cur != nil && cur.key < lo {
			pred = cur
			cur = cur.next[l].Load()
		}
	}
	for cur := pred.next[0].Load(); cur != nil && cur.key <= hi; cur = cur.next[0].Load() {
		if cur.key >= lo && ebrrq.VisibleAt(cur.itime.Get(), cur.dtime.Get(), s) {
			acc[cur.key] = cur.val
		}
	}
	tr.Span(th.ID, trace.PhaseTraverse, mark)
	mark = tr.Now()
	t.em.ForEachRetired(func(n *eskipNode) bool {
		if n.key >= lo && n.key <= hi && ebrrq.VisibleAt(n.itime.Get(), n.dtime.Get(), s) {
			acc[n.key] = n.val
		}
		return true
	})
	tr.Span(th.ID, trace.PhaseLimboScan, mark)

	t.em.Unpin(th.ID)
	th.DoneRQ()
	for k, v := range acc {
		out = append(out, core.KV{Key: k, Val: v})
	}
	return out
}

// Len counts present keys; quiescent use only.
func (t *EBRList) Len() int {
	n := 0
	for cur := t.head.next[0].Load(); cur != nil; cur = cur.next[0].Load() {
		if eAlive(cur) {
			n++
		}
	}
	return n
}

// Package skiplist is a lock-based lazy skip list (Herlihy, Lev, Luchangco,
// Shavit, "A simple optimistic skiplist algorithm", SIROCCO 2007)
// augmented with bundled references on the bottom-level links — the
// combination of the paper's Figure 5, where TSC helps only update-heavy
// mixes because the skip list's own traversal, not the timestamp,
// bounds read-heavy throughput.
//
// Linearization protocol. Every node carries an insertion timestamp and
// a deletion timestamp in addition to its bundle entries:
//
//	its: Pending -> t   (assigned by the inserting op)
//	dts: 0 -> Pending -> t  (0 = alive, Pending = delete claimed,
//	                         t = delete linearized)
//
// Updates assign the node label BEFORE finalizing the bundle entries with
// the same timestamp. Elemental reads treat a Pending label as "the
// update has not linearized yet". This single-instant discipline keeps
// contains and range queries mutually linearizable: once a range query
// can observe an update through a finalized bundle entry, every later
// contains observes its node label, and vice versa.
package skiplist

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tscds/internal/bundle"
	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
)

// maxLevel supports ~2^20 keys with p = 1/2.
const maxLevel = 20

// MaxKey is the largest insertable key.
const MaxKey = ^uint64(0) - 2

type node struct {
	key, val    uint64
	mu          sync.Mutex
	fullyLinked atomic.Bool
	its, dts    atomic.Uint64
	topLevel    int // number of levels this node occupies (1..maxLevel)
	next        []atomic.Pointer[node]
	bnd         bundle.Bundle[node]
}

func newNode(key, val uint64, topLevel int) *node {
	n := &node{key: key, val: val, topLevel: topLevel}
	n.next = make([]atomic.Pointer[node], topLevel)
	n.its.Store(uint64(core.Pending))
	return n
}

// removable reports whether the node counts as logically present for
// link validation (not deleted nor claimed by a deleter).
func alive(n *node) bool { return n.dts.Load() == 0 }

// List is the bundled skip list.
type List struct {
	src  core.Source
	reg  *core.Registry
	gc   *obs.GC
	tr   *trace.Recorder
	np   *pool.Pool[node]
	ep   *pool.Pool[bundle.Entry[node]]
	rb   *core.ReadBound
	head *node
	rngs []core.PaddedUint64 // per-thread xorshift state for level draws
}

// New creates an empty list over the given source and registry.
func New(src core.Source, reg *core.Registry) *List {
	head := newNode(0, 0, maxLevel)
	head.its.Store(0)
	head.fullyLinked.Store(true)
	head.bnd.Init(nil)
	return &List{
		src:  src,
		reg:  reg,
		head: head,
		rngs: make([]core.PaddedUint64, reg.Cap()),
	}
}

// Source returns the list's timestamp source.
func (t *List) Source() core.Source { return t.src }

// SetGC wires reclamation reporting to g (nil disables it). Call before
// the list sees concurrent traffic.
func (t *List) SetGC(g *obs.GC) { t.gc = g }

// SetTrace attaches a flight recorder (nil disables it). Call before the
// list sees concurrent traffic.
func (t *List) SetTrace(tr *trace.Recorder) { t.tr = tr }

// SetReadBound routes bundle-entry truncation through a retention
// watermark (time-travel reads). Call before the list sees traffic.
func (t *List) SetReadBound(rb *core.ReadBound) { t.rb = rb }

// SetAlloc selects the allocation mode for nodes and bundle entries (see
// Config.Alloc). The bundled list has no reclamation scheme for nodes —
// unlinked nodes and truncated entry tails stay reachable to in-flight
// readers and are dropped to the GC — so pooling here is allocation-side
// only: arena chunking and sync.Pool batching, never recycling of
// published memory. Call before the list sees concurrent traffic.
func (t *List) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[node](t.reg.Cap(), mode, ps)
	t.ep = pool.New[bundle.Entry[node]](t.reg.Cap(), mode, ps)
}

// newNodeIn is newNode drawing from the node pool when one is configured.
// Nodes are never Put back (no reclamation), so pooled memory is always
// fresh from an arena chunk or the allocator; the reset mirrors newNode
// regardless, keeping the constructor correct if recycling is ever added.
func (t *List) newNodeIn(tid int, key, val uint64, topLevel int) *node {
	if t.np == nil {
		return newNode(key, val, topLevel)
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.topLevel = topLevel
	n.its.Store(uint64(core.Pending))
	n.dts.Store(0)
	n.fullyLinked.Store(false)
	if cap(n.next) >= topLevel {
		n.next = n.next[:topLevel]
		for l := range n.next {
			n.next[l].Store(nil)
		}
	} else {
		n.next = make([]atomic.Pointer[node], topLevel)
	}
	return n
}

// noteRetries reports an update's validation-failure retries.
func (t *List) noteRetries(th *core.Thread, retries uint64) {
	if t.tr == nil || retries == 0 {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
}

func (t *List) randLevel(tid int) int {
	x := t.rngs[tid].Load()
	if x == 0 {
		x = uint64(tid)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rngs[tid].Store(x)
	lvl := 1
	for x&1 == 1 && lvl < maxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

// find fills preds/succs per level and returns the highest level at
// which key was found (-1 if absent). Head is below every key.
func (t *List) find(key uint64, preds, succs *[maxLevel]*node) int {
	lFound := -1
	pred := t.head
	for l := maxLevel - 1; l >= 0; l-- {
		cur := pred.next[l].Load()
		for cur != nil && cur.key < key {
			pred = cur
			cur = cur.next[l].Load()
		}
		if lFound == -1 && cur != nil && cur.key == key {
			lFound = l
		}
		preds[l] = pred
		succs[l] = cur
	}
	return lFound
}

// Contains reports whether key is present. A node whose insertion label
// is still pending has not linearized; a node whose deletion label is
// claimed but unassigned still has.
func (t *List) Contains(_ *core.Thread, key uint64) bool {
	pred := t.head
	for l := maxLevel - 1; l >= 0; l-- {
		cur := pred.next[l].Load()
		for cur != nil && cur.key < key {
			pred = cur
			cur = cur.next[l].Load()
		}
		if cur != nil && cur.key == key {
			if cur.its.Load() == uint64(core.Pending) {
				return false // insert not yet linearized
			}
			d := cur.dts.Load()
			return d == 0 || d == uint64(core.Pending)
		}
	}
	return false
}

// Get returns the value stored at key.
func (t *List) Get(th *core.Thread, key uint64) (uint64, bool) {
	var preds, succs [maxLevel]*node
	if l := t.find(key, &preds, &succs); l != -1 {
		n := succs[l]
		if n.its.Load() == uint64(core.Pending) {
			return 0, false
		}
		if d := n.dts.Load(); d == 0 || d == uint64(core.Pending) {
			return n.val, true
		}
	}
	return 0, false
}

// lockPreds locks preds[0..top-1] bottom-up with duplicate elision and
// returns an unlock function.
func lockPreds(preds *[maxLevel]*node, top int) func() {
	var locked [maxLevel]*node
	n := 0
	var prev *node
	for l := 0; l < top; l++ {
		if preds[l] != prev {
			preds[l].mu.Lock()
			locked[n] = preds[l]
			n++
			prev = preds[l]
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			locked[i].mu.Unlock()
		}
	}
}

// Insert adds key with val; it returns false if already present.
func (t *List) Insert(th *core.Thread, key, val uint64) bool {
	if key > MaxKey || key == 0 {
		// 0 is the head sentinel's slot; the facade offsets keys.
		return false
	}
	topLevel := t.randLevel(th.ID)
	var preds, succs [maxLevel]*node
	var retries uint64
	for {
		if lFound := t.find(key, &preds, &succs); lFound != -1 {
			f := succs[lFound]
			// Wait out an in-flight insert label (a few instructions).
			for f.its.Load() == uint64(core.Pending) {
				runtime.Gosched()
			}
			if d := f.dts.Load(); d != 0 && d != uint64(core.Pending) {
				retries++
				continue // deleted; its unlink is imminent — retry
			}
			for !f.fullyLinked.Load() {
				runtime.Gosched()
			}
			t.noteRetries(th, retries)
			return false
		}
		unlock := lockPreds(&preds, topLevel)
		valid := true
		for l := 0; l < topLevel; l++ {
			succ := succs[l]
			if !alive(preds[l]) || preds[l].next[l].Load() != succ ||
				(succ != nil && !alive(succ)) {
				valid = false
				break
			}
		}
		if !valid {
			unlock()
			retries++
			continue
		}
		am := t.tr.Now()
		n := t.newNodeIn(th.ID, key, val, topLevel)
		t.tr.Span(th.ID, trace.PhaseAlloc, am)
		for l := 0; l < topLevel; l++ {
			n.next[l].Store(succs[l])
		}
		// The Prepare..Finalize window is bundling's labeling phase.
		lb := t.tr.Now()
		eInit := n.bnd.InitPendingIn(t.ep, th.ID, succs[0])
		ePred := preds[0].bnd.PrepareIn(t.ep, th.ID, n)
		preds[0].next[0].Store(n)
		ts := t.src.Advance()
		n.its.Store(ts) // label first: contains agrees with snapshots
		preds[0].bnd.Finalize(ePred, ts)
		n.bnd.Finalize(eInit, ts)
		t.tr.Span(th.ID, trace.PhaseLabel, lb)
		for l := 1; l < topLevel; l++ {
			preds[l].next[l].Store(n)
		}
		n.fullyLinked.Store(true)
		t.maybeTruncate(preds[0], key)
		unlock()
		t.noteRetries(th, retries)
		return true
	}
}

// Delete removes key; it returns false if absent.
func (t *List) Delete(th *core.Thread, key uint64) bool {
	var preds, succs [maxLevel]*node
	lFound := t.find(key, &preds, &succs)
	if lFound == -1 {
		return false
	}
	victim := succs[lFound]
	for victim.its.Load() == uint64(core.Pending) {
		runtime.Gosched()
	}
	if !victim.fullyLinked.Load() || victim.topLevel != lFound+1 {
		return false
	}
	victim.mu.Lock()
	if victim.dts.Load() != 0 {
		victim.mu.Unlock()
		return false
	}
	victim.dts.Store(uint64(core.Pending)) // claim; not yet linearized
	var retries uint64
	for {
		unlock := lockPreds(&preds, victim.topLevel)
		valid := true
		for l := 0; l < victim.topLevel; l++ {
			if !alive(preds[l]) || preds[l].next[l].Load() != victim {
				valid = false
				break
			}
		}
		if valid {
			lb := t.tr.Now()
			ePred := preds[0].bnd.PrepareIn(t.ep, th.ID, victim.next[0].Load())
			ts := t.src.Advance()
			victim.dts.Store(ts) // linearization of the delete
			preds[0].bnd.Finalize(ePred, ts)
			t.tr.Span(th.ID, trace.PhaseLabel, lb)
			for l := victim.topLevel - 1; l >= 0; l-- {
				preds[l].next[l].Store(victim.next[l].Load())
			}
			t.maybeTruncate(preds[0], key)
			unlock()
			victim.mu.Unlock()
			t.noteRetries(th, retries)
			return true
		}
		unlock()
		retries++
		t.find(key, &preds, &succs)
	}
}

func (t *List) maybeTruncate(n *node, key uint64) {
	if key%64 != 0 {
		return
	}
	dropped := n.bnd.Truncate(core.PruneBoundOf(t.rb, t.reg))
	if t.gc != nil && dropped > 0 {
		t.gc.BundlePruned.Add(uint64(dropped))
	}
}

// visibleAt reports membership of n in the snapshot at bound s under the
// its/dts protocol.
func visibleAt(n *node, s core.TS) bool {
	it := n.its.Load()
	if it == uint64(core.Pending) || it > s {
		return false
	}
	d := n.dts.Load()
	return d == 0 || d == uint64(core.Pending) || d > s
}

// RangeQuery appends every pair with lo <= key <= hi as of one
// linearizable snapshot. The upper levels (untimestamped) only position
// the query near lo; the walk itself follows bottom-level bundles.
func (t *List) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		mark := tr.Now()
		s := t.src.Peek()
		tr.Span(th.ID, trace.PhaseTimestamp, mark)
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.src, s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s; the reservation
// keeps bundle entries labeled at or below s from being truncated before
// the announcement lands here.
func (t *List) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if lo == 0 {
		lo = 1
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	tr := t.tr
	th.AnnounceRQ(s)

	// Position via the current index, then verify the landing point was
	// part of the snapshot; if not (inserted or deleted around s), fall
	// back to the head, which is in every snapshot.
	mark := tr.Now()
	pred := t.head
	for l := maxLevel - 1; l >= 0; l-- {
		cur := pred.next[l].Load()
		for cur != nil && cur.key < lo {
			pred = cur
			cur = cur.next[l].Load()
		}
	}
	if pred != t.head && !visibleAt(pred, s) {
		pred = t.head
	}
	var derefs, spins uint64
	cur, ok, d, sp := pred.bnd.PtrAtWalk(s)
	derefs, spins = uint64(d), uint64(sp)
	for ok && cur != nil && cur.key <= hi {
		if cur.key >= lo {
			out = append(out, core.KV{Key: cur.key, Val: cur.val})
		}
		cur, ok, d, sp = cur.bnd.PtrAtWalk(s)
		derefs += uint64(d)
		spins += uint64(sp)
	}
	tr.Span(th.ID, trace.PhaseTraverse, mark)
	tr.Count(th.ID, trace.PhaseBundleDeref, derefs)
	tr.Count(th.ID, trace.PhasePendingWait, spins)
	th.DoneRQ()
	return out
}

// Len counts present keys; quiescent use only (tests).
func (t *List) Len() int {
	n := 0
	for cur := t.head.next[0].Load(); cur != nil; cur = cur.next[0].Load() {
		n++
	}
	return n
}

package skiplist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tscds/internal/core"
	"tscds/internal/ebrrq"
)

func newList(kind core.Kind, threads int) (*List, *core.Registry) {
	reg := core.NewRegistry(threads)
	return New(core.New(kind), reg), reg
}

func TestEmpty(t *testing.T) {
	l, reg := newList(core.Logical, 1)
	th := reg.MustRegister()
	if l.Contains(th, 5) || l.Delete(th, 5) || l.Len() != 0 {
		t.Fatal("empty list misbehaved")
	}
	if got := l.RangeQuery(th, 1, MaxKey, nil); len(got) != 0 {
		t.Fatalf("empty range = %v", got)
	}
}

func TestBasicOps(t *testing.T) {
	l, reg := newList(core.TSC, 1)
	th := reg.MustRegister()
	if !l.Insert(th, 5, 50) || l.Insert(th, 5, 51) {
		t.Fatal("insert semantics")
	}
	if v, ok := l.Get(th, 5); !ok || v != 50 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if !l.Delete(th, 5) || l.Contains(th, 5) || l.Delete(th, 5) {
		t.Fatal("delete semantics")
	}
}

func TestKeyZeroRejected(t *testing.T) {
	l, reg := newList(core.Logical, 1)
	th := reg.MustRegister()
	if l.Insert(th, 0, 1) {
		t.Fatal("key 0 (head sentinel) insertable")
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	l, reg := newList(core.TSC, 1)
	th := reg.MustRegister()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 15000; i++ {
		k := uint64(rng.Intn(400) + 1)
		switch rng.Intn(4) {
		case 0, 1:
			_, exists := model[k]
			if got := l.Insert(th, k, k+1); got == exists {
				t.Fatalf("op %d: Insert(%d)=%v exists=%v", i, k, got, exists)
			}
			if !exists {
				model[k] = k + 1
			}
		case 2:
			_, exists := model[k]
			if got := l.Delete(th, k); got != exists {
				t.Fatalf("op %d: Delete(%d)=%v exists=%v", i, k, got, exists)
			}
			delete(model, k)
		default:
			_, exists := model[k]
			if got := l.Contains(th, k); got != exists {
				t.Fatalf("op %d: Contains(%d)=%v want %v", i, k, got, exists)
			}
		}
	}
	if l.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", l.Len(), len(model))
	}
	got := l.RangeQuery(th, 1, MaxKey, nil)
	if len(got) != len(model) {
		t.Fatalf("range=%d model=%d", len(got), len(model))
	}
	for _, kv := range got {
		if v, ok := model[kv.Key]; !ok || v != kv.Val {
			t.Fatalf("kv %v model (%d,%v)", kv, v, ok)
		}
	}
}

func TestRangeQuerySortedAndBounded(t *testing.T) {
	l, reg := newList(core.Logical, 1)
	th := reg.MustRegister()
	for k := uint64(10); k <= 200; k += 10 {
		l.Insert(th, k, k)
	}
	got := l.RangeQuery(th, 35, 95, nil)
	want := []uint64{40, 50, 60, 70, 80, 90}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i, kv := range got {
		if kv.Key != want[i] {
			t.Fatalf("range[%d] = %d, want %d (results must be sorted)", i, kv.Key, want[i])
		}
	}
}

func TestConcurrentStriped(t *testing.T) {
	for _, kind := range []core.Kind{core.Logical, core.TSC} {
		l, reg := newList(kind, 8)
		const gs = 4
		const per = 1200
		var wg sync.WaitGroup
		for g := 0; g < gs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				base := uint64(g*100_000 + 1)
				for i := uint64(0); i < per; i++ {
					if !l.Insert(th, base+i, i) {
						t.Errorf("insert %d failed", base+i)
						return
					}
				}
				for i := uint64(0); i < per; i += 2 {
					if !l.Delete(th, base+i) {
						t.Errorf("delete %d failed", base+i)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if n := l.Len(); n != gs*per/2 {
			t.Fatalf("%v: Len=%d want %d", kind, n, gs*per/2)
		}
	}
}

func TestConcurrentContendedAccounting(t *testing.T) {
	l, reg := newList(core.TSC, 8)
	const gs = 4
	var ins, del [gs]int
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := reg.MustRegister()
			defer th.Release()
			rng := rand.New(rand.NewSource(int64(g * 31)))
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(30) + 1)
				if rng.Intn(2) == 0 {
					if l.Insert(th, k, k) {
						ins[g]++
					}
				} else if l.Delete(th, k) {
					del[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	ti, td := 0, 0
	for g := range ins {
		ti += ins[g]
		td += del[g]
	}
	if got := l.Len(); got != ti-td {
		t.Fatalf("Len=%d inserts-deletes=%d", got, ti-td)
	}
}

func TestSnapshotPrefixDuringInserts(t *testing.T) {
	for _, kind := range []core.Kind{core.Logical, core.TSC} {
		t.Run(kind.String(), func(t *testing.T) {
			l, reg := newList(kind, 4)
			const n = 4000
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for k := uint64(1); k <= n; k++ {
					l.Insert(th, k, k)
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for {
					got := l.RangeQuery(th, 1, n, nil)
					for i, kv := range got {
						if kv.Key != uint64(i+1) {
							t.Errorf("snapshot gap: position %d holds %d", i, kv.Key)
							return
						}
					}
					if len(got) == n {
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}

func TestSnapshotSuffixDuringDeletes(t *testing.T) {
	l, reg := newList(core.TSC, 4)
	const n = 4000
	{
		th := reg.MustRegister()
		for k := uint64(1); k <= n; k++ {
			l.Insert(th, k, k)
		}
		th.Release()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		for k := uint64(1); k <= n; k++ {
			l.Delete(th, k)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		for {
			got := l.RangeQuery(th, 1, n, nil)
			if len(got) == 0 {
				return
			}
			first := got[0].Key
			for i, kv := range got {
				if kv.Key != first+uint64(i) {
					t.Errorf("snapshot not a suffix at %d: %d (first %d)", i, kv.Key, first)
					return
				}
			}
			if got[len(got)-1].Key != n {
				t.Errorf("suffix truncated: ends at %d", got[len(got)-1].Key)
				return
			}
		}
	}()
	wg.Wait()
}

// Mid-range queries exercise the index-landing fallback while churn
// deletes and reinserts keys around the range boundary.
func TestMidRangeSnapshotUnderChurn(t *testing.T) {
	l, reg := newList(core.TSC, 4)
	const n = 2000
	th0 := reg.MustRegister()
	for k := uint64(1); k <= n; k++ {
		l.Insert(th0, k, k)
	}
	th0.Release()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := reg.MustRegister()
		defer th.Release()
		rng := rand.New(rand.NewSource(17))
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Churn odd keys near the range start so the landing pred
			// is frequently deleted/reinserted.
			k := uint64(rng.Intn(n) + 1)
			if k%2 == 1 {
				if l.Delete(th, k) {
					l.Insert(th, k, k)
				}
			}
		}
	}()
	th := reg.MustRegister()
	for round := 0; round < 300; round++ {
		lo := uint64(round%1500 + 1)
		hi := lo + 100
		got := l.RangeQuery(th, lo, hi, nil)
		// Even keys are stable: each even key in [lo,hi] must appear
		// exactly once, in order.
		var evens []uint64
		for _, kv := range got {
			if kv.Key%2 == 0 {
				evens = append(evens, kv.Key)
			}
		}
		var want []uint64
		for k := lo; k <= hi && k <= n; k++ {
			if k%2 == 0 {
				want = append(want, k)
			}
		}
		if len(evens) != len(want) {
			t.Fatalf("round %d [%d,%d]: stable keys %v, want %v", round, lo, hi, evens, want)
		}
		for i := range want {
			if evens[i] != want[i] {
				t.Fatalf("round %d: stable key mismatch %v vs %v", round, evens, want)
			}
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
			t.Fatalf("round %d: unsorted snapshot %v", round, got)
		}
	}
	th.Release()
	close(stop)
	wg.Wait()
}

func TestBundleHistoryBounded(t *testing.T) {
	l, reg := newList(core.Logical, 2)
	th := reg.MustRegister()
	for i := 0; i < 30000; i++ {
		l.Insert(th, 64, 1)
		l.Delete(th, 64)
	}
	// The head's bundle absorbs entries for key 64's pred (which is
	// head); truncation must keep it bounded.
	if n := l.head.bnd.Len(); n > 1000 {
		t.Fatalf("head bundle grew unbounded: %d entries", n)
	}
}

func TestRandLevelDistribution(t *testing.T) {
	l, reg := newList(core.Logical, 2)
	_ = reg
	counts := make([]int, maxLevel+1)
	for i := 0; i < 100000; i++ {
		lvl := l.randLevel(0)
		if lvl < 1 || lvl > maxLevel {
			t.Fatalf("level %d out of range", lvl)
		}
		counts[lvl]++
	}
	if counts[1] < 40000 || counts[1] > 60000 {
		t.Fatalf("level-1 frequency %d not ~50%%", counts[1])
	}
	if counts[2] < 20000 || counts[2] > 30000 {
		t.Fatalf("level-2 frequency %d not ~25%%", counts[2])
	}
}

// ---- vCAS and EBR-RQ variants (the paper's omitted combinations) ----

type anyList interface {
	Insert(th *core.Thread, key, val uint64) bool
	Delete(th *core.Thread, key uint64) bool
	Contains(th *core.Thread, key uint64) bool
	Get(th *core.Thread, key uint64) (uint64, bool)
	RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV
	Len() int
}

func allVariants(t *testing.T) map[string]func(core.Kind, int) (anyList, *core.Registry) {
	t.Helper()
	return map[string]func(core.Kind, int) (anyList, *core.Registry){
		"bundle": func(k core.Kind, n int) (anyList, *core.Registry) {
			reg := core.NewRegistry(n)
			return New(core.New(k), reg), reg
		},
		"vcas": func(k core.Kind, n int) (anyList, *core.Registry) {
			reg := core.NewRegistry(n)
			return NewVcas(core.New(k), reg), reg
		},
		"ebr-lock": func(k core.Kind, n int) (anyList, *core.Registry) {
			reg := core.NewRegistry(n)
			l, err := NewEBR(core.New(k), reg, ebrrq.LockBased)
			if err != nil {
				t.Fatal(err)
			}
			return l, reg
		},
		"ebr-lockfree": func(k core.Kind, n int) (anyList, *core.Registry) {
			reg := core.NewRegistry(n)
			l, err := NewEBR(core.New(core.Logical), reg, ebrrq.LockFree)
			if err != nil {
				t.Fatal(err)
			}
			return l, reg
		},
	}
}

func TestVariantEBRRejectsLockFreeTSC(t *testing.T) {
	reg := core.NewRegistry(1)
	if _, err := NewEBR(core.New(core.TSC), reg, ebrrq.LockFree); err == nil {
		t.Fatal("lock-free EBR-RQ skip list accepted TSC")
	}
}

func TestVariantSequentialModel(t *testing.T) {
	for name, mk := range allVariants(t) {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 2)
			th := reg.MustRegister()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(33))
			for i := 0; i < 10000; i++ {
				k := uint64(rng.Intn(300) + 1)
				switch rng.Intn(4) {
				case 0, 1:
					_, exists := model[k]
					if got := l.Insert(th, k, k*5); got == exists {
						t.Fatalf("op %d: Insert(%d)=%v exists=%v", i, k, got, exists)
					}
					if !exists {
						model[k] = k * 5
					}
				case 2:
					_, exists := model[k]
					if got := l.Delete(th, k); got != exists {
						t.Fatalf("op %d: Delete(%d)=%v exists=%v", i, k, got, exists)
					}
					delete(model, k)
				default:
					_, exists := model[k]
					if got := l.Contains(th, k); got != exists {
						t.Fatalf("op %d: Contains(%d)=%v want %v", i, k, got, exists)
					}
				}
			}
			if l.Len() != len(model) {
				t.Fatalf("Len=%d model=%d", l.Len(), len(model))
			}
			got := l.RangeQuery(th, 1, MaxKey, nil)
			if len(got) != len(model) {
				t.Fatalf("range=%d model=%d", len(got), len(model))
			}
			for _, kv := range got {
				if v, ok := model[kv.Key]; !ok || v != kv.Val {
					t.Fatalf("kv %v vs model (%d,%v)", kv, v, ok)
				}
			}
		})
	}
}

func TestVariantConcurrentAccounting(t *testing.T) {
	for name, mk := range allVariants(t) {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 8)
			const gs = 4
			var ins, del [gs]int
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := reg.MustRegister()
					defer th.Release()
					rng := rand.New(rand.NewSource(int64(g * 7)))
					for i := 0; i < 1500; i++ {
						k := uint64(rng.Intn(30) + 1)
						if rng.Intn(2) == 0 {
							if l.Insert(th, k, k) {
								ins[g]++
							}
						} else if l.Delete(th, k) {
							del[g]++
						}
					}
				}(g)
			}
			wg.Wait()
			ti, td := 0, 0
			for g := range ins {
				ti += ins[g]
				td += del[g]
			}
			if got := l.Len(); got != ti-td {
				t.Fatalf("Len=%d inserts-deletes=%d", got, ti-td)
			}
		})
	}
}

func TestVariantSnapshotPrefix(t *testing.T) {
	for name, mk := range allVariants(t) {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 4)
			const n = 2500
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for k := uint64(1); k <= n; k++ {
					l.Insert(th, k, k)
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for {
					got := l.RangeQuery(th, 1, n, nil)
					keys := make([]uint64, len(got))
					for i, kv := range got {
						keys[i] = kv.Key
					}
					sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
					for i, k := range keys {
						if k != uint64(i+1) {
							t.Errorf("snapshot gap at %d: %d", i, k)
							return
						}
					}
					if len(keys) == n {
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}

func TestVariantSnapshotSuffixDuringDeletes(t *testing.T) {
	for name, mk := range allVariants(t) {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 4)
			const n = 2000
			{
				th := reg.MustRegister()
				perm := rand.New(rand.NewSource(9)).Perm(n)
				for _, i := range perm {
					l.Insert(th, uint64(i+1), uint64(i+1))
				}
				th.Release()
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for k := uint64(1); k <= n; k++ {
					l.Delete(th, k)
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				for {
					got := l.RangeQuery(th, 1, n, nil)
					if len(got) == 0 {
						return
					}
					keys := make([]uint64, len(got))
					for i, kv := range got {
						keys[i] = kv.Key
					}
					sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
					for i, k := range keys {
						if k != keys[0]+uint64(i) {
							t.Errorf("snapshot not a suffix at %d: %d (first %d)", i, k, keys[0])
							return
						}
					}
					if keys[len(keys)-1] != n {
						t.Errorf("suffix missing tail %d", keys[len(keys)-1])
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}

// Mid-range landings under churn for every variant: the index may land
// on nodes outside the snapshot; each variant must recover (bundle:
// pending-init detection; vcas: dead-at-s fallback; ebr: limbo scans).
func TestVariantMidRangeUnderChurn(t *testing.T) {
	for name, mk := range allVariants(t) {
		t.Run(name, func(t *testing.T) {
			l, reg := mk(core.TSC, 4)
			const n = 1500
			th0 := reg.MustRegister()
			for k := uint64(1); k <= n; k++ {
				l.Insert(th0, k, k)
			}
			th0.Release()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := reg.MustRegister()
				defer th.Release()
				rng := rand.New(rand.NewSource(23))
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := uint64(rng.Intn(n) + 1)
					if k%2 == 1 {
						if l.Delete(th, k) {
							l.Insert(th, k, k)
						}
					}
				}
			}()
			th := reg.MustRegister()
			for round := 0; round < 200; round++ {
				lo := uint64(round%1200 + 1)
				hi := lo + 80
				got := l.RangeQuery(th, lo, hi, nil)
				seen := map[uint64]bool{}
				evens := 0
				for _, kv := range got {
					if kv.Key < lo || kv.Key > hi {
						t.Fatalf("round %d: key %d outside [%d,%d]", round, kv.Key, lo, hi)
					}
					if seen[kv.Key] {
						t.Fatalf("round %d: duplicate key %d", round, kv.Key)
					}
					seen[kv.Key] = true
					if kv.Key%2 == 0 {
						evens++
					}
				}
				want := 0
				for k := lo; k <= hi && k <= n; k++ {
					if k%2 == 0 {
						want++
					}
				}
				if evens != want {
					t.Fatalf("round %d [%d,%d]: stable keys %d, want %d", round, lo, hi, evens, want)
				}
			}
			th.Release()
			close(stop)
			wg.Wait()
		})
	}
}

package skiplist

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/obs"
	"tscds/internal/obs/trace"
	"tscds/internal/pool"
	"tscds/internal/vcas"
)

// This file implements the skip list + vCAS combination the paper
// built but omitted from its figures because TSC showed no gains there
// (§III: "We applied vCAS and EBR-RQ to the Skip List structure as
// well, however, since we did not observe performance gains with using
// TSC, we decided to omit them"). BenchmarkOmittedSkipList reproduces
// the non-result.
//
// Only the bottom-level links and a per-node liveness flag are
// versioned; the upper index levels are plain pointers used for
// positioning. A node's versioned "dead" flag starts true (labeled 0),
// is written false before the node is linked (so membership at snapshot
// bound s is exactly: reachable at s and not dead at s), and is written
// true again to linearize the delete.

type vskipNode struct {
	key, val uint64
	mu       sync.Mutex
	topLevel int
	dead     vcas.Object[bool]
	next0    vcas.Object[*vskipNode] // level 0, versioned
	upper    []atomic.Pointer[vskipNode]
	linked   atomic.Bool
}

func newVskipNode(key, val uint64, topLevel int) *vskipNode {
	n := &vskipNode{key: key, val: val, topLevel: topLevel}
	n.dead.Init(true) // not yet in any snapshot
	n.next0.Init(nil)
	if topLevel > 1 {
		n.upper = make([]atomic.Pointer[vskipNode], topLevel-1)
	}
	return n
}

func (n *vskipNode) nextAt(l int) *vskipNode {
	if l == 0 {
		panic("skiplist: nextAt(0) on versioned level")
	}
	return n.upper[l-1].Load()
}

// VcasList is the skip list with vCAS range queries.
type VcasList struct {
	src  core.Source
	reg  *core.Registry
	gc   *obs.GC
	tr   *trace.Recorder
	np   *pool.Pool[vskipNode]
	vp   *pool.Pool[vcas.Version[*vskipNode]]
	bp   *pool.Pool[vcas.Version[bool]]
	rb   *core.ReadBound
	head *vskipNode
	rngs []core.PaddedUint64
}

// NewVcas creates an empty vCAS skip list.
func NewVcas(src core.Source, reg *core.Registry) *VcasList {
	head := newVskipNode(0, 0, maxLevel)
	head.dead.Init(false) // head is in every snapshot
	head.linked.Store(true)
	return &VcasList{
		src:  src,
		reg:  reg,
		head: head,
		rngs: make([]core.PaddedUint64, reg.Cap()),
	}
}

// Source returns the list's timestamp source.
func (t *VcasList) Source() core.Source { return t.src }

// SetGC wires reclamation reporting to g (nil disables it). Call before
// the list sees concurrent traffic.
func (t *VcasList) SetGC(g *obs.GC) { t.gc = g }

// SetTrace attaches a flight recorder (nil disables it). Call before the
// list sees concurrent traffic.
func (t *VcasList) SetTrace(tr *trace.Recorder) { t.tr = tr }

// SetReadBound routes version-chain truncation through a retention
// watermark (time-travel reads). Call before the list sees traffic.
func (t *VcasList) SetReadBound(rb *core.ReadBound) { t.rb = rb }

// SetAlloc selects the allocation mode for nodes and vCAS versions (see
// Config.Alloc). Versions detached by Truncate stay readable to snapshot
// readers holding chain pointers, and unlinked nodes have no reclamation
// scheme, so nothing published is ever recycled here — the pools provide
// arena chunking and batching only. Call before concurrent traffic.
func (t *VcasList) SetAlloc(mode pool.Mode, ps *obs.PoolStats) {
	t.np = pool.New[vskipNode](t.reg.Cap(), mode, ps)
	t.vp = pool.New[vcas.Version[*vskipNode]](t.reg.Cap(), mode, ps)
	t.bp = pool.New[vcas.Version[bool]](t.reg.Cap(), mode, ps)
}

// newVskipNodeIn is newVskipNode drawing from the node pool when one is
// configured. next0 is left uninitialized: Insert always re-seeds it with
// the real successor, and seeding twice would waste a pooled version.
func (t *VcasList) newVskipNodeIn(tid int, key, val uint64, topLevel int) *vskipNode {
	if t.np == nil {
		return newVskipNode(key, val, topLevel)
	}
	n := t.np.Get(tid)
	n.key, n.val = key, val
	n.topLevel = topLevel
	n.linked.Store(false)
	n.dead.InitIn(t.bp, tid, true) // not yet in any snapshot
	if topLevel > 1 {
		n.upper = make([]atomic.Pointer[vskipNode], topLevel-1)
	} else {
		n.upper = nil
	}
	return n
}

// noteRetries reports an update's validation-failure retries.
func (t *VcasList) noteRetries(th *core.Thread, retries uint64) {
	if t.tr == nil || retries == 0 {
		return
	}
	t.tr.Count(th.ID, trace.PhaseRetry, retries)
}

func (t *VcasList) randLevel(tid int) int {
	x := t.rngs[tid].Load()
	if x == 0 {
		x = uint64(tid)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rngs[tid].Store(x)
	lvl := 1
	for x&1 == 1 && lvl < maxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

func (t *VcasList) loadNext(n *vskipNode, l int) *vskipNode {
	if l == 0 {
		return n.next0.Read(t.src)
	}
	return n.nextAt(l)
}

func (t *VcasList) find(key uint64, preds, succs *[maxLevel]*vskipNode) int {
	lFound := -1
	pred := t.head
	for l := maxLevel - 1; l >= 0; l-- {
		cur := t.loadNext(pred, l)
		for cur != nil && cur.key < key {
			pred = cur
			cur = t.loadNext(cur, l)
		}
		if lFound == -1 && cur != nil && cur.key == key {
			lFound = l
		}
		preds[l] = pred
		succs[l] = cur
	}
	return lFound
}

// Contains reports whether key is present.
func (t *VcasList) Contains(_ *core.Thread, key uint64) bool {
	pred := t.head
	for l := maxLevel - 1; l >= 0; l-- {
		cur := t.loadNext(pred, l)
		for cur != nil && cur.key < key {
			pred = cur
			cur = t.loadNext(cur, l)
		}
		if cur != nil && cur.key == key {
			return !cur.dead.Read(t.src)
		}
	}
	return false
}

// Get returns the value stored at key.
func (t *VcasList) Get(th *core.Thread, key uint64) (uint64, bool) {
	var preds, succs [maxLevel]*vskipNode
	if l := t.find(key, &preds, &succs); l != -1 && !succs[l].dead.Read(t.src) {
		return succs[l].val, true
	}
	return 0, false
}

func vLockPreds(preds *[maxLevel]*vskipNode, top int) func() {
	var locked [maxLevel]*vskipNode
	n := 0
	var prev *vskipNode
	for l := 0; l < top; l++ {
		if preds[l] != prev {
			preds[l].mu.Lock()
			locked[n] = preds[l]
			n++
			prev = preds[l]
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			locked[i].mu.Unlock()
		}
	}
}

// Insert adds key with val; it returns false if already present.
func (t *VcasList) Insert(th *core.Thread, key, val uint64) bool {
	if key > MaxKey || key == 0 {
		return false
	}
	topLevel := t.randLevel(th.ID)
	var preds, succs [maxLevel]*vskipNode
	var retries uint64
	for {
		if lFound := t.find(key, &preds, &succs); lFound != -1 {
			f := succs[lFound]
			if !f.dead.Read(t.src) {
				for !f.linked.Load() {
					runtime.Gosched()
				}
				t.noteRetries(th, retries)
				return false
			}
			retries++
			continue // dying node; its unlink is imminent
		}
		unlock := vLockPreds(&preds, topLevel)
		valid := true
		for l := 0; l < topLevel; l++ {
			succ := succs[l]
			if preds[l].dead.Read(t.src) || t.loadNext(preds[l], l) != succ ||
				(succ != nil && succ.dead.Read(t.src)) {
				valid = false
				break
			}
		}
		if !valid {
			unlock()
			retries++
			continue
		}
		am := t.tr.Now()
		n := t.newVskipNodeIn(th.ID, key, val, topLevel)
		t.tr.Span(th.ID, trace.PhaseAlloc, am)
		n.next0.InitIn(t.vp, th.ID, succs[0])
		for l := 1; l < topLevel; l++ {
			n.upper[l-1].Store(succs[l])
		}
		// Liveness first, then reachability: a snapshot that can reach
		// the node always sees it alive at that bound.
		n.dead.WriteIn(t.src, t.bp, th.ID, false)
		preds[0].next0.WriteIn(t.src, t.vp, th.ID, n)
		for l := 1; l < topLevel; l++ {
			preds[l].upper[l-1].Store(n)
		}
		n.linked.Store(true)
		t.maybeTruncate(preds[0], key)
		unlock()
		t.noteRetries(th, retries)
		return true
	}
}

// Delete removes key; it returns false if absent.
func (t *VcasList) Delete(th *core.Thread, key uint64) bool {
	var preds, succs [maxLevel]*vskipNode
	lFound := t.find(key, &preds, &succs)
	if lFound == -1 {
		return false
	}
	victim := succs[lFound]
	if !victim.linked.Load() || victim.topLevel != lFound+1 {
		return false
	}
	victim.mu.Lock()
	if victim.dead.Read(t.src) {
		victim.mu.Unlock()
		return false
	}
	victim.dead.WriteIn(t.src, t.bp, th.ID, true) // linearization of the delete
	var retries uint64
	for {
		unlock := vLockPreds(&preds, victim.topLevel)
		valid := true
		for l := 0; l < victim.topLevel; l++ {
			if (preds[l] != t.head && preds[l].dead.Read(t.src)) ||
				t.loadNext(preds[l], l) != victim {
				valid = false
				break
			}
		}
		if valid {
			for l := victim.topLevel - 1; l >= 1; l-- {
				preds[l].upper[l-1].Store(victim.nextAt(l))
			}
			preds[0].next0.WriteIn(t.src, t.vp, th.ID, victim.next0.Read(t.src))
			t.maybeTruncate(preds[0], key)
			unlock()
			victim.mu.Unlock()
			t.noteRetries(th, retries)
			return true
		}
		unlock()
		retries++
		t.find(key, &preds, &succs)
	}
}

func (t *VcasList) maybeTruncate(n *vskipNode, key uint64) {
	if key%64 != 0 {
		return
	}
	min := core.PruneBoundOf(t.rb, t.reg)
	dropped := n.next0.Truncate(min) + n.dead.Truncate(min)
	if t.gc != nil && dropped > 0 {
		t.gc.VersionsPruned.Add(uint64(dropped))
	}
}

// RangeQuery appends every pair in [lo,hi] as of one snapshot (vCAS
// style: the query advances the camera).
func (t *VcasList) RangeQuery(th *core.Thread, lo, hi uint64, out []core.KV) []core.KV {
	tr := t.tr
	base := len(out)
	for {
		th.BeginRQ()
		mark := tr.Now()
		s := t.src.Snapshot()
		tr.Span(th.ID, trace.PhaseTimestamp, mark)
		out = t.RangeQueryAt(th, lo, hi, s, out)
		if core.SnapshotValid(t.src, s) {
			return out
		}
		// Source generation switched under the query; the result may
		// tear the snapshot. Discard and retry with a fresh bound.
		tr.Span(th.ID, trace.PhaseSourceSwitch, mark)
		out = out[:base]
	}
}

// RangeQueryAt collects [lo, hi] as of the caller-provided bound s. The
// caller must have called th.BeginRQ before obtaining s; the reservation
// keeps versions labeled at or below s from being truncated before the
// announcement lands here.
func (t *VcasList) RangeQueryAt(th *core.Thread, lo, hi uint64, s core.TS, out []core.KV) []core.KV {
	if lo == 0 {
		lo = 1
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	tr := t.tr
	th.AnnounceRQ(s)

	// Position via the raw index; verify the landing point belongs to
	// the snapshot, else fall back to the head.
	mark := tr.Now()
	var walk uint64
	pred := t.head
	for l := maxLevel - 1; l >= 1; l-- {
		cur := pred.nextAt(l)
		for cur != nil && cur.key < lo {
			pred = cur
			cur = cur.nextAt(l)
		}
	}
	if pred != t.head {
		d, ok, h := pred.dead.ReadVersionWalk(t.src, s)
		walk += uint64(h)
		if !ok || d {
			pred = t.head
		}
	}
	cur, _, h := pred.next0.ReadVersionWalk(t.src, s)
	walk += uint64(h)
	for cur != nil && cur.key <= hi {
		if cur.key >= lo {
			d, ok, h := cur.dead.ReadVersionWalk(t.src, s)
			walk += uint64(h)
			if ok && !d {
				out = append(out, core.KV{Key: cur.key, Val: cur.val})
			}
		}
		cur, _, h = cur.next0.ReadVersionWalk(t.src, s)
		walk += uint64(h)
	}
	tr.Span(th.ID, trace.PhaseTraverse, mark)
	tr.Count(th.ID, trace.PhaseVersionWalk, walk)
	th.DoneRQ()
	return out
}

// Len counts present keys; quiescent use only.
func (t *VcasList) Len() int {
	n := 0
	for cur := t.head.next0.Read(t.src); cur != nil; cur = cur.next0.Read(t.src) {
		if !cur.dead.Read(t.src) {
			n++
		}
	}
	return n
}

package tsc

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Health monitors whether the machine's TSC actually delivers the two
// properties the paper's algorithms assume — monotonicity within a
// thread and agreement across threads — and degrades to a labeled
// warning state instead of letting skewed timestamps silently corrupt
// snapshot ordering.
//
// Detection works on a global max-chain: every Sample publishes the
// largest fenced reading seen so far. A sampler first loads that
// maximum and then issues RDTSCP; because RDTSCP waits for preceding
// instructions (including the load), a fresh reading *below* an
// already-published maximum is a genuine cross-thread ordering
// violation, not a race. Per-thread backsteps are tracked the same way
// against the thread's own last reading. The observed shortfalls bound
// pairwise core offsets from below.
//
// Like the rest of the observability layer, a nil *Health is inert.
type Health struct {
	createdAt  time.Time
	baseTSC    uint64
	ticksPerNS float64

	maxSeen   atomic.Uint64 // largest fenced reading published by any thread
	crossBack atomic.Uint64 // cross-thread regressions detected
	maxBack   atomic.Uint64 // worst regression magnitude (ticks)
	samples   atomic.Uint64

	// degraded is the fast-path flag consumed by adaptive timestamp
	// sources on their hot paths: one relaxed load answers "has any
	// fault been observed since the flag was last cleared". faultSeq
	// counts every observed fault (real, injected, or stall) and never
	// resets, so failback hysteresis can distinguish "flag cleared" from
	// "no new faults".
	degraded atomic.Uint32
	faultSeq atomic.Uint64
	injected atomic.Uint64 // synthetic faults from InjectBackstep
	stalls   atomic.Uint64 // stalled-source reports (AdvanceStrict gave up)

	// Source-switch telemetry reported by adaptive sources: failovers
	// (hardware -> logical), failbacks (logical -> hardware), and the
	// time spent inside the switch critical sections.
	switches     atomic.Uint64
	failbacks    atomic.Uint64
	switchNS     atomic.Uint64
	lastSwitchNS atomic.Uint64
	maxSwitchNS  atomic.Uint64

	slots []healthSlot

	mu     sync.Mutex
	probes []ProbeThread // last Probe results, per worker
}

// healthSlot is one registered thread's monitoring state (padded to its
// own cache lines, single-writer like core.Registry slots).
type healthSlot struct {
	_        [64]byte
	last     atomic.Uint64 // thread's previous fenced reading
	selfBack atomic.Uint64 // same-thread regressions
	count    atomic.Uint64
	lastCPU  atomic.Uint64 // IA32_TSC_AUX of the last sample
	_        [24]byte
}

// NewHealth builds a monitor for thread IDs in [0, maxThreads) and
// calibrates the tick→ns ratio against the wall clock over a short
// window (~2ms; irrelevant for the fallback clock, where the ratio is 1).
func NewHealth(maxThreads int) *Health {
	if maxThreads <= 0 {
		maxThreads = 1
	}
	h := &Health{
		createdAt: time.Now(),
		slots:     make([]healthSlot, maxThreads),
	}
	t0 := time.Now()
	c0 := ReadFenced()
	h.baseTSC = c0
	for time.Since(t0) < 2*time.Millisecond {
	}
	c1 := ReadFenced()
	if el := time.Since(t0); el > 0 && c1 > c0 {
		h.ticksPerNS = float64(c1-c0) / float64(el.Nanoseconds())
	} else {
		h.ticksPerNS = 1
	}
	h.maxSeen.Store(c1)
	return h
}

// TicksPerNS returns the calibrated TSC rate (0 for nil).
func (h *Health) TicksPerNS() float64 {
	if h == nil {
		return 0
	}
	return h.ticksPerNS
}

// Sample takes one fenced reading on the calling thread and checks it
// against the thread's previous reading and the global maximum. Call it
// from hot paths sparingly (e.g. once per range query); one sample costs
// two fenced reads' worth of atomics. Nil-safe.
func (h *Health) Sample(tid int) {
	if h == nil {
		return
	}
	prevMax := h.maxSeen.Load()
	now, cpu := ReadWithCPU()
	h.samples.Add(1)
	if now < prevMax {
		// RDTSCP ordered this read after the load of prevMax, so some
		// thread published a larger value before we read: a real
		// cross-thread monotonicity violation.
		h.crossBack.Add(1)
		h.noteBack(prevMax - now)
	} else {
		for {
			cur := h.maxSeen.Load()
			if now <= cur || h.maxSeen.CompareAndSwap(cur, now) {
				break
			}
		}
	}
	if tid >= 0 && tid < len(h.slots) {
		s := &h.slots[tid]
		if last := s.last.Load(); now < last {
			s.selfBack.Add(1)
			h.noteBack(last - now)
		}
		s.last.Store(now)
		s.count.Add(1)
		s.lastCPU.Store(uint64(cpu))
	}
}

func (h *Health) noteBack(delta uint64) {
	h.noteFault()
	for {
		cur := h.maxBack.Load()
		if delta <= cur || h.maxBack.CompareAndSwap(cur, delta) {
			return
		}
	}
}

// noteFault bumps the fault sequence and raises the degraded flag. The
// sequence is bumped first so a failback that observes the new sequence
// number can re-raise the flag it is about to clear.
func (h *Health) noteFault() {
	h.faultSeq.Add(1)
	h.degraded.Store(1)
}

// Degraded reports whether any fault — a cross-thread or same-thread
// regression, an injected backstep, or a stalled-source report — has
// been observed since the flag was last cleared. One atomic load;
// adaptive sources consult it on their timestamp hot paths. Nil-safe
// (false).
func (h *Health) Degraded() bool {
	return h != nil && h.degraded.Load() != 0
}

// ClearDegraded lowers the fast-path flag, typically after a failback
// once the fault hysteresis has elapsed. Cumulative fault counters and
// FaultSeq are untouched; any new fault re-raises the flag. Nil-safe.
func (h *Health) ClearDegraded() {
	if h != nil {
		h.degraded.Store(0)
	}
}

// RaiseDegraded re-raises the fast-path flag without recording a new
// fault. Adaptive sources use it to undo a ClearDegraded that raced
// with a concurrent fault (detected via FaultSeq). Nil-safe.
func (h *Health) RaiseDegraded() {
	if h != nil {
		h.degraded.Store(1)
	}
}

// FaultSeq returns a counter incremented on every observed fault. It
// never resets, so callers can detect "no new faults since I last
// looked" regardless of the degraded flag's state. Nil yields 0.
func (h *Health) FaultSeq() uint64 {
	if h == nil {
		return 0
	}
	return h.faultSeq.Load()
}

// InjectBackstep is the injectable fault hook: it simulates a TSC that
// jumped back by delta ticks by publishing a maximum delta above the
// current reading. The next genuine Sample on any thread then observes
// a real cross-thread regression, and the degraded flag is raised
// immediately so adaptive sources react without waiting for a sample.
// Test- and chaos-harness-only; nil-safe.
func (h *Health) InjectBackstep(delta uint64) {
	if h == nil {
		return
	}
	now := ReadFenced()
	for {
		cur := h.maxSeen.Load()
		target := now + delta
		if target <= cur || h.maxSeen.CompareAndSwap(cur, target) {
			break
		}
	}
	h.injected.Add(1)
	h.noteBack(delta)
}

// NoteStall records that a strict timestamp acquisition exhausted its
// spin budget against a source that would not move — the signature of a
// frozen or severely degraded counter. Counts as a fault. Nil-safe.
func (h *Health) NoteStall() {
	if h == nil {
		return
	}
	h.stalls.Add(1)
	h.noteFault()
}

// NoteSourceSwitch records one adaptive-source generation switch:
// failback false is a failover (hardware -> logical), true the return
// trip. d is the time spent inside the switch critical section. The
// counts and latencies surface on the /tschealth endpoint. Nil-safe.
func (h *Health) NoteSourceSwitch(failback bool, d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	if failback {
		h.failbacks.Add(1)
	} else {
		h.switches.Add(1)
	}
	h.switchNS.Add(ns)
	h.lastSwitchNS.Store(ns)
	for {
		cur := h.maxSwitchNS.Load()
		if ns <= cur || h.maxSwitchNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// ProbeThread is one worker's result from Probe.
type ProbeThread struct {
	Thread   int     `json:"thread"`
	CPU      uint32  `json:"cpu"`
	Samples  uint64  `json:"samples"`
	DriftPPM float64 `json:"drift_ppm"` // rate deviation vs. calibration
	MaxGapNS float64 `json:"max_gap_ns"`
}

// Probe runs an active cross-check: workers goroutines, each pinned to
// an OS thread, hammer fenced reads for the given duration while the
// max-chain detector watches for ordering violations, and each worker
// re-measures its local tick rate against the wall clock to estimate
// drift. Results land in the snapshot. Nil-safe (no-op).
func (h *Health) Probe(workers int, d time.Duration) {
	if h == nil {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(h.slots) {
		workers = len(h.slots)
	}
	if d <= 0 {
		d = 20 * time.Millisecond
	}
	results := make([]ProbeThread, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			t0 := time.Now()
			c0 := ReadFenced()
			var n uint64
			var maxGap uint64
			prev := c0
			for time.Since(t0) < d {
				h.Sample(tid)
				now := ReadFenced()
				if now > prev && now-prev > maxGap {
					maxGap = now - prev
				}
				prev = now
				n++
			}
			c1 := ReadFenced()
			el := time.Since(t0)
			res := ProbeThread{Thread: tid, Samples: n}
			_, res.CPU = ReadWithCPU()
			if el > 0 && c1 > c0 && h.ticksPerNS > 0 {
				local := float64(c1-c0) / float64(el.Nanoseconds())
				res.DriftPPM = (local - h.ticksPerNS) / h.ticksPerNS * 1e6
				res.MaxGapNS = float64(maxGap) / h.ticksPerNS
			}
			results[tid] = res
		}(w)
	}
	wg.Wait()
	h.mu.Lock()
	h.probes = results
	h.mu.Unlock()
}

// Health states, ordered by decreasing trust in the counter.
const (
	// StateHealthy: invariant TSC, no regressions observed.
	StateHealthy = "healthy"
	// StateDegraded: hardware TSC in use but regressions or heavy drift
	// were observed; timestamps may mis-order operations across cores.
	StateDegraded = "degraded"
	// StateFallback: no usable hardware TSC; accessors serve the
	// monotonic clock (correct, but with none of TSC's cost advantage).
	StateFallback = "fallback"
)

// ThreadHealth is one registered thread's passive-sampling state.
type ThreadHealth struct {
	Thread      int    `json:"thread"`
	Samples     uint64 `json:"samples"`
	SelfBack    uint64 `json:"self_regressions"`
	LastCPU     uint64 `json:"last_cpu"`
	OffsetTicks int64  `json:"offset_ticks"` // last reading minus global max (≤0 lag bound)
}

// HealthSnapshot is a point-in-time health report, JSON-ready for the
// /tschealth endpoint.
type HealthSnapshot struct {
	State            string         `json:"state"`
	Supported        bool           `json:"supported"`
	Invariant        bool           `json:"invariant"`
	TicksPerNS       float64        `json:"ticks_per_ns"`
	UptimeNS         int64          `json:"uptime_ns"`
	Samples          uint64         `json:"samples"`
	CrossRegressions uint64         `json:"cross_regressions"`
	MaxBackstepTicks uint64         `json:"max_backstep_ticks"`
	MaxBackstepNS    float64        `json:"max_backstep_ns"`
	InjectedFaults   uint64         `json:"injected_faults,omitempty"`
	SourceStalls     uint64         `json:"source_stalls,omitempty"`
	SourceSwitches   uint64         `json:"source_switches"`
	SourceFailbacks  uint64         `json:"source_failbacks"`
	SwitchTotalNS    uint64         `json:"switch_total_ns,omitempty"`
	LastSwitchNS     uint64         `json:"last_switch_ns,omitempty"`
	MaxSwitchNS      uint64         `json:"max_switch_ns,omitempty"`
	Threads          []ThreadHealth `json:"threads,omitempty"`
	Probes           []ProbeThread  `json:"probes,omitempty"`
	Warnings         []string       `json:"warnings,omitempty"`
}

// Snapshot summarizes everything observed so far. Nil yields a zero
// fallback-state report.
func (h *Health) Snapshot() HealthSnapshot {
	s := HealthSnapshot{
		Supported: Supported(),
		Invariant: Invariant(),
	}
	if h == nil {
		s.State = StateFallback
		return s
	}
	s.TicksPerNS = h.ticksPerNS
	s.UptimeNS = time.Since(h.createdAt).Nanoseconds()
	s.Samples = h.samples.Load()
	s.CrossRegressions = h.crossBack.Load()
	s.MaxBackstepTicks = h.maxBack.Load()
	if h.ticksPerNS > 0 {
		s.MaxBackstepNS = float64(s.MaxBackstepTicks) / h.ticksPerNS
	}
	s.InjectedFaults = h.injected.Load()
	s.SourceStalls = h.stalls.Load()
	s.SourceSwitches = h.switches.Load()
	s.SourceFailbacks = h.failbacks.Load()
	s.SwitchTotalNS = h.switchNS.Load()
	s.LastSwitchNS = h.lastSwitchNS.Load()
	s.MaxSwitchNS = h.maxSwitchNS.Load()
	var selfBack uint64
	max := h.maxSeen.Load()
	for i := range h.slots {
		sl := &h.slots[i]
		if sl.count.Load() == 0 {
			continue
		}
		th := ThreadHealth{
			Thread:   i,
			Samples:  sl.count.Load(),
			SelfBack: sl.selfBack.Load(),
			LastCPU:  sl.lastCPU.Load(),
		}
		th.OffsetTicks = int64(sl.last.Load()) - int64(max)
		selfBack += th.SelfBack
		s.Threads = append(s.Threads, th)
	}
	h.mu.Lock()
	s.Probes = append([]ProbeThread(nil), h.probes...)
	h.mu.Unlock()

	const driftWarnPPM = 500.0
	var worstDrift float64
	for _, p := range s.Probes {
		if d := p.DriftPPM; d > worstDrift || -d > worstDrift {
			if d < 0 {
				d = -d
			}
			worstDrift = d
		}
	}
	switch {
	case !Supported() || !Invariant():
		s.State = StateFallback
		if !Supported() {
			s.Warnings = append(s.Warnings, "no RDTSCP on this platform; accessors serve the monotonic clock")
		} else {
			s.Warnings = append(s.Warnings, "TSC is not invariant; accessors serve the monotonic clock")
		}
	case s.CrossRegressions > 0 || selfBack > 0 || worstDrift > driftWarnPPM ||
		s.InjectedFaults > 0 || s.SourceStalls > 0:
		s.State = StateDegraded
		if s.CrossRegressions > 0 {
			s.Warnings = append(s.Warnings, fmt.Sprintf(
				"%d cross-thread regression(s), worst backstep %.0fns: cores disagree; snapshot ordering may be violated",
				s.CrossRegressions, s.MaxBackstepNS))
		}
		if selfBack > 0 {
			s.Warnings = append(s.Warnings, fmt.Sprintf("%d same-thread regression(s) observed", selfBack))
		}
		if worstDrift > driftWarnPPM {
			s.Warnings = append(s.Warnings, fmt.Sprintf("per-core rate drift up to %.0f ppm vs. calibration", worstDrift))
		}
		if s.InjectedFaults > 0 {
			s.Warnings = append(s.Warnings, fmt.Sprintf("%d injected backstep(s) (fault-injection harness)", s.InjectedFaults))
		}
		if s.SourceStalls > 0 {
			s.Warnings = append(s.Warnings, fmt.Sprintf("%d stalled-source report(s): strict advance exhausted its spin budget", s.SourceStalls))
		}
	default:
		s.State = StateHealthy
	}
	return s
}

// String renders the snapshot as JSON (expvar-style Var).
func (h *Health) String() string {
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

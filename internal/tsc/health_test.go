package tsc

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.Sample(0)
	h.Probe(2, time.Millisecond)
	if h.TicksPerNS() != 0 {
		t.Fatal("nil TicksPerNS != 0")
	}
	s := h.Snapshot()
	if s.State != StateFallback {
		t.Fatalf("nil state = %q, want fallback", s.State)
	}
}

func TestHealthCalibration(t *testing.T) {
	h := NewHealth(4)
	if h.TicksPerNS() <= 0 {
		t.Fatalf("ticks/ns = %v, want > 0", h.TicksPerNS())
	}
	// The fallback clock and any real TSC both run within [0.01, 100]
	// ticks per nanosecond; anything outside means calibration is broken.
	if r := h.TicksPerNS(); r < 0.01 || r > 100 {
		t.Fatalf("implausible tick rate %v/ns", r)
	}
}

func TestHealthSampleAndSnapshot(t *testing.T) {
	h := NewHealth(2)
	for i := 0; i < 100; i++ {
		h.Sample(0)
		h.Sample(1)
	}
	s := h.Snapshot()
	if s.Samples != 200 {
		t.Fatalf("samples = %d, want 200", s.Samples)
	}
	if len(s.Threads) != 2 {
		t.Fatalf("threads = %d, want 2", len(s.Threads))
	}
	for _, th := range s.Threads {
		if th.Samples != 100 {
			t.Fatalf("thread %d samples = %d, want 100", th.Thread, th.Samples)
		}
		if th.OffsetTicks > 0 {
			t.Fatalf("thread %d offset %d > 0 (last reading above global max?)", th.Thread, th.OffsetTicks)
		}
	}
	if s.State != StateHealthy && s.State != StateDegraded && s.State != StateFallback {
		t.Fatalf("state = %q", s.State)
	}
	// The fallback monotonic clock can never regress; a real invariant
	// TSC on healthy hardware should not either.
	if !Supported() || !Invariant() {
		if s.State != StateFallback {
			t.Fatalf("state = %q without hardware TSC, want fallback", s.State)
		}
		if len(s.Warnings) == 0 {
			t.Fatal("fallback state must carry a warning")
		}
	}
}

func TestHealthProbe(t *testing.T) {
	h := NewHealth(4)
	h.Probe(2, 5*time.Millisecond)
	s := h.Snapshot()
	if len(s.Probes) != 2 {
		t.Fatalf("probes = %d, want 2", len(s.Probes))
	}
	for _, p := range s.Probes {
		if p.Samples == 0 {
			t.Fatalf("probe thread %d took no samples", p.Thread)
		}
	}
	if s.Samples == 0 || s.CrossRegressions > s.Samples {
		t.Fatalf("samples=%d cross=%d", s.Samples, s.CrossRegressions)
	}
}

// TestHealthConcurrentSampling: Sample from many goroutines while
// snapshotting (exercised under -race via make check).
func TestHealthConcurrentSampling(t *testing.T) {
	const workers = 8
	h := NewHealth(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Sample(tid)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Snapshot().Samples; got != workers*2000 {
		t.Fatalf("samples = %d, want %d", got, workers*2000)
	}
}

func TestHealthJSON(t *testing.T) {
	h := NewHealth(2)
	h.Sample(0)
	var s HealthSnapshot
	if err := json.Unmarshal([]byte(h.String()), &s); err != nil {
		t.Fatalf("health JSON: %v", err)
	}
	if s.TicksPerNS <= 0 {
		t.Fatalf("parsed ticks/ns = %v", s.TicksPerNS)
	}
	var nilH *Health
	if err := json.Unmarshal([]byte(nilH.String()), &s); err != nil {
		t.Fatalf("nil health JSON: %v", err)
	}
}

func TestHealthOutOfRangeThread(t *testing.T) {
	h := NewHealth(1)
	h.Sample(-1)
	h.Sample(5)
	if got := len(h.Snapshot().Threads); got != 0 {
		t.Fatalf("out-of-range tids produced %d thread entries", got)
	}
}

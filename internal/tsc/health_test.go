package tsc

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.Sample(0)
	h.Probe(2, time.Millisecond)
	if h.TicksPerNS() != 0 {
		t.Fatal("nil TicksPerNS != 0")
	}
	s := h.Snapshot()
	if s.State != StateFallback {
		t.Fatalf("nil state = %q, want fallback", s.State)
	}
}

func TestHealthCalibration(t *testing.T) {
	h := NewHealth(4)
	if h.TicksPerNS() <= 0 {
		t.Fatalf("ticks/ns = %v, want > 0", h.TicksPerNS())
	}
	// The fallback clock and any real TSC both run within [0.01, 100]
	// ticks per nanosecond; anything outside means calibration is broken.
	if r := h.TicksPerNS(); r < 0.01 || r > 100 {
		t.Fatalf("implausible tick rate %v/ns", r)
	}
}

func TestHealthSampleAndSnapshot(t *testing.T) {
	h := NewHealth(2)
	for i := 0; i < 100; i++ {
		h.Sample(0)
		h.Sample(1)
	}
	s := h.Snapshot()
	if s.Samples != 200 {
		t.Fatalf("samples = %d, want 200", s.Samples)
	}
	if len(s.Threads) != 2 {
		t.Fatalf("threads = %d, want 2", len(s.Threads))
	}
	for _, th := range s.Threads {
		if th.Samples != 100 {
			t.Fatalf("thread %d samples = %d, want 100", th.Thread, th.Samples)
		}
		if th.OffsetTicks > 0 {
			t.Fatalf("thread %d offset %d > 0 (last reading above global max?)", th.Thread, th.OffsetTicks)
		}
	}
	if s.State != StateHealthy && s.State != StateDegraded && s.State != StateFallback {
		t.Fatalf("state = %q", s.State)
	}
	// The fallback monotonic clock can never regress; a real invariant
	// TSC on healthy hardware should not either.
	if !Supported() || !Invariant() {
		if s.State != StateFallback {
			t.Fatalf("state = %q without hardware TSC, want fallback", s.State)
		}
		if len(s.Warnings) == 0 {
			t.Fatal("fallback state must carry a warning")
		}
	}
}

func TestHealthProbe(t *testing.T) {
	h := NewHealth(4)
	h.Probe(2, 5*time.Millisecond)
	s := h.Snapshot()
	if len(s.Probes) != 2 {
		t.Fatalf("probes = %d, want 2", len(s.Probes))
	}
	for _, p := range s.Probes {
		if p.Samples == 0 {
			t.Fatalf("probe thread %d took no samples", p.Thread)
		}
	}
	if s.Samples == 0 || s.CrossRegressions > s.Samples {
		t.Fatalf("samples=%d cross=%d", s.Samples, s.CrossRegressions)
	}
}

// TestHealthConcurrentSampling: Sample from many goroutines while
// snapshotting (exercised under -race via make check).
func TestHealthConcurrentSampling(t *testing.T) {
	const workers = 8
	h := NewHealth(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Sample(tid)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Snapshot().Samples; got != workers*2000 {
		t.Fatalf("samples = %d, want %d", got, workers*2000)
	}
}

func TestHealthJSON(t *testing.T) {
	h := NewHealth(2)
	h.Sample(0)
	var s HealthSnapshot
	if err := json.Unmarshal([]byte(h.String()), &s); err != nil {
		t.Fatalf("health JSON: %v", err)
	}
	if s.TicksPerNS <= 0 {
		t.Fatalf("parsed ticks/ns = %v", s.TicksPerNS)
	}
	var nilH *Health
	if err := json.Unmarshal([]byte(nilH.String()), &s); err != nil {
		t.Fatalf("nil health JSON: %v", err)
	}
}

func TestHealthDegradedFlag(t *testing.T) {
	h := NewHealth(2)
	if h.Degraded() {
		t.Fatal("fresh monitor reports degraded")
	}
	if got := h.FaultSeq(); got != 0 {
		t.Fatalf("fresh FaultSeq = %d, want 0", got)
	}
	h.InjectBackstep(1_000_000)
	if !h.Degraded() {
		t.Fatal("InjectBackstep did not raise the degraded flag")
	}
	seq := h.FaultSeq()
	if seq == 0 {
		t.Fatal("InjectBackstep did not bump FaultSeq")
	}
	h.ClearDegraded()
	if h.Degraded() {
		t.Fatal("ClearDegraded did not lower the flag")
	}
	if got := h.FaultSeq(); got != seq {
		t.Fatalf("ClearDegraded changed FaultSeq %d -> %d", seq, got)
	}
	h.NoteStall()
	if !h.Degraded() {
		t.Fatal("NoteStall did not re-raise the degraded flag")
	}
	if got := h.FaultSeq(); got <= seq {
		t.Fatalf("NoteStall did not bump FaultSeq (%d -> %d)", seq, got)
	}

	// Nil receivers are inert.
	var nilH *Health
	nilH.InjectBackstep(1)
	nilH.NoteStall()
	nilH.ClearDegraded()
	nilH.NoteSourceSwitch(false, time.Microsecond)
	if nilH.Degraded() || nilH.FaultSeq() != 0 {
		t.Fatal("nil Health not inert")
	}
}

func TestHealthInjectBackstepObservedBySample(t *testing.T) {
	h := NewHealth(1)
	h.Sample(0)
	before := h.Snapshot().CrossRegressions
	// Publish a maximum far above anything the clock will reach during
	// the test, so the next genuine sample observes a regression.
	h.InjectBackstep(uint64(time.Hour))
	h.Sample(0)
	s := h.Snapshot()
	if s.CrossRegressions <= before {
		t.Fatalf("cross regressions %d -> %d; injected backstep not observed", before, s.CrossRegressions)
	}
	if s.InjectedFaults != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", s.InjectedFaults)
	}
	if s.State != StateDegraded && s.State != StateFallback {
		t.Fatalf("state = %q after injected fault, want degraded (or fallback without hardware)", s.State)
	}
	if s.State == StateDegraded && len(s.Warnings) == 0 {
		t.Fatal("degraded state must carry warnings")
	}
}

func TestHealthSourceSwitchTelemetry(t *testing.T) {
	h := NewHealth(1)
	h.NoteSourceSwitch(false, 500*time.Nanosecond)
	h.NoteSourceSwitch(false, 2*time.Microsecond)
	h.NoteSourceSwitch(true, time.Microsecond)
	s := h.Snapshot()
	if s.SourceSwitches != 2 {
		t.Fatalf("SourceSwitches = %d, want 2", s.SourceSwitches)
	}
	if s.SourceFailbacks != 1 {
		t.Fatalf("SourceFailbacks = %d, want 1", s.SourceFailbacks)
	}
	if want := uint64(3500); s.SwitchTotalNS != want {
		t.Fatalf("SwitchTotalNS = %d, want %d", s.SwitchTotalNS, want)
	}
	if s.LastSwitchNS != 1000 {
		t.Fatalf("LastSwitchNS = %d, want 1000", s.LastSwitchNS)
	}
	if s.MaxSwitchNS != 2000 {
		t.Fatalf("MaxSwitchNS = %d, want 2000", s.MaxSwitchNS)
	}
	// Switch telemetry alone is not a fault.
	if h.Degraded() {
		t.Fatal("NoteSourceSwitch raised the degraded flag")
	}
}

func TestHealthStallCountsAsFault(t *testing.T) {
	h := NewHealth(1)
	h.NoteStall()
	s := h.Snapshot()
	if s.SourceStalls != 1 {
		t.Fatalf("SourceStalls = %d, want 1", s.SourceStalls)
	}
	if s.State == StateHealthy {
		t.Fatal("stall report left state healthy")
	}
}

func TestHealthOutOfRangeThread(t *testing.T) {
	h := NewHealth(1)
	h.Sample(-1)
	h.Sample(5)
	if got := len(h.Snapshot().Threads); got != 0 {
		t.Fatalf("out-of-range tids produced %d thread entries", got)
	}
}

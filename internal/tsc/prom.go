package tsc

import (
	"fmt"
	"io"
)

// WriteProm renders the health monitor in Prometheus text exposition
// format 0.0.4. It structurally satisfies obs.PromVar (this package
// deliberately does not import obs), so a Health registered on
// obs.Serve appears in /metrics.prom alongside the registry families.
// Nil-safe (writes nothing).
func (h *Health) WriteProm(w io.Writer) {
	if h == nil {
		return
	}
	s := h.Snapshot()

	head := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	head("tscds_tsc_info", "TSC health state (value is always 1; the state label carries healthy/degraded/fallback).", "gauge")
	fmt.Fprintf(w, "tscds_tsc_info{state=%q,supported=%q,invariant=%q} 1\n",
		s.State, fmt.Sprintf("%t", s.Supported), fmt.Sprintf("%t", s.Invariant))

	head("tscds_tsc_degraded", "1 while the fast-path degraded flag is raised (adaptive sources fail over on it).", "gauge")
	deg := 0
	if h.Degraded() {
		deg = 1
	}
	fmt.Fprintf(w, "tscds_tsc_degraded %d\n", deg)

	head("tscds_tsc_samples_total", "Cross-thread monotonicity samples taken.", "counter")
	fmt.Fprintf(w, "tscds_tsc_samples_total %d\n", s.Samples)

	head("tscds_tsc_cross_regressions_total", "Cross-thread timestamp regressions observed (includes injected faults).", "counter")
	fmt.Fprintf(w, "tscds_tsc_cross_regressions_total %d\n", s.CrossRegressions)

	var selfBack uint64
	for _, t := range s.Threads {
		selfBack += t.SelfBack
	}
	head("tscds_tsc_self_regressions_total", "Same-thread timestamp regressions observed.", "counter")
	fmt.Fprintf(w, "tscds_tsc_self_regressions_total %d\n", selfBack)

	head("tscds_tsc_max_backstep_ns", "Largest observed backstep in nanoseconds.", "gauge")
	fmt.Fprintf(w, "tscds_tsc_max_backstep_ns %g\n", s.MaxBackstepNS)

	head("tscds_tsc_injected_faults_total", "Backsteps injected through the fault hook (testing).", "counter")
	fmt.Fprintf(w, "tscds_tsc_injected_faults_total %d\n", s.InjectedFaults)

	head("tscds_tsc_source_stalls_total", "Strict-advance spin-budget exhaustions reported to the monitor.", "counter")
	fmt.Fprintf(w, "tscds_tsc_source_stalls_total %d\n", s.SourceStalls)

	head("tscds_tsc_source_switches_total", "Adaptive-source switches away from hardware.", "counter")
	fmt.Fprintf(w, "tscds_tsc_source_switches_total %d\n", s.SourceSwitches)

	head("tscds_tsc_source_failbacks_total", "Adaptive-source failbacks to hardware.", "counter")
	fmt.Fprintf(w, "tscds_tsc_source_failbacks_total %d\n", s.SourceFailbacks)

	head("tscds_tsc_switch_ns_total", "Cumulative nanoseconds spent executing source switches.", "counter")
	fmt.Fprintf(w, "tscds_tsc_switch_ns_total %d\n", s.SwitchTotalNS)

	head("tscds_tsc_ticks_per_ns", "Calibrated TSC rate (0 when hardware timestamps are unsupported).", "gauge")
	fmt.Fprintf(w, "tscds_tsc_ticks_per_ns %g\n", s.TicksPerNS)
}

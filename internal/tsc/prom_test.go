package tsc

import (
	"bytes"
	"testing"
	"time"

	"tscds/internal/obs/promparse"
)

// The health exposition must strict-parse with zero diagnostics and
// carry the counters a scraper alerts on.
func TestHealthWritePromStrictParse(t *testing.T) {
	h := NewHealth(4)
	for i := 0; i < 8; i++ {
		h.Sample(0)
	}
	h.InjectBackstep(uint64(time.Millisecond))
	h.NoteStall()
	h.NoteSourceSwitch(false, 5*time.Millisecond)
	h.NoteSourceSwitch(true, 2*time.Millisecond)

	var buf bytes.Buffer
	h.WriteProm(&buf)
	res, diags := promparse.Parse(buf.Bytes())
	if len(diags) > 0 {
		t.Fatalf("strict parse diagnostics: %v\nexposition:\n%s", diags, buf.String())
	}

	for _, fam := range []string{
		"tscds_tsc_info", "tscds_tsc_degraded",
		"tscds_tsc_samples_total", "tscds_tsc_cross_regressions_total",
		"tscds_tsc_self_regressions_total", "tscds_tsc_max_backstep_ns",
		"tscds_tsc_injected_faults_total", "tscds_tsc_source_stalls_total",
		"tscds_tsc_source_switches_total", "tscds_tsc_source_failbacks_total",
		"tscds_tsc_switch_ns_total", "tscds_tsc_ticks_per_ns",
	} {
		if res.Family(fam) == nil {
			t.Errorf("family %s missing", fam)
		}
	}

	if v, ok := res.Value("tscds_tsc_injected_faults_total", nil); !ok || v != 1 {
		t.Errorf("injected_faults = %v, %v; want 1", v, ok)
	}
	if v, ok := res.Value("tscds_tsc_source_stalls_total", nil); !ok || v != 1 {
		t.Errorf("stalls = %v, %v; want 1", v, ok)
	}
	if v, ok := res.Value("tscds_tsc_source_switches_total", nil); !ok || v != 1 {
		t.Errorf("switches = %v, %v; want 1", v, ok)
	}
	if v, ok := res.Value("tscds_tsc_source_failbacks_total", nil); !ok || v != 1 {
		t.Errorf("failbacks = %v, %v; want 1", v, ok)
	}
	// The injected fault degrades the source; the gauge must reflect it.
	if v, ok := res.Value("tscds_tsc_degraded", nil); !ok || v != 1 {
		t.Errorf("degraded = %v, %v; want 1", v, ok)
	}
	// tscds_tsc_info carries the state as a label with value 1.
	info := res.Family("tscds_tsc_info")
	if len(info.Samples) != 1 || info.Samples[0].Value != 1 {
		t.Fatalf("info samples = %+v", info.Samples)
	}
	if info.Samples[0].Labels["state"] == "" {
		t.Fatalf("info has no state label: %+v", info.Samples[0].Labels)
	}
}

func TestHealthWritePromNil(t *testing.T) {
	var buf bytes.Buffer
	(*Health)(nil).WriteProm(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil health wrote %q", buf.String())
	}
}

// Package tsc provides low-level access to the CPU's timestamp counter
// (TSC) via the RDTSC and RDTSCP instructions, together with the fence
// variants studied in the paper and feature detection for invariant TSC.
//
// On amd64 the five accessors map to real instruction sequences
// (implemented in tsc_amd64.s):
//
//	ReadFenced        RDTSCP ; LFENCE        (the paper's recommended API)
//	ReadCPUID         CPUID  ; RDTSC         (serializing, ~200 cycle cost)
//	Read              RDTSC                  (no ordering guarantees)
//	ReadP             RDTSCP                 (pseudo-serializing only)
//	ReadWithCPU       RDTSCP ; LFENCE, also returning IA32_TSC_AUX (CPU id)
//
// On other architectures, or when invariant TSC is unavailable, all
// accessors fall back to a monotonic nanosecond clock, which preserves the
// two properties the algorithms need (monotonicity and cross-core
// agreement) at a higher per-read cost.
package tsc

import "time"

var start = time.Now()

// Monotonic returns nanoseconds from an arbitrary process-local origin
// using the runtime's monotonic clock. It is the portable fallback for
// every TSC accessor and is also exposed directly so callers can choose
// it explicitly (core.SourceMonotonic).
func Monotonic() uint64 {
	return uint64(time.Since(start))
}

// Supported reports whether the running CPU exposes a usable timestamp
// counter: amd64 with the RDTSCP instruction available. Invariance is
// reported separately by Invariant, since a constant-rate TSC is what
// makes cross-core timestamp comparison sound.
func Supported() bool { return supported() }

// HasCounter reports whether the architecture has any hardware cycle
// counter at all (RDTSC on amd64, CNTVCT on arm64), independent of
// RDTSCP availability or invariance. When false, every accessor —
// including the "raw" and "CPUID" variants — serves the monotonic
// clock, so no hardware-timestamp configuration can be honest about
// its label.
func HasCounter() bool { return hasCounter() }

// Invariant reports whether the CPU advertises invariant TSC
// (CPUID.80000007H:EDX[8]), i.e. the counter increments at a constant
// rate regardless of power states, keeping cores mutually synchronized.
func Invariant() bool { return invariant() }

// ReadFenced returns the TSC using RDTSCP followed by LFENCE — the
// paper's hardware timestamp API (Listing 1). RDTSCP waits for all
// preceding instructions to complete; the trailing LFENCE prevents
// subsequent instructions (including memory accesses) from starting
// before the counter is read.
func ReadFenced() uint64 { return readFenced() }

// ReadCPUID returns the TSC using CPUID followed by RDTSC. CPUID is a
// fully serializing instruction, giving RDTSC the ordering guarantees it
// lacks, at a cost of roughly two hundred cycles.
func ReadCPUID() uint64 { return readCPUID() }

// Read returns the TSC using a bare RDTSC, with no ordering guarantees.
// Only safe when the surrounding algorithm provides its own
// synchronization around the read.
func Read() uint64 { return read() }

// ReadP returns the TSC using a bare RDTSCP (pseudo-serializing: earlier
// instructions complete first, but later ones may start early).
func ReadP() uint64 { return readP() }

// ReadWithCPU returns the fenced TSC value together with the contents of
// IA32_TSC_AUX, which the OS conventionally initializes to the logical
// CPU number; the fallback returns the monotonic clock and CPU 0.
func ReadWithCPU() (ts uint64, cpu uint32) { return readWithCPU() }

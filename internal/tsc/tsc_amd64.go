//go:build amd64

package tsc

// Assembly routines (tsc_amd64.s).
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func rdtscpFenced() uint64
func rdtscCPUID() uint64
func rdtscRaw() uint64
func rdtscpRaw() uint64
func rdtscpWithCPU() (ts uint64, cpu uint32)

var (
	hasRDTSCP    bool
	hasInvariant bool
)

func init() {
	maxExt, _, _, _ := cpuidAsm(0x80000000, 0)
	if maxExt >= 0x80000001 {
		_, _, _, edx := cpuidAsm(0x80000001, 0)
		hasRDTSCP = edx&(1<<27) != 0
	}
	if maxExt >= 0x80000007 {
		_, _, _, edx := cpuidAsm(0x80000007, 0)
		hasInvariant = edx&(1<<8) != 0
	}
}

func supported() bool { return hasRDTSCP }
func invariant() bool { return hasInvariant }

// RDTSC itself is baseline amd64; only RDTSCP is feature-gated.
func hasCounter() bool { return true }

func readFenced() uint64 {
	if hasRDTSCP {
		return rdtscpFenced()
	}
	return Monotonic()
}

func readCPUID() uint64 { return rdtscCPUID() }

func read() uint64 { return rdtscRaw() }

func readP() uint64 {
	if hasRDTSCP {
		return rdtscpRaw()
	}
	return rdtscRaw()
}

func readWithCPU() (uint64, uint32) {
	if hasRDTSCP {
		return rdtscpWithCPU()
	}
	return Monotonic(), 0
}

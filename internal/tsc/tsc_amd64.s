// TSC accessors. RDTSCP is emitted via BYTE directives (0F 01 F9) for
// maximum assembler compatibility. All routines are NOSPLIT leaves.

#include "textflag.h"

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func rdtscpFenced() uint64
// RDTSCP ; LFENCE — the paper's Listing 1 sequence.
TEXT ·rdtscpFenced(SB), NOSPLIT, $0-8
	BYTE $0x0f; BYTE $0x01; BYTE $0xf9 // RDTSCP
	LFENCE
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET

// func rdtscCPUID() uint64
// CPUID ; RDTSC — fully serialized read of the counter.
TEXT ·rdtscCPUID(SB), NOSPLIT, $0-8
	XORL AX, AX
	XORL CX, CX
	CPUID
	RDTSC
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET

// func rdtscRaw() uint64
// Bare RDTSC, no ordering guarantees.
TEXT ·rdtscRaw(SB), NOSPLIT, $0-8
	RDTSC
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET

// func rdtscpRaw() uint64
// Bare RDTSCP, pseudo-serializing only.
TEXT ·rdtscpRaw(SB), NOSPLIT, $0-8
	BYTE $0x0f; BYTE $0x01; BYTE $0xf9 // RDTSCP
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET

// func rdtscpWithCPU() (ts uint64, cpu uint32)
// RDTSCP additionally loads IA32_TSC_AUX (the logical CPU id) into ECX.
TEXT ·rdtscpWithCPU(SB), NOSPLIT, $0-12
	BYTE $0x0f; BYTE $0x01; BYTE $0xf9 // RDTSCP
	LFENCE
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ts+0(FP)
	MOVL CX, cpu+8(FP)
	RET

//go:build arm64

package tsc

// Assembly routines (tsc_arm64.s).
func cntvct() uint64
func cntvctRaw() uint64

// The generic timer's virtual count is architecturally required to be
// constant-rate and consistent across cores, so it plays the role of
// invariant TSC (§II-A's discussion of ARM's counters).

func supported() bool { return true }
func invariant() bool { return true }

func hasCounter() bool { return true }

func readFenced() uint64 { return cntvct() }
func readCPUID() uint64  { return cntvct() } // no CPUID analogue; fully ordered read
func read() uint64       { return cntvctRaw() }
func readP() uint64      { return cntvctRaw() }

func readWithCPU() (uint64, uint32) { return cntvct(), 0 }

// ARM64 counter access. The paper (§II-A) notes ARM exposes a cycle
// counter (PMCCNTR) analogous to TSC; PMCCNTR needs kernel enablement
// for EL0, so we read the generic timer's virtual count CNTVCT_EL0,
// which is architecturally constant-rate and synchronized across cores —
// the two properties invariant TSC provides on x86. ISB provides the
// ordering LFENCE gives on x86.

#include "textflag.h"

// func cntvct() uint64
TEXT ·cntvct(SB), NOSPLIT, $0-8
	ISB  $15
	MRS  CNTVCT_EL0, R0
	MOVD R0, ret+0(FP)
	RET

// func cntvctRaw() uint64
TEXT ·cntvctRaw(SB), NOSPLIT, $0-8
	MRS  CNTVCT_EL0, R0
	MOVD R0, ret+0(FP)
	RET

//go:build !amd64 && !arm64

package tsc

// Non-amd64 hosts have no RDTSC/RDTSCP; every accessor degrades to the
// monotonic clock, which keeps the two properties the range-query
// algorithms rely on: monotonicity and agreement across cores.

func supported() bool { return false }
func invariant() bool { return false }

func hasCounter() bool { return false }

func readFenced() uint64            { return Monotonic() }
func readCPUID() uint64             { return Monotonic() }
func read() uint64                  { return Monotonic() }
func readP() uint64                 { return Monotonic() }
func readWithCPU() (uint64, uint32) { return Monotonic(), 0 }

package tsc

import (
	"runtime"
	"sort"
	"sync"
	"testing"
)

func TestMonotonicAdvances(t *testing.T) {
	a := Monotonic()
	b := Monotonic()
	if b < a {
		t.Fatalf("monotonic clock went backwards: %d then %d", a, b)
	}
}

func TestReadFencedMonotonicSingleThread(t *testing.T) {
	prev := ReadFenced()
	for i := 0; i < 100000; i++ {
		now := ReadFenced()
		if now < prev {
			t.Fatalf("ReadFenced went backwards at i=%d: %d then %d", i, prev, now)
		}
		prev = now
	}
}

func TestReadCPUIDMonotonicSingleThread(t *testing.T) {
	prev := ReadCPUID()
	for i := 0; i < 10000; i++ {
		now := ReadCPUID()
		if now < prev {
			t.Fatalf("ReadCPUID went backwards at i=%d: %d then %d", i, prev, now)
		}
		prev = now
	}
}

func TestUnfencedVariantsReturnSomething(t *testing.T) {
	// Without fences ordering is unspecified, but the values should still
	// be drawn from a counter that moves forward over a long window.
	a := Read()
	b := ReadP()
	for i := 0; i < 1_000_000; i++ {
		_ = Read()
	}
	c := Read()
	d := ReadP()
	if c < a || d < b {
		t.Fatalf("unfenced TSC regressed over a long window: %d->%d, %d->%d", a, c, b, d)
	}
}

func TestReadWithCPU(t *testing.T) {
	ts, cpu := ReadWithCPU()
	if ts == 0 {
		t.Fatal("ReadWithCPU returned zero timestamp")
	}
	if int(cpu) >= 1<<20 {
		t.Fatalf("implausible CPU id %d", cpu)
	}
}

// TestCrossGoroutineOrdering checks the property the paper depends on:
// a timestamp read that happens-after another (enforced here with a
// channel) must not be smaller.
func TestCrossGoroutineOrdering(t *testing.T) {
	if !Supported() && runtime.GOARCH == "amd64" {
		t.Log("RDTSCP not advertised; exercising fallback path")
	}
	const rounds = 20000
	ch := make(chan uint64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := range ch {
			now := ReadFenced()
			if now < v {
				t.Errorf("happens-after violated: sender read %d, receiver read %d", v, now)
				return
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		ch <- ReadFenced()
	}
	close(ch)
	<-done
}

// TestConcurrentReadsAreNearlyDistinct measures how often concurrent
// readers observe tied TSC values (§III-A of the paper: ties are
// theoretically possible but rare). It only reports; ties are legal.
func TestConcurrentReadsAreNearlyDistinct(t *testing.T) {
	const perG = 5000
	const gs = 4
	var mu sync.Mutex
	all := make([]uint64, 0, perG*gs)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint64, perG)
			for i := range local {
				local[i] = ReadFenced()
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ties := 0
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			ties++
		}
	}
	t.Logf("ties among %d concurrent reads: %d (%.4f%%)", len(all), ties, 100*float64(ties)/float64(len(all)))
}

func TestFeatureDetectionConsistent(t *testing.T) {
	if Invariant() && runtime.GOARCH != "amd64" {
		t.Fatal("invariant TSC reported on non-amd64")
	}
	t.Logf("GOARCH=%s supported=%v invariant=%v", runtime.GOARCH, Supported(), Invariant())
}

func BenchmarkReadFenced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ReadFenced()
	}
}

func BenchmarkReadCPUID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ReadCPUID()
	}
}

func BenchmarkReadUnfenced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Read()
	}
}

func BenchmarkMonotonic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Monotonic()
	}
}

package vcas

import (
	"testing"

	"tscds/internal/core"
)

// Boundary tie-break regression: a hardware Source.Snapshot can return a
// value EQUAL to a concurrent label's timestamp (unlike LogicalSource,
// whose pre-increment makes later labels strictly newer). The codebase's
// pinned rule, asserted here so no future edit flips an inequality:
//
//	a version/insert labeled ts == s IS part of the snapshot at s;
//	a delete labeled ts == s REMOVES the node from the snapshot at s.
//
// i.e. every visibility comparison treats the bound inclusively
// ("labels <= s happened"), so a tie linearizes the update before the
// query regardless of which source produced the timestamps.
func TestReadVersionBoundaryTieBreak(t *testing.T) {
	src := core.NewLogical()
	o := New[uint64](10)
	// Advance to a known label and write at exactly that timestamp.
	for src.Peek() < 5 {
		src.Advance()
	}
	o.Write(src, 20) // labeled Peek() == 5
	label := o.Head().TS()
	if label != 5 {
		t.Fatalf("setup: head labeled %d, want 5", label)
	}

	// Bound EQUAL to the label: the tied version is included.
	if v, ok := o.ReadVersion(src, label); !ok || v != 20 {
		t.Fatalf("ReadVersion(s == label) = (%d,%v), want the tied version 20", v, ok)
	}
	// One below the label: the older version.
	if v, ok := o.ReadVersion(src, label-1); !ok || v != 10 {
		t.Fatalf("ReadVersion(s == label-1) = (%d,%v), want pre-write value 10", v, ok)
	}
	// Above the label: still the newest.
	if v, ok := o.ReadVersion(src, label+1); !ok || v != 20 {
		t.Fatalf("ReadVersion(s == label+1) = (%d,%v), want 20", v, ok)
	}
}

// TestReadVersionHistoricalBounds pins the version walk's behavior at
// arbitrary PAST bounds, the contract time-travel reads are built on:
// the walk returns exactly the newest version labeled <= s (ties
// included), and below the oldest retained label it reports a miss
// rather than the oldest survivor. That miss is indistinguishable from
// "key never written", which is precisely why the facade validates ts
// against the retention watermark (core.ReadBound.CheckAt) BEFORE
// trusting the walk: after truncation a bare walk would fabricate
// absence for timestamps the history no longer covers.
func TestReadVersionHistoricalBounds(t *testing.T) {
	src := core.NewLogical()
	o := New[uint64](10) // labeled 0
	for src.Peek() < 3 {
		src.Advance()
	}
	o.Write(src, 20) // labeled 3
	for src.Peek() < 7 {
		src.Advance()
	}
	o.Write(src, 30) // labeled 7

	cases := []struct {
		s      core.TS
		want   uint64
		wantOK bool
	}{
		{0, 10, true}, // init label ties the bound
		{1, 10, true},
		{2, 10, true},
		{3, 20, true}, // exact label: tied version included
		{4, 20, true},
		{6, 20, true},
		{7, 30, true}, // tie again at the newest
		{9, 30, true},
	}
	for _, c := range cases {
		if v, ok := o.ReadVersion(src, c.s); v != c.want || ok != c.wantOK {
			t.Errorf("ReadVersion(s=%d) = (%d,%v), want (%d,%v)", c.s, v, ok, c.want, c.wantOK)
		}
	}

	// After pruning up to the middle version, bounds below its label
	// miss — the walk cannot tell truncated from never-written.
	o.Truncate(3)
	if v, ok := o.ReadVersion(src, 3); !ok || v != 20 {
		t.Fatalf("after Truncate(3), ReadVersion(3) = (%d,%v), want the tied survivor 20", v, ok)
	}
	if v, ok := o.ReadVersion(src, 2); ok {
		t.Fatalf("after Truncate(3), ReadVersion(2) = (%d,%v): below-history bound resolved instead of missing", v, ok)
	}
}

// Truncate must keep the newest version labeled exactly at the minimum
// active bound — it is the version a snapshot at that bound reads.
func TestTruncateBoundaryKeepsTiedVersion(t *testing.T) {
	src := core.NewLogical()
	o := New[uint64](1)
	o.Write(src, 2) // label 1
	src.Advance()
	o.Write(src, 3) // label 2
	src.Advance()
	o.Write(src, 4) // label 3
	tied := o.Head().TS()
	o.Truncate(tied)
	if v, ok := o.ReadVersion(src, tied); !ok || v != 4 {
		t.Fatalf("after Truncate(s), ReadVersion(s) = (%d,%v), want tied version 4", v, ok)
	}
	if n := o.ChainLen(); n != 1 {
		t.Fatalf("chain length after boundary truncate = %d, want 1", n)
	}
}

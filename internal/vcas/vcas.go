// Package vcas implements the versioned-CAS object of Wei et al.
// ("Constant-time snapshots with applications to concurrent data
// structures", PPoPP 2021), the technique the paper ports to hardware
// timestamps with the largest gains (up to 5.5x, Figure 2).
//
// An Object replaces a mutable pointer-sized field in a lock-free data
// structure. Each write installs a new Version whose timestamp starts as
// core.Pending and is labeled afterwards — by the writer or by any
// reader that encounters it first (helping). Labeling is therefore never
// atomic with the structural modification, which is exactly the
// fine-grained "timestamp labeling" property (§IV) that lets vCAS profit
// from TSC: with a logical source the camera is advanced only by range
// queries (Snapshot) while updates merely Peek; with TSC every access is
// a core-local fenced read.
//
// Snapshot reads (ReadVersion) walk the version chain to the newest
// version labeled at or before the snapshot bound. Chains are truncated
// via Truncate once versions age out of every active range query's reach.
package vcas

import (
	"sync/atomic"

	"tscds/internal/core"
	"tscds/internal/pool"
)

// Version is one entry in an Object's history.
type Version[V comparable] struct {
	val  V
	ts   atomic.Uint64
	prev atomic.Pointer[Version[V]]
}

// TS returns the version's label (core.Pending if not yet labeled).
func (v *Version[V]) TS() core.TS { return v.ts.Load() }

// Value returns the version's payload.
func (v *Version[V]) Value() V { return v.val }

// Object is a versioned mutable cell holding values of type V.
type Object[V comparable] struct {
	head atomic.Pointer[Version[V]]
}

// Init sets the initial value with label 0 ("before every snapshot").
// The enclosing node must be published only after Init, as usual for
// lock-free initialization.
func (o *Object[V]) Init(val V) { o.InitIn(nil, -1, val) }

// InitIn is Init drawing the version from p (Config.Alloc pooled/arena
// modes; a nil p allocates through the GC). Versions acquired from a
// pool may be recycled memory, so every field is reset here before the
// version becomes reachable.
//
// Note the asymmetry with node pooling: versions handed to readers stay
// reachable through the chain even after Truncate detaches them (see
// Truncate), so version memory is never recycled from the truncation
// path — the pool only batches and reuses *unpublished* versions (a
// CAS loser's allocation) and amortizes fresh ones through arena
// chunks.
func (o *Object[V]) InitIn(p *pool.Pool[Version[V]], tid int, val V) {
	v := p.Get(tid)
	v.val = val
	v.ts.Store(0)
	v.prev.Store(nil)
	o.head.Store(v)
}

// New returns an initialized object.
func New[V comparable](val V) *Object[V] {
	o := &Object[V]{}
	o.Init(val)
	return o
}

// label assigns v's timestamp if still pending. Any thread may help; the
// CAS makes the first label win, fixing the write's linearization point.
func label[V comparable](src core.Source, v *Version[V]) {
	if v.ts.Load() == core.Pending {
		t := src.Peek()
		v.ts.CompareAndSwap(core.Pending, t)
	}
}

// Read returns the current value, first fixing the head version's label
// so the read is ordered against snapshots.
func (o *Object[V]) Read(src core.Source) V {
	h := o.head.Load()
	label(src, h)
	return h.val
}

// CompareAndSwap installs new if the current value equals old. It
// returns false when the current value differs. Lock-free: concurrent
// winners are ordered by the head CAS, and a failed installer helps
// label the version that beat it.
func (o *Object[V]) CompareAndSwap(src core.Source, old, new V) bool {
	return o.CompareAndSwapIn(src, nil, -1, old, new)
}

// CompareAndSwapIn is CompareAndSwap drawing the new version from p
// (nil p allocates through the GC). A version that loses the head CAS
// race or turns out unnecessary was never published, so it is returned
// to the pool rather than dropped.
func (o *Object[V]) CompareAndSwapIn(src core.Source, p *pool.Pool[Version[V]], tid int, old, new V) bool {
	var nv *Version[V]
	for {
		h := o.head.Load()
		label(src, h)
		if h.val != old {
			if nv != nil {
				nv.prev.Store(nil)
				p.Put(tid, nv)
			}
			return false
		}
		if old == new {
			// No-op writes need no new version; the labeled head
			// already represents the value.
			if nv != nil {
				nv.prev.Store(nil)
				p.Put(tid, nv)
			}
			return true
		}
		if nv == nil {
			nv = p.Get(tid)
			nv.val = new
			nv.ts.Store(core.Pending)
		}
		nv.prev.Store(h)
		if o.head.CompareAndSwap(h, nv) {
			label(src, nv)
			return true
		}
	}
}

// Write unconditionally installs a new value (for lock-based structures,
// where the caller's locks serialize writers; readers may still help
// label concurrently).
func (o *Object[V]) Write(src core.Source, new V) { o.WriteIn(src, nil, -1, new) }

// WriteIn is Write drawing the new version from p (nil p allocates
// through the GC).
func (o *Object[V]) WriteIn(src core.Source, p *pool.Pool[Version[V]], tid int, new V) {
	h := o.head.Load()
	label(src, h)
	if h.val == new {
		return
	}
	nv := p.Get(tid)
	nv.val = new
	nv.ts.Store(core.Pending)
	nv.prev.Store(h)
	o.head.Store(nv)
	label(src, nv)
}

// ReadVersion returns the value visible at snapshot bound s: the newest
// version labeled <= s. The boolean is false when the object has no
// version that old (callers reaching an object through an edge labeled
// <= s never see that, because Init labels with 0).
func (o *Object[V]) ReadVersion(src core.Source, s core.TS) (V, bool) {
	v, ok, _ := o.ReadVersionWalk(src, s)
	return v, ok
}

// ReadVersionWalk is ReadVersion returning additionally the number of
// chain hops taken past the head — the per-read cost of version history,
// which the tracing layer aggregates as the version-walk phase.
func (o *Object[V]) ReadVersionWalk(src core.Source, s core.TS) (V, bool, int) {
	v := o.head.Load()
	label(src, v)
	hops := 0
	for v != nil && v.ts.Load() > s {
		v = v.prev.Load()
		hops++
	}
	if v == nil {
		var zero V
		return zero, false, hops
	}
	return v.val, true, hops
}

// Head exposes the newest version (tests and invariant checks).
func (o *Object[V]) Head() *Version[V] { return o.head.Load() }

// Truncate cuts the version chain below the newest version labeled at or
// before minRQ (the minimum active range-query timestamp): no current or
// future snapshot can need anything older. Call it opportunistically from
// writers; it is safe to run concurrently with readers, which hold direct
// pointers into the chain and are unaffected by losing the tail. It
// returns the number of versions dropped (counted on the detached tail;
// concurrent truncators may attribute the same tail to both — the count
// feeds metrics, not correctness).
func (o *Object[V]) Truncate(minRQ core.TS) int {
	v := o.head.Load()
	if v == nil || v.ts.Load() == core.Pending {
		return 0
	}
	// Find the newest version labeled <= minRQ; it must survive (it is
	// the value any snapshot >= minRQ reads); everything older goes.
	for v.ts.Load() > minRQ {
		next := v.prev.Load()
		if next == nil {
			return 0
		}
		v = next
	}
	tail := v.prev.Load()
	v.prev.Store(nil)
	n := 0
	for ; tail != nil; tail = tail.prev.Load() {
		n++
	}
	return n
}

// ChainLen counts versions currently reachable (tests, heap-boundedness
// assertions).
func (o *Object[V]) ChainLen() int {
	n := 0
	for v := o.head.Load(); v != nil; v = v.prev.Load() {
		n++
	}
	return n
}

package vcas

import (
	"sync"
	"testing"
	"testing/quick"

	"tscds/internal/core"
)

func sources() map[string]func() core.Source {
	return map[string]func() core.Source{
		"logical": func() core.Source { return core.New(core.Logical) },
		"tsc":     func() core.Source { return core.New(core.TSC) },
	}
}

func TestInitAndRead(t *testing.T) {
	for name, mk := range sources() {
		t.Run(name, func(t *testing.T) {
			src := mk()
			o := New(42)
			if got := o.Read(src); got != 42 {
				t.Fatalf("Read = %d, want 42", got)
			}
			if o.Head().TS() != 0 {
				t.Fatalf("initial version labeled %d, want 0", o.Head().TS())
			}
		})
	}
}

func TestCASSemantics(t *testing.T) {
	for name, mk := range sources() {
		t.Run(name, func(t *testing.T) {
			src := mk()
			o := New(1)
			if !o.CompareAndSwap(src, 1, 2) {
				t.Fatal("CAS(1,2) failed")
			}
			if o.CompareAndSwap(src, 1, 3) {
				t.Fatal("CAS(1,3) succeeded with stale expected value")
			}
			if got := o.Read(src); got != 2 {
				t.Fatalf("Read = %d, want 2", got)
			}
		})
	}
}

func TestVersionsLabeledAfterCAS(t *testing.T) {
	src := core.New(core.Logical)
	o := New(0)
	for i := 1; i <= 5; i++ {
		o.CompareAndSwap(src, i-1, i)
	}
	for v := o.Head(); v != nil; v = v.prev.Load() {
		if v.TS() == core.Pending {
			t.Fatal("reachable version left pending after CAS returned")
		}
	}
}

// Chain invariant: timestamps are non-increasing from head to tail.
func TestChainMonotone(t *testing.T) {
	for name, mk := range sources() {
		t.Run(name, func(t *testing.T) {
			src := mk()
			o := New(uint64(0))
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 2000; i++ {
						cur := o.Read(src)
						o.CompareAndSwap(src, cur, cur+1)
					}
				}()
			}
			wg.Wait()
			prev := core.Pending
			for v := o.Head(); v != nil; v = v.prev.Load() {
				ts := v.TS()
				if ts == core.Pending {
					t.Fatal("pending version below head")
				}
				if ts > prev {
					t.Fatalf("chain not monotone: %d above %d", prev, ts)
				}
				prev = ts
			}
		})
	}
}

func TestReadVersionSequential(t *testing.T) {
	src := core.New(core.Logical)
	o := New(uint64(100))
	type step struct {
		snap core.TS
		want uint64
	}
	var steps []step
	steps = append(steps, step{src.Snapshot(), 100})
	o.Write(src, 200) // labeled with Peek after the snapshot advance
	steps = append(steps, step{src.Snapshot(), 200})
	o.Write(src, 300)
	steps = append(steps, step{src.Snapshot(), 300})
	for i, st := range steps {
		got, ok := o.ReadVersion(src, st.snap)
		if !ok || got != st.want {
			t.Fatalf("step %d: ReadVersion(%d) = (%d,%v), want %d", i, st.snap, got, ok, st.want)
		}
	}
}

// The closed-snapshot property that makes range queries linearizable:
// once a snapshot bound is taken from a logical source, no later write
// may become visible at that bound.
func TestSnapshotClosedAgainstLaterWrites(t *testing.T) {
	src := core.New(core.Logical)
	o := New(uint64(1))
	s := src.Snapshot()
	o.Write(src, 2)
	got, ok := o.ReadVersion(src, s)
	if !ok || got != 1 {
		t.Fatalf("snapshot at %d observed later write: got %d", s, got)
	}
}

// Single ascending writer; concurrent snapshot readers must observe a
// value that was current at some instant (monotone consistency): for
// snapshots s1 <= s2, values v1 <= v2.
func TestSnapshotMonotoneUnderConcurrency(t *testing.T) {
	for name, mk := range sources() {
		t.Run(name, func(t *testing.T) {
			src := mk()
			o := New(uint64(0))
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := uint64(1); i <= 20000; i++ {
					o.Write(src, i)
				}
			}()
			var lastSnap core.TS
			var lastVal uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				s := src.Snapshot()
				v, ok := o.ReadVersion(src, s)
				if !ok {
					t.Fatal("ReadVersion found no version")
				}
				if s >= lastSnap && v < lastVal {
					t.Fatalf("snapshots went backwards: (%d,%d) then (%d,%d)", lastSnap, lastVal, s, v)
				}
				lastSnap, lastVal = s, v
			}
		})
	}
}

func TestConcurrentCASNoLostUpdates(t *testing.T) {
	src := core.New(core.TSC)
	o := New(uint64(0))
	const gs = 8
	const per = 3000
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					cur := o.Read(src)
					if o.CompareAndSwap(src, cur, cur+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := o.Read(src); got != gs*per {
		t.Fatalf("final = %d, want %d", got, gs*per)
	}
}

func TestTruncateKeepsNeededVersion(t *testing.T) {
	src := core.New(core.Logical)
	o := New(uint64(0))
	var snaps []core.TS
	for i := uint64(1); i <= 20; i++ {
		snaps = append(snaps, src.Snapshot())
		o.Write(src, i)
	}
	before := o.ChainLen()
	if before < 20 {
		t.Fatalf("chain unexpectedly short: %d", before)
	}
	// Oldest active RQ is snaps[10]; truncating must preserve what that
	// snapshot reads.
	want, _ := o.ReadVersion(src, snaps[10])
	o.Truncate(snaps[10])
	after := o.ChainLen()
	if after >= before {
		t.Fatalf("truncate did not shrink chain: %d -> %d", before, after)
	}
	got, ok := o.ReadVersion(src, snaps[10])
	if !ok || got != want {
		t.Fatalf("truncate broke snapshot: got (%d,%v), want %d", got, ok, want)
	}
	// Newer snapshots unaffected.
	if v, _ := o.ReadVersion(src, snaps[19]); v != 19 {
		t.Fatalf("newest snapshot reads %d, want 19", v)
	}
}

func TestTruncateNoActiveRQKeepsHeadOnly(t *testing.T) {
	src := core.New(core.Logical)
	o := New(uint64(0))
	for i := uint64(1); i <= 10; i++ {
		o.Write(src, i)
	}
	o.Truncate(core.Pending)
	if n := o.ChainLen(); n != 1 {
		t.Fatalf("chain length %d after full truncate, want 1", n)
	}
	if got := o.Read(src); got != 10 {
		t.Fatalf("head value %d, want 10", got)
	}
}

// Property: a randomly generated write history replayed sequentially is
// fully recoverable via snapshots taken between writes.
func TestHistoryRecoverableProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 50 {
			vals = vals[:50]
		}
		src := core.New(core.Logical)
		o := New(uint64(0))
		var snaps []core.TS
		for _, v := range vals {
			o.Write(src, v)
			snaps = append(snaps, src.Snapshot())
		}
		for i, s := range snaps {
			got, ok := o.ReadVersion(src, s)
			if !ok || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCASLogical(b *testing.B) {
	src := core.New(core.Logical)
	o := New(uint64(0))
	for i := 0; i < b.N; i++ {
		o.CompareAndSwap(src, uint64(i), uint64(i+1))
	}
}

func BenchmarkCASTSC(b *testing.B) {
	src := core.New(core.TSC)
	o := New(uint64(0))
	for i := 0; i < b.N; i++ {
		o.CompareAndSwap(src, uint64(i), uint64(i+1))
	}
}

func TestNoOpWritesCreateNoVersions(t *testing.T) {
	src := core.New(core.Logical)
	o := New(uint64(5))
	before := o.ChainLen()
	o.Write(src, 5)                   // same value: no new version
	if !o.CompareAndSwap(src, 5, 5) { // CAS to same value succeeds
		t.Fatal("CAS(5,5) failed")
	}
	if o.ChainLen() != before {
		t.Fatalf("no-op writes grew the chain: %d -> %d", before, o.ChainLen())
	}
}

func TestReadVersionBeforeObjectExists(t *testing.T) {
	src := core.New(core.Logical)
	// An object whose initial version is labeled with a real timestamp
	// (not 0) reports no value for older snapshots.
	o := &Object[uint64]{}
	v := &Version[uint64]{val: 7}
	v.ts.Store(src.Advance())
	o.head.Store(v)
	if _, ok := o.ReadVersion(src, 0); ok {
		t.Fatal("snapshot before creation found a version")
	}
	if got, ok := o.ReadVersion(src, core.MaxTS); !ok || got != 7 {
		t.Fatalf("current snapshot = (%d,%v)", got, ok)
	}
}

func TestVersionAccessors(t *testing.T) {
	o := New(uint64(3))
	h := o.Head()
	if h.Value() != 3 || h.TS() != 0 {
		t.Fatalf("head accessors: val=%d ts=%d", h.Value(), h.TS())
	}
}

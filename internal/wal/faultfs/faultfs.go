// Package faultfs is an in-memory implementation of wal.FS with
// deterministic fault injection: it fails the Nth I/O operation in a
// configurable way (transient error, crash, torn write, ENOSPC, read
// error) and models what survives the crash — only bytes covered by a
// completed Sync, plus any torn-write prefix that reached the medium.
//
// The crash-matrix test drives it: run a workload once fault-free to
// count the I/O ops, then re-run it once per crash point, Heal, and
// recover — asserting the durability layer restores a state the
// linearizability checker accepts against the acknowledged history.
package faultfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"tscds/internal/wal"
)

// Kind selects what happens at the faulted operation.
type Kind int

const (
	// KindNone injects nothing (the counting dry run).
	KindNone Kind = iota
	// KindWriteErr fails the Nth mutating op once with a transient
	// error; subsequent ops succeed. Exercises the retry path: with a
	// working retry policy no caller ever observes it.
	KindWriteErr
	// KindCrash fails the Nth mutating op and every one after it — the
	// process is "dead" until Heal, which discards unsynced bytes.
	KindCrash
	// KindTorn is KindCrash where a faulted Write first persists a
	// prefix of its payload (a torn page that reached the medium), the
	// damage recovery must skip via record CRCs.
	KindTorn
	// KindENOSPC fails every Write from the Nth mutating op on with
	// ENOSPC (syncs and the rest keep working) — a persistent error
	// the retry policy must give up on.
	KindENOSPC
	// KindReadErr fails the Nth read op (ReadFile/ReadDir) once with a
	// transient error. Exercises recovery's error path: Open must fail
	// cleanly, and succeed when retried.
	KindReadErr
)

// ErrInjected is the base error every injected fault wraps.
var ErrInjected = errors.New("faultfs: injected fault")

// Fault places one fault: the AtOp'th operation of the kind's class
// (mutating ops for write kinds, reads for KindReadErr; 1-based) is
// hit. AtOp 0 or KindNone injects nothing.
type Fault struct {
	AtOp int
	Kind Kind
}

// FS implements wal.FS in memory with fault injection. Safe for
// concurrent use.
type FS struct {
	mu      sync.Mutex
	fault   Fault
	ops     int // mutating ops seen
	reads   int // read ops seen
	fired   bool
	crashed bool
	enospc  bool
	files   map[string]*memFile
}

// New builds an empty filesystem with one configured fault.
func New(fault Fault) *FS {
	return &FS{fault: fault, files: make(map[string]*memFile)}
}

// Ops reports the number of mutating I/O operations performed so far —
// the dry run's final value bounds the crash matrix's fault points.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash fault has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Heal ends the crash: unsynced bytes are discarded (they were only in
// the dead process's page cache) and subsequent I/O succeeds, modeling
// the restart that recovery runs under.
func (f *FS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		for _, mf := range f.files {
			mf.data = mf.data[:mf.synced]
		}
	}
	f.crashed = false
	f.enospc = false
	f.fault = Fault{}
}

// Arm replaces the configured fault without resetting the operation
// counters: a test can stage a directory image fault-free, then inject
// relative to the current count (e.g. Ops()+2 faults the second
// mutating op from now).
func (f *FS) Arm(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fault = fault
	f.fired = false
}

// Corrupt flips one bit at offset off of path's surviving content —
// damage no crash produces, which recovery must refuse.
func (f *FS) Corrupt(path string, off int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	mf := f.files[path]
	if mf == nil || off < 0 || off >= len(mf.data) {
		return fmt.Errorf("faultfs: corrupt %s@%d: no such byte", path, off)
	}
	mf.data[off] ^= 0x40
	if mf.synced < off+1 {
		mf.synced = off + 1
	}
	return nil
}

// Truncate cuts path's surviving content to n bytes (simulating a
// short file).
func (f *FS) Truncate(path string, n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	mf := f.files[path]
	if mf == nil || n < 0 || n > len(mf.data) {
		return fmt.Errorf("faultfs: truncate %s to %d: out of range", path, n)
	}
	mf.data = mf.data[:n]
	if mf.synced > n {
		mf.synced = n
	}
	return nil
}

// Paths lists all file paths, sorted.
func (f *FS) Paths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	paths := make([]string, 0, len(f.files))
	for p := range f.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Size reports path's current content length, or -1 if absent.
func (f *FS) Size(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	mf := f.files[path]
	if mf == nil {
		return -1
	}
	return len(mf.data)
}

// step accounts one mutating op and decides its fate. Returns the
// injected error and, for KindTorn, tornFrac=true meaning the caller
// (Write) should persist a prefix first.
func (f *FS) step() (err error, torn bool) {
	if f.crashed {
		return fmt.Errorf("%w: crashed", ErrInjected), false
	}
	f.ops++
	if f.fired || f.fault.AtOp == 0 || f.ops < f.fault.AtOp {
		return nil, false
	}
	switch f.fault.Kind {
	case KindWriteErr:
		f.fired = true
		return fmt.Errorf("%w: transient I/O error (op %d)", ErrInjected, f.ops), false
	case KindCrash:
		f.fired = true
		f.crashed = true
		return fmt.Errorf("%w: crash (op %d)", ErrInjected, f.ops), false
	case KindTorn:
		f.fired = true
		f.crashed = true
		return fmt.Errorf("%w: torn write + crash (op %d)", ErrInjected, f.ops), true
	case KindENOSPC:
		// Persistent from here on; fired stays false so every
		// subsequent write hits this arm again.
		f.enospc = true
		return fmt.Errorf("%w: no space left on device (op %d)", ErrInjected, f.ops), false
	}
	return nil, false
}

// stepRead accounts one read op.
func (f *FS) stepRead() error {
	if f.crashed {
		return fmt.Errorf("%w: crashed", ErrInjected)
	}
	if f.fault.Kind != KindReadErr || f.fault.AtOp == 0 || f.fired {
		return nil
	}
	f.reads++
	if f.reads < f.fault.AtOp {
		return nil
	}
	f.fired = true
	return fmt.Errorf("%w: transient read error (read op %d)", ErrInjected, f.reads)
}

type memFile struct {
	data   []byte
	synced int
}

// MkdirAll is a no-op beyond crash accounting (the in-memory namespace
// is flat).
func (f *FS) MkdirAll(string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("%w: crashed", ErrInjected)
	}
	return nil
}

func (f *FS) Create(path string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, _ := f.step(); err != nil && !f.enospc {
		return nil, err
	}
	f.files[path] = &memFile{}
	return &handle{fs: f, path: path}, nil
}

func (f *FS) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, _ := f.step(); err != nil && !f.enospc {
		return err
	}
	mf := f.files[oldPath]
	if mf == nil {
		return fmt.Errorf("faultfs: rename %s: no such file", oldPath)
	}
	delete(f.files, oldPath)
	f.files[newPath] = mf
	return nil
}

func (f *FS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, _ := f.step(); err != nil && !f.enospc {
		return err
	}
	if _, ok := f.files[path]; !ok {
		return fmt.Errorf("faultfs: remove %s: no such file", path)
	}
	delete(f.files, path)
	return nil
}

func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.stepRead(); err != nil {
		return nil, err
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for p := range f.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *FS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.stepRead(); err != nil {
		return nil, err
	}
	mf := f.files[path]
	if mf == nil {
		return nil, fmt.Errorf("faultfs: read %s: no such file", path)
	}
	out := make([]byte, len(mf.data))
	copy(out, mf.data)
	return out, nil
}

func (f *FS) SyncDir(string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	err, _ := f.step()
	if f.enospc {
		return nil
	}
	return err
}

// handle is one open file.
type handle struct {
	fs   *FS
	path string
}

func (h *handle) file() *memFile { return h.fs.files[h.path] }

func (h *handle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	err, torn := h.fs.step()
	if h.fs.enospc && err == nil {
		err = fmt.Errorf("%w: no space left on device", ErrInjected)
	}
	mf := h.file()
	if mf == nil {
		return 0, fmt.Errorf("faultfs: write %s: stale handle", h.path)
	}
	if err != nil {
		if torn && len(p) > 0 {
			// A prefix reached the medium before the crash: it
			// survives Heal regardless of syncing.
			n := (len(p) + 1) / 2
			mf.data = append(mf.data, p[:n]...)
			if mf.synced < len(mf.data) {
				mf.synced = len(mf.data)
			}
		}
		return 0, err
	}
	mf.data = append(mf.data, p...)
	return len(p), nil
}

func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err, _ := h.fs.step(); err != nil && !h.fs.enospc {
		return err
	}
	mf := h.file()
	if mf == nil {
		return fmt.Errorf("faultfs: sync %s: stale handle", h.path)
	}
	mf.synced = len(mf.data)
	return nil
}

func (h *handle) Close() error { return nil }

var _ wal.FS = (*FS)(nil)

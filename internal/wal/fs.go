// Package wal is the durability layer behind Config.Durability: a
// per-shard append-only write-ahead log on the update path, periodic
// whole-map snapshots taken at a single source timestamp (RangeQueryAt
// makes them zero-stop-the-world), and recovery = newest valid snapshot
// + replay of the WAL records it does not cover.
//
// Every update that succeeds in memory appends one fixed-size record
// carrying the op's source timestamp and a CRC32C. Records are group-
// committed: appenders buffer under the facade's per-shard mutex and a
// per-shard committer goroutine writes and fsyncs batches, so
// concurrent appenders share fsyncs (bounded latency, not one fsync
// per op). Snapshots are written to a temp file and renamed into
// place, so a crash mid-flush leaves the previous snapshot intact.
//
// Recovery tolerates exactly the damage a crash can cause — a torn
// tail (short or CRC-failing final record of a shard's newest segment)
// is skipped and counted — and refuses anything else: a CRC failure in
// a segment's interior, or in any segment that is not the shard's
// newest, is reported as a corrupt-log error with the file and offset,
// never silently truncated.
package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the write surface of one open log or snapshot file.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations the log performs, so tests
// can substitute an in-memory implementation with fault injection
// (package faultfs). The zero configuration uses the real filesystem
// via OS.
type FS interface {
	MkdirAll(dir string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// ReadDir lists the names (not paths) of the entries in dir.
	ReadDir(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	// SyncDir flushes the directory entry metadata of dir, making
	// renames and creations under it durable.
	SyncDir(dir string) error
}

// OS returns the real-filesystem implementation of FS.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Some filesystems reject fsync on directories; the rename itself
	// is still atomic there, so a sync failure is not worth failing
	// the whole flush over.
	_ = d.Sync()
	return d.Close()
}

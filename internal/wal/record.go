package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// OpKind labels a logged update.
type OpKind uint8

// Logged operation kinds. Only updates that succeeded in memory are
// logged, so per key the log alternates insert/delete — the property
// that makes redundant replay over a snapshot converge.
const (
	OpInsert OpKind = 1
	OpDelete OpKind = 2
)

// Record is one logged update. TS is the op's source timestamp, read
// after the in-memory apply under the same per-shard serialization
// that orders the log, so per shard the TS sequence is monotone and
// log order is linearization order. Key is the user key (the facade's
// sentinel shift already removed), so a log replays correctly into any
// structure. Val is meaningful for inserts only.
type Record struct {
	TS  uint64
	Op  OpKind
	Key uint64
	Val uint64
}

// Pair is one snapshot entry.
type Pair struct {
	Key uint64
	Val uint64
}

// recordSize is the fixed on-disk record size:
// crc32c(4) | ts(8) | op(1) | key(8) | val(8).
const recordSize = 4 + 8 + 1 + 8 + 8

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64, matching the hardware-timestamp spirit of the library).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord encodes r onto dst.
func appendRecord(dst []byte, r Record) []byte {
	var b [recordSize]byte
	binary.LittleEndian.PutUint64(b[4:], r.TS)
	b[12] = byte(r.Op)
	binary.LittleEndian.PutUint64(b[13:], r.Key)
	binary.LittleEndian.PutUint64(b[21:], r.Val)
	binary.LittleEndian.PutUint32(b[0:], crc32.Checksum(b[4:], castagnoli))
	return append(dst, b[:]...)
}

// decodeRecord decodes the record at the front of b, reporting whether
// its checksum (and op byte) are intact. b must hold recordSize bytes.
func decodeRecord(b []byte) (Record, bool) {
	want := binary.LittleEndian.Uint32(b[0:])
	if crc32.Checksum(b[4:recordSize], castagnoli) != want {
		return Record{}, false
	}
	r := Record{
		TS:  binary.LittleEndian.Uint64(b[4:]),
		Op:  OpKind(b[12]),
		Key: binary.LittleEndian.Uint64(b[13:]),
		Val: binary.LittleEndian.Uint64(b[21:]),
	}
	if r.Op != OpInsert && r.Op != OpDelete {
		return Record{}, false
	}
	return r, true
}

// Segment header layout: magic(8) | crc32c(4) | runID(8) | shard(4) |
// seq(8). The crc covers everything after itself. runID is the run
// generation: hardware timestamps reset across reboots, so raw TS
// values are only comparable within a run, and all cut comparisons are
// lexicographic on (runID, ts).
const (
	segMagic   = "TSCWAL01"
	segHdrSize = 8 + 4 + 8 + 4 + 8
)

func encodeSegHeader(runID uint64, shard int, seq uint64) []byte {
	b := make([]byte, segHdrSize)
	copy(b, segMagic)
	binary.LittleEndian.PutUint64(b[12:], runID)
	binary.LittleEndian.PutUint32(b[20:], uint32(shard))
	binary.LittleEndian.PutUint64(b[24:], seq)
	binary.LittleEndian.PutUint32(b[8:], crc32.Checksum(b[12:], castagnoli))
	return b
}

// decodeSegHeader validates the header at the front of b and returns
// the run generation. Returns false for a short, torn or mismatched
// header — which recovery treats as a torn (empty) segment when the
// file is the shard's newest, and as corruption otherwise.
func decodeSegHeader(b []byte) (runID uint64, shard int, seq uint64, ok bool) {
	if len(b) < segHdrSize || string(b[:8]) != segMagic {
		return 0, 0, 0, false
	}
	if crc32.Checksum(b[12:segHdrSize], castagnoli) != binary.LittleEndian.Uint32(b[8:]) {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(b[12:]),
		int(binary.LittleEndian.Uint32(b[20:])),
		binary.LittleEndian.Uint64(b[24:]),
		true
}

// segName names shard sh's seq'th segment file.
func segName(sh int, seq uint64) string {
	return fmt.Sprintf("wal-%04d-%012d.log", sh, seq)
}

// parseSegName inverts segName.
func parseSegName(name string) (sh int, seq uint64, ok bool) {
	if _, err := fmt.Sscanf(name, "wal-%d-%d.log", &sh, &seq); err != nil || segName(sh, seq) != name {
		return 0, 0, false
	}
	return sh, seq, true
}

// Snapshot file layout: magic(8) | crc32c(4) | runID(8) | ts(8) |
// count(8) | count * (key(8) val(8)). The crc covers everything after
// itself, so any torn or bit-flipped snapshot is detected whole-file
// and recovery falls back to the previous one.
const (
	snapMagic   = "TSCSNP01"
	snapHdrSize = 8 + 4 + 8 + 8 + 8
)

func encodeSnapshot(runID, ts uint64, kvs []Pair) []byte {
	b := make([]byte, snapHdrSize+16*len(kvs))
	copy(b, snapMagic)
	binary.LittleEndian.PutUint64(b[12:], runID)
	binary.LittleEndian.PutUint64(b[20:], ts)
	binary.LittleEndian.PutUint64(b[28:], uint64(len(kvs)))
	off := snapHdrSize
	for _, kv := range kvs {
		binary.LittleEndian.PutUint64(b[off:], kv.Key)
		binary.LittleEndian.PutUint64(b[off+8:], kv.Val)
		off += 16
	}
	binary.LittleEndian.PutUint32(b[8:], crc32.Checksum(b[12:], castagnoli))
	return b
}

// decodeSnapshot validates and decodes a snapshot image.
func decodeSnapshot(b []byte) (runID, ts uint64, kvs []Pair, ok bool) {
	if len(b) < snapHdrSize || string(b[:8]) != snapMagic {
		return 0, 0, nil, false
	}
	if crc32.Checksum(b[12:], castagnoli) != binary.LittleEndian.Uint32(b[8:]) {
		return 0, 0, nil, false
	}
	count := binary.LittleEndian.Uint64(b[28:])
	if uint64(len(b)-snapHdrSize) != 16*count {
		return 0, 0, nil, false
	}
	kvs = make([]Pair, count)
	off := snapHdrSize
	for i := range kvs {
		kvs[i] = Pair{
			Key: binary.LittleEndian.Uint64(b[off:]),
			Val: binary.LittleEndian.Uint64(b[off+8:]),
		}
		off += 16
	}
	return binary.LittleEndian.Uint64(b[12:]), binary.LittleEndian.Uint64(b[20:]), kvs, true
}

// snapName names the snapshot taken at (runID, ts). Lexicographic name
// order equals (runID, ts) order, so directory listings sort newest-
// last without reading headers.
func snapName(runID, ts uint64) string {
	return fmt.Sprintf("snap-%016x-%016x.dat", runID, ts)
}

// parseSnapName inverts snapName.
func parseSnapName(name string) (runID, ts uint64, ok bool) {
	if _, err := fmt.Sscanf(name, "snap-%x-%x.dat", &runID, &ts); err != nil || snapName(runID, ts) != name {
		return 0, 0, false
	}
	return runID, ts, true
}

package wal

import "testing"

func TestSegNameRoundTrip(t *testing.T) {
	name := segName(3, 17)
	sh, seq, ok := parseSegName(name)
	if !ok || sh != 3 || seq != 17 {
		t.Fatalf("parseSegName(%q) = %d, %d, %v", name, sh, seq, ok)
	}
	for _, bad := range []string{"wal-3-17.log", "wal-0003-000000000017.dat", "snap-x.log", "wal-0003-000000000017.log.tmp"} {
		if _, _, ok := parseSegName(bad); ok {
			t.Errorf("parseSegName(%q) accepted", bad)
		}
	}
}

func TestSnapNameRoundTrip(t *testing.T) {
	name := snapName(2, 0xdeadbeef)
	run, ts, ok := parseSnapName(name)
	if !ok || run != 2 || ts != 0xdeadbeef {
		t.Fatalf("parseSnapName(%q) = %d, %d, %v", name, run, ts, ok)
	}
	if _, _, ok := parseSnapName("snap-2-deadbeef.dat"); ok {
		t.Error("unpadded snapshot name accepted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := Record{TS: 42, Op: OpInsert, Key: 7, Val: 99}
	b := appendRecord(nil, r)
	if len(b) != recordSize {
		t.Fatalf("encoded size %d, want %d", len(b), recordSize)
	}
	got, ok := decodeRecord(b)
	if !ok || got != r {
		t.Fatalf("decodeRecord = %+v, %v", got, ok)
	}
	b[20] ^= 1
	if _, ok := decodeRecord(b); ok {
		t.Fatal("bit-flipped record decoded")
	}
	b[20] ^= 1
	b[12] = 77 // valid CRC but impossible op byte is still rejected
	if _, ok := decodeRecord(appendRecord(nil, Record{Op: OpKind(77)})); ok {
		t.Fatal("record with invalid op byte decoded")
	}
}

func TestSnapshotImageRoundTrip(t *testing.T) {
	kvs := []Pair{{Key: 1, Val: 10}, {Key: 2, Val: 20}}
	img := encodeSnapshot(3, 1234, kvs)
	run, ts, got, ok := decodeSnapshot(img)
	if !ok || run != 3 || ts != 1234 || len(got) != 2 || got[0] != kvs[0] || got[1] != kvs[1] {
		t.Fatalf("decodeSnapshot = %d, %d, %v, %v", run, ts, got, ok)
	}
	img[len(img)-1] ^= 1
	if _, _, _, ok := decodeSnapshot(img); ok {
		t.Fatal("bit-flipped snapshot decoded")
	}
	if _, _, _, ok := decodeSnapshot(encodeSnapshot(1, 1, nil)[:snapHdrSize-2]); ok {
		t.Fatal("truncated snapshot decoded")
	}
}

package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// ErrCorrupt marks a log image recovery refuses to use: a CRC failure
// in a segment's interior, a damaged segment that is not its shard's
// newest, or an unparseable record stream. Wrapped errors carry the
// file and offset. Torn tails — the damage a crash legitimately
// causes — are never ErrCorrupt; they are skipped and counted.
var ErrCorrupt = errors.New("wal: corrupt log")

// Recovered is the surviving durable image Open reconstructed: the
// newest valid snapshot plus every record it does not cover, in replay
// order. The caller replays Pairs (inserts) then Replay (in order)
// into a fresh structure before directing traffic at the log.
type Recovered struct {
	// Pairs is the snapshot content (empty when no snapshot survived).
	Pairs []Pair
	// Replay is every surviving record the snapshot does not cover, in
	// replay order: run generations ascending, and within a run each
	// shard's records in log (= linearization) order. Within one run
	// shards hold disjoint keys, so their relative order is free.
	Replay []Record
	// Stats summarizes what recovery found, skipped and refused.
	Stats RecoveryStats
}

// RecoveryStats is the accounting of one recovery pass.
type RecoveryStats struct {
	// SnapshotRun/SnapshotTS identify the snapshot recovery loaded
	// ((0,0) with SnapshotKeys 0 when none survived).
	SnapshotRun  uint64 `json:"snapshot_run"`
	SnapshotTS   uint64 `json:"snapshot_ts"`
	SnapshotKeys int    `json:"snapshot_keys"`
	// SnapshotsSkipped counts newer snapshot files recovery rejected
	// (bad CRC, short image) before finding a valid one.
	SnapshotsSkipped int `json:"snapshots_skipped,omitempty"`
	// Segments counts segment files scanned.
	Segments int `json:"segments"`
	// Replayed counts records returned for replay.
	Replayed int `json:"replayed"`
	// SkippedCovered counts intact records dropped because the
	// snapshot already covers them ((runID, ts) <= the snapshot cut).
	SkippedCovered int `json:"skipped_covered,omitempty"`
	// TornRecords/TornBytes count torn-tail damage skipped at the end
	// of active segments (including unreadably short segment headers).
	TornRecords int `json:"torn_records,omitempty"`
	TornBytes   int `json:"torn_bytes,omitempty"`
	// TmpsRemoved counts leftover snapshot temp files cleaned up.
	TmpsRemoved int `json:"tmps_removed,omitempty"`
}

// scannedSeg is one parsed segment file.
type scannedSeg struct {
	name  string
	shard int
	seq   uint64
	runID uint64
	recs  []Record
	maxTS uint64
}

// scan reads dir and reconstructs the surviving image. It returns the
// recovered state, the largest run generation seen (0 when the dir is
// fresh) and, per configured shard, the largest segment seq seen.
func (l *Log) scan(shards int) (*Recovered, uint64, []uint64, error) {
	rec := &Recovered{}
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("wal: read dir: %w", err)
	}
	sort.Strings(names)

	var segNames []string
	var snapNames []string
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, ".tmp"):
			if l.fs.Remove(filepath.Join(l.dir, name)) == nil {
				rec.Stats.TmpsRemoved++
			}
		case strings.HasPrefix(name, "wal-"):
			if _, _, ok := parseSegName(name); ok {
				segNames = append(segNames, name)
			}
		case strings.HasPrefix(name, "snap-"):
			if _, _, ok := parseSnapName(name); ok {
				snapNames = append(snapNames, name)
			}
		}
	}

	// Newest valid snapshot wins; invalid newer ones are skipped (the
	// prune policy keeps the predecessor around exactly for this).
	var maxRun uint64
	var snapRun, snapTS uint64
	haveSnap := false
	for i := len(snapNames) - 1; i >= 0; i-- {
		img, err := l.fs.ReadFile(filepath.Join(l.dir, snapNames[i]))
		if err != nil {
			return nil, 0, nil, fmt.Errorf("wal: read snapshot %s: %w", snapNames[i], err)
		}
		run, ts, kvs, ok := decodeSnapshot(img)
		if !ok {
			rec.Stats.SnapshotsSkipped++
			continue
		}
		snapRun, snapTS, haveSnap = run, ts, true
		rec.Pairs = kvs
		rec.Stats.SnapshotRun = run
		rec.Stats.SnapshotTS = ts
		rec.Stats.SnapshotKeys = len(kvs)
		break
	}
	for _, name := range snapNames {
		if run, _, ok := parseSnapName(name); ok && run > maxRun {
			maxRun = run
		}
	}
	l.oldSnaps = snapNames

	// Determine each shard's newest segment: only there is a torn tail
	// legitimate crash damage; anywhere else it is corruption.
	newestSeq := map[int]uint64{}
	for _, name := range segNames {
		sh, seq, _ := parseSegName(name)
		if seq > newestSeq[sh] {
			newestSeq[sh] = seq
		}
	}

	var segs []scannedSeg
	for _, name := range segNames {
		sh, seq, _ := parseSegName(name)
		active := seq == newestSeq[sh]
		s, err := l.scanSegment(name, sh, seq, active, &rec.Stats)
		if err != nil {
			return nil, 0, nil, err
		}
		rec.Stats.Segments++
		if s == nil {
			continue // torn-empty active segment
		}
		if s.runID > maxRun {
			maxRun = s.runID
		}
		segs = append(segs, *s)
		l.oldSegs = append(l.oldSegs, segMeta{name: s.name, runID: s.runID, maxTS: s.maxTS, recs: len(s.recs)})
	}

	// Replay order: run generations ascending (a later run only starts
	// after the earlier one's process died, so every run-N record
	// precedes every run-N+1 record), then shard, then seq.
	sort.SliceStable(segs, func(i, j int) bool {
		a, b := segs[i], segs[j]
		if a.runID != b.runID {
			return a.runID < b.runID
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.seq < b.seq
	})
	for _, s := range segs {
		for _, r := range s.recs {
			// The snapshot covers a record iff its run predates the
			// snapshot's (the snapshot writer replayed that whole run at
			// open) or it is the snapshot's own run with ts <= the bound.
			if haveSnap && (s.runID < snapRun || (s.runID == snapRun && r.TS <= snapTS)) {
				rec.Stats.SkippedCovered++
				continue
			}
			rec.Replay = append(rec.Replay, r)
		}
	}
	rec.Stats.Replayed = len(rec.Replay)
	if l.stats != nil {
		l.stats.RecoveredKeys.Add(uint64(len(rec.Pairs)))
		l.stats.RecoveredRecords.Add(uint64(len(rec.Replay)))
		l.stats.TornSkipped.Add(uint64(rec.Stats.TornRecords))
	}

	nextSeq := make([]uint64, shards)
	for sh, seq := range newestSeq {
		if sh >= 0 && sh < shards {
			nextSeq[sh] = seq
		}
	}
	return rec, maxRun, nextSeq, nil
}

// scanSegment decodes one segment file. A nil result (with nil error)
// means the segment was torn before its header completed and holds
// nothing. Torn tails are only tolerated when active (the shard's
// newest segment) — a sealed segment was fsynced before the next one
// was opened, so damage there is corruption, not crash residue.
func (l *Log) scanSegment(name string, shard int, seq uint64, active bool, st *RecoveryStats) (*scannedSeg, error) {
	b, err := l.fs.ReadFile(filepath.Join(l.dir, name))
	if err != nil {
		return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
	}
	runID, hsh, hseq, ok := decodeSegHeader(b)
	if !ok {
		if active && len(b) < segHdrSize {
			st.TornRecords++
			st.TornBytes += len(b)
			return nil, nil
		}
		return nil, fmt.Errorf("%w: segment %s: bad header", ErrCorrupt, name)
	}
	if hsh != shard || hseq != seq {
		return nil, fmt.Errorf("%w: segment %s: header names shard %d seq %d", ErrCorrupt, name, hsh, hseq)
	}
	s := &scannedSeg{name: name, shard: shard, seq: seq, runID: runID}
	for off := segHdrSize; off < len(b); off += recordSize {
		if off+recordSize > len(b) {
			// Short final record: a torn tail on the active segment,
			// corruption anywhere else.
			if active {
				st.TornRecords++
				st.TornBytes += len(b) - off
				break
			}
			return nil, fmt.Errorf("%w: segment %s: short record at offset %d", ErrCorrupt, name, off)
		}
		r, ok := decodeRecord(b[off:])
		if !ok {
			// A CRC-failing record is a torn tail only when it is the
			// file's final record of the active segment — a torn write
			// persisted part of it. With intact bytes after it, the
			// damage is interior: refuse the log rather than silently
			// dropping acknowledged history.
			if active && off+recordSize == len(b) {
				st.TornRecords++
				st.TornBytes += recordSize
				break
			}
			return nil, fmt.Errorf("%w: segment %s: bad record CRC at offset %d", ErrCorrupt, name, off)
		}
		s.recs = append(s.recs, r)
		if r.TS > s.maxTS {
			s.maxTS = r.TS
		}
	}
	return s, nil
}

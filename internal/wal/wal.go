package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"tscds/internal/obs"
)

// ErrClosed is returned by appends against a closed log.
var ErrClosed = errors.New("wal: closed")

// Options parameterizes Open.
type Options struct {
	// Dir is the durability directory (created if absent).
	Dir string
	// Shards is the number of independent append streams; the facade
	// uses its shard count so each WAL stream is ordered by the same
	// per-shard serialization that orders the map updates.
	Shards int
	// SyncEvery controls the durability/throughput trade. <= 1 (the
	// default) acknowledges an append only after an fsync covering it
	// returns — fully durable, with group commit amortizing the fsync
	// across concurrent appenders. N > 1 acknowledges after write()
	// and fsyncs every N records per shard: a crash may lose up to the
	// last N acknowledged records per shard (bounded-loss mode, the
	// durability-cost axis of the bench's durability figure).
	SyncEvery int
	// FS substitutes the file layer (fault injection); nil means OS().
	FS FS
	// Stats, when non-nil, receives append/batch/fsync/retry/recovery
	// counters.
	Stats *obs.WALStats
	// MaxRetries bounds write/fsync retry attempts on transient errors
	// (default 4; each retry backs off exponentially from
	// RetryBackoff). A still-failing op makes the log's error sticky.
	MaxRetries int
	// RetryBackoff is the initial retry backoff (default 1ms).
	RetryBackoff time.Duration

	// sleep substitutes time.Sleep in tests.
	sleep func(time.Duration)
}

// segMeta is pruning metadata for one no-longer-active segment file.
type segMeta struct {
	name  string
	runID uint64
	maxTS uint64 // largest record TS in the segment (0 when empty)
	recs  int
}

// Log is the open write side: per-shard segment writers with group
// commit, snapshot writing and pruning. All methods are safe for
// concurrent use.
type Log struct {
	fs    FS
	dir   string
	runID uint64
	sync  int
	stats *obs.WALStats

	maxRetries int
	backoff    time.Duration
	sleep      func(time.Duration)

	shards []*shardLog

	// snapMu serializes snapshot writes and pruning.
	snapMu   sync.Mutex
	oldSegs  []segMeta // pre-existing segments from prior runs
	oldSnaps []string  // snapshot files on disk, name-sorted ascending
}

// shardLog is one shard's append stream. Appenders buffer encoded
// records under mu and a dedicated committer goroutine drains the
// buffer to the active segment file, so every write/fsync batch covers
// every record buffered while the previous batch was in flight (group
// commit).
type shardLog struct {
	log *Log
	id  int

	mu       sync.Mutex
	work     *sync.Cond // committer waits: buffered work or control flags
	ackd     *sync.Cond // appenders wait: acked advanced or err set
	buf      []byte
	bufRecs  uint64
	bufMaxTS uint64
	appended uint64 // LSN of the newest buffered record
	acked    uint64 // LSN through which appends are acknowledged
	err      error  // sticky; set on persistent I/O failure
	rotate   bool
	closing  bool
	closed   []segMeta // segments this run closed, awaiting pruning

	// Committer-owned state (no locking needed).
	f         File
	seq       uint64
	name      string
	fileRecs  int
	fileMaxTS uint64
	sinceSync int

	done chan struct{}
}

// Open scans dir, recovers the surviving image (newest valid snapshot
// + replayable records), assigns this run's generation, opens fresh
// active segments and starts the committers. The returned Recovered
// holds everything the caller must replay into its in-memory structure
// before directing traffic at the log.
func Open(opts Options) (*Log, *Recovered, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.FS == nil {
		opts.FS = OS()
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 4
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = time.Millisecond
	}
	if opts.sleep == nil {
		opts.sleep = time.Sleep
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{
		fs:         opts.FS,
		dir:        opts.Dir,
		sync:       opts.SyncEvery,
		stats:      opts.Stats,
		maxRetries: opts.MaxRetries,
		backoff:    opts.RetryBackoff,
		sleep:      opts.sleep,
	}
	rec, maxRun, nextSeq, err := l.scan(opts.Shards)
	if err != nil {
		return nil, nil, err
	}
	l.runID = maxRun + 1

	l.shards = make([]*shardLog, opts.Shards)
	for i := range l.shards {
		sl := &shardLog{log: l, id: i, seq: nextSeq[i], done: make(chan struct{})}
		sl.work = sync.NewCond(&sl.mu)
		sl.ackd = sync.NewCond(&sl.mu)
		if err := sl.openSegment(); err != nil {
			return nil, nil, err
		}
		l.shards[i] = sl
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return nil, nil, fmt.Errorf("wal: sync dir: %w", err)
	}
	for _, sl := range l.shards {
		go sl.run()
	}
	return l, rec, nil
}

// RunID reports this run's generation.
func (l *Log) RunID() uint64 { return l.runID }

// Err returns the first sticky I/O error, or nil while the log is
// healthy. Once set, every append and wait fails fast with it: the map
// keeps serving from memory but durability is broken.
func (l *Log) Err() error {
	for _, sl := range l.shards {
		sl.mu.Lock()
		err := sl.err
		sl.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Append buffers one record on shard sh and returns its LSN; the
// caller passes the LSN to WaitDurable for the acknowledgment matching
// Options.SyncEvery. Append must be called under the same per-shard
// serialization that ordered the in-memory apply, so the log order is
// the linearization order.
func (l *Log) Append(sh int, r Record) (uint64, error) {
	sl := l.shards[sh]
	sl.mu.Lock()
	if sl.err != nil {
		err := sl.err
		sl.mu.Unlock()
		return 0, err
	}
	if sl.closing {
		sl.mu.Unlock()
		return 0, ErrClosed
	}
	sl.buf = appendRecord(sl.buf, r)
	sl.bufRecs++
	if r.TS > sl.bufMaxTS {
		sl.bufMaxTS = r.TS
	}
	sl.appended++
	lsn := sl.appended
	sl.work.Signal()
	sl.mu.Unlock()
	if l.stats != nil {
		l.stats.Appends.Inc()
		l.stats.AppendedBytes.Add(recordSize)
	}
	return lsn, nil
}

// WaitDurable blocks until the record at lsn on shard sh is
// acknowledged (synced in full-durability mode, written in bounded-
// loss mode) or the log failed. A record acknowledged before a later
// failure still reports success.
func (l *Log) WaitDurable(sh int, lsn uint64) error {
	sl := l.shards[sh]
	sl.mu.Lock()
	for sl.acked < lsn && sl.err == nil {
		sl.ackd.Wait()
	}
	err := sl.err
	if sl.acked >= lsn {
		err = nil
	}
	sl.mu.Unlock()
	return err
}

// RotateAll asks every shard's committer to close its active segment
// and continue on a fresh one. Rotation is asynchronous: it takes
// effect after the committer drains records buffered before the call.
// The snapshot flusher rotates before writing a snapshot so segments
// fully covered by it become prunable.
func (l *Log) RotateAll() {
	for _, sl := range l.shards {
		sl.mu.Lock()
		sl.rotate = true
		sl.work.Signal()
		sl.mu.Unlock()
	}
}

// WriteSnapshot atomically writes the snapshot image taken at bound ts
// (temp file + fsync + rename + dir sync). kvs must be the full map
// content at ts, sorted by key, with user (unshifted) keys.
func (l *Log) WriteSnapshot(ts uint64, kvs []Pair) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	name := snapName(l.runID, ts)
	tmp := name + ".tmp"
	img := encodeSnapshot(l.runID, ts, kvs)
	err := l.writeSnapshotFile(tmp, name, img)
	if l.stats != nil {
		if err != nil {
			l.stats.SnapshotFailures.Inc()
		} else {
			l.stats.SnapshotFlushes.Inc()
			l.stats.SnapshotKeys.Add(uint64(len(kvs)))
			l.stats.SnapshotBytes.Add(uint64(len(img)))
		}
	}
	if err != nil {
		_ = l.fs.Remove(filepath.Join(l.dir, tmp))
		return err
	}
	l.oldSnaps = append(l.oldSnaps, name)
	return nil
}

func (l *Log) writeSnapshotFile(tmp, name string, img []byte) error {
	f, err := l.fs.Create(filepath.Join(l.dir, tmp))
	if err != nil {
		return fmt.Errorf("wal: create snapshot: %w", err)
	}
	if err := l.writeRetry(f, img); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := l.syncRetry(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := l.fs.Rename(filepath.Join(l.dir, tmp), filepath.Join(l.dir, name)); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// PruneUpTo removes log state a successful snapshot at bound ts made
// redundant: every segment from a previous run (the replay that opened
// this run is contained in any snapshot this run writes), every closed
// segment of this run whose records are all <= ts, and all but the two
// newest snapshots (the newest is authoritative; its predecessor is
// kept as the fallback image recovery uses if the newest turns out
// unreadable). Removal failures are ignored; the files are retried on
// the next prune.
func (l *Log) PruneUpTo(ts uint64) {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	drop := func(m segMeta) bool {
		return m.runID < l.runID || m.maxTS <= ts
	}
	kept := l.oldSegs[:0]
	for _, m := range l.oldSegs {
		if drop(m) && l.fs.Remove(filepath.Join(l.dir, m.name)) == nil {
			if l.stats != nil {
				l.stats.SegmentsPruned.Inc()
			}
			continue
		}
		kept = append(kept, m)
	}
	l.oldSegs = kept
	for _, sl := range l.shards {
		sl.mu.Lock()
		keptC := sl.closed[:0]
		for _, m := range sl.closed {
			if drop(m) && l.fs.Remove(filepath.Join(l.dir, m.name)) == nil {
				if l.stats != nil {
					l.stats.SegmentsPruned.Inc()
				}
				continue
			}
			keptC = append(keptC, m)
		}
		sl.closed = keptC
		sl.mu.Unlock()
	}
	if n := len(l.oldSnaps); n > 2 {
		keptS := l.oldSnaps[:0]
		for i, name := range l.oldSnaps {
			if i < n-2 && l.fs.Remove(filepath.Join(l.dir, name)) == nil {
				continue
			}
			keptS = append(keptS, name)
		}
		l.oldSnaps = keptS
	}
}

// Close drains and fsyncs every shard (so a clean shutdown is fully
// durable even in bounded-loss mode), stops the committers and closes
// the files. It returns the sticky error, if any.
func (l *Log) Close() error {
	for _, sl := range l.shards {
		sl.mu.Lock()
		sl.closing = true
		sl.work.Signal()
		sl.mu.Unlock()
	}
	for _, sl := range l.shards {
		<-sl.done
	}
	return l.Err()
}

// openSegment creates the next segment file for sl and writes its
// header. Called by Open (before the committer starts) and by the
// committer on rotation.
func (sl *shardLog) openSegment() error {
	sl.seq++
	sl.name = segName(sl.id, sl.seq)
	f, err := sl.log.fs.Create(filepath.Join(sl.log.dir, sl.name))
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", sl.name, err)
	}
	if err := sl.log.writeRetry(f, encodeSegHeader(sl.log.runID, sl.id, sl.seq)); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write segment header %s: %w", sl.name, err)
	}
	sl.f = f
	sl.fileRecs = 0
	sl.fileMaxTS = 0
	sl.sinceSync = 0
	return nil
}

// run is the committer loop: drain buffered records, write them as one
// batch, fsync per the durability mode, acknowledge, and handle
// rotation and shutdown. A persistent I/O failure makes the shard's
// error sticky and wakes every waiter.
func (sl *shardLog) run() {
	defer close(sl.done)
	for {
		sl.mu.Lock()
		for len(sl.buf) == 0 && !sl.rotate && !sl.closing {
			sl.work.Wait()
		}
		batch := sl.buf
		nrecs := sl.bufRecs
		maxTS := sl.bufMaxTS
		doRotate := sl.rotate
		closing := sl.closing
		sl.buf = nil
		sl.bufRecs = 0
		sl.rotate = false
		sl.mu.Unlock()

		if len(batch) > 0 {
			if err := sl.log.writeRetry(sl.f, batch); err != nil {
				sl.fail(fmt.Errorf("wal: append %s: %w", sl.name, err))
				return
			}
			if sl.log.stats != nil {
				sl.log.stats.Batches.Inc()
			}
			needSync := sl.log.sync <= 1
			if !needSync {
				sl.sinceSync += int(nrecs)
				needSync = sl.sinceSync >= sl.log.sync
			}
			if needSync {
				if err := sl.log.syncRetry(sl.f); err != nil {
					sl.fail(fmt.Errorf("wal: fsync %s: %w", sl.name, err))
					return
				}
				sl.sinceSync = 0
			}
			sl.fileRecs += int(nrecs)
			if maxTS > sl.fileMaxTS {
				sl.fileMaxTS = maxTS
			}
			sl.mu.Lock()
			sl.acked += nrecs
			sl.ackd.Broadcast()
			sl.mu.Unlock()
		}

		if doRotate && !closing {
			if err := sl.doRotate(); err != nil {
				sl.fail(err)
				return
			}
		}

		if closing {
			sl.mu.Lock()
			drained := len(sl.buf) == 0
			sl.mu.Unlock()
			if !drained {
				continue
			}
			if err := sl.log.syncRetry(sl.f); err != nil {
				sl.fail(fmt.Errorf("wal: fsync %s: %w", sl.name, err))
				return
			}
			if err := sl.f.Close(); err != nil {
				sl.fail(fmt.Errorf("wal: close %s: %w", sl.name, err))
				return
			}
			return
		}
	}
}

// doRotate seals the active segment and opens the next one.
func (sl *shardLog) doRotate() error {
	if sl.fileRecs == 0 {
		return nil // empty segment: nothing to seal
	}
	if err := sl.log.syncRetry(sl.f); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", sl.name, err)
	}
	if err := sl.f.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", sl.name, err)
	}
	sealed := segMeta{name: sl.name, runID: sl.log.runID, maxTS: sl.fileMaxTS, recs: sl.fileRecs}
	if err := sl.openSegment(); err != nil {
		return err
	}
	if err := sl.log.fs.SyncDir(sl.log.dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	sl.mu.Lock()
	sl.closed = append(sl.closed, sealed)
	sl.mu.Unlock()
	return nil
}

// fail makes err sticky and wakes every waiter; the committer exits.
func (sl *shardLog) fail(err error) {
	if sl.log.stats != nil {
		sl.log.stats.Errors.Inc()
	}
	sl.mu.Lock()
	if sl.err == nil {
		sl.err = err
	}
	sl.ackd.Broadcast()
	sl.mu.Unlock()
	if sl.f != nil {
		_ = sl.f.Close()
	}
}

// writeRetry writes b in full, retrying transient errors with
// exponential backoff and resuming after partial writes (the retried
// write continues at the failed offset, so a transient mid-batch error
// cannot duplicate bytes).
func (l *Log) writeRetry(f File, b []byte) error {
	off := 0
	var err error
	for attempt := 0; ; attempt++ {
		var n int
		n, err = f.Write(b[off:])
		off += n
		if off == len(b) && err == nil {
			return nil
		}
		if attempt >= l.maxRetries {
			break
		}
		if err != nil {
			if l.stats != nil {
				l.stats.Retries.Inc()
			}
			l.sleep(l.backoff << uint(attempt))
		}
	}
	if err == nil {
		err = errors.New("short write")
	}
	return err
}

// syncRetry fsyncs with the same retry/backoff policy.
func (l *Log) syncRetry(f File) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = f.Sync(); err == nil {
			if l.stats != nil {
				l.stats.Fsyncs.Inc()
			}
			return nil
		}
		if attempt >= l.maxRetries {
			return err
		}
		if l.stats != nil {
			l.stats.Retries.Inc()
		}
		l.sleep(l.backoff << uint(attempt))
	}
}

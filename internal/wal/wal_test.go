package wal_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tscds/internal/obs"
	"tscds/internal/wal"
	"tscds/internal/wal/faultfs"
)

const (
	dir = "waldir"
	// On-disk sizes, fixed by the format (asserted in record_test.go).
	segHdrSize = 32
	recordSize = 29
)

func openLog(t *testing.T, fs wal.FS, shards, syncEvery int, stats *obs.WALStats) (*wal.Log, *wal.Recovered) {
	t.Helper()
	l, rec, err := wal.Open(wal.Options{
		Dir: dir, Shards: shards, SyncEvery: syncEvery,
		FS: fs, Stats: stats, RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l, rec
}

// appendWait appends r to shard sh and blocks for its acknowledgment.
func appendWait(t *testing.T, l *wal.Log, sh int, r wal.Record) {
	t.Helper()
	lsn, err := l.Append(sh, r)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WaitDurable(sh, lsn); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	l, rec := openLog(t, fs, 2, 1, nil)
	if got := l.RunID(); got != 1 {
		t.Fatalf("fresh RunID = %d, want 1", got)
	}
	if len(rec.Pairs) != 0 || len(rec.Replay) != 0 {
		t.Fatalf("fresh dir recovered %d pairs, %d records", len(rec.Pairs), len(rec.Replay))
	}
	appendWait(t, l, 0, wal.Record{TS: 1, Op: wal.OpInsert, Key: 2, Val: 100})
	appendWait(t, l, 1, wal.Record{TS: 2, Op: wal.OpInsert, Key: 3, Val: 101})
	appendWait(t, l, 0, wal.Record{TS: 3, Op: wal.OpDelete, Key: 2})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openLog(t, fs, 2, 1, nil)
	defer l2.Close()
	if got := l2.RunID(); got != 2 {
		t.Fatalf("second RunID = %d, want 2", got)
	}
	want := []wal.Record{
		{TS: 1, Op: wal.OpInsert, Key: 2, Val: 100},
		{TS: 3, Op: wal.OpDelete, Key: 2},
		{TS: 2, Op: wal.OpInsert, Key: 3, Val: 101},
	}
	if len(rec2.Replay) != len(want) {
		t.Fatalf("replayed %d records, want %d (%+v)", len(rec2.Replay), len(want), rec2.Replay)
	}
	for i, r := range want {
		if rec2.Replay[i] != r {
			t.Fatalf("replay[%d] = %+v, want %+v", i, rec2.Replay[i], r)
		}
	}
	if rec2.Stats.Segments != 2 || rec2.Stats.Replayed != 3 {
		t.Fatalf("stats = %+v", rec2.Stats)
	}
}

func TestSnapshotCutsCoveredRecords(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	l, _ := openLog(t, fs, 1, 1, nil)
	for ts := uint64(1); ts <= 4; ts++ {
		appendWait(t, l, 0, wal.Record{TS: ts, Op: wal.OpInsert, Key: ts, Val: ts * 10})
	}
	// Snapshot at bound 2 covers the first two records.
	if err := l.WriteSnapshot(2, []wal.Pair{{Key: 1, Val: 10}, {Key: 2, Val: 20}}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	l.Close()

	l2, rec := openLog(t, fs, 1, 1, nil)
	defer l2.Close()
	if len(rec.Pairs) != 2 || rec.Pairs[0] != (wal.Pair{Key: 1, Val: 10}) {
		t.Fatalf("snapshot pairs = %+v", rec.Pairs)
	}
	if len(rec.Replay) != 2 || rec.Replay[0].TS != 3 || rec.Replay[1].TS != 4 {
		t.Fatalf("replay = %+v, want TS 3 and 4 only", rec.Replay)
	}
	if rec.Stats.SkippedCovered != 2 || rec.Stats.SnapshotTS != 2 || rec.Stats.SnapshotRun != 1 {
		t.Fatalf("stats = %+v", rec.Stats)
	}
}

func TestSnapshotCoversWholeEarlierRuns(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	// Run 1 logs a high timestamp (hardware counters can run far ahead).
	l, _ := openLog(t, fs, 1, 1, nil)
	appendWait(t, l, 0, wal.Record{TS: 1 << 40, Op: wal.OpInsert, Key: 1, Val: 10})
	l.Close()

	// Run 2 restarts on a reset counter: its snapshot bound is tiny, yet
	// it must still cover run 1's records (they were replayed at open).
	l2, rec := openLog(t, fs, 1, 1, nil)
	if len(rec.Replay) != 1 {
		t.Fatalf("run 2 replay = %+v", rec.Replay)
	}
	appendWait(t, l2, 0, wal.Record{TS: 5, Op: wal.OpInsert, Key: 2, Val: 20})
	if err := l2.WriteSnapshot(5, []wal.Pair{{Key: 1, Val: 10}, {Key: 2, Val: 20}}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	l2.Close()

	l3, rec3 := openLog(t, fs, 1, 1, nil)
	defer l3.Close()
	if len(rec3.Replay) != 0 {
		t.Fatalf("run 3 replayed %+v; the run-2 snapshot should cover everything", rec3.Replay)
	}
	if len(rec3.Pairs) != 2 || rec3.Stats.SkippedCovered != 2 {
		t.Fatalf("run 3 stats = %+v", rec3.Stats)
	}
}

func TestTornTailSkipped(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	l, _ := openLog(t, fs, 1, 1, nil)
	for ts := uint64(1); ts <= 3; ts++ {
		appendWait(t, l, 0, wal.Record{TS: ts, Op: wal.OpInsert, Key: ts, Val: ts})
	}
	l.Close()

	// Tear the final record of the shard's newest segment.
	seg := dir + "/wal-0000-000000000001.log"
	if err := fs.Truncate(seg, segHdrSize+2*recordSize+7); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	l2, rec := openLog(t, fs, 1, 1, nil)
	defer l2.Close()
	if len(rec.Replay) != 2 {
		t.Fatalf("replay = %+v, want the 2 intact records", rec.Replay)
	}
	if rec.Stats.TornRecords != 1 || rec.Stats.TornBytes != 7 {
		t.Fatalf("stats = %+v", rec.Stats)
	}
}

func TestCorruptInteriorRefused(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	l, _ := openLog(t, fs, 1, 1, nil)
	for ts := uint64(1); ts <= 3; ts++ {
		appendWait(t, l, 0, wal.Record{TS: ts, Op: wal.OpInsert, Key: ts, Val: ts})
	}
	l.Close()

	// Flip a bit inside the FIRST record: it has intact records after
	// it, so this is interior damage no crash explains.
	seg := dir + "/wal-0000-000000000001.log"
	if err := fs.Corrupt(seg, segHdrSize+10); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	_, _, err := wal.Open(wal.Options{Dir: dir, Shards: 1, FS: fs})
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Open on corrupt interior = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "offset 32") || !strings.Contains(err.Error(), "wal-0000-000000000001.log") {
		t.Fatalf("corruption error lacks file/offset: %v", err)
	}
}

func TestSnapshotFallback(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	l, _ := openLog(t, fs, 1, 1, nil)
	if err := l.WriteSnapshot(5, []wal.Pair{{Key: 1, Val: 10}}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := l.WriteSnapshot(9, []wal.Pair{{Key: 1, Val: 10}, {Key: 2, Val: 20}}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	l.Close()

	// Damage the newest snapshot: recovery must fall back to its
	// predecessor, not fail and not trust the broken image.
	newest := dir + "/snap-0000000000000001-0000000000000009.dat"
	if err := fs.Corrupt(newest, 40); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	l2, rec := openLog(t, fs, 1, 1, nil)
	defer l2.Close()
	if rec.Stats.SnapshotsSkipped != 1 || rec.Stats.SnapshotTS != 5 || len(rec.Pairs) != 1 {
		t.Fatalf("fallback stats = %+v, pairs = %+v", rec.Stats, rec.Pairs)
	}
}

func TestRotateAndPrune(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	var stats obs.WALStats
	l, _ := openLog(t, fs, 1, 1, &stats)
	for ts := uint64(1); ts <= 3; ts++ {
		appendWait(t, l, 0, wal.Record{TS: ts, Op: wal.OpInsert, Key: ts, Val: ts})
	}
	l.RotateAll()
	// Rotation is asynchronous: wait for the next segment to appear.
	deadline := time.Now().Add(5 * time.Second)
	for fs.Size(dir+"/wal-0000-000000000002.log") < 0 {
		if time.Now().After(deadline) {
			t.Fatal("rotation did not produce a new segment")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.WriteSnapshot(3, []wal.Pair{{Key: 1, Val: 1}, {Key: 2, Val: 2}, {Key: 3, Val: 3}}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	l.PruneUpTo(3)
	if fs.Size(dir+"/wal-0000-000000000001.log") >= 0 {
		t.Fatal("sealed, fully-covered segment not pruned")
	}
	if stats.SegmentsPruned.Load() != 1 {
		t.Fatalf("SegmentsPruned = %d", stats.SegmentsPruned.Load())
	}
	appendWait(t, l, 0, wal.Record{TS: 4, Op: wal.OpInsert, Key: 4, Val: 4})
	l.Close()

	l2, rec := openLog(t, fs, 1, 1, nil)
	defer l2.Close()
	if len(rec.Pairs) != 3 || len(rec.Replay) != 1 || rec.Replay[0].TS != 4 {
		t.Fatalf("post-prune recovery: pairs %+v replay %+v", rec.Pairs, rec.Replay)
	}
}

func TestPruneKeepsTwoSnapshots(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	l, _ := openLog(t, fs, 1, 1, nil)
	for ts := uint64(1); ts <= 3; ts++ {
		if err := l.WriteSnapshot(ts, []wal.Pair{{Key: ts, Val: ts}}); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
	}
	l.PruneUpTo(3)
	l.Close()
	var snaps int
	for _, p := range fs.Paths() {
		if strings.Contains(p, "snap-") {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("%d snapshots survive pruning, want 2 (newest + fallback): %v", snaps, fs.Paths())
	}
}

func TestBatchedModeCleanClose(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	var stats obs.WALStats
	l, _ := openLog(t, fs, 1, 64, &stats)
	for ts := uint64(1); ts <= 5; ts++ {
		appendWait(t, l, 0, wal.Record{TS: ts, Op: wal.OpInsert, Key: ts, Val: ts})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Bounded-loss mode must still be fully durable across a CLEAN
	// shutdown: Close fsyncs the tail.
	l2, rec := openLog(t, fs, 1, 64, nil)
	defer l2.Close()
	if len(rec.Replay) != 5 {
		t.Fatalf("replayed %d records after clean close, want 5", len(rec.Replay))
	}
}

func TestTransientWriteErrorRetried(t *testing.T) {
	// Ops 1-3 are segment setup (create, header, dir sync); op 4 is the
	// first batch write. One transient failure there must be invisible
	// to the appender.
	fs := faultfs.New(faultfs.Fault{AtOp: 4, Kind: faultfs.KindWriteErr})
	var stats obs.WALStats
	l, _ := openLog(t, fs, 1, 1, &stats)
	appendWait(t, l, 0, wal.Record{TS: 1, Op: wal.OpInsert, Key: 1, Val: 1})
	if err := l.Close(); err != nil {
		t.Fatalf("Close after transient error: %v", err)
	}
	if stats.Retries.Load() == 0 {
		t.Fatal("transient error did not count a retry")
	}
	l2, rec := openLog(t, fs, 1, 1, nil)
	defer l2.Close()
	if len(rec.Replay) != 1 {
		t.Fatalf("replayed %d records, want 1", len(rec.Replay))
	}
}

func TestPersistentErrorSticky(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{AtOp: 4, Kind: faultfs.KindENOSPC})
	var stats obs.WALStats
	l, _ := openLog(t, fs, 1, 1, &stats)
	lsn, err := l.Append(0, wal.Record{TS: 1, Op: wal.OpInsert, Key: 1, Val: 1})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WaitDurable(0, lsn); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("WaitDurable under ENOSPC = %v, want injected error", err)
	}
	if l.Err() == nil {
		t.Fatal("persistent failure did not stick")
	}
	if _, err := l.Append(0, wal.Record{TS: 2, Op: wal.OpInsert, Key: 2, Val: 2}); err == nil {
		t.Fatal("Append after sticky failure succeeded")
	}
	if stats.Errors.Load() == 0 {
		t.Fatal("sticky failure not counted")
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close after sticky failure returned nil")
	}
}

func TestOpenReadErrorCleanRetry(t *testing.T) {
	fs := faultfs.New(faultfs.Fault{})
	l, _ := openLog(t, fs, 1, 1, nil)
	appendWait(t, l, 0, wal.Record{TS: 1, Op: wal.OpInsert, Key: 1, Val: 1})
	l.Close()

	fs2 := faultfs.New(faultfs.Fault{AtOp: 1, Kind: faultfs.KindReadErr})
	// Rebuild the directory contents under the faulty fs.
	copyInto(t, fs, fs2)
	if _, _, err := wal.Open(wal.Options{Dir: dir, Shards: 1, FS: fs2}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Open under read fault = %v, want injected error", err)
	}
	l2, rec := openLog(t, fs2, 1, 1, nil)
	defer l2.Close()
	if len(rec.Replay) != 1 {
		t.Fatalf("retried Open replayed %d records, want 1", len(rec.Replay))
	}
}

// copyInto replays src's surviving files into dst.
func copyInto(t *testing.T, src, dst *faultfs.FS) {
	t.Helper()
	for _, p := range src.Paths() {
		b, err := src.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		f, err := dst.Create(p)
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatalf("write %s: %v", p, err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %s: %v", p, err)
		}
	}
}

package tscds_test

import (
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"tscds"
	"tscds/internal/linearize"
)

// linSeed pins the harness workload so a failing run can be replayed:
//
//	go test -race -run 'TestLinearizability/<subtest>' . -linearize.seed=<seed>
var linSeed = flag.Int64("linearize.seed", 1, "workload seed for the linearizability matrix")

// linTriple is one cell of the correctness matrix.
type linTriple struct {
	S   tscds.Structure
	T   tscds.Technique
	Src tscds.SourceKind
}

// linMatrix enumerates every (structure, technique, source) combination
// tscds.New accepts, discovered by construction so the matrix can never
// silently lag the constructor.
func linMatrix() []linTriple {
	var out []linTriple
	for _, s := range []tscds.Structure{tscds.BST, tscds.Citrus, tscds.SkipList, tscds.LazyList, tscds.NMBST} {
		for _, tech := range []tscds.Technique{tscds.VCAS, tscds.Bundle, tscds.EBRRQ, tscds.EBRRQLockFree} {
			for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC, tscds.Monotonic, tscds.Adaptive} {
				if _, err := tscds.New(s, tech, tscds.Config{Source: src}); err == nil {
					out = append(out, linTriple{s, tech, src})
				}
			}
		}
	}
	return out
}

// TestLinearizability is the paper's claim under stress: for every
// supported combination, concurrent range queries, point reads and
// updates recorded by the harness admit a sequential witness. Short
// mode (wired into `make check` and CI) runs a reduced load; the full
// load runs under `make linearize`.
func TestLinearizability(t *testing.T) {
	triples := linMatrix()
	if len(triples) == 0 {
		t.Fatal("matrix is empty")
	}
	for _, tr := range triples {
		tr := tr
		name := fmt.Sprintf("%v-%v-%v", tr.S, tr.T, tr.Src)
		name = strings.ReplaceAll(name, " ", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 2500}
			if testing.Short() {
				cfg.Ops = 500
			}
			if tr.S == tscds.LazyList {
				cfg.Ops /= 2 // O(n) traversals
			}
			m, err := tscds.New(tr.S, tr.T, tscds.Config{
				Source:     tr.Src,
				MaxThreads: cfg.Workers + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := linearize.RunAndCheck(m, cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizability/%s' . -linearize.seed=%d",
					err, name, cfg.Seed)
			}
			t.Logf("%s", h.Summary())
		})
	}

	// Pooled-allocation cells: one representative structure per
	// technique, rechecked with nodes served from recycled memory. A
	// node recycled too early, or a constructor that forgets to reset a
	// field, shows up here as a history with no sequential witness.
	pooled := []linTriple{
		{tscds.BST, tscds.VCAS, tscds.Logical},
		{tscds.Citrus, tscds.Bundle, tscds.TSC},
		{tscds.SkipList, tscds.EBRRQ, tscds.TSC},
		{tscds.SkipList, tscds.EBRRQLockFree, tscds.Logical},
	}
	for _, tr := range pooled {
		tr := tr
		name := fmt.Sprintf("%v-%v-%v-Pool", tr.S, tr.T, tr.Src)
		name = strings.ReplaceAll(name, " ", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 2500}
			if testing.Short() {
				cfg.Ops = 500
			}
			m, err := tscds.New(tr.S, tr.T, tscds.Config{
				Source:     tr.Src,
				MaxThreads: cfg.Workers + 1,
				Alloc:      tscds.AllocPool,
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := linearize.RunAndCheck(m, cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizability/%s' . -linearize.seed=%d",
					err, name, cfg.Seed)
			}
			t.Logf("%s", h.Summary())
		})
	}
}

// TestLinearizabilityAdaptiveSwitch is the adaptive source's correctness
// claim under stress: for every combination that accepts Adaptive, a TSC
// backstep is injected halfway through the run (while every worker keeps
// operating), forcing the source to fail over from hardware to the
// logical counter mid-history. The recorded history spans the generation
// switch — range queries before, during and after it — and must still
// admit a sequential witness. The health monitor must also record that
// the switch actually happened, so a regression that stops acting on
// tsc.Health cannot pass vacuously.
func TestLinearizabilityAdaptiveSwitch(t *testing.T) {
	var triples []linTriple
	for _, tr := range linMatrix() {
		if tr.Src == tscds.Adaptive {
			triples = append(triples, tr)
		}
	}
	if len(triples) == 0 {
		t.Fatal("no combination accepts the Adaptive source")
	}
	for _, tr := range triples {
		tr := tr
		name := fmt.Sprintf("%v-%v", tr.S, tr.T)
		name = strings.ReplaceAll(name, " ", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 2000}
			if testing.Short() {
				cfg.Ops = 500
			}
			if tr.S == tscds.LazyList {
				cfg.Ops /= 2 // O(n) traversals
			}
			health := tscds.NewTSCHealth(cfg.Workers + 1)
			cfg.Midpoint = func() {
				// A full hour of TSC ticks backwards: unambiguously a fault,
				// and large enough that the logical counter's seed dominates
				// any hardware reading taken just before the injection.
				health.InjectBackstep(uint64(time.Hour))
			}
			m, err := tscds.New(tr.S, tr.T, tscds.Config{
				Source:     tscds.Adaptive,
				Health:     health,
				MaxThreads: cfg.Workers + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := linearize.RunAndCheck(m, cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizabilityAdaptiveSwitch/%s' . -linearize.seed=%d",
					err, name, cfg.Seed)
			}
			hs := health.Snapshot()
			if hs.SourceSwitches < 1 {
				t.Fatalf("injected a backstep mid-run but the adaptive source never switched (health: %+v)", hs)
			}
			t.Logf("%s; %d switches, %d failbacks", h.Summary(), hs.SourceSwitches, hs.SourceFailbacks)
		})
	}
}

// TestLinearizabilitySharded runs the same matrix through the sharded
// front end at shard counts 2 and 4: the cross-shard snapshot protocol
// (reserve every overlapping shard, one shared timestamp, per-shard
// collection at it) must admit a sequential witness under the same
// adversarial schedules as the single structures.
func TestLinearizabilitySharded(t *testing.T) {
	triples := linMatrix()
	if len(triples) == 0 {
		t.Fatal("matrix is empty")
	}
	for _, shards := range []int{2, 4} {
		for _, tr := range triples {
			shards, tr := shards, tr
			name := fmt.Sprintf("%v-%v-%v-s%d", tr.S, tr.T, tr.Src, shards)
			name = strings.ReplaceAll(name, " ", "_")
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 1500}
				if testing.Short() {
					cfg.Ops = 300
				}
				if tr.S == tscds.LazyList {
					cfg.Ops /= 2 // O(n) traversals
				}
				m, err := tscds.NewSharded(tr.S, tr.T, shards, tscds.Config{
					Source:     tr.Src,
					MaxThreads: cfg.Workers + 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				h, err := linearize.RunAndCheck(m, cfg)
				if err != nil {
					t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizabilitySharded/%s' . -linearize.seed=%d",
						err, name, cfg.Seed)
				}
				t.Logf("%s", h.Summary())
			})
		}
	}
}

// TestLinearizabilityShardedCatchesFaults proves the checker retains its
// teeth through the sharded front end: with fault injection corrupting
// recorded range results, the harness must report a violation.
func TestLinearizabilityShardedCatchesFaults(t *testing.T) {
	m, err := tscds.NewSharded(tscds.BST, tscds.VCAS, 4, tscds.Config{Source: tscds.Logical, MaxThreads: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 400, FaultRate: 0.2}
	if _, err := linearize.RunAndCheck(m, cfg); err == nil {
		t.Fatal("checker accepted a fault-injected sharded history")
	}
}

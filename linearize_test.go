package tscds_test

import (
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"tscds"
	"tscds/internal/linearize"
)

// linSeed pins the harness workload so a failing run can be replayed:
//
//	go test -race -run 'TestLinearizability/<subtest>' . -linearize.seed=<seed>
var linSeed = flag.Int64("linearize.seed", 1, "workload seed for the linearizability matrix")

// linTriple is one cell of the correctness matrix.
type linTriple struct {
	S   tscds.Structure
	T   tscds.Technique
	Src tscds.SourceKind
}

// linMatrix enumerates every (structure, technique, source) combination
// tscds.New accepts, discovered by construction so the matrix can never
// silently lag the constructor.
func linMatrix() []linTriple {
	var out []linTriple
	for _, s := range []tscds.Structure{tscds.BST, tscds.Citrus, tscds.SkipList, tscds.LazyList, tscds.NMBST} {
		for _, tech := range []tscds.Technique{tscds.VCAS, tscds.Bundle, tscds.EBRRQ, tscds.EBRRQLockFree} {
			for _, src := range []tscds.SourceKind{tscds.Logical, tscds.TSC, tscds.Monotonic, tscds.Adaptive} {
				if _, err := tscds.New(s, tech, tscds.Config{Source: src}); err == nil {
					out = append(out, linTriple{s, tech, src})
				}
			}
		}
	}
	return out
}

// TestLinearizability is the paper's claim under stress: for every
// supported combination, concurrent range queries, point reads and
// updates recorded by the harness admit a sequential witness. Short
// mode (wired into `make check` and CI) runs a reduced load; the full
// load runs under `make linearize`.
func TestLinearizability(t *testing.T) {
	triples := linMatrix()
	if len(triples) == 0 {
		t.Fatal("matrix is empty")
	}
	for _, tr := range triples {
		tr := tr
		name := fmt.Sprintf("%v-%v-%v", tr.S, tr.T, tr.Src)
		name = strings.ReplaceAll(name, " ", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 2500}
			if testing.Short() {
				cfg.Ops = 500
			}
			if tr.S == tscds.LazyList {
				cfg.Ops /= 2 // O(n) traversals
			}
			m, err := tscds.New(tr.S, tr.T, tscds.Config{
				Source:     tr.Src,
				MaxThreads: cfg.Workers + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := linearize.RunAndCheck(m, cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizability/%s' . -linearize.seed=%d",
					err, name, cfg.Seed)
			}
			t.Logf("%s", h.Summary())
		})
	}

	// Pooled-allocation cells: one representative structure per
	// technique, rechecked with nodes served from recycled memory. A
	// node recycled too early, or a constructor that forgets to reset a
	// field, shows up here as a history with no sequential witness.
	pooled := []linTriple{
		{tscds.BST, tscds.VCAS, tscds.Logical},
		{tscds.Citrus, tscds.Bundle, tscds.TSC},
		{tscds.SkipList, tscds.EBRRQ, tscds.TSC},
		{tscds.SkipList, tscds.EBRRQLockFree, tscds.Logical},
	}
	for _, tr := range pooled {
		tr := tr
		name := fmt.Sprintf("%v-%v-%v-Pool", tr.S, tr.T, tr.Src)
		name = strings.ReplaceAll(name, " ", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 2500}
			if testing.Short() {
				cfg.Ops = 500
			}
			m, err := tscds.New(tr.S, tr.T, tscds.Config{
				Source:     tr.Src,
				MaxThreads: cfg.Workers + 1,
				Alloc:      tscds.AllocPool,
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := linearize.RunAndCheck(m, cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizability/%s' . -linearize.seed=%d",
					err, name, cfg.Seed)
			}
			t.Logf("%s", h.Summary())
		})
	}
}

// TestLinearizabilityAdaptiveSwitch is the adaptive source's correctness
// claim under stress: for every combination that accepts Adaptive, a TSC
// backstep is injected halfway through the run (while every worker keeps
// operating), forcing the source to fail over from hardware to the
// logical counter mid-history. The recorded history spans the generation
// switch — range queries before, during and after it — and must still
// admit a sequential witness. The health monitor must also record that
// the switch actually happened, so a regression that stops acting on
// tsc.Health cannot pass vacuously.
func TestLinearizabilityAdaptiveSwitch(t *testing.T) {
	var triples []linTriple
	for _, tr := range linMatrix() {
		if tr.Src == tscds.Adaptive {
			triples = append(triples, tr)
		}
	}
	if len(triples) == 0 {
		t.Fatal("no combination accepts the Adaptive source")
	}
	for _, tr := range triples {
		tr := tr
		name := fmt.Sprintf("%v-%v", tr.S, tr.T)
		name = strings.ReplaceAll(name, " ", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 2000}
			if testing.Short() {
				cfg.Ops = 500
			}
			if tr.S == tscds.LazyList {
				cfg.Ops /= 2 // O(n) traversals
			}
			health := tscds.NewTSCHealth(cfg.Workers + 1)
			cfg.Midpoint = func() {
				// A full hour of TSC ticks backwards: unambiguously a fault,
				// and large enough that the logical counter's seed dominates
				// any hardware reading taken just before the injection.
				health.InjectBackstep(uint64(time.Hour))
			}
			m, err := tscds.New(tr.S, tr.T, tscds.Config{
				Source:     tscds.Adaptive,
				Health:     health,
				MaxThreads: cfg.Workers + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := linearize.RunAndCheck(m, cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizabilityAdaptiveSwitch/%s' . -linearize.seed=%d",
					err, name, cfg.Seed)
			}
			hs := health.Snapshot()
			if hs.SourceSwitches < 1 {
				t.Fatalf("injected a backstep mid-run but the adaptive source never switched (health: %+v)", hs)
			}
			t.Logf("%s; %d switches, %d failbacks", h.Summary(), hs.SourceSwitches, hs.SourceFailbacks)
		})
	}
}

// TestLinearizabilitySharded runs the same matrix through the sharded
// front end at shard counts 2 and 4: the cross-shard snapshot protocol
// (reserve every overlapping shard, one shared timestamp, per-shard
// collection at it) must admit a sequential witness under the same
// adversarial schedules as the single structures.
func TestLinearizabilitySharded(t *testing.T) {
	triples := linMatrix()
	if len(triples) == 0 {
		t.Fatal("matrix is empty")
	}
	for _, shards := range []int{2, 4} {
		for _, tr := range triples {
			shards, tr := shards, tr
			name := fmt.Sprintf("%v-%v-%v-s%d", tr.S, tr.T, tr.Src, shards)
			name = strings.ReplaceAll(name, " ", "_")
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 1500}
				if testing.Short() {
					cfg.Ops = 300
				}
				if tr.S == tscds.LazyList {
					cfg.Ops /= 2 // O(n) traversals
				}
				m, err := tscds.NewSharded(tr.S, tr.T, shards, tscds.Config{
					Source:     tr.Src,
					MaxThreads: cfg.Workers + 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				h, err := linearize.RunAndCheck(m, cfg)
				if err != nil {
					t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizabilitySharded/%s' . -linearize.seed=%d",
						err, name, cfg.Seed)
				}
				t.Logf("%s", h.Summary())
			})
		}
	}
}

// histCount tallies the recorded historical reads and how many of them
// were retention refusals, so the time-travel tests can prove they did
// not pass vacuously.
func histCount(h *linearize.History) (reads, trunc int) {
	for _, log := range h.Threads {
		for i := range log {
			if log[i].Op == linearize.OpGetAt || log[i].Op == linearize.OpRangeAt {
				reads++
				if log[i].Trunc {
					trunc++
				}
			}
		}
	}
	return reads, trunc
}

// TestLinearizabilityTimeTravel is the MVCC claim under stress: in
// every history-retaining cell of the matrix, workers capture
// timestamps mid-run and later read at them with GetAt/RangeQueryAt
// while updates, live range queries and — in the tight-retention
// subtests — version pruning keep running. Every historical
// observation must match the version whose linearization window covers
// the capture instant; a retention refusal is legal but a wrong-epoch
// value is not. Cells:
//
//   - every (structure, VCAS|Bundle, source) triple with an effectively
//     unbounded retention window, so every captured stamp must resolve;
//   - tight-retention Logical cells, where concurrent pruning races the
//     readers and ErrTruncatedHistory refusals are expected alongside
//     successful reads (the run asserts at least one read resolved);
//   - Adaptive cells with a mid-run TSC backstep: stamps captured in
//     the pre-switch generation must still resolve after the switch.
func TestLinearizabilityTimeTravel(t *testing.T) {
	var triples []linTriple
	for _, tr := range linMatrix() {
		if tr.T == tscds.VCAS || tr.T == tscds.Bundle {
			triples = append(triples, tr)
		}
	}
	if len(triples) == 0 {
		t.Fatal("no history-retaining combination in the matrix")
	}
	for _, tr := range triples {
		tr := tr
		name := fmt.Sprintf("%v-%v-%v", tr.S, tr.T, tr.Src)
		name = strings.ReplaceAll(name, " ", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 2000, HistPct: 15}
			if testing.Short() {
				cfg.Ops = 400
			}
			if tr.S == tscds.LazyList {
				cfg.Ops /= 2 // O(n) traversals
			}
			var health *tscds.TSCHealth
			if tr.Src == tscds.Adaptive {
				health = tscds.NewTSCHealth(cfg.Workers + 1)
				cfg.Midpoint = func() {
					health.InjectBackstep(uint64(time.Hour))
				}
			}
			m, err := tscds.New(tr.S, tr.T, tscds.Config{
				Source:     tr.Src,
				Health:     health,
				MaxThreads: cfg.Workers + 1,
				Retention:  ^uint64(0), // retain everything: every stamp must resolve
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := linearize.RunAndCheck(m, cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizabilityTimeTravel/%s' . -linearize.seed=%d",
					err, name, cfg.Seed)
			}
			reads, trunc := histCount(h)
			if reads == 0 {
				t.Fatal("no historical reads recorded: HistPct not honored")
			}
			if trunc != 0 {
				t.Fatalf("%d of %d historical reads refused under an unbounded retention window", trunc, reads)
			}
			if health != nil {
				if hs := health.Snapshot(); hs.SourceSwitches < 1 {
					t.Fatalf("injected a backstep mid-run but the adaptive source never switched (health: %+v)", hs)
				}
			}
			t.Logf("%s", h.Summary())
		})
	}

	// Tight retention: the watermark chases the source, pruning races
	// the readers, and stale stamps legally refuse. The checker skips
	// refusals; every read that resolves must still be exact.
	tight := []linTriple{
		{tscds.BST, tscds.VCAS, tscds.Logical},
		{tscds.Citrus, tscds.Bundle, tscds.Logical},
		{tscds.SkipList, tscds.VCAS, tscds.Logical},
		{tscds.LazyList, tscds.Bundle, tscds.Logical},
	}
	for _, tr := range tight {
		tr := tr
		name := fmt.Sprintf("%v-%v-tight", tr.S, tr.T)
		name = strings.ReplaceAll(name, " ", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 2000, HistPct: 20}
			if testing.Short() {
				cfg.Ops = 400
			}
			if tr.S == tscds.LazyList {
				cfg.Ops /= 2
			}
			m, err := tscds.New(tr.S, tr.T, tscds.Config{
				Source:     tr.Src,
				MaxThreads: cfg.Workers + 1,
				Retention:  512, // a few hundred logical ticks: stale stamps expire mid-run
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := linearize.RunAndCheck(m, cfg)
			if err != nil {
				t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizabilityTimeTravel/%s' . -linearize.seed=%d",
					err, name, cfg.Seed)
			}
			reads, trunc := histCount(h)
			if reads == 0 {
				t.Fatal("no historical reads recorded: HistPct not honored")
			}
			if trunc == reads {
				t.Fatalf("all %d historical reads refused: retention window never admitted a stamp", reads)
			}
			t.Logf("%s", h.Summary())
		})
	}
}

// TestLinearizabilityTimeTravelSharded pushes the historical mix
// through the sharded front end: the cross-shard fan-out validates once
// against the shared watermark, collects every overlapping shard at the
// same past timestamp, and the merged result must admit the same
// sequential witness as a single structure.
func TestLinearizabilityTimeTravelSharded(t *testing.T) {
	cells := []linTriple{
		{tscds.BST, tscds.VCAS, tscds.Logical},
		{tscds.BST, tscds.VCAS, tscds.TSC},
		{tscds.Citrus, tscds.Bundle, tscds.TSC},
		{tscds.SkipList, tscds.VCAS, tscds.Adaptive},
		{tscds.LazyList, tscds.Bundle, tscds.Logical},
	}
	for _, shards := range []int{2, 4} {
		for _, tr := range cells {
			shards, tr := shards, tr
			name := fmt.Sprintf("%v-%v-%v-s%d", tr.S, tr.T, tr.Src, shards)
			name = strings.ReplaceAll(name, " ", "_")
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 1500, HistPct: 15}
				if testing.Short() {
					cfg.Ops = 300
				}
				if tr.S == tscds.LazyList {
					cfg.Ops /= 2
				}
				m, err := tscds.NewSharded(tr.S, tr.T, shards, tscds.Config{
					Source:     tr.Src,
					MaxThreads: cfg.Workers + 1,
					Retention:  ^uint64(0),
				})
				if err != nil {
					t.Fatal(err)
				}
				h, err := linearize.RunAndCheck(m, cfg)
				if err != nil {
					t.Fatalf("%v\nreproduce: go test -race -run 'TestLinearizabilityTimeTravelSharded/%s' . -linearize.seed=%d",
						err, name, cfg.Seed)
				}
				reads, trunc := histCount(h)
				if reads == 0 {
					t.Fatal("no historical reads recorded: HistPct not honored")
				}
				if trunc != 0 {
					t.Fatalf("%d of %d historical reads refused under an unbounded retention window", trunc, reads)
				}
				t.Logf("%s", h.Summary())
			})
		}
	}
}

// TestTimeTravelCheckerRejectsWrongVersion is the checker's self-test
// for historical reads: a hand-built history in which a read at a
// captured timestamp observes a version whose lifetime had already
// ended at the capture instant (and one that had not yet begun) must be
// rejected, while the read observing the version actually live at the
// capture is accepted — as is a retention refusal.
func TestTimeTravelCheckerRejectsWrongVersion(t *testing.T) {
	const key = 5
	valA := uint64(1)<<40 | 1 // thread 0, seq 1 — harness encoding
	valB := uint64(1)<<40 | 2
	base := []linearize.Event{
		{Op: linearize.OpInsert, Thread: 0, Key: key, Val: valA, OK: true, Inv: 10, Ret: 20},
		{Op: linearize.OpDelete, Thread: 0, Key: key, OK: true, Inv: 30, Ret: 40},
		{Op: linearize.OpInsert, Thread: 0, Key: key, Val: valB, OK: true, Inv: 50, Ret: 60},
	}
	mk := func(read linearize.Event) *linearize.History {
		read.Thread = 0
		return &linearize.History{
			Cfg:     linearize.Config{Seed: 1},
			Threads: [][]linearize.Event{append(append([]linearize.Event{}, base...), read)},
		}
	}
	cases := []struct {
		name   string
		read   linearize.Event
		wantOK bool
	}{
		{"range observes the live version", linearize.Event{
			Op: linearize.OpRangeAt, Lo: 0, Hi: 10, TS: 99, TSInv: 70, TSRet: 80,
			Inv: 100, Ret: 110, KVs: []tscds.KV{{Key: key, Val: valB}},
		}, true},
		{"range observes a dead version", linearize.Event{
			Op: linearize.OpRangeAt, Lo: 0, Hi: 10, TS: 99, TSInv: 70, TSRet: 80,
			Inv: 100, Ret: 110, KVs: []tscds.KV{{Key: key, Val: valA}},
		}, false},
		{"range misses a certainly-present key", linearize.Event{
			Op: linearize.OpRangeAt, Lo: 0, Hi: 10, TS: 99, TSInv: 70, TSRet: 80,
			Inv: 100, Ret: 110,
		}, false},
		{"get observes a version not yet inserted", linearize.Event{
			Op: linearize.OpGetAt, Key: key, Val: valB, OK: true, TS: 25, TSInv: 22, TSRet: 26,
			Inv: 100, Ret: 110,
		}, false},
		{"get observes the then-live version", linearize.Event{
			Op: linearize.OpGetAt, Key: key, Val: valA, OK: true, TS: 25, TSInv: 22, TSRet: 26,
			Inv: 100, Ret: 110,
		}, true},
		{"retention refusal is skipped", linearize.Event{
			Op: linearize.OpRangeAt, Lo: 0, Hi: 10, TS: 1, TSInv: 0, TSRet: 1,
			Inv: 100, Ret: 110, Trunc: true,
		}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.ReplaceAll(tc.name, " ", "_"), func(t *testing.T) {
			err := linearize.Check(mk(tc.read))
			if tc.wantOK && err != nil {
				t.Fatalf("checker rejected a justified historical read: %v", err)
			}
			if !tc.wantOK && err == nil {
				t.Fatal("checker accepted a historical read of the wrong version")
			}
		})
	}
}

// TestTimeTravelHarnessCatchesFaults proves the end-to-end path keeps
// its teeth: with fault injection corrupting recorded historical range
// results, RunAndCheck must report a violation.
func TestTimeTravelHarnessCatchesFaults(t *testing.T) {
	m, err := tscds.New(tscds.BST, tscds.VCAS, tscds.Config{
		Source: tscds.Logical, MaxThreads: 5, Retention: ^uint64(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	// RangePct at its 1% floor biases corruption overwhelmingly toward
	// historical range reads.
	cfg := linearize.Config{
		Seed: *linSeed, Workers: 4, Ops: 600,
		RangePct: 1, HistPct: 40, FaultRate: 0.3,
	}
	if _, err := linearize.RunAndCheck(m, cfg); err == nil {
		t.Fatal("checker accepted a fault-injected time-travel history")
	}
}

// TestLinearizabilityShardedCatchesFaults proves the checker retains its
// teeth through the sharded front end: with fault injection corrupting
// recorded range results, the harness must report a violation.
func TestLinearizabilityShardedCatchesFaults(t *testing.T) {
	m, err := tscds.NewSharded(tscds.BST, tscds.VCAS, 4, tscds.Config{Source: tscds.Logical, MaxThreads: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := linearize.Config{Seed: *linSeed, Workers: 4, Ops: 400, FaultRate: 0.2}
	if _, err := linearize.RunAndCheck(m, cfg); err == nil {
		t.Fatal("checker accepted a fault-injected sharded history")
	}
}

package tscds

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestRangeQueryEmptyInterval checks that hi < lo is an empty interval:
// no results, buf unchanged, and fn never called from Scan.
func TestRangeQueryEmptyInterval(t *testing.T) {
	for _, c := range allCombos() {
		t.Run(fmt.Sprintf("%v-%v", c.S, c.T), func(t *testing.T) {
			m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 4})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			defer th.Release()
			for k := uint64(0); k < 10; k++ {
				m.Insert(th, k, k)
			}
			buf := []KV{{Key: 99, Val: 99}}
			got := m.RangeQuery(th, 5, 4, buf)
			if len(got) != 1 || got[0].Key != 99 {
				t.Fatalf("RangeQuery(5,4) = %v, want buf unchanged", got)
			}
			if got := m.RangeQuery(th, ^uint64(0), 0, nil); len(got) != 0 {
				t.Fatalf("RangeQuery(max,0) = %v, want empty", got)
			}
			m.Scan(th, 5, 4, func(KV) bool {
				t.Fatal("Scan(5,4) called fn")
				return false
			})
		})
	}
}

// TestMetricsSmoke drives every combo with metrics attached and checks
// the snapshot reports the traffic: op counts per class, source stats,
// and (after enough churn on one structure) reclamation counters.
func TestMetricsSmoke(t *testing.T) {
	for _, c := range allCombos() {
		t.Run(fmt.Sprintf("%v-%v", c.S, c.T), func(t *testing.T) {
			reg := NewMetrics()
			m, err := New(c.S, c.T, Config{Source: Logical, MaxThreads: 4, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			defer th.Release()
			for k := uint64(0); k < 100; k++ {
				m.Insert(th, k, k)
			}
			for k := uint64(0); k < 100; k++ {
				m.Contains(th, k)
				m.Get(th, k)
			}
			m.RangeQuery(th, 0, 50, nil)
			m.Scan(th, 0, 50, func(KV) bool { return true })
			for k := uint64(0); k < 50; k++ {
				m.Delete(th, k)
			}

			snap := reg.Snapshot()
			if snap.Source.Kind != "Logical" {
				t.Fatalf("source kind = %q", snap.Source.Kind)
			}
			if got := snap.Ops["update"].Count; got != 150 {
				t.Fatalf("update count = %d, want 150", got)
			}
			if got := snap.Ops["contains"].Count; got != 200 {
				t.Fatalf("contains count = %d, want 200", got)
			}
			if got := snap.Ops["range-query"].Count; got != 2 {
				t.Fatalf("range-query count = %d, want 2", got)
			}
			// Every combo touches the source: bundles advance it on each
			// update, vCAS and EBR-RQ label lazily via Peek/Snapshot.
			if snap.Source.Advances+snap.Source.Peeks+snap.Source.Snapshots == 0 {
				t.Fatal("no source traffic recorded")
			}
			// The snapshot must be valid JSON via String.
			var decoded MetricsSnapshot
			if err := json.Unmarshal([]byte(reg.String()), &decoded); err != nil {
				t.Fatalf("snapshot JSON: %v", err)
			}
		})
	}
}

// TestMetricsReclamationCounters churns keys that hit the structures'
// truncation stride (multiples of 64) and checks the GC counters move.
func TestMetricsReclamationCounters(t *testing.T) {
	cases := []struct {
		s     Structure
		t     Technique
		field func(MetricsSnapshot) uint64
		name  string
	}{
		{Citrus, VCAS, func(s MetricsSnapshot) uint64 { return s.GC.VcasVersionsPruned }, "vcas_versions_pruned"},
		{Citrus, Bundle, func(s MetricsSnapshot) uint64 { return s.GC.BundleEntriesPruned }, "bundle_entries_pruned"},
		{Citrus, EBRRQ, func(s MetricsSnapshot) uint64 { return s.GC.LimboRetired }, "limbo_retired"},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%v-%v", c.s, c.t), func(t *testing.T) {
			reg := NewMetrics()
			m, err := New(c.s, c.t, Config{Source: Logical, MaxThreads: 4, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			th, err := m.RegisterThread()
			if err != nil {
				t.Fatal(err)
			}
			defer th.Release()
			// Repeatedly rewrite keys at the truncation stride so the
			// version chains/bundles grow and then get pruned (no RQ is
			// active, so MinActiveRQ lets everything go).
			for round := 0; round < 200; round++ {
				for k := uint64(0); k < 512; k += 64 {
					m.Insert(th, k, k)
					m.Delete(th, k)
				}
			}
			if got := c.field(reg.Snapshot()); got == 0 {
				t.Fatalf("%s = 0 after churn", c.name)
			}
		})
	}
}

// TestMetricsNilIsDefault checks plain configs stay uninstrumented.
func TestMetricsNilIsDefault(t *testing.T) {
	m, err := New(BST, VCAS, Config{Source: Logical})
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.RegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Release()
	if !m.Insert(th, 1, 1) || !m.Contains(th, 1) {
		t.Fatal("basic ops broken without metrics")
	}
}
